// Tests for the SoC substrate: DTL encoding, memory, buses, shells over a
// real daelite network, traffic generators and the Fig. 3 platform.

#include <gtest/gtest.h>

#include "soc/bus.hpp"
#include "soc/dtl.hpp"
#include "soc/memory.hpp"
#include "soc/platform.hpp"
#include "soc/shell.hpp"
#include "soc/traffic.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::soc;

TEST(Dtl, HeaderEncodingRoundTrips) {
  const std::uint32_t h = encode_header(true, 7, 0x123456);
  EXPECT_TRUE(header_is_write(h));
  EXPECT_EQ(header_len(h), 7u);
  EXPECT_EQ(header_addr(h), 0x123456u);
  const std::uint32_t h2 = encode_header(false, 15, 0xFFFFFF);
  EXPECT_FALSE(header_is_write(h2));
  EXPECT_EQ(header_len(h2), 15u);
  EXPECT_EQ(header_addr(h2), 0xFFFFFFu);
}

TEST(Dtl, SerializeWriteAndRead) {
  Transaction w;
  w.is_write = true;
  w.addr = 0x100;
  w.wdata = {1, 2, 3};
  w.burst_len = 3;
  const auto ws = serialize_request(w);
  ASSERT_EQ(ws.size(), 4u);
  EXPECT_EQ(header_len(ws[0]), 3u);
  EXPECT_EQ(ws[1], 1u);

  Transaction r;
  r.is_write = false;
  r.addr = 0x200;
  r.burst_len = 8;
  EXPECT_EQ(serialize_request(r).size(), 1u);
  EXPECT_EQ(request_words(r), 1u);
  EXPECT_EQ(response_words(r), 9u);
}

TEST(Memory, ReadWriteAndAccounting) {
  Memory m;
  EXPECT_EQ(m.read(5), 0u);
  m.shell_write(5, 42);
  EXPECT_EQ(m.shell_read(5), 42u);
  EXPECT_EQ(m.footprint(), 1u);
  EXPECT_EQ(m.reads(), 1u);
  EXPECT_EQ(m.writes(), 1u);
}

TEST(LocalBus, RoutesByAddressRange) {
  struct FakePort : InitiatorPort {
    void submit(const Transaction& t) override { addrs.push_back(t.addr); }
    std::optional<Response> take_response() override { return std::nullopt; }
    std::vector<std::uint32_t> addrs;
  };
  FakePort a, b;
  LocalBus bus;
  bus.map(0x0000, 0x1000, a);
  bus.map(0x1000, 0x1000, b);

  Transaction t;
  t.addr = 0x0800;
  EXPECT_TRUE(bus.submit(t));
  t.addr = 0x1800;
  EXPECT_TRUE(bus.submit(t));
  t.addr = 0x9000;
  EXPECT_FALSE(bus.submit(t));
  EXPECT_EQ(a.addrs.size(), 1u);
  EXPECT_EQ(b.addrs.size(), 1u);
  EXPECT_EQ(bus.routed(), 2u);
  EXPECT_EQ(bus.unrouted(), 1u);
}

// --- Platform fixture -------------------------------------------------------------

struct PlatformFixture : ::testing::Test {
  topo::Mesh mesh = topo::make_mesh(3, 3);
  sim::Kernel kernel;
  std::unique_ptr<Platform> plat;

  void SetUp() override {
    Platform::Options opt;
    opt.net.tdm = tdm::daelite_params(8);
    opt.net.cfg_root = mesh.ni(0, 0);
    plat = std::make_unique<Platform>(kernel, mesh.topo, opt);
  }
};

TEST_F(PlatformFixture, WriteTransactionLandsInRemoteMemory) {
  plat->add_memory(mesh.ni(2, 2));
  auto port = plat->connect(mesh.ni(0, 0), mesh.ni(2, 2), 2, 1, 0x0000, 0x10000);
  ASSERT_TRUE(port.has_value());
  plat->configure();

  Transaction t;
  t.is_write = true;
  t.addr = 0x40;
  t.wdata = {0xAA, 0xBB, 0xCC};
  t.burst_len = 3;
  port->port->submit(t);

  ASSERT_TRUE(kernel.run_until(
      [&] { return plat->memory(mesh.ni(2, 2)).writes() >= 3; }, 5000));
  EXPECT_EQ(plat->memory(mesh.ni(2, 2)).read(0x40), 0xAAu);
  EXPECT_EQ(plat->memory(mesh.ni(2, 2)).read(0x42), 0xCCu);

  // The write ack comes back on the response channel.
  ASSERT_TRUE(kernel.run_until([&] { return port->port->take_response().has_value(); }, 5000));
  EXPECT_EQ(plat->total_network_drops(), 0u);
}

TEST_F(PlatformFixture, ReadReturnsWrittenData) {
  Memory& mem = plat->add_memory(mesh.ni(1, 2));
  mem.write(0x10, 111);
  mem.write(0x11, 222);
  auto port = plat->connect(mesh.ni(2, 0), mesh.ni(1, 2), 2, 2, 0x0000, 0x10000);
  ASSERT_TRUE(port.has_value());
  plat->configure();

  Transaction t;
  t.is_write = false;
  t.addr = 0x10;
  t.burst_len = 2;
  port->port->submit(t);

  std::optional<Response> r;
  ASSERT_TRUE(kernel.run_until(
      [&] {
        r = port->port->take_response();
        return r.has_value();
      },
      10000));
  ASSERT_EQ(r->rdata.size(), 2u);
  EXPECT_EQ(r->rdata[0], 111u);
  EXPECT_EQ(r->rdata[1], 222u);
}

TEST_F(PlatformFixture, CbrWriterStreamsToMemory) {
  plat->add_memory(mesh.ni(2, 2));
  auto port = plat->connect(mesh.ni(0, 1), mesh.ni(2, 2), 3, 1, 0x0000, 0x10000);
  ASSERT_TRUE(port.has_value());
  plat->configure();

  CbrWriter::Params p;
  p.period = 64;
  p.burst = 4;
  p.base_addr = 0;
  p.addr_range = 64;
  CbrWriter writer(kernel, "cbr", plat->bus(mesh.ni(0, 1)), p);

  kernel.run(64 * 20);
  EXPECT_GE(writer.submitted(), 18u);
  EXPECT_GE(plat->memory(mesh.ni(2, 2)).writes(), 4u * 16u);
  EXPECT_EQ(plat->total_network_drops(), 0u);
  // Drain acks so they do not pile up.
  while (port->port->take_response()) {
  }
}

TEST_F(PlatformFixture, ReaderIpRoundTrips) {
  Memory& mem = plat->add_memory(mesh.ni(0, 2));
  for (std::uint32_t a = 0; a < 64; ++a) mem.write(a, a * 3);
  auto port = plat->connect(mesh.ni(2, 1), mesh.ni(0, 2), 2, 2, 0x0000, 0x10000);
  ASSERT_TRUE(port.has_value());
  plat->configure();

  ReaderIp::Params p;
  p.period = 64;
  p.burst = 4;
  p.addr_range = 64;
  ReaderIp reader(kernel, "rd", *port->port, p);

  kernel.run(64 * 24);
  EXPECT_GE(reader.returned(), 16u);
  EXPECT_EQ(reader.words_read(), reader.returned() * 4);
}

TEST_F(PlatformFixture, TwoIpsShareTheNetworkWithoutInterference) {
  plat->add_memory(mesh.ni(2, 2));
  plat->add_memory(mesh.ni(2, 0));
  auto p1 = plat->connect(mesh.ni(0, 0), mesh.ni(2, 2), 2, 1, 0x0000, 0x10000);
  ASSERT_TRUE(p1.has_value());
  auto p2 = plat->connect(mesh.ni(0, 2), mesh.ni(2, 0), 2, 1, 0x0000, 0x10000);
  ASSERT_TRUE(p2.has_value());
  plat->configure();

  CbrWriter::Params p;
  p.period = 32;
  p.burst = 2;
  p.addr_range = 128;
  CbrWriter w1(kernel, "w1", plat->bus(mesh.ni(0, 0)), p);
  CbrWriter w2(kernel, "w2", plat->bus(mesh.ni(0, 2)), p);

  kernel.run(32 * 40);
  EXPECT_GT(plat->memory(mesh.ni(2, 2)).writes(), 0u);
  EXPECT_GT(plat->memory(mesh.ni(2, 0)).writes(), 0u);
  EXPECT_EQ(plat->total_network_drops(), 0u);
  while (p1->port->take_response()) {
  }
  while (p2->port->take_response()) {
  }
}

TEST_F(PlatformFixture, MulticastWriteLandsInAllMemories) {
  const std::vector<topo::NodeId> dsts = {mesh.ni(2, 0), mesh.ni(0, 2), mesh.ni(2, 2)};
  for (auto d : dsts) plat->add_memory(d);
  auto port = plat->connect_multicast(mesh.ni(0, 0), dsts, 4, 0x0000, 0x10000);
  ASSERT_TRUE(port.has_value());
  plat->configure();

  Transaction t;
  t.is_write = true;
  t.addr = 0x20;
  t.wdata = {0x11, 0x22};
  t.burst_len = 2;
  port->port->submit(t);

  ASSERT_TRUE(kernel.run_until(
      [&] {
        for (auto d : dsts)
          if (plat->memory(d).writes() < 2) return false;
        return true;
      },
      10000));
  for (auto d : dsts) {
    EXPECT_EQ(plat->memory(d).read(0x20), 0x11u) << "at " << d;
    EXPECT_EQ(plat->memory(d).read(0x21), 0x22u) << "at " << d;
  }
  EXPECT_EQ(plat->total_network_drops(), 0u);
}

TEST_F(PlatformFixture, MulticastRejectsReads) {
  const std::vector<topo::NodeId> dsts = {mesh.ni(2, 0), mesh.ni(0, 2)};
  for (auto d : dsts) plat->add_memory(d);
  auto port = plat->connect_multicast(mesh.ni(0, 0), dsts, 2, 0x0000, 0x10000);
  ASSERT_TRUE(port.has_value());
  plat->configure();

  Transaction rd;
  rd.is_write = false;
  rd.addr = 0;
  rd.burst_len = 1;
  port->port->submit(rd); // paper: "There is no corresponding multi-destination read"
  kernel.run(500);
  for (auto d : dsts) EXPECT_EQ(plat->memory(d).reads(), 0u);
  EXPECT_FALSE(port->port->take_response().has_value());
}

TEST_F(PlatformFixture, OverSubscribedConnectReportsFailureInsteadOfUb) {
  plat->add_memory(mesh.ni(2, 2));
  // More slots than the wheel has: the allocation must fail cleanly in
  // every build type (this used to be assert-then-dereference, i.e.
  // undefined behaviour under NDEBUG).
  auto bad = plat->connect(mesh.ni(0, 0), mesh.ni(2, 2), 99, 1, 0x0000, 0x1000);
  EXPECT_FALSE(bad.has_value());
  // No memory declared behind the destination NI.
  auto nomem = plat->connect(mesh.ni(0, 0), mesh.ni(1, 1), 1, 1, 0x0000, 0x1000);
  EXPECT_FALSE(nomem.has_value());
  // Multicast trees over-subscribe fastest: every branch reserves the
  // same slots, so 6 slots x 2 destinations cannot fit an 8-slot wheel
  // alongside anything.
  auto wide = plat->connect_multicast(mesh.ni(0, 0), {mesh.ni(2, 2), mesh.ni(1, 1)}, 99, 0x0000,
                                      0x1000);
  EXPECT_FALSE(wide.has_value());
  auto empty = plat->connect_multicast(mesh.ni(0, 0), {}, 2, 0x0000, 0x1000);
  EXPECT_FALSE(empty.has_value());
  // The failed attempts left the allocator untouched: a reasonable
  // connection still fits and works end to end.
  auto good = plat->connect(mesh.ni(0, 0), mesh.ni(2, 2), 2, 1, 0x0000, 0x1000);
  ASSERT_TRUE(good.has_value());
  plat->configure();
  Transaction t;
  t.is_write = true;
  t.addr = 0x10;
  t.wdata = {7};
  t.burst_len = 1;
  good->port->submit(t);
  ASSERT_TRUE(kernel.run_until([&] { return plat->memory(mesh.ni(2, 2)).writes() >= 1; }, 5000));
}

TEST(TraceIpTest, ReplaysAtScheduledCycles) {
  sim::Kernel k;
  LocalBus bus;
  struct FakePort : InitiatorPort {
    void submit(const Transaction&) override { ++n; }
    std::optional<Response> take_response() override { return std::nullopt; }
    int n = 0;
  } port;
  bus.map(0, 0x1000, port);

  Transaction t;
  t.is_write = true;
  t.addr = 1;
  t.wdata = {9};
  t.burst_len = 1;
  TraceIp ip(k, "trace", bus, {{5, t}, {10, t}, {10, t}});
  k.run(4);
  EXPECT_EQ(port.n, 0);
  k.run(3);
  EXPECT_EQ(port.n, 1);
  k.run(5);
  EXPECT_EQ(port.n, 3);
  EXPECT_TRUE(ip.done());
}

TEST(TraceIpTest, RetriesUnderBackpressurePreservingOrder) {
  sim::Kernel k;
  LocalBus bus;
  // A port that refuses submissions until released — a saturated shell's
  // admission queue as seen through LocalBus::submit.
  struct StallPort : InitiatorPort {
    void submit(const Transaction& t) override { order.push_back(t.addr); }
    std::optional<Response> take_response() override { return std::nullopt; }
    bool ready() const override { return released; }
    std::vector<std::uint32_t> order;
    bool released = false;
  } port;
  bus.map(0, 0x1000, port);

  const auto wr = [](std::uint32_t addr) {
    Transaction t;
    t.is_write = true;
    t.addr = addr;
    t.wdata = {1};
    t.burst_len = 1;
    return t;
  };
  // The third entry targets an address no range maps: it must be dropped
  // (and counted), not wedge the ordered retry of everything behind it.
  TraceIp ip(k, "trace", bus, {{2, wr(1)}, {3, wr(2)}, {3, wr(0x2000)}, {4, wr(3)}});
  k.run(10);
  // Backpressured the whole time: nothing submitted, nothing skipped —
  // the old behaviour silently dropped the head each cycle.
  EXPECT_TRUE(port.order.empty());
  EXPECT_FALSE(ip.done());
  EXPECT_EQ(ip.submitted(), 0u);
  EXPECT_EQ(ip.dropped(), 0u);
  EXPECT_GE(ip.deferred(), 8u);
  EXPECT_GE(bus.busy(), 8u);

  port.released = true;
  k.run(3);
  EXPECT_TRUE(ip.done());
  EXPECT_EQ(ip.submitted(), 3u);
  EXPECT_EQ(ip.dropped(), 1u); // only the unroutable address
  ASSERT_EQ(port.order.size(), 3u);
  EXPECT_EQ(port.order[0], 1u);
  EXPECT_EQ(port.order[1], 2u);
  EXPECT_EQ(port.order[2], 3u);
}

TEST(InitiatorShellAdmission, BoundedQueueBackpressuresTheBus) {
  sim::Kernel k;
  // An NI whose tx queue never accepts — a fully saturated network as seen
  // by the shell. With an admission limit the shell's pending queue fills,
  // ready() goes false, and LocalBus::submit starts refusing.
  struct SaturatedNi {
    bool tx_push(std::size_t, std::uint32_t) { return false; }
    std::optional<std::uint32_t> rx_pop(std::size_t) { return std::nullopt; }
  } ni;
  InitiatorShell<SaturatedNi> shell(k, "shell", ni, 0, 0);
  shell.set_admission_limit(4);
  ShellPort<InitiatorShell<SaturatedNi>> sp(shell);
  LocalBus bus;
  bus.map(0, 0x1000, sp);

  Transaction t;
  t.is_write = true;
  t.addr = 0x20;
  t.wdata = {1};
  t.burst_len = 1;
  TraceIp ip(k, "trace", bus, {{1, t}, {1, t}, {1, t}, {1, t}, {1, t}, {1, t}});
  k.run(50);
  EXPECT_EQ(ip.submitted(), 4u); // exactly the admission limit
  EXPECT_EQ(ip.dropped(), 0u);   // the rest wait, they are not lost
  EXPECT_FALSE(ip.done());
  EXPECT_GT(bus.busy(), 0u);
  EXPECT_EQ(shell.outstanding(), 4u);
}

TEST(BurstyWriterTest, GeneratesBurstyButBoundedTraffic) {
  sim::Kernel k;
  LocalBus bus;
  struct FakePort : InitiatorPort {
    void submit(const Transaction&) override { ++n; }
    std::optional<Response> take_response() override { return std::nullopt; }
    int n = 0;
  } port;
  bus.map(0, 0x100000, port);

  BurstyWriter::Params p;
  p.seed = 7;
  BurstyWriter w(k, "bw", bus, p);
  k.run(5000);
  EXPECT_GT(w.submitted(), 50u);     // it does send
  EXPECT_LT(w.submitted(), 5000u / p.min_gap); // but respects the gap
}

} // namespace
