// Tests for the self-healing subsystem: integrity sideband helpers,
// targeted fault-plan parsing, link quarantine in the allocator, and the
// end-to-end detect -> quarantine -> re-route -> restore flow through
// soc::run_scenario, including its determinism across schedulers and
// repeated runs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/dimension.hpp"
#include "daelite/flit.hpp"
#include "sim/fault.hpp"
#include "sim/json.hpp"
#include "soc/runner.hpp"
#include "topology/generators.hpp"

namespace daelite {
namespace {

// --- Integrity sideband helpers ----------------------------------------------------

TEST(Integrity, TagRoundTripsSequenceAndParity) {
  for (std::uint8_t seq = 0; seq < hw::kIntegritySeqPeriod; ++seq) {
    for (std::uint32_t word : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
      const std::uint8_t tag = hw::integrity_tag(word, seq);
      EXPECT_TRUE(hw::integrity_parity_ok(word, tag));
      EXPECT_EQ(hw::integrity_seq_of(tag), seq);
    }
  }
}

TEST(Integrity, PayloadCorruptionFlipsParityVerdict) {
  const std::uint32_t word = 0xCAFE0000u;
  const std::uint8_t tag = hw::integrity_tag(word, 5);
  // Any single-bit payload flip must be caught by the even-parity bit.
  for (std::uint32_t bit = 0; bit < 32; ++bit)
    EXPECT_FALSE(hw::integrity_parity_ok(word ^ (1u << bit), tag)) << "bit " << bit;
}

// --- Fault-plan parsing of targeted (per-line) directives --------------------------

TEST(FaultPlanParse, AcceptsLineTargetedKill) {
  sim::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(sim::FaultPlan::parse_text("kill data@7 1000 2000\n", &plan, &err)) << err;
  ASSERT_EQ(plan.directives.size(), 1u);
  EXPECT_EQ(plan.directives[0].kind, sim::FaultDirective::Kind::kKill);
  EXPECT_EQ(plan.directives[0].cls, sim::FaultClass::kData);
  EXPECT_EQ(plan.directives[0].line_index, 7);
  EXPECT_EQ(plan.directives[0].from, 1000u);
  EXPECT_EQ(plan.directives[0].to, 2000u);
}

TEST(FaultPlanParse, RejectsMalformedDirectivesWithDiagnostics) {
  const struct {
    const char* text;
    const char* needle; ///< expected fragment of the diagnostic
  } cases[] = {
      {"kill bogus 0 10\n", "bogus"},            // unknown class
      {"kill data@x 0 10\n", "data@x"},          // non-numeric line index
      {"kill data 10 10\n", "window"},           // to <= from
      {"drop data 3 extra\n", "extra"},          // trailing tokens
      {"flip data -1 0\n", "-1"},                // negative count
      {"explode data 0\n", "explode"},           // unknown directive
  };
  for (const auto& c : cases) {
    sim::FaultPlan plan;
    std::string err;
    EXPECT_FALSE(sim::FaultPlan::parse_text(c.text, &plan, &err)) << c.text;
    EXPECT_NE(err.find("line 1"), std::string::npos) << c.text << " -> " << err;
    EXPECT_NE(err.find(c.needle), std::string::npos) << c.text << " -> " << err;
  }
}

// --- Allocator quarantine ----------------------------------------------------------

TEST(Quarantine, AllocationAvoidsQuarantinedLinks) {
  const auto m = topo::make_mesh(3, 3);
  const tdm::TdmParams params = tdm::daelite_params(16);
  alloc::SlotAllocator a(m.topo, params);

  alloc::ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(2, 0)};
  spec.slots_required = 2;
  auto direct = a.allocate(spec);
  ASSERT_TRUE(direct.has_value());

  // Quarantine the route's router-to-router links (the first and last
  // edges are the NI attachment links — the only way in and out of the
  // endpoints); a fresh allocation must detour around the quarantine.
  a.release(*direct);
  ASSERT_GE(direct->edges.size(), 3u);
  std::size_t quarantined = 0;
  for (std::size_t i = 1; i + 1 < direct->edges.size(); ++i, ++quarantined)
    a.quarantine_link(direct->edges[i].link);
  EXPECT_TRUE(a.is_quarantined(direct->edges[1].link));
  auto detour = a.allocate(spec);
  ASSERT_TRUE(detour.has_value());
  for (const alloc::RouteEdge& e : detour->edges)
    EXPECT_FALSE(a.is_quarantined(e.link)) << "link " << e.link;

  // quarantined_links() lists ascending ids; clearing re-opens the row.
  const auto q = a.quarantined_links();
  EXPECT_EQ(q.size(), quarantined);
  EXPECT_TRUE(std::is_sorted(q.begin(), q.end()));
  a.clear_quarantine();
  EXPECT_TRUE(a.quarantined_links().empty());
  a.release(*detour);
  EXPECT_EQ(a.allocated_channels(), 0u);
  EXPECT_DOUBLE_EQ(a.schedule().utilization(), 0.0);
}

// --- End-to-end recovery through run_scenario --------------------------------------

soc::Scenario victim_scenario(int d, std::uint32_t slots) {
  soc::Scenario sc;
  sc.kind = soc::Scenario::TopologyKind::kMesh;
  sc.width = 4;
  sc.height = 2;
  sc.slots = slots;
  sc.host = {0, 1};
  sc.run_cycles = 12000;
  soc::Scenario::RawConnection c;
  c.name = "victim";
  c.src = {0, 0};
  c.dsts.push_back({d, 0});
  c.bandwidth = 150.0;
  sc.raw.push_back(std::move(c));
  return sc;
}

/// The link the runner will route the victim over, found by replaying the
/// same deterministic dimensioning (seed 0 keeps file order).
std::uint64_t victim_mid_link(soc::Scenario sc) {
  topo::Mesh mesh = sc.build();
  const alloc::NocClocking clk{sc.clock_mhz, 4};
  auto dim = alloc::dimension_network(mesh.topo, sc.connections, clk, {*sc.slots});
  EXPECT_TRUE(dim.has_value());
  const auto& edges = dim->allocation.connections.front().request.edges;
  return edges[edges.size() / 2].link;
}

soc::RunSpec kill_spec(soc::Scenario sc, std::uint64_t link, sim::Cycle at) {
  soc::RunSpec spec;
  spec.label = "recovery-test";
  spec.scenario = std::move(sc);
  spec.fault_plan.seed = 42;
  sim::FaultDirective kill;
  kill.kind = sim::FaultDirective::Kind::kKill;
  kill.cls = sim::FaultClass::kData;
  kill.line_index = static_cast<std::int64_t>(link);
  kill.from = at;
  kill.to = sim::kNoCycle;
  spec.fault_plan.directives.push_back(kill);
  spec.recovery.enabled = true;
  return spec;
}

TEST(Recovery, KilledLinkIsDetectedQuarantinedAndRoutedAround) {
  soc::Scenario sc = victim_scenario(3, 16);
  const std::uint64_t link = victim_mid_link(sc);
  const analysis::NetworkReport r = soc::run_scenario(kill_spec(sc, link, 4000));
  ASSERT_TRUE(r.error.empty()) << r.error;

  ASSERT_EQ(r.recovery.dead_links.size(), 1u);
  EXPECT_EQ(r.recovery.dead_links[0].link, link);
  EXPECT_GE(r.recovery.dead_links[0].cycle, 4000u);
  EXPECT_GT(r.recovery.dead_links[0].evidence, 0u);
  EXPECT_EQ(r.recovery.quarantined, std::vector<std::uint64_t>{link});

  ASSERT_EQ(r.recovery.events.size(), 1u);
  const analysis::RecoveryEvent& ev = r.recovery.events[0];
  EXPECT_EQ(ev.connection, "victim");
  EXPECT_EQ(ev.trigger, "link_dead");
  EXPECT_TRUE(ev.restored);
  EXPECT_GT(ev.latency_cycles(), 0u);
  EXPECT_LT(ev.latency_cycles(), 2000u); // bounded, not "eventually"
  // The detour must be at least as long as the direct route it replaces.
  EXPECT_GE(ev.hops_after, ev.hops_before);
  // Ordering: detected before reconfigured before restored.
  EXPECT_LT(ev.detected_cycle, ev.reconfigured_cycle);
  EXPECT_LE(ev.reconfigured_cycle, ev.restored_cycle);
}

TEST(Recovery, ArmedButFaultFreeRunStaysClean) {
  soc::Scenario sc = victim_scenario(3, 16);
  soc::RunSpec spec;
  spec.label = "recovery-clean";
  spec.scenario = sc;
  spec.recovery.enabled = true;
  const analysis::NetworkReport r = soc::run_scenario(spec);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.recovery.enabled);
  EXPECT_EQ(r.recovery.missing_flits, 0u);
  EXPECT_EQ(r.recovery.parity_errors, 0u);
  EXPECT_TRUE(r.recovery.dead_links.empty());
  EXPECT_TRUE(r.recovery.quarantined.empty());
  EXPECT_TRUE(r.recovery.events.empty());
}

TEST(Recovery, ReportIsIdenticalAcrossSchedulersAndRuns) {
  soc::Scenario sc = victim_scenario(3, 16);
  const std::uint64_t link = victim_mid_link(sc);

  soc::RunSpec spec = kill_spec(sc, link, 4000);
  spec.scheduler = sim::Scheduler::kStride;
  const std::string stride = soc::run_scenario(spec).to_json().dump(2);
  const std::string stride_again = soc::run_scenario(spec).to_json().dump(2);
  spec.scheduler = sim::Scheduler::kReference;
  const std::string reference = soc::run_scenario(spec).to_json().dump(2);

  EXPECT_EQ(stride, stride_again); // no hidden global state between jobs
  EXPECT_EQ(stride, reference);    // fast-forward never skips a verdict
}

TEST(Recovery, IntegrityCountersSeeFlippedAndDroppedWords) {
  // A single flipped payload word is a parity mismatch at the destination;
  // a single dropped word is a sequence gap. Neither kills the link, so no
  // recovery fires — detection is purely end-to-end.
  soc::Scenario sc = victim_scenario(3, 16);
  for (const bool flip : {true, false}) {
    soc::RunSpec spec;
    spec.label = flip ? "flip" : "drop";
    spec.scenario = sc;
    spec.fault_plan.seed = 42;
    sim::FaultDirective d;
    d.kind = flip ? sim::FaultDirective::Kind::kFlip : sim::FaultDirective::Kind::kDrop;
    d.cls = sim::FaultClass::kData;
    d.nth = 50;
    spec.fault_plan.directives.push_back(d);
    spec.recovery.enabled = true;
    const analysis::NetworkReport r = soc::run_scenario(spec);
    ASSERT_TRUE(r.error.empty()) << r.error;
    if (flip) {
      EXPECT_GE(r.health.corrupt_words, 1u);
    } else {
      EXPECT_GE(r.health.lost_words, 1u);
    }
    EXPECT_TRUE(r.recovery.events.empty());
  }
}

} // namespace
} // namespace daelite
