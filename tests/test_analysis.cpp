// Tests for the analysis module: analytic formulas, Table I registry,
// set-up cost accounting, and the report printer. Several tests
// cross-check the analytic numbers against the cycle-accurate simulation.

#include <gtest/gtest.h>

#include <sstream>

#include "alloc/allocator.hpp"
#include "alloc/usecase.hpp"
#include "analysis/features.hpp"
#include "analysis/formulas.hpp"
#include "analysis/network_report.hpp"
#include "analysis/report.hpp"
#include "analysis/setup_time.hpp"
#include "daelite/network.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::analysis;

TEST(Formulas, TraversalLatencyMatchesPaperRatio) {
  const auto d = tdm::daelite_params(16);
  const auto a = tdm::aelite_params(16);
  // 33% reduction: 2 cycles vs 3 cycles per hop.
  for (std::size_t hops = 1; hops <= 12; ++hops) {
    const double ratio = static_cast<double>(traversal_latency_cycles(hops, d)) /
                         static_cast<double>(traversal_latency_cycles(hops, a));
    EXPECT_NEAR(ratio, 2.0 / 3.0, 1e-9);
  }
}

TEST(Formulas, SchedulingLatencySingleSlot) {
  const auto p = tdm::daelite_params(8); // wheel = 16 cycles
  const auto s = scheduling_latency({0}, p);
  EXPECT_EQ(s.worst_cycles, 15u);
  EXPECT_NEAR(s.average_cycles, 7.5, 1e-9);
}

TEST(Formulas, SpreadSlotsBeatClusteredSlots) {
  const auto p = tdm::daelite_params(8);
  const auto spread = scheduling_latency({0, 4}, p);
  const auto clustered = scheduling_latency({0, 1}, p);
  EXPECT_LT(spread.worst_cycles, clustered.worst_cycles);
  EXPECT_LT(spread.average_cycles, clustered.average_cycles);
}

TEST(Formulas, HeaderOverheadRange) {
  EXPECT_NEAR(aelite_header_overhead(1), 1.0 / 3.0, 1e-9); // 33%
  EXPECT_NEAR(aelite_header_overhead(3), 1.0 / 9.0, 1e-9); // 11%
  EXPECT_EQ(daelite_header_overhead(), 0.0);
}

TEST(Formulas, ConfigBandwidthLoss) {
  EXPECT_NEAR(aelite_config_bandwidth_loss(16), 0.0625, 1e-9); // paper: 6.25%
}

TEST(Formulas, ChannelBandwidth) {
  const auto p = tdm::daelite_params(8);
  // 4 of 8 slots, full payload: half a word per cycle.
  EXPECT_NEAR(channel_bandwidth_wpc(4, p, 2.0), 0.5, 1e-9);
  // aelite, scattered slots: 2 payload of 3 words.
  const auto a = tdm::aelite_params(8);
  EXPECT_NEAR(channel_bandwidth_wpc(4, a, 2.0), 1.0 / 3.0, 1e-9);
}

TEST(Features, TableHasAllPaperRows) {
  const auto rows = table1();
  EXPECT_EQ(rows.size(), 7u);
  bool found = false;
  for (const auto& r : rows)
    if (r.name == "daelite") {
      found = true;
      EXPECT_EQ(r.routing, "distributed");
      EXPECT_NE(r.connection_types.find("multicast"), std::string::npos);
    }
  EXPECT_TRUE(found);
}

TEST(SetupTime, PacketWordFormula) {
  // Fig. 6: S=8, 4 elements: 1 header + 2 mask + 8 pairs + 1 end = 12.
  EXPECT_EQ(path_packet_words(4, 8), 12u);
  EXPECT_EQ(pad_to_host_writes(12), 12u);
  EXPECT_EQ(pad_to_host_writes(11), 12u);
  EXPECT_EQ(pad_to_host_writes(13), 16u);
}

TEST(SetupTime, WordsDependOnPathLengthNotSlotCount) {
  const auto m = topo::make_mesh(4, 4);
  const auto p = tdm::daelite_params(16);
  alloc::SlotAllocator alloc(m.topo, p);

  alloc::ChannelSpec one;
  one.src_ni = m.ni(0, 0);
  one.dst_nis = {m.ni(3, 3)};
  one.slots_required = 1;
  const auto r1 = alloc.allocate(one);
  ASSERT_TRUE(r1.has_value());

  alloc::ChannelSpec many = one;
  many.slots_required = 8;
  const auto r8 = alloc.allocate(many);
  ASSERT_TRUE(r8.has_value());

  // Same path length -> same word count, regardless of slots used.
  EXPECT_EQ(route_setup_words(m.topo, p, *r1), route_setup_words(m.topo, p, *r8));

  // Longer path -> more words.
  alloc::ChannelSpec shorter;
  shorter.src_ni = m.ni(0, 0);
  shorter.dst_nis = {m.ni(1, 0)};
  shorter.slots_required = 1;
  const auto rs = alloc.allocate(shorter);
  ASSERT_TRUE(rs.has_value());
  EXPECT_LT(route_setup_words(m.topo, p, *rs), route_setup_words(m.topo, p, *r1));
}

TEST(SetupTime, IdealIsLowerBoundOnMeasuredConfigTime) {
  // Cross-check against the cycle-accurate configuration network.
  const auto m = topo::make_mesh(3, 3);
  sim::Kernel k;
  hw::DaeliteNetwork::Options opt;
  opt.tdm = tdm::daelite_params(8);
  opt.cfg_root = m.ni(0, 0);
  hw::DaeliteNetwork net(k, m.topo, opt);
  alloc::SlotAllocator alloc(m.topo, opt.tdm);

  alloc::UseCase uc;
  uc.connections.push_back({"c", m.ni(0, 1), {m.ni(2, 2)}, 2, 1});
  auto a = alloc::allocate_use_case(alloc, uc);
  ASSERT_TRUE(a.has_value());

  const auto ideal = daelite_ideal_connection_setup_cycles(m.topo, opt.tdm, a->connections[0],
                                                           opt.cool_down_cycles);
  (void)net.open_connection(a->connections[0]);
  const sim::Cycle measured = net.run_config();

  EXPECT_GE(measured, ideal);
  // Measured exceeds ideal only by tree propagation + response margin.
  EXPECT_LE(measured, ideal + 2 * net.config_tree().max_depth() + 16);
}

TEST(NetworkReport, LinkUsageSortedAndSummarized) {
  const auto m = topo::make_mesh(2, 2);
  alloc::SlotAllocator alloc(m.topo, tdm::daelite_params(8));
  alloc::ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(1, 1)};
  spec.slots_required = 4;
  ASSERT_TRUE(alloc.allocate(spec).has_value());

  const auto usage = analysis::link_usage(m.topo, alloc.schedule());
  ASSERT_EQ(usage.size(), m.topo.link_count());
  // Sorted by reservations, and the channel's 4 links carry 4 slots each.
  EXPECT_EQ(usage.front().reserved, 4u);
  for (std::size_t i = 1; i < usage.size(); ++i)
    EXPECT_GE(usage[i - 1].reserved, usage[i].reserved);

  const auto sum = analysis::summarize_schedule(m.topo, alloc.schedule());
  EXPECT_EQ(sum.used_links, 4u);
  EXPECT_EQ(sum.saturated_links, 0u);
  EXPECT_DOUBLE_EQ(sum.max_utilization, 0.5);
  EXPECT_GT(sum.mean_utilization, 0.0);
}

TEST(NetworkReport, PrintProducesTables) {
  const auto m = topo::make_mesh(2, 2);
  alloc::SlotAllocator alloc(m.topo, tdm::daelite_params(8));
  alloc::ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(1, 0)};
  spec.slots_required = 2;
  ASSERT_TRUE(alloc.allocate(spec).has_value());
  std::ostringstream os;
  analysis::print_link_usage(os, m.topo, alloc.schedule(), 5);
  EXPECT_NE(os.str().find("Busiest links"), std::string::npos);
  EXPECT_NE(os.str().find("2/8"), std::string::npos);
}

TEST(Report, TableFormatsAligned) {
  TextTable t("Demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Report, NumberFormatting) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(pct(0.0625, 2), "6.25%");
  EXPECT_EQ(pct(0.33333, 0), "33%");
}

} // namespace
