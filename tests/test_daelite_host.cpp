// Tests for the run-time HostController: online open/close, rejection
// without residue, credit read-back through the response path, and a
// dynamic churn property test.

#include <gtest/gtest.h>

#include "alloc/validate.hpp"
#include "daelite/host.hpp"
#include "soc/bus.hpp"
#include "sim/random.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::hw;

struct HostFixtureNet : ::testing::Test {
  topo::Mesh mesh = topo::make_mesh(3, 3);
  sim::Kernel kernel;
  std::unique_ptr<DaeliteNetwork> net;
  std::unique_ptr<alloc::SlotAllocator> alloc;
  std::unique_ptr<HostController> host;

  void SetUp() override {
    DaeliteNetwork::Options opt;
    opt.tdm = tdm::daelite_params(8);
    opt.cfg_root = mesh.ni(1, 1);
    net = std::make_unique<DaeliteNetwork>(kernel, mesh.topo, opt);
    alloc = std::make_unique<alloc::SlotAllocator>(mesh.topo, opt.tdm);
    host = std::make_unique<HostController>(*net, *alloc);
  }
};

TEST_F(HostFixtureNet, OpenConfiguresAndTrafficFlows) {
  auto r = host->open(mesh.ni(0, 0), {mesh.ni(2, 2)}, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->config_cycles, 0u);
  EXPECT_EQ(host->opened(), 1u);

  Ni& src = net->ni(mesh.ni(0, 0));
  Ni& dst = net->ni(mesh.ni(2, 2));
  src.tx_push(r->handle.src_tx_q, 0x55);
  ASSERT_TRUE(kernel.run_until([&] { return dst.rx_level(r->handle.dst_rx_qs[0]) > 0; }, 1000));
  EXPECT_EQ(*dst.rx_pop(r->handle.dst_rx_qs[0]), 0x55u);
}

TEST_F(HostFixtureNet, RejectionLeavesNoResidue) {
  // Saturate the source NI link, then ask for more.
  auto big = host->open(mesh.ni(0, 0), {mesh.ni(2, 2)}, 8, 0);
  // 8 request slots fill the wheel except the response slot... request
  // the remainder to guarantee failure.
  auto more = host->open(mesh.ni(0, 0), {mesh.ni(1, 0)}, 8);
  EXPECT_FALSE(more.has_value());
  EXPECT_EQ(host->rejected(), 1u);
  if (big) host->close(big->handle);
  EXPECT_DOUBLE_EQ(alloc->schedule().utilization(), 0.0);
}

TEST_F(HostFixtureNet, MulticastOpenHasNoResponseChannel) {
  auto r = host->open(mesh.ni(0, 0), {mesh.ni(2, 0), mesh.ni(2, 2)}, 2, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->handle.conn.has_response);
}

TEST_F(HostFixtureNet, CloseRestoresCleanState) {
  auto r = host->open(mesh.ni(0, 1), {mesh.ni(2, 1)}, 3);
  ASSERT_TRUE(r.has_value());
  host->close(r->handle);
  EXPECT_EQ(host->closed(), 1u);
  EXPECT_DOUBLE_EQ(alloc->schedule().utilization(), 0.0);
  for (topo::NodeId n = 0; n < mesh.topo.node_count(); ++n)
    if (mesh.topo.is_router(n)) {
      EXPECT_TRUE(net->router(n).table().empty());
    }
}

TEST_F(HostFixtureNet, ReadCreditThroughResponsePath) {
  auto r = host->open(mesh.ni(0, 0), {mesh.ni(2, 2)}, 2);
  ASSERT_TRUE(r.has_value());
  // The source tx queue was initialized with the destination capacity
  // (min(32, 63) = 32).
  auto credit = host->read_credit(mesh.ni(0, 0), r->handle.src_tx_q);
  ASSERT_TRUE(credit.has_value());
  EXPECT_EQ(*credit, 32);
}

TEST_F(HostFixtureNet, ReadCreditObservesConsumption) {
  auto r = host->open(mesh.ni(0, 0), {mesh.ni(2, 2)}, 2);
  ASSERT_TRUE(r.has_value());
  Ni& src = net->ni(mesh.ni(0, 0));
  for (int i = 0; i < 6; ++i) src.tx_push(r->handle.src_tx_q, 1);
  kernel.run(200); // words depart, credits not yet returned (nobody pops)
  auto credit = host->read_credit(mesh.ni(0, 0), r->handle.src_tx_q);
  ASSERT_TRUE(credit.has_value());
  EXPECT_EQ(*credit, 32 - 6);
}

TEST_F(HostFixtureNet, ReadFlagsThroughResponsePath) {
  auto r = host->open(mesh.ni(0, 0), {mesh.ni(2, 2)}, 2);
  ASSERT_TRUE(r.has_value());
  auto flags = host->read_flags(mesh.ni(0, 0), r->handle.src_tx_q);
  ASSERT_TRUE(flags.has_value());
  EXPECT_EQ(*flags, kFlagTxEnabled); // unicast: flow control on, enabled

  auto mc = host->open(mesh.ni(0, 2), {mesh.ni(2, 0), mesh.ni(2, 2)}, 1, 0);
  ASSERT_TRUE(mc.has_value());
  auto mc_flags = host->read_flags(mesh.ni(0, 2), mc->handle.src_tx_q);
  ASSERT_TRUE(mc_flags.has_value());
  EXPECT_EQ(*mc_flags, kFlagTxEnabled | kFlagFlowCtrlOff); // multicast source
}

TEST_F(HostFixtureNet, BusRegistersProgrammedThroughConfigTree) {
  host->write_bus_register(mesh.ni(2, 2), 0x07, 0x1ABC);
  EXPECT_EQ(net->ni(mesh.ni(2, 2)).bus_register(0x07), 0x1ABC);
}

TEST_F(HostFixtureNet, ConfiguredBusRoutesPerProgrammedMap) {
  host->configure_bus_map(mesh.ni(0, 0), {{0x0000, 0x1000}, {0x4000, 0x2000}});

  struct FakePort : soc::InitiatorPort {
    void submit(const soc::Transaction& t) override { addrs.push_back(t.addr); }
    std::optional<soc::Response> take_response() override { return std::nullopt; }
    std::vector<std::uint32_t> addrs;
  };
  FakePort a, b;
  soc::ConfiguredBus bus(net->ni(mesh.ni(0, 0)));
  bus.attach_port(a);
  bus.attach_port(b);
  EXPECT_EQ(bus.range_count(), 2u);

  soc::Transaction t;
  t.addr = 0x0800;
  EXPECT_TRUE(bus.submit(t));
  t.addr = 0x5000;
  EXPECT_TRUE(bus.submit(t));
  t.addr = 0x9000;
  EXPECT_FALSE(bus.submit(t)); // outside both ranges
  EXPECT_EQ(a.addrs.size(), 1u);
  EXPECT_EQ(b.addrs.size(), 1u);

  // Reconfigure at run time: shrink range 1 to one page so addresses past
  // 0x4400 no longer route.
  host->write_bus_register(mesh.ni(0, 0), 3, 1); // 1 page = 1024 words
  t.addr = 0x4000 + 2048;
  EXPECT_FALSE(bus.submit(t));
}

TEST_F(HostFixtureNet, ChurnPropertyScheduleAlwaysConsistent) {
  sim::Xoshiro256 rng(77);
  const auto nis = mesh.all_nis();
  std::vector<ConnectionHandle> live;
  std::vector<alloc::RouteTree> live_routes;

  auto collect_routes = [&] {
    live_routes.clear();
    for (const auto& h : live) {
      live_routes.push_back(h.conn.request);
      if (h.conn.has_response) live_routes.push_back(h.conn.response);
    }
  };

  for (int step = 0; step < 30; ++step) {
    if (live.empty() || rng.chance(0.65)) {
      const auto s = nis[rng.below(nis.size())];
      const auto d = nis[rng.below(nis.size())];
      if (s == d) continue;
      auto r = host->open(s, {d}, static_cast<std::uint32_t>(rng.range(1, 2)));
      if (r) live.push_back(r->handle);
    } else {
      const std::size_t idx = rng.below(live.size());
      host->close(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    collect_routes();
    ASSERT_EQ(alloc::validate_allocation(mesh.topo, net->options().tdm, alloc->schedule(),
                                         live_routes),
              "")
        << "step " << step;
  }
  EXPECT_EQ(net->total_cfg_errors(), 0u);
}

} // namespace
