// Unit tests for the daelite router: blind slot-table forwarding, 2-cycle
// hop latency, multicast duplication, drop accounting, config application.

#include <gtest/gtest.h>

#include <tuple>

#include "daelite/router.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace daelite;
using namespace daelite::hw;

/// Drives a Reg<Flit> from test code; clears it after one slot unless
/// re-driven (so stale values never linger, like a real upstream element).
class FlitStub : public sim::Component {
 public:
  FlitStub(sim::Kernel& k, std::string name, tdm::TdmParams p)
      : sim::Component(k, std::move(name)), params_(p) {
    own(out_);
  }
  const sim::Reg<Flit>& out() const { return out_; }

  /// Schedule `f` to appear on the output register at the next slot start.
  void drive(const Flit& f) { pending_ = f; }

  void tick() override {
    if (!params_.is_slot_start(now())) return;
    out_.set(pending_);
    pending_ = Flit{};
  }

 private:
  tdm::TdmParams params_;
  sim::Reg<Flit> out_;
  Flit pending_;
};

Flit make_flit(std::uint32_t word, std::uint8_t num_words = 2) {
  Flit f;
  f.valid = true;
  f.num_words = num_words;
  f.data[0] = word;
  f.data_valid[0] = true;
  return f;
}

class RouterTest : public ::testing::Test {
 protected:
  tdm::TdmParams params = tdm::daelite_params(4); // wheel = 8 cycles
  sim::Kernel k;
  FlitStub in0{k, "in0", params};
  FlitStub in1{k, "in1", params};
  Router r{k, "R", /*cfg_id=*/1, /*in=*/2, /*out=*/2, params};

  void SetUp() override {
    r.connect_input(0, &in0.out());
    r.connect_input(1, &in1.out());
  }

  /// Run to the first cycle of the next occurrence of `slot`.
  void run_to_slot(tdm::Slot slot) {
    while (!(params.is_slot_start(k.now()) && params.slot_of_cycle(k.now()) == slot)) k.step();
  }
};

TEST_F(RouterTest, ForwardsPerSlotTableWithOneSlotDelay) {
  // The stub (upstream element) acts in slot 1, so the router acts on the
  // flit in slot 2: the table entry lives at slot 2.
  r.table().set(1, 2, 0);

  run_to_slot(1);
  in0.drive(make_flit(0xABCD)); // stub emits during slot 1
  const bool seen = k.run_until([&] { return r.output_reg(1).get().valid; }, 64);
  ASSERT_TRUE(seen);
  EXPECT_EQ(r.output_reg(1).get().data[0], 0xABCDu);
  EXPECT_EQ(r.stats().flits_forwarded, 1u);
  EXPECT_EQ(r.stats().flits_dropped, 0u);
}

TEST_F(RouterTest, HopLatencyIsExactlyOneSlot) {
  // Program every slot so timing is easy to observe: out 0 <- in 0 always.
  for (tdm::Slot s = 0; s < params.num_slots; ++s) r.table().set(0, s, 0);

  run_to_slot(0);
  in0.drive(make_flit(42)); // stub emits at slot 1's start
  // The stub's output register holds the flit during slot 1; the router
  // reads it at slot 2's start and its output holds it during slot 2.
  sim::Cycle emitted = sim::kNoCycle, forwarded = sim::kNoCycle;
  for (int i = 0; i < 16; ++i) {
    k.step();
    if (emitted == sim::kNoCycle && in0.out().get().valid) emitted = k.now();
    if (forwarded == sim::kNoCycle && r.output_reg(0).get().valid) forwarded = k.now();
  }
  ASSERT_NE(emitted, sim::kNoCycle);
  ASSERT_NE(forwarded, sim::kNoCycle);
  EXPECT_EQ(forwarded - emitted, params.hop_cycles); // 2 cycles per hop
}

TEST_F(RouterTest, UnconfiguredSlotDropsFlit) {
  // No table entry anywhere: a valid arrival must be counted as dropped.
  run_to_slot(0);
  in0.drive(make_flit(7));
  k.run(params.wheel_cycles());
  EXPECT_EQ(r.stats().flits_in, 1u);
  EXPECT_EQ(r.stats().flits_dropped, 1u);
  EXPECT_EQ(r.stats().flits_forwarded, 0u);
}

TEST_F(RouterTest, MulticastDuplicatesToBothOutputs) {
  for (tdm::Slot s = 0; s < params.num_slots; ++s) {
    r.table().set(0, s, 1);
    r.table().set(1, s, 1);
  }
  run_to_slot(0);
  in1.drive(make_flit(99));
  bool both = k.run_until(
      [&] { return r.output_reg(0).get().valid && r.output_reg(1).get().valid; }, 32);
  ASSERT_TRUE(both);
  EXPECT_EQ(r.output_reg(0).get().data[0], 99u);
  EXPECT_EQ(r.output_reg(1).get().data[0], 99u);
  EXPECT_EQ(r.stats().flits_forwarded, 2u); // one per copy
  EXPECT_EQ(r.stats().flits_dropped, 0u);
  EXPECT_EQ(r.stats().flits_in, 1u);
}

TEST_F(RouterTest, InvalidFlitsAreNotCountedOrForwardedAsTraffic) {
  r.table().set(0, 1, 0);
  k.run(4 * params.wheel_cycles()); // idle network
  EXPECT_EQ(r.stats().flits_in, 0u);
  EXPECT_EQ(r.stats().flits_forwarded, 0u);
  EXPECT_FALSE(r.output_reg(0).get().valid);
}

TEST_F(RouterTest, CfgApplyPathSetsAndClearsMaskedSlots) {
  // slots {1,3}: out 1 <- in 0.
  const std::uint64_t mask = (1u << 1) | (1u << 3);
  r.cfg_apply_path(mask, encode_router_ports(0, 1), /*setup=*/true);
  EXPECT_EQ(r.table().input_for(1, 1), 0);
  EXPECT_EQ(r.table().input_for(1, 3), 0);
  EXPECT_EQ(r.table().input_for(1, 0), tdm::kUnusedPort);
  EXPECT_EQ(r.stats().table_writes, 2u);

  r.cfg_apply_path(mask, encode_router_ports(0, 1), /*setup=*/false);
  EXPECT_TRUE(r.table().empty());
}

TEST_F(RouterTest, NiOnlyConfigOpsCountAsErrors) {
  r.cfg_write_credit(0, 5);
  r.cfg_set_pair(0, 1);
  EXPECT_EQ(r.stats().cfg_errors, 2u);
}

TEST(RouterScheduler, MulticastIdenticalUnderStrideAndReference) {
  // Two outputs read the same input port in the same slot (multicast):
  // both copies must be forwarded, and the per-output counters must be
  // identical between the stride scheduler and the per-cycle reference.
  const auto run = [](sim::Scheduler sched) {
    const tdm::TdmParams params = tdm::daelite_params(4);
    sim::Kernel k(sched);
    FlitStub in0{k, "in0", params};
    FlitStub in1{k, "in1", params};
    Router r{k, "R", /*cfg_id=*/1, /*in=*/2, /*out=*/2, params};
    r.connect_input(0, &in0.out());
    r.connect_input(1, &in1.out());
    for (tdm::Slot s = 0; s < params.num_slots; ++s) {
      r.table().set(0, s, 1);
      r.table().set(1, s, 1);
    }
    for (std::uint32_t i = 0; i < 5; ++i) {
      in1.drive(make_flit(100 + i));
      k.run(params.wheel_cycles()); // one flit per wheel
    }
    k.run(4 * params.wheel_cycles()); // idle tail: counters must freeze
    return std::tuple{r.forwarded_on(0), r.forwarded_on(1), r.stats().flits_forwarded,
                      r.stats().flits_in, r.stats().flits_dropped};
  };
  const auto stride = run(sim::Scheduler::kStride);
  const auto reference = run(sim::Scheduler::kReference);
  EXPECT_EQ(stride, reference);
  EXPECT_EQ(std::get<0>(stride), 5u); // every copy forwarded, per output
  EXPECT_EQ(std::get<1>(stride), 5u);
  EXPECT_EQ(std::get<2>(stride), 10u);
  EXPECT_EQ(std::get<4>(stride), 0u);
}

TEST(RouterPorts, EncodingRoundTrips) {
  for (std::uint8_t in = 0; in < 8; ++in) {
    for (std::uint8_t out = 0; out < 8; ++out) {
      const std::uint8_t w = encode_router_ports(in, out);
      EXPECT_LT(w, 0x40); // bit 6 clear: distinguishable from NI tx words
      EXPECT_EQ(router_in_port(w), in);
      EXPECT_EQ(router_out_port(w), out);
    }
  }
}

} // namespace
