// Tests for the online allocation service under churn: ChannelId
// recycling (no aliasing, bounded watermark, restore() re-claiming ids
// from the free-list), the integer kSpread slot picking, transactional
// modify and switch roll-back under forced partial-restore, and the
// incremental-vs-from-scratch equivalence oracle on replayed request
// streams.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "alloc/churn.hpp"
#include "alloc/switching.hpp"
#include "alloc/validate.hpp"
#include "sim/random.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::alloc;

ChannelSpec unicast(topo::NodeId src, topo::NodeId dst, std::uint32_t slots) {
  ChannelSpec s;
  s.src_ni = src;
  s.dst_nis = {dst};
  s.slots_required = slots;
  return s;
}

// --- ChannelId recycling -----------------------------------------------------

// Pre-recycling, next_channel_ was a bare monotonic counter: 20k
// allocate/release cycles consumed 20k ids. With the free-list, the id
// space stays as dense as the peak live-channel count.
TEST(ChannelIdRecycling, WatermarkBoundedByPeakLiveChannels) {
  const auto m = topo::make_mesh(2, 2);
  SlotAllocator alloc(m.topo, tdm::daelite_params(8));

  constexpr int kCycles = 20000; // >> 8 slots x 8 links: many id-space laps
  for (int i = 0; i < kCycles; ++i) {
    auto a = alloc.allocate(unicast(m.ni(0, 0), m.ni(1, 1), 2));
    auto b = alloc.allocate(unicast(m.ni(1, 0), m.ni(0, 1), 2));
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    alloc.release(*a);
    alloc.release(*b);
  }
  EXPECT_EQ(alloc.allocated_channels(), 0u);
  // At most two channels were ever live, so at most two ids were ever
  // minted.
  EXPECT_LE(alloc.channel_id_watermark(), 2u);
  EXPECT_EQ(alloc.free_id_count(), alloc.channel_id_watermark());
}

// The recycling property test the issue asks for: many times the id-space
// size in allocate/release cycles, under mixed churn, with the oracle
// checking the schedule is exactly the union of the live routes (so a
// recycled id can never alias a live one) and live_channels_ stays exact.
TEST(ChannelIdRecycling, ChurnNeverAliasesLiveChannels) {
  const auto m = topo::make_mesh(3, 3);
  const tdm::TdmParams params = tdm::daelite_params(16);
  SlotAllocator alloc(m.topo, params);
  const auto nis = m.all_nis();
  sim::Xoshiro256 rng(2024);

  std::vector<RouteTree> live;
  std::size_t peak_live = 0;
  for (int step = 0; step < 12000; ++step) {
    const bool do_alloc = live.empty() || rng.chance(0.55);
    if (do_alloc) {
      const auto src = nis[rng.below(nis.size())];
      auto dst = nis[rng.below(nis.size())];
      while (dst == src) dst = nis[rng.below(nis.size())];
      auto r = alloc.allocate(unicast(src, dst, 1 + static_cast<std::uint32_t>(rng.below(3))));
      if (r) live.push_back(std::move(*r));
    } else {
      const std::size_t idx = rng.below(live.size());
      alloc.release(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    peak_live = std::max(peak_live, live.size());
    ASSERT_EQ(alloc.allocated_channels(), live.size());

    // Live channel ids stay distinct even as ids recycle.
    std::set<tdm::ChannelId> ids;
    for (const RouteTree& r : live) ids.insert(r.channel);
    ASSERT_EQ(ids.size(), live.size());

    if (step % 500 == 0) {
      ASSERT_EQ(validate_allocation(m.topo, params, alloc.schedule(), live), "");
    }
  }
  ASSERT_EQ(validate_allocation(m.topo, params, alloc.schedule(), live), "");
  // Ids were minted for concurrent channels only, never for the churn.
  EXPECT_LE(alloc.channel_id_watermark(), peak_live);
}

// restore() must pull a recycled id back out of the free-list: if the id
// stayed there, a later allocate() would mint a channel aliasing the
// restored route's reservations.
TEST(ChannelIdRecycling, RestoreReclaimsIdFromFreeList) {
  const auto m = topo::make_mesh(3, 3);
  const tdm::TdmParams params = tdm::daelite_params(16);
  SlotAllocator alloc(m.topo, params);

  auto r1 = alloc.allocate(unicast(m.ni(0, 0), m.ni(2, 2), 2));
  auto r2 = alloc.allocate(unicast(m.ni(0, 2), m.ni(2, 0), 2));
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->channel, 0u);
  EXPECT_EQ(r2->channel, 1u);

  alloc.release(*r1);
  EXPECT_EQ(alloc.free_id_count(), 1u); // id 0 waiting for reuse
  ASSERT_TRUE(alloc.restore(*r1));      // ...but r1 takes it back
  EXPECT_EQ(alloc.free_id_count(), 0u);

  // A fresh allocation must NOT be handed id 0 (alias with restored r1).
  auto r3 = alloc.allocate(unicast(m.ni(1, 0), m.ni(1, 2), 2));
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->channel, 2u);

  const RouteTree routes[] = {*r1, *r2, *r3};
  EXPECT_EQ(validate_allocation(m.topo, params, alloc.schedule(), routes), "");
}

// Restoring a route whose id is past the watermark (a dimensioned
// allocation mirrored into a fresh allocator, as the recovery runner
// does) must advance the watermark so fresh ids cannot collide with it.
TEST(ChannelIdRecycling, RestoreAdvancesWatermarkPastForeignIds) {
  const auto m = topo::make_mesh(3, 3);
  const tdm::TdmParams params = tdm::daelite_params(16);
  SlotAllocator a(m.topo, params);
  SlotAllocator b(m.topo, params);

  auto r1 = a.allocate(unicast(m.ni(0, 0), m.ni(2, 2), 2));
  auto r2 = a.allocate(unicast(m.ni(0, 2), m.ni(2, 0), 2));
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());

  ASSERT_TRUE(b.restore(*r2)); // id 1 lands in a fresh allocator
  auto fresh = b.allocate(unicast(m.ni(1, 0), m.ni(1, 2), 1));
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->channel, 2u); // not 0: watermark jumped past the restored id 1

  // Double-release stays idempotent with recycling in play: releasing r2
  // twice must not recycle its id twice (which would mint duplicates).
  b.release(*r2);
  b.release(*r2);
  auto x = b.allocate(unicast(m.ni(0, 1), m.ni(2, 1), 1));
  auto y = b.allocate(unicast(m.ni(1, 2), m.ni(1, 0), 1));
  ASSERT_TRUE(x.has_value());
  ASSERT_TRUE(y.has_value());
  EXPECT_NE(x->channel, y->channel);
}

// --- Integer kSpread slot picking --------------------------------------------

// Property test over random (avail, want): the picked indices
// (i * avail.size()) / want are strictly increasing, in range, and the
// result is a sorted subset of avail of exactly `want` entries. The
// historical accumulated-double implementation could repeat or skip an
// index once rounding error built up.
TEST(SpreadPick, IntegerIndexingProperty) {
  sim::Xoshiro256 rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t n = 1 + rng.below(64);
    std::vector<tdm::Slot> avail;
    tdm::Slot v = static_cast<tdm::Slot>(rng.below(3));
    for (std::size_t i = 0; i < n; ++i) {
      avail.push_back(v);
      v += 1 + static_cast<tdm::Slot>(rng.below(4)); // sorted, strictly increasing
    }
    const auto want = static_cast<std::uint32_t>(1 + rng.below(n));

    const auto picked = spread_pick(avail, want);
    ASSERT_EQ(picked.size(), want);
    // Strictly increasing (no duplicate picks) and a subset of avail.
    for (std::size_t i = 0; i + 1 < picked.size(); ++i) ASSERT_LT(picked[i], picked[i + 1]);
    for (std::uint32_t i = 0; i < want; ++i) {
      const std::size_t idx = (static_cast<std::size_t>(i) * n) / want;
      ASSERT_LT(idx, n);
      ASSERT_EQ(picked[i], avail[idx]); // matches the documented formula
    }
  }
}

TEST(SpreadPick, WantEqualsAvailTakesEverything) {
  const std::vector<tdm::Slot> avail{1, 4, 9, 11};
  EXPECT_EQ(spread_pick(avail, 4), avail);
  EXPECT_TRUE(spread_pick(avail, 0).empty());
}

// --- Switch roll-back under forced partial restore ---------------------------

// Force the path the old code swallowed with `(void)ok; // cannot fail`:
// a torn-down connection whose response channel cannot be restored. The
// fix must (a) not leave the request half-committed, and (b) surface the
// incomplete roll-back through `failed`.
TEST(SwitchRollback, PartialRestoreFailurePropagates) {
  const auto m = topo::make_mesh(3, 3);
  const tdm::TdmParams params = tdm::daelite_params(16);
  SlotAllocator alloc(m.topo, params);

  UseCase a;
  a.name = "A";
  a.connections.push_back({"cam", m.ni(0, 0), {m.ni(2, 2)}, 2, 2});
  auto from = allocate_use_case(alloc, a);
  ASSERT_TRUE(from.has_value());
  const AllocatedConnection conn = from->connections[0];
  ASSERT_TRUE(conn.has_response);

  // External actor steals one of the response's (link, slot) pairs while
  // the channel is torn down mid-switch: release the response directly,
  // park a foreign raw reservation on it, and make the switch's additions
  // infeasible so execution reaches the roll-back.
  alloc.release(conn.response);
  const RouteEdge e = conn.response.edges.front();
  ASSERT_TRUE(
      alloc.reserve_raw(e.link, params.slot_at_link(conn.response.inject_slots[0], e.depth), 999));

  UseCase b;
  b.name = "B";
  // 17 slots on a 16-slot wheel can never be allocated: the switch fails
  // after tearing everything down, forcing the restore path.
  b.connections.push_back({"hog", m.ni(0, 2), {m.ni(2, 0)}, 17, 0});

  std::string failed;
  auto result = execute_use_case_switch(alloc, *from, b, nullptr, &failed);
  EXPECT_FALSE(result.has_value());
  EXPECT_NE(failed.find("hog"), std::string::npos);
  EXPECT_NE(failed.find("rollback incomplete: cam"), std::string::npos)
      << "failed = " << failed;

  // No half-connection: the request channel whose partner could not be
  // restored must not stay committed.
  EXPECT_EQ(alloc.schedule().reservations_of(conn.request.channel), 0u);
  EXPECT_EQ(alloc.schedule().reservations_of(conn.response.channel), 0u);
}

// The normal roll-back (no external interference) stays silent and exact.
TEST(SwitchRollback, CleanRollbackRestoresEverything) {
  const auto m = topo::make_mesh(3, 3);
  const tdm::TdmParams params = tdm::daelite_params(16);
  SlotAllocator alloc(m.topo, params);

  UseCase a;
  a.name = "A";
  a.connections.push_back({"cam", m.ni(0, 0), {m.ni(2, 2)}, 2, 2});
  auto from = allocate_use_case(alloc, a);
  ASSERT_TRUE(from.has_value());
  const auto util_before = alloc.utilization();

  UseCase b;
  b.name = "B";
  b.connections.push_back({"hog", m.ni(0, 2), {m.ni(2, 0)}, 17, 0});
  std::string failed;
  EXPECT_FALSE(execute_use_case_switch(alloc, *from, b, nullptr, &failed).has_value());
  EXPECT_EQ(failed, "hog"); // no "(rollback incomplete)" suffix
  EXPECT_EQ(alloc.utilization(), util_before);
  EXPECT_EQ(alloc.allocated_channels(), 2u);
}

// --- Churn service -----------------------------------------------------------

struct ChurnFixture : ::testing::Test {
  topo::Mesh mesh = topo::make_mesh(3, 3);
  tdm::TdmParams params = tdm::daelite_params(16);
  SlotAllocator alloc{mesh.topo, params};
  ChurnService service{alloc};
};

TEST_F(ChurnFixture, SetUpTearDownRoundTrip) {
  ConnectionSpec spec{"c", mesh.ni(0, 0), {mesh.ni(2, 2)}, 2, 1};
  const auto r = service.set_up(spec);
  ASSERT_EQ(r.status, ChurnStatus::kAdmitted);
  EXPECT_EQ(service.live_connections(), 1u);
  EXPECT_EQ(alloc.allocated_channels(), 2u); // request + response

  EXPECT_EQ(service.tear_down(r.connection), ChurnStatus::kAdmitted);
  EXPECT_EQ(service.live_connections(), 0u);
  EXPECT_EQ(alloc.allocated_channels(), 0u);
  EXPECT_EQ(alloc.utilization(), 0.0);
  EXPECT_EQ(service.tear_down(r.connection), ChurnStatus::kUnknownConnection);
}

TEST_F(ChurnFixture, AdmissionControlBoundsRequests) {
  AdmissionControl ac;
  ac.max_request_slots = 2;
  ChurnService strict(alloc, ac);
  ConnectionSpec big{"big", mesh.ni(0, 0), {mesh.ni(2, 2)}, 3, 1};
  EXPECT_EQ(strict.set_up(big).status, ChurnStatus::kRejectedAdmission);
  EXPECT_EQ(strict.metrics().rejected_admission.value(), 1u);
  EXPECT_EQ(alloc.allocated_channels(), 0u);

  ConnectionSpec ok{"ok", mesh.ni(0, 0), {mesh.ni(2, 2)}, 2, 1};
  EXPECT_EQ(strict.set_up(ok).status, ChurnStatus::kAdmitted);
}

TEST_F(ChurnFixture, AdmissionLatencyBoundRejectsLongRoutes) {
  AdmissionControl ac;
  // One slot on a 16-slot wheel waits up to a full wheel (32 cycles); any
  // positive path depth pushes past 33.
  ac.max_latency_cycles = 33;
  ChurnService strict(alloc, ac);
  ConnectionSpec far{"far", mesh.ni(0, 0), {mesh.ni(2, 2)}, 1, 0};
  EXPECT_EQ(strict.set_up(far).status, ChurnStatus::kRejectedAdmission);
  // The rejected route was released, not leaked.
  EXPECT_EQ(alloc.allocated_channels(), 0u);
  EXPECT_EQ(alloc.utilization(), 0.0);

  AdmissionControl loose;
  loose.max_latency_cycles = 1000;
  ChurnService lenient(alloc, loose);
  EXPECT_EQ(lenient.set_up(far).status, ChurnStatus::kAdmitted);
}

TEST_F(ChurnFixture, ModifyIsTransactional) {
  ConnectionSpec spec{"c", mesh.ni(0, 0), {mesh.ni(2, 2)}, 2, 1};
  const auto r = service.set_up(spec);
  ASSERT_EQ(r.status, ChurnStatus::kAdmitted);
  const RouteTree old_request = service.connection(r.connection)->request;

  // Feasible modify: more bandwidth, same connection id.
  EXPECT_EQ(service.modify(r.connection, 4, 1).status, ChurnStatus::kAdmitted);
  EXPECT_EQ(service.connection(r.connection)->request.slot_count(), 4u);

  // Infeasible modify: more slots than the wheel has. The old reservations
  // come back exactly (same channel ids, same slot count).
  const RouteTree before = service.connection(r.connection)->request;
  EXPECT_EQ(service.modify(r.connection, 17, 1).status, ChurnStatus::kRejectedNoRoute);
  const AllocatedConnection* after = service.connection(r.connection);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->request.channel, before.channel);
  EXPECT_EQ(after->request.slot_count(), before.slot_count());
  EXPECT_EQ(after->request.inject_slots, before.inject_slots);
  EXPECT_EQ(service.metrics().modify_failed_restored.value(), 1u);
  EXPECT_EQ(service.metrics().rollback_failures.value(), 0u);
  (void)old_request;
}

TEST_F(ChurnFixture, WorstCaseLatencyMatchesHandComputation) {
  // 3x3 mesh, NI(0,0) -> NI(1,0): 3 links. Inject slots {2, 10} on a
  // 16-slot wheel: max circular gap is 8 slots = 16 cycles; pipeline is
  // 3 links * 2 cycles = 6. Total 22.
  const auto p = topo::PathFinder(mesh.topo).shortest(mesh.ni(0, 0), mesh.ni(1, 0));
  const RouteTree r = RouteTree::from_path(mesh.topo, p, {2, 10});
  EXPECT_EQ(worst_case_latency_cycles(r, params), 22u);
}

// Long interleaving of service ops plus allocator-level quarantine events:
// leak-free (teardown-all returns utilization to zero, live count exact,
// watermark bounded by peak concurrency).
TEST_F(ChurnFixture, LongInterleavingIsLeakFree) {
  const auto nis = mesh.all_nis();
  sim::Xoshiro256 rng(99);
  std::vector<std::uint64_t> ids;
  std::size_t peak = 0;

  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.5 || ids.empty()) {
      const auto src = nis[rng.below(nis.size())];
      auto dst = nis[rng.below(nis.size())];
      while (dst == src) dst = nis[rng.below(nis.size())];
      ConnectionSpec s{"c", src, {dst}, 1 + static_cast<std::uint32_t>(rng.below(3)), 1};
      const auto r = service.set_up(s);
      if (r.status == ChurnStatus::kAdmitted) ids.push_back(r.connection);
    } else if (roll < 0.8) {
      const std::size_t i = rng.below(ids.size());
      EXPECT_EQ(service.tear_down(ids[i]), ChurnStatus::kAdmitted);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (roll < 0.95) {
      const std::size_t i = rng.below(ids.size());
      (void)service.modify(ids[i], 1 + static_cast<std::uint32_t>(rng.below(4)), 1);
      if (service.connection(ids[i]) == nullptr)
        ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (rng.chance(0.5)) {
      alloc.quarantine_link(static_cast<topo::LinkId>(rng.below(mesh.topo.link_count())));
    } else {
      alloc.clear_quarantine();
    }
    peak = std::max(peak, ids.size());
    ASSERT_EQ(service.live_connections(), ids.size());
  }
  EXPECT_EQ(service.metrics().rollback_failures.value(), 0u);

  for (const std::uint64_t id : ids) EXPECT_EQ(service.tear_down(id), ChurnStatus::kAdmitted);
  EXPECT_EQ(service.live_connections(), 0u);
  EXPECT_EQ(alloc.allocated_channels(), 0u);
  EXPECT_EQ(alloc.utilization(), 0.0);
  // Each connection holds at most 2 channels (request + response).
  EXPECT_LE(alloc.channel_id_watermark(), 2 * peak);
}

// --- Incremental vs from-scratch equivalence (the oracle) --------------------

// Replay the same generated request log against both allocator modes and
// require identical admit/reject decisions, routes/slot counts (via the
// decision digest, which hashes channel ids and inject slots), metrics
// and utilization — including across quarantine changes, which invalidate
// the incremental path cache.
TEST(ChurnOracle, IncrementalMatchesFromScratch) {
  const auto m = topo::make_mesh(4, 4);
  const tdm::TdmParams params = tdm::daelite_params(32);

  for (const std::uint64_t seed : {1ull, 17ull, 300ull}) {
    alloc::ChurnRunOptions run;
    run.requests = 3000;
    run.workload.seed = seed;
    run.workload.mean_hold_cycles = 400000.0;

    AllocatorOptions inc_opt;
    inc_opt.incremental = true;
    SlotAllocator inc_alloc(m.topo, params, inc_opt);
    const ChurnReport inc = run_churn(inc_alloc, run);

    SlotAllocator scr_alloc(m.topo, params, {});
    const ChurnReport scr = run_churn(scr_alloc, run);

    EXPECT_EQ(inc.decision_digest, scr.decision_digest) << "seed " << seed;
    EXPECT_EQ(inc.metrics.admitted.value(), scr.metrics.admitted.value());
    EXPECT_EQ(inc.metrics.rejected_no_route.value(), scr.metrics.rejected_no_route.value());
    EXPECT_EQ(inc.metrics.rejected_fragmentation.value(),
              scr.metrics.rejected_fragmentation.value());
    EXPECT_EQ(inc.metrics.teardowns.value(), scr.metrics.teardowns.value());
    EXPECT_EQ(inc.metrics.modifies.value(), scr.metrics.modifies.value());
    EXPECT_EQ(inc.final_utilization, scr.final_utilization);
    EXPECT_EQ(inc.final_live, scr.final_live);
    EXPECT_EQ(inc.channel_id_watermark, scr.channel_id_watermark);
    ASSERT_EQ(inc.frag_timeline.size(), scr.frag_timeline.size());
    for (std::size_t i = 0; i < inc.frag_timeline.size(); ++i) {
      EXPECT_EQ(inc.frag_timeline[i].utilization, scr.frag_timeline[i].utilization);
      EXPECT_EQ(inc.frag_timeline[i].fragmentation, scr.frag_timeline[i].fragmentation);
    }
  }
}

// Same equivalence with quarantine interleavings applied to both
// allocators mid-stream (exercises the path-cache invalidation).
TEST(ChurnOracle, EquivalenceSurvivesQuarantineChanges) {
  const auto m = topo::make_mesh(3, 3);
  const tdm::TdmParams params = tdm::daelite_params(16);

  AllocatorOptions inc_opt;
  inc_opt.incremental = true;
  SlotAllocator ia(m.topo, params, inc_opt);
  SlotAllocator sa(m.topo, params, {});
  ChurnService is(ia), ss(sa);

  const auto nis = m.all_nis();
  sim::Xoshiro256 rng(5);
  std::vector<std::uint64_t> ids; // identical in both services by construction

  for (int step = 0; step < 1500; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.05) {
      const auto link = static_cast<topo::LinkId>(rng.below(m.topo.link_count()));
      ia.quarantine_link(link);
      sa.quarantine_link(link);
    } else if (roll < 0.08) {
      ia.clear_quarantine();
      sa.clear_quarantine();
    } else if (roll < 0.6 || ids.empty()) {
      const auto src = nis[rng.below(nis.size())];
      auto dst = nis[rng.below(nis.size())];
      while (dst == src) dst = nis[rng.below(nis.size())];
      ConnectionSpec spec{"c", src, {dst}, 1 + static_cast<std::uint32_t>(rng.below(3)), 1};
      const auto ri = is.set_up(spec);
      const auto rs = ss.set_up(spec);
      ASSERT_EQ(ri.status, rs.status) << "step " << step;
      if (ri.status == ChurnStatus::kAdmitted) {
        ASSERT_EQ(ri.connection, rs.connection);
        const auto* ci = is.connection(ri.connection);
        const auto* cs = ss.connection(rs.connection);
        ASSERT_EQ(ci->request.channel, cs->request.channel);
        ASSERT_EQ(ci->request.inject_slots, cs->request.inject_slots);
        ASSERT_EQ(ci->request.edges, cs->request.edges);
        ids.push_back(ri.connection);
      }
    } else {
      const std::size_t i = rng.below(ids.size());
      ASSERT_EQ(is.tear_down(ids[i]), ss.tear_down(ids[i]));
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(i));
    }
    ASSERT_EQ(ia.utilization(), sa.utilization()) << "step " << step;
  }
}

// --- Gauge primitive ---------------------------------------------------------

TEST(Gauge, TracksLastAndDistribution) {
  sim::Gauge g;
  EXPECT_EQ(g.samples(), 0u);
  EXPECT_EQ(g.last(), 0.0);
  g.set(2.0);
  g.set(6.0);
  g.set(4.0);
  EXPECT_EQ(g.last(), 4.0);
  EXPECT_EQ(g.samples(), 3u);
  EXPECT_EQ(g.mean(), 4.0);
  EXPECT_EQ(g.min(), 2.0);
  EXPECT_EQ(g.max(), 6.0);
  g.reset();
  EXPECT_EQ(g.samples(), 0u);
  EXPECT_EQ(g.last(), 0.0);
}

} // namespace
