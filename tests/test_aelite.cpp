// Tests for the aelite baseline: source-routed forwarding, 3-cycle hops,
// packet aggregation and header overhead (11%..33%), reserved
// configuration slots, and the configuration timing model.

#include <gtest/gtest.h>

#include "aelite/be_config_model.hpp"
#include "aelite/config_model.hpp"
#include "aelite/network.hpp"
#include "alloc/allocator.hpp"
#include "alloc/usecase.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::aelite;

TEST(PathCode, PushPeekAdvance) {
  PathCode p;
  p.push_hop(3);
  p.push_hop(5);
  p.push_hop(1);
  EXPECT_EQ(p.hops, 3);
  EXPECT_EQ(p.peek(), 3);
  p = p.advanced();
  EXPECT_EQ(p.peek(), 5);
  p = p.advanced();
  EXPECT_EQ(p.peek(), 1);
  p = p.advanced();
  EXPECT_TRUE(p.empty());
}

struct AeliteTestNet {
  topo::Mesh mesh;
  sim::Kernel kernel;
  std::unique_ptr<AeliteNetwork> net;
  std::unique_ptr<alloc::SlotAllocator> alloc;

  AeliteTestNet(int w, int h, std::uint32_t slots, alloc::SlotPolicy policy = alloc::SlotPolicy::kSpread) {
    mesh = topo::make_mesh(w, h);
    AeliteNetwork::Options opt;
    opt.tdm = tdm::aelite_params(slots);
    net = std::make_unique<AeliteNetwork>(kernel, mesh.topo, opt);
    alloc::AllocatorOptions ao;
    ao.slot_policy = policy;
    alloc = std::make_unique<alloc::SlotAllocator>(mesh.topo, opt.tdm, ao);
  }

  alloc::AllocatedConnection connect(topo::NodeId src, topo::NodeId dst, std::uint32_t req_slots,
                                     std::uint32_t resp_slots = 1) {
    alloc::UseCase uc;
    uc.connections.push_back({"c", src, {dst}, req_slots, resp_slots});
    auto a = alloc::allocate_use_case(*alloc, uc);
    EXPECT_TRUE(a.has_value());
    return a->connections[0];
  }

  std::vector<std::uint32_t> transfer(const AeliteConnectionHandle& h, std::size_t n) {
    Ni& src = net->ni(h.conn.request.src_ni);
    Ni& dst = net->ni(h.conn.request.dst_nis[0]);
    std::vector<std::uint32_t> got;
    std::size_t pushed = 0;
    for (int guard = 0; guard < 200000 && got.size() < n; ++guard) {
      if (pushed < n && src.tx_push(h.src_tx_q, static_cast<std::uint32_t>(2000 + pushed)))
        ++pushed;
      kernel.step();
      while (auto w = dst.rx_pop(h.dst_rx_q)) got.push_back(*w);
    }
    return got;
  }
};

TEST(AeliteNetwork, EndToEndInOrderDelivery) {
  AeliteTestNet t(3, 3, 8);
  const auto conn = t.connect(t.mesh.ni(0, 0), t.mesh.ni(2, 2), 2);
  const auto h = t.net->open_connection(conn);
  const auto got = t.transfer(h, 60);
  ASSERT_EQ(got.size(), 60u);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], 2000 + i);
  EXPECT_EQ(t.net->total_collisions(), 0u);
  EXPECT_EQ(t.net->total_rx_overflow(), 0u);
}

TEST(AeliteNetwork, FlitLatencyIsThreeCyclesPerHop) {
  AeliteTestNet t(4, 4, 8);
  const auto conn = t.connect(t.mesh.ni(0, 0), t.mesh.ni(3, 3), 1);
  const auto h = t.net->open_connection(conn);
  (void)t.transfer(h, 20);
  const Ni& dst = t.net->ni(t.mesh.ni(3, 3));
  const std::size_t hops = conn.request.edges.size(); // 8
  ASSERT_GT(dst.stats().latency.count(), 0u);
  EXPECT_EQ(dst.stats().latency.min(), 3.0 * static_cast<double>(hops));
}

TEST(AeliteNetwork, CreditsFlowThroughHeaders) {
  AeliteTestNet t(3, 3, 8);
  const auto conn = t.connect(t.mesh.ni(0, 1), t.mesh.ni(2, 1), 1);
  const auto h = t.net->open_connection(conn);
  const auto got = t.transfer(h, 150); // >> queue capacity: credits must recycle
  ASSERT_EQ(got.size(), 150u);
  const Ni& src = t.net->ni(t.mesh.ni(0, 1));
  EXPECT_GT(src.rx_stats(h.src_rx_q).credits_received, 0u);
}

TEST(AeliteNetwork, HeaderOverheadIsOneThirdForScatteredSlots) {
  // kSpread policy scatters the channel's slots, so every slot starts a
  // fresh packet: 1 header per 2 payload words = 33% overhead.
  AeliteTestNet t(3, 3, 16, alloc::SlotPolicy::kSpread);
  const auto conn = t.connect(t.mesh.ni(0, 0), t.mesh.ni(2, 0), 4);
  const auto h = t.net->open_connection(conn);
  (void)t.transfer(h, 200);
  const auto& s = t.net->ni(t.mesh.ni(0, 0)).tx_stats(h.src_tx_q);
  const double overhead = static_cast<double>(s.header_words_sent) /
                          static_cast<double>(s.header_words_sent + s.words_sent);
  EXPECT_NEAR(overhead, 1.0 / 3.0, 0.03);
}

TEST(AeliteNetwork, HeaderOverheadDropsToOneNinthForConsecutiveSlots) {
  // kFirstFit packs the slots consecutively: packets span 3 slots
  // (header + 8 payload words) -> 1/9 = 11% overhead.
  AeliteTestNet t(3, 3, 16, alloc::SlotPolicy::kFirstFit);
  const auto conn = t.connect(t.mesh.ni(0, 0), t.mesh.ni(2, 0), 6);
  const auto h = t.net->open_connection(conn);
  (void)t.transfer(h, 400);
  const auto& s = t.net->ni(t.mesh.ni(0, 0)).tx_stats(h.src_tx_q);
  const double overhead = static_cast<double>(s.header_words_sent) /
                          static_cast<double>(s.header_words_sent + s.words_sent);
  EXPECT_LT(overhead, 0.16); // near 1/9 with start-up effects
  EXPECT_GT(overhead, 0.09);
}

TEST(AeliteNetwork, PacketAggregationRestartsAfterThreeSlots) {
  // With >3 consecutive owned slots and a deep backlog, packets must span
  // exactly 3 slots: header + 2 payload, then 3 + 3 payload, then a new
  // header. Over 4 consecutive slots per wheel: slots 0-2 form one packet
  // (8 words), slot 3 starts a fresh one (header + 2 words).
  AeliteTestNet t(3, 3, 8, alloc::SlotPolicy::kFirstFit);
  const auto conn = t.connect(t.mesh.ni(0, 0), t.mesh.ni(2, 0), 4);
  const auto h = t.net->open_connection(conn);
  t.net->ni(conn.request.src_ni).set_credit(h.src_tx_q, 63);

  // Keep the source saturated over several wheels.
  aelite::Ni& src = t.net->ni(conn.request.src_ni);
  aelite::Ni& dst = t.net->ni(conn.request.dst_nis[0]);
  std::size_t got = 0;
  for (int i = 0; i < 8 * 24 * 4; ++i) {
    while (src.tx_push(h.src_tx_q, 1)) {
    }
    t.kernel.step();
    while (dst.rx_pop(h.dst_rx_q)) ++got;
  }
  const auto& s = src.tx_stats(h.src_tx_q);
  // Per wheel: 2 packets (3-slot + 1-slot), 10 payload words, 2 headers.
  EXPECT_NEAR(static_cast<double>(s.words_sent) / static_cast<double>(s.header_words_sent), 5.0,
              0.5);
  EXPECT_GT(got, 0u);
}

TEST(AeliteNetwork, ReservedConfigSlotsCost) {
  // S=16: one slot per NI link is 1/16 = 6.25% of NI-link bandwidth
  // (paper §V).
  const auto mesh = topo::make_mesh(2, 2);
  alloc::SlotAllocator alloc(mesh.topo, tdm::aelite_params(16));
  const std::size_t reserved = AeliteNetwork::reserve_config_slots(alloc);
  EXPECT_EQ(reserved, 8u); // 4 NIs * 2 directions
  // A data channel can no longer use slot 0 on NI links. The channel
  // crosses two NI links (source at depth 0, destination at depth 3), so
  // two injection slots are unusable: q = 0 and q = 13.
  alloc::ChannelSpec spec;
  spec.src_ni = mesh.ni(0, 0);
  spec.dst_nis = {mesh.ni(1, 1)};
  spec.slots_required = 15;
  EXPECT_FALSE(alloc.allocate(spec).has_value());
  spec.slots_required = 14;
  EXPECT_TRUE(alloc.allocate(spec).has_value());
}

TEST(AeliteNetwork, ConcurrentConnectionsNoCollisions) {
  AeliteTestNet t(3, 3, 16);
  const auto c1 = t.connect(t.mesh.ni(0, 0), t.mesh.ni(2, 2), 2);
  const auto c2 = t.connect(t.mesh.ni(2, 0), t.mesh.ni(0, 2), 2);
  const auto c3 = t.connect(t.mesh.ni(1, 0), t.mesh.ni(1, 2), 2);
  const auto h1 = t.net->open_connection(c1);
  const auto h2 = t.net->open_connection(c2);
  const auto h3 = t.net->open_connection(c3);

  std::size_t pushed1 = 0, pushed2 = 0, pushed3 = 0, got1 = 0, got2 = 0, got3 = 0;
  auto drive = [&](const AeliteConnectionHandle& h, std::size_t& pushed, std::size_t& got) {
    Ni& src = t.net->ni(h.conn.request.src_ni);
    if (pushed < 60 && src.tx_push(h.src_tx_q, static_cast<std::uint32_t>(pushed))) ++pushed;
    Ni& dst = t.net->ni(h.conn.request.dst_nis[0]);
    while (dst.rx_pop(h.dst_rx_q)) ++got;
  };
  for (int i = 0; i < 30000 && (got1 < 60 || got2 < 60 || got3 < 60); ++i) {
    drive(h1, pushed1, got1);
    drive(h2, pushed2, got2);
    drive(h3, pushed3, got3);
    t.kernel.step();
  }
  EXPECT_EQ(got1, 60u);
  EXPECT_EQ(got2, 60u);
  EXPECT_EQ(got3, 60u);
  EXPECT_EQ(t.net->total_collisions(), 0u);
  EXPECT_EQ(t.net->total_rx_overflow(), 0u);
}

TEST(AeliteNetwork, PacketRestartsAfterCreditStall) {
  // When a packet is interrupted (no credits), the next transmission must
  // start a fresh packet with a new header — continuations are only legal
  // in the immediately following slot.
  AeliteTestNet t(3, 3, 8, alloc::SlotPolicy::kFirstFit);
  const auto conn = t.connect(t.mesh.ni(0, 0), t.mesh.ni(2, 0), 4);
  const auto h = t.net->open_connection(conn);
  // Tiny credit supply: force stalls mid-stream.
  t.net->ni(conn.request.src_ni).set_credit(h.src_tx_q, 3);

  Ni& src = t.net->ni(conn.request.src_ni);
  Ni& dst = t.net->ni(conn.request.dst_nis[0]);
  std::size_t pushed = 0, got = 0;
  std::uint32_t expect = 0;
  for (int i = 0; i < 60000 && got < 40; ++i) {
    if (pushed < 40 && src.tx_push(h.src_tx_q, static_cast<std::uint32_t>(pushed))) ++pushed;
    t.kernel.step();
    while (auto w = dst.rx_pop(h.dst_rx_q)) {
      ASSERT_EQ(*w, expect++); // in order despite stalls and packet restarts
      ++got;
    }
  }
  EXPECT_EQ(got, 40u);
  EXPECT_EQ(t.net->total_collisions(), 0u); // no orphan continuations
  EXPECT_GT(src.stats().tx_stalled_slots, 0u);
}

TEST(AeliteConfig, MessageCountGrowsWithSlots) {
  AeliteConfigHost::SetupRequest a{0, 1, 1, 1, true};
  AeliteConfigHost::SetupRequest b{0, 1, 8, 8, true};
  EXPECT_LT(AeliteConfigHost::message_count(a), AeliteConfigHost::message_count(b));
  EXPECT_EQ(AeliteConfigHost::message_count(a), 3u + 3u + 1u + 1u + 2u);
}

TEST(AeliteConfig, SetupCompletesAndScalesWithSlotCount) {
  const auto mesh = topo::make_mesh(4, 4);
  sim::Kernel k;
  AeliteConfigHost host(k, "cfg", mesh.topo, mesh.ni(0, 0), {tdm::aelite_params(16), 0});

  AeliteConfigHost::SetupRequest small{mesh.ni(1, 0), mesh.ni(2, 2), 1, 1, true};
  const auto id_small = host.post_setup(small);
  ASSERT_TRUE(k.run_until([&] { return host.idle(); }, 100000));
  const sim::Cycle t_small = host.completion_cycle(id_small);

  AeliteConfigHost::SetupRequest big{mesh.ni(1, 0), mesh.ni(2, 2), 8, 8, true};
  const sim::Cycle start_big = k.now();
  const auto id_big = host.post_setup(big);
  ASSERT_TRUE(k.run_until([&] { return host.idle(); }, 100000));
  const sim::Cycle t_big = host.completion_cycle(id_big) - start_big;

  EXPECT_GT(t_big, t_small); // slot count matters for aelite
  // Both in the hundreds of cycles for S=16 (wheel = 48 cycles).
  EXPECT_GT(t_small, 200u);
  EXPECT_LT(t_big, 2000u);
}

TEST(AeliteConfig, SetupScalesWithDistance) {
  const auto mesh = topo::make_mesh(5, 5);
  sim::Kernel k;
  AeliteConfigHost host(k, "cfg", mesh.topo, mesh.ni(0, 0), {tdm::aelite_params(16), 0});

  AeliteConfigHost::SetupRequest near_req{mesh.ni(1, 0), mesh.ni(0, 1), 2, 2, true};
  AeliteConfigHost::SetupRequest far_req{mesh.ni(4, 4), mesh.ni(3, 4), 2, 2, true};
  EXPECT_LT(host.ideal_setup_cycles(near_req), host.ideal_setup_cycles(far_req));
}

TEST(BeConfig, DeterministicPerSeed) {
  const auto mesh = topo::make_mesh(4, 4);
  BeConfigModel a(mesh.topo, mesh.ni(0, 0), {tdm::aelite_params(16), 0.3, 42});
  BeConfigModel b(mesh.topo, mesh.ni(0, 0), {tdm::aelite_params(16), 0.3, 42});
  EXPECT_EQ(a.setup_cycles(mesh.ni(1, 0), mesh.ni(2, 2), 2, 2),
            b.setup_cycles(mesh.ni(1, 0), mesh.ni(2, 2), 2, 2));
}

TEST(BeConfig, ZeroLoadEqualsPureFlightTime) {
  const auto mesh = topo::make_mesh(4, 4);
  BeConfigModel be(mesh.topo, mesh.ni(0, 0), {tdm::aelite_params(16), 0.0, 1});
  // 3 cycles per hop, no queueing.
  const auto hops = topo::PathFinder(mesh.topo).shortest(mesh.ni(0, 0), mesh.ni(2, 2)).hop_count();
  EXPECT_EQ(be.message_cycles(mesh.ni(2, 2)), 3u * hops);
}

TEST(BeConfig, MeanAndSpreadGrowWithLoad) {
  const auto mesh = topo::make_mesh(4, 4);
  auto stats = [&](double load) {
    double sum = 0;
    sim::Cycle lo = ~0ull, hi = 0;
    for (int t = 0; t < 100; ++t) {
      BeConfigModel be(mesh.topo, mesh.ni(0, 0),
                       {tdm::aelite_params(16), load, static_cast<std::uint64_t>(t + 1)});
      const auto c = be.setup_cycles(mesh.ni(0, 1), mesh.ni(2, 2), 2, 2);
      sum += static_cast<double>(c);
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    return std::tuple{sum / 100.0, hi - lo};
  };
  const auto [mean_lo, spread_lo] = stats(0.1);
  const auto [mean_hi, spread_hi] = stats(0.5);
  EXPECT_GT(mean_hi, mean_lo);
  EXPECT_GT(spread_hi, spread_lo); // no set-up time guarantee under load
  EXPECT_GT(spread_lo, 0u);
}

TEST(AeliteConfig, IdealIsLowerBoundOnMeasured) {
  const auto mesh = topo::make_mesh(4, 4);
  sim::Kernel k;
  AeliteConfigHost host(k, "cfg", mesh.topo, mesh.ni(0, 0), {tdm::aelite_params(16), 0});
  AeliteConfigHost::SetupRequest req{mesh.ni(3, 0), mesh.ni(0, 3), 4, 2, true};
  const auto id = host.post_setup(req);
  ASSERT_TRUE(k.run_until([&] { return host.idle(); }, 100000));
  EXPECT_GE(host.completion_cycle(id) + 1, host.ideal_setup_cycles(req) / 2);
}

} // namespace
