// Integration tests on non-mesh topologies (torus, ring) and across TDM
// parameterizations — the daelite architecture is topology-agnostic as
// long as the config tree spans the network and the schedule is
// contention-free.

#include <gtest/gtest.h>

#include "alloc/usecase.hpp"
#include "daelite/host.hpp"
#include "daelite/network.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::hw;

struct Rig {
  topo::Mesh mesh;
  sim::Kernel kernel;
  std::unique_ptr<DaeliteNetwork> net;
  std::unique_ptr<alloc::SlotAllocator> alloc;
  std::unique_ptr<HostController> host;

  Rig(topo::Mesh m, tdm::TdmParams params) : mesh(std::move(m)) {
    DaeliteNetwork::Options opt;
    opt.tdm = params;
    opt.cfg_root = mesh.all_nis().front();
    net = std::make_unique<DaeliteNetwork>(kernel, mesh.topo, opt);
    alloc = std::make_unique<alloc::SlotAllocator>(mesh.topo, params);
    host = std::make_unique<HostController>(*net, *alloc);
  }

  std::size_t transfer(const ConnectionHandle& h, std::size_t n) {
    Ni& src = net->ni(h.conn.request.src_ni);
    Ni& dst = net->ni(h.conn.request.dst_nis[0]);
    std::size_t pushed = 0, got = 0;
    for (int guard = 0; guard < 100000 && got < n; ++guard) {
      if (pushed < n && src.tx_push(h.src_tx_q, static_cast<std::uint32_t>(pushed))) ++pushed;
      kernel.step();
      while (dst.rx_pop(h.dst_rx_qs[0])) ++got;
    }
    return got;
  }
};

TEST(Topologies, TorusWraparoundPathCarriesTraffic) {
  Rig rig(topo::make_mesh(4, 4, 1, /*wrap=*/true), tdm::daelite_params(16));
  // Corner to corner is only 2 router hops on a torus (wrap both ways).
  auto r = rig.host->open(rig.mesh.ni(0, 0), {rig.mesh.ni(3, 3)}, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_LE(r->handle.conn.request.edges.size(), 4u); // wraparound shortcut
  EXPECT_EQ(rig.transfer(r->handle, 40), 40u);
  EXPECT_EQ(rig.net->total_router_drops(), 0u);
  const auto& lat = rig.net->ni(rig.mesh.ni(3, 3)).stats().latency;
  EXPECT_EQ(lat.min(), 2.0 * static_cast<double>(r->handle.conn.request.edges.size()));
}

TEST(Topologies, RingEndToEnd) {
  Rig rig(topo::make_ring(6), tdm::daelite_params(8));
  auto r = rig.host->open(rig.mesh.nis[0][0], {rig.mesh.nis[3][0]}, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(rig.transfer(r->handle, 30), 30u);
  EXPECT_EQ(rig.net->total_router_drops(), 0u);
  EXPECT_EQ(rig.net->total_ni_drops(), 0u);
}

TEST(Topologies, RingMulticastBothDirections) {
  Rig rig(topo::make_ring(6), tdm::daelite_params(16));
  // Destinations on either side of the source: the tree branches at the
  // source's router.
  auto r = rig.host->open(rig.mesh.nis[0][0], {rig.mesh.nis[2][0], rig.mesh.nis[4][0]}, 2, 0);
  ASSERT_TRUE(r.has_value());

  Ni& src = rig.net->ni(rig.mesh.nis[0][0]);
  std::size_t pushed = 0;
  std::size_t got0 = 0, got1 = 0;
  for (int guard = 0; guard < 50000 && (got0 < 20 || got1 < 20); ++guard) {
    if (pushed < 20 && src.tx_push(r->handle.src_tx_q, static_cast<std::uint32_t>(pushed)))
      ++pushed;
    rig.kernel.step();
    while (rig.net->ni(rig.mesh.nis[2][0]).rx_pop(r->handle.dst_rx_qs[0])) ++got0;
    while (rig.net->ni(rig.mesh.nis[4][0]).rx_pop(r->handle.dst_rx_qs[1])) ++got1;
  }
  EXPECT_EQ(got0, 20u);
  EXPECT_EQ(got1, 20u);
}

TEST(Topologies, MultipleNisPerRouter) {
  Rig rig(topo::make_mesh(2, 2, /*nis_per_router=*/2), tdm::daelite_params(16));
  // Two connections out of the same router via different NIs.
  auto a = rig.host->open(rig.mesh.ni(0, 0, 0), {rig.mesh.ni(1, 1, 0)}, 2);
  auto b = rig.host->open(rig.mesh.ni(0, 0, 1), {rig.mesh.ni(1, 1, 1)}, 2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(rig.transfer(a->handle, 25), 25u);
  EXPECT_EQ(rig.transfer(b->handle, 25), 25u);
  EXPECT_EQ(rig.net->total_router_drops(), 0u);
}

// TDM parameter sweep: the hardware supports any words_per_slot == hop
// latency (the paper's 2-word slots; 3- and 4-word variants behave
// identically with proportional latency).
class SlotWidthSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SlotWidthSweep, LatencyScalesWithSlotWidth) {
  const std::uint32_t w = GetParam();
  Rig rig(topo::make_mesh(3, 3), tdm::TdmParams{8, w, w});
  auto r = rig.host->open(rig.mesh.ni(0, 0), {rig.mesh.ni(2, 2)}, 2);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(rig.transfer(r->handle, 30), 30u);
  const auto hops = r->handle.conn.request.edges.size();
  const auto& lat = rig.net->ni(rig.mesh.ni(2, 2)).stats().latency;
  EXPECT_EQ(lat.min(), static_cast<double>(w * hops));
  EXPECT_EQ(lat.min(), lat.max());
  EXPECT_EQ(rig.net->total_router_drops(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, SlotWidthSweep, ::testing::Values(2u, 3u, 4u));

// Wheel-size sweep at fixed traffic: delivery must be correct for any S.
class WheelSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WheelSweep, EndToEndAcrossWheelSizes) {
  Rig rig(topo::make_mesh(3, 3), tdm::daelite_params(GetParam()));
  auto r = rig.host->open(rig.mesh.ni(0, 1), {rig.mesh.ni(2, 0)}, 1);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(rig.transfer(r->handle, 40), 40u);
  EXPECT_EQ(rig.net->total_ni_drops(), 0u);
  EXPECT_EQ(rig.net->total_cfg_errors(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WheelSweep, ::testing::Values(4u, 8u, 16u, 32u, 64u));

} // namespace
