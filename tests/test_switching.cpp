// Tests for the use-case switching flow: planning (keep/tear/set-up),
// transactional execution with roll-back, and end-to-end switching on the
// simulated network.

#include <gtest/gtest.h>

#include "alloc/switching.hpp"
#include "alloc/validate.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::alloc;

UseCase make_uc(std::string name, std::vector<ConnectionSpec> specs) {
  UseCase uc;
  uc.name = std::move(name);
  uc.connections = std::move(specs);
  return uc;
}

struct SwitchFixture : ::testing::Test {
  topo::Mesh mesh = topo::make_mesh(3, 3);
  tdm::TdmParams params = tdm::daelite_params(16);
  SlotAllocator alloc{mesh.topo, params};
};

TEST_F(SwitchFixture, PlanSplitsKeepTearSetup) {
  const ConnectionSpec shared{"cpu", mesh.ni(0, 0), {mesh.ni(2, 2)}, 2, 1};
  const ConnectionSpec old_only{"cam", mesh.ni(0, 2), {mesh.ni(2, 0)}, 3, 1};
  const ConnectionSpec new_only{"dsp", mesh.ni(1, 0), {mesh.ni(1, 2)}, 2, 1};

  auto a = allocate_use_case(alloc, make_uc("A", {shared, old_only}));
  ASSERT_TRUE(a.has_value());

  const auto plan = plan_use_case_switch(*a, make_uc("B", {shared, new_only}));
  ASSERT_EQ(plan.keep.size(), 1u);
  EXPECT_EQ(plan.keep[0].spec.name, "cpu");
  ASSERT_EQ(plan.tear_down.size(), 1u);
  EXPECT_EQ(plan.tear_down[0].spec.name, "cam");
  ASSERT_EQ(plan.set_up.size(), 1u);
  EXPECT_EQ(plan.set_up[0].name, "dsp");
  EXPECT_EQ(plan.churn(), 2u);
}

TEST_F(SwitchFixture, SpecChangeCountsAsTearAndSetup) {
  const ConnectionSpec v1{"cpu", mesh.ni(0, 0), {mesh.ni(2, 2)}, 2, 1};
  ConnectionSpec v2 = v1;
  v2.request_slots = 4; // more bandwidth in the new use-case
  auto a = allocate_use_case(alloc, make_uc("A", {v1}));
  ASSERT_TRUE(a.has_value());
  const auto plan = plan_use_case_switch(*a, make_uc("B", {v2}));
  EXPECT_TRUE(plan.keep.empty());
  EXPECT_EQ(plan.tear_down.size(), 1u);
  EXPECT_EQ(plan.set_up.size(), 1u);
}

TEST_F(SwitchFixture, ExecuteKeepsSharedRoutesIntact) {
  const ConnectionSpec shared{"cpu", mesh.ni(0, 0), {mesh.ni(2, 2)}, 2, 1};
  const ConnectionSpec old_only{"cam", mesh.ni(0, 2), {mesh.ni(2, 0)}, 3, 1};
  const ConnectionSpec new_only{"dsp", mesh.ni(1, 0), {mesh.ni(1, 2)}, 2, 1};

  auto a = allocate_use_case(alloc, make_uc("A", {shared, old_only}));
  ASSERT_TRUE(a.has_value());
  const auto kept_channel = a->connections[0].request.channel;

  auto b = execute_use_case_switch(alloc, *a, make_uc("B", {shared, new_only}));
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(b->connections.size(), 2u);
  // The kept connection still holds the same channel and reservations.
  EXPECT_EQ(b->connections[0].request.channel, kept_channel);
  EXPECT_EQ(alloc.schedule().reservations_of(kept_channel),
            2u * b->connections[0].request.edges.size());

  // Schedule is exactly explained by the new allocation.
  std::vector<RouteTree> routes;
  for (const auto& c : b->connections) {
    routes.push_back(c.request);
    if (c.has_response) routes.push_back(c.response);
  }
  EXPECT_EQ(validate_allocation(mesh.topo, params, alloc.schedule(), routes), "");
}

TEST_F(SwitchFixture, FailedSwitchRollsBackCompletely) {
  // Use-case A fills the wheel out of NI(0,0); use-case B asks for an
  // infeasible connection. The switch must fail and leave A untouched.
  const ConnectionSpec a_conn{"a", mesh.ni(0, 0), {mesh.ni(2, 2)}, 14, 2};
  auto a = allocate_use_case(alloc, make_uc("A", {a_conn}));
  ASSERT_TRUE(a.has_value());
  const double util_before = alloc.schedule().utilization();

  // B drops "a" and asks for two connections from the same source NI
  // totalling 17 of 16 slots: the second cannot fit, so the whole switch
  // must fail and roll back (all-or-nothing).
  const ConnectionSpec big{"y", mesh.ni(0, 2), {mesh.ni(2, 0)}, 16, 0};
  const ConnectionSpec overflow{"x", mesh.ni(0, 2), {mesh.ni(1, 2)}, 1, 1};
  std::string failed;
  auto b = execute_use_case_switch(alloc, *a, make_uc("B", {big, overflow}), nullptr, &failed);
  EXPECT_FALSE(b.has_value());
  EXPECT_EQ(failed, "x");
  // Roll-back restored A's reservations exactly.
  EXPECT_DOUBLE_EQ(alloc.schedule().utilization(), util_before);
  EXPECT_EQ(alloc.schedule().reservations_of(a->connections[0].request.channel),
            14u * a->connections[0].request.edges.size());
}

TEST_F(SwitchFixture, IdentitySwitchIsFree) {
  const ConnectionSpec c1{"c1", mesh.ni(0, 0), {mesh.ni(2, 2)}, 2, 1};
  const ConnectionSpec c2{"c2", mesh.ni(2, 0), {mesh.ni(0, 2)}, 2, 1};
  auto a = allocate_use_case(alloc, make_uc("A", {c1, c2}));
  ASSERT_TRUE(a.has_value());
  SwitchPlan plan;
  auto b = execute_use_case_switch(alloc, *a, make_uc("A2", {c1, c2}), &plan);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(plan.churn(), 0u);
  EXPECT_EQ(plan.keep.size(), 2u);
}

TEST_F(SwitchFixture, RestoreRejectsConflicts) {
  ChannelSpec spec;
  spec.src_ni = mesh.ni(0, 0);
  spec.dst_nis = {mesh.ni(2, 2)};
  spec.slots_required = 4;
  auto r = alloc.allocate(spec);
  ASSERT_TRUE(r.has_value());
  alloc.release(*r);

  // Occupy one of its slots with someone else, then try to restore.
  const RouteEdge e = r->edges.front();
  ASSERT_TRUE(alloc.reserve_raw(e.link, params.slot_at_link(r->inject_slots[0], e.depth), 999));
  EXPECT_FALSE(alloc.restore(*r));
  // Partial reservations were rolled back.
  EXPECT_EQ(alloc.schedule().reservations_of(r->channel), 0u);
}

} // namespace
