// Unit tests for the topology substrate: graph construction, generators,
// path search (BFS / Dijkstra / Yen), config spanning tree.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topology/generators.hpp"
#include "topology/graph.hpp"
#include "topology/path.hpp"
#include "topology/spanning_tree.hpp"

namespace {

using namespace daelite::topo;

TEST(Graph, AddAndConnect) {
  Topology t;
  const NodeId a = t.add_router("a");
  const NodeId b = t.add_router("b");
  const NodeId n = t.add_ni("n");
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.router_count(), 2u);
  EXPECT_EQ(t.ni_count(), 1u);

  const LinkId ab = t.connect(a, b);
  EXPECT_EQ(t.link(ab).src, a);
  EXPECT_EQ(t.link(ab).dst, b);
  EXPECT_EQ(t.link(ab).src_port, 0);
  EXPECT_EQ(t.link(ab).dst_port, 0);
  EXPECT_EQ(t.out_degree(a), 1u);
  EXPECT_EQ(t.in_degree(b), 1u);

  const auto [na, an] = t.connect_bidir(n, a);
  EXPECT_EQ(t.find_link(n, a), na);
  EXPECT_EQ(t.find_link(a, n), an);
  EXPECT_EQ(t.reverse_link(na), an);
  EXPECT_EQ(t.find_link(b, n), kInvalidLink);
}

TEST(Graph, PortIndicesFollowCreationOrder) {
  Topology t;
  const NodeId a = t.add_router("a");
  const NodeId b = t.add_router("b");
  const NodeId c = t.add_router("c");
  const LinkId ab = t.connect(a, b);
  const LinkId ac = t.connect(a, c);
  EXPECT_EQ(t.link(ab).src_port, 0);
  EXPECT_EQ(t.link(ac).src_port, 1);
  EXPECT_EQ(t.node(a).out_links[0], ab);
  EXPECT_EQ(t.node(a).out_links[1], ac);
}

TEST(Mesh, StructureOf2x2) {
  const Mesh m = make_mesh(2, 2);
  EXPECT_EQ(m.topo.router_count(), 4u);
  EXPECT_EQ(m.topo.ni_count(), 4u);
  // 4 bidirectional router-router links + 4 NI links = 8 + 8 unidirectional.
  EXPECT_EQ(m.topo.link_count(), 16u);
  // Corner router: 2 neighbours + 1 NI = 3 in, 3 out.
  EXPECT_EQ(m.topo.out_degree(m.router(0, 0)), 3u);
  EXPECT_EQ(m.topo.in_degree(m.router(0, 0)), 3u);
  EXPECT_TRUE(m.topo.is_ni(m.ni(1, 1)));
  EXPECT_EQ(m.all_nis().size(), 4u);
}

TEST(Mesh, StructureOf4x4) {
  const Mesh m = make_mesh(4, 4);
  EXPECT_EQ(m.topo.router_count(), 16u);
  EXPECT_EQ(m.topo.ni_count(), 16u);
  // Center router: 4 neighbours + 1 NI.
  EXPECT_EQ(m.topo.out_degree(m.router(1, 1)), 5u);
  EXPECT_EQ(m.topo.max_router_arity(), 5u);
  // Every link's reverse exists.
  for (LinkId l = 0; l < m.topo.link_count(); ++l)
    EXPECT_NE(m.topo.reverse_link(l), kInvalidLink);
}

TEST(Mesh, MultipleNisPerRouter) {
  const Mesh m = make_mesh(2, 2, 2);
  EXPECT_EQ(m.topo.ni_count(), 8u);
  EXPECT_NE(m.ni(0, 0, 0), m.ni(0, 0, 1));
  EXPECT_EQ(m.topo.out_degree(m.router(0, 0)), 4u); // 2 neighbours + 2 NIs
}

TEST(Mesh, TorusWrapsAround) {
  const Mesh m = make_mesh(4, 4, 1, /*wrap=*/true);
  EXPECT_NE(m.topo.find_link(m.router(3, 0), m.router(0, 0)), kInvalidLink);
  EXPECT_NE(m.topo.find_link(m.router(0, 3), m.router(0, 0)), kInvalidLink);
  EXPECT_EQ(m.topo.out_degree(m.router(0, 0)), 5u); // 4 neighbours + NI
}

TEST(Ring, Structure) {
  const Mesh r = make_ring(5);
  EXPECT_EQ(r.topo.router_count(), 5u);
  EXPECT_NE(r.topo.find_link(r.routers[4], r.routers[0]), kInvalidLink);
}

TEST(Path, NodesAndConnectivity) {
  const Mesh m = make_mesh(3, 3);
  PathFinder f(m.topo);
  const Path p = f.shortest(m.ni(0, 0), m.ni(2, 0));
  ASSERT_FALSE(p.empty());
  EXPECT_TRUE(p.is_connected(m.topo));
  EXPECT_EQ(p.source(m.topo), m.ni(0, 0));
  EXPECT_EQ(p.dest(m.topo), m.ni(2, 0));
  EXPECT_EQ(p.nodes(m.topo).size(), p.hop_count() + 1);
}

TEST(Path, ShortestHopCountOnMesh) {
  const Mesh m = make_mesh(4, 4);
  PathFinder f(m.topo);
  // NI -> R (1) + manhattan distance + R -> NI (1).
  EXPECT_EQ(f.shortest(m.ni(0, 0), m.ni(3, 3)).hop_count(), 8u);
  EXPECT_EQ(f.shortest(m.ni(0, 0), m.ni(1, 0)).hop_count(), 3u);
  EXPECT_EQ(f.shortest(m.ni(2, 2), m.ni(2, 2)).hop_count(), 0u); // self
}

TEST(Path, WeightedAvoidsExpensiveLinks) {
  // a -> b -> d and a -> c -> d; make the b route expensive.
  Topology t;
  const NodeId a = t.add_router("a"), b = t.add_router("b"), c = t.add_router("c"),
               d = t.add_router("d");
  const LinkId ab = t.connect(a, b);
  const LinkId bd = t.connect(b, d);
  const LinkId ac = t.connect(a, c);
  const LinkId cd = t.connect(c, d);
  std::vector<double> cost(t.link_count(), 1.0);
  cost[ab] = 10.0;
  PathFinder f(t);
  const Path p = f.shortest_weighted(a, d, cost);
  ASSERT_EQ(p.hop_count(), 2u);
  EXPECT_EQ(p.links[0], ac);
  EXPECT_EQ(p.links[1], cd);
  (void)bd;
}

TEST(Path, InfiniteCostRemovesLink) {
  Topology t;
  const NodeId a = t.add_router("a"), b = t.add_router("b");
  const LinkId ab = t.connect(a, b);
  std::vector<double> cost(t.link_count(), 1.0);
  cost[ab] = std::numeric_limits<double>::infinity();
  PathFinder f(t);
  EXPECT_TRUE(f.shortest_weighted(a, b, cost).empty());
}

TEST(Path, KShortestAreDistinctLooplessAndOrdered) {
  const Mesh m = make_mesh(3, 3);
  PathFinder f(m.topo);
  const auto paths = f.k_shortest(m.ni(0, 0), m.ni(2, 2), 6);
  ASSERT_GE(paths.size(), 2u);
  std::set<std::vector<LinkId>> unique;
  std::size_t prev_len = 0;
  for (const Path& p : paths) {
    EXPECT_TRUE(p.is_connected(m.topo));
    EXPECT_EQ(p.source(m.topo), m.ni(0, 0));
    EXPECT_EQ(p.dest(m.topo), m.ni(2, 2));
    EXPECT_GE(p.hop_count(), prev_len);
    prev_len = p.hop_count();
    unique.insert(p.links);
    // Loopless: no node repeats.
    auto nodes = p.nodes(m.topo);
    std::set<NodeId> s(nodes.begin(), nodes.end());
    EXPECT_EQ(s.size(), nodes.size());
  }
  EXPECT_EQ(unique.size(), paths.size());
}

TEST(Path, KShortestFindsBothMinimalRoutesIn2x2) {
  const Mesh m = make_mesh(2, 2);
  PathFinder f(m.topo);
  const auto paths = f.k_shortest(m.ni(0, 0), m.ni(1, 1), 4);
  // Two 4-hop routes exist (via R10 or via R01).
  ASSERT_GE(paths.size(), 2u);
  EXPECT_EQ(paths[0].hop_count(), 4u);
  EXPECT_EQ(paths[1].hop_count(), 4u);
}

TEST(ConfigTree, SpansAllAndMinDepth) {
  const Mesh m = make_mesh(4, 4);
  const ConfigTree t = build_config_tree(m.topo, m.ni(0, 0));
  EXPECT_TRUE(t.spans_all());
  // Depth from NI00: 1 to R00, +manhattan to R33, +1 to NI33 = 8.
  EXPECT_EQ(t.depth[m.ni(3, 3)], 8u);
  EXPECT_EQ(t.max_depth(), 8u);
  EXPECT_EQ(t.depth[t.root], 0u);
  EXPECT_EQ(t.bfs_order.front(), t.root);
  EXPECT_EQ(t.bfs_order.size(), m.topo.node_count());
}

TEST(ConfigTree, ParentChildAndLinksConsistent) {
  const Mesh m = make_mesh(3, 3);
  const ConfigTree t = build_config_tree(m.topo, m.ni(1, 1));
  for (NodeId n = 0; n < m.topo.node_count(); ++n) {
    if (n == t.root) continue;
    const NodeId p = t.parent[n];
    ASSERT_NE(p, kInvalidNode);
    EXPECT_EQ(m.topo.link(t.down_link[n]).src, p);
    EXPECT_EQ(m.topo.link(t.down_link[n]).dst, n);
    EXPECT_EQ(m.topo.link(t.up_link[n]).src, n);
    EXPECT_EQ(m.topo.link(t.up_link[n]).dst, p);
    EXPECT_EQ(t.depth[n], t.depth[p] + 1);
    const auto& kids = t.children[p];
    EXPECT_NE(std::find(kids.begin(), kids.end(), n), kids.end());
  }
}

TEST(ConfigTree, RootChoiceMinimizesDistance) {
  // From a central NI the tree is shallower than from a corner.
  const Mesh m = make_mesh(5, 5);
  const auto corner = build_config_tree(m.topo, m.ni(0, 0));
  const auto center = build_config_tree(m.topo, m.ni(2, 2));
  EXPECT_LT(center.max_depth(), corner.max_depth());
}

} // namespace
