// The batch layer's contract: results come back in job order regardless of
// worker count, exceptions propagate, and the pool shuts down cleanly with
// work still queued. The last test pins the end-to-end determinism the CI
// metrics diff depends on: a scenario run serializes byte-identically
// whether the batch ran on 1 thread or 8.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "sim/json.hpp"
#include "sim/log.hpp"
#include "sim/parallel.hpp"
#include "soc/runner.hpp"

namespace daelite::sim {
namespace {

TEST(ParallelMap, ResultsArriveInJobOrder) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    const auto out = parallel_map<std::size_t>(64, threads, [](std::size_t i) {
      // Stagger completion so late-submitted jobs finish first under
      // contention; order must still be by index.
      if (i % 7 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return i * i;
    });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelMap, MoreJobsThanThreadsAndViceVersa) {
  const auto few = parallel_map<int>(3, 8, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(few, (std::vector<int>{0, 1, 2}));
  const auto none = parallel_map<int>(0, 4, [](std::size_t) { return 1; });
  EXPECT_TRUE(none.empty());
}

TEST(ParallelMap, ExceptionFromFailingJobPropagates) {
  std::atomic<int> completed{0};
  try {
    parallel_map<int>(16, 4, [&](std::size_t i) {
      if (i == 5) throw std::runtime_error("job 5 exploded");
      ++completed;
      return 0;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 5 exploded");
  }
  // All other jobs still ran: the pool drains, one failure doesn't wedge it.
  EXPECT_EQ(completed.load(), 15);
}

TEST(ParallelMap, InlinePathAlsoThrows) {
  EXPECT_THROW(parallel_map<int>(2, 1,
                                 [](std::size_t) -> int { throw std::logic_error("inline"); }),
               std::logic_error);
}

TEST(ThreadPool, SubmitFutureReportsCompletionAndError) {
  ThreadPool pool(2);
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error("task error"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i)
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++ran;
      });
    // Destructor joins after the queue empties.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, WaitIdleBlocksUntilQuiescent) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 24; ++i) pool.submit([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 24);
  // Idle pool: wait_idle returns immediately and the pool stays usable.
  pool.wait_idle();
  auto fut = pool.submit([&] { ++ran; });
  fut.get();
  EXPECT_EQ(ran.load(), 25);
}

TEST(ThreadPool, ConcurrentLoggingIsRaceFreeAndLineAtomic) {
  // Components log from shard worker threads and from concurrent batch
  // jobs, so sim::Log must tolerate simultaneous write() calls into one
  // sink: no torn lines, every line present (TSan additionally checks the
  // absence of data races on the level/sink globals here).
  std::ostringstream captured;
  std::ostream* const old_sink = sim::Log::sink();
  const sim::LogLevel old_level = sim::Log::level();
  sim::Log::set_sink(&captured);
  sim::Log::set_level(sim::LogLevel::kInfo);
  {
    ThreadPool pool(4);
    for (int i = 0; i < 64; ++i)
      pool.submit([i] { sim::log_info("pool", "job ", i, " says hello"); });
    pool.wait_idle();
  }
  sim::Log::set_sink(old_sink);
  sim::Log::set_level(old_level);

  std::istringstream lines(captured.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("[INFO ] pool: job ", 0), 0u) << line;
    EXPECT_NE(line.find(" says hello"), std::string::npos) << line;
    ++count;
  }
  EXPECT_EQ(count, 64u);
}

// --- End-to-end determinism contract ----------------------------------------

soc::RunSpec small_spec(std::uint64_t seed) {
  soc::Scenario sc;
  sc.width = 2;
  sc.height = 2;
  sc.slots = 8;
  sc.run_cycles = 1500;
  soc::Scenario::RawConnection a;
  a.name = "a";
  a.src = {0, 0};
  a.dsts = {{1, 1}};
  a.bandwidth = 200.0;
  soc::Scenario::RawConnection b;
  b.name = "b";
  b.src = {1, 0};
  b.dsts = {{0, 1}};
  b.bandwidth = 150.0;
  b.response_bandwidth = 50.0;
  sc.raw = {a, b};
  soc::RunSpec spec;
  spec.label = "unit";
  spec.scenario = std::move(sc);
  spec.seed = seed;
  return spec;
}

TEST(BatchDeterminism, SameSeedIsByteIdenticalAcrossWorkerCounts) {
  const auto run_batch = [&](std::size_t threads) {
    const auto reports = parallel_map<analysis::NetworkReport>(
        6, threads, [&](std::size_t i) { return soc::run_scenario(small_spec(i)); });
    JsonValue doc = JsonValue::array();
    for (const auto& r : reports) doc.push_back(r.to_json());
    return doc.dump();
  };
  const std::string serial = run_batch(1);
  const std::string parallel = run_batch(8);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"ok\":true"), std::string::npos);
}

TEST(RunScenario, OutOfGridCoordinatesReportErrorNotCrash) {
  soc::RunSpec spec = small_spec(0);
  spec.scenario.raw[1].dsts = {{9, 9}}; // outside the 2x2 grid
  const auto r = soc::run_scenario(spec);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("9,9"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("connection 'b'"), std::string::npos) << r.error;
}

TEST(BatchDeterminism, SeedShufflesAllocationButStaysReproducible) {
  const auto r1 = soc::run_scenario(small_spec(3));
  const auto r2 = soc::run_scenario(small_spec(3));
  EXPECT_EQ(r1.to_json().dump(), r2.to_json().dump());
  ASSERT_EQ(r1.connections.size(), 2u);
  EXPECT_TRUE(r1.ok);
}

} // namespace
} // namespace daelite::sim
