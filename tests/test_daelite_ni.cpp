// Unit tests for the daelite Network Interface: slot-table governed
// injection and delivery, credit-based end-to-end flow control, credit
// piggybacking, flags, and the NI side of configuration.

#include <gtest/gtest.h>

#include "daelite/ni.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace daelite;
using namespace daelite::hw;

Ni::Params ni_params(std::uint32_t slots = 4, std::size_t cap = 8) {
  Ni::Params p;
  p.tdm = tdm::daelite_params(slots);
  p.num_channels = 4;
  p.queue_capacity = cap;
  return p;
}

/// Two NIs wired back to back: A's output feeds B's input and vice versa.
/// A acting in slot q is seen by B in slot q+1 (one pipeline stage), the
/// same relationship as through a chain of routers.
class NiPairTest : public ::testing::Test {
 protected:
  Ni::Params params = ni_params();
  sim::Kernel k;
  Ni a{k, "A", 1, params};
  Ni b{k, "B", 2, params};

  void SetUp() override {
    b.connect_input(&a.output_reg());
    a.connect_input(&b.output_reg());
  }

  /// Program a unidirectional channel A(tx q0, slot s) -> B(rx q0, slot s+1).
  void program_a_to_b(tdm::Slot s) {
    a.table().set_tx(s, 0);
    b.table().set_rx((s + 1) % params.tdm.num_slots, 0);
  }
  /// And the reverse channel B -> A.
  void program_b_to_a(tdm::Slot s) {
    b.table().set_tx(s, 0);
    a.table().set_rx((s + 1) % params.tdm.num_slots, 0);
  }
};

TEST_F(NiPairTest, DeliversWordsInOrder) {
  program_a_to_b(0);
  a.set_credit_direct(0, 63);
  for (std::uint32_t w = 1; w <= 6; ++w) ASSERT_TRUE(a.tx_push(0, w));
  k.run(6 * params.tdm.wheel_cycles());
  for (std::uint32_t w = 1; w <= 6; ++w) {
    auto got = b.rx_pop(0);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, w);
  }
  EXPECT_FALSE(b.rx_pop(0).has_value());
  EXPECT_EQ(b.stats().flits_dropped, 0u);
  EXPECT_EQ(b.stats().rx_overflow, 0u);
  EXPECT_EQ(a.tx_stats(0).words_sent, 6u);
  EXPECT_EQ(b.rx_stats(0).words_received, 6u);
}

TEST_F(NiPairTest, SendsAtMostWordsPerSlot) {
  program_a_to_b(0);
  a.set_credit_direct(0, 63);
  for (std::uint32_t w = 0; w < 8; ++w) a.tx_push(0, w);
  // One wheel = one owned slot = at most 2 words. (The first wheel sends
  // nothing: the pushes commit at the end of cycle 0, after the NI's
  // slot-0 tick already sampled an empty queue.)
  k.run(params.tdm.wheel_cycles());
  EXPECT_LE(a.tx_stats(0).words_sent, 2u);
  k.run(4 * params.tdm.wheel_cycles());
  EXPECT_EQ(a.tx_stats(0).words_sent, 8u);
}

TEST_F(NiPairTest, TxQueueCapacityEnforced) {
  for (std::size_t i = 0; i < params.queue_capacity; ++i) EXPECT_TRUE(a.tx_push(0, 1));
  EXPECT_FALSE(a.tx_push(0, 1));
  EXPECT_EQ(a.tx_space(0), 0u);
}

TEST_F(NiPairTest, NoCreditsMeansNoData) {
  program_a_to_b(0);
  a.set_credit_direct(0, 0); // destination "full"
  a.tx_push(0, 123);
  k.run(4 * params.tdm.wheel_cycles());
  EXPECT_EQ(a.tx_stats(0).words_sent, 0u);
  EXPECT_GT(a.stats().tx_stalled_slots, 0u);
  EXPECT_EQ(b.rx_level(0), 0u);
}

TEST_F(NiPairTest, CreditCounterDecrementsPerWordSent) {
  program_a_to_b(0);
  a.set_credit_direct(0, 3);
  for (int i = 0; i < 6; ++i) a.tx_push(0, 9);
  k.run(8 * params.tdm.wheel_cycles());
  // Only 3 words may leave without replenishment.
  EXPECT_EQ(a.tx_stats(0).words_sent, 3u);
  EXPECT_EQ(a.credit(0), 0u);
}

TEST_F(NiPairTest, CreditsReturnOnReverseChannelAfterDelivery) {
  // Full-duplex: A.tx0 -> B.rx0 and B.tx0 -> A.rx0; credits for A's data
  // ride on B's reverse flits.
  program_a_to_b(0);
  program_b_to_a(2);
  a.set_pair_direct(0, 0); // A: tx0 paired with rx0
  b.set_pair_direct(0, 0); // B: tx0 paired with rx0
  a.set_credit_direct(0, 4);
  b.set_credit_direct(0, 4);

  for (int i = 0; i < 4; ++i) a.tx_push(0, 10 + i);
  k.run(6 * params.tdm.wheel_cycles());
  EXPECT_EQ(a.credit(0), 0u); // 4 words in flight/undelivered
  EXPECT_EQ(b.rx_level(0), 4u);

  // B's IP consumes the words -> pending credits accumulate and return on
  // B's tx slots (even with no reverse payload).
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(b.rx_pop(0).has_value());
  k.run(6 * params.tdm.wheel_cycles());
  EXPECT_EQ(a.credit(0), 4u);
  EXPECT_EQ(b.rx_stats(0).flits_received, 2u); // 4 words = 2 flits
  EXPECT_GT(a.rx_stats(0).credits_received, 0u);
}

TEST_F(NiPairTest, CreditOnlyFlitsCarryNoData) {
  program_a_to_b(0);
  program_b_to_a(2);
  a.set_pair_direct(0, 0);
  b.set_pair_direct(0, 0);
  a.set_credit_direct(0, 8);
  b.set_credit_direct(0, 8);
  a.tx_push(0, 1);
  a.tx_push(0, 2);
  k.run(4 * params.tdm.wheel_cycles());
  b.rx_pop(0);
  b.rx_pop(0);
  k.run(4 * params.tdm.wheel_cycles());
  // B sent credits but no payload; A's rx queue must stay empty.
  EXPECT_EQ(a.rx_level(0), 0u);
  EXPECT_EQ(b.tx_stats(0).words_sent, 0u);
  EXPECT_EQ(b.tx_stats(0).credits_sent, 2u);
}

TEST_F(NiPairTest, FlowControlOffSendsWithoutCredits) {
  program_a_to_b(0);
  a.set_credit_direct(0, 0);
  a.set_flow_ctrl_direct(0, false); // multicast mode
  a.tx_push(0, 5);
  k.run(4 * params.tdm.wheel_cycles());
  EXPECT_EQ(a.tx_stats(0).words_sent, 1u);
  EXPECT_EQ(b.rx_level(0), 1u);
}

TEST_F(NiPairTest, ArrivalInUnmappedSlotIsDropped) {
  a.table().set_tx(0, 0); // A transmits, B has no rx entry
  a.set_credit_direct(0, 8);
  a.set_flow_ctrl_direct(0, false);
  a.tx_push(0, 1);
  k.run(2 * params.tdm.wheel_cycles());
  EXPECT_EQ(b.stats().flits_dropped, 1u);
}

TEST_F(NiPairTest, RxOverflowCountedWhenFlowControlViolated) {
  program_a_to_b(0);
  a.set_credit_direct(0, 63);      // lie about destination space
  a.set_flow_ctrl_direct(0, false);
  // B never pops, so everything beyond its queue capacity must overflow.
  // Push in stages (A's own tx queue is also bounded).
  std::uint32_t pushed = 0;
  for (int guard = 0; guard < 100 && pushed < 2 * params.queue_capacity; ++guard) {
    while (pushed < 2 * params.queue_capacity && a.tx_push(0, pushed)) ++pushed;
    k.run(params.tdm.wheel_cycles());
  }
  k.run(10 * params.tdm.wheel_cycles());
  EXPECT_EQ(b.rx_level(0), params.queue_capacity);
  EXPECT_GT(b.stats().rx_overflow, 0u);
}

TEST_F(NiPairTest, LatencyHistogramRecordsPipelineDelay) {
  program_a_to_b(1);
  a.set_credit_direct(0, 8);
  a.tx_push(0, 77);
  k.run(4 * params.tdm.wheel_cycles());
  ASSERT_EQ(b.stats().latency.count(), 1u);
  // One pipeline stage = one slot = 2 cycles.
  EXPECT_EQ(b.stats().latency.mean(), 2.0);
}

TEST_F(NiPairTest, DisabledTxChannelStaysQuiet) {
  program_a_to_b(0);
  a.set_credit_direct(0, 8);
  a.cfg_set_flags(0, 0); // enabled bit clear
  a.tx_push(0, 1);
  k.run(4 * params.tdm.wheel_cycles());
  EXPECT_EQ(a.tx_stats(0).words_sent, 0u);
  a.cfg_set_flags(0, kFlagTxEnabled);
  k.run(4 * params.tdm.wheel_cycles());
  EXPECT_EQ(a.tx_stats(0).words_sent, 1u);
}

// --- NI-side configuration ---------------------------------------------------

TEST(NiConfig, ApplyPathProgramsTxAndRxTables) {
  sim::Kernel k;
  Ni ni(k, "N", 3, ni_params(8));
  const std::uint64_t mask = (1u << 2) | (1u << 6);
  ni.cfg_apply_path(mask, encode_ni_port(/*tx=*/true, 1), true);
  EXPECT_EQ(ni.table().tx_channel(2), 1u);
  EXPECT_EQ(ni.table().tx_channel(6), 1u);
  EXPECT_EQ(ni.table().rx_channel(2), tdm::kNoChannel);

  ni.cfg_apply_path(mask, encode_ni_port(/*tx=*/false, 2), true);
  EXPECT_EQ(ni.table().rx_channel(2), 2u);

  ni.cfg_apply_path(mask, encode_ni_port(true, 1), false);
  EXPECT_EQ(ni.table().tx_channel(2), tdm::kNoChannel);
  EXPECT_EQ(ni.table().rx_channel(2), 2u); // rx untouched by tx teardown
}

TEST(NiConfig, CreditWriteAndReadBack) {
  sim::Kernel k;
  Ni ni(k, "N", 3, ni_params());
  ni.cfg_write_credit(1, 37);
  EXPECT_EQ(ni.credit(1), 37u);
  EXPECT_EQ(ni.cfg_read_credit(1), 37u);
}

TEST(NiConfig, PairAndFlags) {
  sim::Kernel k;
  Ni ni(k, "N", 3, ni_params());
  ni.cfg_set_pair(1, 2);
  ni.cfg_set_flags(1, kFlagTxEnabled | kFlagFlowCtrlOff);
  // Behavioural check: flow control off lets data out without credits.
  // (Indirectly verified in NiPairTest; here check error counting.)
  ni.cfg_set_pair(60, 0); // queue out of range
  EXPECT_EQ(ni.stats().cfg_errors, 1u);
}

TEST(NiConfig, BusWriteLandsInRegisterFile) {
  sim::Kernel k;
  Ni ni(k, "N", 3, ni_params());
  ni.cfg_bus_write(0x12, 0x1FFF);
  EXPECT_EQ(ni.bus_register(0x12), 0x1FFF);
  EXPECT_EQ(ni.bus_register(0x13), 0);
}

} // namespace
