// Unit tests for the configuration protocol: packet encoding (including
// the byte-exact Fig. 6 example), the ConfigAgent FSM with its
// rotate-per-pair slot-mask semantics, the broadcast tree pipeline timing,
// and the host configuration module.

#include <gtest/gtest.h>

#include <vector>

#include "daelite/config.hpp"
#include "daelite/config_host.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace daelite;
using namespace daelite::hw;

/// Records every ConfigTarget call.
class MockTarget : public ConfigTarget {
 public:
  explicit MockTarget(std::uint16_t id, bool is_ni = false) : id_(id), is_ni_(is_ni) {}

  struct PathCall {
    std::uint64_t mask;
    std::uint8_t ports;
    bool setup;
  };

  std::uint16_t cfg_id() const override { return id_; }
  bool cfg_is_ni() const override { return is_ni_; }
  void cfg_apply_path(std::uint64_t mask, std::uint8_t ports, bool setup) override {
    path_calls.push_back({mask, ports, setup});
  }
  void cfg_write_credit(std::uint8_t q, std::uint8_t v) override { credit_writes.push_back({q, v}); }
  std::uint8_t cfg_read_credit(std::uint8_t q) override { return static_cast<std::uint8_t>(q + 40); }
  std::uint8_t cfg_read_flags(std::uint8_t q) override { return static_cast<std::uint8_t>(q + 60); }
  void cfg_set_pair(std::uint8_t t, std::uint8_t r) override { pairs.push_back({t, r}); }
  void cfg_set_flags(std::uint8_t q, std::uint8_t f) override { flags.push_back({q, f}); }
  void cfg_bus_write(std::uint8_t a, std::uint16_t v) override { bus_writes.push_back({a, v}); }

  std::vector<PathCall> path_calls;
  std::vector<std::pair<std::uint8_t, std::uint8_t>> credit_writes;
  std::vector<std::pair<std::uint8_t, std::uint8_t>> pairs;
  std::vector<std::pair<std::uint8_t, std::uint8_t>> flags;
  std::vector<std::pair<std::uint8_t, std::uint16_t>> bus_writes;

 private:
  std::uint16_t id_;
  bool is_ni_;
};

/// Drives a word stream into an agent chain, one word per cycle.
class WordSource : public sim::Component {
 public:
  WordSource(sim::Kernel& k) : sim::Component(k, "src") { own(out_); }
  const sim::Reg<CfgWord>& out() const { return out_; }
  void queue_words(const std::vector<std::uint8_t>& ws) {
    for (auto w : ws) pending_.push_back(w);
  }
  void tick() override {
    if (!pending_.empty()) {
      out_.set(CfgWord{true, pending_.front()});
      pending_.erase(pending_.begin());
    } else {
      out_.set(CfgWord{});
    }
  }

 private:
  sim::Reg<CfgWord> out_;
  std::vector<std::uint8_t> pending_;
};

// --- Encoding ------------------------------------------------------------------

TEST(Encoding, Figure6PacketBytes) {
  // Reconstruct the paper's example directly: segment head = destination
  // NI (id 11 for readability), then R11, R10, NI10; destination slots
  // {4,7}; S=8 so one mask word... S=8 needs ceil(8/7)=2 words, exactly
  // the "two configuration words contain a table of slots" of the paper.
  alloc::CfgSegment seg;
  seg.slots_at_head = {4, 7};
  alloc::CfgElement ni11{/*node=*/3, /*in=*/0, /*out=*/0, /*is_ni=*/true, /*src=*/false};
  alloc::CfgElement r11{/*node=*/2, /*in=*/1, /*out=*/2, false, false};
  alloc::CfgElement r10{/*node=*/1, /*in=*/2, /*out=*/1, false, false};
  alloc::CfgElement ni10{/*node=*/0, /*in=*/0, /*out=*/0, true, /*src=*/true};
  seg.elements = {ni11, r11, r10, ni10};

  CfgIdMap ids{{0, 10}, {1, 20}, {2, 30}, {3, 40}};
  const tdm::TdmParams p = tdm::daelite_params(8);
  const auto words = encode_path_packet(seg, p, ids, true);

  const std::vector<std::uint8_t> expected = {
      static_cast<std::uint8_t>(CfgOp::kSetupPath),
      // mask 0b10010000 (slots 4 and 7): low 7 bits, then bit 7.
      0b0010000, 0b1,
      40, encode_ni_port(false, 0), // destination NI first
      30, encode_router_ports(1, 2),
      20, encode_router_ports(2, 1),
      10, encode_ni_port(true, 0),  // source NI last
      kCfgEndOfPacket,
  };
  EXPECT_EQ(words, expected);
}

TEST(Encoding, MaskWordsScaleWithSlotTableSize) {
  EXPECT_EQ(cfg_mask_words(7), 1u);
  EXPECT_EQ(cfg_mask_words(8), 2u);
  EXPECT_EQ(cfg_mask_words(14), 2u);
  EXPECT_EQ(cfg_mask_words(16), 3u);
  EXPECT_EQ(cfg_mask_words(32), 5u);
}

TEST(Encoding, NiPortWordDistinguishesTxAndRx) {
  EXPECT_EQ(encode_ni_port(true, 5) & kCfgNiTxBit, kCfgNiTxBit);
  EXPECT_EQ(encode_ni_port(false, 5) & kCfgNiTxBit, 0);
  EXPECT_EQ(encode_ni_port(true, 5) & kCfgQueueMask, 5);
}

TEST(Encoding, ExtendedIdsEscapeBeyond126) {
  // Ids up to 126 keep the paper's single-word form; beyond that the
  // encoder emits the 0-escape plus a two-word 14-bit id. Regression for
  // networks of more than 126 elements (e.g. an 8x8 mesh = 128), whose ids
  // previously overflowed the 7-bit space silently in NDEBUG builds.
  std::vector<std::uint8_t> w;
  append_cfg_id(w, 126);
  EXPECT_EQ(w, (std::vector<std::uint8_t>{126}));
  w.clear();
  append_cfg_id(w, 127);
  EXPECT_EQ(w, (std::vector<std::uint8_t>{kCfgIdEscape, 0, 127}));
  w.clear();
  append_cfg_id(w, 300);
  EXPECT_EQ(w, (std::vector<std::uint8_t>{kCfgIdEscape, 300 >> 7, 300 & 0x7F}));

  EXPECT_EQ(encode_write_credit(300, 2, 33),
            (std::vector<std::uint8_t>{static_cast<std::uint8_t>(CfgOp::kWriteCredit),
                                       kCfgIdEscape, 300 >> 7, 300 & 0x7F, 2, 33}));

  // A path packet mixing a direct and an escaped id.
  alloc::CfgSegment seg;
  seg.slots_at_head = {0};
  seg.elements = {alloc::CfgElement{/*node=*/1, 0, 0, /*is_ni=*/true, /*src=*/false},
                  alloc::CfgElement{/*node=*/0, 0, 0, true, /*src=*/true}};
  CfgIdMap ids{{0, 10}, {1, 200}};
  const auto words = encode_path_packet(seg, tdm::daelite_params(8), ids, true);
  const std::vector<std::uint8_t> expected = {
      static_cast<std::uint8_t>(CfgOp::kSetupPath), 0b1, 0,
      kCfgIdEscape, 200 >> 7, 200 & 0x7F, encode_ni_port(false, 0),
      10, encode_ni_port(true, 0),
      kCfgEndOfPacket,
  };
  EXPECT_EQ(words, expected);
}

TEST(Encoding, AssignCfgIdsCoverLargeTopologies) {
  topo::Topology t;
  for (int i = 0; i < 130; ++i) t.add_router("r" + std::to_string(i));
  const auto ids = assign_cfg_ids(t);
  EXPECT_EQ(ids.size(), 130u);
  for (const auto& [node, id] : ids) {
    EXPECT_GE(id, 1);
    EXPECT_LE(id, 130);
  }
}

TEST(Encoding, AssignCfgIdsAreUniqueNonZero) {
  topo::Topology t;
  t.add_router("a");
  t.add_router("b");
  t.add_ni("n");
  const auto ids = assign_cfg_ids(t);
  EXPECT_EQ(ids.size(), 3u);
  for (const auto& [node, id] : ids) {
    EXPECT_GE(id, 1);
    EXPECT_LT(id, 127);
  }
}

// --- Agent FSM -------------------------------------------------------------------

class AgentFixture : public ::testing::Test {
 protected:
  tdm::TdmParams params = tdm::daelite_params(8);
  sim::Kernel k;
  WordSource src{k};
  MockTarget t1{10};
  MockTarget t2{20};
  ConfigAgent a1{k, "a1", t1, params};
  ConfigAgent a2{k, "a2", t2, params};

  void SetUp() override {
    a1.connect_parent(&src.out());
    a2.connect_parent(&a1.fwd_out());
    a1.add_child_resp(&a2.resp_out());
  }

  void run_stream(const std::vector<std::uint8_t>& words) {
    src.queue_words(words);
    k.run(words.size() + 10);
  }
};

TEST_F(AgentFixture, MatchingElementGetsRotatedMask) {
  // Packet: head mask {4,7}; pair1 -> id 20 (rotation 0), pair2 -> id 10
  // (rotation 1: {3,6}).
  std::vector<std::uint8_t> words = {
      static_cast<std::uint8_t>(CfgOp::kSetupPath), 0b0010000, 0b1,
      20, encode_router_ports(0, 1),
      10, encode_router_ports(1, 2),
      kCfgEndOfPacket};
  run_stream(words);

  ASSERT_EQ(t2.path_calls.size(), 1u);
  EXPECT_EQ(t2.path_calls[0].mask, (1ull << 4) | (1ull << 7));
  EXPECT_TRUE(t2.path_calls[0].setup);

  ASSERT_EQ(t1.path_calls.size(), 1u);
  EXPECT_EQ(t1.path_calls[0].mask, (1ull << 3) | (1ull << 6));
}

TEST_F(AgentFixture, RotationWrapsAroundSlotZero) {
  // Mask {0}: after one rotation it must become {S-1} = {7}.
  std::vector<std::uint8_t> words = {
      static_cast<std::uint8_t>(CfgOp::kSetupPath), 0b0000001, 0,
      99, 0, // no match, rotate
      10, encode_router_ports(0, 0),
      kCfgEndOfPacket};
  run_stream(words);
  ASSERT_EQ(t1.path_calls.size(), 1u);
  EXPECT_EQ(t1.path_calls[0].mask, 1ull << 7);
}

TEST_F(AgentFixture, TearPathDeliversSetupFalse)
{
  std::vector<std::uint8_t> words = {
      static_cast<std::uint8_t>(CfgOp::kTearPath), 0b0000010, 0,
      10, encode_router_ports(0, 0),
      kCfgEndOfPacket};
  run_stream(words);
  ASSERT_EQ(t1.path_calls.size(), 1u);
  EXPECT_FALSE(t1.path_calls[0].setup);
}

TEST_F(AgentFixture, NonMatchingElementAppliesNothing) {
  std::vector<std::uint8_t> words = {
      static_cast<std::uint8_t>(CfgOp::kSetupPath), 0b1, 0,
      55, encode_router_ports(0, 0),
      kCfgEndOfPacket};
  run_stream(words);
  EXPECT_TRUE(t1.path_calls.empty());
  EXPECT_TRUE(t2.path_calls.empty());
  EXPECT_EQ(a1.packets_seen(), 1u);
}

TEST_F(AgentFixture, PaddingNopsBetweenPacketsAreIgnored) {
  std::vector<std::uint8_t> words = {
      0, 0, 0,
      static_cast<std::uint8_t>(CfgOp::kSetupPath), 0b1, 0,
      10, encode_router_ports(3, 4), kCfgEndOfPacket,
      0, 0,
      static_cast<std::uint8_t>(CfgOp::kWriteCredit), 20, 2, 33,
      0};
  run_stream(words);
  ASSERT_EQ(t1.path_calls.size(), 1u);
  ASSERT_EQ(t2.credit_writes.size(), 1u);
  EXPECT_EQ(t2.credit_writes[0], (std::pair<std::uint8_t, std::uint8_t>{2, 33}));
  EXPECT_EQ(a1.protocol_errors(), 0u);
}

TEST(AgentExtendedId, EscapedIdsMatchAndKeepStreamInSync) {
  // An element whose id needs the two-word escape must match escaped ids
  // in both path packets and fixed-argument ops, ignore escaped ids of
  // other elements without losing stream sync, and still ignore direct
  // ids (which can never exceed 126).
  const tdm::TdmParams params = tdm::daelite_params(8);
  sim::Kernel k;
  WordSource src{k};
  MockTarget target{300};
  ConfigAgent agent{k, "a", target, params};
  agent.connect_parent(&src.out());

  std::vector<std::uint8_t> words = {
      static_cast<std::uint8_t>(CfgOp::kSetupPath), 0b1, 0,
      kCfgIdEscape, 301 >> 7, 301 & 0x7F, encode_router_ports(1, 1), // other element
      kCfgIdEscape, 300 >> 7, 300 & 0x7F, encode_router_ports(2, 3), // this element
      kCfgEndOfPacket};
  const auto credit = encode_write_credit(300, 4, 17);
  words.insert(words.end(), credit.begin(), credit.end());
  const auto other = encode_set_flags(301, 1, 1);
  words.insert(words.end(), other.begin(), other.end());
  src.queue_words(words);
  k.run(words.size() + 10);

  ASSERT_EQ(target.path_calls.size(), 1u);
  // Second pair: the head mask {0} has rotated once to {7}.
  EXPECT_EQ(target.path_calls[0].mask, 1ull << 7);
  EXPECT_EQ(target.path_calls[0].ports, encode_router_ports(2, 3));
  ASSERT_EQ(target.credit_writes.size(), 1u);
  EXPECT_EQ(target.credit_writes[0], (std::pair<std::uint8_t, std::uint8_t>{4, 17}));
  EXPECT_TRUE(target.flags.empty());
  EXPECT_EQ(agent.protocol_errors(), 0u);
  EXPECT_EQ(agent.packets_seen(), 3u);
}

TEST_F(AgentFixture, ForwardPipelineIsTwoCyclesPerHop) {
  // A single word reaches a1's output 2 cycles after the source emits it,
  // and a2 sees it 2 cycles later still.
  src.queue_words({static_cast<std::uint8_t>(CfgOp::kNop)});
  sim::Cycle at_src = sim::kNoCycle, at_a1 = sim::kNoCycle, at_a2 = sim::kNoCycle;
  for (int i = 0; i < 12; ++i) {
    k.step();
    if (at_src == sim::kNoCycle && src.out().get().valid) at_src = k.now();
    if (at_a1 == sim::kNoCycle && a1.fwd_out().get().valid) at_a1 = k.now();
    if (at_a2 == sim::kNoCycle && a2.fwd_out().get().valid) at_a2 = k.now();
  }
  ASSERT_NE(at_src, sim::kNoCycle);
  EXPECT_EQ(at_a1 - at_src, 2u);
  EXPECT_EQ(at_a2 - at_a1, 2u);
}

TEST_F(AgentFixture, ReadCreditResponseTravelsBackUpTheTree) {
  std::vector<std::uint8_t> words = {static_cast<std::uint8_t>(CfgOp::kReadCredit), 20, 3};
  src.queue_words(words);
  // a2's mock returns 3 + 40 = 43.
  bool got = k.run_until([&] { return a1.resp_out().get().valid; }, 40);
  ASSERT_TRUE(got);
  EXPECT_EQ(a1.resp_out().get().data, 43);
}

TEST_F(AgentFixture, SetPairFlagsAndBusWriteDispatch) {
  std::vector<std::uint8_t> words = {
      static_cast<std::uint8_t>(CfgOp::kSetPair), 10, 1, 2,
      static_cast<std::uint8_t>(CfgOp::kSetFlags), 10, 1, kFlagTxEnabled,
      static_cast<std::uint8_t>(CfgOp::kBusWrite), 20, 0x12, 0x05, 0x22};
  run_stream(words);
  ASSERT_EQ(t1.pairs.size(), 1u);
  EXPECT_EQ(t1.pairs[0], (std::pair<std::uint8_t, std::uint8_t>{1, 2}));
  ASSERT_EQ(t1.flags.size(), 1u);
  ASSERT_EQ(t2.bus_writes.size(), 1u);
  EXPECT_EQ(t2.bus_writes[0].second, (0x05 << 7) | 0x22);
}

TEST_F(AgentFixture, BroadcastReachesAllElementsWithOnePacket) {
  // Both elements matched by one packet (two pairs).
  std::vector<std::uint8_t> words = {
      static_cast<std::uint8_t>(CfgOp::kSetupPath), 0b0000100, 0,
      20, encode_router_ports(0, 1),
      10, encode_router_ports(1, 0),
      kCfgEndOfPacket};
  run_stream(words);
  EXPECT_EQ(t1.path_calls.size(), 1u);
  EXPECT_EQ(t2.path_calls.size(), 1u);
  // t2 (matched first) saw mask {2}; t1 saw {1}.
  EXPECT_EQ(t2.path_calls[0].mask, 1ull << 2);
  EXPECT_EQ(t1.path_calls[0].mask, 1ull << 1);
}

// --- Host module -------------------------------------------------------------------

class HostFixture : public ::testing::Test {
 protected:
  tdm::TdmParams params = tdm::daelite_params(8);
  sim::Kernel k;
  ConfigModule host{k, "host", ConfigModule::Params{4}};
  MockTarget t1{10};
  ConfigAgent a1{k, "a1", t1, params};

  void SetUp() override {
    a1.connect_parent(&host.fwd_out());
    host.connect_resp(&a1.resp_out());
  }
};

TEST_F(HostFixture, StreamsOneWordPerCycleAndPadsTo32BitWrites) {
  host.enqueue_packet({1, 2, 3, 4, 5}, false); // 5 words -> padded to 8
  k.run_until([&] { return host.idle(); }, 100);
  EXPECT_EQ(host.words_sent(), 8u);
  EXPECT_EQ(host.packets_sent(), 1u);
}

TEST_F(HostFixture, CoolDownSeparatesPathPackets) {
  // Two path packets of 4 words each with cool-down 4: the second starts
  // only after the cool-down.
  host.enqueue_packet({static_cast<std::uint8_t>(CfgOp::kNop), 0, 0, 0}, true);
  host.enqueue_packet({static_cast<std::uint8_t>(CfgOp::kNop), 0, 0, 0}, true);
  const bool done = k.run_until([&] { return host.idle(); }, 100);
  ASSERT_TRUE(done);
  // 4 words + 4 cool-down + 4 words + 4 cool-down = 16 cycles (+1 start).
  EXPECT_GE(k.now(), 16u);
  EXPECT_LE(k.now(), 18u);
}

TEST_F(HostFixture, NonPathPacketsStreamBackToBack) {
  host.enqueue_packet({static_cast<std::uint8_t>(CfgOp::kNop), 0, 0, 0}, false);
  host.enqueue_packet({static_cast<std::uint8_t>(CfgOp::kNop), 0, 0, 0}, false);
  k.run_until([&] { return host.idle(); }, 100);
  EXPECT_LE(k.now(), 10u);
}

TEST_F(HostFixture, ReadBlocksUntilResponseArrives) {
  host.enqueue_packet(encode_read_credit(10, 2), false, /*expects_response=*/true);
  host.enqueue_packet({static_cast<std::uint8_t>(CfgOp::kNop), 0, 0, 0}, false);
  const bool done = k.run_until([&] { return host.idle(); }, 200);
  ASSERT_TRUE(done);
  ASSERT_EQ(host.responses().size(), 1u);
  EXPECT_EQ(host.responses()[0], 42); // mock: queue 2 + 40
}

TEST_F(HostFixture, EndToEndPathSetupAppliesToTarget) {
  alloc::CfgSegment seg;
  seg.slots_at_head = {1, 5};
  seg.elements = {alloc::CfgElement{/*node=*/0, 2, 3, false, false}};
  CfgIdMap ids{{0, 10}};
  host.enqueue_packet(encode_path_packet(seg, params, ids, true), true);
  k.run_until([&] { return host.idle(); }, 100);
  k.run(ConfigModule::drain_cycles(1));
  ASSERT_EQ(t1.path_calls.size(), 1u);
  EXPECT_EQ(t1.path_calls[0].mask, (1ull << 1) | (1ull << 5));
  EXPECT_EQ(t1.path_calls[0].ports, encode_router_ports(2, 3));
}

} // namespace
