// Tests for the joint space-time allocator: it matches the fixed-path
// allocator on easy instances, beats it on slot-fragmented ones, commits
// consistent schedules, and respects the depth bound.

#include <gtest/gtest.h>

#include "alloc/joint_alloc.hpp"
#include "alloc/validate.hpp"
#include "sim/random.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::alloc;

TEST(JointAlloc, FindsShortestPathOnEmptyNetwork) {
  const auto m = topo::make_mesh(3, 3);
  SlotAllocator alloc(m.topo, tdm::daelite_params(8));
  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(2, 2)};
  spec.slots_required = 3;
  const auto r = allocate_joint(alloc, spec);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->edges.size(), 6u); // minimal: NI + 4 router-router + NI
  EXPECT_EQ(r->inject_slots.size(), 3u);
  const std::vector<RouteTree> routes{*r};
  EXPECT_EQ(validate_allocation(m.topo, alloc.params(), alloc.schedule(), routes), "");
}

TEST(JointAlloc, BeatsFixedPathAllocatorOnFragmentedSlots) {
  // Fragment the two minimal routes so that each has disjoint free-slot
  // halves at mismatched alignments; the joint search finds a longer path
  // whose links happen to align, which the k-shortest allocator with few
  // candidates misses.
  const auto m = topo::make_mesh(3, 3);
  const tdm::TdmParams params = tdm::daelite_params(8);

  auto fragment = [&](SlotAllocator& a) {
    // Block most slots on the two last-hop links into R11 with
    // *misaligned* patterns relative to the source.
    const topo::LinkId l1 = m.topo.find_link(m.router(1, 0), m.router(1, 1));
    const topo::LinkId l2 = m.topo.find_link(m.router(0, 1), m.router(1, 1));
    for (tdm::Slot s = 0; s < 7; ++s) a.reserve_raw(l1, s, 900); // only slot 7 free
    for (tdm::Slot s = 1; s < 8; ++s) a.reserve_raw(l2, s, 901); // only slot 0 free
  };

  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(1, 1)};
  spec.slots_required = 2; // neither constrained route can carry 2 slots

  alloc::AllocatorOptions narrow;
  narrow.path_candidates = 2;
  SlotAllocator fixed(m.topo, params, narrow);
  fragment(fixed);
  EXPECT_FALSE(fixed.allocate(spec).has_value());

  SlotAllocator joint(m.topo, params);
  fragment(joint);
  JointSearchStats stats;
  const auto r = allocate_joint(joint, spec, 0, &stats);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->edges.size(), 4u); // took a detour
  EXPECT_GT(stats.states_expanded, 0u);
}

TEST(JointAlloc, RespectsDepthBound) {
  const auto m = topo::make_mesh(3, 3);
  SlotAllocator alloc(m.topo, tdm::daelite_params(8));
  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(2, 2)};
  spec.slots_required = 1;
  EXPECT_FALSE(allocate_joint(alloc, spec, 3).has_value()); // needs 6 links
  EXPECT_TRUE(allocate_joint(alloc, spec, 6).has_value());
}

TEST(JointAlloc, FailsCleanlyWhenTrulyInfeasible) {
  const auto m = topo::make_mesh(2, 2);
  SlotAllocator alloc(m.topo, tdm::daelite_params(4));
  // Saturate the source NI link entirely.
  const topo::LinkId src_link = m.topo.find_link(m.ni(0, 0), m.router(0, 0));
  for (tdm::Slot s = 0; s < 4; ++s) alloc.reserve_raw(src_link, s, 700);
  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(1, 1)};
  spec.slots_required = 1;
  const double util = alloc.schedule().utilization();
  EXPECT_FALSE(allocate_joint(alloc, spec).has_value());
  EXPECT_DOUBLE_EQ(alloc.schedule().utilization(), util); // nothing committed
}

// Per-request dominance: on any (fragmented) schedule, if the fixed-path
// allocator can admit a request, so can the joint search — it considers
// every loopless path within the depth bound, not just k candidates.
class JointDominanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JointDominanceProperty, JointAdmitsWheneverFixedDoes) {
  const auto m = topo::make_mesh(4, 4);
  const tdm::TdmParams params = tdm::daelite_params(16);
  sim::Xoshiro256 rng(GetParam());

  auto fragment = [&](SlotAllocator& a) {
    sim::Xoshiro256 frng(GetParam() * 7 + 1);
    for (topo::LinkId l = 0; l < m.topo.link_count(); ++l)
      for (tdm::Slot s = 0; s < 16; ++s)
        if (frng.chance(0.5)) a.reserve_raw(l, s, 888);
  };

  const auto nis = m.all_nis();
  for (int i = 0; i < 40; ++i) {
    ChannelSpec spec;
    spec.src_ni = nis[rng.below(nis.size())];
    do {
      spec.dst_nis = {nis[rng.below(nis.size())]};
    } while (spec.dst_nis[0] == spec.src_ni);
    spec.slots_required = static_cast<std::uint32_t>(rng.range(1, 3));

    alloc::AllocatorOptions opt;
    opt.path_candidates = 8;
    SlotAllocator fixed(m.topo, params, opt);
    fragment(fixed);
    const bool fixed_ok = fixed.allocate(spec).has_value();

    SlotAllocator joint(m.topo, params);
    fragment(joint);
    const bool joint_ok = allocate_joint(joint, spec, /*max_depth=*/16).has_value();

    if (fixed_ok) {
      EXPECT_TRUE(joint_ok) << "demand " << i << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JointDominanceProperty,
                         ::testing::Values(5ull, 31ull, 101ull, 555ull));

TEST(JointAlloc, NeverWorseThanFixedPathUnderRandomChurn) {
  const auto m = topo::make_mesh(4, 4);
  const tdm::TdmParams params = tdm::daelite_params(16);
  sim::Xoshiro256 rng(321);
  const auto nis = m.all_nis();

  SlotAllocator fixed(m.topo, params);
  SlotAllocator joint(m.topo, params);
  std::size_t fixed_ok = 0, joint_ok = 0;
  std::vector<RouteTree> joint_live;

  for (int i = 0; i < 60; ++i) {
    ChannelSpec spec;
    spec.src_ni = nis[rng.below(nis.size())];
    do {
      spec.dst_nis = {nis[rng.below(nis.size())]};
    } while (spec.dst_nis[0] == spec.src_ni);
    spec.slots_required = static_cast<std::uint32_t>(rng.range(1, 4));
    if (fixed.allocate(spec)) ++fixed_ok;
    if (auto r = allocate_joint(joint, spec)) {
      ++joint_ok;
      joint_live.push_back(std::move(*r));
    }
  }
  EXPECT_GE(joint_ok, fixed_ok);
  EXPECT_EQ(validate_allocation(m.topo, params, joint.schedule(), joint_live), "");
}

} // namespace
