// Structured tracer, Chrome trace_event export, and the end-to-end
// observability wiring: scenario runs must produce one set-up span per
// connection, per-connection latency histograms and measured per-link
// occupancy, all bounded by the tracer's ring capacity.

#include <gtest/gtest.h>

#include <sstream>

#include "sim/json.hpp"
#include "sim/trace.hpp"
#include "sim/trace_sink.hpp"
#include "soc/runner.hpp"

using namespace daelite;
using namespace daelite::sim;

TEST(Tracer, RingIsBoundedAndKeepsNewest) {
  Tracer t(true, 4);
  const auto c = t.intern("c");
  for (Cycle i = 0; i < 10; ++i) t.record(i, c, TraceEvent::kFlitInject, i);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.capacity(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  // Oldest-first iteration over the surviving (newest) records.
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].cycle, i + 6);
    EXPECT_EQ(snap[i].arg0, i + 6);
  }
}

TEST(Tracer, ClearEmptiesTheRing) {
  Tracer t(true, 2);
  const auto c = t.intern("c");
  for (Cycle i = 0; i < 5; ++i) t.record(i, c, TraceEvent::kFlitInject);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  t.record(9, c, TraceEvent::kFlitDeliver);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].cycle, 9u);
}

TEST(Tracer, SpanTagCountsBothEnds) {
  Tracer t;
  t.record(1, 0, TraceEvent::kSetupBegin, 0);
  t.record(5, 0, TraceEvent::kSetupEnd, 0);
  t.record(6, 0, TraceEvent::kTeardownBegin, 0);
  EXPECT_EQ(t.count(TraceEvent::kSetupBegin), 1u);
  EXPECT_EQ(t.count(TraceEvent::kSetupEnd), 1u);
  EXPECT_EQ(t.count("setup"), 2u); // tag is shared by Begin/End
  EXPECT_EQ(t.count("teardown"), 1u);
  std::ostringstream os;
  t.dump(os);
  EXPECT_NE(os.str().find("setup"), std::string::npos);
}

TEST(ChromeTrace, DocumentParsesAndMapsPhases) {
  Tracer t;
  const auto ni = t.intern("ni00");
  t.record(5, ni, TraceEvent::kFlitInject, 1, 2);
  t.record(7, ni, TraceEvent::kSetupBegin, 3);
  t.record(9, ni, TraceEvent::kSetupEnd, 3);

  const JsonValue doc = chrome_trace_json(t);
  std::string err;
  const auto parsed = JsonValue::parse(doc.dump(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;

  const JsonValue* ev = parsed->find("traceEvents");
  ASSERT_NE(ev, nullptr);
  ASSERT_TRUE(ev->is_array());
  // process_name + one thread_name + three records.
  ASSERT_EQ(ev->size(), 5u);
  EXPECT_EQ(ev->at(0).find("ph")->as_string(), "M");
  EXPECT_EQ(ev->at(1).find("args")->find("name")->as_string(), "ni00");

  const JsonValue& inject = ev->at(2);
  EXPECT_EQ(inject.find("name")->as_string(), "inject");
  EXPECT_EQ(inject.find("ph")->as_string(), "i");
  EXPECT_EQ(inject.find("ts")->as_number(), 5.0);
  EXPECT_EQ(inject.find("args")->find("arg1")->as_number(), 2.0);

  const JsonValue& begin = ev->at(3);
  EXPECT_EQ(begin.find("name")->as_string(), "setup #3");
  EXPECT_EQ(begin.find("ph")->as_string(), "B");
  const JsonValue& end = ev->at(4);
  EXPECT_EQ(end.find("name")->as_string(), "setup #3");
  EXPECT_EQ(end.find("ph")->as_string(), "E");
  EXPECT_EQ(end.find("ts")->as_number(), 9.0);
}

TEST(ChromeTrace, ReportsDroppedEvents) {
  Tracer t(true, 2);
  for (Cycle i = 0; i < 5; ++i) t.record(i, 0, TraceEvent::kFlitInject);
  const JsonValue doc = chrome_trace_json(t);
  const JsonValue* dropped = doc.find("droppedEvents");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->as_number(), 3.0);
}

namespace {

soc::Scenario small_scenario() {
  soc::Scenario sc;
  sc.kind = soc::Scenario::TopologyKind::kMesh;
  sc.width = 2;
  sc.height = 2;
  sc.host = {0, 0};
  sc.slots = 16;
  sc.run_cycles = 2000;
  soc::Scenario::RawConnection a;
  a.name = "stream";
  a.src = {0, 0};
  a.dsts = {{1, 1}};
  a.bandwidth = 100.0;
  sc.raw.push_back(a);
  soc::Scenario::RawConnection b;
  b.name = "bcast";
  b.src = {1, 0};
  b.dsts = {{0, 1}, {1, 1}};
  b.bandwidth = 50.0;
  sc.raw.push_back(b);
  return sc;
}

} // namespace

TEST(RunScenarioTrace, OneSetupSpanPerConnection) {
  Tracer tracer;
  soc::RunSpec spec;
  spec.label = "trace-test";
  spec.scenario = small_scenario();
  spec.tracer = &tracer;
  const analysis::NetworkReport report = soc::run_scenario(spec);
  ASSERT_EQ(report.error, "");
  ASSERT_EQ(report.connections.size(), 2u);

  // The config module emitted one cycle-accurate set-up span per connection
  // (the acceptance criterion for the paper's Table-3 set-up timing).
  EXPECT_EQ(tracer.count(TraceEvent::kSetupBegin), report.connections.size());
  EXPECT_EQ(tracer.count(TraceEvent::kSetupEnd), report.connections.size());
  // Runner phases: configure + traffic.
  EXPECT_EQ(tracer.count(TraceEvent::kPhaseBegin), 2u);
  EXPECT_EQ(tracer.count(TraceEvent::kPhaseEnd), 2u);
  // Hardware events flowed into the same ring.
  EXPECT_GT(tracer.count(TraceEvent::kTableWrite), 0u);
  EXPECT_GT(tracer.count(TraceEvent::kFlitInject), 0u);
  EXPECT_GT(tracer.count(TraceEvent::kFlitDeliver), 0u);

  // The export is parseable and non-trivial.
  std::ostringstream os;
  write_chrome_trace(os, tracer);
  std::string err;
  const auto doc = JsonValue::parse(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const JsonValue* ev = doc->find("traceEvents");
  ASSERT_NE(ev, nullptr);
  EXPECT_GT(ev->size(), 10u);
}

TEST(RunScenarioTrace, ExportIsDeterministic) {
  std::string dumps[2];
  for (auto& dump : dumps) {
    Tracer tracer;
    soc::RunSpec spec;
    spec.scenario = small_scenario();
    spec.tracer = &tracer;
    const auto report = soc::run_scenario(spec);
    ASSERT_EQ(report.error, "");
    dump = chrome_trace_json(tracer).dump();
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(RunScenarioTrace, ReportCarriesLatencyAndLinkOccupancy) {
  soc::RunSpec spec;
  spec.scenario = small_scenario();
  const analysis::NetworkReport report = soc::run_scenario(spec);
  ASSERT_EQ(report.error, "");
  ASSERT_EQ(report.connections.size(), 2u);

  for (const auto& c : report.connections) {
    EXPECT_GT(c.latency.count(), 0u) << c.name;
    EXPECT_GE(c.latency.quantile(0.99), c.latency.quantile(0.50)) << c.name;
    EXPECT_EQ(c.latency.quantile(0.0), static_cast<std::uint64_t>(c.latency.min())) << c.name;
  }
  ASSERT_FALSE(report.links.empty());
  bool any_busy = false;
  for (const auto& l : report.links) {
    EXPECT_GT(l.slots_elapsed, 0u);
    EXPECT_LE(l.measured_utilization(), 1.0);
    any_busy = any_busy || l.busy_slots > 0;
  }
  EXPECT_TRUE(any_busy);

  // The JSON report exposes both new sections.
  const JsonValue v = report.to_json();
  const JsonValue* conns = v.find("connections");
  ASSERT_NE(conns, nullptr);
  ASSERT_GT(conns->size(), 0u);
  const JsonValue* lat = conns->at(0).find("latency_cycles");
  ASSERT_NE(lat, nullptr);
  EXPECT_NE(lat->find("p50"), nullptr);
  EXPECT_NE(lat->find("p99"), nullptr);
  const JsonValue* links = v.find("links");
  ASSERT_NE(links, nullptr);
  ASSERT_GT(links->size(), 0u);
  EXPECT_NE(links->at(0).find("busy_slots"), nullptr);
  EXPECT_NE(links->at(0).find("measured_utilization"), nullptr);
}

TEST(RunScenarioTrace, DisabledTracerRecordsNothing) {
  Tracer tracer(false);
  soc::RunSpec spec;
  spec.scenario = small_scenario();
  spec.tracer = &tracer;
  const auto report = soc::run_scenario(spec);
  ASSERT_EQ(report.error, "");
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}
