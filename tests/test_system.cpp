// Whole-system integration: a 5x5 platform with a dozen concurrent
// applications (CBR writers, bursty writers, readers, a multicast
// broadcaster), a long mixed run, and global invariant checks — the
// closest thing to the paper's FPGA demonstrator running a full use-case.

#include <gtest/gtest.h>

#include "analysis/network_report.hpp"
#include "soc/platform.hpp"
#include "soc/traffic.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::soc;

TEST(System, MixedWorkloadLongRun) {
  const topo::Mesh mesh = topo::make_mesh(5, 5);
  sim::Kernel kernel;
  Platform::Options opt;
  opt.net.tdm = tdm::daelite_params(16);
  opt.net.cfg_root = mesh.ni(2, 2);
  Platform plat(kernel, mesh.topo, opt);

  // Memories in the right column + bottom row.
  const std::vector<topo::NodeId> mems = {mesh.ni(4, 0), mesh.ni(4, 2), mesh.ni(4, 4),
                                          mesh.ni(2, 4)};
  for (auto m : mems) plat.add_memory(m);

  // Point-to-point connections from the left column.
  auto p0 = plat.connect(mesh.ni(0, 0), mems[0], 3, 1, 0x0000, 0x10000);
  ASSERT_TRUE(p0.has_value());
  auto p1 = plat.connect(mesh.ni(0, 2), mems[1], 2, 1, 0x0000, 0x10000);
  ASSERT_TRUE(p1.has_value());
  auto p2 = plat.connect(mesh.ni(0, 4), mems[2], 2, 2, 0x0000, 0x10000);
  ASSERT_TRUE(p2.has_value());
  auto p3 = plat.connect(mesh.ni(1, 0), mems[3], 1, 1, 0x0000, 0x10000);
  ASSERT_TRUE(p3.has_value());

  // Multicast broadcaster in the middle.
  auto mc = plat.connect_multicast(mesh.ni(2, 0), {mems[1], mems[3]}, 2, 0x0000, 0x10000);
  ASSERT_TRUE(mc.has_value());

  const sim::Cycle cfg = plat.configure();
  EXPECT_GT(cfg, 0u);

  // IPs.
  CbrWriter::Params cbr;
  cbr.period = 32;
  cbr.burst = 4;
  cbr.addr_range = 0x800;
  CbrWriter w0(kernel, "w0", plat.bus(mesh.ni(0, 0)), cbr);
  cbr.period = 48;
  CbrWriter w1(kernel, "w1", plat.bus(mesh.ni(0, 2)), cbr);

  BurstyWriter::Params bw;
  bw.seed = 11;
  bw.burst = 3;
  BurstyWriter w3(kernel, "w3", plat.bus(mesh.ni(1, 0)), bw);

  ReaderIp::Params rd;
  rd.period = 128;
  rd.burst = 4;
  rd.addr_range = 0x400;
  ReaderIp r2(kernel, "r2", *p2->port, rd);

  CbrWriter::Params mcp;
  mcp.period = 64;
  mcp.burst = 2;
  mcp.base_addr = 0x8000;
  mcp.addr_range = 0x400;
  CbrWriter wmc(kernel, "wmc", plat.bus(mesh.ni(2, 0)), mcp);

  // Long run.
  kernel.run(40000);
  while (p0->port->take_response()) {
  }
  while (p1->port->take_response()) {
  }
  while (p3->port->take_response()) {
  }

  // Global invariants: no drops, no overflow, no config errors anywhere.
  EXPECT_EQ(plat.total_network_drops(), 0u);
  EXPECT_EQ(plat.network().total_rx_overflow(), 0u);
  EXPECT_EQ(plat.network().total_cfg_errors(), 0u);

  // Every application made progress.
  EXPECT_GT(plat.memory(mems[0]).writes(), 1000u); // w0: 4 words / 32 cyc
  EXPECT_GT(plat.memory(mems[1]).writes(), 1000u); // w1 + multicast copy
  EXPECT_GT(r2.returned(), 200u);
  EXPECT_GT(w3.submitted(), 100u);
  // The multicast stream landed identically in both replicas.
  EXPECT_GT(plat.memory(mems[3]).writes(), 500u);
  for (std::uint32_t a = 0x8000; a < 0x8010; ++a)
    EXPECT_EQ(plat.memory(mems[1]).read(a), plat.memory(mems[3]).read(a));

  // Schedule-level reporting stays consistent.
  const auto sum = analysis::summarize_schedule(mesh.topo, plat.allocator().schedule());
  EXPECT_GT(sum.used_links, 10u);
  EXPECT_LE(sum.max_utilization, 1.0);
  EXPECT_EQ(sum.saturated_links, 0u);
}

TEST(System, SaturatedUseCaseStillContentionFree) {
  // Load the network close to admission limits and verify the GS property
  // survives: every admitted connection gets its words through with zero
  // loss, even with every source saturating.
  const topo::Mesh mesh = topo::make_mesh(4, 4);
  sim::Kernel kernel;
  hw::DaeliteNetwork::Options opt;
  opt.tdm = tdm::daelite_params(8);
  opt.cfg_root = mesh.ni(0, 0);
  hw::DaeliteNetwork net(kernel, mesh.topo, opt);
  alloc::SlotAllocator alloc(mesh.topo, opt.tdm);

  // Ring of connections: NI i -> NI i+3 with 3 slots each.
  const auto nis = mesh.all_nis();
  std::vector<hw::ConnectionHandle> handles;
  for (std::size_t i = 0; i < nis.size(); ++i) {
    alloc::UseCase uc;
    uc.connections.push_back(
        {"c", nis[i], {nis[(i + 3) % nis.size()]}, 3, 1});
    auto a = alloc::allocate_use_case(alloc, uc);
    if (!a) continue;
    handles.push_back(net.open_connection(a->connections[0]));
  }
  EXPECT_GT(handles.size(), 8u);
  net.run_config();

  std::vector<std::uint64_t> sent(handles.size(), 0), got(handles.size(), 0);
  for (int cycle = 0; cycle < 20000; ++cycle) {
    for (std::size_t c = 0; c < handles.size(); ++c) {
      hw::Ni& src = net.ni(handles[c].conn.request.src_ni);
      if (src.tx_push(handles[c].src_tx_q, 1)) ++sent[c];
      hw::Ni& dst = net.ni(handles[c].conn.request.dst_nis[0]);
      while (dst.rx_pop(handles[c].dst_rx_qs[0])) ++got[c];
    }
    kernel.step();
  }

  EXPECT_EQ(net.total_router_drops(), 0u);
  EXPECT_EQ(net.total_ni_drops(), 0u);
  EXPECT_EQ(net.total_rx_overflow(), 0u);
  for (std::size_t c = 0; c < handles.size(); ++c) {
    // Everything sent (minus what is still in flight / queued) arrived.
    EXPECT_GT(got[c], 0u) << "connection " << c;
    EXPECT_LE(sent[c] - got[c], 64u) << "connection " << c; // bounded in-flight
    // Sustained rate ~ 3 slots of 8 => 3/8 words per cycle at saturation.
    EXPECT_GT(static_cast<double>(got[c]) / 20000.0, 0.30) << "connection " << c;
  }
}

} // namespace
