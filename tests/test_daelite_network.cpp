// Integration tests: full daelite networks assembled from a topology,
// configured through the broadcast tree, carrying real traffic.
//
// These tests exercise the paper's claims end to end: set-up via
// configuration packets equals direct slot-table programming; traversal
// latency is exactly 2 cycles/hop; multicast delivers identical streams;
// tear-down stops traffic; reconfiguration does not disturb live
// connections; and randomly allocated connection sets are contention-free
// (zero drops) by construction.

#include <gtest/gtest.h>

#include <map>

#include "alloc/allocator.hpp"
#include "alloc/usecase.hpp"
#include "daelite/network.hpp"
#include "sim/random.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::hw;

struct TestNet {
  topo::Mesh mesh;
  sim::Kernel kernel;
  std::unique_ptr<DaeliteNetwork> net;
  std::unique_ptr<alloc::SlotAllocator> alloc;

  TestNet(int w, int h, std::uint32_t slots, std::size_t queue_cap = 32) {
    mesh = topo::make_mesh(w, h);
    DaeliteNetwork::Options opt;
    opt.tdm = tdm::daelite_params(slots);
    opt.ni_queue_capacity = queue_cap;
    opt.cfg_root = mesh.ni(0, 0);
    net = std::make_unique<DaeliteNetwork>(kernel, mesh.topo, opt);
    alloc = std::make_unique<alloc::SlotAllocator>(mesh.topo, opt.tdm);
  }

  alloc::AllocatedConnection connect(topo::NodeId src, std::vector<topo::NodeId> dsts,
                                     std::uint32_t req_slots, std::uint32_t resp_slots = 1) {
    alloc::UseCase uc;
    uc.connections.push_back({"c", src, std::move(dsts), req_slots, resp_slots});
    auto a = alloc::allocate_use_case(*alloc, uc);
    EXPECT_TRUE(a.has_value());
    return a->connections[0];
  }

  /// Push `n` words, run until all delivered (popping as we go), return
  /// the received words in order.
  std::vector<std::uint32_t> transfer(const ConnectionHandle& h, std::size_t n) {
    Ni& src = net->ni(h.conn.request.src_ni);
    Ni& dst = net->ni(h.conn.request.dst_nis[0]);
    std::vector<std::uint32_t> got;
    std::size_t pushed = 0;
    for (int guard = 0; guard < 200000 && got.size() < n; ++guard) {
      if (pushed < n && src.tx_push(h.src_tx_q, static_cast<std::uint32_t>(1000 + pushed)))
        ++pushed;
      kernel.step();
      while (auto w = dst.rx_pop(h.dst_rx_qs[0])) got.push_back(*w);
    }
    return got;
  }
};

TEST(Network, ConfigPacketsMatchDirectProgramming) {
  // Program the same route on two identical networks — one through the
  // configuration tree, one directly — and compare all affected tables.
  TestNet via_cfg(3, 3, 8);
  TestNet direct(3, 3, 8);

  alloc::ChannelSpec spec;
  spec.src_ni = via_cfg.mesh.ni(0, 0);
  spec.dst_nis = {via_cfg.mesh.ni(2, 1)};
  spec.slots_required = 2;
  const auto route = via_cfg.alloc->allocate(spec);
  ASSERT_TRUE(route.has_value());

  via_cfg.net->post_route_setup(*route, /*tx_queue=*/1, {/*rx=*/2});
  via_cfg.net->run_config();
  direct.net->program_route_direct(*route, 1, {2});

  for (topo::NodeId n = 0; n < via_cfg.mesh.topo.node_count(); ++n) {
    if (via_cfg.mesh.topo.is_router(n)) {
      const auto& ta = via_cfg.net->router(n).table();
      const auto& tb = direct.net->router(n).table();
      for (std::size_t o = 0; o < ta.num_outputs(); ++o)
        for (tdm::Slot s = 0; s < 8; ++s)
          EXPECT_EQ(ta.input_for(o, s), tb.input_for(o, s))
              << "router " << n << " out " << o << " slot " << s;
    } else {
      const auto& ta = via_cfg.net->ni(n).table();
      const auto& tb = direct.net->ni(n).table();
      for (tdm::Slot s = 0; s < 8; ++s) {
        EXPECT_EQ(ta.tx_channel(s), tb.tx_channel(s)) << "NI " << n << " tx slot " << s;
        EXPECT_EQ(ta.rx_channel(s), tb.rx_channel(s)) << "NI " << n << " rx slot " << s;
      }
    }
  }
  EXPECT_EQ(via_cfg.net->total_cfg_errors(), 0u);
}

TEST(Network, EndToEndDeliveryThroughHardwareSetup) {
  TestNet t(3, 3, 8);
  const auto conn = t.connect(t.mesh.ni(0, 0), {t.mesh.ni(2, 2)}, 2);
  const auto h = t.net->open_connection(conn);
  t.net->run_config();

  const auto got = t.transfer(h, 50);
  ASSERT_EQ(got.size(), 50u);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], 1000 + i);
  EXPECT_EQ(t.net->total_router_drops(), 0u);
  EXPECT_EQ(t.net->total_ni_drops(), 0u);
  EXPECT_EQ(t.net->total_rx_overflow(), 0u);
}

TEST(Network, FlitLatencyIsExactlyTwoCyclesPerHop) {
  TestNet t(4, 4, 16);
  const auto conn = t.connect(t.mesh.ni(0, 0), {t.mesh.ni(3, 3)}, 2);
  const auto h = t.net->open_connection(conn);
  t.net->run_config();

  (void)t.transfer(h, 40);
  const Ni& dst = t.net->ni(t.mesh.ni(3, 3));
  const std::size_t hops = conn.request.edges.size(); // 8 links for corner-to-corner
  ASSERT_GT(dst.stats().latency.count(), 0u);
  EXPECT_EQ(dst.stats().latency.min(), 2.0 * static_cast<double>(hops));
  EXPECT_EQ(dst.stats().latency.max(), 2.0 * static_cast<double>(hops));
}

TEST(Network, CreditsRecycleOverLongStreams) {
  // Stream far more words than the destination queue holds; the test pops
  // as it goes, so credits must flow back for the stream to finish.
  TestNet t(3, 3, 8, /*queue_cap=*/8);
  const auto conn = t.connect(t.mesh.ni(0, 1), {t.mesh.ni(2, 0)}, 2);
  const auto h = t.net->open_connection(conn);
  t.net->run_config();

  const auto got = t.transfer(h, 200);
  ASSERT_EQ(got.size(), 200u);
  EXPECT_EQ(t.net->total_rx_overflow(), 0u);
  const Ni& src = t.net->ni(t.mesh.ni(0, 1));
  EXPECT_GT(src.rx_stats(h.src_rx_q).credits_received, 0u);
}

TEST(Network, MulticastDeliversIdenticalStreamsToAllDestinations) {
  TestNet t(3, 3, 16);
  const auto conn =
      t.connect(t.mesh.ni(0, 0), {t.mesh.ni(2, 0), t.mesh.ni(0, 2), t.mesh.ni(2, 2)}, 2, 0);
  ASSERT_FALSE(conn.has_response);
  const auto h = t.net->open_connection(conn);
  t.net->run_config();

  Ni& src = t.net->ni(t.mesh.ni(0, 0));
  constexpr std::size_t kWords = 30;
  std::size_t pushed = 0;
  std::map<topo::NodeId, std::vector<std::uint32_t>> got;
  for (int guard = 0; guard < 20000; ++guard) {
    if (pushed < kWords && src.tx_push(h.src_tx_q, static_cast<std::uint32_t>(pushed))) ++pushed;
    t.kernel.step();
    bool all_done = pushed == kWords;
    for (std::size_t d = 0; d < conn.request.dst_nis.size(); ++d) {
      Ni& dst = t.net->ni(conn.request.dst_nis[d]);
      while (auto w = dst.rx_pop(h.dst_rx_qs[d])) got[conn.request.dst_nis[d]].push_back(*w);
      all_done = all_done && got[conn.request.dst_nis[d]].size() == kWords;
    }
    if (all_done) break;
  }
  for (const auto& [node, words] : got) {
    ASSERT_EQ(words.size(), kWords) << "destination " << node;
    for (std::size_t i = 0; i < kWords; ++i) EXPECT_EQ(words[i], i);
  }
  EXPECT_EQ(t.net->total_router_drops(), 0u);
  EXPECT_EQ(t.net->total_ni_drops(), 0u);
}

TEST(Network, TeardownStopsTrafficAndClearsTables) {
  TestNet t(3, 3, 8);
  const auto conn = t.connect(t.mesh.ni(1, 0), {t.mesh.ni(1, 2)}, 2);
  const auto h = t.net->open_connection(conn);
  t.net->run_config();
  ASSERT_EQ(t.transfer(h, 10).size(), 10u);

  t.net->close_connection(h);
  t.net->run_config();

  // Every router slot table must be empty again.
  for (topo::NodeId n = 0; n < t.mesh.topo.node_count(); ++n)
    if (t.mesh.topo.is_router(n)) {
      EXPECT_TRUE(t.net->router(n).table().empty()) << "router " << n;
    }

  // Pushing more data goes nowhere (tx disabled and table cleared).
  Ni& src = t.net->ni(t.mesh.ni(1, 0));
  const auto sent_before = src.tx_stats(h.src_tx_q).words_sent;
  src.tx_push(h.src_tx_q, 1);
  t.kernel.run(64);
  EXPECT_EQ(src.tx_stats(h.src_tx_q).words_sent, sent_before);
}

TEST(Network, ReconfigurationDoesNotDisturbLiveConnection) {
  // Paper §IV: "an application can use certain connections while others
  // are being set up and torn down."
  TestNet t(4, 4, 16);
  const auto live = t.connect(t.mesh.ni(0, 0), {t.mesh.ni(3, 3)}, 3);
  const auto hl = t.net->open_connection(live);
  t.net->run_config();

  Ni& src = t.net->ni(t.mesh.ni(0, 0));
  Ni& dst = t.net->ni(t.mesh.ni(3, 3));
  std::size_t pushed = 0, received = 0;
  std::uint32_t next_expected = 0;

  // Churn a second connection up and down while the live one streams.
  for (int round = 0; round < 3; ++round) {
    const auto other = t.connect(t.mesh.ni(1, 0), {t.mesh.ni(2, 3)}, 2);
    const auto ho = t.net->open_connection(other);
    // Stream while configuring (cannot use run_config, must interleave).
    for (int i = 0; i < 2000; ++i) {
      if (src.tx_push(hl.src_tx_q, static_cast<std::uint32_t>(pushed))) ++pushed;
      t.kernel.step();
      while (auto w = dst.rx_pop(hl.dst_rx_qs[0])) {
        ASSERT_EQ(*w, next_expected++);
        ++received;
      }
      if (t.net->config_idle()) break;
    }
    t.net->close_connection(ho);
    t.alloc->release(other.request);
    if (other.has_response) t.alloc->release(other.response);
    for (int i = 0; i < 2000 && !t.net->config_idle(); ++i) {
      if (src.tx_push(hl.src_tx_q, static_cast<std::uint32_t>(pushed))) ++pushed;
      t.kernel.step();
      while (auto w = dst.rx_pop(hl.dst_rx_qs[0])) {
        ASSERT_EQ(*w, next_expected++);
        ++received;
      }
    }
  }
  // Final drain: keep streaming with a quiet configuration network.
  for (int i = 0; i < 2000; ++i) {
    if (src.tx_push(hl.src_tx_q, static_cast<std::uint32_t>(pushed))) ++pushed;
    t.kernel.step();
    while (auto w = dst.rx_pop(hl.dst_rx_qs[0])) {
      ASSERT_EQ(*w, next_expected++);
      ++received;
    }
  }
  EXPECT_GT(received, 100u);
  EXPECT_EQ(t.net->total_router_drops(), 0u);
  EXPECT_EQ(t.net->total_ni_drops(), 0u);
  EXPECT_EQ(t.net->total_rx_overflow(), 0u);
  // The live connection's latency never varied: contention-free QoS.
  EXPECT_EQ(dst.stats().latency.min(), dst.stats().latency.max());
}

// --- Property: configuration packets == direct programming, for random
// use-cases including multicast --------------------------------------------------

class ConfigEquivalenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigEquivalenceProperty, HardwareTablesMatchDirectProgramming) {
  TestNet via_cfg(4, 4, 16);
  TestNet direct(4, 4, 16);
  sim::Xoshiro256 rng(GetParam());
  const auto nis = via_cfg.mesh.all_nis();

  for (int i = 0; i < 6; ++i) {
    alloc::ChannelSpec spec;
    spec.src_ni = nis[rng.below(nis.size())];
    do {
      spec.dst_nis = {nis[rng.below(nis.size())]};
    } while (spec.dst_nis[0] == spec.src_ni);
    if (rng.chance(0.4)) {
      const auto extra = nis[rng.below(nis.size())];
      if (extra != spec.src_ni && extra != spec.dst_nis[0]) spec.dst_nis.push_back(extra);
    }
    spec.slots_required = static_cast<std::uint32_t>(rng.range(1, 3));
    const auto route = via_cfg.alloc->allocate(spec);
    if (!route) continue;

    std::vector<std::uint8_t> rx_queues;
    for (std::size_t d = 0; d < route->dst_nis.size(); ++d)
      rx_queues.push_back(static_cast<std::uint8_t>(d + i % 3));
    const auto tx_queue = static_cast<std::uint8_t>(i % 4);

    via_cfg.net->post_route_setup(*route, tx_queue, rx_queues);
    via_cfg.net->run_config();
    direct.net->program_route_direct(*route, tx_queue, rx_queues);
  }

  for (topo::NodeId n = 0; n < via_cfg.mesh.topo.node_count(); ++n) {
    if (via_cfg.mesh.topo.is_router(n)) {
      const auto& ta = via_cfg.net->router(n).table();
      const auto& tb = direct.net->router(n).table();
      for (std::size_t o = 0; o < ta.num_outputs(); ++o)
        for (tdm::Slot s = 0; s < 16; ++s)
          ASSERT_EQ(ta.input_for(o, s), tb.input_for(o, s))
              << "router " << n << " out " << o << " slot " << s;
    } else {
      const auto& ta = via_cfg.net->ni(n).table();
      const auto& tb = direct.net->ni(n).table();
      for (tdm::Slot s = 0; s < 16; ++s) {
        ASSERT_EQ(ta.tx_channel(s), tb.tx_channel(s)) << "NI " << n << " tx slot " << s;
        ASSERT_EQ(ta.rx_channel(s), tb.rx_channel(s)) << "NI " << n << " rx slot " << s;
      }
    }
  }
  EXPECT_EQ(via_cfg.net->total_cfg_errors(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigEquivalenceProperty,
                         ::testing::Values(3ull, 17ull, 91ull, 2024ull));

// --- Property: random connection sets are contention-free ------------------------

class ContentionFreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContentionFreeProperty, RandomConnectionsZeroDropsExactLatency) {
  TestNet t(4, 4, 16);
  sim::Xoshiro256 rng(GetParam());
  const auto nis = t.mesh.all_nis();

  // Allocate a handful of random connections (skipping infeasible ones).
  std::vector<ConnectionHandle> handles;
  for (int i = 0; i < 8; ++i) {
    const topo::NodeId src = nis[rng.below(nis.size())];
    topo::NodeId dst = nis[rng.below(nis.size())];
    if (dst == src) continue;
    alloc::UseCase uc;
    uc.connections.push_back({"r", src, {dst}, static_cast<std::uint32_t>(rng.range(1, 3)), 1});
    auto a = alloc::allocate_use_case(*t.alloc, uc);
    if (!a) continue;
    handles.push_back(t.net->open_connection(a->connections[0]));
  }
  ASSERT_GT(handles.size(), 2u);
  t.net->run_config();

  // Stream on all connections concurrently.
  std::vector<std::size_t> pushed(handles.size(), 0);
  std::vector<std::uint32_t> expected(handles.size(), 0);
  constexpr std::size_t kWords = 60;
  for (int guard = 0; guard < 40000; ++guard) {
    bool done = true;
    for (std::size_t c = 0; c < handles.size(); ++c) {
      Ni& src = t.net->ni(handles[c].conn.request.src_ni);
      if (pushed[c] < kWords &&
          src.tx_push(handles[c].src_tx_q, static_cast<std::uint32_t>(pushed[c])))
        ++pushed[c];
      Ni& dst = t.net->ni(handles[c].conn.request.dst_nis[0]);
      while (auto w = dst.rx_pop(handles[c].dst_rx_qs[0])) ASSERT_EQ(*w, expected[c]++);
      done = done && expected[c] == kWords;
    }
    if (done) break;
    t.kernel.step();
  }
  for (std::size_t c = 0; c < handles.size(); ++c)
    EXPECT_EQ(expected[c], kWords) << "connection " << c << " did not finish";

  EXPECT_EQ(t.net->total_router_drops(), 0u);
  EXPECT_EQ(t.net->total_ni_drops(), 0u);
  EXPECT_EQ(t.net->total_rx_overflow(), 0u);
  EXPECT_EQ(t.net->total_cfg_errors(), 0u);

  // Contention-free means zero jitter per channel. The NI latency
  // histogram aggregates every channel terminating at that NI (including
  // response channels), so the min==max check applies only to NIs that
  // receive exactly one data channel; for the others, check that each
  // connection's exact 2-cycles-per-hop latency appears in the histogram.
  std::map<topo::NodeId, int> rx_channels;
  for (const auto& h : handles) {
    ++rx_channels[h.conn.request.dst_nis[0]];
    if (h.conn.has_response) ++rx_channels[h.conn.request.src_ni];
  }
  for (const auto& h : handles) {
    const topo::NodeId dst_node = h.conn.request.dst_nis[0];
    const Ni& dst = t.net->ni(dst_node);
    const auto exact = 2 * h.conn.request.edges.size();
    EXPECT_GT(dst.stats().latency.bucket(exact), 0u)
        << "expected flits with latency " << exact << " at " << dst_node;
    if (rx_channels[dst_node] == 1 && dst.stats().latency.count() > 0) {
      EXPECT_EQ(dst.stats().latency.min(), dst.stats().latency.max());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContentionFreeProperty,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull));

} // namespace
