// Tests for the DNN workload front end: schedule compilation (multicast
// weight broadcast, per-layer DRAM-port rotation), the scenario grammar,
// hand-checked energy totals, and byte-identical workload reports across
// every execution mode.

#include <gtest/gtest.h>

#include <sstream>

#include "alloc/switching.hpp"
#include "alloc/usecase.hpp"
#include "sim/json.hpp"
#include "soc/runner.hpp"
#include "soc/scenario.hpp"
#include "topology/generators.hpp"
#include "workload/dnn.hpp"

namespace {

using namespace daelite;

const workload::CompiledConnection* find_conn(const workload::CompiledLayer& layer,
                                              const std::string& name) {
  for (const workload::CompiledConnection& c : layer.traffic)
    if (c.spec.name == name) return &c;
  return nullptr;
}

TEST(DnnCompile, WeightBroadcastAndPortRotation) {
  topo::Mesh mesh = topo::make_mesh(4, 4);
  workload::DnnSchedule s;
  s.grid_x = 1;
  s.grid_y = 0;
  s.grid_w = 2;
  s.grid_h = 2;
  s.layers = {{"l0", 101, 10, 5}, {"l1", 101, 10, 5}};
  auto wl = workload::compile(s, mesh, {{0, 0}, {0, 1}});
  ASSERT_TRUE(wl.has_value());
  EXPECT_EQ(wl->tiles.size(), 4u);
  EXPECT_EQ(wl->dram_nis.size(), 2u);
  ASSERT_EQ(wl->layers.size(), 2u);
  // 2 weight broadcasts + 4 ifmaps + 4 ofmaps per layer.
  EXPECT_EQ(wl->layers[0].traffic.size(), 10u);

  // Each port multicasts its ceil-share of the weights to EVERY tile,
  // posted (no response channel).
  const auto* w0 = find_conn(wl->layers[0], "w0");
  ASSERT_NE(w0, nullptr);
  EXPECT_EQ(w0->spec.dst_nis.size(), 4u);
  EXPECT_EQ(w0->words, 51u); // ceil(101 / 2)
  EXPECT_EQ(w0->spec.response_slots, 0u);

  // The weight broadcast is layer-invariant (a use-case switch keeps it);
  // tile 0's ifmap source ROTATES from port 0 to port 1, so the switch
  // really tears it down and sets it up.
  const auto* w0_l1 = find_conn(wl->layers[1], "w0");
  ASSERT_NE(w0_l1, nullptr);
  EXPECT_TRUE(alloc::specs_equal(w0->spec, w0_l1->spec));
  const auto* i0_l0 = find_conn(wl->layers[0], "i0");
  const auto* i0_l1 = find_conn(wl->layers[1], "i0");
  ASSERT_NE(i0_l0, nullptr);
  ASSERT_NE(i0_l1, nullptr);
  EXPECT_EQ(i0_l0->spec.src_ni, wl->dram_nis[0]);
  EXPECT_EQ(i0_l1->spec.src_ni, wl->dram_nis[1]);
  EXPECT_FALSE(alloc::specs_equal(i0_l0->spec, i0_l1->spec));
  // The ofmap direction rotates with it: tile -> interleaved port.
  const auto* o0_l1 = find_conn(wl->layers[1], "o0");
  ASSERT_NE(o0_l1, nullptr);
  EXPECT_EQ(o0_l1->spec.src_ni, wl->tiles[0]);
  EXPECT_EQ(o0_l1->spec.dst_nis[0], wl->dram_nis[1]);
}

TEST(DnnCompile, RejectsBadPlacement) {
  topo::Mesh mesh = topo::make_mesh(3, 3);
  workload::DnnSchedule s;
  s.grid_w = 2;
  s.grid_h = 2;
  s.layers = {{"l0", 8, 1, 1}};
  std::string why;
  // Grid leaving the mesh.
  s.grid_x = 2;
  EXPECT_FALSE(workload::compile(s, mesh, {{0, 2}}, &why).has_value());
  s.grid_x = 0;
  // DRAM port inside the tile grid.
  EXPECT_FALSE(workload::compile(s, mesh, {{1, 1}}, &why).has_value());
  // Duplicate DRAM port.
  EXPECT_FALSE(workload::compile(s, mesh, {{0, 2}, {0, 2}}, &why).has_value());
  // No ports at all.
  EXPECT_FALSE(workload::compile(s, mesh, {}, &why).has_value());
  // And the valid variant of the same schedule compiles.
  EXPECT_TRUE(workload::compile(s, mesh, {{0, 2}}, &why).has_value()) << why;
}

std::optional<soc::Scenario> parse(const std::string& text, std::string* error = nullptr) {
  std::istringstream in(text);
  return soc::parse_scenario(in, error);
}

TEST(DnnGrammar, ParsesAndValidates) {
  auto sc = parse("mesh 4 4\n"
                  "host 0,0\n"
                  "dram 0,1 0,2\n"
                  "energy hop 1.5 dram 10 config 2\n"
                  "dnn grid 1,0 3x3 weights 3 ifmap 2 ofmap 1\n"
                  "layer conv weights 100 ifmap 20 ofmap 10\n"
                  "run 5000\n");
  ASSERT_TRUE(sc.has_value());
  ASSERT_TRUE(sc->dnn.has_value());
  EXPECT_EQ(sc->dram.size(), 2u);
  EXPECT_TRUE(sc->energy.enabled);
  EXPECT_DOUBLE_EQ(sc->energy.hop_energy_pj, 1.5);
  EXPECT_EQ(sc->dnn->grid_w, 3);
  EXPECT_EQ(sc->dnn->weight_slots, 3u);
  ASSERT_EQ(sc->dnn->layers.size(), 1u);
  EXPECT_EQ(sc->dnn->layers[0].weight_words, 100u);

  std::string err;
  // layer before dnn.
  EXPECT_FALSE(parse("mesh 2 2\nlayer l weights 1 ifmap 0 ofmap 0\n", &err).has_value());
  // dnn mixed with explicit connections.
  EXPECT_FALSE(parse("mesh 4 4\ndram 0,0\nconnection c 0,1 1,1 100\n"
                     "dnn grid 1,0 2x2\nlayer l weights 1 ifmap 0 ofmap 0\nrun 100\n",
                     &err)
                   .has_value());
  // dnn without a dram port.
  EXPECT_FALSE(
      parse("mesh 4 4\ndnn grid 1,0 2x2\nlayer l weights 1 ifmap 0 ofmap 0\n", &err).has_value());
  // dnn without layers.
  EXPECT_FALSE(parse("mesh 4 4\ndram 0,0\ndnn grid 1,0 2x2\n", &err).has_value());
  // Strict numerics: trailing junk is a diagnostic.
  EXPECT_FALSE(parse("mesh 4 4\ndram 0,0\ndnn grid 1,0 2x2 weights 2x\n"
                     "layer l weights 1 ifmap 0 ofmap 0\n",
                     &err)
                   .has_value());
  EXPECT_FALSE(parse("mesh 2 2\nstream s 0,0 1,1 100 period 1e3 burst 4\nrun 100\n", &err)
                   .has_value());
}

TEST(DnnEnergy, HandCheckedOneLayerTotals) {
  auto sc = parse("mesh 2 2\n"
                  "slots 8\n"
                  "clock 500\n"
                  "host 0,0\n"
                  "dram 0,0\n"
                  "energy hop 2.0 dram 3.0 config 0.5\n"
                  "dnn grid 1,0 1x2 weights 2 ifmap 1 ofmap 1\n"
                  "layer l0 weights 40 ifmap 24 ofmap 16\n"
                  "run 20000\n");
  ASSERT_TRUE(sc.has_value());

  // The run's routes are exactly what the allocator hands out for the same
  // use case in the same order (seed 0 keeps compile order), so the
  // expected flit-hop total is sum(flits x route edges) per connection,
  // where a daelite flit packs words_per_slot payload words.
  topo::Mesh mesh = topo::make_mesh(2, 2);
  auto wl = workload::compile(*sc->dnn, mesh, sc->dram);
  ASSERT_TRUE(wl.has_value());
  const tdm::TdmParams params = tdm::daelite_params(8);
  alloc::SlotAllocator ref(mesh.topo, params);
  auto alloc = alloc::allocate_use_case(ref, wl->layers[0].use_case());
  ASSERT_TRUE(alloc.has_value());
  std::uint64_t expected_hops = 0;
  for (std::size_t i = 0; i < alloc->connections.size(); ++i) {
    const std::uint64_t flits =
        (wl->layers[0].traffic[i].words + params.words_per_slot - 1) / params.words_per_slot;
    expected_hops += flits * alloc->connections[i].request.edges.size();
  }

  soc::RunSpec spec;
  spec.scenario = *sc;
  analysis::NetworkReport report = soc::run_scenario(spec);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_TRUE(report.workload.enabled);
  ASSERT_EQ(report.workload.layers.size(), 1u);
  EXPECT_TRUE(report.workload.layers[0].completed);

  ASSERT_TRUE(report.energy.enabled);
  EXPECT_EQ(report.energy.link_flit_hops, expected_hops);
  // DRAM words through NI(0,0): weights 40 + ifmaps 2x24 sent, ofmaps
  // 2x16 received.
  EXPECT_EQ(report.energy.dram_words, 40u + 48u + 32u);
  EXPECT_GT(report.energy.config_words, 0u);
  EXPECT_DOUBLE_EQ(report.energy.hop_pj(), static_cast<double>(expected_hops) * 2.0);
  EXPECT_DOUBLE_EQ(report.energy.dram_pj(), 120.0 * 3.0);
  EXPECT_DOUBLE_EQ(report.energy.total_pj(),
                   report.energy.hop_pj() + report.energy.dram_pj() + report.energy.config_pj());
}

TEST(DnnRun, ByteIdenticalReportsAcrossExecutionModes) {
  auto sc = parse("mesh 3 3\n"
                  "clock 500\n"
                  "host 0,0\n"
                  "dram 0,1 0,2\n"
                  "energy\n"
                  "dnn grid 1,0 2x2 weights 2 ifmap 1 ofmap 1\n"
                  "layer conv1 weights 96 ifmap 32 ofmap 16\n"
                  "layer conv2 weights 128 ifmap 16 ofmap 16\n"
                  "run 20000\n");
  ASSERT_TRUE(sc.has_value());

  soc::RunSpec base;
  base.scenario = *sc;
  base.seed = 5; // exercise the per-layer traffic shuffle too

  const std::string reference = soc::run_scenario(base).to_json().dump(2);
  ASSERT_NE(reference.find("\"workload\""), std::string::npos);
  ASSERT_NE(reference.find("\"completed\": true"), std::string::npos);

  soc::RunSpec sharded = base;
  sharded.shards = 4;
  EXPECT_EQ(soc::run_scenario(sharded).to_json().dump(2), reference);

  soc::RunSpec soa = base;
  soa.shards = 2;
  soa.soa = true;
  EXPECT_EQ(soc::run_scenario(soa).to_json().dump(2), reference);

  soc::RunSpec oracle = base;
  oracle.scheduler = sim::Scheduler::kReference;
  EXPECT_EQ(soc::run_scenario(oracle).to_json().dump(2), reference);
}

TEST(DnnRun, SwitchKeepsWeightBroadcastsAndChurnsFeatureMaps) {
  auto sc = parse("mesh 3 3\n"
                  "host 0,0\n"
                  "dram 0,1 0,2\n"
                  "dnn grid 1,0 2x2\n"
                  "layer l0 weights 64 ifmap 16 ofmap 8\n"
                  "layer l1 weights 64 ifmap 16 ofmap 8\n"
                  "run 20000\n");
  ASSERT_TRUE(sc.has_value());
  soc::RunSpec spec;
  spec.scenario = *sc;
  analysis::NetworkReport report = soc::run_scenario(spec);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_EQ(report.workload.layers.size(), 2u);
  const analysis::WorkloadLayerOutcome& l1 = report.workload.layers[1];
  // The 2 weight broadcasts ride through the switch; all 8 rotating
  // ifmap/ofmap connections are torn down and re-set-up.
  EXPECT_EQ(l1.kept, 2u);
  EXPECT_EQ(l1.torn_down, 8u);
  EXPECT_EQ(l1.set_up, 8u);
  EXPECT_GT(l1.switch_cycles, 0u);
  EXPECT_TRUE(l1.completed);
}

} // namespace
