// Tests for QoS-aware graceful degradation: min-victims preemption
// planning (unit + mode-equivalence), per-class admission quotas,
// class-aware overload shedding, background slot compaction (never
// touching guaranteed connections, converging, digest-stable), and the
// quarantine-flip digest regression for the incremental path cache.
//
// Path-cache audit note (satellite of the degradation issue): the issue
// text suspected clear_quarantine() kept stale k-shortest entries cached
// under the quarantined topology. The implementation already invalidates
// on BOTH transitions — quarantine_link() and clear_quarantine() each
// clear path_cache_ — and QuarantineFlip.DigestMatchesAcrossModes pins
// that: a stale cache after a clear would reroute differently from the
// from-scratch allocator and split the decision digest.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "alloc/churn.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::alloc;

ChannelSpec unicast(topo::NodeId src, topo::NodeId dst, std::uint32_t slots) {
  ChannelSpec s;
  s.src_ni = src;
  s.dst_nis = {dst};
  s.slots_required = slots;
  return s;
}

ConnectionSpec conn(const std::string& name, topo::NodeId src, topo::NodeId dst,
                    std::uint32_t req_slots, ServiceClass cls,
                    std::uint32_t resp_slots = 0) {
  return ConnectionSpec{name, src, {dst}, req_slots, resp_slots, cls};
}

// --- plan_preemption ---------------------------------------------------------

// Saturate the destination NI's ingress link (every path to the dst
// crosses it) with single-slot channels, so a fresh request has no free
// route. The plan must name the minimal victim set — one channel frees
// one slot — and releasing it must make allocate() succeed.
TEST(PlanPreemption, MinVictimsOverSaturatedIngress) {
  const auto m = topo::make_mesh(2, 2);
  SlotAllocator alloc(m.topo, tdm::daelite_params(4));

  const topo::NodeId dst = m.ni(1, 1);
  const topo::NodeId srcs[] = {m.ni(0, 0), m.ni(1, 0), m.ni(0, 1), m.ni(0, 0)};
  std::vector<RouteTree> blockers;
  for (const topo::NodeId s : srcs) {
    auto r = alloc.allocate(unicast(s, dst, 1));
    ASSERT_TRUE(r.has_value());
    blockers.push_back(*r);
  }

  const ChannelSpec want = unicast(m.ni(0, 0), dst, 1);
  ASSERT_FALSE(alloc.allocate(want).has_value());

  const auto plan = alloc.plan_preemption(want, [](tdm::ChannelId) { return true; });
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->victims.size(), 1u); // one slot wanted, one victim frees it
  ASSERT_TRUE(std::is_sorted(plan->victims.begin(), plan->victims.end()));

  for (const RouteTree& b : blockers)
    if (std::find(plan->victims.begin(), plan->victims.end(), b.channel) != plan->victims.end())
      alloc.release(b);
  EXPECT_TRUE(alloc.allocate(want).has_value());
}

// With no channel preemptable, a fully booked ingress cannot be freed.
TEST(PlanPreemption, NothingPreemptableMeansNoPlan) {
  const auto m = topo::make_mesh(2, 2);
  SlotAllocator alloc(m.topo, tdm::daelite_params(4));
  const topo::NodeId dst = m.ni(1, 1);
  for (const topo::NodeId s : {m.ni(0, 0), m.ni(1, 0), m.ni(0, 1), m.ni(0, 0)})
    ASSERT_TRUE(alloc.allocate(unicast(s, dst, 1)).has_value());

  const ChannelSpec want = unicast(m.ni(0, 0), dst, 1);
  EXPECT_FALSE(alloc.plan_preemption(want, [](tdm::ChannelId) { return false; }).has_value());
}

// Preemption planning is defined for unicast requests only.
TEST(PlanPreemption, MulticastSpecGetsNoPlan) {
  const auto m = topo::make_mesh(2, 2);
  SlotAllocator alloc(m.topo, tdm::daelite_params(4));
  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(1, 0), m.ni(1, 1)};
  spec.slots_required = 1;
  EXPECT_FALSE(alloc.plan_preemption(spec, [](tdm::ChannelId) { return true; }).has_value());
}

// The plan is part of the decision stream, so it must be identical
// between the incremental and the from-scratch allocator.
TEST(PlanPreemption, IdenticalAcrossAllocatorModes) {
  const auto m = topo::make_mesh(2, 2);
  AllocatorOptions inc_opt;
  inc_opt.incremental = true;
  SlotAllocator ia(m.topo, tdm::daelite_params(4), inc_opt);
  SlotAllocator sa(m.topo, tdm::daelite_params(4));

  const topo::NodeId dst = m.ni(1, 1);
  for (const topo::NodeId s : {m.ni(0, 0), m.ni(1, 0), m.ni(0, 1), m.ni(0, 0)}) {
    ASSERT_TRUE(ia.allocate(unicast(s, dst, 1)).has_value());
    ASSERT_TRUE(sa.allocate(unicast(s, dst, 1)).has_value());
  }
  const ChannelSpec want = unicast(m.ni(0, 0), dst, 2);
  const auto pi = ia.plan_preemption(want, [](tdm::ChannelId) { return true; });
  const auto ps = sa.plan_preemption(want, [](tdm::ChannelId) { return true; });
  ASSERT_EQ(pi.has_value(), ps.has_value());
  if (pi) {
    EXPECT_EQ(pi->path_index, ps->path_index);
    EXPECT_EQ(pi->victims, ps->victims);
    EXPECT_EQ(pi->path.links, ps->path.links);
  }
}

// --- Service-level preemption ------------------------------------------------

// A guaranteed set-up that finds no route tears down best-effort victims
// and succeeds; the victims leave the live set and are reported.
TEST(ServicePreemption, GuaranteedEvictsBestEffort) {
  const auto m = topo::make_mesh(2, 2);
  SlotAllocator alloc(m.topo, tdm::daelite_params(4));
  AdmissionControl admission;
  admission.preempt_best_effort = true;
  ChurnService service(alloc, admission);

  const topo::NodeId dst = m.ni(1, 1);
  std::vector<std::uint64_t> be_ids;
  int i = 0;
  for (const topo::NodeId s : {m.ni(0, 0), m.ni(1, 0), m.ni(0, 1), m.ni(0, 0)}) {
    const auto r =
        service.set_up(conn("be" + std::to_string(i++), s, dst, 1, ServiceClass::kBestEffort));
    ASSERT_EQ(r.status, ChurnStatus::kAdmitted);
    be_ids.push_back(r.connection);
  }
  EXPECT_EQ(service.live_of_class(ServiceClass::kBestEffort), 4u);

  const auto gt = service.set_up(conn("gt", m.ni(0, 0), dst, 1, ServiceClass::kGuaranteed));
  ASSERT_EQ(gt.status, ChurnStatus::kAdmitted);
  EXPECT_FALSE(service.last_preempted().empty());
  EXPECT_GE(service.metrics().preemptions.value(), 1u);
  for (const std::uint64_t v : service.last_preempted()) {
    EXPECT_EQ(service.connection(v), nullptr) << "victim " << v << " still live";
    EXPECT_NE(std::find(be_ids.begin(), be_ids.end(), v), be_ids.end());
  }
  EXPECT_EQ(service.live_of_class(ServiceClass::kGuaranteed), 1u);
}

// Without the policy bit, the same pressure is a plain no-route reject.
TEST(ServicePreemption, DisabledPolicyRejects) {
  const auto m = topo::make_mesh(2, 2);
  SlotAllocator alloc(m.topo, tdm::daelite_params(4));
  ChurnService service(alloc); // preempt_best_effort defaults off

  const topo::NodeId dst = m.ni(1, 1);
  int i = 0;
  for (const topo::NodeId s : {m.ni(0, 0), m.ni(1, 0), m.ni(0, 1), m.ni(0, 0)})
    ASSERT_EQ(service
                  .set_up(conn("be" + std::to_string(i++), s, dst, 1,
                               ServiceClass::kBestEffort))
                  .status,
              ChurnStatus::kAdmitted);
  const auto gt = service.set_up(conn("gt", m.ni(0, 0), dst, 1, ServiceClass::kGuaranteed));
  EXPECT_EQ(gt.status, ChurnStatus::kRejectedNoRoute);
  EXPECT_EQ(service.metrics().preemptions.value(), 0u);
}

// --- Per-class quotas --------------------------------------------------------

TEST(ClassQuota, MaxLiveBoundsOneClassOnly) {
  const auto m = topo::make_mesh(3, 3);
  SlotAllocator alloc(m.topo, tdm::daelite_params(16));
  AdmissionControl admission;
  admission.quota[static_cast<std::size_t>(ServiceClass::kGuaranteed)].max_live = 2;
  ChurnService service(alloc, admission);

  const auto nis = m.all_nis();
  ASSERT_EQ(service.set_up(conn("g0", nis[0], nis[4], 1, ServiceClass::kGuaranteed)).status,
            ChurnStatus::kAdmitted);
  ASSERT_EQ(service.set_up(conn("g1", nis[1], nis[5], 1, ServiceClass::kGuaranteed)).status,
            ChurnStatus::kAdmitted);
  // Third guaranteed set-up trips the class quota...
  EXPECT_EQ(service.set_up(conn("g2", nis[2], nis[6], 1, ServiceClass::kGuaranteed)).status,
            ChurnStatus::kRejectedAdmission);
  // ...while other classes are untouched.
  EXPECT_EQ(service.set_up(conn("s0", nis[2], nis[6], 1, ServiceClass::kStandard)).status,
            ChurnStatus::kAdmitted);
  // Tearing one down frees the quota slot.
  const auto g0 = service.live_id_at(0);
  ASSERT_EQ(service.tear_down(g0), ChurnStatus::kAdmitted);
  EXPECT_EQ(service.set_up(conn("g3", nis[2], nis[7], 1, ServiceClass::kGuaranteed)).status,
            ChurnStatus::kAdmitted);
}

TEST(ClassQuota, UtilizationCeilingPerClass) {
  const auto m = topo::make_mesh(2, 2);
  SlotAllocator alloc(m.topo, tdm::daelite_params(8));
  AdmissionControl admission;
  // Best-effort may not push the schedule past ~zero occupancy; the first
  // set-up (empty schedule) passes, the next is refused.
  admission.quota[static_cast<std::size_t>(ServiceClass::kBestEffort)].max_utilization = 1e-9;
  ChurnService service(alloc, admission);

  ASSERT_EQ(service.set_up(conn("b0", m.ni(0, 0), m.ni(1, 1), 1, ServiceClass::kBestEffort))
                .status,
            ChurnStatus::kAdmitted);
  EXPECT_EQ(service.set_up(conn("b1", m.ni(1, 0), m.ni(0, 1), 1, ServiceClass::kBestEffort))
                .status,
            ChurnStatus::kRejectedAdmission);
  // Guaranteed traffic ignores the best-effort ceiling.
  EXPECT_EQ(service.set_up(conn("g0", m.ni(1, 0), m.ni(0, 1), 1, ServiceClass::kGuaranteed))
                .status,
            ChurnStatus::kAdmitted);
}

// --- Overload shedding -------------------------------------------------------

// Open-loop overload with a tiny retry queue: shedding exists and lands
// on best-effort at least as hard as on guaranteed (class-aware eviction
// drops the least important waiter first).
TEST(Overload, ShedsBestEffortBeforeGuaranteed) {
  const auto m = topo::make_mesh(3, 3);
  ChurnRunOptions run;
  run.requests = 4000;
  run.workload.seed = 9;
  run.workload.arrival_rate = 0.01;
  run.workload.mean_hold_cycles = 400000.0;
  run.workload.guaranteed_fraction = 0.2;
  run.workload.best_effort_fraction = 0.4;
  run.overload.enabled = true;
  run.overload.pending_capacity = 4;
  run.overload.max_attempts = 3;

  SlotAllocator alloc(m.topo, tdm::daelite_params(16));
  const ChurnReport r = run_churn(alloc, run);
  ASSERT_TRUE(r.qos_enabled);
  const auto& gt = r.per_class[static_cast<std::size_t>(ServiceClass::kGuaranteed)];
  const auto& be = r.per_class[static_cast<std::size_t>(ServiceClass::kBestEffort)];
  EXPECT_GT(r.shed_total, 0u);
  EXPECT_GT(r.retry_attempts, 0u);
  EXPECT_GT(be.shed, 0u);
  EXPECT_GE(be.shed, gt.shed);
  std::uint64_t sum = 0;
  for (const auto& c : r.per_class) sum += c.shed;
  EXPECT_EQ(sum, r.shed_total);
}

// Disabled overload control keeps the report QoS-free: no shed, no
// retries, and the legacy digest untouched (byte-identity contract).
TEST(Overload, DisabledKeepsLegacyDigest) {
  const auto m = topo::make_mesh(3, 3);
  ChurnRunOptions plain;
  plain.requests = 2000;
  plain.workload.seed = 3;

  SlotAllocator a1(m.topo, tdm::daelite_params(16));
  const ChurnReport base = run_churn(a1, plain);
  EXPECT_FALSE(base.qos_enabled);
  EXPECT_EQ(base.shed_total, 0u);
  EXPECT_EQ(base.retry_attempts, 0u);

  SlotAllocator a2(m.topo, tdm::daelite_params(16));
  const ChurnReport again = run_churn(a2, plain);
  EXPECT_EQ(base.decision_digest, again.decision_digest);
}

// --- Compaction --------------------------------------------------------------

// Tear-down gaps leave high injection slots in use; compaction re-packs
// non-guaranteed connections downward, converges, and never touches a
// guaranteed route.
TEST(Compaction, RepacksAndSparesGuaranteed) {
  const auto m = topo::make_mesh(3, 3);
  SlotAllocator alloc(m.topo, tdm::daelite_params(16));
  ChurnService service(alloc);

  const auto nis = m.all_nis();
  // Interleave set-ups so tear-downs punch holes into the slot wheel.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 12; ++i) {
    const auto r = service.set_up(conn("c" + std::to_string(i), nis[i % nis.size()],
                                       nis[(i + 4) % nis.size()], 2,
                                       i == 0 ? ServiceClass::kGuaranteed
                                              : ServiceClass::kBestEffort));
    ASSERT_EQ(r.status, ChurnStatus::kAdmitted) << i;
    ids.push_back(r.connection);
  }
  for (std::size_t i = 1; i < ids.size(); i += 2)
    ASSERT_EQ(service.tear_down(ids[i]), ChurnStatus::kAdmitted);

  const AllocatedConnection before_gt = *service.connection(ids[0]);

  std::size_t total_moved = 0;
  std::uint64_t first_digest = 0;
  bool converged = false;
  for (int pass = 0; pass < 10; ++pass) {
    const auto cr = service.compact(64);
    if (pass == 0) {
      EXPECT_GT(cr.moved, 0u) << "tear-down gaps left nothing to re-pack";
      first_digest = cr.digest;
    }
    total_moved += cr.moved;
    if (cr.moved == 0) {
      converged = true;
      break;
    }
  }
  EXPECT_TRUE(converged) << "compaction did not converge in 10 passes";
  EXPECT_GT(total_moved, 0u);
  EXPECT_NE(first_digest, 14695981039346656037ull); // moves happened -> digest mixed

  // The guaranteed connection is bit-identical.
  const AllocatedConnection* after_gt = service.connection(ids[0]);
  ASSERT_NE(after_gt, nullptr);
  EXPECT_EQ(after_gt->request.channel, before_gt.request.channel);
  EXPECT_EQ(after_gt->request.inject_slots, before_gt.request.inject_slots);
  EXPECT_EQ(after_gt->request.edges, before_gt.request.edges);

  // Re-packing must not leak or duplicate reservations: every live
  // connection still has a consistent route and the service can keep
  // allocating.
  EXPECT_EQ(service.metrics().rollback_failures.value(), 0u);
  EXPECT_EQ(service.live_connections(), 6u);
}

// Compaction decisions replay identically across allocator modes.
TEST(Compaction, DigestIdenticalAcrossModes) {
  const auto m = topo::make_mesh(3, 3);
  ChurnRunOptions run;
  run.requests = 3000;
  run.workload.seed = 11;
  run.workload.mean_hold_cycles = 150000.0;
  run.compaction.every = 250;
  run.compaction.max_moves = 64;

  AllocatorOptions inc_opt;
  inc_opt.incremental = true;
  SlotAllocator ia(m.topo, tdm::daelite_params(16), inc_opt);
  const ChurnReport inc = run_churn(ia, run);
  SlotAllocator sa(m.topo, tdm::daelite_params(16));
  const ChurnReport scr = run_churn(sa, run);

  ASSERT_TRUE(inc.qos_enabled);
  EXPECT_GT(inc.compaction_passes, 0u);
  EXPECT_EQ(inc.compaction_passes, scr.compaction_passes);
  EXPECT_EQ(inc.compaction_moves, scr.compaction_moves);
  EXPECT_EQ(inc.compaction_digest, scr.compaction_digest);
  EXPECT_EQ(inc.decision_digest, scr.decision_digest);
}

// --- Quarantine-flip digest regression ---------------------------------------

// Flip quarantine ON and OFF mid-stream through run_churn's event
// schedule and require digest equality between the incremental and the
// from-scratch allocator. The incremental mode memoizes k-shortest paths;
// a cache left stale after clear_quarantine() would keep routing around a
// link that is healthy again and split the digest here. (Audit: the
// implementation invalidates on both transitions; this pins it.)
TEST(QuarantineFlip, DigestMatchesAcrossModes) {
  const auto m = topo::make_mesh(3, 3);
  ChurnRunOptions run;
  run.requests = 3000;
  run.workload.seed = 21;
  run.workload.mean_hold_cycles = 200000.0;
  run.quarantine_events = {
      {400, 5, false},  // quarantine link 5
      {800, 17, false}, // and link 17 on top
      {1200, 0, true},  // clear everything — the transition under audit
      {1600, 9, false}, // quarantine again
      {2000, 0, true},  // and clear again
  };
  run.compaction.after_quarantine = false; // isolate the cache question

  AllocatorOptions inc_opt;
  inc_opt.incremental = true;
  SlotAllocator ia(m.topo, tdm::daelite_params(16), inc_opt);
  const ChurnReport inc = run_churn(ia, run);
  SlotAllocator sa(m.topo, tdm::daelite_params(16));
  const ChurnReport scr = run_churn(sa, run);

  ASSERT_TRUE(inc.qos_enabled);
  EXPECT_EQ(inc.decision_digest, scr.decision_digest);
  EXPECT_EQ(inc.metrics.admitted.value(), scr.metrics.admitted.value());
  EXPECT_EQ(inc.metrics.rejected_no_route.value(), scr.metrics.rejected_no_route.value());
  EXPECT_EQ(inc.final_utilization, scr.final_utilization);
  EXPECT_EQ(inc.channel_id_watermark, scr.channel_id_watermark);

  // After the final clear both allocators route as if never quarantined:
  // a fresh allocator replaying the same stream WITHOUT the events from
  // the last clear onward is not required to match (history differs), but
  // the two modes must agree on the quarantine set itself.
  EXPECT_TRUE(ia.quarantined_links().empty());
  EXPECT_TRUE(sa.quarantined_links().empty());
}

} // namespace
