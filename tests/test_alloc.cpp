// Unit and property tests for the allocation toolflow: route trees,
// configuration segments (including the paper's Fig. 6 example), the slot
// allocator, multipath allocation and use-case allocation.

#include <gtest/gtest.h>

#include <set>

#include "alloc/allocator.hpp"
#include "alloc/multipath.hpp"
#include "alloc/route.hpp"
#include "alloc/usecase.hpp"
#include "alloc/validate.hpp"
#include "sim/random.hpp"
#include "topology/generators.hpp"
#include "topology/path.hpp"

namespace {

using namespace daelite;
using namespace daelite::alloc;

topo::Path path_between(const topo::Topology& t, topo::NodeId a, topo::NodeId b) {
  return topo::PathFinder(t).shortest(a, b);
}

TEST(RouteTree, FromPathDepthsAreSequential) {
  const auto m = topo::make_mesh(3, 3);
  const auto p = path_between(m.topo, m.ni(0, 0), m.ni(2, 2));
  const RouteTree r = RouteTree::from_path(m.topo, p, {0, 3}, 5);
  EXPECT_EQ(r.channel, 5u);
  EXPECT_EQ(r.src_ni, m.ni(0, 0));
  ASSERT_EQ(r.edges.size(), p.hop_count());
  for (std::size_t i = 0; i < r.edges.size(); ++i) EXPECT_EQ(r.edges[i].depth, i);
  EXPECT_TRUE(validate_route_tree(m.topo, r).empty());
}

TEST(RouteTree, DepthAndRxSlot) {
  const auto m = topo::make_mesh(3, 3);
  const auto p = path_between(m.topo, m.ni(0, 0), m.ni(1, 0)); // 3 links
  const RouteTree r = RouteTree::from_path(m.topo, p, {2});
  const tdm::TdmParams params = tdm::daelite_params(8);
  EXPECT_EQ(*r.dst_link_count(m.topo, m.ni(1, 0)), 3u);
  // dst NI acts 3 stages after the source: slot 2 + 3 = 5.
  EXPECT_EQ(r.rx_slot(m.topo, params, m.ni(1, 0), 2), 5u);
  EXPECT_EQ(*r.depth_of(m.topo, m.ni(0, 0)), 0u);
}

TEST(RouteTree, ValidateRejectsBrokenTrees) {
  const auto m = topo::make_mesh(3, 3);
  const auto p = path_between(m.topo, m.ni(0, 0), m.ni(2, 2));
  RouteTree r = RouteTree::from_path(m.topo, p, {0});

  RouteTree bad = r;
  bad.edges[2].depth = 7; // inconsistent depth
  EXPECT_FALSE(validate_route_tree(m.topo, bad).empty());

  bad = r;
  bad.edges.push_back(bad.edges.front()); // duplicate link
  EXPECT_FALSE(validate_route_tree(m.topo, bad).empty());

  bad = r;
  bad.dst_nis.push_back(m.ni(1, 1)); // unreached destination
  EXPECT_FALSE(validate_route_tree(m.topo, bad).empty());

  bad = r;
  bad.edges.pop_back(); // destination no longer reached, dangling leaf
  EXPECT_FALSE(validate_route_tree(m.topo, bad).empty());
}

// --- Fig. 6: the paper's worked set-up example -------------------------------
//
// Path NI10 - R10 - R11 - NI11, slot table size 8, destination slots {4,7}.
// Expected per-element slots after rotation: NI11 {4,7}, R11 {3,6},
// R10 {2,5}, NI10 {1,4} — so the injection slots are {1,4}.
TEST(CfgSegments, PaperFigure6Example) {
  const auto m = topo::make_mesh(2, 2);
  const tdm::TdmParams params = tdm::daelite_params(8);
  const auto p = path_between(m.topo, m.ni(1, 0), m.ni(1, 1));
  ASSERT_EQ(p.hop_count(), 3u); // NI10->R10, R10->R11, R11->NI11

  RouteTree r = RouteTree::from_path(m.topo, p, {1, 4}, 0);
  const auto segs = make_cfg_segments(m.topo, params, r, /*tx_queue=*/0, {/*rx=*/0});
  ASSERT_EQ(segs.size(), 1u);
  const CfgSegment& s = segs[0];

  // Mask at the head (destination NI) = injection slots + 3 = {4,7}.
  EXPECT_EQ(s.slots_at_head, (std::vector<tdm::Slot>{4, 7}));

  ASSERT_EQ(s.elements.size(), 4u);
  EXPECT_EQ(s.elements[0].node, m.ni(1, 1)); // destination first
  EXPECT_TRUE(s.elements[0].is_ni);
  EXPECT_FALSE(s.elements[0].is_source_ni);
  EXPECT_EQ(s.elements[1].node, m.router(1, 1));
  EXPECT_EQ(s.elements[2].node, m.router(1, 0));
  EXPECT_EQ(s.elements[3].node, m.ni(1, 0)); // source last
  EXPECT_TRUE(s.elements[3].is_source_ni);

  // Router port words name real ports of the path.
  const topo::Link& r10_out = m.topo.link(p.links[1]);
  EXPECT_EQ(s.elements[2].out_port, r10_out.src_port);
  const topo::Link& r10_in = m.topo.link(p.links[0]);
  EXPECT_EQ(s.elements[2].in_port, r10_in.dst_port);
}

TEST(CfgSegments, MulticastProducesPartialSegments) {
  const auto m = topo::make_mesh(3, 3);
  const tdm::TdmParams params = tdm::daelite_params(16);
  SlotAllocator alloc(m.topo, params);

  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(2, 0), m.ni(2, 2)};
  spec.slots_required = 2;
  const auto r = alloc.allocate(spec);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(validate_route_tree(m.topo, *r).empty());

  const auto segs = make_cfg_segments(m.topo, params, *r, 0, {0, 1});
  ASSERT_EQ(segs.size(), 2u);
  // Branch segment first, trunk (with the source NI) last.
  EXPECT_TRUE(segs.back().elements.back().is_source_ni);
  EXPECT_FALSE(segs.front().elements.back().is_ni); // branch ends at a router
}

// --- SlotAllocator -------------------------------------------------------------

TEST(SlotAllocator, UnicastReservesConsistentSlots) {
  const auto m = topo::make_mesh(4, 4);
  const tdm::TdmParams params = tdm::daelite_params(8);
  SlotAllocator alloc(m.topo, params);

  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(3, 3)};
  spec.slots_required = 3;
  const auto r = alloc.allocate(spec);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->inject_slots.size(), 3u);
  const std::vector<RouteTree> routes{*r};
  EXPECT_EQ(validate_allocation(m.topo, params, alloc.schedule(), routes), "");
  EXPECT_EQ(alloc.schedule().reservations_of(r->channel), 3u * r->edges.size());
}

TEST(SlotAllocator, ReleaseRestoresSchedule) {
  const auto m = topo::make_mesh(3, 3);
  SlotAllocator alloc(m.topo, tdm::daelite_params(8));
  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(2, 2)};
  spec.slots_required = 4;
  const auto r = alloc.allocate(spec);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(alloc.schedule().utilization(), 0.0);
  alloc.release(*r);
  EXPECT_DOUBLE_EQ(alloc.schedule().utilization(), 0.0);
  EXPECT_EQ(alloc.allocated_channels(), 0u);
}

TEST(SlotAllocator, FailsWhenWheelExhausted) {
  const auto m = topo::make_mesh(2, 2);
  SlotAllocator alloc(m.topo, tdm::daelite_params(4));
  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(1, 1)};
  spec.slots_required = 4; // the whole wheel on one source link
  ASSERT_TRUE(alloc.allocate(spec).has_value());
  // Source NI link is now fully booked: nothing further can leave NI00.
  spec.slots_required = 1;
  EXPECT_FALSE(alloc.allocate(spec).has_value());
}

TEST(SlotAllocator, AvoidsOccupiedSlotsViaAlternatePath) {
  const auto m = topo::make_mesh(2, 2);
  SlotAllocator alloc(m.topo, tdm::daelite_params(4));
  // Fill the direct x-then-y path's middle link by a conflicting channel.
  ChannelSpec a;
  a.src_ni = m.ni(0, 0);
  a.dst_nis = {m.ni(1, 0)};
  a.slots_required = 4;
  ASSERT_TRUE(alloc.allocate(a).has_value());
  // A second channel from NI00 cannot exist (source link full) but from
  // NI01 to NI11 everything is free.
  ChannelSpec b;
  b.src_ni = m.ni(0, 1);
  b.dst_nis = {m.ni(1, 1)};
  b.slots_required = 2;
  EXPECT_TRUE(alloc.allocate(b).has_value());
}

TEST(SlotAllocator, MulticastTreeCoversAllDestinations) {
  const auto m = topo::make_mesh(4, 4);
  const tdm::TdmParams params = tdm::daelite_params(16);
  SlotAllocator alloc(m.topo, params);
  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(3, 0), m.ni(0, 3), m.ni(3, 3)};
  spec.slots_required = 2;
  const auto r = alloc.allocate(spec);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(validate_route_tree(m.topo, *r), "");
  EXPECT_EQ(r->dst_nis.size(), 3u);
  const std::vector<RouteTree> routes{*r};
  EXPECT_EQ(validate_allocation(m.topo, params, alloc.schedule(), routes), "");
}

TEST(SlotAllocator, MulticastTreeSharesTrunkLinks) {
  // Destinations on the same row: the tree must use the source's NI link
  // once, not once per destination (the paper's efficiency argument vs
  // separate connections).
  const auto m = topo::make_mesh(4, 1);
  SlotAllocator alloc(m.topo, tdm::daelite_params(8));
  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(2, 0), m.ni(3, 0)};
  spec.slots_required = 1;
  const auto r = alloc.allocate(spec);
  ASSERT_TRUE(r.has_value());
  // Links: NI->R0, R0->R1, R1->R2, R2->NI2, R2->R3, R3->NI3 = 6 links,
  // versus 4 + 5 = 9 for separate connections.
  EXPECT_EQ(r->edges.size(), 6u);
}

TEST(SlotAllocator, RejectsInvalidSpecs) {
  const auto m = topo::make_mesh(3, 3);
  SlotAllocator alloc(m.topo, tdm::daelite_params(8));
  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(2, 2)};

  // Zero bandwidth must fail cleanly, not commit an empty reservation: the
  // old behaviour burned a ChannelId and bumped the live-channel count for
  // a channel release() could never free.
  spec.slots_required = 0;
  EXPECT_FALSE(alloc.valid_spec(spec));
  EXPECT_FALSE(alloc.allocate(spec).has_value());
  EXPECT_EQ(alloc.allocated_channels(), 0u);
  EXPECT_DOUBLE_EQ(alloc.schedule().utilization(), 0.0);

  spec.slots_required = 1;
  spec.dst_nis = {};
  EXPECT_FALSE(alloc.allocate(spec).has_value());
  spec.dst_nis = {spec.src_ni}; // destination == source
  EXPECT_FALSE(alloc.allocate(spec).has_value());
  spec.dst_nis = {m.ni(2, 2), m.ni(2, 2)}; // duplicate destination
  EXPECT_FALSE(alloc.allocate(spec).has_value());
  spec.dst_nis = {m.router(1, 1)}; // router is not a valid endpoint
  EXPECT_FALSE(alloc.allocate(spec).has_value());

  // The rejections left no residue.
  spec.dst_nis = {m.ni(2, 2)};
  const auto r = alloc.allocate(spec);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->channel, 0u); // no ChannelId was burned by the failures
  EXPECT_EQ(alloc.allocated_channels(), 1u);
}

TEST(SlotAllocator, AllocateOnPathRejectsDegenerateRequests) {
  const auto m = topo::make_mesh(3, 3);
  SlotAllocator alloc(m.topo, tdm::daelite_params(8));
  EXPECT_FALSE(alloc.allocate_on_path(topo::Path{}, 1).has_value());
  const topo::Path p = path_between(m.topo, m.ni(0, 0), m.ni(2, 2));
  EXPECT_FALSE(alloc.allocate_on_path(p, 0).has_value());
  EXPECT_EQ(alloc.allocated_channels(), 0u);
  EXPECT_TRUE(alloc.allocate_on_path(p, 1).has_value());
}

TEST(SlotAllocator, MulticastReleaseAndRestoreAccounting) {
  const auto m = topo::make_mesh(4, 4);
  SlotAllocator alloc(m.topo, tdm::daelite_params(16));
  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(3, 0), m.ni(0, 3), m.ni(3, 3)};
  spec.slots_required = 2;
  const auto r = alloc.allocate(spec);
  ASSERT_TRUE(r.has_value());
  // One live channel for the whole tree, not one per destination.
  EXPECT_EQ(alloc.allocated_channels(), 1u);
  const std::size_t reservations = alloc.schedule().reservations_of(r->channel);
  EXPECT_EQ(reservations, 2u * r->edges.size());

  alloc.release(*r);
  EXPECT_EQ(alloc.allocated_channels(), 0u);
  EXPECT_DOUBLE_EQ(alloc.schedule().utilization(), 0.0);
  // Releasing an already-released route must not underflow the count.
  alloc.release(*r);
  EXPECT_EQ(alloc.allocated_channels(), 0u);

  // Restore re-reserves the identical (link, slot, channel) set.
  ASSERT_TRUE(alloc.restore(*r));
  EXPECT_EQ(alloc.allocated_channels(), 1u);
  EXPECT_EQ(alloc.schedule().reservations_of(r->channel), reservations);
}

TEST(SlotAllocator, RestoreRollsBackOnConflict) {
  const auto m = topo::make_mesh(4, 4);
  SlotAllocator alloc(m.topo, tdm::daelite_params(16));
  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(3, 0), m.ni(3, 3)};
  spec.slots_required = 2;
  const auto r = alloc.allocate(spec);
  ASSERT_TRUE(r.has_value());
  alloc.release(*r);

  // Steal one of the released (link, slot) pairs for another channel.
  const RouteEdge& e = r->edges.front();
  const tdm::Slot stolen = alloc.params().slot_at_link(r->inject_slots[0], e.depth);
  ASSERT_TRUE(alloc.reserve_raw(e.link, stolen, r->channel + 1));

  // Restore must fail and leave none of its own reservations behind.
  EXPECT_FALSE(alloc.restore(*r));
  EXPECT_EQ(alloc.allocated_channels(), 0u);
  EXPECT_EQ(alloc.schedule().reservations_of(r->channel), 0u);
}

TEST(SlotAllocator, FirstFitPicksLowestSlots) {
  const auto m = topo::make_mesh(2, 2);
  alloc::AllocatorOptions opt;
  opt.slot_policy = SlotPolicy::kFirstFit;
  SlotAllocator a(m.topo, tdm::daelite_params(8), opt);
  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(1, 0)};
  spec.slots_required = 3;
  const auto r = a.allocate(spec);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->inject_slots, (std::vector<tdm::Slot>{0, 1, 2}));
}

TEST(SlotAllocator, SpreadPolicyMaximizesSlotSpacing) {
  const auto m = topo::make_mesh(2, 2);
  SlotAllocator a(m.topo, tdm::daelite_params(8)); // default kSpread
  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(1, 0)};
  spec.slots_required = 4;
  const auto r = a.allocate(spec);
  ASSERT_TRUE(r.has_value());
  // 4 of 8 free slots, evenly spread: every other slot.
  EXPECT_EQ(r->inject_slots, (std::vector<tdm::Slot>{0, 2, 4, 6}));
}

TEST(SlotAllocator, MorePathCandidatesFindHarderFits) {
  const auto m = topo::make_mesh(3, 3);
  const tdm::TdmParams params = tdm::daelite_params(8);

  auto congest = [&](SlotAllocator& a) {
    // Saturate the minimal routes' last hops into R11; detours via R21 or
    // R12 remain open but are longer than any minimal path.
    const topo::LinkId l1 = m.topo.find_link(m.router(1, 0), m.router(1, 1));
    const topo::LinkId l2 = m.topo.find_link(m.router(0, 1), m.router(1, 1));
    for (tdm::Slot s = 0; s < 8; ++s) {
      a.reserve_raw(l1, s, 900);
      a.reserve_raw(l2, s, 901);
    }
  };

  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(1, 1)};
  spec.slots_required = 2;

  alloc::AllocatorOptions narrow;
  narrow.path_candidates = 2; // only the two (blocked) minimal routes
  SlotAllocator a1(m.topo, params, narrow);
  congest(a1);
  EXPECT_FALSE(a1.allocate(spec).has_value());

  alloc::AllocatorOptions wide;
  wide.path_candidates = 8; // detours allowed
  SlotAllocator a2(m.topo, params, wide);
  congest(a2);
  EXPECT_TRUE(a2.allocate(spec).has_value());
}

// --- Multipath -------------------------------------------------------------------

TEST(Multipath, SplitsWhenSinglePathInsufficient) {
  const auto m = topo::make_mesh(2, 2);
  const tdm::TdmParams params = tdm::daelite_params(8);
  SlotAllocator alloc(m.topo, params);

  // NI00 -> NI11 has two minimal routes: via R10 (through link R00->R10)
  // and via R01 (through link R00->R01). Block complementary halves of the
  // wheel on those two interior links so that each single route can carry
  // at most 4 slots, but together they can carry 8.
  const topo::LinkId via_r10 = m.topo.find_link(m.router(0, 0), m.router(1, 0));
  const topo::LinkId via_r01 = m.topo.find_link(m.router(0, 0), m.router(0, 1));
  ASSERT_NE(via_r10, topo::kInvalidLink);
  ASSERT_NE(via_r01, topo::kInvalidLink);
  for (tdm::Slot s = 0; s < 4; ++s) ASSERT_TRUE(alloc.reserve_raw(via_r10, s, 1000));
  for (tdm::Slot s = 4; s < 8; ++s) ASSERT_TRUE(alloc.reserve_raw(via_r01, s, 1001));

  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(1, 1)};
  spec.slots_required = 8; // the full wheel: impossible on any single path

  SlotAllocator single_check(m.topo, params); // fresh allocator, same blocks
  for (tdm::Slot s = 0; s < 4; ++s) single_check.reserve_raw(via_r10, s, 1000);
  for (tdm::Slot s = 4; s < 8; ++s) single_check.reserve_raw(via_r01, s, 1001);
  EXPECT_FALSE(single_check.allocate(spec).has_value());

  MultipathAllocator mp(alloc);
  const auto r = mp.allocate(spec);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->total_slots(), 8u);
  EXPECT_GE(r->parts.size(), 2u);
  mp.release(*r);
  // Only the raw blocker reservations remain.
  EXPECT_EQ(alloc.schedule().reservations_of(1000), 4u);
  EXPECT_EQ(alloc.schedule().reservations_of(1001), 4u);
  for (const auto& part : r->parts) EXPECT_EQ(alloc.schedule().reservations_of(part.channel), 0u);
}

TEST(Multipath, AllOrNothingOnFailure) {
  const auto m = topo::make_mesh(2, 2);
  SlotAllocator alloc(m.topo, tdm::daelite_params(4));
  const double util_before = alloc.schedule().utilization();
  MultipathAllocator mp(alloc, 4);
  ChannelSpec spec;
  spec.src_ni = m.ni(0, 0);
  spec.dst_nis = {m.ni(1, 1)};
  spec.slots_required = 5; // > wheel size: impossible (source link has 4 slots)
  EXPECT_FALSE(mp.allocate(spec).has_value());
  EXPECT_DOUBLE_EQ(alloc.schedule().utilization(), util_before);
}

// --- Use cases --------------------------------------------------------------------

TEST(UseCase, AllocatesRequestAndResponseChannels) {
  const auto m = topo::make_mesh(3, 3);
  SlotAllocator alloc(m.topo, tdm::daelite_params(16));
  UseCase uc;
  uc.name = "pair";
  uc.connections.push_back({"c0", m.ni(0, 0), {m.ni(2, 2)}, 4, 2});
  uc.connections.push_back({"c1", m.ni(1, 0), {m.ni(0, 2)}, 2, 1});
  const auto a = allocate_use_case(alloc, uc);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->connections.size(), 2u);
  for (const auto& c : a->connections) {
    EXPECT_TRUE(c.has_response);
    EXPECT_EQ(c.request.inject_slots.size(), c.spec.request_slots);
    EXPECT_EQ(c.response.inject_slots.size(), c.spec.response_slots);
    EXPECT_EQ(c.response.src_ni, c.spec.dst_nis[0]);
  }
  release_use_case(alloc, *a);
  EXPECT_DOUBLE_EQ(alloc.schedule().utilization(), 0.0);
}

TEST(UseCase, MulticastConnectionHasNoResponse) {
  const auto m = topo::make_mesh(3, 3);
  SlotAllocator alloc(m.topo, tdm::daelite_params(16));
  UseCase uc;
  uc.connections.push_back({"mc", m.ni(0, 0), {m.ni(2, 0), m.ni(2, 2)}, 2, 0});
  const auto a = allocate_use_case(alloc, uc);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(a->connections[0].has_response);
}

TEST(UseCase, RollsBackOnFailure) {
  const auto m = topo::make_mesh(2, 2);
  SlotAllocator alloc(m.topo, tdm::daelite_params(4));
  UseCase uc;
  uc.connections.push_back({"ok", m.ni(0, 0), {m.ni(1, 1)}, 3, 1});
  uc.connections.push_back({"too-big", m.ni(0, 0), {m.ni(1, 0)}, 4, 1});
  std::string failed;
  EXPECT_FALSE(allocate_use_case(alloc, uc, &failed).has_value());
  EXPECT_EQ(failed, "too-big");
  EXPECT_DOUBLE_EQ(alloc.schedule().utilization(), 0.0);
}

// --- Property sweep: random allocate/release sequences stay consistent ------------

class AllocatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorProperty, RandomChurnKeepsScheduleConsistent) {
  const auto m = topo::make_mesh(4, 4);
  const tdm::TdmParams params = tdm::daelite_params(16);
  SlotAllocator alloc(m.topo, params);
  sim::Xoshiro256 rng(GetParam());

  const auto nis = m.all_nis();
  std::vector<RouteTree> live;

  for (int step = 0; step < 120; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      ChannelSpec spec;
      spec.src_ni = nis[rng.below(nis.size())];
      do {
        spec.dst_nis = {nis[rng.below(nis.size())]};
      } while (spec.dst_nis[0] == spec.src_ni);
      if (rng.chance(0.25)) { // sometimes multicast
        topo::NodeId extra = nis[rng.below(nis.size())];
        if (extra != spec.src_ni && extra != spec.dst_nis[0]) spec.dst_nis.push_back(extra);
      }
      spec.slots_required = static_cast<std::uint32_t>(rng.range(1, 4));
      if (auto r = alloc.allocate(spec)) live.push_back(std::move(*r));
    } else {
      const std::size_t idx = rng.below(live.size());
      alloc.release(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_EQ(validate_allocation(m.topo, params, alloc.schedule(), live), "")
        << "at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty,
                         ::testing::Values(1ull, 2ull, 3ull, 42ull, 1234ull, 99999ull));

// Same churn with random link quarantine/clearing mixed in: quarantine
// must only constrain *new* allocations (live routes keep their slots),
// fresh routes must avoid every currently-quarantined link, and after the
// dust settles the allocator must be leak-free — releasing everything
// returns the schedule to empty and the live-channel count to zero.
TEST_P(AllocatorProperty, RandomChurnWithQuarantineStaysConsistentAndLeakFree) {
  const auto m = topo::make_mesh(4, 4);
  const tdm::TdmParams params = tdm::daelite_params(16);
  SlotAllocator alloc(m.topo, params);
  sim::Xoshiro256 rng(GetParam() * 7919 + 1);

  const auto nis = m.all_nis();
  std::vector<RouteTree> live;

  for (int step = 0; step < 150; ++step) {
    const double roll = static_cast<double>(rng.below(100)) / 100.0;
    if (roll < 0.5 || live.empty()) {
      ChannelSpec spec;
      spec.src_ni = nis[rng.below(nis.size())];
      do {
        spec.dst_nis = {nis[rng.below(nis.size())]};
      } while (spec.dst_nis[0] == spec.src_ni);
      spec.slots_required = static_cast<std::uint32_t>(rng.range(1, 4));
      if (auto r = alloc.allocate(spec)) {
        for (const RouteEdge& e : r->edges)
          ASSERT_FALSE(alloc.is_quarantined(e.link))
              << "step " << step << ": route crosses quarantined link " << e.link;
        live.push_back(std::move(*r));
      }
    } else if (roll < 0.75) {
      const std::size_t idx = rng.below(live.size());
      alloc.release(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (roll < 0.9) {
      alloc.quarantine_link(static_cast<topo::LinkId>(rng.below(m.topo.link_count())));
      const auto q = alloc.quarantined_links();
      ASSERT_TRUE(std::is_sorted(q.begin(), q.end()));
    } else {
      alloc.clear_quarantine();
      ASSERT_TRUE(alloc.quarantined_links().empty());
    }
    ASSERT_EQ(validate_allocation(m.topo, params, alloc.schedule(), live), "")
        << "at step " << step;
  }

  for (const RouteTree& r : live) alloc.release(r);
  EXPECT_EQ(alloc.allocated_channels(), 0u);
  EXPECT_DOUBLE_EQ(alloc.schedule().utilization(), 0.0);
  // The wheel is fully reusable afterwards: a quarantine-free allocator
  // state admits a fresh connection on any previously-quarantined link.
  alloc.clear_quarantine();
  ChannelSpec spec;
  spec.src_ni = nis.front();
  spec.dst_nis = {nis.back()};
  spec.slots_required = 1;
  EXPECT_TRUE(alloc.allocate(spec).has_value());
}

} // namespace
