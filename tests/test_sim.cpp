// Unit tests for the simulation kernel: two-phase semantics, registers,
// FIFOs, counters, RNG determinism, statistics.

#include <gtest/gtest.h>

#include "sim/component.hpp"
#include "sim/fifo.hpp"
#include "sim/kernel.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/vcd.hpp"

#include <memory>
#include <sstream>
#include <vector>

namespace {

using namespace daelite::sim;

/// A counter that increments its register every cycle.
class Counter : public Component {
 public:
  Counter(Kernel& k, std::string name) : Component(k, std::move(name)) { own(value_); }
  void tick() override { value_.set(value_.get() + 1); }
  const Reg<int>& value() const { return value_; }

 private:
  Reg<int> value_;
};

/// Copies its input register into its output (1-cycle pipeline stage).
class Stage : public Component {
 public:
  Stage(Kernel& k, std::string name) : Component(k, std::move(name)) { own(out_); }
  void connect(const Reg<int>* in) { in_ = in; }
  void tick() override { out_.set(in_ != nullptr ? in_->get() : 0); }
  const Reg<int>& out() const { return out_; }

 private:
  const Reg<int>* in_ = nullptr;
  Reg<int> out_;
};

TEST(Kernel, CycleCountAdvances) {
  Kernel k;
  EXPECT_EQ(k.now(), 0u);
  k.run(10);
  EXPECT_EQ(k.now(), 10u);
  k.step();
  EXPECT_EQ(k.now(), 11u);
}

TEST(Kernel, RunUntilStopsAtPredicate) {
  Kernel k;
  Counter c(k, "c");
  const bool fired = k.run_until([&] { return c.value().get() == 5; }, 100);
  EXPECT_TRUE(fired);
  EXPECT_EQ(k.now(), 5u);
}

TEST(Kernel, RunUntilTimesOut) {
  Kernel k;
  const bool fired = k.run_until([] { return false; }, 7);
  EXPECT_FALSE(fired);
  EXPECT_EQ(k.now(), 7u);
}

TEST(Kernel, ComponentRegistryTracksLifetime) {
  Kernel k;
  EXPECT_EQ(k.component_count(), 0u);
  {
    Counter c(k, "c");
    EXPECT_EQ(k.component_count(), 1u);
  }
  EXPECT_EQ(k.component_count(), 0u);
}

/// Records the cycle of every dispatched tick (cadence-aware).
class StridedTicker : public Component {
 public:
  StridedTicker(Kernel& k, std::string name, Cadence c) : Component(k, std::move(name), c) {}
  void tick() override { cycles.push_back(now()); }
  std::vector<Cycle> cycles;
};

TEST(Kernel, StrideCadenceDispatchesOnResidue) {
  Kernel k;
  StridedTicker t(k, "t", Cadence{4, 1});
  k.run(13); // cycles 0..12: due where cycle % 4 == 1
  EXPECT_EQ(t.cycles, (std::vector<Cycle>{1, 5, 9}));
  EXPECT_EQ(k.now(), 13u); // fast-forward still lands exactly on the budget
}

TEST(Kernel, ReferenceSchedulerIgnoresCadence) {
  Kernel k(Scheduler::kReference);
  StridedTicker t(k, "t", Cadence{4, 1});
  k.run(8);
  EXPECT_EQ(t.cycles.size(), 8u); // every cycle: the tick's own guard decides
}

/// Owns a second component and destroys it from inside tick() — the
/// kernel must defer the removal (tombstone) and keep dispatching the
/// rest of the cycle safely.
class Destroyer : public Component {
 public:
  Destroyer(Kernel& k, std::string name, Cycle at) : Component(k, std::move(name)), at_(at) {
    victim_ = std::make_unique<Counter>(kernel(), this->name() + ".victim");
  }
  void tick() override {
    if (now() == at_) victim_.reset();
  }

 private:
  Cycle at_;
  std::unique_ptr<Counter> victim_;
};

TEST(Kernel, DestroyingComponentFromTickIsDeferred) {
  // Regression: remove() used to splice the registry mid-iteration, so a
  // component destroying another from tick() invalidated the dispatch
  // loop. `tail` registers after the victim: its registry slot shifts
  // when the tombstone is swept, and it must not lose a single tick.
  for (Scheduler s : {Scheduler::kStride, Scheduler::kReference}) {
    Kernel k(s);
    Destroyer d(k, "d", 3);
    Counter tail(k, "tail");
    EXPECT_EQ(k.component_count(), 3u);
    k.run(10);
    EXPECT_EQ(k.component_count(), 2u);
    EXPECT_EQ(tail.value().get(), 10);
    EXPECT_EQ(k.now(), 10u);
  }
}

TEST(Kernel, RunUntilTimeoutDoesNotReevaluatePredicate) {
  // Regression: the timeout path used to call pred() a second time after
  // the budget elapsed, so side-effecting predicates fired twice.
  for (Scheduler s : {Scheduler::kStride, Scheduler::kReference}) {
    Kernel k(s);
    Counter c(k, "c"); // keeps every cycle non-idle under kStride
    int calls = 0;
    const bool fired = k.run_until(
        [&] {
          ++calls;
          return false;
        },
        7);
    EXPECT_FALSE(fired);
    EXPECT_EQ(k.now(), 7u);
    EXPECT_EQ(calls, 7); // once per cycle boundary, never re-evaluated
  }
}

/// A queue owner with a slow cadence, mutated from outside tick().
class SlotBuffer : public Component {
 public:
  SlotBuffer(Kernel& k, std::string name, std::uint32_t stride)
      : Component(k, std::move(name), Cadence{stride, 0}) {
    own(queue_);
  }
  void push(int v) {
    queue_.push(v);
    external_write();
  }
  const FifoReg<int>& queue() const { return queue_; }
  void tick() override {}

 private:
  FifoReg<int> queue_;
};

TEST(Kernel, ExternalWriteCommitsAtEndOfCurrentCycle) {
  Kernel k;
  SlotBuffer b(k, "b", 8); // due only at cycles % 8 == 0
  Counter c(k, "c");       // keeps the kernel stepping cycle by cycle
  k.step();                // now == 1: b is not due for another 7 cycles
  b.push(42);
  EXPECT_EQ(b.queue().size(), 0u); // pre-edge: not yet committed
  k.step(); // cycle 1 commits the touched component despite its cadence
  EXPECT_EQ(b.queue().size(), 1u);
}

/// Sleeps after its first tick until a fixed wake cycle.
class Napper : public Component {
 public:
  Napper(Kernel& k, std::string name, Cycle wake) : Component(k, std::move(name)), wake_(wake) {}
  void tick() override {
    ticks.push_back(now());
    if (now() == 0) sleep_until(wake_);
  }
  std::vector<Cycle> ticks;

 private:
  Cycle wake_;
};

TEST(Kernel, SleepUntilResumesAtExactWakeCycle) {
  Kernel k;
  Napper n(k, "n", 50);
  k.run(60);
  ASSERT_EQ(n.ticks.size(), 11u); // cycle 0, then 50..59
  EXPECT_EQ(n.ticks[0], 0u);
  EXPECT_EQ(n.ticks[1], 50u);
  EXPECT_EQ(k.now(), 60u);
}

/// Due every cycle but certifies its tick is a no-op (quiescent).
class QuiescentBlock : public Component {
 public:
  using Component::Component;
  void tick() override { ++ticks; }
  bool quiescent() const override { return true; }
  int ticks = 0;
};

TEST(Kernel, QuiescentNetworkFastForwardsWholeSpans) {
  Kernel k;
  QuiescentBlock q(k, "q");
  k.run(100000); // all active components quiescent: skipped wholesale
  EXPECT_EQ(k.now(), 100000u);
  EXPECT_EQ(q.ticks, 0);
  k.step(); // step() never skips
  EXPECT_EQ(q.ticks, 1);
}

TEST(Kernel, NonQuiescentComponentBlocksFastForward) {
  Kernel k;
  QuiescentBlock q(k, "q");
  Counter c(k, "c"); // default quiescent() == false
  k.run(10);
  EXPECT_EQ(q.ticks, 10);
  EXPECT_EQ(c.value().get(), 10);
}

TEST(Reg, HoldsValueAcrossCyclesWithoutSet) {
  Kernel k;
  Stage s(k, "s"); // never connected: writes 0 every cycle
  Reg<int> r(42);
  // A bare Reg not owned by any component is never committed by the
  // kernel, but commit_reg preserves the held value.
  r.commit_reg();
  EXPECT_EQ(r.get(), 42);
}

TEST(Reg, TwoPhaseVisibility) {
  Kernel k;
  Counter c(k, "c");
  Stage s(k, "s");
  s.connect(&c.value());
  k.step(); // c: 0->1 committed; s sampled pre-edge value 0
  EXPECT_EQ(c.value().get(), 1);
  EXPECT_EQ(s.out().get(), 0);
  k.step();
  EXPECT_EQ(c.value().get(), 2);
  EXPECT_EQ(s.out().get(), 1); // exactly one cycle behind
}

TEST(Reg, PipelineDelayIsOneCyclePerStage) {
  Kernel k;
  Counter c(k, "c");
  Stage s1(k, "s1"), s2(k, "s2"), s3(k, "s3");
  s1.connect(&c.value());
  s2.connect(&s1.out());
  s3.connect(&s2.out());
  k.run(10);
  EXPECT_EQ(c.value().get(), 10);
  EXPECT_EQ(s1.out().get(), 9);
  EXPECT_EQ(s2.out().get(), 8);
  EXPECT_EQ(s3.out().get(), 7);
}

TEST(Reg, OrderIndependence) {
  // Same pipeline, components constructed (and hence ticked) in reverse
  // order: results must be identical.
  Kernel k;
  Stage s3(k, "s3"), s2(k, "s2"), s1(k, "s1");
  Counter c(k, "c");
  s1.connect(&c.value());
  s2.connect(&s1.out());
  s3.connect(&s2.out());
  k.run(10);
  EXPECT_EQ(s3.out().get(), 7);
}

TEST(FifoReg, PushVisibleAfterCommit) {
  FifoReg<int> f;
  f.push(1);
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.next_size(), 1u);
  f.commit_reg();
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f.at(0), 1);
}

TEST(FifoReg, PopReturnsCommittedFront) {
  FifoReg<int> f;
  f.push(1);
  f.push(2);
  f.commit_reg();
  EXPECT_EQ(f.poppable(), 2u);
  EXPECT_EQ(f.pop(), 1);
  EXPECT_EQ(f.poppable(), 1u);
  EXPECT_EQ(f.pop(), 2);
  // Not yet committed: size still 2.
  EXPECT_EQ(f.size(), 2u);
  f.commit_reg();
  EXPECT_EQ(f.size(), 0u);
}

TEST(FifoReg, SimultaneousPushAndPopCommute) {
  FifoReg<int> f;
  f.push(1);
  f.commit_reg();
  // Same cycle: consumer pops the committed word, producer pushes a new one.
  EXPECT_EQ(f.pop(), 1);
  f.push(2);
  f.commit_reg();
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f.at(0), 2);
}

TEST(CounterReg, AddAndSubAccumulate) {
  CounterReg c;
  c.force(10);
  c.add(5);
  c.sub(3);
  EXPECT_EQ(c.get(), 10u); // committed view unchanged mid-cycle
  c.commit_reg();
  EXPECT_EQ(c.get(), 12u);
}

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, BelowIsInRangeAndCoversValues) {
  Xoshiro256 r(7);
  bool seen[10] = {};
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.below(10);
    ASSERT_LT(v, 10u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Xoshiro, RangeInclusive) {
  Xoshiro256 r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
  }
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 r(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(ScalarStat, BasicMoments) {
  ScalarStat s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-9);
}

TEST(ScalarStat, EmptyIsZero) {
  ScalarStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(16);
  for (std::uint64_t v = 0; v < 10; ++v) h.add(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.quantile(0.1), 0u);
  EXPECT_EQ(h.quantile(0.5), 4u);
  EXPECT_EQ(h.quantile(1.0), 9u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Histogram, GrowsInsteadOfOverflowing) {
  // Regression: a sample past the initial bucket span used to land in the
  // overflow bucket, silently clamping every later quantile to max().
  // The bucket array now grows geometrically, so the sample stays exact.
  Histogram h(4);
  h.add(100);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket(100), 1u);
  EXPECT_EQ(h.quantile(0.5), 100u);
  EXPECT_EQ(h.max(), 100.0);
}

TEST(Histogram, QuantilesExactPastDefaultCapacity) {
  // The latency-quantile saturation bug: a default histogram held 1024
  // exact buckets, so any latency >= 1024 cycles pushed p50/p90/p99 to
  // max(). Quantiles must stay exact well past that.
  Histogram h;
  for (std::uint64_t v = 2000; v < 3000; ++v) h.add(v);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.quantile(0.5), 2499u);
  EXPECT_EQ(h.quantile(0.9), 2899u);
  EXPECT_EQ(h.quantile(0.99), 2989u);
  EXPECT_EQ(h.quantile(1.0), 2999u);
}

TEST(Histogram, OverflowOnlyPastGrowthCap) {
  // Growth is capped (kMaxBuckets); only samples beyond the cap overflow,
  // and for those quantile() still falls back to max().
  Histogram h(4);
  h.add(std::uint64_t{1} << 20);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.quantile(0.5), std::uint64_t{1} << 20);
}

TEST(Histogram, QuantileZeroIsMinimum) {
  // Regression: ceil(0 * n) == 0 made quantile(0.0) scan for a cumulative
  // count of 0, which the first non-empty bucket always satisfies — so a
  // stream with no samples below 5 reported quantile(0.0) == 0 instead of 5.
  Histogram h(16);
  for (std::uint64_t v = 5; v <= 9; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.0), 5u);
  EXPECT_EQ(h.quantile(0.0), static_cast<std::uint64_t>(h.min()));
  EXPECT_EQ(h.quantile(1.0), 9u);
}

TEST(Histogram, MergeGrowsToCoverSource) {
  Histogram a(8);
  Histogram b(16);
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(12);  // beyond a's initial span: a must grow, not overflow
  b.add(200); // beyond b's too — b grew on add, a grows on merge
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.bucket(2), 2u);
  EXPECT_EQ(a.bucket(12), 1u);
  EXPECT_EQ(a.bucket(200), 1u);
  EXPECT_EQ(a.overflow(), 0u);
  EXPECT_EQ(a.quantile(1.0), 200u);
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 200.0);
}

TEST(ScalarStat, WelfordVarianceIsStableForLargeMeans) {
  // Regression: the old sum-of-squares formula (E[x^2] - E[x]^2) cancels
  // catastrophically when the mean dwarfs the spread and could go negative.
  ScalarStat s;
  const double base = 1e9;
  for (double d : {0.0, 1.0, 2.0}) s.add(base + d);
  EXPECT_GE(s.variance(), 0.0);
  // Population variance of {0,1,2} is 2/3 regardless of offset.
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-3);
  EXPECT_NEAR(s.mean(), base + 1.0, 1e-3);
}

TEST(ScalarStat, VarianceNeverNegative) {
  ScalarStat s;
  for (int i = 0; i < 100; ++i) s.add(1e12 + 0.1);
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_NEAR(s.variance(), 0.0, 1e-3);
}

TEST(ScalarStat, MergeMatchesSequentialFeed) {
  ScalarStat a;
  ScalarStat b;
  ScalarStat all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 50; i < 70; ++i) {
    b.add(i);
    all.add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Tracer, RecordsAndCounts) {
  Tracer t;
  const auto a = t.intern("a");
  const auto b = t.intern("b");
  t.record(1, a, TraceEvent::kFlitInject, 7);
  t.record(2, b, TraceEvent::kFlitInject);
  t.record(3, a, TraceEvent::kFlitDeliver);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.count(TraceEvent::kFlitInject), 2u);
  EXPECT_EQ(t.count("inject"), 2u);
  EXPECT_EQ(t.count(TraceEvent::kFlitDeliver), 1u);
  EXPECT_EQ(t.name(a), "a");
  EXPECT_EQ(t.intern("a"), a); // interning is idempotent
}

TEST(Tracer, DisabledDropsRecords) {
  Tracer t(false);
  t.record(1, 0, TraceEvent::kFlitInject);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Vcd, HeaderDeclaresSignalsInScopes) {
  std::ostringstream os;
  VcdWriter vcd(os);
  int v = 0;
  vcd.add_signal("nodeA.valid", 1, [&] { return static_cast<std::uint64_t>(v); });
  vcd.add_signal("nodeA.data", 8, [&] { return 0xABull; });
  vcd.sample(0);
  const std::string s = os.str();
  EXPECT_NE(s.find("$scope module nodeA $end"), std::string::npos);
  EXPECT_NE(s.find("$var wire 1"), std::string::npos);
  EXPECT_NE(s.find("$var wire 8"), std::string::npos);
  EXPECT_NE(s.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(s.find("b10101011"), std::string::npos); // initial snapshot
}

TEST(Vcd, OnlyChangesAreEmitted) {
  std::ostringstream os;
  VcdWriter vcd(os);
  std::uint64_t v = 0;
  vcd.add_signal("s.x", 1, [&] { return v; });
  vcd.sample(0); // snapshot
  const std::size_t after_snapshot = os.str().size();
  vcd.sample(1); // no change: nothing written
  EXPECT_EQ(os.str().size(), after_snapshot);
  v = 1;
  vcd.sample(2);
  EXPECT_NE(os.str().find("#2"), std::string::npos);
}

TEST(Vcd, WideValuesRoundTripMsbFirst) {
  std::ostringstream os;
  VcdWriter vcd(os);
  vcd.add_signal("s.w", 16, [] { return 0b101ull; });
  vcd.sample(0);
  EXPECT_NE(os.str().find("b101 "), std::string::npos); // leading zeros trimmed
}

TEST(Log, LevelGatesOutput) {
  std::ostringstream os;
  std::ostream* old_sink = Log::sink();
  const LogLevel old_level = Log::level();
  Log::set_sink(&os);
  Log::set_level(LogLevel::kWarn);

  log_debug("who", "hidden ", 42);
  EXPECT_TRUE(os.str().empty());
  log_warn("who", "visible ", 42);
  EXPECT_NE(os.str().find("[WARN ] who: visible 42"), std::string::npos);
  log_error("who", "bad");
  EXPECT_NE(os.str().find("[ERROR] who: bad"), std::string::npos);

  Log::set_level(LogLevel::kDebug);
  log_debug("who", "now shown");
  EXPECT_NE(os.str().find("now shown"), std::string::npos);

  Log::set_sink(old_sink);
  Log::set_level(old_level);
}

TEST(Log, NullSinkIsSafe) {
  std::ostream* old_sink = Log::sink();
  Log::set_sink(nullptr);
  log_error("who", "dropped");
  EXPECT_FALSE(Log::enabled(LogLevel::kError));
  Log::set_sink(old_sink);
}

} // namespace
