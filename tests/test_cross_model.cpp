// Cross-model tests: the same workload on daelite and aelite, the
// (templated) DTL shells running over aelite NIs, and a 72-element scale
// run — checks that the two network models are directly comparable, which
// is what every Table/claim bench relies on.

#include <gtest/gtest.h>

#include "aelite/network.hpp"
#include "alloc/usecase.hpp"
#include "daelite/network.hpp"
#include "soc/memory.hpp"
#include "soc/shell.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;

TEST(CrossModel, SameWorkloadDaeliteFasterAndBothCorrect) {
  constexpr std::uint32_t kSlots = 16;
  constexpr std::size_t kWords = 120;

  // daelite.
  topo::Mesh dmesh = topo::make_mesh(3, 3);
  sim::Kernel dk;
  hw::DaeliteNetwork::Options dopt;
  dopt.tdm = tdm::daelite_params(kSlots);
  dopt.cfg_root = dmesh.ni(0, 0);
  hw::DaeliteNetwork dnet(dk, dmesh.topo, dopt);
  alloc::SlotAllocator dalloc(dmesh.topo, dopt.tdm);
  alloc::UseCase duc;
  duc.connections.push_back({"c", dmesh.ni(0, 0), {dmesh.ni(2, 2)}, 4, 1});
  auto da = alloc::allocate_use_case(dalloc, duc);
  ASSERT_TRUE(da.has_value());
  auto dh = dnet.open_connection(da->connections[0]);
  dnet.run_config();

  sim::Cycle d_done = 0;
  {
    hw::Ni& src = dnet.ni(dmesh.ni(0, 0));
    hw::Ni& dst = dnet.ni(dmesh.ni(2, 2));
    std::size_t pushed = 0, got = 0;
    const sim::Cycle start = dk.now();
    while (got < kWords) {
      if (pushed < kWords && src.tx_push(dh.src_tx_q, static_cast<std::uint32_t>(pushed)))
        ++pushed;
      dk.step();
      while (dst.rx_pop(dh.dst_rx_qs[0])) ++got;
      ASSERT_LT(dk.now() - start, 100000u);
    }
    d_done = dk.now() - start;
  }

  // aelite: same topology, same slot share.
  topo::Mesh amesh = topo::make_mesh(3, 3);
  sim::Kernel ak;
  aelite::AeliteNetwork::Options aopt;
  aopt.tdm = tdm::aelite_params(kSlots);
  aelite::AeliteNetwork anet(ak, amesh.topo, aopt);
  alloc::SlotAllocator aalloc(amesh.topo, aopt.tdm);
  aelite::AeliteNetwork::reserve_config_slots(aalloc);
  alloc::UseCase auc;
  auc.connections.push_back({"c", amesh.ni(0, 0), {amesh.ni(2, 2)}, 4, 1});
  auto aa = alloc::allocate_use_case(aalloc, auc);
  ASSERT_TRUE(aa.has_value());
  auto ah = anet.open_connection(aa->connections[0]);

  sim::Cycle a_done = 0;
  {
    aelite::Ni& src = anet.ni(amesh.ni(0, 0));
    aelite::Ni& dst = anet.ni(amesh.ni(2, 2));
    std::size_t pushed = 0, got = 0;
    const sim::Cycle start = ak.now();
    while (got < kWords) {
      if (pushed < kWords && src.tx_push(ah.src_tx_q, static_cast<std::uint32_t>(pushed)))
        ++pushed;
      ak.step();
      while (dst.rx_pop(ah.dst_rx_q)) ++got;
      ASSERT_LT(ak.now() - start, 100000u);
    }
    a_done = ak.now() - start;
  }

  // Both correct, daelite strictly faster at equal slot share (no header
  // overhead, shorter hops, 2- vs 3-cycle wheel granularity).
  EXPECT_LT(d_done, a_done);
  EXPECT_EQ(dnet.total_router_drops(), 0u);
  EXPECT_EQ(anet.total_collisions(), 0u);
}

TEST(CrossModel, DtlShellsWorkOverAeliteNis) {
  // The shells are templated on the NI type; run a full write+read MMIO
  // round trip over the aelite network to prove the claim.
  topo::Mesh mesh = topo::make_mesh(2, 2);
  sim::Kernel k;
  aelite::AeliteNetwork::Options opt;
  opt.tdm = tdm::aelite_params(8);
  aelite::AeliteNetwork net(k, mesh.topo, opt);
  alloc::SlotAllocator alloc(mesh.topo, opt.tdm);

  alloc::UseCase uc;
  uc.connections.push_back({"mmio", mesh.ni(0, 0), {mesh.ni(1, 1)}, 2, 2});
  auto a = alloc::allocate_use_case(alloc, uc);
  ASSERT_TRUE(a.has_value());
  const auto h = net.open_connection(a->connections[0]);

  soc::Memory mem;
  soc::InitiatorShell<aelite::Ni> ini(k, "ini", net.ni(mesh.ni(0, 0)), h.src_tx_q, h.src_rx_q);
  soc::TargetShell<aelite::Ni> tgt(k, "tgt", net.ni(mesh.ni(1, 1)), h.dst_rx_q, h.dst_tx_q, mem);

  soc::Transaction wr;
  wr.is_write = true;
  wr.addr = 0x30;
  wr.wdata = {7, 8};
  wr.burst_len = 2;
  ini.submit(wr);
  ASSERT_TRUE(k.run_until([&] { return mem.writes() >= 2; }, 20000));
  EXPECT_EQ(mem.read(0x30), 7u);

  soc::Transaction rd;
  rd.is_write = false;
  rd.addr = 0x30;
  rd.burst_len = 2;
  ini.submit(rd);
  std::optional<soc::Response> resp;
  ASSERT_TRUE(k.run_until(
      [&] {
        while (auto r = ini.take_response())
          if (!r->is_write) resp = r;
        return resp.has_value();
      },
      30000));
  ASSERT_EQ(resp->rdata.size(), 2u);
  EXPECT_EQ(resp->rdata[1], 8u);
}

TEST(CrossModel, SeventyTwoElementMeshConfiguresAndRuns) {
  // 6x6 mesh = 36 routers + 36 NIs = 72 network elements (within the
  // paper's <= 126 id space). Configure a batch of connections through
  // the tree and stream on all of them.
  topo::Mesh mesh = topo::make_mesh(6, 6);
  sim::Kernel k;
  hw::DaeliteNetwork::Options opt;
  opt.tdm = tdm::daelite_params(16);
  opt.cfg_root = mesh.ni(3, 3);
  hw::DaeliteNetwork net(k, mesh.topo, opt);
  alloc::SlotAllocator alloc(mesh.topo, opt.tdm);

  std::vector<hw::ConnectionHandle> handles;
  for (int i = 0; i < 6; ++i) {
    alloc::UseCase uc;
    uc.connections.push_back({"c", mesh.ni(i, 0), {mesh.ni(5 - i, 5)}, 2, 1});
    auto a = alloc::allocate_use_case(alloc, uc);
    ASSERT_TRUE(a.has_value()) << i;
    handles.push_back(net.open_connection(a->connections[0]));
  }
  net.run_config();

  std::vector<std::size_t> got(handles.size(), 0);
  std::vector<std::size_t> pushed(handles.size(), 0);
  for (int guard = 0; guard < 60000; ++guard) {
    bool done = true;
    for (std::size_t c = 0; c < handles.size(); ++c) {
      hw::Ni& src = net.ni(handles[c].conn.request.src_ni);
      if (pushed[c] < 40 && src.tx_push(handles[c].src_tx_q, 1)) ++pushed[c];
      hw::Ni& dst = net.ni(handles[c].conn.request.dst_nis[0]);
      while (dst.rx_pop(handles[c].dst_rx_qs[0])) ++got[c];
      done = done && got[c] == 40;
    }
    if (done) break;
    k.step();
  }
  for (std::size_t c = 0; c < handles.size(); ++c) EXPECT_EQ(got[c], 40u) << c;
  EXPECT_EQ(net.total_router_drops(), 0u);
  EXPECT_EQ(net.total_cfg_errors(), 0u);
}

} // namespace
