// Golden-model timing check: for a backlogged guaranteed-service channel
// the TDM schedule makes every arrival cycle exactly predictable. We
// compute the full arrival trace analytically — first owned slot after
// the data becomes visible, then one flit per owned slot, each arriving
// precisely hop_cycles * links later — and require the simulator to match
// it cycle-for-cycle and word-for-word.

#include <gtest/gtest.h>

#include <map>

#include "alloc/allocator.hpp"
#include "daelite/network.hpp"
#include "topology/generators.hpp"
#include "topology/path.hpp"

namespace {

using namespace daelite;
using namespace daelite::hw;

struct GoldenFixture : ::testing::Test {
  topo::Mesh mesh = topo::make_mesh(2, 2);
  tdm::TdmParams params = tdm::daelite_params(8);
  sim::Kernel kernel;
  std::unique_ptr<DaeliteNetwork> net;

  void SetUp() override {
    DaeliteNetwork::Options opt;
    opt.tdm = params;
    opt.cfg_root = mesh.ni(0, 0);
    net = std::make_unique<DaeliteNetwork>(kernel, mesh.topo, opt);
  }
};

TEST_F(GoldenFixture, ArrivalTraceMatchesAnalyticPrediction) {
  // The paper's Fig. 6 route: NI10 -> R10 -> R11 -> NI11, inject slots
  // {1, 4}, 3 links.
  topo::PathFinder finder(mesh.topo);
  const topo::Path path = finder.shortest(mesh.ni(1, 0), mesh.ni(1, 1));
  ASSERT_EQ(path.hop_count(), 3u);
  const std::vector<tdm::Slot> inject = {1, 4};
  alloc::RouteTree route = alloc::RouteTree::from_path(mesh.topo, path, inject, 0);
  net->program_route_direct(route, 0, {0});

  Ni& src = net->ni(mesh.ni(1, 0));
  Ni& dst = net->ni(mesh.ni(1, 1));
  src.set_credit_direct(0, 63);

  constexpr std::size_t kWords = 24; // 12 flits of 2 words
  for (std::size_t i = 0; i < kWords; ++i) ASSERT_TRUE(src.tx_push(0, static_cast<std::uint32_t>(i)));
  // Pushes land at the end of cycle 0: the source's first opportunity is
  // the first owned slot start at cycle >= 1.

  // ---- Analytic prediction ---------------------------------------------------
  const std::uint32_t w = params.words_per_slot;     // 2
  const std::uint32_t wheel = params.wheel_cycles(); // 16
  const std::size_t n_links = path.hop_count();
  std::map<sim::Cycle, std::uint32_t> expected; // acting cycle -> words
  std::size_t words_left = kWords;
  for (std::uint32_t k = 0; words_left > 0; ++k) {
    for (tdm::Slot q : inject) {
      if (words_left == 0) break;
      const sim::Cycle tx_cycle = static_cast<sim::Cycle>(q) * w + static_cast<sim::Cycle>(k) * wheel;
      if (tx_cycle < 1) continue; // data not yet visible at cycle 0
      const std::uint32_t words = static_cast<std::uint32_t>(std::min<std::size_t>(w, words_left));
      expected[tx_cycle + n_links * params.hop_cycles] = words;
      words_left -= words;
    }
  }

  // ---- Observed trace ----------------------------------------------------------
  std::map<sim::Cycle, std::uint32_t> observed;
  std::uint64_t last = 0;
  const sim::Cycle horizon = expected.rbegin()->first + wheel;
  for (sim::Cycle c = 0; c <= horizon; ++c) {
    kernel.step();
    const std::uint64_t now_words = dst.rx_stats(0).words_received;
    if (now_words != last) {
      observed[c] = static_cast<std::uint32_t>(now_words - last); // acted during cycle c
      last = now_words;
    }
  }

  EXPECT_EQ(observed, expected);
  // And payload order is preserved.
  for (std::uint32_t i = 0; i < kWords; ++i) {
    auto v = dst.rx_pop(0);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST_F(GoldenFixture, CreditThrottledSourceSkipsExactlyTheStarvedSlots) {
  // With credits for only 3 words, the source sends 2 + 1 words in its
  // first two owned slots and then goes silent until credits return
  // (never: no reverse channel) — the arrival trace must show exactly
  // those two flits and nothing else.
  topo::PathFinder finder(mesh.topo);
  const topo::Path path = finder.shortest(mesh.ni(0, 0), mesh.ni(1, 0));
  const std::vector<tdm::Slot> inject = {2};
  alloc::RouteTree route = alloc::RouteTree::from_path(mesh.topo, path, inject, 0);
  net->program_route_direct(route, 0, {0});

  Ni& src = net->ni(mesh.ni(0, 0));
  Ni& dst = net->ni(mesh.ni(1, 0));
  src.set_credit_direct(0, 3);
  for (int i = 0; i < 10; ++i) src.tx_push(0, static_cast<std::uint32_t>(i));

  kernel.run(6 * params.wheel_cycles());
  EXPECT_EQ(dst.rx_stats(0).words_received, 3u);
  EXPECT_EQ(dst.rx_stats(0).flits_received, 2u); // a 2-word and a 1-word flit
  EXPECT_EQ(src.credit(0), 0u);
}

} // namespace
