// Sharded single-simulation parallelism: the shard boundary machinery.
//
// Sharding partitions a network's routers/NIs into per-thread bands inside
// one Kernel (sim/kernel.hpp, DaeliteNetwork::assign_shards) and must be a
// pure wall-clock optimization — cycle-exact, byte-identical state, stats
// and traces at every shard count. These tests pin the boundary mechanics
// that make that true:
//   * cross-shard link exchange: a flit committed into a boundary register
//     is observed by the downstream shard exactly one cycle later, the
//     same register-transfer timing as the serial schedule;
//   * external-write (mailbox) timing: host pushes into a sharded NI
//     commit at the end of the cycle of the mutation, regardless of which
//     shard owns the NI;
//   * multicast routes crossing several shard boundaries deliver identical
//     streams at identical cycles;
//   * traces merge back in registration order (records AND interned ids);
//   * fault injection + recovery (serial-set components wrapped around the
//     sharded mesh) reproduce the unsharded report exactly, and the stride
//     scheduler at any shard count reproduces the per-cycle reference.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/dimension.hpp"
#include "alloc/usecase.hpp"
#include "daelite/network.hpp"
#include "sim/fault.hpp"
#include "sim/json.hpp"
#include "sim/trace.hpp"
#include "soc/runner.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::hw;

struct TestNet {
  topo::Mesh mesh;
  sim::Kernel kernel;
  std::unique_ptr<DaeliteNetwork> net;
  std::unique_ptr<alloc::SlotAllocator> alloc;

  TestNet(int w, int h, std::uint32_t slots, std::uint32_t shards) {
    mesh = topo::make_mesh(w, h);
    DaeliteNetwork::Options opt;
    opt.tdm = tdm::daelite_params(slots);
    opt.cfg_root = mesh.ni(0, 0);
    net = std::make_unique<DaeliteNetwork>(kernel, mesh.topo, opt);
    if (shards > 1) net->assign_shards(shards);
    alloc = std::make_unique<alloc::SlotAllocator>(mesh.topo, opt.tdm);
  }

  alloc::AllocatedConnection connect(topo::NodeId src, std::vector<topo::NodeId> dsts,
                                     std::uint32_t req_slots, std::uint32_t resp_slots = 1) {
    alloc::UseCase uc;
    uc.connections.push_back({"c", src, std::move(dsts), req_slots, resp_slots});
    auto a = alloc::allocate_use_case(*alloc, uc);
    EXPECT_TRUE(a.has_value());
    return a->connections[0];
  }
};

/// Word-by-word delivery log of one destination: (payload, arrival cycle).
using DeliveryLog = std::vector<std::pair<std::uint32_t, sim::Cycle>>;

// --- Cross-shard mailbox (external write + boundary link) timing -------------------

/// Drive one unicast connection corner to corner on a mesh sharded into
/// row bands — the route crosses every band boundary — pushing from the
/// main thread on a fixed cycle pattern. Returns the delivery log.
DeliveryLog run_unicast(std::uint32_t shards) {
  TestNet t(4, 4, 8, shards);
  const auto conn = t.connect(t.mesh.ni(0, 0), {t.mesh.ni(3, 3)}, 2, 1);
  const auto h = t.net->open_connection(conn);
  EXPECT_NE(t.net->run_config(), sim::kNoCycle);

  Ni& src = t.net->ni(h.conn.request.src_ni);
  Ni& dst = t.net->ni(h.conn.request.dst_nis[0]);
  DeliveryLog log;
  std::uint32_t next = 1000;
  for (int c = 0; c < 4000; ++c) {
    // Irregular push pattern: bursts, gaps, and single words, so external
    // writes land on slot starts, mid-slot cycles, and idle stretches.
    if (c % 7 == 0 || c % 11 == 3) {
      if (src.tx_push(h.src_tx_q, next)) ++next;
    }
    t.kernel.step();
    while (auto w = dst.rx_pop(h.dst_rx_qs[0])) log.push_back({*w, t.kernel.now()});
  }
  return log;
}

TEST(Sharding, ExternalWritesAndBoundaryLinksAreCycleExact) {
  const DeliveryLog serial = run_unicast(1);
  ASSERT_FALSE(serial.empty());
  for (std::uint32_t shards : {2u, 4u}) {
    const DeliveryLog sharded = run_unicast(shards);
    ASSERT_EQ(sharded.size(), serial.size()) << shards << " shards";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(sharded[i].first, serial[i].first) << "word " << i << ", " << shards << " shards";
      EXPECT_EQ(sharded[i].second, serial[i].second)
          << "arrival cycle of word " << i << ", " << shards << " shards";
    }
  }
}

// --- Multicast crossing shard boundaries -------------------------------------------

/// One multicast from the top-left corner to three destinations in three
/// different row bands (4 shards on a 4x4 mesh = one row of node ids per
/// shard). Every branch of the route tree crosses at least one boundary.
std::vector<DeliveryLog> run_multicast(std::uint32_t shards) {
  TestNet t(4, 4, 8, shards);
  const auto conn = t.connect(t.mesh.ni(0, 0),
                              {t.mesh.ni(3, 1), t.mesh.ni(0, 2), t.mesh.ni(3, 3)}, 2,
                              /*resp_slots=*/0);
  const auto h = t.net->open_connection(conn);
  EXPECT_NE(t.net->run_config(), sim::kNoCycle);

  Ni& src = t.net->ni(h.conn.request.src_ni);
  std::vector<DeliveryLog> logs(h.conn.request.dst_nis.size());
  std::uint32_t next = 5000;
  for (int c = 0; c < 3000; ++c) {
    if (c % 3 == 0 && src.tx_push(h.src_tx_q, next)) ++next;
    t.kernel.step();
    for (std::size_t d = 0; d < logs.size(); ++d) {
      Ni& dst = t.net->ni(h.conn.request.dst_nis[d]);
      while (auto w = dst.rx_pop(h.dst_rx_qs[d])) logs[d].push_back({*w, t.kernel.now()});
    }
  }
  return logs;
}

TEST(Sharding, MulticastAcrossShardBoundariesDeliversIdentically) {
  const std::vector<DeliveryLog> serial = run_multicast(1);
  ASSERT_EQ(serial.size(), 3u);
  for (const DeliveryLog& log : serial) ASSERT_FALSE(log.empty());
  // Multicast duplicates the stream: every destination sees the same words
  // (up to the common prefix — nearer destinations run slightly ahead of
  // farther ones at the fixed end cycle).
  for (std::size_t d = 1; d < serial.size(); ++d) {
    const std::size_t common = std::min(serial[d].size(), serial[0].size());
    ASSERT_GT(common, 0u);
    for (std::size_t i = 0; i < common; ++i)
      EXPECT_EQ(serial[d][i].first, serial[0][i].first);
  }
  const std::vector<DeliveryLog> sharded = run_multicast(4);
  ASSERT_EQ(sharded.size(), serial.size());
  for (std::size_t d = 0; d < serial.size(); ++d) {
    ASSERT_EQ(sharded[d].size(), serial[d].size()) << "destination " << d;
    for (std::size_t i = 0; i < serial[d].size(); ++i) {
      EXPECT_EQ(sharded[d][i].first, serial[d][i].first) << "dst " << d << " word " << i;
      EXPECT_EQ(sharded[d][i].second, serial[d][i].second) << "dst " << d << " word " << i;
    }
  }
}

// --- Trace identity ----------------------------------------------------------------

TEST(Sharding, TracesMergeInRegistrationOrder) {
  // The full hardware event stream — config packets, table writes, flit
  // forwards, credits, deliveries — must be byte-identical at any shard
  // count: same records in the same order with the same interned ids.
  const auto run_traced = [](std::uint32_t shards) {
    sim::Tracer tracer;
    {
      TestNet t(4, 4, 8, shards);
      t.kernel.set_tracer(&tracer);
      const auto conn = t.connect(t.mesh.ni(0, 0), {t.mesh.ni(3, 3)}, 2, 1);
      const auto h = t.net->open_connection(conn);
      EXPECT_NE(t.net->run_config(), sim::kNoCycle);
      Ni& src = t.net->ni(h.conn.request.src_ni);
      Ni& dst = t.net->ni(h.conn.request.dst_nis[0]);
      for (int c = 0; c < 1500; ++c) {
        while (src.tx_push(h.src_tx_q, 1)) {
        }
        t.kernel.step();
        while (dst.rx_pop(h.dst_rx_qs[0])) {
        }
      }
    }
    std::vector<std::pair<std::string, sim::TraceRecord>> named;
    tracer.for_each([&](const sim::TraceRecord& r) { named.push_back({tracer.name(r.comp), r}); });
    return named;
  };

  const auto serial = run_traced(1);
  const auto sharded = run_traced(4);
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(sharded.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(sharded[i].first, serial[i].first) << "record " << i;
    EXPECT_EQ(sharded[i].second.cycle, serial[i].second.cycle) << "record " << i;
    EXPECT_EQ(sharded[i].second.comp, serial[i].second.comp) << "record " << i;
    EXPECT_EQ(sharded[i].second.event, serial[i].second.event) << "record " << i;
    EXPECT_EQ(sharded[i].second.arg0, serial[i].second.arg0) << "record " << i;
    EXPECT_EQ(sharded[i].second.arg1, serial[i].second.arg1) << "record " << i;
  }
}

// --- Fault injection + recovery under shards ---------------------------------------

soc::Scenario stress_scenario() {
  soc::Scenario sc;
  sc.kind = soc::Scenario::TopologyKind::kMesh;
  sc.width = 4;
  sc.height = 4;
  sc.slots = 16;
  sc.host = {2, 2};
  sc.run_cycles = 12000;
  const std::pair<int, int> corners[4] = {{0, 0}, {3, 0}, {0, 3}, {3, 3}};
  for (int i = 0; i < 4; ++i) {
    soc::Scenario::RawConnection c;
    c.name = "corner" + std::to_string(i);
    c.src = corners[i];
    c.dsts.push_back(corners[3 - i]);
    c.bandwidth = 100.0;
    sc.raw.push_back(std::move(c));
  }
  return sc;
}

/// The link the runner routes the first connection over, found by
/// replaying the deterministic dimensioning.
std::uint64_t first_conn_mid_link(soc::Scenario sc) {
  topo::Mesh mesh = sc.build();
  const alloc::NocClocking clk{sc.clock_mhz, 4};
  auto dim = alloc::dimension_network(mesh.topo, sc.connections, clk, {*sc.slots});
  EXPECT_TRUE(dim.has_value());
  const auto& edges = dim->allocation.connections.front().request.edges;
  return edges[edges.size() / 2].link;
}

TEST(Sharding, RecoveryReportsByteIdenticalAcrossShardsAndSchedulers) {
  // Kill a link mid-run with recovery armed: the fault injector, health
  // monitor, quarantine, and mid-run re-route all run in the kernel's
  // serial set around the sharded mesh — detection cycles, verdicts, and
  // the repaired route must not move by a single cycle under sharding.
  const soc::Scenario sc = stress_scenario();
  const std::uint64_t link = first_conn_mid_link(sc);

  const auto run = [&](sim::Scheduler scheduler, std::uint32_t shards) {
    soc::RunSpec spec;
    spec.label = "shard-recovery";
    spec.scenario = sc;
    spec.scheduler = scheduler;
    spec.shards = shards;
    spec.fault_plan.seed = 42;
    sim::FaultDirective kill;
    kill.kind = sim::FaultDirective::Kind::kKill;
    kill.cls = sim::FaultClass::kData;
    kill.line_index = static_cast<std::int64_t>(link);
    kill.from = 4000;
    kill.to = sim::kNoCycle;
    spec.fault_plan.directives.push_back(kill);
    spec.recovery.enabled = true;
    return soc::run_scenario(spec).to_json().dump(2);
  };

  const std::string serial = run(sim::Scheduler::kStride, 1);
  EXPECT_NE(serial.find("\"restored\": true"), std::string::npos);
  EXPECT_EQ(run(sim::Scheduler::kStride, 2), serial);
  EXPECT_EQ(run(sim::Scheduler::kStride, 4), serial);
  // The per-cycle reference scheduler is the oracle; shard counts are
  // clamped to 1 under it, and the stride results must still match it.
  EXPECT_EQ(run(sim::Scheduler::kReference, 4), serial);
}

} // namespace
