// The JSON layer carries every machine-readable metric, so the writer's
// escaping, number formatting and ordering guarantees — and the parser
// used to diff emitted documents — are pinned here.

#include <gtest/gtest.h>

#include "sim/json.hpp"
#include "sim/stats.hpp"

namespace daelite::sim {
namespace {

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string("nul\x01") + "x"), "nul\\u0001x");
  // UTF-8 multibyte sequences pass through untouched.
  EXPECT_EQ(json_escape("æther"), "æther");
}

TEST(JsonNumber, IntegralDoublesPrintWithoutPoint) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
  EXPECT_EQ(json_number(2.5), "2.5");
  EXPECT_EQ(JsonValue(std::uint64_t{20000}).dump(), "20000");
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(JsonValue, ObjectPreservesInsertionOrder) {
  JsonValue v = JsonValue::object();
  v["zebra"] = 1;
  v["apple"] = 2;
  v["mid"] = "x";
  EXPECT_EQ(v.dump(), "{\"zebra\":1,\"apple\":2,\"mid\":\"x\"}");
  // Insert-or-lookup updates in place, not append.
  v["apple"] = 3;
  EXPECT_EQ(v.dump(), "{\"zebra\":1,\"apple\":3,\"mid\":\"x\"}");
}

TEST(JsonValue, NestedDumpCompactAndPretty) {
  JsonValue v = JsonValue::object();
  v["ok"] = true;
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(JsonValue{});
  v["items"] = std::move(arr);
  EXPECT_EQ(v.dump(), "{\"ok\":true,\"items\":[1,\"two\",null]}");
  EXPECT_EQ(v.dump(2),
            "{\n  \"ok\": true,\n  \"items\": [\n    1,\n    \"two\",\n    null\n  ]\n}");
}

TEST(JsonValue, RoundTripThroughParser) {
  JsonValue v = JsonValue::object();
  v["name"] = "weird \"chars\"\n\t\\";
  v["pi"] = 3.14159;
  v["big"] = std::uint64_t{1} << 40;
  v["neg"] = -12;
  v["flag"] = false;
  JsonValue inner = JsonValue::object();
  inner["empty_arr"] = JsonValue::array();
  inner["empty_obj"] = JsonValue::object();
  v["inner"] = std::move(inner);

  const std::string text = v.dump(2);
  std::string error;
  auto parsed = JsonValue::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  // Re-dumping the parse reproduces the original bytes: writer and parser
  // agree on escaping, number formatting and member order.
  EXPECT_EQ(parsed->dump(2), text);
  EXPECT_EQ(parsed->find("name")->as_string(), "weird \"chars\"\n\t\\");
  EXPECT_DOUBLE_EQ(parsed->find("pi")->as_number(), 3.14159);
}

TEST(JsonValue, ParserRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(JsonValue::parse("{\"a\":}", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("[1,2", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("\"unterminated", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("{} trailing", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("", &error).has_value());
}

TEST(JsonValue, ParserHandlesEscapes) {
  auto parsed = JsonValue::parse("\"a\\u0041\\n\\\\\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "aA\n\\");
}

TEST(StatsToJson, CounterAndScalarStat) {
  Counter c;
  c.inc();
  c.inc(9);
  EXPECT_EQ(to_json(c).dump(), "{\"value\":10}");

  ScalarStat s;
  s.add(1.0);
  s.add(3.0);
  const JsonValue v = to_json(s);
  EXPECT_EQ(v.find("count")->as_number(), 2);
  EXPECT_EQ(v.find("sum")->as_number(), 4);
  EXPECT_EQ(v.find("mean")->as_number(), 2);
  EXPECT_EQ(v.find("min")->as_number(), 1);
  EXPECT_EQ(v.find("max")->as_number(), 3);
  EXPECT_EQ(v.find("variance")->as_number(), 1);
}

TEST(StatsToJson, HistogramQuantiles) {
  Histogram h(16);
  for (std::uint64_t i = 0; i < 10; ++i) h.add(i);
  h.add(100); // beyond the initial span: the histogram grows, no overflow
  const JsonValue v = to_json(h);
  EXPECT_EQ(v.find("count")->as_number(), 11);
  EXPECT_EQ(v.find("overflow")->as_number(), 0);
  EXPECT_EQ(v.find("p50")->as_number(), 5);
  EXPECT_EQ(v.find("max")->as_number(), 100);
}

} // namespace
} // namespace daelite::sim
