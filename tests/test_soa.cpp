// SoA batched slot dispatch: hw::SlotEngine and the rebindable slot
// tables it pools (tdm/slot_table.hpp, daelite/slot_engine.hpp).
//
// enable_soa() must be a pure wall-clock optimization, exactly like
// sharding: byte-identical reports, traces, counters, and delivery
// timing at every (scheduler, shards, soa) combination. These tests pin
// that property:
//   * slot-table mechanics: the O(1) used-count and per-slot output
//     masks stay exact across set/clear, rebinding into a pool preserves
//     contents and later writes, copies re-own their storage;
//   * randomized scenario property: seeded random meshes and connection
//     sets produce identical NetworkReport JSON across component/SoA
//     dispatch, shard counts 1/2/4, and the per-cycle reference oracle;
//   * external-write timing into SoA-skipped NIs (host pushes during
//     idle stretches must still commit on the same edge);
//   * multicast-heavy delivery logs, word for word and cycle for cycle;
//   * fault-injected runs (the injector corrupts links around the
//     engine's skip logic — valid bits can only be cleared, so skipping
//     stays exact);
//   * full trace streams merge identically (records AND interned ids);
//   * enable_soa() refuses under the reference scheduler, which ignores
//     suspension and would double-dispatch the covered elements.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/usecase.hpp"
#include "daelite/network.hpp"
#include "sim/fault.hpp"
#include "sim/json.hpp"
#include "sim/trace.hpp"
#include "soc/runner.hpp"
#include "tdm/slot_table.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::hw;

// --- Slot-table mechanics ----------------------------------------------------------

TEST(RouterSlotTableSoA, UsedCountAndMasksStayExact) {
  tdm::RouterSlotTable t(4, 8);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.out_mask(3), 0u);

  t.set(0, 3, 2);
  t.set(1, 3, 2); // multicast: two outputs, same input, same slot
  t.set(2, 5, 0);
  EXPECT_EQ(t.used_entries(), 3u);
  EXPECT_EQ(t.out_mask(3), 0b0011u);
  EXPECT_EQ(t.out_mask(5), 0b0100u);

  t.set(0, 3, 1);                  // overwrite used -> used: count unchanged
  EXPECT_EQ(t.used_entries(), 3u);
  t.clear(1, 3);
  EXPECT_EQ(t.used_entries(), 2u);
  EXPECT_EQ(t.out_mask(3), 0b0001u);
  t.clear(1, 3);                   // double clear: no underflow
  EXPECT_EQ(t.used_entries(), 2u);
  t.clear(0, 3);
  t.clear(2, 5);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.out_mask(3), 0u);
  EXPECT_EQ(t.out_mask(5), 0u);
}

TEST(RouterSlotTableSoA, RebindPreservesContentsAndWritesThrough) {
  tdm::RouterSlotTable t(3, 8);
  t.set(0, 1, 2);
  t.set(2, 6, 1);

  std::vector<tdm::PortIndex> entries(3 * 8, tdm::kUnusedPort);
  std::vector<std::uint8_t> masks(8, 0);
  t.rebind(entries.data(), masks.data());

  EXPECT_EQ(t.input_for(0, 1), 2);
  EXPECT_EQ(t.input_for(2, 6), 1);
  EXPECT_EQ(t.used_entries(), 2u);
  EXPECT_EQ(masks[1], 0b001u); // the pool IS the live storage now
  EXPECT_EQ(entries[2 * 8 + 6], 1);

  t.set(1, 4, 0);
  EXPECT_EQ(entries[1 * 8 + 4], 0);
  EXPECT_EQ(masks[4], 0b010u);
  t.clear(0, 1);
  EXPECT_EQ(entries[0 * 8 + 1], tdm::kUnusedPort);
  EXPECT_EQ(masks[1], 0u);
  EXPECT_EQ(t.used_entries(), 2u);
}

TEST(RouterSlotTableSoA, CopiesOfReboundTableReOwnStorage) {
  tdm::RouterSlotTable t(2, 4);
  std::vector<tdm::PortIndex> entries(2 * 4, tdm::kUnusedPort);
  std::vector<std::uint8_t> masks(4, 0);
  t.rebind(entries.data(), masks.data());
  t.set(0, 2, 1);

  tdm::RouterSlotTable copy = t;
  copy.set(1, 3, 0);
  // The copy's write must not leak into the original's pool.
  EXPECT_EQ(entries[1 * 4 + 3], tdm::kUnusedPort);
  EXPECT_EQ(t.used_entries(), 1u);
  EXPECT_EQ(copy.used_entries(), 2u);
  EXPECT_EQ(copy.input_for(0, 2), 1);
}

TEST(NiSlotTableSoA, RebindPreservesContentsAndWritesThrough) {
  tdm::NiSlotTable t(8);
  t.set_tx(2, 5);
  t.set_rx(6, 1);

  std::vector<tdm::ChannelId> tx(8, tdm::kNoChannel);
  std::vector<tdm::ChannelId> rx(8, tdm::kNoChannel);
  t.rebind(tx.data(), rx.data());

  EXPECT_EQ(t.tx_channel(2), 5u);
  EXPECT_EQ(t.rx_channel(6), 1u);
  EXPECT_EQ(tx[2], 5u);
  t.set_rx(3, 2);
  EXPECT_EQ(rx[3], 2u);
  t.clear_channel(5);
  EXPECT_EQ(tx[2], tdm::kNoChannel);
  EXPECT_EQ(t.tx_slot_count(5), 0u);
}

// --- Network scaffolding -----------------------------------------------------------

struct TestNet {
  topo::Mesh mesh;
  sim::Kernel kernel;
  std::unique_ptr<DaeliteNetwork> net;
  std::unique_ptr<alloc::SlotAllocator> alloc;

  TestNet(int w, int h, std::uint32_t slots, std::uint32_t shards, bool soa) {
    mesh = topo::make_mesh(w, h);
    DaeliteNetwork::Options opt;
    opt.tdm = tdm::daelite_params(slots);
    opt.cfg_root = mesh.ni(0, 0);
    net = std::make_unique<DaeliteNetwork>(kernel, mesh.topo, opt);
    if (shards > 1) net->assign_shards(shards);
    if (soa) EXPECT_TRUE(net->enable_soa());
    alloc = std::make_unique<alloc::SlotAllocator>(mesh.topo, opt.tdm);
  }

  alloc::AllocatedConnection connect(topo::NodeId src, std::vector<topo::NodeId> dsts,
                                     std::uint32_t req_slots, std::uint32_t resp_slots = 1) {
    alloc::UseCase uc;
    uc.connections.push_back({"c", src, std::move(dsts), req_slots, resp_slots});
    auto a = alloc::allocate_use_case(*alloc, uc);
    EXPECT_TRUE(a.has_value());
    return a->connections[0];
  }
};

/// Word-by-word delivery log of one destination: (payload, arrival cycle).
using DeliveryLog = std::vector<std::pair<std::uint32_t, sim::Cycle>>;

// --- Refusal under the reference scheduler -----------------------------------------

TEST(SlotEngine, RefusesUnderReferenceSchedulerAndIsIdempotent) {
  topo::Mesh mesh = topo::make_mesh(3, 3);
  DaeliteNetwork::Options opt;
  opt.tdm = tdm::daelite_params(8);
  opt.cfg_root = mesh.ni(0, 0);
  {
    sim::Kernel k(sim::Scheduler::kReference);
    DaeliteNetwork net(k, mesh.topo, opt);
    EXPECT_FALSE(net.enable_soa());
    EXPECT_FALSE(net.soa_enabled());
  }
  {
    sim::Kernel k(sim::Scheduler::kStride);
    DaeliteNetwork net(k, mesh.topo, opt);
    EXPECT_TRUE(net.enable_soa());
    EXPECT_TRUE(net.soa_enabled());
    EXPECT_TRUE(net.enable_soa()); // idempotent: no second engine set
  }
}

// --- External-write timing into skipped NIs ----------------------------------------

/// Corner-to-corner unicast with an irregular host push pattern: pushes
/// land on slot starts, mid-slot cycles, and long idle stretches where
/// the SoA engine is skipping the source NI outright — the kernel's
/// touched pass must still commit those queue writes on the same edge.
DeliveryLog run_unicast(std::uint32_t shards, bool soa) {
  TestNet t(4, 4, 8, shards, soa);
  const auto conn = t.connect(t.mesh.ni(0, 0), {t.mesh.ni(3, 3)}, 2, 1);
  const auto h = t.net->open_connection(conn);
  EXPECT_NE(t.net->run_config(), sim::kNoCycle);

  Ni& src = t.net->ni(h.conn.request.src_ni);
  Ni& dst = t.net->ni(h.conn.request.dst_nis[0]);
  DeliveryLog log;
  std::uint32_t next = 1000;
  for (int c = 0; c < 4000; ++c) {
    if (c % 7 == 0 || c % 13 == 4) {
      if (src.tx_push(h.src_tx_q, next)) ++next;
    }
    t.kernel.step();
    while (auto w = dst.rx_pop(h.dst_rx_qs[0])) log.push_back({*w, t.kernel.now()});
  }
  return log;
}

TEST(SlotEngine, ExternalWritesIntoSkippedNisAreCycleExact) {
  const DeliveryLog component = run_unicast(1, false);
  ASSERT_FALSE(component.empty());
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    const DeliveryLog soa = run_unicast(shards, true);
    ASSERT_EQ(soa.size(), component.size()) << shards << " shards";
    for (std::size_t i = 0; i < component.size(); ++i) {
      EXPECT_EQ(soa[i].first, component[i].first) << "word " << i << ", " << shards << " shards";
      EXPECT_EQ(soa[i].second, component[i].second)
          << "arrival cycle of word " << i << ", " << shards << " shards";
    }
  }
}

// --- Multicast-heavy delivery ------------------------------------------------------

/// A 3-destination multicast whose route tree fans across the mesh, plus
/// a unicast sharing links with it — the regime where two router outputs
/// forward the same input in the same slot.
std::vector<DeliveryLog> run_multicast(std::uint32_t shards, bool soa) {
  TestNet t(4, 4, 16, shards, soa);
  const auto mc = t.connect(t.mesh.ni(0, 0),
                            {t.mesh.ni(3, 1), t.mesh.ni(0, 2), t.mesh.ni(3, 3)}, 2,
                            /*resp_slots=*/0);
  const auto uc = t.connect(t.mesh.ni(3, 0), {t.mesh.ni(0, 3)}, 2, 1);
  const auto hm = t.net->open_connection(mc);
  const auto hu = t.net->open_connection(uc);
  EXPECT_NE(t.net->run_config(), sim::kNoCycle);

  Ni& msrc = t.net->ni(hm.conn.request.src_ni);
  Ni& usrc = t.net->ni(hu.conn.request.src_ni);
  std::vector<DeliveryLog> logs(hm.conn.request.dst_nis.size() + 1);
  std::uint32_t next = 5000;
  for (int c = 0; c < 3000; ++c) {
    if (c % 3 == 0 && msrc.tx_push(hm.src_tx_q, next)) ++next;
    if (c % 5 == 1 && usrc.tx_push(hu.src_tx_q, next + 100000)) ++next;
    t.kernel.step();
    for (std::size_t d = 0; d + 1 < logs.size(); ++d) {
      Ni& dst = t.net->ni(hm.conn.request.dst_nis[d]);
      while (auto w = dst.rx_pop(hm.dst_rx_qs[d])) logs[d].push_back({*w, t.kernel.now()});
    }
    Ni& udst = t.net->ni(hu.conn.request.dst_nis[0]);
    while (auto w = udst.rx_pop(hu.dst_rx_qs[0])) logs.back().push_back({*w, t.kernel.now()});
  }
  return logs;
}

TEST(SlotEngine, MulticastHeavyDeliveryIsIdentical) {
  const std::vector<DeliveryLog> component = run_multicast(1, false);
  for (const DeliveryLog& log : component) ASSERT_FALSE(log.empty());
  for (std::uint32_t shards : {1u, 4u}) {
    const std::vector<DeliveryLog> soa = run_multicast(shards, true);
    ASSERT_EQ(soa.size(), component.size());
    for (std::size_t d = 0; d < component.size(); ++d) {
      ASSERT_EQ(soa[d].size(), component[d].size()) << "destination " << d;
      for (std::size_t i = 0; i < component[d].size(); ++i) {
        EXPECT_EQ(soa[d][i].first, component[d][i].first) << "dst " << d << " word " << i;
        EXPECT_EQ(soa[d][i].second, component[d][i].second) << "dst " << d << " word " << i;
      }
    }
  }
}

// --- Randomized scenario property --------------------------------------------------

soc::Scenario random_scenario(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto pick = [&](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  soc::Scenario sc;
  sc.kind = soc::Scenario::TopologyKind::kMesh;
  sc.width = pick(3, 5);
  sc.height = pick(3, 4);
  sc.slots = pick(0, 1) != 0 ? 32u : 16u;
  sc.host = {sc.width / 2, sc.height / 2};
  sc.run_cycles = 5000;
  const auto coord = [&] {
    return std::pair<int, int>{pick(0, sc.width - 1), pick(0, sc.height - 1)};
  };
  const int nconn = pick(3, 5);
  for (int i = 0; i < nconn; ++i) {
    soc::Scenario::RawConnection c;
    c.name = "r" + std::to_string(i);
    c.src = coord();
    const int ndst = i == 0 ? pick(2, 3) : 1; // first connection multicasts
    while (static_cast<int>(c.dsts.size()) < ndst) {
      const auto d = coord();
      if (d != c.src && std::find(c.dsts.begin(), c.dsts.end(), d) == c.dsts.end())
        c.dsts.push_back(d);
    }
    c.bandwidth = 20.0 + 10.0 * pick(0, 2);
    sc.raw.push_back(std::move(c));
  }
  return sc;
}

std::string run_report(const soc::Scenario& sc, sim::Scheduler scheduler, bool soa,
                       std::uint32_t shards, const sim::FaultPlan* plan = nullptr,
                       std::string* error = nullptr) {
  soc::RunSpec spec;
  spec.label = "soa-prop";
  spec.scenario = sc;
  spec.scheduler = scheduler;
  spec.soa = soa;
  spec.shards = shards;
  if (plan != nullptr) spec.fault_plan = *plan;
  const analysis::NetworkReport rep = soc::run_scenario(spec);
  if (error != nullptr) *error = rep.error;
  return rep.to_json().dump(2);
}

TEST(SlotEngine, RandomizedReportsIdenticalAcrossDispatchModes) {
  int meaningful = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const soc::Scenario sc = random_scenario(seed);
    std::string error;
    const std::string base = run_report(sc, sim::Scheduler::kStride, false, 1, nullptr, &error);
    if (!error.empty()) continue; // a draw the allocator cannot schedule
    ++meaningful;
    EXPECT_EQ(run_report(sc, sim::Scheduler::kReference, false, 1), base) << "seed " << seed;
    for (std::uint32_t shards : {1u, 2u, 4u}) {
      EXPECT_EQ(run_report(sc, sim::Scheduler::kStride, true, shards), base)
          << "seed " << seed << ", " << shards << " shards";
    }
  }
  // The draws are deterministic, so this is a stable floor, not flakiness.
  EXPECT_GE(meaningful, 4);
}

// --- Fault injection around the skip logic -----------------------------------------

TEST(SlotEngine, FaultInjectedReportsIdenticalAcrossDispatchModes) {
  // Random per-word corruption on every data/config link: the injector
  // rewrites committed register values after the engine's commit, so the
  // per-lane valid-output superset must stay a superset (faults can only
  // clear valid bits, never set them).
  const soc::Scenario sc = random_scenario(7);
  sim::FaultPlan plan;
  plan.seed = 42;
  plan.rate = 0.002;
  std::string error;
  const std::string base =
      run_report(sc, sim::Scheduler::kStride, false, 1, &plan, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(run_report(sc, sim::Scheduler::kReference, false, 1, &plan), base);
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    EXPECT_EQ(run_report(sc, sim::Scheduler::kStride, true, shards, &plan), base)
        << shards << " shards";
  }
}

// --- Trace identity ----------------------------------------------------------------

TEST(SlotEngine, TracesMergeIdenticallyUnderSoA) {
  // The engine relays router records through Kernel::trace_as and NI
  // records through the staged buffer keyed by the element's registration
  // index — the merged stream must match the component path record for
  // record, including interned name ids.
  const auto run_traced = [](std::uint32_t shards, bool soa) {
    sim::Tracer tracer;
    {
      TestNet t(4, 4, 8, shards, soa);
      t.kernel.set_tracer(&tracer);
      const auto conn = t.connect(t.mesh.ni(0, 0), {t.mesh.ni(3, 3)}, 2, 1);
      const auto h = t.net->open_connection(conn);
      EXPECT_NE(t.net->run_config(), sim::kNoCycle);
      Ni& src = t.net->ni(h.conn.request.src_ni);
      Ni& dst = t.net->ni(h.conn.request.dst_nis[0]);
      for (int c = 0; c < 1500; ++c) {
        while (src.tx_push(h.src_tx_q, 1)) {
        }
        t.kernel.step();
        while (dst.rx_pop(h.dst_rx_qs[0])) {
        }
      }
    }
    std::vector<std::pair<std::string, sim::TraceRecord>> named;
    tracer.for_each([&](const sim::TraceRecord& r) { named.push_back({tracer.name(r.comp), r}); });
    return named;
  };

  const auto component = run_traced(1, false);
  ASSERT_FALSE(component.empty());
  for (std::uint32_t shards : {1u, 4u}) {
    const auto soa = run_traced(shards, true);
    ASSERT_EQ(soa.size(), component.size()) << shards << " shards";
    for (std::size_t i = 0; i < component.size(); ++i) {
      EXPECT_EQ(soa[i].first, component[i].first) << "record " << i;
      EXPECT_EQ(soa[i].second.cycle, component[i].second.cycle) << "record " << i;
      EXPECT_EQ(soa[i].second.comp, component[i].second.comp) << "record " << i;
      EXPECT_EQ(soa[i].second.event, component[i].second.event) << "record " << i;
      EXPECT_EQ(soa[i].second.arg0, component[i].second.arg0) << "record " << i;
      EXPECT_EQ(soa[i].second.arg1, component[i].second.arg1) << "record " << i;
    }
  }
}

} // namespace
