// Tests for the dimensioning front end: physical-to-slot conversion,
// wheel-size search, latency-bound checking, and failure reporting.

#include <gtest/gtest.h>

#include "alloc/dimension.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::alloc;

const NocClocking kClk{500.0, 4}; // 500 MHz, 32-bit words: 2000 MB/s links

TEST(Dimension, SlotConversionRoundsUpAndClamps) {
  // 2000 MB/s link, 16 slots -> 125 MB/s per slot.
  EXPECT_EQ(slots_for_bandwidth(125.0, 16, kClk), 1u);
  EXPECT_EQ(slots_for_bandwidth(126.0, 16, kClk), 2u);
  EXPECT_EQ(slots_for_bandwidth(500.0, 16, kClk), 4u);
  EXPECT_EQ(slots_for_bandwidth(0.0, 16, kClk), 1u);   // minimum one slot
  EXPECT_EQ(slots_for_bandwidth(2000.0, 16, kClk), 16u);
  EXPECT_EQ(slots_for_bandwidth(1.0, 8, kClk), 1u);
}

TEST(Dimension, PicksSmallestAdequateWheel) {
  const auto m = topo::make_mesh(3, 3);
  // Three ~190 MB/s streams from one NI: 9.5% of the link each. S=8 gives
  // 250 MB/s granularity (1 slot each, 3/8 of the source link): fits.
  std::vector<PhysicalConnectionSpec> specs;
  for (int i = 0; i < 3; ++i) {
    PhysicalConnectionSpec s;
    s.name = "s" + std::to_string(i);
    s.src_ni = m.ni(0, 0);
    s.dst_nis = {m.ni(2, i)};
    s.bandwidth_mbytes_per_s = 190.0;
    specs.push_back(s);
  }
  const auto r = dimension_network(m.topo, specs, kClk);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->params.num_slots, 8u);
  for (const auto& d : r->connections) {
    EXPECT_EQ(d.request_slots, 1u);
    EXPECT_GE(d.achieved_mbytes_per_s, d.spec.bandwidth_mbytes_per_s);
  }
}

TEST(Dimension, GrowsWheelWhenGranularityTooCoarse) {
  const auto m = topo::make_mesh(3, 3);
  // Seven 130 MB/s streams out of one NI = 910 MB/s total (45% of link).
  // S=8: each needs ceil(130/250)=1 slot -> 7 of 8 slots: fits... make it
  // harder: 9 streams cannot fit S=8 (9 > 8) but at S=16 each needs
  // ceil(130/125)=2 slots -> 18 > 16. Use 60 MB/s: S=8 -> 1 slot each,
  // 9 > 8 slots: fails; S=16 -> 1 slot each (62.5 < 125... 60 < 125 ok):
  // 9 of 16: fits.
  std::vector<PhysicalConnectionSpec> specs;
  for (int i = 0; i < 9; ++i) {
    PhysicalConnectionSpec s;
    s.name = "t" + std::to_string(i);
    s.src_ni = m.ni(1, 1);
    s.dst_nis = {m.ni(i % 3, i / 3 == 1 ? 2 : 0)};
    s.bandwidth_mbytes_per_s = 60.0;
    specs.push_back(s);
  }
  const auto r = dimension_network(m.topo, specs, kClk);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->params.num_slots, 16u);
}

TEST(Dimension, LatencyBoundForcesLargerShare) {
  const auto m = topo::make_mesh(3, 3);
  PhysicalConnectionSpec s;
  s.name = "lowlat";
  s.src_ni = m.ni(0, 0);
  s.dst_nis = {m.ni(2, 2)};
  s.bandwidth_mbytes_per_s = 10.0; // tiny bandwidth: 1 slot everywhere
  // One slot of S=8 gives worst wait 15 cycles + 8 hops*2 + 1 = 32 cycles
  // = 64 ns at 500 MHz. Bound it at 50 ns: S=8 fails... S=16 is worse
  // (31+17 = 96ns), so no wheel satisfies it -> nullopt.
  s.max_latency_ns = 50.0;
  std::string why;
  const auto r = dimension_network(m.topo, {s}, kClk, {8, 16}, &why);
  EXPECT_FALSE(r.has_value());
  EXPECT_NE(why.find("worst latency"), std::string::npos);

  // Relax the bound: S=8 passes.
  s.max_latency_ns = 70.0;
  const auto r2 = dimension_network(m.topo, {s}, kClk, {8, 16});
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->params.num_slots, 8u);
  EXPECT_LE(r2->connections[0].worst_latency_ns, 70.0);
}

TEST(Dimension, ImpossibleDemandReportsWhy) {
  const auto m = topo::make_mesh(2, 2);
  PhysicalConnectionSpec s;
  s.name = "toofat";
  s.src_ni = m.ni(0, 0);
  s.dst_nis = {m.ni(1, 1)};
  s.bandwidth_mbytes_per_s = 4000.0; // 2x the link capacity
  std::string why;
  const auto r = dimension_network(m.topo, {s}, kClk, {8, 16, 32}, &why);
  EXPECT_FALSE(r.has_value());
  EXPECT_FALSE(why.empty());
}

TEST(Dimension, MulticastGetsNoResponseChannel) {
  const auto m = topo::make_mesh(3, 3);
  PhysicalConnectionSpec s;
  s.name = "bcast";
  s.src_ni = m.ni(0, 0);
  s.dst_nis = {m.ni(2, 0), m.ni(2, 2)};
  s.bandwidth_mbytes_per_s = 250.0;
  const auto r = dimension_network(m.topo, {s}, kClk);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->allocation.connections[0].has_response);
  EXPECT_EQ(r->connections[0].response_slots, 0u);
}

} // namespace
