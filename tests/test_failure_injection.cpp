// Failure-injection tests: the model must degrade detectably, never
// silently, under misconfiguration and protocol errors — the counters
// that a bring-up engineer would watch on the real chip.

#include <gtest/gtest.h>

#include "analysis/network_report.hpp"
#include "daelite/config.hpp"
#include "daelite/config_host.hpp"
#include "daelite/network.hpp"
#include "alloc/usecase.hpp"
#include "alloc/allocator.hpp"
#include "sim/fault.hpp"
#include "sim/json.hpp"
#include "sim/parallel.hpp"
#include "soc/runner.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::hw;

struct NetFixture : ::testing::Test {
  topo::Mesh mesh = topo::make_mesh(2, 2);
  sim::Kernel kernel;
  std::unique_ptr<DaeliteNetwork> net;

  void SetUp() override {
    DaeliteNetwork::Options opt;
    opt.tdm = tdm::daelite_params(8);
    opt.cfg_root = mesh.ni(0, 0);
    net = std::make_unique<DaeliteNetwork>(kernel, mesh.topo, opt);
  }

  void run_cfg() { net->run_config(); }
};

TEST_F(NetFixture, UnknownOpcodeCountsProtocolErrors) {
  net->config_module().enqueue_packet({0x55, 0, 0, 0}, false); // 0x55: no such opcode
  run_cfg();
  std::uint64_t errors = 0;
  for (topo::NodeId n = 0; n < mesh.topo.node_count(); ++n) {
    if (mesh.topo.is_router(n)) errors += net->router(n).config_agent().protocol_errors();
  }
  EXPECT_GT(errors, 0u);
  // And nothing was configured.
  for (topo::NodeId n = 0; n < mesh.topo.node_count(); ++n)
    if (mesh.topo.is_router(n)) {
      EXPECT_TRUE(net->router(n).table().empty());
    }
}

TEST_F(NetFixture, PacketForUnknownElementConfiguresNothing) {
  alloc::CfgSegment seg;
  seg.slots_at_head = {3};
  seg.elements = {alloc::CfgElement{0, 0, 1, false, false}};
  CfgIdMap fake{{0, 125}}; // no element has id 125
  net->config_module().enqueue_packet(
      encode_path_packet(seg, net->options().tdm, fake, true), true);
  run_cfg();
  for (topo::NodeId n = 0; n < mesh.topo.node_count(); ++n)
    if (mesh.topo.is_router(n)) {
      EXPECT_TRUE(net->router(n).table().empty());
    }
  EXPECT_EQ(net->total_cfg_errors(), 0u); // well-formed, just not addressed to anyone
}

TEST_F(NetFixture, CreditOpAddressedToRouterCountsError) {
  const std::uint16_t router_id = net->cfg_ids().at(mesh.router(0, 0));
  net->config_module().enqueue_packet(encode_write_credit(router_id, 0, 5), false);
  run_cfg();
  EXPECT_EQ(net->router(mesh.router(0, 0)).stats().cfg_errors, 1u);
}

TEST_F(NetFixture, OutOfRangeQueueCountsNiError) {
  const std::uint16_t ni_id = net->cfg_ids().at(mesh.ni(1, 0));
  net->config_module().enqueue_packet(encode_write_credit(ni_id, 62, 5), false);
  run_cfg();
  EXPECT_EQ(net->ni(mesh.ni(1, 0)).stats().cfg_errors, 1u);
}

TEST_F(NetFixture, MisroutedFlitIsCountedAtTheRouter) {
  // Program only the source NI (no router entries): the flit enters the
  // first router in a slot with no table entry and must be dropped +
  // counted, never silently lost.
  Ni& src = net->ni(mesh.ni(0, 0));
  src.table().set_tx(2, 0);
  src.set_credit_direct(0, 8);
  src.tx_push(0, 0xBAD);
  kernel.run(4 * net->options().tdm.wheel_cycles());
  EXPECT_EQ(net->total_router_drops(), 1u);
}

TEST_F(NetFixture, HalfTornDownPathDropsAtTheGap) {
  // Configure a 2-hop route, then clear only the middle router: traffic
  // must be dropped exactly there.
  alloc::SlotAllocator alloc(mesh.topo, net->options().tdm);
  alloc::ChannelSpec spec;
  spec.src_ni = mesh.ni(0, 0);
  spec.dst_nis = {mesh.ni(1, 0)};
  spec.slots_required = 1;
  const auto route = alloc.allocate(spec);
  ASSERT_TRUE(route.has_value());
  net->program_route_direct(*route, 0, {0});

  // Knock out the second router on the path (the one feeding the dst NI).
  const topo::Link& last = mesh.topo.link(route->edges.back().link);
  ASSERT_TRUE(mesh.topo.is_router(last.src));
  Router& mid = net->router(last.src);
  for (tdm::Slot s = 0; s < 8; ++s)
    for (std::size_t o = 0; o < mid.table().num_outputs(); ++o) mid.table().clear(o, s);

  Ni& src = net->ni(mesh.ni(0, 0));
  src.set_credit_direct(0, 8);
  src.set_flow_ctrl_direct(0, false);
  src.tx_push(0, 1);
  src.tx_push(0, 2);
  kernel.run(8 * net->options().tdm.wheel_cycles());
  EXPECT_EQ(mid.stats().flits_dropped, net->total_router_drops());
  EXPECT_GT(mid.stats().flits_dropped, 0u);
  EXPECT_EQ(net->ni(mesh.ni(1, 0)).rx_level(0), 0u);
}

TEST_F(NetFixture, ConflictingTableEntryIsObservableNotFatal) {
  // Two channels misconfigured onto the same router (output, slot): the
  // hardware forwards per the (single) table entry; the losing channel's
  // flits arrive at the wrong destination queue or are dropped — both
  // observable through stats. Here: NI(0,0) and NI(0,1)... simplest:
  // program a table entry that points at an input with no matching rx
  // mapping downstream.
  Ni& src = net->ni(mesh.ni(0, 0));
  src.table().set_tx(0, 0);
  src.set_credit_direct(0, 8);
  src.set_flow_ctrl_direct(0, false);

  // Route the flit to the dst NI but give the NI no rx entry.
  Router& r00 = net->router(mesh.router(0, 0));
  const topo::Link& in_l = mesh.topo.link(mesh.topo.find_link(mesh.ni(0, 0), mesh.router(0, 0)));
  const topo::Link& out_l = mesh.topo.link(mesh.topo.find_link(mesh.router(0, 0), mesh.ni(0, 0)));
  r00.table().set(out_l.src_port, 1, static_cast<tdm::PortIndex>(in_l.dst_port));

  src.tx_push(0, 7);
  kernel.run(4 * net->options().tdm.wheel_cycles());
  EXPECT_EQ(net->ni(mesh.ni(0, 0)).stats().flits_dropped, 1u);
}

TEST_F(NetFixture, ResponsePathCollisionIsCounted) {
  // Two simultaneous read responses violate the one-outstanding-request
  // protocol; the convergence logic must count the collision.
  const std::uint16_t id_a = net->cfg_ids().at(mesh.ni(1, 0));
  const std::uint16_t id_b = net->cfg_ids().at(mesh.ni(0, 1));
  // Issue two reads back-to-back *without* waiting for responses (abuse
  // the module by marking them as not expecting responses).
  net->config_module().enqueue_packet(encode_read_credit(id_a, 0), false, false);
  net->config_module().enqueue_packet(encode_read_credit(id_b, 0), false, false);
  run_cfg();
  // Allow the responses to climb back up the tree (2 cycles per level).
  kernel.run(4 * net->config_tree().max_depth() + 16);
  // Depending on tree depths the responses may or may not collide; the
  // invariant is that the network never deadlocks and any collision is
  // counted, never silent.
  std::uint64_t collisions = 0;
  for (topo::NodeId n = 0; n < mesh.topo.node_count(); ++n) {
    ConfigAgent& a = mesh.topo.is_router(n) ? net->router(n).config_agent()
                                            : net->ni(n).config_agent();
    collisions += a.protocol_errors();
  }
  const std::size_t responses = net->config_module().responses().size();
  EXPECT_GE(responses + collisions, 1u);
}

// --- Deterministic link faults + watchdog ------------------------------------

sim::FaultPlan plan_from(const std::string& text) {
  sim::FaultPlan plan;
  std::string err;
  EXPECT_TRUE(sim::FaultPlan::parse_text(text, &plan, &err)) << err;
  return plan;
}

TEST_F(NetFixture, WatchdogRetriesDroppedResponse) {
  // Drop the first response word anywhere on the tree: the module's
  // watchdog must time out, re-send the read, and complete on the retry.
  sim::FaultInjector injector(kernel, "fault", plan_from("drop cfg_resp 0"));
  net->attach_fault_lines(injector);

  const std::uint16_t ni_id = net->cfg_ids().at(mesh.ni(1, 0));
  net->config_module().enqueue_packet(encode_read_credit(ni_id, 0), false,
                                      /*expects_response=*/true);
  const sim::Cycle done = net->run_config();
  ASSERT_NE(done, sim::kNoCycle);

  EXPECT_EQ(net->config_module().timeouts(), 1u);
  EXPECT_EQ(net->config_module().retries(), 1u);
  EXPECT_EQ(net->config_module().aborted(), 0u);
  ASSERT_EQ(net->config_module().responses().size(), 1u);
  EXPECT_EQ(injector.counters(sim::FaultClass::kCfgResp).dropped, 1u);
}

TEST_F(NetFixture, ExhaustedRetriesAbortWithCounters) {
  // Kill the response path outright: every attempt times out, the module
  // aborts the request after max_retries and the stream still converges
  // (no deadlock), with the failure visible in the counters.
  sim::FaultInjector injector(kernel, "fault", plan_from("kill cfg_resp 0 1000000"));
  net->attach_fault_lines(injector);

  const std::uint16_t ni_id = net->cfg_ids().at(mesh.ni(1, 0));
  net->config_module().enqueue_packet(encode_read_credit(ni_id, 0), false,
                                      /*expects_response=*/true);
  const sim::Cycle done = net->run_config();
  ASSERT_NE(done, sim::kNoCycle);

  const auto& m = net->config_module();
  EXPECT_EQ(m.retries(), 3u);            // default max_retries
  EXPECT_EQ(m.timeouts(), 4u);           // original + each retry timed out
  EXPECT_EQ(m.aborted(), 1u);
  EXPECT_TRUE(m.responses().empty());
  EXPECT_GT(injector.counters(sim::FaultClass::kCfgResp).killed, 0u);
}

TEST_F(NetFixture, DataBitFlipChangesWordsNotSchedule) {
  // A single-event upset on a data link corrupts the payload word but must
  // not change how many words arrive or where they go.
  alloc::SlotAllocator alloc(mesh.topo, net->options().tdm);
  alloc::ChannelSpec spec;
  spec.src_ni = mesh.ni(0, 0);
  spec.dst_nis = {mesh.ni(1, 0)};
  spec.slots_required = 1;
  const auto route = alloc.allocate(spec);
  ASSERT_TRUE(route.has_value());
  net->program_route_direct(*route, 0, {0});

  sim::FaultInjector injector(kernel, "fault", plan_from("flip data 0 3"));
  net->attach_fault_lines(injector);

  Ni& src = net->ni(mesh.ni(0, 0));
  Ni& dst = net->ni(mesh.ni(1, 0));
  src.set_credit_direct(0, 8);
  src.tx_push(0, 0xA5);
  kernel.run(4 * net->options().tdm.wheel_cycles());

  ASSERT_EQ(dst.rx_level(0), 1u);
  const auto got = dst.rx_pop(0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 0xA5u ^ (1u << 3)); // exactly the planned bit differs
  EXPECT_EQ(net->total_router_drops(), 0u);
  EXPECT_EQ(net->total_ni_drops(), 0u);
  EXPECT_EQ(injector.counters(sim::FaultClass::kData).flipped, 1u);
}

TEST(FaultDeterminism, IdenticalSeedAcrossJobCounts) {
  // The same fault seed must produce byte-identical reports regardless of
  // how many worker threads execute the batch (each job owns its injector).
  soc::Scenario sc;
  sc.kind = soc::Scenario::TopologyKind::kMesh;
  sc.width = 3;
  sc.height = 3;
  sc.host = {1, 1};
  sc.run_cycles = 1500;
  soc::Scenario::RawConnection a{"a", {0, 0}, {{2, 2}}, 150.0};
  soc::Scenario::RawConnection b{"b", {2, 0}, {{0, 2}, {0, 0}}, 40.0};
  sc.raw = {a, b};

  const auto run_jobs = [&](std::size_t threads) {
    return sim::parallel_map<analysis::NetworkReport>(4, threads, [&](std::size_t i) {
      soc::RunSpec spec;
      spec.label = "job" + std::to_string(i);
      spec.scenario = sc;
      spec.fault_plan.seed = 7;
      spec.fault_plan.rate = 0.002;
      return soc::run_scenario(spec);
    });
  };
  const auto serial = run_jobs(1);
  const auto parallel = run_jobs(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].to_json().dump(2), parallel[i].to_json().dump(2)) << "job " << i;
    EXPECT_TRUE(serial[i].health.enabled);
    EXPECT_GT(serial[i].health.faults_injected, 0u) << "rate 0.002 should inject on a 1500-cycle run";
  }
}

TEST(OutstandingRead, StrideMatchesReferenceAndNeverCertifiesFixedPoint) {
  // Watchdog off + response path dead: the read stays outstanding forever.
  // The stride scheduler's quiescence fast-forward must not certify a
  // fixed point (the module is waiting, not done): run_config() times out
  // at the same cycle under both schedulers and reports non-convergence.
  sim::Cycle now_at_exit[2] = {0, 0};
  int idx = 0;
  for (sim::Scheduler sched : {sim::Scheduler::kStride, sim::Scheduler::kReference}) {
    topo::Mesh mesh = topo::make_mesh(2, 2);
    sim::Kernel kernel(sched);
    DaeliteNetwork::Options opt;
    opt.tdm = tdm::daelite_params(8);
    opt.cfg_root = mesh.ni(0, 0);
    opt.cfg_watchdog = false; // pre-watchdog behaviour: block forever
    DaeliteNetwork net(kernel, mesh.topo, opt);
    sim::FaultInjector injector(kernel, "fault", plan_from("kill cfg_resp 0 1000000"));
    net.attach_fault_lines(injector);

    net.config_module().enqueue_packet(
        encode_read_credit(net.cfg_ids().at(mesh.ni(1, 0)), 0), false,
        /*expects_response=*/true);
    EXPECT_EQ(net.run_config(5000), sim::kNoCycle) << "scheduler " << idx;
    now_at_exit[idx++] = kernel.now();
  }
  EXPECT_EQ(now_at_exit[0], now_at_exit[1]);
}

} // namespace
