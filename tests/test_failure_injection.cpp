// Failure-injection tests: the model must degrade detectably, never
// silently, under misconfiguration and protocol errors — the counters
// that a bring-up engineer would watch on the real chip.

#include <gtest/gtest.h>

#include "daelite/config.hpp"
#include "daelite/config_host.hpp"
#include "daelite/network.hpp"
#include "alloc/usecase.hpp"
#include "alloc/allocator.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;
using namespace daelite::hw;

struct NetFixture : ::testing::Test {
  topo::Mesh mesh = topo::make_mesh(2, 2);
  sim::Kernel kernel;
  std::unique_ptr<DaeliteNetwork> net;

  void SetUp() override {
    DaeliteNetwork::Options opt;
    opt.tdm = tdm::daelite_params(8);
    opt.cfg_root = mesh.ni(0, 0);
    net = std::make_unique<DaeliteNetwork>(kernel, mesh.topo, opt);
  }

  void run_cfg() { net->run_config(); }
};

TEST_F(NetFixture, UnknownOpcodeCountsProtocolErrors) {
  net->config_module().enqueue_packet({0x55, 0, 0, 0}, false); // 0x55: no such opcode
  run_cfg();
  std::uint64_t errors = 0;
  for (topo::NodeId n = 0; n < mesh.topo.node_count(); ++n) {
    if (mesh.topo.is_router(n)) errors += net->router(n).config_agent().protocol_errors();
  }
  EXPECT_GT(errors, 0u);
  // And nothing was configured.
  for (topo::NodeId n = 0; n < mesh.topo.node_count(); ++n)
    if (mesh.topo.is_router(n)) {
      EXPECT_TRUE(net->router(n).table().empty());
    }
}

TEST_F(NetFixture, PacketForUnknownElementConfiguresNothing) {
  alloc::CfgSegment seg;
  seg.slots_at_head = {3};
  seg.elements = {alloc::CfgElement{0, 0, 1, false, false}};
  CfgIdMap fake{{0, 125}}; // no element has id 125
  net->config_module().enqueue_packet(
      encode_path_packet(seg, net->options().tdm, fake, true), true);
  run_cfg();
  for (topo::NodeId n = 0; n < mesh.topo.node_count(); ++n)
    if (mesh.topo.is_router(n)) {
      EXPECT_TRUE(net->router(n).table().empty());
    }
  EXPECT_EQ(net->total_cfg_errors(), 0u); // well-formed, just not addressed to anyone
}

TEST_F(NetFixture, CreditOpAddressedToRouterCountsError) {
  const std::uint16_t router_id = net->cfg_ids().at(mesh.router(0, 0));
  net->config_module().enqueue_packet(encode_write_credit(router_id, 0, 5), false);
  run_cfg();
  EXPECT_EQ(net->router(mesh.router(0, 0)).stats().cfg_errors, 1u);
}

TEST_F(NetFixture, OutOfRangeQueueCountsNiError) {
  const std::uint16_t ni_id = net->cfg_ids().at(mesh.ni(1, 0));
  net->config_module().enqueue_packet(encode_write_credit(ni_id, 62, 5), false);
  run_cfg();
  EXPECT_EQ(net->ni(mesh.ni(1, 0)).stats().cfg_errors, 1u);
}

TEST_F(NetFixture, MisroutedFlitIsCountedAtTheRouter) {
  // Program only the source NI (no router entries): the flit enters the
  // first router in a slot with no table entry and must be dropped +
  // counted, never silently lost.
  Ni& src = net->ni(mesh.ni(0, 0));
  src.table().set_tx(2, 0);
  src.set_credit_direct(0, 8);
  src.tx_push(0, 0xBAD);
  kernel.run(4 * net->options().tdm.wheel_cycles());
  EXPECT_EQ(net->total_router_drops(), 1u);
}

TEST_F(NetFixture, HalfTornDownPathDropsAtTheGap) {
  // Configure a 2-hop route, then clear only the middle router: traffic
  // must be dropped exactly there.
  alloc::SlotAllocator alloc(mesh.topo, net->options().tdm);
  alloc::ChannelSpec spec;
  spec.src_ni = mesh.ni(0, 0);
  spec.dst_nis = {mesh.ni(1, 0)};
  spec.slots_required = 1;
  const auto route = alloc.allocate(spec);
  ASSERT_TRUE(route.has_value());
  net->program_route_direct(*route, 0, {0});

  // Knock out the second router on the path (the one feeding the dst NI).
  const topo::Link& last = mesh.topo.link(route->edges.back().link);
  ASSERT_TRUE(mesh.topo.is_router(last.src));
  Router& mid = net->router(last.src);
  for (tdm::Slot s = 0; s < 8; ++s)
    for (std::size_t o = 0; o < mid.table().num_outputs(); ++o) mid.table().clear(o, s);

  Ni& src = net->ni(mesh.ni(0, 0));
  src.set_credit_direct(0, 8);
  src.set_flow_ctrl_direct(0, false);
  src.tx_push(0, 1);
  src.tx_push(0, 2);
  kernel.run(8 * net->options().tdm.wheel_cycles());
  EXPECT_EQ(mid.stats().flits_dropped, net->total_router_drops());
  EXPECT_GT(mid.stats().flits_dropped, 0u);
  EXPECT_EQ(net->ni(mesh.ni(1, 0)).rx_level(0), 0u);
}

TEST_F(NetFixture, ConflictingTableEntryIsObservableNotFatal) {
  // Two channels misconfigured onto the same router (output, slot): the
  // hardware forwards per the (single) table entry; the losing channel's
  // flits arrive at the wrong destination queue or are dropped — both
  // observable through stats. Here: NI(0,0) and NI(0,1)... simplest:
  // program a table entry that points at an input with no matching rx
  // mapping downstream.
  Ni& src = net->ni(mesh.ni(0, 0));
  src.table().set_tx(0, 0);
  src.set_credit_direct(0, 8);
  src.set_flow_ctrl_direct(0, false);

  // Route the flit to the dst NI but give the NI no rx entry.
  Router& r00 = net->router(mesh.router(0, 0));
  const topo::Link& in_l = mesh.topo.link(mesh.topo.find_link(mesh.ni(0, 0), mesh.router(0, 0)));
  const topo::Link& out_l = mesh.topo.link(mesh.topo.find_link(mesh.router(0, 0), mesh.ni(0, 0)));
  r00.table().set(out_l.src_port, 1, static_cast<tdm::PortIndex>(in_l.dst_port));

  src.tx_push(0, 7);
  kernel.run(4 * net->options().tdm.wheel_cycles());
  EXPECT_EQ(net->ni(mesh.ni(0, 0)).stats().flits_dropped, 1u);
}

TEST_F(NetFixture, ResponsePathCollisionIsCounted) {
  // Two simultaneous read responses violate the one-outstanding-request
  // protocol; the convergence logic must count the collision.
  const std::uint16_t id_a = net->cfg_ids().at(mesh.ni(1, 0));
  const std::uint16_t id_b = net->cfg_ids().at(mesh.ni(0, 1));
  // Issue two reads back-to-back *without* waiting for responses (abuse
  // the module by marking them as not expecting responses).
  net->config_module().enqueue_packet(encode_read_credit(id_a, 0), false, false);
  net->config_module().enqueue_packet(encode_read_credit(id_b, 0), false, false);
  run_cfg();
  // Allow the responses to climb back up the tree (2 cycles per level).
  kernel.run(4 * net->config_tree().max_depth() + 16);
  // Depending on tree depths the responses may or may not collide; the
  // invariant is that the network never deadlocks and any collision is
  // counted, never silent.
  std::uint64_t collisions = 0;
  for (topo::NodeId n = 0; n < mesh.topo.node_count(); ++n) {
    ConfigAgent& a = mesh.topo.is_router(n) ? net->router(n).config_agent()
                                            : net->ni(n).config_agent();
    collisions += a.protocol_errors();
  }
  const std::size_t responses = net->config_module().responses().size();
  EXPECT_GE(responses + collisions, 1u);
}

} // namespace
