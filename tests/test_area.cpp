// Tests for the structural area model: primitive monotonicity, archetype
// sanity, and reproduction of the paper's Table II reductions within
// tolerance.

#include <gtest/gtest.h>

#include "area/models.hpp"
#include "area/primitives.hpp"
#include "area/table2.hpp"
#include "area/technology.hpp"

namespace {

using namespace daelite::area;

const GeCosts kCosts{};

TEST(Primitives, MuxAndCrossbarScale) {
  EXPECT_EQ(mux_ge(kCosts, 1, 32), 0.0);
  EXPECT_GT(mux_ge(kCosts, 4, 32), mux_ge(kCosts, 2, 32));
  EXPECT_DOUBLE_EQ(crossbar_ge(kCosts, 4, 4, 32), 4 * mux_ge(kCosts, 4, 32));
}

TEST(Primitives, FifoDominatedByStorage) {
  const double f = fifo_ge(kCosts, 16, 32);
  EXPECT_GT(f, kCosts.ff * 16 * 32); // at least the flip-flops
  EXPECT_LT(f, 2.5 * kCosts.ff * 16 * 32);
  EXPECT_EQ(fifo_ge(kCosts, 0, 32), 0.0);
}

TEST(Primitives, TableCheaperThanRegistersPerBit) {
  EXPECT_LT(table_ge(kCosts, 32, 8), regs_ge(kCosts, 32 * 8));
}

TEST(DaeliteModel, RouterScalesWithPortsAndSlots) {
  DaeliteRouterParams small;
  small.in_ports = small.out_ports = 3;
  small.slots = 8;
  DaeliteRouterParams big;
  big.in_ports = big.out_ports = 7;
  big.slots = 32;
  EXPECT_GT(daelite_router_ge(kCosts, big), daelite_router_ge(kCosts, small));
}

TEST(DaeliteModel, NiDominatedByQueues) {
  DaeliteNiParams p;
  const double base = daelite_ni_ge(kCosts, p);
  DaeliteNiParams deep = p;
  deep.queue_depth *= 2;
  EXPECT_GT(daelite_ni_ge(kCosts, deep), 1.7 * base / 2.0 * 2.0 * 0.5); // grows
  EXPECT_GT(daelite_ni_ge(kCosts, deep) / base, 1.5); // queues dominate
}

TEST(DaeliteModel, RouterMuchSmallerThanVcRouter) {
  // The headline architectural claim: no buffers, no arbitration.
  DaeliteRouterParams d;
  d.in_ports = d.out_ports = 5;
  d.slots = 16;
  VcRouterParams v;
  v.ports = 5;
  v.vcs = 4;
  v.vc_depth = 2;
  EXPECT_LT(daelite_router_ge(kCosts, d), 0.4 * vc_router_ge(kCosts, v));
}

TEST(AeliteModel, RouterLargerThanDaeliteAtSameArity) {
  // Extra pipeline stage + header handling outweigh the slot table at
  // moderate slot counts.
  DaeliteRouterParams d;
  d.in_ports = d.out_ports = 5;
  d.slots = 16;
  AeliteRouterParams a;
  a.in_ports = a.out_ports = 5;
  EXPECT_GT(aelite_router_ge(kCosts, a), daelite_router_ge(kCosts, d));
}

TEST(Technology, DensityImprovesWithNode) {
  EXPECT_GT(um2_per_ge(TechNode::k130nm), um2_per_ge(TechNode::k90nm));
  EXPECT_GT(um2_per_ge(TechNode::k90nm), um2_per_ge(TechNode::k65nm));
}

TEST(Technology, FrequencyModelMatchesPaperAnchor) {
  const FrequencyRow f = build_frequency_row();
  EXPECT_NEAR(f.daelite_mhz, 925.0, 15.0);
  EXPECT_NEAR(f.aelite_mhz, 885.0, 15.0);
  EXPECT_GT(f.daelite_mhz, f.aelite_mhz);
}

TEST(Table2, EveryRowReproducesPaperReductionWithinTolerance) {
  for (const auto& row : build_router_rows(kCosts)) {
    EXPECT_NEAR(row.computed_reduction(), row.paper_reduction, 0.05)
        << row.competitor << ": computed " << row.computed_reduction() * 100 << "% vs paper "
        << row.paper_reduction * 100 << "%";
  }
}

TEST(Table2, ReductionOrderingMatchesPaper) {
  // Who-wins-by-how-much ordering must hold: packet-switched routers are
  // beaten by far more than circuit/ring designs.
  const auto rows = build_router_rows(kCosts);
  auto find = [&](const std::string& needle) {
    for (const auto& r : rows)
      if (r.competitor.find(needle) != std::string::npos) return r.computed_reduction();
    ADD_FAILURE() << needle << " row missing";
    return 0.0;
  };
  EXPECT_GT(find("Wolkotte packet-switched"), find("Wolkotte circuit-switched"));
  EXPECT_GT(find("MANGO"), find("artNoC"));
  EXPECT_LT(find("Quarc"), find("SPIN"));
}

TEST(Table2, InterconnectReductionNearTenPercent) {
  const auto row = build_interconnect_row(kCosts);
  EXPECT_NEAR(row.computed_reduction(), row.paper_reduction_asic, 0.04);
  EXPECT_GT(row.daelite_slices(), 0.0);
}

TEST(Table2, AreasArePositiveAndPlausible) {
  for (const auto& row : build_router_rows(kCosts)) {
    EXPECT_GT(row.daelite_ge, 1000.0) << row.competitor;
    EXPECT_GT(row.competitor_ge, row.daelite_ge * 0.5) << row.competitor;
    EXPECT_GT(row.competitor_mm2(), 0.0);
    EXPECT_LT(row.competitor_mm2(), 1.0) << row.competitor; // routers are << 1 mm^2
  }
}

} // namespace
