// Unit tests for the aelite router in isolation: header-driven output
// selection, path-code consumption, continuation routing via per-input
// state, orphan and collision accounting.

#include <gtest/gtest.h>

#include "aelite/router.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace daelite;
using namespace daelite::aelite;

/// Drives an AeliteFlit register; clears after one slot unless re-driven.
class FlitStub : public sim::Component {
 public:
  FlitStub(sim::Kernel& k, std::string name, tdm::TdmParams p)
      : sim::Component(k, std::move(name)), params_(p) {
    own(out_);
  }
  const sim::Reg<AeliteFlit>& out() const { return out_; }
  void drive(const AeliteFlit& f) { pending_ = f; }
  void tick() override {
    if (!params_.is_slot_start(now())) return;
    out_.set(pending_);
    pending_ = AeliteFlit{};
  }

 private:
  tdm::TdmParams params_;
  sim::Reg<AeliteFlit> out_;
  AeliteFlit pending_;
};

AeliteFlit header_flit(std::uint8_t out_port, std::uint32_t word) {
  AeliteFlit f;
  f.valid = true;
  f.sop = true;
  f.path.push_hop(out_port);
  f.payload[0] = word;
  f.payload_count = 1;
  return f;
}

AeliteFlit continuation_flit(std::uint32_t word) {
  AeliteFlit f;
  f.valid = true;
  f.sop = false;
  f.payload[0] = word;
  f.payload_count = 1;
  return f;
}

struct AeRouterTest : ::testing::Test {
  tdm::TdmParams params = tdm::aelite_params(4);
  sim::Kernel k;
  FlitStub in0{k, "in0", params};
  FlitStub in1{k, "in1", params};
  Router r{k, "R", 2, 3, params};

  void SetUp() override {
    r.connect_input(0, &in0.out());
    r.connect_input(1, &in1.out());
  }
};

TEST_F(AeRouterTest, HeaderSelectsOutputAndConsumesPathBits) {
  AeliteFlit f = header_flit(2, 0xAA);
  f.path.push_hop(1); // next router's hop: must survive
  in0.drive(f);
  ASSERT_TRUE(k.run_until([&] { return r.output_reg(2).get().valid; }, 40));
  const AeliteFlit out = r.output_reg(2).get();
  EXPECT_TRUE(out.sop);
  EXPECT_EQ(out.payload[0], 0xAAu);
  EXPECT_EQ(out.path.hops, 1);    // one hop consumed
  EXPECT_EQ(out.path.peek(), 1);  // remaining path intact
  EXPECT_EQ(r.stats().header_words, 1u);
}

TEST_F(AeRouterTest, ContinuationFollowsEstablishedRoute) {
  in0.drive(header_flit(1, 1));
  k.run(params.wheel_cycles() / params.num_slots); // one slot
  in0.drive(continuation_flit(2));
  ASSERT_TRUE(k.run_until(
      [&] { return r.output_reg(1).get().valid && !r.output_reg(1).get().sop; }, 60));
  EXPECT_EQ(r.output_reg(1).get().payload[0], 2u);
  EXPECT_EQ(r.stats().orphan_flits, 0u);
}

TEST_F(AeRouterTest, OrphanContinuationCounted) {
  in0.drive(continuation_flit(9)); // no header ever seen on this input
  k.run(2 * params.wheel_cycles());
  EXPECT_EQ(r.stats().orphan_flits, 1u);
  EXPECT_EQ(r.stats().flits_forwarded, 0u);
}

TEST_F(AeRouterTest, CollisionWhenTwoInputsTargetOneOutput) {
  // Schedule violation: both inputs send headers for output 0 in the same
  // slot. One wins, one is counted.
  in0.drive(header_flit(0, 1));
  in1.drive(header_flit(0, 2));
  k.run(2 * params.wheel_cycles());
  EXPECT_EQ(r.stats().collisions, 1u);
  EXPECT_EQ(r.stats().flits_forwarded, 1u);
}

TEST_F(AeRouterTest, DistinctOutputsInSameSlotBothForward) {
  in0.drive(header_flit(0, 1));
  in1.drive(header_flit(2, 2));
  k.run(2 * params.wheel_cycles());
  EXPECT_EQ(r.stats().collisions, 0u);
  EXPECT_EQ(r.stats().flits_forwarded, 2u);
}

TEST_F(AeRouterTest, PerInputRouteStateIsIndependent) {
  in0.drive(header_flit(0, 1));
  in1.drive(header_flit(2, 2));
  k.run(params.wheel_cycles() / params.num_slots);
  in0.drive(continuation_flit(11));
  in1.drive(continuation_flit(22));
  k.run(2 * params.wheel_cycles());
  EXPECT_EQ(r.stats().orphan_flits, 0u);
  EXPECT_EQ(r.stats().flits_forwarded, 4u);
}

} // namespace
