// Tests for the scenario front end: grammar, diagnostics, coordinate
// resolution, and integration with the dimensioning flow.

#include <gtest/gtest.h>

#include <sstream>

#include "alloc/dimension.hpp"
#include "soc/scenario.hpp"

namespace {

using namespace daelite;
using namespace daelite::soc;

std::optional<Scenario> parse(const std::string& text, std::string* err = nullptr) {
  std::istringstream is(text);
  return parse_scenario(is, err);
}

TEST(Scenario, ParsesFullGrammar) {
  auto sc = parse(R"(
# comment line
mesh 3 3
slots 16
clock 400
host 1,1
connection a 0,0 2,2 300 latency 200 resp 50
multicast m 1,1 0,0 2,0 bw 80
run 5000
)");
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->width, 3);
  EXPECT_EQ(sc->height, 3);
  ASSERT_TRUE(sc->slots.has_value());
  EXPECT_EQ(*sc->slots, 16u);
  EXPECT_DOUBLE_EQ(sc->clock_mhz, 400.0);
  EXPECT_EQ(sc->host, (std::pair<int, int>{1, 1}));
  EXPECT_EQ(sc->run_cycles, 5000u);
  ASSERT_EQ(sc->raw.size(), 2u);
  EXPECT_EQ(sc->raw[0].name, "a");
  EXPECT_DOUBLE_EQ(sc->raw[0].bandwidth, 300.0);
  EXPECT_DOUBLE_EQ(sc->raw[0].max_latency_ns, 200.0);
  EXPECT_DOUBLE_EQ(sc->raw[0].response_bandwidth, 50.0);
  EXPECT_EQ(sc->raw[1].dsts.size(), 2u);
}

TEST(Scenario, DefaultsWhenDirectivesOmitted) {
  auto sc = parse("mesh 2 2\nconnection a 0,0 1,1 100\n");
  ASSERT_TRUE(sc.has_value());
  EXPECT_FALSE(sc->slots.has_value()); // dimensioning will search
  EXPECT_DOUBLE_EQ(sc->clock_mhz, 500.0);
  EXPECT_EQ(sc->run_cycles, 10000u);
}

TEST(Scenario, RingAndTorus) {
  auto ring = parse("ring 6\nconnection a 0,0 3,0 100\n");
  ASSERT_TRUE(ring.has_value());
  EXPECT_EQ(ring->kind, Scenario::TopologyKind::kRing);

  auto torus = parse("mesh 4 4 torus\nconnection a 0,0 3,3 100\n");
  ASSERT_TRUE(torus.has_value());
  EXPECT_EQ(torus->kind, Scenario::TopologyKind::kTorus);
}

TEST(Scenario, DiagnosticsCarryLineNumbers) {
  std::string err;
  EXPECT_FALSE(parse("mesh 2 2\nbogus 1 2\n", &err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos);
  EXPECT_NE(err.find("bogus"), std::string::npos);

  EXPECT_FALSE(parse("mesh 2\n", &err).has_value());
  EXPECT_NE(err.find("line 1"), std::string::npos);

  EXPECT_FALSE(parse("mesh 2 2\nconnection a 0,0 1,1 100 latency\n", &err).has_value());
  EXPECT_NE(err.find("needs a value"), std::string::npos);

  EXPECT_FALSE(parse("mesh 2 2\nmulticast m 0,0 1,1 bw 50\n", &err).has_value());
  EXPECT_NE(err.find("at least 2"), std::string::npos);

  EXPECT_FALSE(parse("mesh 2 2\n", &err).has_value()); // no connections
  EXPECT_NE(err.find("no connections"), std::string::npos);
}

TEST(Scenario, BuildResolvesCoordinatesToNis) {
  auto sc = parse("mesh 3 3\nconnection a 0,0 2,1 100\n");
  ASSERT_TRUE(sc.has_value());
  const topo::Mesh mesh = sc->build();
  ASSERT_EQ(sc->connections.size(), 1u);
  EXPECT_EQ(sc->connections[0].src_ni, mesh.ni(0, 0));
  EXPECT_EQ(sc->connections[0].dst_nis[0], mesh.ni(2, 1));
}

TEST(Scenario, EndToEndThroughDimensioning) {
  auto sc = parse(R"(
mesh 3 3
clock 500
connection a 0,0 2,2 400
connection b 2,0 0,2 250 resp 60
)");
  ASSERT_TRUE(sc.has_value());
  topo::Mesh mesh = sc->build();
  const alloc::NocClocking clk{sc->clock_mhz, 4};
  auto dim = alloc::dimension_network(mesh.topo, sc->connections, clk);
  ASSERT_TRUE(dim.has_value());
  EXPECT_GE(dim->connections[0].achieved_mbytes_per_s, 400.0);
  EXPECT_GE(dim->connections[1].achieved_mbytes_per_s, 250.0);
}

} // namespace
