// Unit tests for TDM parameters, slot arithmetic, slot tables and the
// global schedule.

#include <gtest/gtest.h>

#include "tdm/flit.hpp"
#include "tdm/params.hpp"
#include "tdm/schedule.hpp"
#include "tdm/slot_table.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite::tdm;

TEST(TdmParams, DaeliteDefaultsValid) {
  const TdmParams p = daelite_params(8);
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.words_per_slot, 2u);
  EXPECT_EQ(p.hop_cycles, 2u);
  EXPECT_EQ(p.slot_shift_per_hop(), 1u);
  EXPECT_EQ(p.wheel_cycles(), 16u);
}

TEST(TdmParams, AeliteDefaultsValid) {
  const TdmParams p = aelite_params(16);
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.slot_shift_per_hop(), 1u);
  EXPECT_EQ(p.wheel_cycles(), 48u);
}

TEST(TdmParams, SingleWordSlotsShiftByTwo) {
  const TdmParams p{8, 1, 2};
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.slot_shift_per_hop(), 2u);
}

TEST(TdmParams, InvalidWhenWordsDontDivideHop) {
  const TdmParams p{8, 3, 2};
  EXPECT_FALSE(p.valid());
}

TEST(TdmParams, SlotCountBoundedBySlotMaskWidth) {
  // Regression: slot masks are uint64_t and slot s is addressed as
  // 1ull << s, so num_slots > 64 is undefined behaviour downstream.
  // valid() must reject it at the parameter level.
  EXPECT_TRUE((TdmParams{TdmParams::kMaxSlots, 2, 2}.valid()));
  EXPECT_FALSE((TdmParams{TdmParams::kMaxSlots + 1, 2, 2}.valid()));
  EXPECT_FALSE((TdmParams{128, 2, 2}.valid()));
  EXPECT_FALSE((TdmParams{0, 2, 2}.valid()));
}

TEST(TdmParams, SlotOfCycle) {
  const TdmParams p = daelite_params(4); // wheel = 8 cycles
  EXPECT_EQ(p.slot_of_cycle(0), 0u);
  EXPECT_EQ(p.slot_of_cycle(1), 0u);
  EXPECT_EQ(p.slot_of_cycle(2), 1u);
  EXPECT_EQ(p.slot_of_cycle(7), 3u);
  EXPECT_EQ(p.slot_of_cycle(8), 0u); // wraps
  EXPECT_TRUE(p.is_slot_start(6));
  EXPECT_FALSE(p.is_slot_start(7));
}

TEST(TdmParams, SlotAtLinkWrapsAroundWheel) {
  const TdmParams p = daelite_params(8);
  EXPECT_EQ(p.slot_at_link(7, 0), 7u);
  EXPECT_EQ(p.slot_at_link(7, 1), 0u);
  EXPECT_EQ(p.slot_at_link(3, 10), (3u + 10u) % 8u);
}

TEST(TdmParams, InjectSlotForInvertsSlotAtLink) {
  const TdmParams p = daelite_params(8);
  for (Slot q = 0; q < 8; ++q)
    for (std::size_t k = 0; k < 12; ++k)
      EXPECT_EQ(p.inject_slot_for(p.slot_at_link(q, k), k), q);
}

TEST(Flit, MaxCreditPerSlot) {
  EXPECT_EQ(max_credit_per_slot(1), 7u);    // 3 wires * 1 cycle
  EXPECT_EQ(max_credit_per_slot(2), 63u);   // 6-bit value, as in the paper
  EXPECT_EQ(max_credit_per_slot(3), 511u);
}

TEST(RouterSlotTable, SetClearAndCount) {
  RouterSlotTable t(4, 8);
  EXPECT_TRUE(t.empty());
  t.set(2, 5, 1);
  EXPECT_EQ(t.input_for(2, 5), 1);
  EXPECT_EQ(t.input_for(2, 4), kUnusedPort);
  EXPECT_EQ(t.used_entries(), 1u);
  t.clear(2, 5);
  EXPECT_TRUE(t.empty());
}

TEST(RouterSlotTable, MulticastTwoOutputsSameInput) {
  RouterSlotTable t(4, 8);
  t.set(0, 3, 2);
  t.set(1, 3, 2);
  EXPECT_EQ(t.input_for(0, 3), 2);
  EXPECT_EQ(t.input_for(1, 3), 2);
  EXPECT_EQ(t.used_entries(), 2u);
}

TEST(NiSlotTable, TxRxIndependent) {
  NiSlotTable t(8);
  t.set_tx(1, 7);
  t.set_rx(1, 9);
  EXPECT_EQ(t.tx_channel(1), 7u);
  EXPECT_EQ(t.rx_channel(1), 9u);
  EXPECT_EQ(t.tx_channel(2), kNoChannel);
  EXPECT_EQ(t.tx_slot_count(7), 1u);
  EXPECT_EQ(t.rx_slot_count(9), 1u);
}

TEST(NiSlotTable, ClearChannelRemovesAllEntries) {
  NiSlotTable t(8);
  t.set_tx(0, 5);
  t.set_tx(4, 5);
  t.set_rx(2, 5);
  t.set_tx(6, 6);
  t.clear_channel(5);
  EXPECT_EQ(t.tx_slot_count(5), 0u);
  EXPECT_EQ(t.rx_slot_count(5), 0u);
  EXPECT_EQ(t.tx_channel(6), 6u); // untouched
}

TEST(Schedule, ReserveAndRelease) {
  Schedule s(10, daelite_params(8));
  EXPECT_TRUE(s.is_free(3, 4));
  EXPECT_TRUE(s.reserve(3, 4, 1));
  EXPECT_EQ(s.owner(3, 4), 1u);
  EXPECT_FALSE(s.reserve(3, 4, 2)); // conflict
  EXPECT_TRUE(s.reserve(3, 4, 1));  // idempotent for same channel
  s.release(3, 4);
  EXPECT_TRUE(s.is_free(3, 4));
}

TEST(Schedule, ReleaseChannelFreesEverything) {
  Schedule s(4, daelite_params(8));
  s.reserve(0, 0, 7);
  s.reserve(1, 1, 7);
  s.reserve(2, 2, 8);
  EXPECT_EQ(s.release_channel(7), 2u);
  EXPECT_TRUE(s.is_free(0, 0));
  EXPECT_TRUE(s.is_free(1, 1));
  EXPECT_EQ(s.owner(2, 2), 8u);
}

TEST(Schedule, UtilizationAndPerLinkCounts) {
  Schedule s(2, daelite_params(8)); // 16 (link, slot) pairs
  s.reserve(0, 0, 1);
  s.reserve(0, 1, 1);
  s.reserve(1, 0, 2);
  EXPECT_DOUBLE_EQ(s.utilization(), 3.0 / 16.0);
  EXPECT_EQ(s.reserved_on_link(0), 2u);
  EXPECT_EQ(s.reserved_on_link(1), 1u);
  EXPECT_EQ(s.reservations_of(1), 2u);
}

// Property sweep: inject_slot_for o slot_at_link == identity across
// parameter combinations that satisfy the divisibility constraint.
class TdmParamSweep : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(TdmParamSweep, SlotArithmeticRoundTrips) {
  const auto [slots, words] = GetParam();
  const TdmParams p{slots, words, 2 * words}; // hop = 2 slots worth? no: 2*words cycles
  ASSERT_TRUE(p.valid());
  for (Slot q = 0; q < slots; ++q) {
    for (std::size_t k = 0; k < 3 * slots; ++k) {
      const Slot at = p.slot_at_link(q, k);
      ASSERT_LT(at, slots);
      ASSERT_EQ(p.inject_slot_for(at, k), q);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, TdmParamSweep,
                         ::testing::Combine(::testing::Values(4u, 8u, 16u, 32u),
                                            ::testing::Values(1u, 2u, 4u)));

} // namespace
