// daelite_churn — drive the online allocation service (alloc/churn.hpp)
// with an open-loop set-up / tear-down / modify stream and emit a
// deterministic JSON report.
//
//   daelite_churn [options]
//   --mesh WxH[t]      topology (t = torus), default 8x8
//   --slots S          TDM wheel size, default 32
//   --requests N       operations to field, default 100000
//   --seed X           workload seed, default 1
//   --arrival-rate R   set-ups per simulated cycle, default 0.001
//   --hold C           mean connection lifetime in cycles, default 200000
//   --modify-frac F    fraction of arrivals that modify, default 0.1
//   --multicast-frac F fraction of set-ups with >1 destination, default 0.1
//   --min-slots / --max-slots   requested bandwidth range, default 1..4
//   --max-hops H       admission: longest admissible route (0 = none)
//   --max-latency C    admission: worst-case latency bound (0 = none)
//   --max-util U       admission: refuse set-ups past this utilization
//   --mode M           incremental | scratch | both (default incremental);
//                      `both` replays the same stream against a fresh
//                      from-scratch allocator and fails (exit 1) unless the
//                      decision digests match — the equivalence oracle.
//   --json PATH        write the report document to PATH
//   --quick            small preset (4x4, 5000 requests) for CI smoke
//   --quiet            suppress the text summary
//
// The report contains no wall-clock data: the same invocation is
// byte-identical run to run (CI pins this with cmp), and identical
// between --mode incremental and --mode scratch.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "alloc/churn.hpp"
#include "sim/json.hpp"
#include "cli_parse.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;

int usage() {
  std::cerr << "usage: daelite_churn [--mesh WxH[t]] [--slots S] [--requests N] [--seed X]\n"
               "                     [--arrival-rate R] [--hold C] [--modify-frac F]\n"
               "                     [--multicast-frac F] [--min-slots A] [--max-slots B]\n"
               "                     [--max-hops H] [--max-latency C] [--max-util U]\n"
               "                     [--mode incremental|scratch|both] [--json PATH]\n"
               "                     [--quick] [--quiet]\n";
  return 2;
}

struct MeshSpec {
  int w = 8, h = 8;
  bool torus = false;
};

bool parse_mesh(const std::string& spec, MeshSpec* out) {
  std::string dims = spec;
  out->torus = false;
  if (!dims.empty() && (dims.back() == 't' || dims.back() == 'T')) {
    out->torus = true;
    dims.pop_back();
  }
  const auto x = dims.find('x');
  return x != std::string::npos &&
         tools::parse_int(std::string_view(dims).substr(0, x), &out->w) &&
         tools::parse_int(std::string_view(dims).substr(x + 1), &out->h) && out->w >= 2 &&
         out->h >= 2;
}

sim::JsonValue report_to_json(const alloc::ChurnReport& r) {
  sim::JsonValue doc = sim::JsonValue::object();
  sim::JsonValue m = sim::JsonValue::object();
  m["setups"] = r.metrics.setups.value();
  m["admitted"] = r.metrics.admitted.value();
  m["rejected_admission"] = r.metrics.rejected_admission.value();
  m["rejected_no_route"] = r.metrics.rejected_no_route.value();
  m["rejected_fragmentation"] = r.metrics.rejected_fragmentation.value();
  m["teardowns"] = r.metrics.teardowns.value();
  m["modifies"] = r.metrics.modifies.value();
  m["modify_failed_restored"] = r.metrics.modify_failed_restored.value();
  m["rollback_failures"] = r.metrics.rollback_failures.value();
  m["utilization"] = to_json(r.metrics.utilization);
  m["fragmentation"] = to_json(r.metrics.fragmentation);
  m["admitted_hops"] = to_json(r.metrics.admitted_hops);
  doc["metrics"] = m;
  // Hex so the digest survives JSON number-precision round trips.
  char digest[19];
  std::snprintf(digest, sizeof digest, "0x%016llx",
                static_cast<unsigned long long>(r.decision_digest));
  doc["decision_digest"] = std::string(digest);
  doc["final_utilization"] = r.final_utilization;
  doc["final_live"] = static_cast<std::uint64_t>(r.final_live);
  doc["channel_id_watermark"] = static_cast<std::uint64_t>(r.channel_id_watermark);
  sim::JsonValue timeline = sim::JsonValue::array();
  for (const alloc::FragSample& s : r.frag_timeline) {
    sim::JsonValue e = sim::JsonValue::object();
    e["at_request"] = s.at_request;
    e["utilization"] = s.utilization;
    e["fragmentation"] = s.fragmentation;
    timeline.push_back(std::move(e));
  }
  doc["frag_timeline"] = std::move(timeline);
  return doc;
}

} // namespace

int main(int argc, char** argv) {
  MeshSpec mesh;
  std::uint32_t slots = 32;
  alloc::ChurnRunOptions run;
  alloc::AdmissionControl admission;
  std::string mode = "incremental";
  std::string json_path;
  bool quick = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "daelite_churn: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    const auto bad_value = [](const char* flag, const char* what, const char* got) {
      std::cerr << "daelite_churn: " << flag << " wants " << what << ", got '" << got << "'\n";
      return 2;
    };
    if (std::strcmp(argv[i], "--mesh") == 0) {
      const char* v = need("--mesh");
      if (!v) return usage();
      if (!parse_mesh(v, &mesh)) return bad_value("--mesh", "WxH[t] with W,H >= 2", v);
    } else if (std::strcmp(argv[i], "--slots") == 0) {
      const char* v = need("--slots");
      if (!v) return usage();
      if (!tools::parse_int(v, &slots) || slots == 0 || slots > tdm::TdmParams::kMaxSlots)
        return bad_value("--slots", "an integer in [1,64]", v);
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      const char* v = need("--requests");
      if (!v) return usage();
      if (!tools::parse_int(v, &run.requests)) return bad_value("--requests", "an integer", v);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = need("--seed");
      if (!v) return usage();
      if (!tools::parse_int(v, &run.workload.seed)) return bad_value("--seed", "an integer", v);
    } else if (std::strcmp(argv[i], "--arrival-rate") == 0) {
      const char* v = need("--arrival-rate");
      if (!v) return usage();
      if (!tools::parse_double(v, &run.workload.arrival_rate) || run.workload.arrival_rate <= 0.0)
        return bad_value("--arrival-rate", "a positive number", v);
    } else if (std::strcmp(argv[i], "--hold") == 0) {
      const char* v = need("--hold");
      if (!v) return usage();
      if (!tools::parse_double(v, &run.workload.mean_hold_cycles) ||
          run.workload.mean_hold_cycles <= 0.0)
        return bad_value("--hold", "a positive number", v);
    } else if (std::strcmp(argv[i], "--modify-frac") == 0) {
      const char* v = need("--modify-frac");
      if (!v) return usage();
      if (!tools::parse_double(v, &run.workload.modify_fraction) ||
          run.workload.modify_fraction < 0.0 || run.workload.modify_fraction > 1.0)
        return bad_value("--modify-frac", "a number in [0,1]", v);
    } else if (std::strcmp(argv[i], "--multicast-frac") == 0) {
      const char* v = need("--multicast-frac");
      if (!v) return usage();
      if (!tools::parse_double(v, &run.workload.multicast_fraction) ||
          run.workload.multicast_fraction < 0.0 || run.workload.multicast_fraction > 1.0)
        return bad_value("--multicast-frac", "a number in [0,1]", v);
    } else if (std::strcmp(argv[i], "--min-slots") == 0) {
      const char* v = need("--min-slots");
      if (!v) return usage();
      if (!tools::parse_int(v, &run.workload.min_slots) || run.workload.min_slots == 0)
        return bad_value("--min-slots", "a positive integer", v);
    } else if (std::strcmp(argv[i], "--max-slots") == 0) {
      const char* v = need("--max-slots");
      if (!v) return usage();
      if (!tools::parse_int(v, &run.workload.max_slots) || run.workload.max_slots == 0)
        return bad_value("--max-slots", "a positive integer", v);
    } else if (std::strcmp(argv[i], "--max-hops") == 0) {
      const char* v = need("--max-hops");
      if (!v) return usage();
      if (!tools::parse_int(v, &admission.max_path_hops)) return bad_value("--max-hops", "an integer", v);
    } else if (std::strcmp(argv[i], "--max-latency") == 0) {
      const char* v = need("--max-latency");
      if (!v) return usage();
      if (!tools::parse_int(v, &admission.max_latency_cycles))
        return bad_value("--max-latency", "an integer", v);
    } else if (std::strcmp(argv[i], "--max-util") == 0) {
      const char* v = need("--max-util");
      if (!v) return usage();
      if (!tools::parse_double(v, &admission.max_utilization) || admission.max_utilization <= 0.0 ||
          admission.max_utilization > 1.0)
        return bad_value("--max-util", "a number in (0,1]", v);
    } else if (std::strcmp(argv[i], "--mode") == 0) {
      const char* v = need("--mode");
      if (!v) return usage();
      mode = v;
      if (mode != "incremental" && mode != "scratch" && mode != "both")
        return bad_value("--mode", "incremental|scratch|both", v);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = need("--json");
      if (!v) return usage();
      json_path = v;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::cerr << "daelite_churn: unknown argument '" << argv[i] << "'\n";
      return usage();
    }
  }
  if (run.workload.min_slots > run.workload.max_slots) {
    std::cerr << "daelite_churn: --min-slots must be <= --max-slots\n";
    return 2;
  }
  if (quick) {
    mesh = {4, 4, false};
    run.requests = 5000;
    run.fragmentation_samples = 16;
  }
  run.admission = admission;

  const topo::Mesh m = topo::make_mesh(mesh.w, mesh.h, 1, mesh.torus);
  const tdm::TdmParams params = tdm::daelite_params(slots);

  const auto run_mode = [&](bool incremental) {
    alloc::AllocatorOptions ao;
    ao.incremental = incremental;
    alloc::SlotAllocator sa(m.topo, params, ao);
    return alloc::run_churn(sa, run);
  };

  alloc::ChurnReport report = run_mode(mode != "scratch");
  if (mode == "both") {
    const alloc::ChurnReport scratch = run_mode(false);
    if (scratch.decision_digest != report.decision_digest) {
      std::cerr << "daelite_churn: decision digest mismatch between incremental and scratch "
                   "allocators — the modes are supposed to be decision-identical\n";
      return 1;
    }
  }

  if (!quiet) {
    const auto& mm = report.metrics;
    std::cout << "churn: " << run.requests << " ops on " << mesh.w << "x" << mesh.h
              << (mesh.torus ? " torus" : " mesh") << ", " << slots << " slots, mode " << mode
              << "\n  setups " << mm.setups.value() << " (admitted " << mm.admitted.value()
              << ", admission-reject " << mm.rejected_admission.value() << ", no-route "
              << mm.rejected_no_route.value() << " of which fragmentation "
              << mm.rejected_fragmentation.value() << ")\n  teardowns " << mm.teardowns.value()
              << ", modifies " << mm.modifies.value() << " (restored-after-failure "
              << mm.modify_failed_restored.value() << ", rollback failures "
              << mm.rollback_failures.value() << ")\n  final util " << report.final_utilization
              << ", live " << report.final_live << ", id watermark "
              << report.channel_id_watermark << ", fragmentation last "
              << mm.fragmentation.last() << " mean " << mm.fragmentation.mean() << "\n";
  }

  if (!json_path.empty()) {
    sim::JsonValue doc = report_to_json(report);
    doc["tool"] = "daelite_churn";
    doc["mode"] = mode;
    doc["requests"] = run.requests;
    doc["seed"] = run.workload.seed;
    doc["slots"] = slots;
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "daelite_churn: cannot open " << json_path << "\n";
      return 1;
    }
    os << doc.dump(2) << "\n";
  }
  return 0;
}
