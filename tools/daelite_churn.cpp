// daelite_churn — drive the online allocation service (alloc/churn.hpp)
// with an open-loop set-up / tear-down / modify stream and emit a
// deterministic JSON report.
//
//   daelite_churn [options]
//   --mesh WxH[t]      topology (t = torus), default 8x8
//   --slots S          TDM wheel size, default 32
//   --requests N       operations to field, default 100000
//   --seed X           workload seed, default 1
//   --arrival-rate R   set-ups per simulated cycle, default 0.001
//   --hold C           mean connection lifetime in cycles, default 200000
//   --modify-frac F    fraction of arrivals that modify, default 0.1
//   --multicast-frac F fraction of set-ups with >1 destination, default 0.1
//   --min-slots / --max-slots   requested bandwidth range, default 1..4
//   --max-hops H       admission: longest admissible route (0 = none)
//   --max-latency C    admission: worst-case latency bound (0 = none)
//   --max-util U       admission: refuse set-ups past this utilization
//   --mode M           incremental | scratch | both (default incremental);
//                      `both` replays the same stream against a fresh
//                      from-scratch allocator and fails (exit 1) unless the
//                      decision digests match — the equivalence oracle.
//   --json PATH        write the report document to PATH
//   --quick            small preset (4x4, 5000 requests) for CI smoke
//   --quiet            suppress the text summary
//
// QoS / graceful-degradation options (any of these marks the report
// qos_enabled and adds the per-class sections):
//   --gt-frac F        fraction of set-ups that are guaranteed, default 0
//   --be-frac F        fraction of set-ups that are best-effort, default 0
//   --preempt          guaranteed set-ups may preempt best-effort victims
//   --quota C:N[:U]    per-class quota (C = guaranteed|standard|best_effort,
//                      N = max live, 0 = unbounded; U = max utilization);
//                      repeatable, one class per flag
//   --overload         arm the bounded retry queue for rejected set-ups
//   --pending N        retry-queue capacity, default 64
//   --max-attempts N   total tries per set-up including the first, default 3
//   --backoff C        first retry delay in cycles, default 2000
//   --jitter F         uniform extra fraction of the delay, default 0.5
//   --compact-every N  background compaction pass every N requests (0 = off)
//   --compact-moves N  move budget per compaction pass, default 256
//   --quarantine A:L   quarantine link L before request index A; repeatable.
//                      `--quarantine A:clear` clears the whole set at A.
//
// The report contains no wall-clock data: the same invocation is
// byte-identical run to run (CI pins this with cmp), and identical
// between --mode incremental and --mode scratch.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "alloc/churn.hpp"
#include "sim/json.hpp"
#include "cli_parse.hpp"
#include "topology/generators.hpp"

namespace {

using namespace daelite;

int usage() {
  std::cerr << "usage: daelite_churn [--mesh WxH[t]] [--slots S] [--requests N] [--seed X]\n"
               "                     [--arrival-rate R] [--hold C] [--modify-frac F]\n"
               "                     [--multicast-frac F] [--min-slots A] [--max-slots B]\n"
               "                     [--max-hops H] [--max-latency C] [--max-util U]\n"
               "                     [--mode incremental|scratch|both] [--json PATH]\n"
               "                     [--gt-frac F] [--be-frac F] [--preempt] [--quota C:N[:U]]\n"
               "                     [--overload] [--pending N] [--max-attempts N]\n"
               "                     [--backoff C] [--jitter F]\n"
               "                     [--compact-every N] [--compact-moves N]\n"
               "                     [--quarantine A:L | --quarantine A:clear]\n"
               "                     [--quick] [--quiet]\n";
  return 2;
}

struct MeshSpec {
  int w = 8, h = 8;
  bool torus = false;
};

bool parse_class(std::string_view token, alloc::ServiceClass* out) {
  if (token == "guaranteed") {
    *out = alloc::ServiceClass::kGuaranteed;
  } else if (token == "standard") {
    *out = alloc::ServiceClass::kStandard;
  } else if (token == "best_effort") {
    *out = alloc::ServiceClass::kBestEffort;
  } else {
    return false;
  }
  return true;
}

/// `C:N[:U]` — class, max live, optional max utilization.
bool parse_quota(const std::string& spec, alloc::AdmissionControl* admission) {
  const auto c1 = spec.find(':');
  if (c1 == std::string::npos) return false;
  alloc::ServiceClass cls;
  if (!parse_class(std::string_view(spec).substr(0, c1), &cls)) return false;
  const auto c2 = spec.find(':', c1 + 1);
  auto& q = admission->quota[static_cast<std::size_t>(cls)];
  if (!tools::parse_int(std::string_view(spec).substr(c1 + 1, c2 == std::string::npos
                                                                  ? std::string::npos
                                                                  : c2 - c1 - 1),
                        &q.max_live))
    return false;
  if (c2 != std::string::npos) {
    if (!tools::parse_double(std::string_view(spec).substr(c2 + 1), &q.max_utilization) ||
        q.max_utilization <= 0.0 || q.max_utilization > 1.0)
      return false;
  }
  return true;
}

/// `A:L` (quarantine link L before request A) or `A:clear`.
bool parse_quarantine(const std::string& spec, alloc::QuarantineEvent* out) {
  const auto c = spec.find(':');
  if (c == std::string::npos) return false;
  if (!tools::parse_int(std::string_view(spec).substr(0, c), &out->at_request)) return false;
  const std::string_view rest = std::string_view(spec).substr(c + 1);
  if (rest == "clear") {
    out->clear = true;
    out->link = 0;
    return true;
  }
  out->clear = false;
  return tools::parse_int(rest, &out->link);
}

bool parse_mesh(const std::string& spec, MeshSpec* out) {
  std::string dims = spec;
  out->torus = false;
  if (!dims.empty() && (dims.back() == 't' || dims.back() == 'T')) {
    out->torus = true;
    dims.pop_back();
  }
  const auto x = dims.find('x');
  return x != std::string::npos &&
         tools::parse_int(std::string_view(dims).substr(0, x), &out->w) &&
         tools::parse_int(std::string_view(dims).substr(x + 1), &out->h) && out->w >= 2 &&
         out->h >= 2;
}

sim::JsonValue report_to_json(const alloc::ChurnReport& r) {
  sim::JsonValue doc = sim::JsonValue::object();
  sim::JsonValue m = sim::JsonValue::object();
  m["setups"] = r.metrics.setups.value();
  m["admitted"] = r.metrics.admitted.value();
  m["rejected_admission"] = r.metrics.rejected_admission.value();
  m["rejected_no_route"] = r.metrics.rejected_no_route.value();
  m["rejected_fragmentation"] = r.metrics.rejected_fragmentation.value();
  m["teardowns"] = r.metrics.teardowns.value();
  m["modifies"] = r.metrics.modifies.value();
  m["modify_failed_restored"] = r.metrics.modify_failed_restored.value();
  m["rollback_failures"] = r.metrics.rollback_failures.value();
  m["utilization"] = to_json(r.metrics.utilization);
  m["fragmentation"] = to_json(r.metrics.fragmentation);
  m["admitted_hops"] = to_json(r.metrics.admitted_hops);
  doc["metrics"] = m;
  // Hex so the digest survives JSON number-precision round trips.
  char digest[19];
  std::snprintf(digest, sizeof digest, "0x%016llx",
                static_cast<unsigned long long>(r.decision_digest));
  doc["decision_digest"] = std::string(digest);
  doc["final_utilization"] = r.final_utilization;
  doc["final_live"] = static_cast<std::uint64_t>(r.final_live);
  doc["channel_id_watermark"] = static_cast<std::uint64_t>(r.channel_id_watermark);
  sim::JsonValue timeline = sim::JsonValue::array();
  for (const alloc::FragSample& s : r.frag_timeline) {
    sim::JsonValue e = sim::JsonValue::object();
    e["at_request"] = s.at_request;
    e["utilization"] = s.utilization;
    e["fragmentation"] = s.fragmentation;
    timeline.push_back(std::move(e));
  }
  doc["frag_timeline"] = std::move(timeline);
  // QoS sections only when a QoS feature shaped the run, so legacy
  // invocations keep byte-identical documents.
  if (r.qos_enabled) {
    sim::JsonValue svc = sim::JsonValue::object();
    svc["shed_total"] = r.shed_total;
    svc["retry_attempts"] = r.retry_attempts;
    svc["preempted_connections"] = r.preempted_connections;
    svc["compaction_passes"] = r.compaction_passes;
    svc["compaction_moves"] = r.compaction_moves;
    char cdigest[19];
    std::snprintf(cdigest, sizeof cdigest, "0x%016llx",
                  static_cast<unsigned long long>(r.compaction_digest));
    svc["compaction_digest"] = std::string(cdigest);
    sim::JsonValue classes = sim::JsonValue::object();
    for (std::size_t c = 0; c < alloc::kServiceClassCount; ++c) {
      const alloc::ClassStats& s = r.per_class[c];
      sim::JsonValue jc = sim::JsonValue::object();
      jc["setups"] = s.setups;
      jc["admitted"] = s.admitted;
      jc["rejected_admission"] = s.rejected_admission;
      jc["rejected_no_route"] = s.rejected_no_route;
      jc["shed"] = s.shed;
      jc["retries"] = s.retries;
      jc["preempted"] = s.preempted;
      jc["latency_cycles"] = to_json(s.latency_cycles);
      classes[std::string(alloc::service_class_name(static_cast<alloc::ServiceClass>(c)))] =
          std::move(jc);
    }
    svc["per_class"] = std::move(classes);
    doc["service"] = std::move(svc);
  }
  return doc;
}

} // namespace

int main(int argc, char** argv) {
  MeshSpec mesh;
  std::uint32_t slots = 32;
  alloc::ChurnRunOptions run;
  alloc::AdmissionControl admission;
  std::string mode = "incremental";
  std::string json_path;
  bool quick = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "daelite_churn: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    const auto bad_value = [](const char* flag, const char* what, const char* got) {
      std::cerr << "daelite_churn: " << flag << " wants " << what << ", got '" << got << "'\n";
      return 2;
    };
    if (std::strcmp(argv[i], "--mesh") == 0) {
      const char* v = need("--mesh");
      if (!v) return usage();
      if (!parse_mesh(v, &mesh)) return bad_value("--mesh", "WxH[t] with W,H >= 2", v);
    } else if (std::strcmp(argv[i], "--slots") == 0) {
      const char* v = need("--slots");
      if (!v) return usage();
      if (!tools::parse_int(v, &slots) || slots == 0 || slots > tdm::TdmParams::kMaxSlots)
        return bad_value("--slots", "an integer in [1,64]", v);
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      const char* v = need("--requests");
      if (!v) return usage();
      if (!tools::parse_int(v, &run.requests)) return bad_value("--requests", "an integer", v);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = need("--seed");
      if (!v) return usage();
      if (!tools::parse_int(v, &run.workload.seed)) return bad_value("--seed", "an integer", v);
    } else if (std::strcmp(argv[i], "--arrival-rate") == 0) {
      const char* v = need("--arrival-rate");
      if (!v) return usage();
      if (!tools::parse_double(v, &run.workload.arrival_rate) || run.workload.arrival_rate <= 0.0)
        return bad_value("--arrival-rate", "a positive number", v);
    } else if (std::strcmp(argv[i], "--hold") == 0) {
      const char* v = need("--hold");
      if (!v) return usage();
      if (!tools::parse_double(v, &run.workload.mean_hold_cycles) ||
          run.workload.mean_hold_cycles <= 0.0)
        return bad_value("--hold", "a positive number", v);
    } else if (std::strcmp(argv[i], "--modify-frac") == 0) {
      const char* v = need("--modify-frac");
      if (!v) return usage();
      if (!tools::parse_double(v, &run.workload.modify_fraction) ||
          run.workload.modify_fraction < 0.0 || run.workload.modify_fraction > 1.0)
        return bad_value("--modify-frac", "a number in [0,1]", v);
    } else if (std::strcmp(argv[i], "--multicast-frac") == 0) {
      const char* v = need("--multicast-frac");
      if (!v) return usage();
      if (!tools::parse_double(v, &run.workload.multicast_fraction) ||
          run.workload.multicast_fraction < 0.0 || run.workload.multicast_fraction > 1.0)
        return bad_value("--multicast-frac", "a number in [0,1]", v);
    } else if (std::strcmp(argv[i], "--min-slots") == 0) {
      const char* v = need("--min-slots");
      if (!v) return usage();
      if (!tools::parse_int(v, &run.workload.min_slots) || run.workload.min_slots == 0)
        return bad_value("--min-slots", "a positive integer", v);
    } else if (std::strcmp(argv[i], "--max-slots") == 0) {
      const char* v = need("--max-slots");
      if (!v) return usage();
      if (!tools::parse_int(v, &run.workload.max_slots) || run.workload.max_slots == 0)
        return bad_value("--max-slots", "a positive integer", v);
    } else if (std::strcmp(argv[i], "--max-hops") == 0) {
      const char* v = need("--max-hops");
      if (!v) return usage();
      if (!tools::parse_int(v, &admission.max_path_hops)) return bad_value("--max-hops", "an integer", v);
    } else if (std::strcmp(argv[i], "--max-latency") == 0) {
      const char* v = need("--max-latency");
      if (!v) return usage();
      if (!tools::parse_int(v, &admission.max_latency_cycles))
        return bad_value("--max-latency", "an integer", v);
    } else if (std::strcmp(argv[i], "--max-util") == 0) {
      const char* v = need("--max-util");
      if (!v) return usage();
      if (!tools::parse_double(v, &admission.max_utilization) || admission.max_utilization <= 0.0 ||
          admission.max_utilization > 1.0)
        return bad_value("--max-util", "a number in (0,1]", v);
    } else if (std::strcmp(argv[i], "--gt-frac") == 0) {
      const char* v = need("--gt-frac");
      if (!v) return usage();
      if (!tools::parse_double(v, &run.workload.guaranteed_fraction) ||
          run.workload.guaranteed_fraction < 0.0 || run.workload.guaranteed_fraction > 1.0)
        return bad_value("--gt-frac", "a number in [0,1]", v);
    } else if (std::strcmp(argv[i], "--be-frac") == 0) {
      const char* v = need("--be-frac");
      if (!v) return usage();
      if (!tools::parse_double(v, &run.workload.best_effort_fraction) ||
          run.workload.best_effort_fraction < 0.0 || run.workload.best_effort_fraction > 1.0)
        return bad_value("--be-frac", "a number in [0,1]", v);
    } else if (std::strcmp(argv[i], "--preempt") == 0) {
      admission.preempt_best_effort = true;
    } else if (std::strcmp(argv[i], "--quota") == 0) {
      const char* v = need("--quota");
      if (!v) return usage();
      if (!parse_quota(v, &admission))
        return bad_value("--quota", "guaranteed|standard|best_effort:N[:U]", v);
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      run.overload.enabled = true;
    } else if (std::strcmp(argv[i], "--pending") == 0) {
      const char* v = need("--pending");
      if (!v) return usage();
      if (!tools::parse_int(v, &run.overload.pending_capacity) || run.overload.pending_capacity == 0)
        return bad_value("--pending", "a positive integer", v);
    } else if (std::strcmp(argv[i], "--max-attempts") == 0) {
      const char* v = need("--max-attempts");
      if (!v) return usage();
      if (!tools::parse_int(v, &run.overload.max_attempts) || run.overload.max_attempts == 0)
        return bad_value("--max-attempts", "a positive integer", v);
    } else if (std::strcmp(argv[i], "--backoff") == 0) {
      const char* v = need("--backoff");
      if (!v) return usage();
      if (!tools::parse_double(v, &run.overload.backoff_cycles) || run.overload.backoff_cycles <= 0.0)
        return bad_value("--backoff", "a positive number", v);
    } else if (std::strcmp(argv[i], "--jitter") == 0) {
      const char* v = need("--jitter");
      if (!v) return usage();
      if (!tools::parse_double(v, &run.overload.jitter) || run.overload.jitter < 0.0)
        return bad_value("--jitter", "a number >= 0", v);
    } else if (std::strcmp(argv[i], "--compact-every") == 0) {
      const char* v = need("--compact-every");
      if (!v) return usage();
      if (!tools::parse_int(v, &run.compaction.every)) return bad_value("--compact-every", "an integer", v);
    } else if (std::strcmp(argv[i], "--compact-moves") == 0) {
      const char* v = need("--compact-moves");
      if (!v) return usage();
      if (!tools::parse_int(v, &run.compaction.max_moves) || run.compaction.max_moves == 0)
        return bad_value("--compact-moves", "a positive integer", v);
    } else if (std::strcmp(argv[i], "--quarantine") == 0) {
      const char* v = need("--quarantine");
      if (!v) return usage();
      alloc::QuarantineEvent qe;
      if (!parse_quarantine(v, &qe)) return bad_value("--quarantine", "A:L or A:clear", v);
      run.quarantine_events.push_back(qe);
    } else if (std::strcmp(argv[i], "--mode") == 0) {
      const char* v = need("--mode");
      if (!v) return usage();
      mode = v;
      if (mode != "incremental" && mode != "scratch" && mode != "both")
        return bad_value("--mode", "incremental|scratch|both", v);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = need("--json");
      if (!v) return usage();
      json_path = v;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::cerr << "daelite_churn: unknown argument '" << argv[i] << "'\n";
      return usage();
    }
  }
  if (run.workload.min_slots > run.workload.max_slots) {
    std::cerr << "daelite_churn: --min-slots must be <= --max-slots\n";
    return 2;
  }
  if (run.workload.guaranteed_fraction + run.workload.best_effort_fraction > 1.0) {
    std::cerr << "daelite_churn: --gt-frac + --be-frac must be <= 1\n";
    return 2;
  }
  if (quick) {
    mesh = {4, 4, false};
    run.requests = 5000;
    run.fragmentation_samples = 16;
  }
  run.admission = admission;

  const topo::Mesh m = topo::make_mesh(mesh.w, mesh.h, 1, mesh.torus);
  const tdm::TdmParams params = tdm::daelite_params(slots);

  const auto run_mode = [&](bool incremental) {
    alloc::AllocatorOptions ao;
    ao.incremental = incremental;
    alloc::SlotAllocator sa(m.topo, params, ao);
    return alloc::run_churn(sa, run);
  };

  alloc::ChurnReport report = run_mode(mode != "scratch");
  if (mode == "both") {
    const alloc::ChurnReport scratch = run_mode(false);
    if (scratch.decision_digest != report.decision_digest) {
      std::cerr << "daelite_churn: decision digest mismatch between incremental and scratch "
                   "allocators — the modes are supposed to be decision-identical\n";
      return 1;
    }
  }

  if (!quiet) {
    const auto& mm = report.metrics;
    std::cout << "churn: " << run.requests << " ops on " << mesh.w << "x" << mesh.h
              << (mesh.torus ? " torus" : " mesh") << ", " << slots << " slots, mode " << mode
              << "\n  setups " << mm.setups.value() << " (admitted " << mm.admitted.value()
              << ", admission-reject " << mm.rejected_admission.value() << ", no-route "
              << mm.rejected_no_route.value() << " of which fragmentation "
              << mm.rejected_fragmentation.value() << ")\n  teardowns " << mm.teardowns.value()
              << ", modifies " << mm.modifies.value() << " (restored-after-failure "
              << mm.modify_failed_restored.value() << ", rollback failures "
              << mm.rollback_failures.value() << ")\n  final util " << report.final_utilization
              << ", live " << report.final_live << ", id watermark "
              << report.channel_id_watermark << ", fragmentation last "
              << mm.fragmentation.last() << " mean " << mm.fragmentation.mean() << "\n";
    if (report.qos_enabled) {
      std::cout << "  qos: shed " << report.shed_total << ", retries " << report.retry_attempts
                << ", preempted " << report.preempted_connections << ", compaction "
                << report.compaction_moves << " moves in " << report.compaction_passes
                << " passes\n";
      for (std::size_t c = 0; c < alloc::kServiceClassCount; ++c) {
        const alloc::ClassStats& s = report.per_class[c];
        if (s.setups == 0 && s.admitted == 0 && s.shed == 0 && s.preempted == 0) continue;
        std::cout << "    " << alloc::service_class_name(static_cast<alloc::ServiceClass>(c))
                  << ": setups " << s.setups << ", admitted " << s.admitted
                  << ", admission-reject " << s.rejected_admission << ", no-route "
                  << s.rejected_no_route << ", shed " << s.shed << ", retries " << s.retries
                  << ", preempted " << s.preempted << "\n";
      }
    }
  }

  if (!json_path.empty()) {
    sim::JsonValue doc = report_to_json(report);
    doc["tool"] = "daelite_churn";
    doc["mode"] = mode;
    doc["requests"] = run.requests;
    doc["seed"] = run.workload.seed;
    doc["slots"] = slots;
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "daelite_churn: cannot open " << json_path << "\n";
      return 1;
    }
    os << doc.dump(2) << "\n";
  }
  return 0;
}
