// daelite_batch — parallel batch experiment runner.
//
//   daelite_batch [options] <scenario file>...
//
//   --jobs N           worker threads (default: hardware concurrency)
//   --out FILE         write the JSON results document (default: results.json)
//   --slots A,B,C      sweep wheel sizes: run every scenario once per value
//   --seeds K          sweep allocation-order seeds 1..K (default: one run, seed 0)
//   --mesh WxHs,...    add synthetic corner-stress scenarios on these mesh
//                      sizes (e.g. 3x3,4x4; suffix 't' for torus: 4x4t)
//   --run-cycles C     override the run length of every job
//   --shards N         intra-simulation shard threads per job (default 1);
//                      composes with --jobs — N shard workers inside each
//                      of the concurrently running jobs. Output is
//                      byte-identical at any --shards value (CI diffs it)
//   --soa              batched SoA slot dispatch inside every job
//                      (hw::SlotEngine; stride scheduler only, ignored
//                      under --scheduler reference). Byte-identical output,
//                      like --shards — only wall-clock time changes
//   --recover          arm the self-healing subsystem on every job (dead
//                      links quarantined, connections re-routed mid-run;
//                      reports carry a `recovery` section)
//   --trace DIR        write one Chrome trace_event file per job into DIR
//   --per-connection   print per-job connection latency tables on stderr
//   --list             print the expanded job list and exit
//   --quiet            suppress per-job progress lines on stderr
//
// The cross product of {scenarios + synthetic meshes} x {slots} x {seeds}
// expands into independent jobs, each simulated on its own Kernel by the
// sim::ThreadPool. Job order — and therefore the emitted document — is
// fixed at expansion time, so `--jobs 8` output is byte-identical to
// `--jobs 1` (wall-clock timing goes to stderr only, never into the JSON).
// Exit status: 0 if every job met its contracts, 1 otherwise, 2 on usage
// or spec errors.

#include <cctype>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "sim/json.hpp"
#include "sim/parallel.hpp"
#include "sim/trace_sink.hpp"
#include "soc/runner.hpp"
#include "cli_parse.hpp"

using namespace daelite;

namespace {

int usage() {
  std::cerr
      << "usage: daelite_batch [options] <scenario file>...\n"
         "  --jobs N         worker threads (default: hardware concurrency)\n"
         "  --out FILE       JSON results document (default: results.json)\n"
         "  --slots A,B,C    sweep wheel sizes across every scenario\n"
         "  --seeds K        sweep allocation-order seeds 1..K\n"
         "  --mesh WxH[t],.. add synthetic corner-stress scenarios (t = torus)\n"
         "  --run-cycles C   override run length for every job\n"
         "  --scheduler S    kernel cycle loop: stride (default) | reference\n"
         "  --shards N       shard threads inside every job's simulation\n"
         "  --soa            batched SoA slot dispatch inside every job (stride only)\n"
         "  --trace DIR      one Chrome trace_event file per job in DIR\n"
         "  --fault-seed N   seed for fault injection (with --fault-rate/plan)\n"
         "  --fault-rate R   per-word fault probability in [0,1] on every link\n"
         "  --fault-plan F   fault-plan file (see src/sim/fault.hpp)\n"
         "  --recover        arm the self-healing subsystem on every job\n"
         "  --preempt        let guaranteed repairs preempt best-effort connections\n"
         "  --compact        re-pack non-guaranteed slots after every recovery wave\n"
         "  --watchdog-retries N       config-watchdog retry budget\n"
         "  --watchdog-timeout-mult X  scale on the derived watchdog timeout (> 0)\n"
         "  --per-connection per-job connection latency tables on stderr\n"
         "  --list           print the expanded job list and exit\n"
         "  --quiet          no per-job progress on stderr\n";
  return 2;
}

/// Job label -> file name: anything outside [A-Za-z0-9._-] becomes '_', so
/// "video[slots=16]" maps to the same file at any --jobs value.
std::string trace_file_name(const std::string& label) {
  std::string s = label;
  for (char& c : s)
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' && c != '_' && c != '.')
      c = '_';
  return s + ".trace.json";
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ','))
    if (!tok.empty()) out.push_back(tok);
  return out;
}

std::string base_name(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string b = slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = b.find_last_of('.');
  if (dot != std::string::npos && dot > 0) b = b.substr(0, dot);
  return b;
}

/// Synthetic design-space point: four corner-to-opposite-corner streams
/// plus a centre->corners multicast — enough contention to exercise the
/// allocator at any mesh size (the reduced Table-3-style scaling sweep CI
/// runs).
bool make_stress_scenario(const std::string& spec, soc::Scenario* out, std::string* err) {
  std::string dims = spec;
  bool torus = false;
  if (!dims.empty() && (dims.back() == 't' || dims.back() == 'T')) {
    torus = true;
    dims.pop_back();
  }
  // Strict WxH: both sides must be complete base-10 integers — "4x4garbage"
  // or "4x" is a spec error, not a silently truncated 4x4 run.
  const auto x = dims.find('x');
  int w = 0, h = 0;
  const bool parsed = x != std::string::npos &&
                      tools::parse_int(std::string_view(dims).substr(0, x), &w) &&
                      tools::parse_int(std::string_view(dims).substr(x + 1), &h);
  if (!parsed || w < 2 || h < 2) {
    *err = "bad mesh spec '" + spec + "' (want WxH with W,H >= 2, optional 't')";
    return false;
  }
  soc::Scenario sc;
  sc.kind = torus ? soc::Scenario::TopologyKind::kTorus : soc::Scenario::TopologyKind::kMesh;
  sc.width = w;
  sc.height = h;
  sc.host = {w / 2, h / 2};
  sc.run_cycles = 5000;
  const int mx = w - 1, my = h - 1;
  const std::pair<int, int> corners[4] = {{0, 0}, {mx, 0}, {0, my}, {mx, my}};
  for (int i = 0; i < 4; ++i) {
    soc::Scenario::RawConnection c;
    c.name = "corner" + std::to_string(i);
    c.src = corners[i];
    c.dsts.push_back(corners[3 - i]);
    c.bandwidth = 150.0;
    sc.raw.push_back(std::move(c));
  }
  soc::Scenario::RawConnection mc;
  mc.name = "bcast";
  mc.src = sc.host;
  for (const auto& c : corners)
    if (c != sc.host) mc.dsts.push_back(c);
  mc.bandwidth = 40.0;
  sc.raw.push_back(std::move(mc));
  *out = std::move(sc);
  return true;
}

} // namespace

int main(int argc, char** argv) {
  std::size_t jobs = sim::default_job_count();
  std::string out_path = "results.json";
  std::vector<std::uint32_t> slot_sweep;
  std::uint64_t seeds = 0;
  std::vector<std::string> mesh_specs;
  std::optional<sim::Cycle> run_cycles;
  sim::Scheduler scheduler = sim::Scheduler::kStride;
  std::uint32_t shards = 1;
  bool soa = false;
  sim::FaultPlan fault_plan;
  bool recover = false;
  bool preempt = false;
  bool compact = false;
  std::optional<std::uint32_t> watchdog_retries;
  double watchdog_timeout_mult = 1.0;
  std::string trace_dir;
  bool per_connection = false;
  bool list_only = false;
  bool quiet = false;
  std::vector<std::string> scenario_paths;

  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "daelite_batch: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    const auto bad_value = [](const char* flag, const char* what, const char* got) {
      std::cerr << "daelite_batch: " << flag << " wants " << what << ", got '" << got << "'\n";
      return 2;
    };
    if (std::strcmp(argv[i], "--jobs") == 0) {
      const char* v = need("--jobs");
      if (!v) return usage();
      if (!tools::parse_int(v, &jobs)) return bad_value("--jobs", "an integer", v);
      if (jobs == 0) jobs = 1;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      const char* v = need("--out");
      if (!v) return usage();
      out_path = v;
    } else if (std::strcmp(argv[i], "--slots") == 0) {
      const char* v = need("--slots");
      if (!v) return usage();
      for (const std::string& tok : split_csv(v)) {
        std::uint32_t s = 0;
        if (!tools::parse_int(tok, &s) || s == 0) {
          std::cerr << "daelite_batch: bad slot count '" << tok << "'\n";
          return 2;
        }
        slot_sweep.push_back(s);
      }
    } else if (std::strcmp(argv[i], "--seeds") == 0) {
      const char* v = need("--seeds");
      if (!v) return usage();
      if (!tools::parse_int(v, &seeds)) return bad_value("--seeds", "an integer", v);
    } else if (std::strcmp(argv[i], "--mesh") == 0) {
      const char* v = need("--mesh");
      if (!v) return usage();
      for (auto& m : split_csv(v)) mesh_specs.push_back(m);
    } else if (std::strcmp(argv[i], "--run-cycles") == 0) {
      const char* v = need("--run-cycles");
      if (!v) return usage();
      sim::Cycle c = 0;
      if (!tools::parse_int(v, &c)) return bad_value("--run-cycles", "an integer", v);
      run_cycles = c;
    } else if (std::strcmp(argv[i], "--scheduler") == 0) {
      const char* v = need("--scheduler");
      if (!v) return usage();
      if (std::strcmp(v, "stride") == 0) {
        scheduler = sim::Scheduler::kStride;
      } else if (std::strcmp(v, "reference") == 0) {
        scheduler = sim::Scheduler::kReference;
      } else {
        return usage();
      }
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const char* v = need("--shards");
      if (!v) return usage();
      if (!tools::parse_int(v, &shards)) return bad_value("--shards", "an integer", v);
      if (shards == 0) shards = 1;
    } else if (std::strcmp(argv[i], "--soa") == 0) {
      soa = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      const char* v = need("--trace");
      if (!v) return usage();
      trace_dir = v;
    } else if (std::strcmp(argv[i], "--fault-seed") == 0) {
      const char* v = need("--fault-seed");
      if (!v) return usage();
      if (!tools::parse_int(v, &fault_plan.seed)) return bad_value("--fault-seed", "an integer", v);
    } else if (std::strcmp(argv[i], "--fault-rate") == 0) {
      const char* v = need("--fault-rate");
      if (!v) return usage();
      if (!tools::parse_double(v, &fault_plan.rate) || fault_plan.rate < 0.0 ||
          fault_plan.rate > 1.0) {
        return bad_value("--fault-rate", "a number in [0,1]", v);
      }
    } else if (std::strcmp(argv[i], "--fault-plan") == 0) {
      const char* v = need("--fault-plan");
      if (!v) return usage();
      std::string ferr;
      if (!sim::FaultPlan::parse_file(v, &fault_plan, &ferr)) {
        std::cerr << "daelite_batch: " << ferr << "\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else if (std::strcmp(argv[i], "--preempt") == 0) {
      preempt = true;
    } else if (std::strcmp(argv[i], "--compact") == 0) {
      compact = true;
    } else if (std::strcmp(argv[i], "--watchdog-retries") == 0) {
      const char* v = need("--watchdog-retries");
      if (!v) return usage();
      std::uint32_t n = 0;
      if (!tools::parse_int(v, &n)) return bad_value("--watchdog-retries", "an integer >= 0", v);
      watchdog_retries = n;
    } else if (std::strcmp(argv[i], "--watchdog-timeout-mult") == 0) {
      const char* v = need("--watchdog-timeout-mult");
      if (!v) return usage();
      if (!tools::parse_double(v, &watchdog_timeout_mult) || watchdog_timeout_mult <= 0.0) {
        return bad_value("--watchdog-timeout-mult", "a number > 0", v);
      }
    } else if (std::strcmp(argv[i], "--per-connection") == 0) {
      per_connection = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list_only = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      scenario_paths.push_back(argv[i]);
    }
  }
  if (scenario_paths.empty() && mesh_specs.empty()) return usage();

  // --- Expand the job matrix (deterministic order) ---------------------------
  struct Base {
    std::string name;
    soc::Scenario scenario;
  };
  std::vector<Base> bases;
  for (const std::string& path : scenario_paths) {
    std::string error;
    auto sc = soc::parse_scenario_file(path, &error);
    if (!sc) {
      std::cerr << "daelite_batch: " << error << "\n";
      return 2;
    }
    bases.push_back({base_name(path), std::move(*sc)});
  }
  for (const std::string& spec : mesh_specs) {
    soc::Scenario sc;
    std::string error;
    if (!make_stress_scenario(spec, &sc, &error)) {
      std::cerr << "daelite_batch: " << error << "\n";
      return 2;
    }
    bases.push_back({"stress_" + spec, std::move(sc)});
  }

  std::vector<soc::RunSpec> specs;
  const std::vector<std::uint64_t> seed_list = [&] {
    std::vector<std::uint64_t> s;
    if (seeds == 0) {
      s.push_back(0);
    } else {
      for (std::uint64_t k = 1; k <= seeds; ++k) s.push_back(k);
    }
    return s;
  }();
  for (const Base& b : bases) {
    const std::vector<std::optional<std::uint32_t>> slot_list = [&] {
      std::vector<std::optional<std::uint32_t>> s;
      if (slot_sweep.empty()) {
        s.push_back(std::nullopt);
      } else {
        for (auto v : slot_sweep) s.push_back(v);
      }
      return s;
    }();
    for (const auto& slots : slot_list) {
      for (std::uint64_t seed : seed_list) {
        soc::RunSpec spec;
        spec.scenario = b.scenario;
        spec.slots_override = slots;
        spec.run_cycles_override = run_cycles;
        spec.seed = seed;
        spec.scheduler = scheduler;
        spec.shards = shards;
        spec.soa = soa;
        spec.fault_plan = fault_plan;
        spec.recovery.enabled = recover;
        spec.recovery.preempt_best_effort = preempt;
        spec.recovery.compact_after_recovery = compact;
        spec.watchdog_retries = watchdog_retries;
        spec.watchdog_timeout_mult = watchdog_timeout_mult;
        std::string label = b.name;
        if (slots) label += "[slots=" + std::to_string(*slots) + "]";
        if (seed) label += "[seed=" + std::to_string(seed) + "]";
        spec.label = std::move(label);
        specs.push_back(std::move(spec));
      }
    }
  }

  if (list_only) {
    for (const auto& s : specs) std::cout << s.label << "\n";
    return 0;
  }

  // --- Run -------------------------------------------------------------------
  if (!trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(trace_dir, ec);
    if (ec) {
      std::cerr << "daelite_batch: cannot create " << trace_dir << ": " << ec.message() << "\n";
      return 2;
    }
  }
  std::mutex progress_mu;
  std::size_t done = 0;
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = sim::parallel_map<analysis::NetworkReport>(
      specs.size(), jobs, [&](std::size_t i) {
        // Each job records into its own tracer and writes its own file, so
        // trace output is per-label and identical at any --jobs value.
        soc::RunSpec spec = specs[i];
        std::unique_ptr<sim::Tracer> tracer;
        if (!trace_dir.empty()) {
          tracer = std::make_unique<sim::Tracer>();
          spec.tracer = tracer.get();
        }
        analysis::NetworkReport r;
        try {
          r = soc::run_scenario(spec);
        } catch (const std::exception& e) {
          r.label = spec.label;
          r.error = std::string("exception: ") + e.what();
        }
        if (tracer != nullptr) {
          const std::string path = trace_dir + "/" + trace_file_name(spec.label);
          if (!sim::write_chrome_trace_file(path, *tracer)) {
            std::lock_guard<std::mutex> lock(progress_mu);
            std::cerr << "daelite_batch: cannot write " << path << "\n";
          }
        }
        if (!quiet || per_connection) {
          std::lock_guard<std::mutex> lock(progress_mu);
          if (!quiet)
            std::cerr << "[" << ++done << "/" << specs.size() << "] " << r.label << ": "
                      << (r.ok ? "ok" : r.error.empty() ? "CONTRACT VIOLATED" : r.error) << "\n";
          if (per_connection && r.error.empty()) analysis::print_connection_latency(std::cerr, r);
        }
        return r;
      });
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - t0);

  // --- Emit (job order == expansion order: independent of --jobs) ------------
  std::size_t ok_count = 0;
  sim::JsonValue doc = sim::JsonValue::object();
  doc["tool"] = "daelite_batch";
  doc["schema_version"] = 1;
  sim::JsonValue jruns = sim::JsonValue::array();
  for (const auto& r : results) {
    if (r.ok) ++ok_count;
    jruns.push_back(r.to_json());
  }
  doc["runs"] = std::move(jruns);
  sim::JsonValue summary = sim::JsonValue::object();
  summary["total"] = results.size();
  summary["ok"] = ok_count;
  summary["failed"] = results.size() - ok_count;
  doc["summary"] = std::move(summary);

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "daelite_batch: cannot open " << out_path << "\n";
    return 2;
  }
  os << doc.dump(2) << "\n";

  if (!quiet)
    std::cerr << "daelite_batch: " << ok_count << "/" << results.size() << " ok, " << jobs
              << " workers, " << elapsed.count() << " ms -> " << out_path << "\n";
  return ok_count == results.size() ? 0 : 1;
}
