// daelite_sim — command-line scenario driver.
//
//   daelite_sim <scenario file> [--vcd out.vcd] [--json out.json]
//               [--trace out.trace.json] [--per-connection] [--quiet]
//               [--scheduler stride|reference] [--shards N] [--soa]
//               [--fault-seed N] [--fault-rate R] [--fault-plan file]
//
// Executes a scenario end to end through soc::run_scenario(): parse,
// dimension (choosing the wheel size unless the scenario pins one),
// instantiate the daelite network, configure every connection through the
// broadcast tree, drive saturated traffic for the requested number of
// cycles, and print the bandwidth / latency report plus schedule
// utilization. Returns nonzero if any contract is missed or any flit is
// dropped. --json additionally writes the metrics document the batch
// runner (daelite_batch) emits for whole sweeps. --trace records every
// hardware event into a bounded ring and writes a Chrome trace_event file
// (open in chrome://tracing or Perfetto). --per-connection prints the
// per-connection latency quantile table. --scheduler selects the kernel's
// cycle loop: the default stride scheduler, or the per-cycle reference
// loop whose reports and traces must be byte-identical (CI diffs them).
// --shards N partitions the mesh into N bands of routers/NIs that tick and
// commit on N threads inside the one simulation (stride scheduler only);
// every shard count produces byte-identical reports and traces — CI diffs
// --shards 1 against --shards 4 — so the flag only changes wall-clock time.
// --soa switches the data path to batched structure-of-arrays slot dispatch
// (hw::SlotEngine): one engine per shard band forwards the whole slot for
// all its routers/NIs over flat slot-table pools, skipping idle elements.
// Like --shards it is byte-identical and stride-only (ignored with
// --scheduler reference, which stays the per-component oracle).
// --fault-rate / --fault-plan enable deterministic fault injection on the
// data and configuration links (see sim/fault.hpp for the plan grammar);
// the report then carries a `health` section. --recover additionally arms
// the self-healing subsystem (soc/health.hpp + runner recovery): links the
// health monitor declares dead are quarantined and the affected
// connections are torn down and re-set up on a new route mid-run; the
// report then carries a `recovery` section. --preempt lets a guaranteed
// connection that recovery cannot re-route tear down best-effort
// connections (min-victims plan); --compact re-packs standard/best-effort
// connections onto lower injection slots after every recovery wave; both
// add a `service` section with per-class outcomes. --watchdog-retries and
// --watchdog-timeout-mult tune the config module's response watchdog
// (retry budget, and a scale on the depth-derived timeout).

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "daelite/vcd_probes.hpp"
#include "sim/json.hpp"
#include "sim/trace_sink.hpp"
#include "soc/runner.hpp"
#include "cli_parse.hpp"

using namespace daelite;

namespace {

int usage() {
  std::cerr << "usage: daelite_sim <scenario file> [--vcd out.vcd] [--json out.json]\n"
               "                   [--trace out.trace.json] [--per-connection] [--quiet]\n"
               "                   [--scheduler stride|reference] [--shards N] [--soa]\n"
               "                   [--fault-seed N] [--fault-rate R] [--fault-plan file]\n"
               "                   [--recover] [--preempt] [--compact]\n"
               "                   [--watchdog-retries N] [--watchdog-timeout-mult X]\n"
               "see src/soc/scenario.hpp for the scenario grammar and\n"
               "src/sim/fault.hpp for the fault-plan grammar\n";
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  std::string scenario_path;
  std::string vcd_path;
  std::string json_path;
  std::string trace_path;
  bool per_connection = false;
  bool quiet = false;
  sim::Scheduler scheduler = sim::Scheduler::kStride;
  std::uint32_t shards = 1;
  bool soa = false;
  sim::FaultPlan fault_plan;
  bool recover = false;
  bool preempt = false;
  bool compact = false;
  std::optional<std::uint32_t> watchdog_retries;
  double watchdog_timeout_mult = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--vcd") == 0 && i + 1 < argc) {
      vcd_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--per-connection") == 0) {
      per_connection = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--scheduler") == 0 && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "stride") {
        scheduler = sim::Scheduler::kStride;
      } else if (v == "reference") {
        scheduler = sim::Scheduler::kReference;
      } else {
        return usage();
      }
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      if (!tools::parse_int(argv[++i], &shards) || shards == 0) {
        std::cerr << "daelite_sim: --shards wants an integer >= 1, got '" << argv[i] << "'\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--soa") == 0) {
      soa = true;
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      if (!tools::parse_int(argv[++i], &fault_plan.seed)) {
        std::cerr << "daelite_sim: --fault-seed wants an integer, got '" << argv[i] << "'\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--fault-rate") == 0 && i + 1 < argc) {
      if (!tools::parse_double(argv[++i], &fault_plan.rate) || fault_plan.rate < 0.0 ||
          fault_plan.rate > 1.0) {
        std::cerr << "daelite_sim: --fault-rate wants a number in [0,1], got '" << argv[i]
                  << "'\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--fault-plan") == 0 && i + 1 < argc) {
      // The file may also set seed/rate; CLI flags given later still win.
      std::string ferr;
      if (!sim::FaultPlan::parse_file(argv[++i], &fault_plan, &ferr)) {
        std::cerr << "daelite_sim: " << ferr << "\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else if (std::strcmp(argv[i], "--preempt") == 0) {
      preempt = true;
    } else if (std::strcmp(argv[i], "--compact") == 0) {
      compact = true;
    } else if (std::strcmp(argv[i], "--watchdog-retries") == 0 && i + 1 < argc) {
      std::uint32_t n = 0;
      if (!tools::parse_int(argv[++i], &n)) {
        std::cerr << "daelite_sim: --watchdog-retries wants an integer >= 0, got '" << argv[i]
                  << "'\n";
        return 2;
      }
      watchdog_retries = n;
    } else if (std::strcmp(argv[i], "--watchdog-timeout-mult") == 0 && i + 1 < argc) {
      if (!tools::parse_double(argv[++i], &watchdog_timeout_mult) ||
          watchdog_timeout_mult <= 0.0) {
        std::cerr << "daelite_sim: --watchdog-timeout-mult wants a number > 0, got '" << argv[i]
                  << "'\n";
        return 2;
      }
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      scenario_path = argv[i];
    }
  }
  if (scenario_path.empty()) return usage();

  std::string error;
  auto scenario = soc::parse_scenario_file(scenario_path, &error);
  if (!scenario) {
    std::cerr << "daelite_sim: " << error << "\n";
    return 2;
  }

  soc::RunSpec spec;
  spec.label = scenario_path;
  spec.scenario = *scenario;
  spec.scheduler = scheduler;
  spec.shards = shards;
  spec.soa = soa;
  spec.fault_plan = fault_plan;
  spec.recovery.enabled = recover;
  spec.recovery.preempt_best_effort = preempt;
  spec.recovery.compact_after_recovery = compact;
  spec.watchdog_retries = watchdog_retries;
  spec.watchdog_timeout_mult = watchdog_timeout_mult;

  std::unique_ptr<sim::Tracer> tracer;
  if (!trace_path.empty()) {
    tracer = std::make_unique<sim::Tracer>();
    spec.tracer = tracer.get();
  }

  // VCD probes attach once the network exists; the writer and sampler live
  // here so they survive until the run finishes.
  std::ofstream vcd_os;
  std::unique_ptr<sim::VcdWriter> vcd;
  std::unique_ptr<hw::VcdSampler> sampler;
  if (!vcd_path.empty()) {
    vcd_os.open(vcd_path);
    if (!vcd_os) {
      std::cerr << "daelite_sim: cannot open " << vcd_path << "\n";
      return 2;
    }
    spec.on_network = [&](sim::Kernel& kernel, hw::DaeliteNetwork& net) {
      vcd = std::make_unique<sim::VcdWriter>(vcd_os);
      hw::attach_network_probes(*vcd, net);
      sampler = std::make_unique<hw::VcdSampler>(kernel, *vcd);
    };
  }

  const analysis::NetworkReport report = soc::run_scenario(spec);
  if (!report.error.empty()) {
    std::cerr << "daelite_sim: " << report.error << "\n";
    return 1;
  }
  if (!quiet) analysis::print_report(std::cout, report);
  if (per_connection) analysis::print_connection_latency(std::cout, report);

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "daelite_sim: cannot open " << json_path << "\n";
      return 2;
    }
    os << report.to_json().dump(2) << "\n";
  }
  if (tracer != nullptr && !sim::write_chrome_trace_file(trace_path, *tracer)) {
    std::cerr << "daelite_sim: cannot open " << trace_path << "\n";
    return 2;
  }
  return report.ok ? 0 : 1;
}
