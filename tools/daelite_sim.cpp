// daelite_sim — command-line scenario driver.
//
//   daelite_sim <scenario file> [--vcd out.vcd] [--quiet]
//
// Executes a scenario end to end: parse, dimension (choosing the wheel
// size unless the scenario pins one), instantiate the daelite network,
// configure every connection through the broadcast tree, drive saturated
// traffic for the requested number of cycles, and print the bandwidth /
// latency report plus schedule utilization. Returns nonzero if any
// contract is missed or any flit is dropped.

#include <cstring>
#include <fstream>
#include <iostream>

#include "alloc/dimension.hpp"
#include "analysis/network_report.hpp"
#include "analysis/report.hpp"
#include "daelite/network.hpp"
#include "daelite/vcd_probes.hpp"
#include "soc/scenario.hpp"

using namespace daelite;

namespace {

int usage() {
  std::cerr << "usage: daelite_sim <scenario file> [--vcd out.vcd] [--quiet]\n"
               "see src/soc/scenario.hpp for the scenario grammar\n";
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  std::string scenario_path;
  std::string vcd_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--vcd") == 0 && i + 1 < argc) {
      vcd_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      scenario_path = argv[i];
    }
  }
  if (scenario_path.empty()) return usage();

  std::string error;
  auto scenario = soc::parse_scenario_file(scenario_path, &error);
  if (!scenario) {
    std::cerr << "daelite_sim: " << error << "\n";
    return 2;
  }
  topo::Mesh mesh = scenario->build();

  // Dimension.
  const alloc::NocClocking clk{scenario->clock_mhz, 4};
  const std::vector<std::uint32_t> candidates =
      scenario->slots ? std::vector<std::uint32_t>{*scenario->slots}
                      : std::vector<std::uint32_t>{8, 16, 32};
  auto dim = alloc::dimension_network(mesh.topo, scenario->connections, clk, candidates, &error);
  if (!dim) {
    std::cerr << "daelite_sim: dimensioning failed: " << error << "\n";
    return 1;
  }
  if (!quiet)
    std::cout << "wheel: " << dim->params.num_slots << " slots, utilization "
              << analysis::pct(dim->schedule_utilization) << "\n";

  // Instantiate + configure.
  sim::Kernel kernel;
  hw::DaeliteNetwork::Options opt;
  opt.tdm = dim->params;
  opt.cfg_root = mesh.ni(scenario->host.first, scenario->host.second);
  hw::DaeliteNetwork net(kernel, mesh.topo, opt);

  std::ofstream vcd_os;
  std::unique_ptr<sim::VcdWriter> vcd;
  std::unique_ptr<hw::VcdSampler> sampler;
  if (!vcd_path.empty()) {
    vcd_os.open(vcd_path);
    if (!vcd_os) {
      std::cerr << "daelite_sim: cannot open " << vcd_path << "\n";
      return 2;
    }
    vcd = std::make_unique<sim::VcdWriter>(vcd_os);
    hw::attach_network_probes(*vcd, net);
    sampler = std::make_unique<hw::VcdSampler>(kernel, *vcd);
  }

  std::vector<hw::ConnectionHandle> handles;
  for (const auto& c : dim->allocation.connections) handles.push_back(net.open_connection(c));
  const sim::Cycle cfg_cycles = net.run_config();
  if (!quiet)
    std::cout << "configured " << handles.size() << " connections in " << cfg_cycles
              << " cycles\n";

  // Saturated traffic.
  std::vector<std::vector<std::uint64_t>> delivered(handles.size());
  for (std::size_t i = 0; i < handles.size(); ++i)
    delivered[i].assign(handles[i].conn.request.dst_nis.size(), 0);
  for (sim::Cycle c = 0; c < scenario->run_cycles; ++c) {
    for (std::size_t i = 0; i < handles.size(); ++i) {
      hw::Ni& src = net.ni(handles[i].conn.request.src_ni);
      while (src.tx_push(handles[i].src_tx_q, 1)) {
      }
      for (std::size_t d = 0; d < delivered[i].size(); ++d) {
        hw::Ni& dst = net.ni(handles[i].conn.request.dst_nis[d]);
        while (dst.rx_pop(handles[i].dst_rx_qs[d])) ++delivered[i][d];
      }
    }
    kernel.step();
  }

  // Report.
  analysis::TextTable t("connection results (" + std::to_string(scenario->run_cycles) +
                        " cycles, saturated sources)");
  t.set_header({"connection", "slots", "contract MB/s", "measured MB/s", "verdict"});
  bool ok = true;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    std::uint64_t min_words = delivered[i][0];
    for (auto w : delivered[i]) min_words = std::min(min_words, w);
    const double mbps = static_cast<double>(min_words) /
                        static_cast<double>(scenario->run_cycles) * clk.link_mbytes_per_s();
    const bool met = mbps + 1.0 >= dim->connections[i].spec.bandwidth_mbytes_per_s;
    ok = ok && met;
    t.add_row({dim->connections[i].spec.name, std::to_string(dim->connections[i].request_slots),
               analysis::fmt(dim->connections[i].spec.bandwidth_mbytes_per_s, 0),
               analysis::fmt(mbps, 0), met ? "met" : "VIOLATED"});
  }
  if (!quiet) {
    t.print(std::cout);
    std::cout << "router drops: " << net.total_router_drops()
              << ", NI drops: " << net.total_ni_drops()
              << ", rx overflow: " << net.total_rx_overflow() << "\n\n";
    alloc::SlotAllocator reporter(mesh.topo, dim->params);
    for (const auto& c : dim->allocation.connections) {
      reporter.restore(c.request);
      if (c.has_response) reporter.restore(c.response);
    }
    analysis::print_link_usage(std::cout, mesh.topo, reporter.schedule(), 8);
  }
  ok = ok && net.total_router_drops() == 0 && net.total_ni_drops() == 0 &&
       net.total_rx_overflow() == 0;
  if (!quiet) std::cout << (ok ? "OK\n" : "FAILED\n");
  return ok ? 0 : 1;
}
