#pragma once
// Strict numeric parsing for tool command lines.
//
// The tools used to parse numeric flags with strtoul/stoi, which accept
// trailing junk ("--shards 4x" ran with 4 shards, "--mesh 4x4garbage"
// ran a 4x4 stress mesh) and silently clamp errors to 0. Every numeric
// token now goes through std::from_chars with a full-token check — the
// same policy sim::FaultPlan's parser uses — so a typo is a usage error,
// not a silently different experiment.

#include <charconv>
#include <string_view>
#include <system_error>
#include <type_traits>

namespace daelite::tools {

/// Parse the ENTIRE token as a base-10 integer of type T. Rejects empty
/// tokens, signs on unsigned types, leading/trailing junk ("12x", " 12",
/// "0x12") and out-of-range values. Returns false without touching *out
/// on any failure.
template <typename T>
bool parse_int(std::string_view tok, T* out) {
  static_assert(std::is_integral_v<T>);
  if (tok.empty()) return false;
  T v{};
  const char* const last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(tok.data(), last, v, 10);
  if (ec != std::errc{} || ptr != last) return false;
  *out = v;
  return true;
}

/// Parse the ENTIRE token as a decimal floating-point value (no hex, no
/// inf/nan — those are never meaningful as rates or bandwidths here).
inline bool parse_double(std::string_view tok, double* out) {
  if (tok.empty()) return false;
  double v = 0.0;
  const char* const last = tok.data() + tok.size();
  const auto [ptr, ec] =
      std::from_chars(tok.data(), last, v, std::chars_format::fixed);
  if (ec != std::errc{} || ptr != last) return false;
  *out = v;
  return true;
}

} // namespace daelite::tools
