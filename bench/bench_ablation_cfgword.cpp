// Ablation: configuration word width (analytic).
//
// The paper picks 7-bit configuration words: "sufficient to encode a
// network element ID, a pair of input and output port IDs or the value
// of a credit counter" for networks of up to 64 elements, arity 7 and
// 63-word buffers. This sweep shows what other widths would cost: wider
// words shorten packets (fewer mask words) but widen every configuration
// link and register in every router and NI; narrower words cannot encode
// a port pair in one word.

#include <iostream>

#include "analysis/report.hpp"
#include "area/primitives.hpp"

using namespace daelite;
using analysis::TextTable;
using analysis::fmt;

namespace {

/// Path-packet words for a p-element segment with S slots at word width w.
std::uint32_t packet_words(std::uint32_t elements, std::uint32_t s, std::uint32_t w) {
  const std::uint32_t mask_words = (s + w - 1) / w;
  return 1 + mask_words + 2 * elements + 1;
}

/// Config wiring+register GE per network element at width w:
/// 4 pipeline registers of w bits plus the w-bit mask datapath share.
double cfg_ge_per_element(std::uint32_t w) {
  const area::GeCosts c{};
  return area::regs_ge(c, 4 * w) + 2.0 * w; // registers + mux/valid glue
}

} // namespace

int main() {
  constexpr std::uint32_t kSlots = 16;
  constexpr std::uint32_t kElements = 6; // a 5-hop path segment

  TextTable t("Configuration word width ablation (S=16, 6-element path segment, analytic)");
  t.set_header({"width (bits)", "max elements", "max arity", "mask words", "packet words",
                "cfg GE/element"});
  for (std::uint32_t w : {5u, 6u, 7u, 8u, 10u, 14u}) {
    const std::uint32_t max_ids = (1u << w) - 2;         // 0 = nop, all-ones = end
    const std::uint32_t arity = 1u << (w / 2);           // in/out port fields
    t.add_row({std::to_string(w), std::to_string(max_ids), std::to_string(arity),
               std::to_string((kSlots + w - 1) / w),
               std::to_string(packet_words(kElements, kSlots, w)),
               fmt(cfg_ge_per_element(w), 0)});
  }
  t.print(std::cout);
  std::cout << "7 bits is the knee: one fewer bit halves the addressable elements (62)\n"
               "and cannot hold a 3+3-bit port pair plus margin; wider words save at\n"
               "most 1-2 packet words while growing every element's config registers\n"
               "and the tree wiring linearly. The paper's choice is on the Pareto front.\n";
  return 0;
}
