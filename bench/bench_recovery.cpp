// bench_recovery — self-healing recovery latency vs the aelite mirror.
//
// The paper's argument for fast connection set-up (§V, Table III) is
// usually framed as a bring-up cost, but it pays off again every time the
// NoC must *re*-configure — and a link failure mid-run is exactly that.
// This bench kills one link on a live connection's route (deterministic
// `kill data@<link>` fault plan, seed 42), lets the recovery subsystem
// (soc/health.hpp + runner repair) detect, quarantine, tear down and
// re-set up the connection on a detour, and measures detection-to-restored
// latency in cycles. Three experiments:
//
//  1. Recovery latency vs path length: one saturated connection of
//     increasing hop count on an 8x2 mesh, mid-route link killed. daelite
//     recovery grows with path length (broadcast-tree config depth + first
//     delivery on the detour) and sits orders below the aelite mirror.
//  2. Recovery latency vs slot-table size: same connection, wheels of
//     8/16/32 slots. daelite stays nearly flat; the aelite mirror pays one
//     reserved slot per wheel per register write, so its tear-down +
//     set-up cost grows with the slot count twice over (more messages,
//     each on a longer wheel).
//  3. Delivered-bandwidth timeline: the same run truncated at successive
//     lengths (every prefix of a deterministic run is identical, so
//     delivered-word deltas between truncations ARE the per-window
//     bandwidth) — traffic flows, collapses at the kill, and is restored
//     on the detour within the same window or the next.
//
// The aelite mirror is handicapped in aelite's favour: it pays only the
// serial tear-down + set-up stream (AeliteConfigHost::post_teardown +
// post_setup), with detection and first-delivery time not counted, while
// the daelite number is the full detection-to-restored latency. The bench
// exits nonzero if any kill goes undetected, any connection is not
// restored, or daelite fails to beat the mirror.

#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "aelite/config_model.hpp"
#include "alloc/dimension.hpp"
#include "analysis/report.hpp"
#include "common.hpp"
#include "sim/fault.hpp"
#include "sim/json.hpp"
#include "soc/runner.hpp"

using namespace daelite;
using namespace daelite::bench;
using analysis::TextTable;
using analysis::fmt;
using sim::JsonValue;

namespace {

constexpr std::uint64_t kFaultSeed = 42;
constexpr sim::Cycle kRunCycles = 20000;
constexpr sim::Cycle kKillCycle = 5000; ///< absolute; config is long done

// One saturated unicast along row 0 of a W x 2 mesh, host on row 1 so the
// detour row stays available. Hop count of the request route is d + 2
// (NI -> router, d router hops, router -> NI).
soc::Scenario victim_scenario(int w, int d, std::uint32_t slots, sim::Cycle run_cycles) {
  soc::Scenario sc;
  sc.kind = soc::Scenario::TopologyKind::kMesh;
  sc.width = w;
  sc.height = 2;
  sc.slots = slots;
  sc.host = {0, 1};
  sc.run_cycles = run_cycles;
  soc::Scenario::RawConnection c;
  c.name = "victim";
  c.src = {0, 0};
  c.dsts.push_back({d, 0});
  c.bandwidth = 150.0;
  sc.raw.push_back(std::move(c));
  return sc;
}

// The route the runner will allocate, reproduced by running the same
// deterministic dimensioning (seed 0 keeps file order). Returns the
// mid-route link to kill plus the dimensioned slot counts the aelite
// mirror must re-program.
struct Victim {
  std::uint64_t kill_link = 0;
  std::uint32_t hops = 0; ///< request-route edges
  std::uint32_t request_slots = 0;
  std::uint32_t response_slots = 0;
};

std::optional<Victim> discover_victim(soc::Scenario sc) {
  topo::Mesh mesh = sc.build();
  const alloc::NocClocking clk{sc.clock_mhz, 4};
  std::string why;
  auto dim = alloc::dimension_network(mesh.topo, sc.connections, clk, {*sc.slots}, &why);
  if (!dim) {
    std::cerr << "bench_recovery: dimensioning failed: " << why << "\n";
    return std::nullopt;
  }
  const alloc::AllocatedConnection& c = dim->allocation.connections.front();
  Victim v;
  v.hops = static_cast<std::uint32_t>(c.request.edges.size());
  v.kill_link = c.request.edges[c.request.edges.size() / 2].link;
  v.request_slots = dim->connections.front().request_slots;
  v.response_slots = dim->connections.front().response_slots;
  return v;
}

soc::RunSpec recovery_spec(soc::Scenario sc, std::uint64_t kill_link) {
  soc::RunSpec spec;
  spec.label = "recovery";
  spec.scenario = std::move(sc);
  spec.fault_plan.seed = kFaultSeed;
  sim::FaultDirective kill;
  kill.kind = sim::FaultDirective::Kind::kKill;
  kill.cls = sim::FaultClass::kData;
  kill.line_index = static_cast<std::int64_t>(kill_link);
  kill.from = kKillCycle;
  kill.to = sim::kNoCycle; // the link never comes back; the detour must hold
  spec.fault_plan.directives.push_back(kill);
  spec.recovery.enabled = true;
  return spec;
}

/// aelite mirror of one repair: tear down the broken connection and set it
/// up again, both serialized through the host's reserved slot (one
/// register write or read per TDM wheel). Returns the cycle the stream
/// completes, starting from an idle host at cycle 0.
sim::Cycle aelite_reconfig_cycles(int w, int d, std::uint32_t slots, std::uint32_t request_slots,
                                  std::uint32_t response_slots) {
  soc::Scenario sc = victim_scenario(w, d, slots, 0);
  topo::Mesh mesh = sc.build();
  sim::Kernel k;
  aelite::AeliteConfigHost::Params p;
  p.tdm = tdm::aelite_params(slots);
  aelite::AeliteConfigHost host(k, "ahost", mesh.topo, mesh.ni(0, 1), p);
  aelite::AeliteConfigHost::SetupRequest req;
  req.src_ni = mesh.ni(0, 0);
  req.dst_ni = mesh.ni(d, 0);
  req.request_slots = request_slots;
  req.response_slots = response_slots;
  const std::uint32_t td = host.post_teardown(req);
  const std::uint32_t su = host.post_setup(req);
  if (!k.run_until([&] { return host.idle(); }, 10'000'000)) {
    std::cerr << "bench_recovery: aelite reconfiguration did not complete\n";
    return sim::kNoCycle;
  }
  return std::max(host.completion_cycle(td), host.completion_cycle(su));
}

/// Common validity checks on one recovery run; prints a diagnostic and
/// returns false on the first violated expectation.
bool check_recovered(const analysis::NetworkReport& r, std::uint64_t kill_link,
                     const std::string& what) {
  const auto fail = [&](const std::string& msg) {
    std::cerr << "bench_recovery: " << what << ": " << msg << "\n";
    return false;
  };
  if (!r.error.empty()) return fail("run failed: " + r.error);
  if (r.recovery.dead_links.size() != 1) {
    return fail("expected 1 dead-link verdict, got " +
                std::to_string(r.recovery.dead_links.size()));
  }
  if (r.recovery.dead_links.front().link != kill_link)
    return fail("verdict names link " + std::to_string(r.recovery.dead_links.front().link) +
                ", killed " + std::to_string(kill_link));
  if (r.recovery.quarantined != std::vector<std::uint64_t>{kill_link})
    return fail("quarantine set is not exactly the killed link");
  if (r.recovery.events.size() != 1)
    return fail("expected 1 recovery event, got " + std::to_string(r.recovery.events.size()));
  const analysis::RecoveryEvent& ev = r.recovery.events.front();
  if (ev.trigger != "link_dead") return fail("trigger is '" + ev.trigger + "', not link_dead");
  if (!ev.restored) return fail("connection was not restored");
  if (ev.latency_cycles() == 0) return fail("zero recovery latency");
  return true;
}

} // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  constexpr int kWidth = 8;
  bool bad = false;

  // -- 1. recovery latency vs path length (slots fixed at 16) --------------
  const std::vector<int> distances = quick ? std::vector<int>{2, 4, 7}
                                           : std::vector<int>{1, 2, 3, 4, 5, 6, 7};
  TextTable pt("recovery latency vs path length (8x2 mesh, S=16, mid-route link killed)");
  pt.set_header({"hops", "detour", "kill link", "detected", "restored in", "aelite td+su",
                 "speedup"});
  JsonValue prows = JsonValue::array();
  sim::Cycle first_latency = 0, last_latency = 0;
  for (int d : distances) {
    soc::Scenario sc = victim_scenario(kWidth, d, 16, kRunCycles);
    const auto v = discover_victim(sc);
    if (!v) return 1;
    const analysis::NetworkReport r = soc::run_scenario(recovery_spec(sc, v->kill_link));
    if (!check_recovered(r, v->kill_link, "path sweep d=" + std::to_string(d))) {
      bad = true;
      continue;
    }
    const analysis::RecoveryEvent& ev = r.recovery.events.front();
    const sim::Cycle ae = aelite_reconfig_cycles(kWidth, d, 16, v->request_slots,
                                                 v->response_slots);
    if (ae == sim::kNoCycle) return 1;
    const sim::Cycle lat = ev.latency_cycles();
    if (d == distances.front()) first_latency = lat;
    if (d == distances.back()) last_latency = lat;
    if (lat >= ae) {
      std::cerr << "bench_recovery: d=" << d << ": daelite recovery (" << lat
                << ") does not beat the aelite mirror (" << ae << ")\n";
      bad = true;
    }
    pt.add_row({std::to_string(ev.hops_before), std::to_string(ev.hops_after),
                std::to_string(v->kill_link), std::to_string(ev.detected_cycle),
                std::to_string(lat) + " cyc", std::to_string(ae) + " cyc",
                fmt(static_cast<double>(ae) / static_cast<double>(lat), 1) + "x"});
    JsonValue row = JsonValue::object();
    row["distance"] = static_cast<std::uint64_t>(d);
    row["hops_before"] = ev.hops_before;
    row["hops_after"] = ev.hops_after;
    row["kill_link"] = v->kill_link;
    row["detected_cycle"] = ev.detected_cycle;
    row["reconfigured_cycle"] = ev.reconfigured_cycle;
    row["restored_cycle"] = ev.restored_cycle;
    row["latency_cycles"] = lat;
    row["aelite_reconfig_cycles"] = ae;
    row["speedup"] = static_cast<double>(ae) / static_cast<double>(lat);
    prows.push_back(std::move(row));
  }
  pt.print(std::cout);
  std::cout << "\n";
  if (!bad && last_latency <= first_latency) {
    std::cerr << "bench_recovery: recovery latency does not grow with path length ("
              << first_latency << " -> " << last_latency << ")\n";
    bad = true;
  }

  // -- 2. recovery latency vs slot-table size (path fixed) ------------------
  const std::vector<std::uint32_t> slot_counts =
      quick ? std::vector<std::uint32_t>{8, 32} : std::vector<std::uint32_t>{8, 16, 32};
  const int kSlotSweepDistance = 5;
  TextTable st("recovery latency vs slot count (8x2 mesh, 5-router path)");
  st.set_header({"slots", "daelite restored in", "aelite td+su", "speedup"});
  JsonValue srows = JsonValue::array();
  sim::Cycle d_min = 0, d_max = 0, a_min = 0, a_max = 0;
  for (std::uint32_t slots : slot_counts) {
    soc::Scenario sc = victim_scenario(kWidth, kSlotSweepDistance, slots, kRunCycles);
    const auto v = discover_victim(sc);
    if (!v) return 1;
    const analysis::NetworkReport r = soc::run_scenario(recovery_spec(sc, v->kill_link));
    if (!check_recovered(r, v->kill_link, "slot sweep S=" + std::to_string(slots))) {
      bad = true;
      continue;
    }
    const sim::Cycle lat = r.recovery.events.front().latency_cycles();
    const sim::Cycle ae = aelite_reconfig_cycles(kWidth, kSlotSweepDistance, slots,
                                                 v->request_slots, v->response_slots);
    if (ae == sim::kNoCycle) return 1;
    if (slots == slot_counts.front()) { d_min = lat; a_min = ae; }
    if (slots == slot_counts.back()) { d_max = lat; a_max = ae; }
    if (lat >= ae) {
      std::cerr << "bench_recovery: S=" << slots << ": daelite recovery (" << lat
                << ") does not beat the aelite mirror (" << ae << ")\n";
      bad = true;
    }
    st.add_row({std::to_string(slots), std::to_string(lat) + " cyc", std::to_string(ae) + " cyc",
                fmt(static_cast<double>(ae) / static_cast<double>(lat), 1) + "x"});
    JsonValue row = JsonValue::object();
    row["slots"] = slots;
    row["request_slots"] = v->request_slots;
    row["latency_cycles"] = lat;
    row["aelite_reconfig_cycles"] = ae;
    row["speedup"] = static_cast<double>(ae) / static_cast<double>(lat);
    srows.push_back(std::move(row));
  }
  st.print(std::cout);
  std::cout << "\n";
  // daelite recovery must be (close to) slot-count independent; the aelite
  // mirror pays more messages on a longer wheel, so its growth dominates.
  if (!bad && d_min != 0 && a_min != 0) {
    const double d_growth = static_cast<double>(d_max) / static_cast<double>(d_min);
    const double a_growth = static_cast<double>(a_max) / static_cast<double>(a_min);
    if (d_growth >= a_growth) {
      std::cerr << "bench_recovery: daelite latency grows with slot count as fast as aelite ("
                << fmt(d_growth, 2) << "x vs " << fmt(a_growth, 2) << "x)\n";
      bad = true;
    }
  }

  // -- 3. delivered-bandwidth timeline around the kill ----------------------
  // Deterministic runs are prefix-identical, so truncating the same spec at
  // successive lengths and differencing delivered-word counts measures the
  // bandwidth of each window — no in-run sampling hooks needed.
  const sim::Cycle window = quick ? 4000 : 2000;
  const int kTimelineDistance = 5;
  soc::Scenario base = victim_scenario(kWidth, kTimelineDistance, 16, kRunCycles);
  const auto tv = discover_victim(base);
  if (!tv) return 1;
  TextTable tt("delivered words per window (kill @" + std::to_string(kKillCycle) + ")");
  tt.set_header({"window", "delivered", "words/cycle"});
  JsonValue trows = JsonValue::array();
  std::uint64_t prev = 0;
  std::vector<std::uint64_t> deltas;
  for (sim::Cycle end = window; end <= kRunCycles; end += window) {
    soc::RunSpec spec = recovery_spec(base, tv->kill_link);
    spec.run_cycles_override = end;
    const analysis::NetworkReport r = soc::run_scenario(spec);
    if (!r.error.empty()) {
      std::cerr << "bench_recovery: timeline run failed: " << r.error << "\n";
      return 1;
    }
    const std::uint64_t delivered = r.health.words_delivered;
    if (delivered < prev) {
      std::cerr << "bench_recovery: delivered words not prefix-monotonic at " << end << "\n";
      bad = true;
    }
    const std::uint64_t delta = delivered - prev;
    deltas.push_back(delta);
    tt.add_row({"[" + std::to_string(end - window) + "," + std::to_string(end) + ")",
                std::to_string(delta),
                fmt(static_cast<double>(delta) / static_cast<double>(window), 3)});
    JsonValue row = JsonValue::object();
    row["window_end"] = end;
    row["delivered_total"] = delivered;
    row["delivered_delta"] = delta;
    row["words_per_cycle"] = static_cast<double>(delta) / static_cast<double>(window);
    trows.push_back(std::move(row));
    prev = delivered;
  }
  tt.print(std::cout);
  // The pre-kill steady state must be re-established after the repair: the
  // final window's bandwidth within 50% of the first full-rate window's.
  if (deltas.size() >= 3) {
    const std::uint64_t steady = deltas[1]; // window 0 pays configuration
    const std::uint64_t final_bw = deltas.back();
    if (final_bw * 2 < steady) {
      std::cerr << "bench_recovery: bandwidth not restored after repair (" << final_bw << " vs "
                << steady << " steady)\n";
      bad = true;
    }
  }

  const std::string json_path = json_out_path(argc, argv, "recovery");
  if (!json_path.empty()) {
    JsonValue doc = JsonValue::object();
    doc["fault_seed"] = kFaultSeed;
    doc["quick"] = quick;
    doc["kill_cycle"] = kKillCycle;
    doc["path_sweep"] = std::move(prows);
    doc["slot_sweep"] = std::move(srows);
    doc["timeline"] = std::move(trows);
    if (!write_bench_json(json_path, "recovery", std::move(doc))) {
      std::cerr << "bench_recovery: cannot write " << json_path << "\n";
      return 2;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return bad ? 1 : 0;
}
