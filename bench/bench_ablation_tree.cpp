// Ablation: configuration-tree root placement and cool-down length.
//
// The paper chooses the config tree "to minimize the distance from the
// host to any of the network nodes" and enforces a cool-down after each
// path packet. This bench quantifies both choices: set-up time vs host
// placement (corner vs centre), and vs cool-down length.

#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "topology/spanning_tree.hpp"

using namespace daelite;
using namespace daelite::bench;
using analysis::TextTable;

namespace {

sim::Cycle measure_setup(int root_x, int root_y, std::uint32_t cool_down) {
  topo::Mesh mesh = topo::make_mesh(5, 5);
  sim::Kernel kernel;
  hw::DaeliteNetwork::Options opt;
  opt.tdm = tdm::daelite_params(16);
  opt.cfg_root = mesh.ni(root_x, root_y);
  opt.cool_down_cycles = cool_down;
  hw::DaeliteNetwork net(kernel, mesh.topo, opt);
  alloc::SlotAllocator alloc(mesh.topo, opt.tdm);

  alloc::UseCase uc;
  uc.connections.push_back({"c", mesh.ni(4, 0), {mesh.ni(0, 4)}, 2, 2});
  auto a = alloc::allocate_use_case(alloc, uc);
  if (!a) std::abort();
  (void)net.open_connection(a->connections[0]);
  return net.run_config();
}

std::uint32_t tree_depth(int root_x, int root_y) {
  const topo::Mesh mesh = topo::make_mesh(5, 5);
  return topo::build_config_tree(mesh.topo, mesh.ni(root_x, root_y)).max_depth();
}

} // namespace

int main() {
  TextTable t("Config-tree root placement (5x5 mesh, far corner-to-corner connection)");
  t.set_header({"host position", "tree max depth", "setup (cycles)"});
  t.add_row({"corner (0,0)", std::to_string(tree_depth(0, 0)),
             std::to_string(measure_setup(0, 0, 4))});
  t.add_row({"edge (2,0)", std::to_string(tree_depth(2, 0)),
             std::to_string(measure_setup(2, 0, 4))});
  t.add_row({"centre (2,2)", std::to_string(tree_depth(2, 2)),
             std::to_string(measure_setup(2, 2, 4))});
  t.print(std::cout);
  std::cout << "The broadcast reaches every element regardless of placement; a central\n"
               "host only shortens the final drain (2 cycles per tree level), matching\n"
               "the paper's min-depth tree construction.\n\n";

  TextTable c("Cool-down length (centre host)");
  c.set_header({"cool-down (cycles)", "setup (cycles)"});
  for (std::uint32_t cd : {0u, 2u, 4u, 8u, 16u}) {
    c.add_row({std::to_string(cd), std::to_string(measure_setup(2, 2, cd))});
  }
  c.print(std::cout);
  std::cout << "Each path packet pays the cool-down once; a connection has 2 path\n"
               "packets, so set-up time grows by 2 cycles per cool-down cycle. The\n"
               "cool-down only needs to cover the slot-table write (a few cycles).\n";
  return 0;
}
