// Use-case switch cost: the system-level payoff of fast connection
// set-up (paper §I: the interconnect should "provide fast
// (re)configuration to adapt to dynamic use case switches"; [12] measures
// aelite's cost per use-case). A switch tears down the departing
// connections and sets up the arriving ones; shared connections keep
// streaming. We measure the full switch in cycles on daelite's broadcast
// tree versus the aelite MMIO-over-NoC model, for growing churn.

#include <iostream>

#include "aelite/config_model.hpp"
#include "alloc/switching.hpp"
#include "analysis/report.hpp"
#include "common.hpp"

using namespace daelite;
using namespace daelite::bench;
using analysis::TextTable;
using analysis::fmt;

namespace {

/// Build a use-case of n connections around the mesh perimeter.
alloc::UseCase make_uc(const topo::Mesh& m, const char* name, int n, int offset) {
  alloc::UseCase uc;
  uc.name = name;
  const auto nis = m.all_nis();
  for (int i = 0; i < n; ++i) {
    const auto src = nis[static_cast<std::size_t>((i * 3 + offset) % nis.size())];
    const auto dst = nis[static_cast<std::size_t>((i * 3 + offset + 7) % nis.size())];
    uc.connections.push_back({"c" + std::to_string(i + offset * 100), src, {dst}, 2, 1});
  }
  return uc;
}

} // namespace

int main() {
  TextTable t("Full use-case switch cost (4x4 mesh, S=16, tear down N + set up N)");
  t.set_header({"churn (connections)", "daelite (cycles)", "aelite model (cycles)", "speed-up"});

  for (int n : {1, 2, 4, 6}) {
    // --- daelite: measured on the simulated configuration tree ------------
    DaeliteRig rig(4, 4, 16);
    const auto uc_a = make_uc(rig.mesh, "A", n, 0);
    const auto uc_b = make_uc(rig.mesh, "B", n, 1); // disjoint: full churn
    auto alloc_a = alloc::allocate_use_case(*rig.alloc, uc_a);
    if (!alloc_a) return 1;
    std::vector<hw::ConnectionHandle> handles;
    for (const auto& c : alloc_a->connections) handles.push_back(rig.net->open_connection(c));
    rig.net->run_config();

    const sim::Cycle t0 = rig.kernel.now();
    for (const auto& h : handles) rig.net->close_connection(h);
    alloc::SwitchPlan plan;
    auto alloc_b = alloc::execute_use_case_switch(*rig.alloc, *alloc_a, uc_b, &plan);
    if (!alloc_b) return 1;
    for (const auto& c : alloc_b->connections) (void)rig.net->open_connection(c);
    rig.net->run_config();
    const sim::Cycle daelite_cycles = rig.kernel.now() - t0;

    // --- aelite: config-message model --------------------------------------
    sim::Kernel ak;
    const auto amesh = topo::make_mesh(4, 4);
    aelite::AeliteConfigHost ahost(ak, "cfg", amesh.topo, amesh.ni(0, 0),
                                   {tdm::aelite_params(16), 0});
    // Tear-down costs the same message sequence as set-up in aelite
    // (regs are rewritten); model as 2n setups.
    const auto nis = amesh.all_nis();
    for (int i = 0; i < 2 * n; ++i) {
      const auto src = nis[static_cast<std::size_t>((i * 3) % nis.size())];
      const auto dst = nis[static_cast<std::size_t>((i * 3 + 7) % nis.size())];
      ahost.post_setup({src, dst, 2, 1, true});
    }
    if (!ak.run_until([&] { return ahost.idle(); }, 10'000'000)) {
      std::cerr << "error: aelite use-case switch did not complete\n";
      return 1;
    }
    const sim::Cycle aelite_cycles = ak.now();

    t.add_row({std::to_string(n) + " + " + std::to_string(n),
               std::to_string(daelite_cycles), std::to_string(aelite_cycles),
               fmt(static_cast<double>(aelite_cycles) / static_cast<double>(daelite_cycles), 1) +
                   "x"});
  }
  t.print(std::cout);
  std::cout << "daelite's advantage compounds at the use-case level: every connection\n"
               "of the switch pays the ~10x faster set-up, so whole application phase\n"
               "changes complete in hundreds rather than thousands of cycles, while\n"
               "unaffected connections keep their guarantees (see\n"
               "bench_reconfig_under_traffic).\n";
  return 0;
}
