// Online allocation service under churn: sustained request throughput and
// set-up latency of the incremental allocator vs the from-scratch search,
// plus the daelite-vs-aelite configuration cost of the connections the
// service actually admits.
//
// Phase A replays identical open-loop request streams (Poisson set-ups,
// exponential lifetimes, a modify fraction) against two allocators that
// differ only in AllocatorOptions::incremental, at increasing offered
// load. The decision digests must match exactly — the modes are
// decision-identical by construction, and this bench hard-fails on any
// divergence — so the only difference left to measure is the per-request
// cost. In the full run the incremental mode must beat from-scratch on
// mean request latency at >= 50% mean utilization (the regime where the
// from-scratch scan pays for schedule occupancy).
//
// Phase B re-runs the service with an on_admit hook and prices every
// admitted connection's set-up on both networks: daelite's analytic
// broadcast-tree cost (analysis/setup_time.hpp) vs aelite's serialized
// MMIO cost (aelite/config_model.hpp). Multicast connections have no
// aelite equivalent ("there is no corresponding multi-destination read")
// and are priced for daelite only.
//
// --quick shrinks the mesh and request counts for CI smoke; the perf
// floor is enforced only in the full run (CI timing is noisy).

#include <cstring>
#include <iostream>

#include "aelite/config_model.hpp"
#include "alloc/churn.hpp"
#include "analysis/report.hpp"
#include "analysis/setup_time.hpp"
#include "common.hpp"

using namespace daelite;
using analysis::TextTable;
using analysis::fmt;

namespace {

struct LoadPoint {
  const char* label;
  double arrival_rate;
  double mean_hold_cycles;
};

struct ModeResult {
  alloc::ChurnReport report;
  double req_per_sec = 0.0;
};

ModeResult run_mode(const topo::Topology& topo, const tdm::TdmParams& params,
                    const alloc::ChurnRunOptions& run, bool incremental) {
  alloc::AllocatorOptions ao;
  ao.incremental = incremental;
  alloc::SlotAllocator sa(topo, params, ao);
  ModeResult r;
  r.report = alloc::run_churn(sa, run);
  r.req_per_sec = r.report.wall_seconds > 0.0
                      ? static_cast<double>(run.requests) / r.report.wall_seconds
                      : 0.0;
  return r;
}

} // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const int dim = quick ? 4 : 8;
  const std::uint32_t slots = 32;
  const std::uint64_t requests = quick ? 4000 : 100000;
  const topo::Mesh mesh = topo::make_mesh(dim, dim);
  const tdm::TdmParams params = tdm::daelite_params(slots);

  // Offered load rises left to right; the achieved utilization column
  // reports where the schedule actually settled.
  const LoadPoint points[] = {
      {"low", 0.001, 200000.0},
      {"mid", 0.001, 600000.0},
      {"high", 0.001, 2000000.0},
  };

  using sim::JsonValue;
  JsonValue jpoints = JsonValue::array();

  TextTable t("Churn service: incremental vs from-scratch allocation (" +
              std::to_string(requests) + " requests per mode, " + std::to_string(dim) + "x" +
              std::to_string(dim) + " mesh, S=" + std::to_string(slots) + ")");
  t.set_header({"load", "mean util", "admit %", "incr req/s", "scratch req/s", "incr mean us",
                "scratch mean us", "incr p99 us", "scratch p99 us", "speed-up"});

  double high_util_mean = 0.0;
  double high_util_speedup = 0.0;

  for (const LoadPoint& p : points) {
    alloc::ChurnRunOptions run;
    run.requests = requests;
    run.workload.seed = 42;
    run.workload.arrival_rate = p.arrival_rate;
    run.workload.mean_hold_cycles = p.mean_hold_cycles;
    run.measure_latency = true;

    const ModeResult inc = run_mode(mesh.topo, params, run, true);
    const ModeResult scr = run_mode(mesh.topo, params, run, false);

    if (inc.report.decision_digest != scr.report.decision_digest) {
      std::cerr << "error: decision digest mismatch at load '" << p.label
                << "' — incremental and from-scratch allocators diverged\n";
      return 1;
    }
    if (inc.report.metrics.rollback_failures.value() != 0 ||
        scr.report.metrics.rollback_failures.value() != 0) {
      std::cerr << "error: modify roll-back failed during churn\n";
      return 1;
    }

    const auto& im = inc.report.metrics;
    const double admit_pct = im.setups.value()
                                 ? 100.0 * static_cast<double>(im.admitted.value()) /
                                       static_cast<double>(im.setups.value())
                                 : 0.0;
    const double inc_mean_us = inc.report.request_latency_ns.mean() / 1000.0;
    const double scr_mean_us = scr.report.request_latency_ns.mean() / 1000.0;
    const double inc_p99_us =
        static_cast<double>(inc.report.request_latency_ns.quantile(0.99)) / 1000.0;
    const double scr_p99_us =
        static_cast<double>(scr.report.request_latency_ns.quantile(0.99)) / 1000.0;
    const double speedup = inc_mean_us > 0.0 ? scr_mean_us / inc_mean_us : 0.0;
    const double util_mean = im.utilization.mean();
    if (util_mean > high_util_mean) {
      high_util_mean = util_mean;
      high_util_speedup = speedup;
    }

    t.add_row({p.label, fmt(util_mean, 3), fmt(admit_pct, 1), fmt(inc.req_per_sec, 0),
               fmt(scr.req_per_sec, 0), fmt(inc_mean_us, 1), fmt(scr_mean_us, 1),
               fmt(inc_p99_us, 1), fmt(scr_p99_us, 1), fmt(speedup, 1) + "x"});

    JsonValue row = JsonValue::object();
    row["load"] = p.label;
    row["arrival_rate"] = p.arrival_rate;
    row["mean_hold_cycles"] = p.mean_hold_cycles;
    row["requests"] = requests;
    row["mean_utilization"] = util_mean;
    row["admit_fraction"] = admit_pct / 100.0;
    row["fragmentation_mean"] = im.fragmentation.mean();
    row["fragmentation_last"] = im.fragmentation.last();
    row["channel_id_watermark"] = static_cast<std::uint64_t>(inc.report.channel_id_watermark);
    JsonValue modes = JsonValue::object();
    for (const auto* mr : {&inc, &scr}) {
      JsonValue mj = JsonValue::object();
      mj["req_per_sec"] = mr->req_per_sec;
      mj["wall_seconds"] = mr->report.wall_seconds;
      mj["latency_ns"] = to_json(mr->report.request_latency_ns);
      modes[mr == &inc ? "incremental" : "scratch"] = std::move(mj);
    }
    row["modes"] = std::move(modes);
    row["digest_match"] = true;
    jpoints.push_back(std::move(row));
  }
  t.print(std::cout);

  if (!quick) {
    if (high_util_mean < 0.5) {
      std::cerr << "error: highest-load point settled at mean utilization " << high_util_mean
                << " (< 0.5) — the high-load comparison regime was not reached\n";
      return 1;
    }
    if (high_util_speedup <= 1.0) {
      std::cerr << "error: incremental allocation did not beat from-scratch on mean request "
                   "latency at utilization "
                << high_util_mean << " (speed-up " << high_util_speedup << "x)\n";
      return 1;
    }
  }
  std::cout << "The incremental mode memoizes k-shortest paths and replaces the per-slot\n"
               "schedule scan with rotate-and-AND over per-link free masks; decisions are\n"
               "identical (digest-checked), only the per-request cost drops.\n\n";

  // --- Phase B: set-up cost of the admitted connections, daelite vs aelite ----
  const std::uint64_t b_requests = quick ? 2000 : 20000;
  sim::Histogram d_setup(4096), a_setup(65536);
  std::uint64_t multicast_admitted = 0;

  sim::Kernel akernel;
  const topo::Mesh amesh = topo::make_mesh(dim, dim);
  aelite::AeliteConfigHost ahost(akernel, "cfg", amesh.topo, amesh.ni(0, 0),
                                 {tdm::aelite_params(slots), 0});
  const std::uint32_t cool_down = hw::DaeliteNetwork::Options{}.cool_down_cycles;

  alloc::ChurnRunOptions brun;
  brun.requests = b_requests;
  brun.workload.seed = 43;
  brun.workload.mean_hold_cycles = 600000.0;
  brun.on_admit = [&](const alloc::AllocatedConnection& conn) {
    d_setup.add(
        analysis::daelite_ideal_connection_setup_cycles(mesh.topo, params, conn, cool_down));
    if (conn.is_multicast()) {
      ++multicast_admitted; // no aelite equivalent to price
      return;
    }
    aelite::AeliteConfigHost::SetupRequest req;
    req.src_ni = conn.spec.src_ni;     // same mesh shape, same node ids
    req.dst_ni = conn.spec.dst_nis[0];
    req.request_slots = conn.request.slot_count();
    req.response_slots = conn.has_response ? conn.response.slot_count() : 0;
    req.with_readback = true;
    a_setup.add(ahost.ideal_setup_cycles(req));
  };

  {
    alloc::AllocatorOptions ao;
    ao.incremental = true;
    alloc::SlotAllocator sa(mesh.topo, params, ao);
    (void)alloc::run_churn(sa, brun);
  }

  TextTable b("\nSet-up cost of admitted connections (ideal cycles, " +
              std::to_string(b_requests) + " churn ops)");
  b.set_header({"network", "connections", "mean", "p50", "p99", "max"});
  b.add_row({"daelite", std::to_string(d_setup.count()), fmt(d_setup.mean(), 0),
             std::to_string(d_setup.quantile(0.5)), std::to_string(d_setup.quantile(0.99)),
             fmt(d_setup.max(), 0)});
  b.add_row({"aelite", std::to_string(a_setup.count()), fmt(a_setup.mean(), 0),
             std::to_string(a_setup.quantile(0.5)), std::to_string(a_setup.quantile(0.99)),
             fmt(a_setup.max(), 0)});
  b.print(std::cout);
  std::cout << "(" << multicast_admitted
            << " multicast connections priced for daelite only — aelite has no\n"
               "multi-destination set-up.)\n";

  if (a_setup.count() > 0 && d_setup.count() > 0 && a_setup.mean() <= d_setup.mean()) {
    std::cerr << "error: aelite mean set-up cost (" << a_setup.mean()
              << ") did not exceed daelite's (" << d_setup.mean()
              << ") — Table III's ordering should hold under churn too\n";
    return 1;
  }

  const std::string json_path = bench::json_out_path(argc, argv, "churn");
  if (!json_path.empty()) {
    JsonValue doc = JsonValue::object();
    doc["quick"] = quick;
    doc["mesh"] = std::to_string(dim) + "x" + std::to_string(dim);
    doc["slots"] = slots;
    doc["load_points"] = std::move(jpoints);
    JsonValue setup = JsonValue::object();
    setup["requests"] = b_requests;
    setup["daelite_ideal_cycles"] = to_json(d_setup);
    setup["aelite_ideal_cycles"] = to_json(a_setup);
    setup["multicast_daelite_only"] = multicast_admitted;
    doc["setup_cost"] = std::move(setup);
    if (!bench::write_bench_json(json_path, "churn", std::move(doc))) return 1;
  }
  return 0;
}
