// F-7: multicast — daelite implements multicast as a tree rooted at the
// source NI (two router outputs may read the same input in a slot),
// configured with partial-path packets. Compared against Æthereal-style
// multicast by separate connections, which multiplies source-link
// bandwidth by the destination count (paper §II/§IV).

#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"

using namespace daelite;
using namespace daelite::bench;
using analysis::TextTable;
using analysis::fmt;

int main() {
  constexpr std::uint32_t kSlots = 16;
  constexpr std::uint32_t kBandwidth = 4; // slots per wheel

  // --- Resource cost: tree vs separate connections ---------------------------
  TextTable t("Multicast to 3 destinations, 4 slots/wheel (4x4 mesh, S=16)");
  t.set_header({"scheme", "source-link slots", "(link,slot) reservations", "max slots/wheel"});

  const auto mesh = topo::make_mesh(4, 4);
  const std::vector<topo::NodeId> dsts = {mesh.ni(3, 0), mesh.ni(0, 3), mesh.ni(3, 3)};

  std::size_t tree_links = 0;
  std::size_t tree_reservations = 0;
  std::size_t separate_reservations = 0;
  {
    alloc::SlotAllocator a(mesh.topo, tdm::daelite_params(kSlots));
    alloc::ChannelSpec spec;
    spec.src_ni = mesh.ni(0, 0);
    spec.dst_nis = dsts;
    spec.slots_required = kBandwidth;
    const auto r = a.allocate(spec);
    if (!r) return 1;
    tree_links = r->edges.size();
    // Max achievable bandwidth: the whole wheel (source link used once).
    a.release(*r);
    std::uint32_t max_b = 0;
    for (std::uint32_t b = kSlots; b > 0; --b) {
      spec.slots_required = b;
      if (auto rr = a.allocate(spec)) {
        max_b = b;
        a.release(*rr);
        break;
      }
    }
    tree_reservations = tree_links * kBandwidth;
    t.add_row({"daelite multicast tree", std::to_string(kBandwidth),
               std::to_string(tree_reservations), std::to_string(max_b)});
  }
  {
    alloc::SlotAllocator a(mesh.topo, tdm::daelite_params(kSlots));
    std::size_t reservations = 0;
    bool ok = true;
    for (topo::NodeId d : dsts) {
      alloc::ChannelSpec spec;
      spec.src_ni = mesh.ni(0, 0);
      spec.dst_nis = {d};
      spec.slots_required = kBandwidth;
      if (auto r = a.allocate(spec)) {
        reservations += a.schedule().reservations_of(r->channel);
      } else {
        ok = false;
      }
    }
    // Max bandwidth with separate connections: wheel divided by 3.
    separate_reservations = reservations;
    t.add_row({std::string("separate connections") + (ok ? "" : " (failed!)"),
               std::to_string(3 * kBandwidth), std::to_string(reservations),
               std::to_string(kSlots / 3)});
  }
  t.print(std::cout);

  // --- Functional demo: all destinations receive the same stream -------------
  DaeliteRig rig(4, 4, kSlots);
  const auto conn = rig.connect(rig.mesh.ni(0, 0), dsts, kBandwidth, 0);
  const auto h = rig.net->open_connection(conn);
  rig.net->run_config();

  hw::Ni& src = rig.net->ni(rig.mesh.ni(0, 0));
  constexpr std::size_t kWords = 200;
  std::size_t pushed = 0;
  std::vector<std::size_t> got(dsts.size(), 0);
  for (long guard = 0; guard < 200000; ++guard) {
    if (pushed < kWords && src.tx_push(h.src_tx_q, static_cast<std::uint32_t>(pushed))) ++pushed;
    rig.kernel.step();
    bool done = pushed == kWords;
    for (std::size_t i = 0; i < dsts.size(); ++i) {
      while (rig.net->ni(dsts[i]).rx_pop(h.dst_rx_qs[i])) ++got[i];
      done = done && got[i] == kWords;
    }
    if (done) break;
  }

  TextTable d("\nSimulated multicast delivery (flow control off, as per the paper)");
  d.set_header({"destination", "words received", "flit latency (cycles)"});
  for (std::size_t i = 0; i < dsts.size(); ++i) {
    const auto& lat = rig.net->ni(dsts[i]).stats().latency;
    d.add_row({rig.mesh.topo.node(dsts[i]).name, std::to_string(got[i]),
               fmt(lat.min(), 0) + " (constant)"});
  }
  d.print(std::cout);
  std::cout << "The tree uses the source NI link once for all destinations; separate\n"
              "connections divide the source link bandwidth by the destination count\n"
              "and reserve "
            << fmt(static_cast<double>(separate_reservations) /
                       static_cast<double>(tree_reservations), 1)
            << "x more (link,slot) resources for the same stream.\n";
  return 0;
}
