// C-1 / F-2: network traversal latency — daelite's 2-cycle hops vs
// aelite's 3-cycle hops (paper §V: "a reduction in the network traversal
// latency of 33%"), measured in cycle-accurate simulation and
// cross-checked against the analytic formula. Also reports the
// scheduling-latency benefit of daelite's smaller slots.

#include <iostream>

#include "analysis/formulas.hpp"
#include "analysis/report.hpp"
#include "common.hpp"

using namespace daelite;
using namespace daelite::bench;
using analysis::TextTable;
using analysis::fmt;
using analysis::pct;

int main() {
  constexpr std::uint32_t kSlots = 16;

  TextTable t("Network traversal latency (flit, source NI output to destination NI input)");
  t.set_header({"hops", "daelite sim", "daelite analytic", "aelite sim", "aelite analytic",
                "reduction"});

  struct Pair {
    int sx, sy, dx, dy;
  };
  for (const Pair c : {Pair{0, 0, 1, 0}, Pair{0, 0, 2, 1}, Pair{0, 1, 3, 2}, Pair{0, 0, 3, 3}}) {
    DaeliteRig drig(4, 4, kSlots);
    const auto dconn = drig.connect(drig.mesh.ni(c.sx, c.sy), {drig.mesh.ni(c.dx, c.dy)}, 2);
    const auto dh = drig.net->open_connection(dconn);
    drig.net->run_config();
    drig.stream(dh, 50);
    const auto& dlat = drig.net->ni(dconn.request.dst_nis[0]).stats().latency;

    AeliteRig arig(4, 4, kSlots);
    const auto aconn = arig.connect(arig.mesh.ni(c.sx, c.sy), arig.mesh.ni(c.dx, c.dy), 2);
    const auto ah = arig.net->open_connection(aconn);
    arig.stream(ah, 50);
    const auto& alat = arig.net->ni(aconn.request.dst_nis[0]).stats().latency;

    const std::size_t hops = dconn.request.edges.size();
    const auto d_an = analysis::traversal_latency_cycles(hops, tdm::daelite_params(kSlots));
    const auto a_an = analysis::traversal_latency_cycles(hops, tdm::aelite_params(kSlots));
    t.add_row({std::to_string(hops), fmt(dlat.min(), 0), std::to_string(d_an), fmt(alat.min(), 0),
               std::to_string(a_an), pct(1.0 - dlat.min() / alat.min())});
  }
  t.print(std::cout);

  // Scheduling latency: daelite's 2-word slots halve the wait for a slot
  // compared to aelite's 3-word slots at the same wheel size.
  TextTable s("\nScheduling latency at the source NI (1 owned slot, wheel of 16 slots)");
  s.set_header({"network", "slot size", "avg wait (cycles)", "worst wait (cycles)"});
  const auto d = analysis::scheduling_latency({0}, tdm::daelite_params(kSlots));
  const auto a = analysis::scheduling_latency({0}, tdm::aelite_params(kSlots));
  s.add_row({"daelite", "2 words", fmt(d.average_cycles, 1), std::to_string(d.worst_cycles)});
  s.add_row({"aelite", "3 words", fmt(a.average_cycles, 1), std::to_string(a.worst_cycles)});
  s.print(std::cout);
  std::cout << "Per-hop latency: daelite 2 cycles (link + crossbar) vs aelite 3 -> 33%\n"
               "lower traversal latency, with zero jitter on both (contention-free).\n";
  return 0;
}
