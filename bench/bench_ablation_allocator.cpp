// Ablation: allocation algorithm — fixed-path (k-shortest candidates,
// then slots) versus joint space-time search (UMARS-style, path and slots
// together). The paper leverages the "standard Æthereal tools" for
// dimensioning; this bench quantifies how much the allocator itself
// contributes to admissible load on the same hardware.

#include <iostream>

#include "alloc/allocator.hpp"
#include "alloc/joint_alloc.hpp"
#include "analysis/report.hpp"
#include "sim/random.hpp"
#include "topology/generators.hpp"

using namespace daelite;
using analysis::TextTable;
using analysis::pct;

namespace {

struct Demand {
  topo::NodeId src, dst;
  std::uint32_t slots;
};

std::vector<Demand> demands(const topo::Mesh& m, std::uint64_t seed, std::size_t n) {
  sim::Xoshiro256 rng(seed);
  const auto nis = m.all_nis();
  std::vector<Demand> out;
  while (out.size() < n) {
    const auto s = nis[rng.below(nis.size())];
    const auto d = nis[rng.below(nis.size())];
    if (s == d) continue;
    out.push_back({s, d, static_cast<std::uint32_t>(rng.range(2, 6))});
  }
  return out;
}

} // namespace

int main() {
  constexpr std::uint32_t kWheel = 16;
  const auto mesh = topo::make_mesh(4, 4);

  TextTable t("Admission under random load: fixed-path vs joint space-time allocation");
  t.set_header({"seed", "fixed k=2", "fixed k=8", "joint", "joint vs fixed k=8"});

  double gain = 0;
  int n = 0;
  for (std::uint64_t seed : {2ull, 9ull, 21ull, 77ull, 154ull, 300ull}) {
    const auto ds = demands(mesh, seed, 80);

    auto run_fixed = [&](std::size_t k) {
      alloc::AllocatorOptions opt;
      opt.path_candidates = k;
      alloc::SlotAllocator a(mesh.topo, tdm::daelite_params(kWheel), opt);
      std::uint64_t admitted = 0;
      for (const Demand& d : ds) {
        alloc::ChannelSpec spec;
        spec.src_ni = d.src;
        spec.dst_nis = {d.dst};
        spec.slots_required = d.slots;
        if (a.allocate(spec)) admitted += d.slots;
      }
      return admitted;
    };
    const auto f2 = run_fixed(2);
    const auto f8 = run_fixed(8);

    alloc::SlotAllocator ja(mesh.topo, tdm::daelite_params(kWheel));
    std::uint64_t j = 0;
    for (const Demand& d : ds) {
      alloc::ChannelSpec spec;
      spec.src_ni = d.src;
      spec.dst_nis = {d.dst};
      spec.slots_required = d.slots;
      if (alloc::allocate_joint(ja, spec)) j += d.slots;
    }

    gain += static_cast<double>(j) / static_cast<double>(f8) - 1.0;
    ++n;
    t.add_row({std::to_string(seed), std::to_string(f2), std::to_string(f8), std::to_string(j),
               pct(static_cast<double>(j) / static_cast<double>(f8) - 1.0)});
  }
  t.print(std::cout);
  std::cout << "Average joint-search gain over 8-candidate fixed-path allocation: "
            << pct(gain / n)
            << " - in *sequential greedy* admission the exact search is a wash: it\n"
               "admits marginal demands over long detours, consuming capacity that\n"
               "later demands then miss. Exactness matters per request:\n\n";

  // Per-request admissibility on a fragmented schedule: can each demand be
  // admitted *individually* (allocate, then release)?
  TextTable u("Per-request admissibility on a 55%-fragmented schedule (higher is better)");
  u.set_header({"seed", "fixed k=2", "fixed k=8", "joint (exact)"});
  for (std::uint64_t seed : {2ull, 9ull, 21ull, 77ull}) {
    auto fragment = [&](alloc::SlotAllocator& a) {
      sim::Xoshiro256 rng(seed * 1000);
      for (topo::LinkId l = 0; l < mesh.topo.link_count(); ++l)
        for (tdm::Slot s2 = 0; s2 < kWheel; ++s2)
          if (rng.chance(0.55)) a.reserve_raw(l, s2, 888);
    };
    const auto ds = demands(mesh, seed, 100);

    auto count_fixed = [&](std::size_t k) {
      alloc::AllocatorOptions opt;
      opt.path_candidates = k;
      alloc::SlotAllocator a(mesh.topo, tdm::daelite_params(kWheel), opt);
      fragment(a);
      int ok = 0;
      for (const Demand& d : ds) {
        alloc::ChannelSpec spec;
        spec.src_ni = d.src;
        spec.dst_nis = {d.dst};
        spec.slots_required = std::max(1u, d.slots / 2);
        if (auto r = a.allocate(spec)) {
          ++ok;
          a.release(*r);
        }
      }
      return ok;
    };

    alloc::SlotAllocator ja(mesh.topo, tdm::daelite_params(kWheel));
    fragment(ja);
    int jok = 0;
    for (const Demand& d : ds) {
      alloc::ChannelSpec spec;
      spec.src_ni = d.src;
      spec.dst_nis = {d.dst};
      spec.slots_required = std::max(1u, d.slots / 2);
      if (auto r = alloc::allocate_joint(ja, spec)) {
        ++jok;
        ja.release(*r);
      }
    }
    u.add_row({std::to_string(seed), std::to_string(count_fixed(2)) + "/100",
               std::to_string(count_fixed(8)) + "/100", std::to_string(jok) + "/100"});
  }
  u.print(std::cout);
  std::cout << "The joint search admits a request whenever ANY loopless path (within the\n"
               "depth bound) has enough aligned free slots - strictly dominating the\n"
               "fixed-path allocators per request. Both program identical daelite\n"
               "hardware: this is purely a design-time tool choice, and a use-case\n"
               "compiler should pair the joint search with admission ordering.\n";
  return 0;
}
