// Scaling bench: stride-scheduled kernel vs the per-cycle reference.
//
// Sweeps mesh sizes 2x2 .. 10x10 and slot-table sizes on an idle-heavy
// scenario — configure two cross connections through the broadcast tree,
// drive a saturated traffic burst, then let the network sit idle for the
// bulk of the run. The idle tail is the regime the stride scheduler
// targets: routers/NIs dispatch only at slot starts, the config tree is
// suspended, and the kernel fast-forwards across cycles with no due
// component. The per-cycle reference ticks every component every cycle.
//
// Every sweep point cross-checks the two schedulers against each other
// (delivered words, configuration time, final cycle, and a digest over
// every per-output forwarded counter and NI link counter), and one 8x8
// point additionally compares full NetworkReport JSON from the end-to-end
// runner. Any mismatch — or an 8x8 idle-heavy speedup below 2x in the
// full sweep — fails the bench.
//
// Each idle-heavy point also times the batched SoA dispatch path
// (DaeliteNetwork::enable_soa — hw::SlotEngine forwarding whole slots
// over flat slot-table pools, skipping idle elements) against the
// component-path stride run, with the same identity checks. The SoA
// speedup lands in BENCH_scale.json (soa_ms / soa_speedup per row,
// soa_speedup_8x8_s16 at the gate point), where CI requires >= 1.0x on
// the largest quick-mode mesh; the full sweep enforces a 2x floor
// in-binary.
//
// A second sweep measures sharded single-simulation parallelism
// (Kernel::set_shards / DaeliteNetwork::assign_shards): saturated traffic
// on large meshes, where every router and NI dispatches at every slot
// start, timed at shard counts 1/2/4/8 — each point both on the component
// path and with SoA engines (one per shard band). Every combination must
// reproduce the shards=1 component digest and word count exactly
// (sharding and SoA are pure wall-clock optimizations); the full sweep
// additionally enforces a 2x speedup floor at 32x32 with 4 shards when
// the machine has >= 4 hardware threads. The speedup curves are exported
// into BENCH_scale.json (shard_rows), where CI gates the largest
// quick-mode mesh at >= 1.0x.
//
// Usage: bench_scale [--quick] [--json [dir]]
//   --quick   reduced sweep for CI smoke (fewer/smaller meshes, shorter
//             runs; the speedup floors are not enforced in-binary — CI
//             machines are noisy — but the JSON gate still applies)

#include <chrono>
#include <cstring>
#include <iostream>
#include <limits>
#include <thread>

#include "analysis/report.hpp"
#include "common.hpp"
#include "soc/runner.hpp"

using namespace daelite;
using namespace daelite::bench;
using analysis::TextTable;
using analysis::fmt;

namespace {

struct RunResult {
  double ms = 0.0;             ///< wall-clock of configure + traffic + idle
  std::uint64_t words = 0;     ///< payload words delivered across both connections
  sim::Cycle cfg_cycles = 0;   ///< broadcast-tree configuration time
  sim::Cycle end_cycle = 0;    ///< kernel.now() at the end of the run
  std::uint64_t digest = 0;    ///< FNV-1a over all forwarded/link counters
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// One idle-heavy run: open two corner-crossing connections, configure,
/// saturate for `traffic_cycles`, then run `idle_cycles` with no host
/// activity. Only the simulated phases are timed (network construction
/// and allocation are identical work for both schedulers).
RunResult run_idle_heavy(sim::Scheduler scheduler, int n, std::uint32_t slots,
                         sim::Cycle traffic_cycles, sim::Cycle idle_cycles, bool soa = false) {
  DaeliteRig rig(n, n, slots, alloc::SlotPolicy::kSpread, 32, scheduler);
  if (soa) rig.net->enable_soa();
  const auto c1 = rig.connect(rig.mesh.ni(0, 0), {rig.mesh.ni(n - 1, n - 1)}, 2, 1);
  const auto c2 = rig.connect(rig.mesh.ni(n - 1, 0), {rig.mesh.ni(0, n - 1)}, 2, 1);

  RunResult r;
  const auto t0 = std::chrono::steady_clock::now();
  const auto h1 = rig.net->open_connection(c1);
  const auto h2 = rig.net->open_connection(c2);
  r.cfg_cycles = rig.net->run_config();

  hw::Ni& s1 = rig.net->ni(h1.conn.request.src_ni);
  hw::Ni& s2 = rig.net->ni(h2.conn.request.src_ni);
  hw::Ni& d1 = rig.net->ni(h1.conn.request.dst_nis[0]);
  hw::Ni& d2 = rig.net->ni(h2.conn.request.dst_nis[0]);
  for (sim::Cycle c = 0; c < traffic_cycles; ++c) {
    while (s1.tx_push(h1.src_tx_q, 1)) {
    }
    while (s2.tx_push(h2.src_tx_q, 1)) {
    }
    rig.kernel.step();
    while (d1.rx_pop(h1.dst_rx_qs[0])) ++r.words;
    while (d2.rx_pop(h2.dst_rx_qs[0])) ++r.words;
  }
  // Stop pushing and consume until both connections are empty: leftover
  // words stuck behind exhausted credits would otherwise stall forever
  // (the idle tail pops nothing) and keep the network non-quiescent.
  long guard = 200000;
  while (--guard > 0 &&
         (s1.tx_level(h1.src_tx_q) != 0 || s2.tx_level(h2.src_tx_q) != 0 ||
          d1.rx_level(h1.dst_rx_qs[0]) != 0 || d2.rx_level(h2.dst_rx_qs[0]) != 0)) {
    rig.kernel.step();
    while (d1.rx_pop(h1.dst_rx_qs[0])) ++r.words;
    while (d2.rx_pop(h2.dst_rx_qs[0])) ++r.words;
  }
  // Idle tail: a drained network carrying only empty slots until the run
  // budget ends — the regime the stride scheduler's quiescence
  // fast-forward collapses to O(1).
  rig.kernel.run(idle_cycles);
  while (d1.rx_pop(h1.dst_rx_qs[0])) ++r.words;
  while (d2.rx_pop(h2.dst_rx_qs[0])) ++r.words;
  const auto t1 = std::chrono::steady_clock::now();

  r.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.end_cycle = rig.kernel.now();
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t l = 0; l < rig.mesh.topo.link_count(); ++l) {
    const topo::Link& link = rig.mesh.topo.link(static_cast<topo::LinkId>(l));
    h = fnv1a(h, rig.mesh.topo.is_router(link.src)
                     ? rig.net->router(link.src).forwarded_on(link.src_port)
                     : rig.net->ni(link.src).stats().link_busy_slots);
  }
  r.digest = h;
  return r;
}

/// One saturated run for the shard sweep: four corner-to-opposite-corner
/// connections keep every quadrant's links carrying flits, so no cycle is
/// quiescent and every router/NI dispatches at every slot start — the wide
/// parallel region sharding targets. Only the traffic loop is timed
/// (construction and broadcast-tree configuration are identical work at
/// every shard count).
RunResult run_saturated_sharded(std::uint32_t shards, int n, std::uint32_t slots,
                                sim::Cycle traffic_cycles, bool soa = false) {
  DaeliteRig rig(n, n, slots, alloc::SlotPolicy::kSpread, 32, sim::Scheduler::kStride);
  if (shards > 1) rig.net->assign_shards(shards);
  if (soa) rig.net->enable_soa();
  const std::pair<int, int> corners[4] = {{0, 0}, {n - 1, 0}, {0, n - 1}, {n - 1, n - 1}};
  std::vector<hw::ConnectionHandle> hs;
  for (int i = 0; i < 4; ++i) {
    const auto& s = corners[i];
    const auto& d = corners[3 - i];
    hs.push_back(rig.net->open_connection(
        rig.connect(rig.mesh.ni(s.first, s.second), {rig.mesh.ni(d.first, d.second)}, 2, 1)));
  }
  RunResult r;
  r.cfg_cycles = rig.net->run_config();

  const auto t0 = std::chrono::steady_clock::now();
  for (sim::Cycle c = 0; c < traffic_cycles; ++c) {
    for (const auto& h : hs) {
      hw::Ni& src = rig.net->ni(h.conn.request.src_ni);
      while (src.tx_push(h.src_tx_q, 1)) {
      }
    }
    rig.kernel.step();
    for (const auto& h : hs) {
      hw::Ni& dst = rig.net->ni(h.conn.request.dst_nis[0]);
      while (dst.rx_pop(h.dst_rx_qs[0])) ++r.words;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  r.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.end_cycle = rig.kernel.now();
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t l = 0; l < rig.mesh.topo.link_count(); ++l) {
    const topo::Link& link = rig.mesh.topo.link(static_cast<topo::LinkId>(l));
    h = fnv1a(h, rig.mesh.topo.is_router(link.src)
                     ? rig.net->router(link.src).forwarded_on(link.src_port)
                     : rig.net->ni(link.src).stats().link_busy_slots);
  }
  r.digest = h;
  return r;
}

/// End-to-end runner comparison: same synthetic scenario through every
/// dispatch mode — per-cycle reference, component stride, SoA, sharded
/// SoA — and the full NetworkReport JSON must match byte for byte.
bool reports_identical(int n, std::uint32_t slots, sim::Cycle run_cycles) {
  soc::Scenario sc;
  sc.kind = soc::Scenario::TopologyKind::kMesh;
  sc.width = n;
  sc.height = n;
  sc.slots = slots;
  sc.run_cycles = run_cycles;
  sc.raw.push_back({"c0", {0, 0}, {{n - 1, n - 1}}, 100.0, 20.0,
                    std::numeric_limits<double>::infinity()});
  sc.raw.push_back({"c1", {n - 1, 0}, {{0, n - 1}}, 100.0, 0.0,
                    std::numeric_limits<double>::infinity()});
  const auto run = [&](sim::Scheduler scheduler, bool soa, std::uint32_t shards) {
    soc::RunSpec spec;
    spec.scenario = sc;
    spec.scheduler = scheduler;
    spec.soa = soa;
    spec.shards = shards;
    return soc::run_scenario(spec).to_json().dump(2);
  };
  const std::string ref = run(sim::Scheduler::kReference, false, 1);
  return run(sim::Scheduler::kStride, false, 1) == ref &&
         run(sim::Scheduler::kStride, true, 1) == ref &&
         run(sim::Scheduler::kStride, true, 2) == ref;
}

} // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<int> meshes =
      quick ? std::vector<int>{2, 4, 8} : std::vector<int>{2, 4, 6, 8, 10};
  const std::vector<std::uint32_t> slot_counts =
      quick ? std::vector<std::uint32_t>{16} : std::vector<std::uint32_t>{8, 16, 32};
  const sim::Cycle traffic_cycles = quick ? 500 : 2000;
  const sim::Cycle idle_cycles = quick ? 5000 : 30000;

  using sim::JsonValue;
  JsonValue jrows = JsonValue::array();

  TextTable t("Stride vs per-cycle reference, idle-heavy runs (" +
              std::to_string(traffic_cycles) + " traffic + " + std::to_string(idle_cycles) +
              " idle cycles)");
  t.set_header({"mesh", "slots", "stride (ms)", "soa (ms)", "reference (ms)", "ref/stride",
                "stride/soa", "identical"});

  bool all_identical = true;
  bool soa_identical = true;
  double speedup_8x8 = 0.0;
  double soa_speedup_8x8 = 0.0;
  for (int n : meshes) {
    for (std::uint32_t slots : slot_counts) {
      // Warm-up pass stabilises allocator/CPU caches before timing.
      (void)run_idle_heavy(sim::Scheduler::kStride, n, slots, traffic_cycles / 10,
                           idle_cycles / 10);
      const RunResult s = run_idle_heavy(sim::Scheduler::kStride, n, slots, traffic_cycles,
                                         idle_cycles);
      const RunResult a = run_idle_heavy(sim::Scheduler::kStride, n, slots, traffic_cycles,
                                         idle_cycles, /*soa=*/true);
      const RunResult r = run_idle_heavy(sim::Scheduler::kReference, n, slots, traffic_cycles,
                                         idle_cycles);
      const bool same = s.words == r.words && s.cfg_cycles == r.cfg_cycles &&
                        s.end_cycle == r.end_cycle && s.digest == r.digest;
      const bool soa_same = a.words == s.words && a.cfg_cycles == s.cfg_cycles &&
                            a.end_cycle == s.end_cycle && a.digest == s.digest;
      all_identical = all_identical && same;
      soa_identical = soa_identical && soa_same;
      const double speedup = s.ms > 0.0 ? r.ms / s.ms : 0.0;
      const double soa_speedup = a.ms > 0.0 ? s.ms / a.ms : 0.0;
      if (n == 8 && slots == 16) {
        speedup_8x8 = speedup;
        soa_speedup_8x8 = soa_speedup;
      }

      t.add_row({std::to_string(n) + "x" + std::to_string(n), std::to_string(slots),
                 fmt(s.ms, 2), fmt(a.ms, 2), fmt(r.ms, 2), fmt(speedup, 2) + "x",
                 fmt(soa_speedup, 2) + "x", same && soa_same ? "yes" : "NO"});

      JsonValue row = JsonValue::object();
      row["mesh"] = n;
      row["slots"] = slots;
      row["traffic_cycles"] = traffic_cycles;
      row["idle_cycles"] = idle_cycles;
      row["words_delivered"] = s.words;
      row["cfg_cycles"] = s.cfg_cycles;
      row["stride_ms"] = s.ms;
      row["soa_ms"] = a.ms;
      row["reference_ms"] = r.ms;
      row["speedup"] = speedup;
      row["soa_speedup"] = soa_speedup;
      row["identical"] = same;
      row["soa_identical"] = soa_same;
      jrows.push_back(std::move(row));
    }
  }
  t.print(std::cout);
  std::cout << "The idle tail dominates: the stride scheduler dispatches routers/NIs\n"
               "only at slot starts, suspends the drained configuration tree, and\n"
               "fast-forwards spans where every active component is quiescent; the\n"
               "reference ticks every component every cycle. The SoA column batches\n"
               "each slot's forwarding into one engine pass over flat slot-table\n"
               "pools and skips elements whose links are provably idle that slot.\n";

  const bool report_ok = reports_identical(8, 16, quick ? 2000 : 10000);
  std::cout << "8x8 end-to-end NetworkReport JSON (reference vs stride vs soa vs soa+shards): "
            << (report_ok ? "identical" : "DIFFERENT") << "\n";

  // --- Shard sweep: saturated big meshes at 1/2/4/8 shards -------------------
  const std::vector<int> shard_meshes = quick ? std::vector<int>{8, 16}
                                              : std::vector<int>{16, 32, 64};
  const std::vector<std::uint32_t> shard_counts{1, 2, 4, 8};
  const sim::Cycle shard_traffic = quick ? 600 : 1200;
  const unsigned hw_threads = std::thread::hardware_concurrency();

  TextTable ts("Sharded single-simulation parallelism, saturated runs (" +
               std::to_string(shard_traffic) + " traffic cycles, " +
               std::to_string(hw_threads) + " hardware threads)");
  ts.set_header({"mesh", "shards", "time (ms)", "soa (ms)", "speedup", "soa speedup",
                 "identical"});

  JsonValue jshard = JsonValue::array();
  bool shards_identical = true;
  double shard_speedup_32_s4 = 0.0;
  for (int n : shard_meshes) {
    RunResult base;
    for (std::uint32_t shards : shard_counts) {
      // Warm-up pass stabilises allocator/CPU caches before timing.
      (void)run_saturated_sharded(shards, n, 16, shard_traffic / 10);
      const RunResult r = run_saturated_sharded(shards, n, 16, shard_traffic);
      const RunResult a = run_saturated_sharded(shards, n, 16, shard_traffic, /*soa=*/true);
      if (shards == 1) base = r;
      const bool same = r.words == base.words && r.cfg_cycles == base.cfg_cycles &&
                        r.end_cycle == base.end_cycle && r.digest == base.digest &&
                        a.words == base.words && a.cfg_cycles == base.cfg_cycles &&
                        a.end_cycle == base.end_cycle && a.digest == base.digest;
      shards_identical = shards_identical && same;
      const double speedup = r.ms > 0.0 ? base.ms / r.ms : 0.0;
      const double soa_speedup = a.ms > 0.0 ? base.ms / a.ms : 0.0;
      if (n == 32 && shards == 4) shard_speedup_32_s4 = speedup;

      ts.add_row({std::to_string(n) + "x" + std::to_string(n), std::to_string(shards),
                  fmt(r.ms, 2), fmt(a.ms, 2), fmt(speedup, 2) + "x", fmt(soa_speedup, 2) + "x",
                  same ? "yes" : "NO"});

      JsonValue row = JsonValue::object();
      row["mesh"] = n;
      row["shards"] = shards;
      row["traffic_cycles"] = shard_traffic;
      row["words_delivered"] = r.words;
      row["ms"] = r.ms;
      row["soa_ms"] = a.ms;
      row["speedup"] = speedup;
      row["soa_speedup"] = soa_speedup;
      row["identical"] = same;
      jshard.push_back(std::move(row));
    }
  }
  ts.print(std::cout);
  std::cout << "Sharding splits each slot start's mesh-wide dispatch across threads\n"
               "inside one kernel; the TDM schedule guarantees one slot of lookahead\n"
               "on every cross-shard link, so every shard count is byte-identical.\n"
               "The soa column runs one SlotEngine per shard band on top.\n";

  const std::string json_path = bench::json_out_path(argc, argv, "scale");
  if (!json_path.empty()) {
    JsonValue doc = JsonValue::object();
    doc["quick"] = quick;
    doc["rows"] = std::move(jrows);
    doc["speedup_8x8_s16"] = speedup_8x8;
    doc["soa_speedup_8x8_s16"] = soa_speedup_8x8;
    doc["soa_identical"] = soa_identical;
    doc["reports_identical_8x8"] = report_ok;
    doc["shard_rows"] = std::move(jshard);
    doc["shards_identical"] = shards_identical;
    doc["shard_speedup_32x32_s4"] = shard_speedup_32_s4;
    doc["hardware_threads"] = static_cast<std::uint64_t>(hw_threads);
    if (!bench::write_bench_json(json_path, "scale", std::move(doc))) return 1;
  }

  if (!all_identical || !report_ok) {
    std::cerr << "bench_scale: scheduler outputs differ\n";
    return 1;
  }
  if (!soa_identical) {
    std::cerr << "bench_scale: SoA outputs differ from the component path\n";
    return 1;
  }
  if (!shards_identical) {
    std::cerr << "bench_scale: sharded outputs differ from shards=1\n";
    return 1;
  }
  if (!quick && speedup_8x8 < 2.0) {
    std::cerr << "bench_scale: 8x8 idle-heavy speedup " << speedup_8x8 << "x below the 2x floor\n";
    return 1;
  }
  if (!quick && soa_speedup_8x8 < 2.0) {
    std::cerr << "bench_scale: 8x8 SoA speedup " << soa_speedup_8x8 << "x below the 2x floor\n";
    return 1;
  }
  // The shard floor is gated on real parallel hardware: correctness (the
  // identity checks above) holds on any machine, but a 1-core box cannot
  // demonstrate speedup.
  if (!quick && hw_threads >= 4 && shard_speedup_32_s4 < 2.0) {
    std::cerr << "bench_scale: 32x32 sharded speedup " << shard_speedup_32_s4
              << "x below the 2x floor (4 shards, " << hw_threads << " hw threads)\n";
    return 1;
  }
  return 0;
}
