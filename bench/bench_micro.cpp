// Micro-benchmarks (google-benchmark): simulator throughput and allocator
// cost. These are engineering benchmarks for the model itself, not paper
// artifacts — they document that the cycle-accurate model is fast enough
// for the experiments above.

#include <benchmark/benchmark.h>

#include "alloc/allocator.hpp"
#include "alloc/joint_alloc.hpp"
#include "alloc/usecase.hpp"
#include "daelite/network.hpp"
#include "sim/random.hpp"
#include "sim/trace.hpp"
#include "topology/generators.hpp"
#include "topology/path.hpp"

using namespace daelite;

namespace {

void BM_KernelCyclesIdle4x4(benchmark::State& state) {
  const auto mesh = topo::make_mesh(4, 4);
  sim::Kernel k;
  hw::DaeliteNetwork::Options opt;
  opt.tdm = tdm::daelite_params(16);
  opt.cfg_root = mesh.ni(0, 0);
  hw::DaeliteNetwork net(k, mesh.topo, opt);
  for (auto _ : state) k.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KernelCyclesIdle4x4);

void BM_KernelCyclesLoaded4x4(benchmark::State& state) {
  const auto mesh = topo::make_mesh(4, 4);
  sim::Kernel k;
  hw::DaeliteNetwork::Options opt;
  opt.tdm = tdm::daelite_params(16);
  opt.cfg_root = mesh.ni(0, 0);
  hw::DaeliteNetwork net(k, mesh.topo, opt);
  alloc::SlotAllocator alloc(mesh.topo, opt.tdm);

  std::vector<hw::ConnectionHandle> handles;
  sim::Xoshiro256 rng(5);
  const auto nis = mesh.all_nis();
  while (handles.size() < 10) {
    const auto s = nis[rng.below(nis.size())];
    const auto d = nis[rng.below(nis.size())];
    if (s == d) continue;
    alloc::UseCase uc;
    uc.connections.push_back({"c", s, {d}, 1, 1});
    auto a = alloc::allocate_use_case(alloc, uc);
    if (!a) continue;
    handles.push_back(net.open_connection(a->connections[0]));
  }
  net.run_config();

  std::size_t i = 0;
  for (auto _ : state) {
    auto& h = handles[i++ % handles.size()];
    net.ni(h.conn.request.src_ni).tx_push(h.src_tx_q, 1);
    k.step();
    net.ni(h.conn.request.dst_nis[0]).rx_pop(h.dst_rx_qs[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KernelCyclesLoaded4x4);

// The disabled record() path must be branch-only — simulations run with
// tracing off by default and may not pay for instrumentation.
void BM_TracerRecordDisabled(benchmark::State& state) {
  sim::Tracer t(false);
  std::uint64_t cycle = 0;
  for (auto _ : state) {
    t.record(cycle++, 0, sim::TraceEvent::kFlitInject, 1, 2);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerRecordDisabled);

void BM_TracerRecordEnabled(benchmark::State& state) {
  sim::Tracer t(true, 1u << 16);
  const auto c = t.intern("bench");
  std::uint64_t cycle = 0;
  for (auto _ : state) {
    t.record(cycle++, c, sim::TraceEvent::kFlitInject, 1, 2);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerRecordEnabled);

void BM_KernelCyclesLoaded4x4Traced(benchmark::State& state) {
  const auto mesh = topo::make_mesh(4, 4);
  sim::Kernel k;
  sim::Tracer tracer(true, 1u << 16);
  k.set_tracer(&tracer);
  hw::DaeliteNetwork::Options opt;
  opt.tdm = tdm::daelite_params(16);
  opt.cfg_root = mesh.ni(0, 0);
  hw::DaeliteNetwork net(k, mesh.topo, opt);
  alloc::SlotAllocator alloc(mesh.topo, opt.tdm);
  alloc::UseCase uc;
  uc.connections.push_back({"c", mesh.ni(0, 0), {mesh.ni(3, 3)}, 1, 1});
  auto a = alloc::allocate_use_case(alloc, uc);
  auto h = net.open_connection(a->connections[0]);
  net.run_config();
  for (auto _ : state) {
    net.ni(h.conn.request.src_ni).tx_push(h.src_tx_q, 1);
    k.step();
    net.ni(h.conn.request.dst_nis[0]).rx_pop(h.dst_rx_qs[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KernelCyclesLoaded4x4Traced);

void BM_ShortestPath8x8(benchmark::State& state) {
  const auto mesh = topo::make_mesh(8, 8);
  topo::PathFinder f(mesh.topo);
  for (auto _ : state) benchmark::DoNotOptimize(f.shortest(mesh.ni(0, 0), mesh.ni(7, 7)));
}
BENCHMARK(BM_ShortestPath8x8);

void BM_AllocateRelease4x4(benchmark::State& state) {
  const auto mesh = topo::make_mesh(4, 4);
  alloc::SlotAllocator a(mesh.topo, tdm::daelite_params(16));
  alloc::ChannelSpec spec;
  spec.src_ni = mesh.ni(0, 0);
  spec.dst_nis = {mesh.ni(3, 3)};
  spec.slots_required = 2;
  for (auto _ : state) {
    auto r = a.allocate(spec);
    benchmark::DoNotOptimize(r);
    a.release(*r);
  }
}
BENCHMARK(BM_AllocateRelease4x4);

void BM_MulticastAllocate4x4(benchmark::State& state) {
  const auto mesh = topo::make_mesh(4, 4);
  alloc::SlotAllocator a(mesh.topo, tdm::daelite_params(16));
  alloc::ChannelSpec spec;
  spec.src_ni = mesh.ni(0, 0);
  spec.dst_nis = {mesh.ni(3, 0), mesh.ni(0, 3), mesh.ni(3, 3)};
  spec.slots_required = 2;
  for (auto _ : state) {
    auto r = a.allocate(spec);
    benchmark::DoNotOptimize(r);
    a.release(*r);
  }
}
BENCHMARK(BM_MulticastAllocate4x4);

void BM_JointAllocate4x4(benchmark::State& state) {
  const auto mesh = topo::make_mesh(4, 4);
  alloc::SlotAllocator a(mesh.topo, tdm::daelite_params(16));
  alloc::ChannelSpec spec;
  spec.src_ni = mesh.ni(0, 0);
  spec.dst_nis = {mesh.ni(3, 3)};
  spec.slots_required = 2;
  for (auto _ : state) {
    auto r = alloc::allocate_joint(a, spec);
    benchmark::DoNotOptimize(r);
    a.release(*r);
  }
}
BENCHMARK(BM_JointAllocate4x4);

} // namespace

BENCHMARK_MAIN();
