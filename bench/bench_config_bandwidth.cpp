// C-3: configuration-slot bandwidth loss — aelite reserves at least one
// slot on each NI<->router link for configuration traffic (6.25% of data
// bandwidth at a 16-slot wheel); daelite's dedicated tree leaves the data
// network untouched (paper §V).

#include <iostream>

#include "aelite/network.hpp"
#include "alloc/allocator.hpp"
#include "analysis/formulas.hpp"
#include "analysis/report.hpp"
#include "topology/generators.hpp"

using namespace daelite;
using analysis::TextTable;
using analysis::pct;

namespace {

/// Maximum slots a corner-to-corner channel can get on a 2x2 mesh.
std::uint32_t max_channel_slots(alloc::SlotAllocator& a, const topo::Mesh& m) {
  for (std::uint32_t want = a.params().num_slots; want > 0; --want) {
    alloc::ChannelSpec spec;
    spec.src_ni = m.ni(0, 0);
    spec.dst_nis = {m.ni(1, 1)};
    spec.slots_required = want;
    if (auto r = a.allocate(spec)) {
      a.release(*r);
      return want;
    }
  }
  return 0;
}

} // namespace

int main() {
  TextTable t("Data bandwidth available to one NI-to-NI channel (2x2 mesh)");
  t.set_header({"wheel size", "daelite slots", "aelite slots", "aelite loss (per link)",
                "analytic loss"});

  for (std::uint32_t s : {8u, 16u, 32u}) {
    const auto mesh = topo::make_mesh(2, 2);

    alloc::SlotAllocator d(mesh.topo, tdm::daelite_params(s));
    const auto d_max = max_channel_slots(d, mesh);

    alloc::SlotAllocator a(mesh.topo, tdm::aelite_params(s));
    aelite::AeliteNetwork::reserve_config_slots(a);
    const auto a_max = max_channel_slots(a, mesh);

    t.add_row({std::to_string(s), std::to_string(d_max) + "/" + std::to_string(s),
               std::to_string(a_max) + "/" + std::to_string(s),
               pct(static_cast<double>(s - a_max) / (2.0 * s)), // two NI links crossed
               pct(analysis::aelite_config_bandwidth_loss(s))});
  }
  t.print(std::cout);
  std::cout << "aelite loses 1/S of every NI link to reserved configuration slots\n"
               "(6.25% at S=16); an end-to-end channel crosses two NI links and loses\n"
               "one injection slot per crossing. daelite's configuration runs on its own\n"
               "7-bit broadcast tree: the full data wheel stays available.\n";
  return 0;
}
