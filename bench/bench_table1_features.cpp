// T-I: regenerate the paper's Table I — comparison with network
// implementations using similar concepts.

#include <iostream>

#include "analysis/features.hpp"
#include "analysis/report.hpp"

int main() {
  using namespace daelite::analysis;
  TextTable t("Table I: comparison with network implementations using similar concepts");
  t.set_header({"Network", "Link sharing", "Routing", "Connection setup", "E2E flow control",
                "Connection types"});
  for (const auto& row : table1())
    t.add_row({row.name, row.link_sharing, row.routing, row.connection_setup, row.flow_control,
               row.connection_types});
  t.print(std::cout);

  std::cout << "\ndaelite's differentiators (paper &I/&II): guaranteed bandwidth+latency per\n"
               "connection, native multicast via router slot tables, and set-up via a\n"
               "dedicated broadcast tree an order of magnitude faster than aelite.\n";
  return 0;
}
