// QoS-aware graceful degradation: what the service-class machinery buys
// when the network is both overloaded and losing links.
//
// One open-loop churn configuration (guaranteed/standard/best-effort mix,
// class quotas, preemptive healing, bounded retry queue, background slot
// compaction) is swept over an escalating kill-fault schedule: 0, 2 and 4
// links quarantined mid-run. Every point replays the identical stream
// against the incremental and the from-scratch allocator and hard-fails
// on any decision-digest divergence — preemption, compaction and
// quarantine flips are all inside the oracle.
//
// Full-run floors (quick mode checks only the digests):
//  * guaranteed traffic survives: zero admission rejects, zero sheds, and
//    every guaranteed set-up eventually admitted (retries count), with
//    the fault-free point settling past 0.6 schedule utilization — while
//    best-effort sheds under the same load;
//  * compaction measurably lowers the fragmentation gauge: the same
//    worst-fault point re-run without background compaction must end with
//    a strictly higher fragmentation reading;
//  * the degraded service's own churn (preemption victims re-arriving,
//    retry replays) is priced on both networks: daelite's broadcast-tree
//    set-up stays cheaper than aelite's serialized MMIO mirror (Table
//    III's ordering holds under degradation too).
//
// --quick shrinks the mesh/stream for CI smoke and skips the floors
// (timing-independent, but small meshes saturate differently).

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "aelite/config_model.hpp"
#include "alloc/churn.hpp"
#include "analysis/report.hpp"
#include "analysis/setup_time.hpp"
#include "common.hpp"

using namespace daelite;
using analysis::TextTable;
using analysis::fmt;

namespace {

struct FaultPoint {
  const char* label;
  std::size_t kills; ///< links quarantined over the run
};

alloc::ChurnReport run_mode(const topo::Topology& topo, const tdm::TdmParams& params,
                            const alloc::ChurnRunOptions& run, bool incremental) {
  alloc::AllocatorOptions ao;
  ao.incremental = incremental;
  alloc::SlotAllocator sa(topo, params, ao);
  return alloc::run_churn(sa, run);
}

const alloc::ClassStats& cls(const alloc::ChurnReport& r, alloc::ServiceClass c) {
  return r.per_class[static_cast<std::size_t>(c)];
}

} // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const int dim = quick ? 4 : 8;
  const std::uint32_t slots = 64;
  const std::uint64_t requests = quick ? 4000 : 20000;
  const topo::Mesh mesh = topo::make_mesh(dim, dim);
  const tdm::TdmParams params = tdm::daelite_params(slots);

  // The operating point: ~10% guaranteed / ~10% standard / ~80%
  // best-effort, class quotas leaving guaranteed traffic headroom above
  // the standard/best-effort ceiling, preemption and the retry queue
  // armed, a compaction pass every 500 requests. Load is tuned so the
  // fault-free full run settles past 0.6 mean utilization.
  const auto make_run = [&](std::size_t kills, bool compact) {
    alloc::ChurnRunOptions run;
    run.requests = requests;
    run.workload.seed = 1;
    run.workload.arrival_rate = 0.009;
    run.workload.mean_hold_cycles = 300000.0;
    run.workload.multicast_fraction = 0.0;
    run.workload.min_slots = 1;
    run.workload.max_slots = 2;
    run.workload.guaranteed_fraction = 0.1;
    run.workload.best_effort_fraction = 0.8;
    run.admission.max_utilization = 0.95;
    run.admission.quota[static_cast<std::size_t>(alloc::ServiceClass::kStandard)]
        .max_utilization = 0.7;
    run.admission.quota[static_cast<std::size_t>(alloc::ServiceClass::kBestEffort)]
        .max_utilization = 0.7;
    run.admission.preempt_best_effort = true;
    run.overload.enabled = true;
    run.overload.max_attempts = 8;
    run.compaction.every = compact ? 500 : 0;
    run.compaction.after_quarantine = compact;
    // Kill router-router links spread over the mesh, staggered through the
    // run's middle. NI access links are spared — quarantining a node's
    // only ingress would make its guaranteed traffic unroutable by
    // construction, which is a topology property, not a scheduling one.
    std::vector<topo::LinkId> routable;
    for (topo::LinkId l = 0; l < mesh.topo.link_count(); ++l) {
      const topo::Link& lk = mesh.topo.link(l);
      if (mesh.topo.is_router(lk.src) && mesh.topo.is_router(lk.dst)) routable.push_back(l);
    }
    for (std::size_t k = 0; k < kills; ++k) {
      alloc::QuarantineEvent qe;
      qe.at_request = requests / 4 + k * (requests / (2 * (kills + 1)));
      qe.link = routable[(k + 1) * routable.size() / (kills + 1) - 1];
      run.quarantine_events.push_back(qe);
    }
    return run;
  };

  const FaultPoint points[] = {{"none", 0}, {"few", 2}, {"many", 4}};

  using sim::JsonValue;
  JsonValue jpoints = JsonValue::array();

  TextTable t("Graceful degradation: guaranteed survival vs kill faults (" +
              std::to_string(requests) + " requests, " + std::to_string(dim) + "x" +
              std::to_string(dim) + " mesh, S=" + std::to_string(slots) + ")");
  t.set_header({"faults", "mean util", "GT admit %", "GT shed", "BE admit %", "BE shed",
                "preempted", "compact moves", "frag last"});

  const alloc::ChurnReport* fault_free = nullptr;
  std::vector<alloc::ChurnReport> reports;
  reports.reserve(std::size(points));

  for (const FaultPoint& p : points) {
    const alloc::ChurnRunOptions run = make_run(p.kills, true);
    alloc::ChurnReport inc = run_mode(mesh.topo, params, run, true);
    const alloc::ChurnReport scr = run_mode(mesh.topo, params, run, false);
    if (inc.decision_digest != scr.decision_digest) {
      std::cerr << "error: decision digest mismatch at fault point '" << p.label
                << "' — incremental and from-scratch allocators diverged\n";
      return 1;
    }
    if (inc.metrics.rollback_failures.value() != 0) {
      std::cerr << "error: transactional roll-back failed during degradation churn\n";
      return 1;
    }

    const auto& gt = cls(inc, alloc::ServiceClass::kGuaranteed);
    const auto& be = cls(inc, alloc::ServiceClass::kBestEffort);
    const auto pct = [](std::uint64_t num, std::uint64_t den) {
      return den ? 100.0 * static_cast<double>(num) / static_cast<double>(den) : 0.0;
    };
    t.add_row({p.label, fmt(inc.metrics.utilization.mean(), 3),
               fmt(pct(gt.admitted, gt.setups), 1), std::to_string(gt.shed),
               fmt(pct(be.admitted, be.setups), 1), std::to_string(be.shed),
               std::to_string(inc.preempted_connections), std::to_string(inc.compaction_moves),
               fmt(inc.metrics.fragmentation.last(), 3)});

    JsonValue row = JsonValue::object();
    row["faults"] = p.label;
    row["kills"] = static_cast<std::uint64_t>(p.kills);
    row["mean_utilization"] = inc.metrics.utilization.mean();
    row["fragmentation_mean"] = inc.metrics.fragmentation.mean();
    row["fragmentation_last"] = inc.metrics.fragmentation.last();
    row["shed_total"] = inc.shed_total;
    row["retry_attempts"] = inc.retry_attempts;
    row["preempted_connections"] = inc.preempted_connections;
    row["compaction_passes"] = inc.compaction_passes;
    row["compaction_moves"] = inc.compaction_moves;
    JsonValue classes = JsonValue::object();
    for (std::size_t c = 0; c < alloc::kServiceClassCount; ++c) {
      const alloc::ClassStats& s = inc.per_class[c];
      JsonValue jc = JsonValue::object();
      jc["setups"] = s.setups;
      jc["admitted"] = s.admitted;
      jc["rejected_admission"] = s.rejected_admission;
      jc["rejected_no_route"] = s.rejected_no_route;
      jc["shed"] = s.shed;
      jc["retries"] = s.retries;
      jc["preempted"] = s.preempted;
      classes[std::string(alloc::service_class_name(static_cast<alloc::ServiceClass>(c)))] =
          std::move(jc);
    }
    row["per_class"] = std::move(classes);
    row["digest_match"] = true;
    jpoints.push_back(std::move(row));
    reports.push_back(std::move(inc));
  }
  fault_free = &reports.front();
  t.print(std::cout);
  std::cout << "Class quotas cap standard/best-effort occupancy, preemption and the retry\n"
               "queue soak up what the quarantines break; guaranteed traffic keeps its\n"
               "admission rate while best-effort absorbs the shedding.\n\n";

  if (!quick) {
    for (std::size_t i = 0; i < std::size(points); ++i) {
      const auto& gt = cls(reports[i], alloc::ServiceClass::kGuaranteed);
      if (gt.rejected_admission != 0 || gt.shed != 0 || gt.admitted < gt.setups) {
        std::cerr << "error: guaranteed traffic degraded at fault point '" << points[i].label
                  << "' (admission rejects " << gt.rejected_admission << ", shed " << gt.shed
                  << ", admitted " << gt.admitted << " of " << gt.setups << ")\n";
        return 1;
      }
    }
    if (fault_free->final_utilization < 0.6) {
      std::cerr << "error: fault-free point settled at utilization "
                << fault_free->final_utilization
                << " (< 0.6) — the overload regime was not reached\n";
      return 1;
    }
    if (cls(*fault_free, alloc::ServiceClass::kBestEffort).shed == 0) {
      std::cerr << "error: best-effort shed nothing — the load point is not actually "
                   "overloaded, so guaranteed survival proves nothing\n";
      return 1;
    }
  }

  // --- Compaction ablation: worst fault point without background passes ------
  const alloc::ChurnReport& with = reports.back();
  const alloc::ChurnReport without =
      run_mode(mesh.topo, params, make_run(points[std::size(points) - 1].kills, false), true);
  TextTable c("\nCompaction ablation (fault point '" +
              std::string(points[std::size(points) - 1].label) + "')");
  c.set_header({"compaction", "frag last", "frag mean", "shed total", "moves"});
  c.add_row({"on", fmt(with.metrics.fragmentation.last(), 3),
             fmt(with.metrics.fragmentation.mean(), 3), std::to_string(with.shed_total),
             std::to_string(with.compaction_moves)});
  c.add_row({"off", fmt(without.metrics.fragmentation.last(), 3),
             fmt(without.metrics.fragmentation.mean(), 3), std::to_string(without.shed_total),
             "0"});
  c.print(std::cout);
  if (!quick && with.metrics.fragmentation.last() >= without.metrics.fragmentation.last()) {
    std::cerr << "error: background compaction did not lower the fragmentation gauge ("
              << with.metrics.fragmentation.last() << " vs "
              << without.metrics.fragmentation.last() << " without)\n";
    return 1;
  }

  // --- Set-up pricing of the degraded service's churn, daelite vs aelite -----
  // Preemption victims re-arriving and retry replays multiply the set-up
  // count; price every admitted connection on both networks' cost models.
  sim::Histogram d_setup(4096), a_setup(65536);
  sim::Kernel akernel;
  aelite::AeliteConfigHost ahost(akernel, "cfg", mesh.topo, mesh.ni(0, 0),
                                 {tdm::aelite_params(slots), 0});
  const std::uint32_t cool_down = hw::DaeliteNetwork::Options{}.cool_down_cycles;
  {
    alloc::ChurnRunOptions run = make_run(2, true);
    run.on_admit = [&](const alloc::AllocatedConnection& conn) {
      d_setup.add(
          analysis::daelite_ideal_connection_setup_cycles(mesh.topo, params, conn, cool_down));
      aelite::AeliteConfigHost::SetupRequest req;
      req.src_ni = conn.spec.src_ni; // same mesh shape, same node ids
      req.dst_ni = conn.spec.dst_nis[0];
      req.request_slots = conn.request.slot_count();
      req.response_slots = conn.has_response ? conn.response.slot_count() : 0;
      req.with_readback = true;
      a_setup.add(ahost.ideal_setup_cycles(req));
    };
    (void)run_mode(mesh.topo, params, run, true);
  }
  TextTable s("\nSet-up cost of the degraded service's churn (ideal cycles)");
  s.set_header({"network", "set-ups", "mean", "p50", "p99"});
  s.add_row({"daelite", std::to_string(d_setup.count()), fmt(d_setup.mean(), 0),
             std::to_string(d_setup.quantile(0.5)), std::to_string(d_setup.quantile(0.99))});
  s.add_row({"aelite", std::to_string(a_setup.count()), fmt(a_setup.mean(), 0),
             std::to_string(a_setup.quantile(0.5)), std::to_string(a_setup.quantile(0.99))});
  s.print(std::cout);
  if (!quick && a_setup.count() > 0 && a_setup.mean() <= d_setup.mean()) {
    std::cerr << "error: aelite mean set-up cost (" << a_setup.mean()
              << ") did not exceed daelite's (" << d_setup.mean()
              << ") — Table III's ordering should hold under degradation\n";
    return 1;
  }

  const std::string json_path = bench::json_out_path(argc, argv, "degradation");
  if (!json_path.empty()) {
    JsonValue doc = JsonValue::object();
    doc["quick"] = quick;
    doc["mesh"] = std::to_string(dim) + "x" + std::to_string(dim);
    doc["slots"] = slots;
    doc["requests"] = requests;
    doc["fault_points"] = std::move(jpoints);
    JsonValue abl = JsonValue::object();
    abl["with_fragmentation_last"] = with.metrics.fragmentation.last();
    abl["without_fragmentation_last"] = without.metrics.fragmentation.last();
    abl["with_fragmentation_mean"] = with.metrics.fragmentation.mean();
    abl["without_fragmentation_mean"] = without.metrics.fragmentation.mean();
    abl["with_shed_total"] = with.shed_total;
    abl["without_shed_total"] = without.shed_total;
    doc["compaction_ablation"] = std::move(abl);
    JsonValue setup = JsonValue::object();
    setup["daelite_ideal_cycles"] = to_json(d_setup);
    setup["aelite_ideal_cycles"] = to_json(a_setup);
    doc["setup_cost"] = std::move(setup);
    if (!bench::write_bench_json(json_path, "degradation", std::move(doc))) return 1;
  }
  return 0;
}
