// Workload front end: price a DNN weight broadcast as one daelite
// multicast tree versus Æthereal-style unicast replication, under the
// SAME source-link slot budget — in delivery cycles AND energy (per-hop
// flit + per-config-word, the src/analysis/energy.hpp model) — and price
// the set-up: one daelite partial-path tree configuration versus aelite
// MMIO set-up of one unicast connection per tile.
//
// Usage: bench_workload [--quick] [--json [dir]]

#include <cstring>
#include <iostream>

#include "aelite/config_model.hpp"
#include "analysis/energy.hpp"
#include "analysis/report.hpp"
#include "common.hpp"

using namespace daelite;
using namespace daelite::bench;
using analysis::TextTable;
using analysis::fmt;

namespace {

/// Flits driven onto any data link, read from the upstream element's
/// per-output counters (NI link counter for the first hop, router
/// forwarded_on for the rest) — the same accounting the scenario runner
/// uses for its energy report.
std::uint64_t link_flit_hops(const topo::Mesh& mesh, hw::DaeliteNetwork& net) {
  std::uint64_t hops = 0;
  for (topo::LinkId l = 0; l < mesh.topo.link_count(); ++l) {
    const topo::Link& link = mesh.topo.link(l);
    hops += mesh.topo.is_router(link.src) ? net.router(link.src).forwarded_on(link.src_port)
                                          : net.ni(link.src).stats().link_busy_slots;
  }
  return hops;
}

struct SchemeResult {
  sim::Cycle setup_cycles = 0;
  sim::Cycle delivery_cycles = 0;
  std::uint64_t flit_hops = 0;
  std::uint64_t config_words = 0;
  double energy_pj = 0;
  bool delivered = false;
};

} // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  constexpr std::uint32_t kSlots = 16;
  constexpr std::uint32_t kBudget = 8; // source-link slots per wheel, both schemes
  const std::size_t words = quick ? 256 : 2048;

  // One DRAM-port NI feeding a column of four core tiles.
  const auto layout = topo::make_mesh(4, 4);
  const topo::NodeId src = layout.ni(0, 1);
  const std::vector<topo::NodeId> tiles = {layout.ni(3, 0), layout.ni(3, 1), layout.ni(3, 2),
                                           layout.ni(3, 3)};
  const std::uint32_t per_tile_slots = kBudget / static_cast<std::uint32_t>(tiles.size());

  analysis::EnergyModel model; // defaults: 1 pJ/flit-hop, 2 pJ/config word

  // --- daelite multicast tree: one connection, the budget used once -----------
  SchemeResult mc;
  {
    DaeliteRig rig(4, 4, kSlots);
    const auto conn = rig.connect(src, tiles, kBudget, /*resp=*/0);
    const auto h = rig.net->open_connection(conn);
    mc.setup_cycles = rig.net->run_config();
    const sim::Cycle start = rig.kernel.now();

    hw::Ni& s = rig.net->ni(src);
    std::size_t pushed = 0;
    std::vector<std::size_t> got(tiles.size(), 0);
    for (long guard = 0; guard < 4'000'000; ++guard) {
      if (pushed < words && s.tx_push(h.src_tx_q, static_cast<std::uint32_t>(pushed))) ++pushed;
      rig.kernel.step();
      bool done = pushed == words;
      for (std::size_t i = 0; i < tiles.size(); ++i) {
        while (rig.net->ni(tiles[i]).rx_pop(h.dst_rx_qs[i])) ++got[i];
        done = done && got[i] == words;
      }
      if (done) break;
    }
    mc.delivered = true;
    for (std::size_t g : got) mc.delivered = mc.delivered && g == words;
    mc.delivery_cycles = rig.kernel.now() - start;
    mc.flit_hops = link_flit_hops(rig.mesh, *rig.net);
    mc.config_words = rig.net->config_module().words_sent();
    mc.energy_pj = static_cast<double>(mc.flit_hops) * model.hop_energy_pj +
                   static_cast<double>(mc.config_words) * model.config_energy_pj;
  }

  // --- unicast replication: one connection per tile, the budget divided -------
  SchemeResult uni;
  {
    DaeliteRig rig(4, 4, kSlots);
    alloc::UseCase uc;
    for (std::size_t i = 0; i < tiles.size(); ++i)
      uc.connections.push_back(
          {"u" + std::to_string(i), src, {tiles[i]}, per_tile_slots, /*resp=*/0});
    auto a = alloc::allocate_use_case(*rig.alloc, uc);
    if (!a) {
      std::cerr << "error: unicast replication did not fit the schedule\n";
      return 1;
    }
    std::vector<hw::ConnectionHandle> hs;
    for (const auto& c : a->connections) hs.push_back(rig.net->open_connection(c));
    uni.setup_cycles = rig.net->run_config();
    const sim::Cycle start = rig.kernel.now();

    hw::Ni& s = rig.net->ni(src);
    std::vector<std::size_t> pushed(tiles.size(), 0), got(tiles.size(), 0);
    for (long guard = 0; guard < 4'000'000; ++guard) {
      bool done = true;
      for (std::size_t i = 0; i < tiles.size(); ++i) {
        if (pushed[i] < words &&
            s.tx_push(hs[i].src_tx_q, static_cast<std::uint32_t>(pushed[i])))
          ++pushed[i];
        done = done && pushed[i] == words;
      }
      rig.kernel.step();
      for (std::size_t i = 0; i < tiles.size(); ++i) {
        while (rig.net->ni(tiles[i]).rx_pop(hs[i].dst_rx_qs[0])) ++got[i];
        done = done && got[i] == words;
      }
      if (done) break;
    }
    uni.delivered = true;
    for (std::size_t g : got) uni.delivered = uni.delivered && g == words;
    uni.delivery_cycles = rig.kernel.now() - start;
    uni.flit_hops = link_flit_hops(rig.mesh, *rig.net);
    uni.config_words = rig.net->config_module().words_sent();
    uni.energy_pj = static_cast<double>(uni.flit_hops) * model.hop_energy_pj +
                    static_cast<double>(uni.config_words) * model.config_energy_pj;
  }

  if (!mc.delivered || !uni.delivered) {
    std::cerr << "error: a scheme did not deliver all words (multicast "
              << (mc.delivered ? "ok" : "FAILED") << ", unicast "
              << (uni.delivered ? "ok" : "FAILED") << ")\n";
    return 1;
  }

  TextTable t("Weight broadcast to 4 tiles, " + std::to_string(words) +
              " words, source-link budget " + std::to_string(kBudget) + "/" +
              std::to_string(kSlots) + " slots (4x4 mesh)");
  t.set_header({"scheme", "set-up (cyc)", "delivery (cyc)", "flit-hops", "cfg words",
                "energy (pJ)"});
  t.add_row({"daelite multicast tree", std::to_string(mc.setup_cycles),
             std::to_string(mc.delivery_cycles), std::to_string(mc.flit_hops),
             std::to_string(mc.config_words), fmt(mc.energy_pj, 0)});
  t.add_row({"unicast replication x4", std::to_string(uni.setup_cycles),
             std::to_string(uni.delivery_cycles), std::to_string(uni.flit_hops),
             std::to_string(uni.config_words), fmt(uni.energy_pj, 0)});
  t.print(std::cout);

  // --- set-up: daelite broadcast-tree config vs aelite MMIO, per scheme -------
  // aelite must set up one unicast connection per tile over the data
  // network; daelite configures the whole tree with one partial-path
  // packet stream.
  sim::Cycle aelite_setup = 0;
  {
    sim::Kernel ak;
    const auto amesh = topo::make_mesh(4, 4);
    aelite::AeliteConfigHost ahost(ak, "cfg", amesh.topo, amesh.ni(0, 0),
                                   {tdm::aelite_params(kSlots), 0});
    std::vector<std::uint32_t> ids;
    for (const topo::NodeId d : tiles)
      ids.push_back(ahost.post_setup({src, d, per_tile_slots, 0, false}));
    if (!ak.run_until([&] { return ahost.idle(); }, 1000000)) {
      std::cerr << "error: aelite set-up did not complete\n";
      return 1;
    }
    for (const auto id : ids) aelite_setup = std::max(aelite_setup, ahost.completion_cycle(id));
  }

  const double setup_speedup =
      static_cast<double>(aelite_setup) / static_cast<double>(mc.setup_cycles);
  TextTable s("\nSet-up of the broadcast: daelite tree vs aelite unicast-per-tile");
  s.set_header({"scheme", "set-up (cycles)"});
  s.add_row({"daelite multicast tree", std::to_string(mc.setup_cycles)});
  s.add_row({"aelite 4x unicast MMIO", std::to_string(aelite_setup)});
  s.print(std::cout);

  std::cout << "\nThe tree charges the source link once; replication divides the same\n"
               "budget by the tile count (" +
                   std::to_string(per_tile_slots) + " slots each) and re-sends every word,\n"
               "so it pays " +
                   fmt(static_cast<double>(uni.flit_hops) / static_cast<double>(mc.flit_hops),
                       1) +
                   "x the link crossings. daelite sets the whole tree up " +
                   fmt(setup_speedup, 1) + "x faster than aelite's per-tile MMIO.\n";

  // The bench doubles as a regression check: multicast must win BOTH
  // delivery cycles and energy, and daelite set-up must beat aelite.
  if (mc.delivery_cycles >= uni.delivery_cycles) {
    std::cerr << "error: multicast did not win delivery cycles\n";
    return 1;
  }
  if (mc.energy_pj >= uni.energy_pj) {
    std::cerr << "error: multicast did not win energy\n";
    return 1;
  }
  if (mc.setup_cycles >= aelite_setup) {
    std::cerr << "error: daelite set-up did not beat aelite\n";
    return 1;
  }

  const std::string json_path = bench::json_out_path(argc, argv, "workload");
  if (!json_path.empty()) {
    using sim::JsonValue;
    JsonValue doc = JsonValue::object();
    doc["words"] = static_cast<std::uint64_t>(words);
    doc["slots_budget"] = kBudget;
    doc["tiles"] = static_cast<std::uint64_t>(tiles.size());
    JsonValue rows = JsonValue::array();
    for (const auto* r : {&mc, &uni}) {
      JsonValue row = JsonValue::object();
      row["scheme"] = (r == &mc) ? "multicast_tree" : "unicast_replication";
      row["setup_cycles"] = r->setup_cycles;
      row["delivery_cycles"] = r->delivery_cycles;
      row["flit_hops"] = r->flit_hops;
      row["config_words"] = r->config_words;
      row["energy_pj"] = r->energy_pj;
      rows.push_back(std::move(row));
    }
    doc["delivery"] = std::move(rows);
    JsonValue setup = JsonValue::object();
    setup["daelite_multicast_cycles"] = mc.setup_cycles;
    setup["aelite_unicast_cycles"] = aelite_setup;
    setup["speedup"] = setup_speedup;
    doc["setup"] = std::move(setup);
    if (!bench::write_bench_json(json_path, "workload", std::move(doc))) return 1;
  }
  return 0;
}
