// C-2 / F-2: header overhead and payload efficiency — source routing
// (aelite) carries a header word per packet, 11% (3-slot packets) to 33%
// (1-slot packets) of link bandwidth; distributed routing (daelite) has
// no header at all (paper §V). Measured from simulation word counts and
// cross-checked analytically.

#include <iostream>

#include "analysis/formulas.hpp"
#include "analysis/report.hpp"
#include "common.hpp"

using namespace daelite;
using namespace daelite::bench;
using analysis::TextTable;
using analysis::fmt;
using analysis::pct;

int main() {
  constexpr std::uint32_t kSlots = 16;

  TextTable t("Header overhead on the source link (fraction of transmitted words)");
  t.set_header({"network", "slot layout", "measured", "analytic"});

  // aelite, scattered slots: every owned slot starts a new packet.
  {
    AeliteRig rig(3, 3, kSlots, alloc::SlotPolicy::kSpread);
    const auto conn = rig.connect(rig.mesh.ni(0, 0), rig.mesh.ni(2, 0), 4);
    const auto h = rig.net->open_connection(conn);
    rig.stream(h, 400);
    const auto& s = rig.net->ni(conn.request.src_ni).tx_stats(h.src_tx_q);
    const double measured = static_cast<double>(s.header_words_sent) /
                            static_cast<double>(s.header_words_sent + s.words_sent);
    t.add_row({"aelite", "scattered slots (1 slot/packet)", pct(measured),
               pct(analysis::aelite_header_overhead(1))});
  }
  // aelite, consecutive slots: packets span up to 3 slots.
  {
    AeliteRig rig(3, 3, kSlots, alloc::SlotPolicy::kFirstFit);
    const auto conn = rig.connect(rig.mesh.ni(0, 0), rig.mesh.ni(2, 0), 6);
    const auto h = rig.net->open_connection(conn);
    rig.stream(h, 600);
    const auto& s = rig.net->ni(conn.request.src_ni).tx_stats(h.src_tx_q);
    const double measured = static_cast<double>(s.header_words_sent) /
                            static_cast<double>(s.header_words_sent + s.words_sent);
    t.add_row({"aelite", "consecutive slots (3 slots/packet)", pct(measured),
               pct(analysis::aelite_header_overhead(3))});
  }
  // daelite: no headers, any slot layout.
  {
    DaeliteRig rig(3, 3, kSlots);
    const auto conn = rig.connect(rig.mesh.ni(0, 0), {rig.mesh.ni(2, 0)}, 4);
    const auto h = rig.net->open_connection(conn);
    rig.net->run_config();
    rig.stream(h, 400);
    t.add_row({"daelite", "any", pct(0.0), pct(analysis::daelite_header_overhead())});
  }
  t.print(std::cout);

  TextTable b("\nPayload bandwidth of a 4-slot channel (words/cycle on the data link)");
  b.set_header({"network", "slots", "payload bandwidth", "relative"});
  const double d_bw = analysis::channel_bandwidth_wpc(4, tdm::daelite_params(kSlots), 2.0);
  const double a_bw = analysis::channel_bandwidth_wpc(4, tdm::aelite_params(kSlots), 2.0);
  b.add_row({"daelite", "4/16", fmt(d_bw, 3), "1.00x"});
  b.add_row({"aelite (scattered)", "4/16", fmt(a_bw, 3), fmt(a_bw / d_bw, 2) + "x"});
  b.print(std::cout);
  std::cout << "daelite has no header overhead; in aelite 11%-33% of slot words are\n"
               "headers, and the slot cannot shrink below 3 words without making that\n"
               "overhead worse. daelite's slot is 2 words and could shrink to 1.\n";
  return 0;
}
