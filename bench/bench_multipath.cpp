// C-4: multipath routing — daelite routes one connection over multiple
// paths at no additional hardware cost; [29] reports average bandwidth
// gains of 24%. We reproduce the experiment's shape: permutation traffic
// (each NI sources one connection, sinks one) driven to saturation by
// fair water-filling, with every connection restricted to a single path
// versus allowed up to 4 loopless paths. Interior mesh links are the
// bottleneck, which is exactly the capacity multipath can recombine.

#include <iostream>

#include "alloc/allocator.hpp"
#include "analysis/report.hpp"
#include "sim/random.hpp"
#include "topology/generators.hpp"
#include "topology/path.hpp"

using namespace daelite;
using analysis::TextTable;
using analysis::pct;

namespace {

/// Random fixed-point-free permutation of the NIs.
std::vector<std::pair<topo::NodeId, topo::NodeId>> permutation_traffic(const topo::Mesh& m,
                                                                       std::uint64_t seed) {
  sim::Xoshiro256 rng(seed);
  const auto nis = m.all_nis();
  std::vector<std::size_t> perm(nis.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  for (;;) {
    // Fisher-Yates, retry until no fixed point.
    for (std::size_t i = perm.size(); i-- > 1;) std::swap(perm[i], perm[rng.below(i + 1)]);
    bool ok = true;
    for (std::size_t i = 0; i < perm.size(); ++i) ok = ok && perm[i] != i;
    if (ok) break;
  }
  std::vector<std::pair<topo::NodeId, topo::NodeId>> out;
  for (std::size_t i = 0; i < perm.size(); ++i) out.emplace_back(nis[i], nis[perm[i]]);
  return out;
}

/// Fair water-filling: round-robin over connections, adding one slot at a
/// time on any of each connection's allowed paths, until nothing fits.
/// Returns total admitted slots.
std::uint64_t saturate(const topo::Mesh& m, std::uint32_t wheel,
                       const std::vector<std::pair<topo::NodeId, topo::NodeId>>& traffic,
                       std::size_t paths_per_connection) {
  alloc::SlotAllocator a(m.topo, tdm::daelite_params(wheel));
  topo::PathFinder finder(m.topo);

  std::vector<std::vector<topo::Path>> paths;
  for (const auto& [src, dst] : traffic)
    paths.push_back(finder.k_shortest(src, dst, paths_per_connection));

  std::uint64_t total = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& options : paths) {
      for (const topo::Path& p : options) {
        if (a.allocate_on_path(p, 1)) {
          ++total;
          progress = true;
          break;
        }
      }
    }
  }
  return total;
}

} // namespace

int main() {
  constexpr std::uint32_t kWheel = 32;
  const auto mesh = topo::make_mesh(4, 4);

  TextTable t("Saturation throughput, permutation traffic (4x4 mesh, S=32, fair water-filling)");
  t.set_header({"seed", "single-path slots", "multipath (8 paths) slots", "gain"});

  double total_gain = 0.0;
  int n = 0;
  for (std::uint64_t seed : {1ull, 7ull, 13ull, 42ull, 99ull, 123ull, 500ull, 901ull}) {
    const auto traffic = permutation_traffic(mesh, seed);
    const auto single = saturate(mesh, kWheel, traffic, 1);
    const auto multi = saturate(mesh, kWheel, traffic, 8);
    const double gain = static_cast<double>(multi) / static_cast<double>(single) - 1.0;
    total_gain += gain;
    ++n;
    t.add_row({std::to_string(seed), std::to_string(single), std::to_string(multi), pct(gain)});
  }
  t.print(std::cout);
  std::cout << "Average multipath bandwidth gain: " << pct(total_gain / n)
            << " (paper, citing [29]: 24% on average; our greedy water-filling\n"
               "allocator recovers most of it - [29] uses an LP-based split).\n"
               "daelite supports this at no additional cost because routing is purely\n"
               "time-triggered - extra paths are just more slot-table entries; in aelite\n"
               "multipath costs extra NI path registers per connection (paper &V).\n";
  return 0;
}
