// C-2/C-3 combined, measured end-to-end: "improved bandwidth" (abstract).
//
// Give a connection the same share of the TDM wheel on both networks and
// measure delivered payload words per cycle in simulation. daelite's
// advantage comes from (a) zero header overhead and (b) not losing NI-link
// slots to configuration traffic; both effects are visible here, and the
// measured numbers match the analytic model of bench_header_overhead.

#include <iostream>

#include "analysis/formulas.hpp"
#include "analysis/report.hpp"
#include "common.hpp"

using namespace daelite;
using namespace daelite::bench;
using analysis::TextTable;
using analysis::fmt;
using analysis::pct;

namespace {

/// Measure steady-state delivered words/cycle over a fixed window by
/// keeping the source saturated.
template <typename Rig, typename Handle>
double measure_throughput(Rig& rig, const Handle& h, std::size_t rx_q, sim::Cycle window) {
  auto& src = rig.net->ni(h.conn.request.src_ni);
  auto& dst = rig.net->ni(h.conn.request.dst_nis[0]);
  // Warm-up.
  std::uint64_t got = 0;
  for (sim::Cycle c = 0; c < 500; ++c) {
    while (src.tx_push(h.src_tx_q, 1)) {
    }
    rig.kernel.step();
    while (dst.rx_pop(rx_q)) {
    }
  }
  for (sim::Cycle c = 0; c < window; ++c) {
    while (src.tx_push(h.src_tx_q, 1)) {
    }
    rig.kernel.step();
    while (dst.rx_pop(rx_q)) ++got;
  }
  return static_cast<double>(got) / static_cast<double>(window);
}

} // namespace

int main(int argc, char** argv) {
  constexpr std::uint32_t kSlots = 16;
  constexpr sim::Cycle kWindow = 8000;

  using sim::JsonValue;
  JsonValue jrows = JsonValue::array();

  TextTable t("Measured payload throughput of one channel (same slot share, S=16)");
  t.set_header({"slots/wheel", "daelite (w/cyc)", "aelite (w/cyc)", "daelite advantage"});

  for (std::uint32_t slots : {2u, 4u, 8u}) {
    DaeliteRig drig(3, 3, kSlots);
    const auto dconn = drig.connect(drig.mesh.ni(0, 0), {drig.mesh.ni(2, 1)}, slots, 1);
    const auto dh = drig.net->open_connection(dconn);
    drig.net->run_config();
    const double d_tp = measure_throughput(drig, dh, dh.dst_rx_qs[0], kWindow);

    AeliteRig arig(3, 3, kSlots); // reserves config slots, as real aelite
    const auto aconn = arig.connect(arig.mesh.ni(0, 0), arig.mesh.ni(2, 1), slots, 1);
    const auto ah = arig.net->open_connection(aconn);
    const double a_tp = measure_throughput(arig, ah, ah.dst_rx_q, kWindow);

    t.add_row({std::to_string(slots) + "/16", fmt(d_tp, 3), fmt(a_tp, 3),
               pct(d_tp / a_tp - 1.0)});

    JsonValue row = JsonValue::object();
    row["slots"] = slots;
    row["wheel"] = kSlots;
    row["daelite_words_per_cycle"] = d_tp;
    row["aelite_words_per_cycle"] = a_tp;
    row["advantage"] = d_tp / a_tp - 1.0;
    jrows.push_back(std::move(row));
  }
  t.print(std::cout);

  std::cout << "Analytic expectation: daelite delivers slots/16 words per cycle (2-word\n"
               "slots, all payload); aelite loses 1/3 of scattered slots to headers and\n"
               "one NI-link slot per wheel to configuration. Measured matches: the\n"
               "abstract's \"improved bandwidth\" is ~"
            << pct(analysis::channel_bandwidth_wpc(4, tdm::daelite_params(kSlots), 2.0) /
                       (analysis::channel_bandwidth_wpc(4, tdm::aelite_params(kSlots), 2.0)) -
                   1.0)
            << " per scattered-slot channel before the config-slot loss.\n";

  const std::string json_path = bench::json_out_path(argc, argv, "bandwidth");
  if (!json_path.empty()) {
    JsonValue doc = JsonValue::object();
    doc["channels"] = std::move(jrows);
    doc["analytic_advantage"] =
        analysis::channel_bandwidth_wpc(4, tdm::daelite_params(kSlots), 2.0) /
            analysis::channel_bandwidth_wpc(4, tdm::aelite_params(kSlots), 2.0) -
        1.0;
    if (!bench::write_bench_json(json_path, "bandwidth", std::move(doc))) return 1;
  }
  return 0;
}
