// bench_fault_sweep — resilience under deterministic link faults.
//
// Three sweeps over the background fault rate (per-word corruption
// probability, see src/sim/fault.hpp):
//
//  1. daelite end-to-end: the batch runner's stress scenario (corner
//     unicasts + one multicast) through soc::run_scenario() with a
//     FaultInjector over every data and configuration link. Measures
//     delivered-word degradation, set-up-time inflation (the runner
//     appends one verification read per connection, so dropped config
//     responses cost watchdog timeouts + retries), and the watchdog /
//     detection counters from the report's `health` section.
//  2. aelite set-up: AeliteConfigHost with the same per-response loss
//     rate — confirmation reads time out one wheel after the expected
//     arrival and are re-issued, so set-up time inflates with rate.
//  3. aelite data streaming: one channel with a FaultInjector on the
//     aelite links; dropped flits also strand credits, so throughput
//     decays faster than the raw drop rate.
//
// All sweeps use a fixed seed (42): every row is reproducible bit for
// bit, and the zero-rate rows must match a fault-free build exactly —
// the bench exits nonzero if the zero-rate rows show any fault, retry,
// or missed contract.

#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "aelite/config_model.hpp"
#include "analysis/report.hpp"
#include "common.hpp"
#include "sim/fault.hpp"
#include "sim/json.hpp"
#include "soc/runner.hpp"

using namespace daelite;
using namespace daelite::bench;
using analysis::TextTable;
using analysis::fmt;
using analysis::pct;
using sim::JsonValue;

namespace {

constexpr std::uint64_t kFaultSeed = 42;

// Same shape as daelite_batch's stress scenario: corner-to-corner
// unicasts plus a multicast from the host, on a 4x4 mesh.
soc::Scenario stress_scenario(int w, int h, sim::Cycle run_cycles) {
  soc::Scenario sc;
  sc.kind = soc::Scenario::TopologyKind::kMesh;
  sc.width = w;
  sc.height = h;
  sc.host = {w / 2, h / 2};
  sc.run_cycles = run_cycles;
  const int mx = w - 1, my = h - 1;
  const std::pair<int, int> corners[4] = {{0, 0}, {mx, 0}, {0, my}, {mx, my}};
  for (int i = 0; i < 4; ++i) {
    soc::Scenario::RawConnection c;
    c.name = "corner" + std::to_string(i);
    c.src = corners[i];
    c.dsts.push_back(corners[3 - i]);
    c.bandwidth = 150.0;
    sc.raw.push_back(std::move(c));
  }
  soc::Scenario::RawConnection mc;
  mc.name = "bcast";
  mc.src = sc.host;
  for (const auto& c : corners)
    if (c != sc.host) mc.dsts.push_back(c);
  mc.bandwidth = 40.0;
  sc.raw.push_back(std::move(mc));
  return sc;
}

} // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const std::vector<double> rates = quick ? std::vector<double>{0.0, 1e-3, 1e-2}
                                          : std::vector<double>{0.0, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2};
  const sim::Cycle run_cycles = quick ? 2000 : 5000;
  bool bad = false;

  // -- 1. daelite end-to-end under injected link faults ---------------------
  TextTable dt("daelite stress scenario vs fault rate (seed 42, 4x4 mesh)");
  // "rx/tx": multicast destinations each count a delivery, so the clean
  // ratio sits above 100% — the column tracks relative degradation.
  dt.set_header({"rate", "cfg cycles", "rx/tx words", "timeouts", "retries", "aborted",
                 "injected", "ok"});
  JsonValue drows = JsonValue::array();
  std::uint64_t base_cfg_cycles = 0;
  for (double rate : rates) {
    soc::RunSpec spec;
    spec.label = "fault_sweep";
    spec.scenario = stress_scenario(4, 4, run_cycles);
    spec.fault_plan.seed = kFaultSeed;
    spec.fault_plan.rate = rate;
    const analysis::NetworkReport r = soc::run_scenario(spec);
    if (!r.error.empty()) {
      std::cerr << "bench_fault_sweep: daelite run failed: " << r.error << "\n";
      return 1;
    }
    if (rate == 0.0) base_cfg_cycles = r.cfg_cycles;
    const double ratio = r.health.words_sent == 0
                             ? 0.0
                             : static_cast<double>(r.health.words_delivered) /
                                   static_cast<double>(r.health.words_sent);
    dt.add_row({fmt(rate, 4), std::to_string(r.cfg_cycles),
                std::to_string(r.health.words_delivered) + "/" +
                    std::to_string(r.health.words_sent) + " (" + pct(ratio) + ")",
                std::to_string(r.health.timeouts), std::to_string(r.health.retries),
                std::to_string(r.health.aborted), std::to_string(r.health.faults_injected),
                r.ok ? "ok" : "DEGRADED"});
    JsonValue row = JsonValue::object();
    row["rate"] = rate;
    row["cfg_cycles"] = r.cfg_cycles;
    row["cfg_inflation"] = base_cfg_cycles == 0
                               ? 0.0
                               : static_cast<double>(r.cfg_cycles) /
                                     static_cast<double>(base_cfg_cycles);
    row["words_sent"] = r.health.words_sent;
    row["words_delivered"] = r.health.words_delivered;
    row["delivered_ratio"] = ratio;
    row["timeouts"] = r.health.timeouts;
    row["retries"] = r.health.retries;
    row["aborted"] = r.health.aborted;
    row["faults_injected"] = r.health.faults_injected;
    row["words_dropped"] = r.health.words_dropped;
    row["words_flipped"] = r.health.words_flipped;
    row["protocol_errors"] = r.health.protocol_errors;
    row["ok"] = r.ok;
    drows.push_back(std::move(row));
    if (rate == 0.0 &&
        (!r.ok || r.health.faults_injected != 0 || r.health.timeouts != 0 ||
         r.health.retries != 0 || r.health.aborted != 0)) {
      std::cerr << "bench_fault_sweep: zero-rate daelite row shows faults\n";
      bad = true;
    }
  }
  dt.print(std::cout);
  std::cout << "\n";

  // -- 2. aelite set-up time vs response loss rate --------------------------
  TextTable at("aelite connection set-up vs response loss rate (4x4 mesh, S=16)");
  at.set_header({"rate", "setup cycles", "inflation", "timeouts", "retries", "aborted"});
  JsonValue arows = JsonValue::array();
  sim::Cycle base_setup = 0;
  for (double rate : rates) {
    topo::Mesh mesh = topo::make_mesh(4, 4);
    sim::Kernel k;
    aelite::AeliteConfigHost::Params p;
    p.tdm = tdm::aelite_params(16);
    // The daelite sweep's rate is per word-link traversal; an aelite read
    // response occupies roughly one wheel of traversals on its way back,
    // so the equivalent per-response loss probability is amplified
    // accordingly (1 - (1-rate)^wheel_cycles).
    p.response_loss_rate = 1.0 - std::pow(1.0 - rate, static_cast<double>(p.tdm.wheel_cycles()));
    p.fault_seed = kFaultSeed;
    aelite::AeliteConfigHost host(k, "ahost", mesh.topo, mesh.ni(2, 2), p);
    // One connection from the host to every other NI — the "open the whole
    // chip" bring-up the paper's Table III argues about.
    std::vector<std::uint32_t> ids;
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        if (x == 2 && y == 2) continue;
        aelite::AeliteConfigHost::SetupRequest req;
        req.src_ni = mesh.ni(2, 2);
        req.dst_ni = mesh.ni(x, y);
        req.request_slots = 4;
        ids.push_back(host.post_setup(req));
      }
    }
    if (!k.run_until([&] { return host.idle(); }, 10'000'000)) {
      std::cerr << "bench_fault_sweep: aelite set-up did not complete at rate " << rate << "\n";
      return 1;
    }
    sim::Cycle done = 0;
    for (auto id : ids) done = std::max(done, host.completion_cycle(id));
    if (rate == 0.0) base_setup = done;
    const double inflation =
        base_setup == 0 ? 0.0 : static_cast<double>(done) / static_cast<double>(base_setup);
    at.add_row({fmt(rate, 4), std::to_string(done), fmt(inflation, 2) + "x",
                std::to_string(host.timeouts()), std::to_string(host.retries()),
                std::to_string(host.aborted())});
    JsonValue row = JsonValue::object();
    row["rate"] = rate;
    row["setup_cycles"] = done;
    row["inflation"] = inflation;
    row["timeouts"] = host.timeouts();
    row["retries"] = host.retries();
    row["aborted"] = host.aborted();
    arows.push_back(std::move(row));
    if (rate == 0.0 && (host.timeouts() != 0 || host.aborted() != 0)) {
      std::cerr << "bench_fault_sweep: zero-rate aelite set-up row shows timeouts\n";
      bad = true;
    }
  }
  at.print(std::cout);
  std::cout << "\n";

  // -- 3. aelite streamed throughput under injected flit faults -------------
  // Fixed window, saturated source; dropped flits also strand credits, so
  // throughput decays faster than the raw drop rate.
  const sim::Cycle window = quick ? 5000 : 20000;
  TextTable st("aelite streamed words in a fixed window vs fault rate (3x3 mesh)");
  st.set_header({"rate", "delivered", "words/cycle", "vs clean", "injected"});
  JsonValue srows = JsonValue::array();
  std::size_t base_words = 0;
  for (double rate : rates) {
    AeliteRig rig(3, 3, 16);
    const auto conn = rig.connect(rig.mesh.ni(0, 0), rig.mesh.ni(2, 1), 4, 1);
    const auto h = rig.net->open_connection(conn);
    sim::FaultPlan plan;
    plan.seed = kFaultSeed;
    plan.rate = rate;
    // Constructed after the rig so it commits last each cycle.
    std::optional<sim::FaultInjector> injector;
    if (plan.enabled()) {
      injector.emplace(rig.kernel, "fault", plan);
      rig.net->attach_fault_lines(*injector);
    }
    aelite::Ni& src = rig.net->ni(h.conn.request.src_ni);
    aelite::Ni& dst = rig.net->ni(h.conn.request.dst_nis[0]);
    std::size_t pushed = 0, got = 0;
    for (sim::Cycle c = 0; c < window; ++c) {
      if (src.tx_push(h.src_tx_q, static_cast<std::uint32_t>(pushed))) ++pushed;
      rig.kernel.step();
      while (dst.rx_pop(h.dst_rx_q)) ++got;
    }
    if (rate == 0.0) base_words = got;
    const double ratio =
        base_words == 0 ? 0.0 : static_cast<double>(got) / static_cast<double>(base_words);
    const std::uint64_t injected = injector ? injector->counters().injected : 0;
    st.add_row({fmt(rate, 4), std::to_string(got),
                fmt(static_cast<double>(got) / static_cast<double>(window), 3), pct(ratio),
                std::to_string(injected)});
    JsonValue row = JsonValue::object();
    row["rate"] = rate;
    row["window_cycles"] = window;
    row["words_delivered"] = static_cast<std::uint64_t>(got);
    row["words_per_cycle"] = static_cast<double>(got) / static_cast<double>(window);
    row["vs_clean"] = ratio;
    row["faults_injected"] = injected;
    srows.push_back(std::move(row));
    if (rate == 0.0 && injected != 0) {
      std::cerr << "bench_fault_sweep: zero-rate aelite stream row shows faults\n";
      bad = true;
    }
  }
  st.print(std::cout);

  const std::string json_path = json_out_path(argc, argv, "fault");
  if (!json_path.empty()) {
    JsonValue doc = JsonValue::object();
    doc["fault_seed"] = kFaultSeed;
    doc["quick"] = quick;
    doc["daelite"] = std::move(drows);
    doc["aelite_setup"] = std::move(arows);
    doc["aelite_stream"] = std::move(srows);
    if (!write_bench_json(json_path, "fault", std::move(doc))) {
      std::cerr << "bench_fault_sweep: cannot write " << json_path << "\n";
      return 2;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return bad ? 1 : 0;
}
