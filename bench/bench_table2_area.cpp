// T-II: regenerate the paper's Table II — daelite area reduction compared
// to other implementations — plus the frequency comparison (C-6).
//
// Competitor areas come from structural archetype models (see
// src/area/models.cpp); daelite areas from the daelite model with matched
// parameters; the paper's published reduction is printed alongside.

#include <iostream>

#include "analysis/report.hpp"
#include "area/table2.hpp"

int main() {
  using namespace daelite::area;
  using daelite::analysis::TextTable;
  using daelite::analysis::fmt;
  using daelite::analysis::pct;

  const GeCosts costs{};

  {
    TextTable t("Table II: daelite area reduction compared to other implementations");
    t.set_header({"Competitor (configuration)", "Tech", "Competitor kGE", "daelite kGE",
                  "Competitor mm^2", "Reduction (model)", "Reduction (paper)"});
    for (const auto& row : build_router_rows(costs)) {
      t.add_row({row.competitor, tech_name(row.node), fmt(row.competitor_ge / 1000.0, 1),
                 fmt(row.daelite_ge / 1000.0, 1), fmt(row.competitor_mm2(), 3),
                 pct(row.computed_reduction()), pct(row.paper_reduction)});
    }
    t.print(std::cout);
  }

  {
    const auto row = build_interconnect_row(costs);
    TextTable t("\nFull interconnect vs aelite (2x2 mesh, 32 TDM slots, NIs included)");
    t.set_header({"Metric", "daelite", "aelite", "Reduction (model)", "Reduction (paper)"});
    t.add_row({"gate equivalents", fmt(row.daelite_ge / 1000.0, 1) + " kGE",
               fmt(row.aelite_ge / 1000.0, 1) + " kGE", pct(row.computed_reduction()),
               pct(row.paper_reduction_asic) + " (65nm)"});
    t.add_row({"FPGA slices (est.)", fmt(row.daelite_slices(), 0), fmt(row.aelite_slices(), 0),
               pct(row.computed_reduction()), pct(row.paper_reduction_fpga) + " (Virtex-6)"});
    t.print(std::cout);
  }

  {
    const auto f = build_frequency_row();
    TextTable t("\nUnconstrained 65nm synthesis frequency (paper &V)");
    t.set_header({"Design", "Model MHz", "Paper MHz"});
    t.add_row({"daelite router", fmt(f.daelite_mhz, 0), fmt(f.paper_daelite_mhz, 0)});
    t.add_row({"aelite router", fmt(f.aelite_mhz, 0), fmt(f.paper_aelite_mhz, 0)});
    t.print(std::cout);
    std::cout << "daelite routes on arrival time alone (no header inspection), so its\n"
                 "crossbar select path is shorter: slightly higher frequency at lower area.\n";
  }
  return 0;
}
