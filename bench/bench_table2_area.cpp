// T-II: regenerate the paper's Table II — daelite area reduction compared
// to other implementations — plus the frequency comparison (C-6).
//
// Competitor areas come from structural archetype models (see
// src/area/models.cpp); daelite areas from the daelite model with matched
// parameters; the paper's published reduction is printed alongside.

#include <iostream>

#include "analysis/report.hpp"
#include "area/table2.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace daelite::area;
  using daelite::analysis::TextTable;
  using daelite::analysis::fmt;
  using daelite::analysis::pct;
  using daelite::sim::JsonValue;

  const GeCosts costs{};

  {
    TextTable t("Table II: daelite area reduction compared to other implementations");
    t.set_header({"Competitor (configuration)", "Tech", "Competitor kGE", "daelite kGE",
                  "Competitor mm^2", "Reduction (model)", "Reduction (paper)"});
    for (const auto& row : build_router_rows(costs)) {
      t.add_row({row.competitor, tech_name(row.node), fmt(row.competitor_ge / 1000.0, 1),
                 fmt(row.daelite_ge / 1000.0, 1), fmt(row.competitor_mm2(), 3),
                 pct(row.computed_reduction()), pct(row.paper_reduction)});
    }
    t.print(std::cout);
  }

  {
    const auto row = build_interconnect_row(costs);
    TextTable t("\nFull interconnect vs aelite (2x2 mesh, 32 TDM slots, NIs included)");
    t.set_header({"Metric", "daelite", "aelite", "Reduction (model)", "Reduction (paper)"});
    t.add_row({"gate equivalents", fmt(row.daelite_ge / 1000.0, 1) + " kGE",
               fmt(row.aelite_ge / 1000.0, 1) + " kGE", pct(row.computed_reduction()),
               pct(row.paper_reduction_asic) + " (65nm)"});
    t.add_row({"FPGA slices (est.)", fmt(row.daelite_slices(), 0), fmt(row.aelite_slices(), 0),
               pct(row.computed_reduction()), pct(row.paper_reduction_fpga) + " (Virtex-6)"});
    t.print(std::cout);
  }

  {
    const auto f = build_frequency_row();
    TextTable t("\nUnconstrained 65nm synthesis frequency (paper &V)");
    t.set_header({"Design", "Model MHz", "Paper MHz"});
    t.add_row({"daelite router", fmt(f.daelite_mhz, 0), fmt(f.paper_daelite_mhz, 0)});
    t.add_row({"aelite router", fmt(f.aelite_mhz, 0), fmt(f.paper_aelite_mhz, 0)});
    t.print(std::cout);
    std::cout << "daelite routes on arrival time alone (no header inspection), so its\n"
                 "crossbar select path is shorter: slightly higher frequency at lower area.\n";
  }

  const std::string json_path = daelite::bench::json_out_path(argc, argv, "table2_area");
  if (!json_path.empty()) {
    JsonValue doc = JsonValue::object();
    JsonValue routers = JsonValue::array();
    for (const auto& row : build_router_rows(costs)) {
      JsonValue r = JsonValue::object();
      r["competitor"] = row.competitor;
      r["tech"] = tech_name(row.node);
      r["competitor_kge"] = row.competitor_ge / 1000.0;
      r["daelite_kge"] = row.daelite_ge / 1000.0;
      r["competitor_mm2"] = row.competitor_mm2();
      r["reduction_model"] = row.computed_reduction();
      r["reduction_paper"] = row.paper_reduction;
      routers.push_back(std::move(r));
    }
    doc["routers"] = std::move(routers);
    const auto irow = build_interconnect_row(costs);
    JsonValue inter = JsonValue::object();
    inter["daelite_kge"] = irow.daelite_ge / 1000.0;
    inter["aelite_kge"] = irow.aelite_ge / 1000.0;
    inter["reduction_model"] = irow.computed_reduction();
    inter["reduction_paper_asic"] = irow.paper_reduction_asic;
    inter["reduction_paper_fpga"] = irow.paper_reduction_fpga;
    doc["interconnect"] = std::move(inter);
    const auto frow = build_frequency_row();
    JsonValue freq = JsonValue::object();
    freq["daelite_mhz"] = frow.daelite_mhz;
    freq["aelite_mhz"] = frow.aelite_mhz;
    freq["paper_daelite_mhz"] = frow.paper_daelite_mhz;
    freq["paper_aelite_mhz"] = frow.paper_aelite_mhz;
    doc["frequency"] = std::move(freq);
    if (!daelite::bench::write_bench_json(json_path, "table2_area", std::move(doc))) return 1;
  }
  return 0;
}
