// T-III / C-5: regenerate the paper's Table III — connection set-up time
// (request and response paths of one connection), daelite vs aelite,
// ideal and measured — plus the two scaling behaviours the paper calls
// out: daelite's set-up time depends on path length but NOT on the number
// of slots used; aelite's grows with the slots used.
//
// daelite measured: cycle-accurate simulation of the broadcast
// configuration tree (host writes -> 7-bit words -> slot-table updates,
// cool-down included). aelite measured: cycle-stepped model of MMIO
// configuration over the data network's reserved slots (see
// src/aelite/config_model.hpp).

#include <algorithm>
#include <iostream>

#include "aelite/be_config_model.hpp"
#include "aelite/config_model.hpp"
#include "analysis/report.hpp"
#include "analysis/setup_time.hpp"
#include "common.hpp"

using namespace daelite;
using namespace daelite::bench;
using analysis::TextTable;
using analysis::fmt;

namespace {

struct Case {
  const char* label;
  int sx, sy, dx, dy;
};

sim::Cycle daelite_measured(DaeliteRig& rig, const alloc::AllocatedConnection& conn) {
  (void)rig.net->open_connection(conn);
  return rig.net->run_config();
}

} // namespace

int main(int argc, char** argv) {
  constexpr std::uint32_t kSlots = 16;
  const Case cases[] = {
      {"adjacent (3 hops)", 1, 0, 2, 0},
      {"medium   (5 hops)", 0, 1, 2, 2},
      {"corner   (8 hops)", 0, 0, 3, 3},
  };

  using sim::JsonValue;
  JsonValue jpaths = JsonValue::array();
  JsonValue jslots = JsonValue::array();
  JsonValue jbe = JsonValue::array();

  TextTable t("Table III: connection set-up time in cycles (request + response path)");
  t.set_header({"Path", "daelite ideal", "daelite measured", "aelite ideal", "aelite measured",
                "speed-up"});

  for (const Case& c : cases) {
    DaeliteRig rig(4, 4, kSlots);
    const auto conn = rig.connect(rig.mesh.ni(c.sx, c.sy), {rig.mesh.ni(c.dx, c.dy)}, 2, 2);
    const auto ideal = analysis::daelite_ideal_connection_setup_cycles(
        rig.mesh.topo, rig.net->options().tdm, conn, rig.net->options().cool_down_cycles);
    const auto measured = daelite_measured(rig, conn);

    sim::Kernel ak;
    const auto amesh = topo::make_mesh(4, 4);
    aelite::AeliteConfigHost ahost(ak, "cfg", amesh.topo, amesh.ni(0, 0),
                                   {tdm::aelite_params(kSlots), 0});
    aelite::AeliteConfigHost::SetupRequest req{amesh.ni(c.sx, c.sy), amesh.ni(c.dx, c.dy), 2, 2,
                                               true};
    const auto a_ideal = ahost.ideal_setup_cycles(req);
    const auto id = ahost.post_setup(req);
    if (!ak.run_until([&] { return ahost.idle(); }, 1000000)) {
      std::cerr << "error: aelite set-up for " << c.label << " did not complete\n";
      return 1;
    }
    const auto a_measured = ahost.completion_cycle(id);

    t.add_row({c.label, std::to_string(ideal), std::to_string(measured), std::to_string(a_ideal),
               std::to_string(a_measured),
               fmt(static_cast<double>(a_measured) / static_cast<double>(measured), 1) + "x"});

    JsonValue row = JsonValue::object();
    row["path"] = c.label;
    row["daelite_ideal"] = ideal;
    row["daelite_measured"] = measured;
    row["aelite_ideal"] = a_ideal;
    row["aelite_measured"] = a_measured;
    row["speedup"] = static_cast<double>(a_measured) / static_cast<double>(measured);
    jpaths.push_back(std::move(row));
  }
  t.print(std::cout);

  // --- C-5: scaling with the number of slots used -----------------------------
  TextTable s("\nSet-up time vs slots used by the connection (path fixed, 5 hops, S=16)");
  s.set_header({"slots used", "daelite measured", "aelite measured"});
  for (std::uint32_t slots : {1u, 2u, 4u, 8u}) {
    DaeliteRig rig(4, 4, kSlots);
    const auto conn = rig.connect(rig.mesh.ni(0, 1), {rig.mesh.ni(2, 2)}, slots, slots);
    const auto measured = daelite_measured(rig, conn);

    sim::Kernel ak;
    const auto amesh = topo::make_mesh(4, 4);
    aelite::AeliteConfigHost ahost(ak, "cfg", amesh.topo, amesh.ni(0, 0),
                                   {tdm::aelite_params(kSlots), 0});
    const auto id = ahost.post_setup({amesh.ni(0, 1), amesh.ni(2, 2), slots, slots, true});
    if (!ak.run_until([&] { return ahost.idle(); }, 1000000)) {
      std::cerr << "error: aelite set-up (" << slots << " slots) did not complete\n";
      return 1;
    }

    s.add_row({std::to_string(slots), std::to_string(measured),
               std::to_string(ahost.completion_cycle(id))});

    JsonValue row = JsonValue::object();
    row["slots_used"] = slots;
    row["daelite_measured"] = measured;
    row["aelite_measured"] = ahost.completion_cycle(id);
    jslots.push_back(std::move(row));
  }
  s.print(std::cout);

  // --- The third mechanism of &III: BE-configured distributed Aethereal ------
  TextTable b("\nBE-configured set-up (distributed Aethereal style): no guarantee possible");
  b.set_header({"background load", "min (cycles)", "mean (cycles)", "max (cycles)"});
  for (double load : {0.1, 0.3, 0.5}) {
    const auto amesh = topo::make_mesh(4, 4);
    sim::Cycle lo = ~0ull, hi = 0;
    double sum = 0;
    constexpr int kTrials = 200;
    for (int trial = 0; trial < kTrials; ++trial) {
      aelite::BeConfigModel be(amesh.topo, amesh.ni(0, 0),
                               {tdm::aelite_params(kSlots), load,
                                static_cast<std::uint64_t>(trial + 1)});
      const sim::Cycle c = be.setup_cycles(amesh.ni(0, 1), amesh.ni(2, 2), 2, 2);
      lo = std::min(lo, c);
      hi = std::max(hi, c);
      sum += static_cast<double>(c);
    }
    b.add_row({fmt(load, 1), std::to_string(lo), fmt(sum / kTrials, 0), std::to_string(hi)});

    JsonValue row = JsonValue::object();
    row["load"] = load;
    row["min_cycles"] = lo;
    row["mean_cycles"] = sum / kTrials;
    row["max_cycles"] = hi;
    jbe.push_back(std::move(row));
  }
  b.print(std::cout);
  std::cout << "BE set-up contends with data traffic at every hop: the mean degrades\n"
               "with load and the tail is unbounded - \"does not deliver guarantees\n"
               "regarding the set-up time\" (paper &III). daelite's dedicated tree makes\n"
               "set-up time an exact constant for a given path.\n\n";

  std::cout << "daelite set-up time is flat in the slot count (the slot mask travels in\n"
               "ceil(S/7) fixed words) and grows only with path length; aelite writes one\n"
               "register per slot-table entry over the NoC, so its time grows with both.\n"
               "Paper claim: \"daelite configuration is roughly one order of magnitude\n"
               "faster than aelite\".\n";

  const std::string json_path = bench::json_out_path(argc, argv, "table3_setup");
  if (!json_path.empty()) {
    JsonValue doc = JsonValue::object();
    doc["paths"] = std::move(jpaths);
    doc["slots_scaling"] = std::move(jslots);
    doc["be_config"] = std::move(jbe);
    if (!bench::write_bench_json(json_path, "table3_setup", std::move(doc))) return 1;
  }
  return 0;
}
