// C-7: dynamic reconfiguration under traffic (paper §IV: "Setting up and
// tearing down connections can be done dynamically without affecting the
// normal operation of the system"). A live connection streams at full
// rate while other connections are repeatedly set up and torn down
// through the configuration tree; the live connection's delivered words,
// drops and jitter are reported.

#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"

using namespace daelite;
using namespace daelite::bench;
using analysis::TextTable;
using analysis::fmt;

int main() {
  constexpr std::uint32_t kSlots = 16;
  DaeliteRig rig(4, 4, kSlots);

  const auto live = rig.connect(rig.mesh.ni(0, 0), {rig.mesh.ni(3, 3)}, 4);
  const auto hl = rig.net->open_connection(live);
  rig.net->run_config();

  hw::Ni& src = rig.net->ni(rig.mesh.ni(0, 0));
  hw::Ni& dst = rig.net->ni(rig.mesh.ni(3, 3));

  std::size_t pushed = 0, received = 0;
  std::uint32_t next_expected = 0;
  bool in_order = true;
  auto pump = [&](int cycles, bool until_cfg_idle) {
    for (int i = 0; i < cycles; ++i) {
      if (src.tx_push(hl.src_tx_q, static_cast<std::uint32_t>(pushed))) ++pushed;
      rig.kernel.step();
      while (auto w = dst.rx_pop(hl.dst_rx_qs[0])) {
        in_order = in_order && (*w == next_expected);
        ++next_expected;
        ++received;
      }
      if (until_cfg_idle && rig.net->config_idle()) break;
    }
  };

  TextTable t("Live connection behaviour while churning other connections");
  t.set_header({"phase", "words delivered", "router drops", "NI drops", "jitter"});

  auto report = [&](const char* phase) {
    const auto& lat = dst.stats().latency;
    t.add_row({phase, std::to_string(received), std::to_string(rig.net->total_router_drops()),
               std::to_string(rig.net->total_ni_drops()),
               fmt(lat.count() ? lat.max() - lat.min() : 0.0, 0) + " cycles"});
  };

  pump(2000, false);
  report("baseline (no churn)");

  int churns = 0;
  for (int round = 0; round < 6; ++round) {
    const auto other =
        rig.connect(rig.mesh.ni(1 + round % 2, 0), {rig.mesh.ni(2, 3 - round % 2)}, 2);
    const auto ho = rig.net->open_connection(other);
    pump(4000, true); // stream while the config tree is busy
    rig.net->close_connection(ho);
    rig.alloc->release(other.request);
    if (other.has_response) rig.alloc->release(other.response);
    pump(4000, true);
    ++churns;
  }
  report("after 6 set-up/tear-down rounds");

  pump(2000, false);
  report("final drain");
  t.print(std::cout);

  std::cout << "In-order delivery: " << (in_order ? "yes" : "NO") << "; " << churns
            << " connections were set up and torn down through the broadcast tree while\n"
               "the live connection streamed — zero drops, zero jitter, unchanged rate:\n"
               "reconfiguration is fully composable with running traffic.\n";
  return in_order ? 0 : 1;
}
