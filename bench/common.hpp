#pragma once
// Shared scaffolding for the bench binaries: assembled daelite / aelite
// networks with allocators, and streaming helpers that drive words
// through a connection while popping at the destination.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "aelite/network.hpp"
#include "alloc/allocator.hpp"
#include "alloc/usecase.hpp"
#include "daelite/network.hpp"
#include "sim/json.hpp"
#include "topology/generators.hpp"

namespace daelite::bench {

/// `--json [dir]` support for the bench binaries: when the flag is present,
/// returns "<dir>/BENCH_<name>.json" (dir defaults to the working
/// directory), else "". The text tables remain the primary output; the
/// JSON document is the machine-readable mirror CI archives and diffs.
inline std::string json_out_path(int argc, char** argv, const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    std::string dir = ".";
    if (i + 1 < argc && argv[i + 1][0] != '-') dir = argv[i + 1];
    return dir + "/BENCH_" + name + ".json";
  }
  return {};
}

/// Write a bench document ({"bench": name, ...fields}) to `path`.
/// Returns false (with a note on stderr) if the file cannot be written.
inline bool write_bench_json(const std::string& path, const std::string& name,
                             sim::JsonValue doc) {
  sim::JsonValue root = sim::JsonValue::object();
  root["bench"] = name;
  root["schema_version"] = 1;
  for (auto& [k, v] : doc.members()) root[k] = v;
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "bench: cannot open %s\n", path.c_str());
    return false;
  }
  os << root.dump(2) << "\n";
  std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
  return true;
}

struct DaeliteRig {
  topo::Mesh mesh;
  sim::Kernel kernel;
  std::unique_ptr<hw::DaeliteNetwork> net;
  std::unique_ptr<alloc::SlotAllocator> alloc;

  DaeliteRig(int w, int h, std::uint32_t slots,
             alloc::SlotPolicy policy = alloc::SlotPolicy::kSpread,
             std::size_t queue_cap = 32,
             sim::Scheduler scheduler = sim::Scheduler::kStride)
      : kernel(scheduler) {
    mesh = topo::make_mesh(w, h);
    hw::DaeliteNetwork::Options opt;
    opt.tdm = tdm::daelite_params(slots);
    opt.cfg_root = mesh.ni(0, 0);
    opt.ni_queue_capacity = queue_cap;
    net = std::make_unique<hw::DaeliteNetwork>(kernel, mesh.topo, opt);
    alloc::AllocatorOptions ao;
    ao.slot_policy = policy;
    alloc = std::make_unique<alloc::SlotAllocator>(mesh.topo, opt.tdm, ao);
  }

  alloc::AllocatedConnection connect(topo::NodeId src, std::vector<topo::NodeId> dsts,
                                     std::uint32_t req_slots, std::uint32_t resp_slots = 1) {
    alloc::UseCase uc;
    uc.connections.push_back({"c", src, std::move(dsts), req_slots, resp_slots});
    auto a = alloc::allocate_use_case(*alloc, uc);
    if (!a) {
      std::fprintf(stderr, "bench: allocation failed\n");
      std::abort();
    }
    return a->connections[0];
  }

  /// Stream n words src -> dst (popping as we go). Returns words received.
  std::size_t stream(const hw::ConnectionHandle& h, std::size_t n) {
    hw::Ni& src = net->ni(h.conn.request.src_ni);
    hw::Ni& dst = net->ni(h.conn.request.dst_nis[0]);
    std::size_t pushed = 0, got = 0;
    for (long guard = 0; guard < 4'000'000 && got < n; ++guard) {
      if (pushed < n && src.tx_push(h.src_tx_q, static_cast<std::uint32_t>(pushed))) ++pushed;
      kernel.step();
      while (dst.rx_pop(h.dst_rx_qs[0])) ++got;
    }
    return got;
  }
};

struct AeliteRig {
  topo::Mesh mesh;
  sim::Kernel kernel;
  std::unique_ptr<aelite::AeliteNetwork> net;
  std::unique_ptr<alloc::SlotAllocator> alloc;

  AeliteRig(int w, int h, std::uint32_t slots,
            alloc::SlotPolicy policy = alloc::SlotPolicy::kSpread, bool reserve_cfg = true) {
    mesh = topo::make_mesh(w, h);
    aelite::AeliteNetwork::Options opt;
    opt.tdm = tdm::aelite_params(slots);
    net = std::make_unique<aelite::AeliteNetwork>(kernel, mesh.topo, opt);
    alloc::AllocatorOptions ao;
    ao.slot_policy = policy;
    alloc = std::make_unique<alloc::SlotAllocator>(mesh.topo, opt.tdm, ao);
    if (reserve_cfg) aelite::AeliteNetwork::reserve_config_slots(*alloc);
  }

  alloc::AllocatedConnection connect(topo::NodeId src, topo::NodeId dst, std::uint32_t req_slots,
                                     std::uint32_t resp_slots = 1) {
    alloc::UseCase uc;
    uc.connections.push_back({"c", src, {dst}, req_slots, resp_slots});
    auto a = alloc::allocate_use_case(*alloc, uc);
    if (!a) {
      std::fprintf(stderr, "bench: aelite allocation failed\n");
      std::abort();
    }
    return a->connections[0];
  }

  std::size_t stream(const aelite::AeliteConnectionHandle& h, std::size_t n) {
    aelite::Ni& src = net->ni(h.conn.request.src_ni);
    aelite::Ni& dst = net->ni(h.conn.request.dst_nis[0]);
    std::size_t pushed = 0, got = 0;
    for (long guard = 0; guard < 4'000'000 && got < n; ++guard) {
      if (pushed < n && src.tx_push(h.src_tx_q, static_cast<std::uint32_t>(pushed))) ++pushed;
      kernel.step();
      while (dst.rx_pop(h.dst_rx_q)) ++got;
    }
    return got;
  }
};

} // namespace daelite::bench
