// Ablation: slot-table size S.
//
// S trades off bandwidth allocation granularity (1/S of a link per slot)
// against scheduling latency (a wheel is S*2 cycles), router area (S
// table entries per output) and set-up cost (ceil(S/7) mask words per
// path packet — but NOT per-slot writes, daelite's key property).

#include <iostream>

#include "analysis/formulas.hpp"
#include "analysis/report.hpp"
#include "analysis/setup_time.hpp"
#include "area/models.hpp"
#include "common.hpp"

using namespace daelite;
using namespace daelite::bench;
using analysis::TextTable;
using analysis::fmt;
using analysis::pct;

int main() {
  TextTable t("Slot-table size ablation (4x4 mesh, 5-hop connection, 25% of link bandwidth)");
  t.set_header({"S", "granularity", "wheel (cycles)", "avg sched. latency", "router kGE",
                "setup measured (cycles)"});

  for (std::uint32_t s : {8u, 16u, 32u, 64u}) {
    DaeliteRig rig(4, 4, s);
    const std::uint32_t slots = std::max(1u, s / 4); // 25% of the wheel
    const auto conn = rig.connect(rig.mesh.ni(0, 1), {rig.mesh.ni(2, 2)}, slots, 1);
    (void)rig.net->open_connection(conn);
    const sim::Cycle setup = rig.net->run_config();

    const auto sched =
        analysis::scheduling_latency(conn.request.inject_slots, tdm::daelite_params(s));

    area::DaeliteRouterParams rp;
    rp.slots = s;
    const double ge = area::daelite_router_ge(area::GeCosts{}, rp);

    t.add_row({std::to_string(s), pct(1.0 / s), std::to_string(tdm::daelite_params(s).wheel_cycles()),
               fmt(sched.average_cycles, 1) + " cyc", fmt(ge / 1000.0, 1),
               std::to_string(setup)});
  }
  t.print(std::cout);
  std::cout << "Set-up cost grows only via ceil(S/7) mask words (+1 word per +7 slots),\n"
               "not per slot used; area grows linearly in S; finer granularity costs\n"
               "scheduling latency at equal bandwidth share. The paper's experiments use\n"
               "S=8..32 — this sweep shows why.\n";
  return 0;
}
