// F-1: contention-free routing (paper Fig. 1 / §III) — under the
// network-wide TDM schedule, packets never collide and never wait: zero
// drops, zero jitter, latency exactly 2 cycles per hop for every live
// connection, at any admissible load.

#include <iostream>

#include "analysis/report.hpp"
#include "common.hpp"
#include "sim/random.hpp"

using namespace daelite;
using namespace daelite::bench;
using analysis::TextTable;
using analysis::fmt;
using analysis::pct;

int main() {
  constexpr std::uint32_t kSlots = 16;

  TextTable t("Contention-freedom under increasing random load (4x4 mesh, S=16)");
  t.set_header({"connections", "schedule util", "words delivered", "router drops", "NI drops",
                "jitter (max-min latency)"});

  for (const std::size_t target : {4u, 8u, 16u, 24u}) {
    DaeliteRig rig(4, 4, kSlots);
    sim::Xoshiro256 rng(2024 + target);
    const auto nis = rig.mesh.all_nis();

    std::vector<hw::ConnectionHandle> handles;
    for (std::size_t i = 0; i < target * 3 && handles.size() < target; ++i) {
      const topo::NodeId s = nis[rng.below(nis.size())];
      const topo::NodeId d = nis[rng.below(nis.size())];
      if (s == d) continue;
      alloc::UseCase uc;
      uc.connections.push_back({"r", s, {d}, static_cast<std::uint32_t>(rng.range(1, 3)), 1});
      auto a = alloc::allocate_use_case(*rig.alloc, uc);
      if (!a) continue;
      handles.push_back(rig.net->open_connection(a->connections[0]));
    }
    rig.net->run_config();

    // Saturate every connection simultaneously.
    std::uint64_t delivered = 0;
    std::vector<std::size_t> pushed(handles.size(), 0);
    for (int cycle = 0; cycle < 6000; ++cycle) {
      for (std::size_t c = 0; c < handles.size(); ++c) {
        hw::Ni& src = rig.net->ni(handles[c].conn.request.src_ni);
        if (src.tx_push(handles[c].src_tx_q, static_cast<std::uint32_t>(pushed[c]))) ++pushed[c];
        hw::Ni& dst = rig.net->ni(handles[c].conn.request.dst_nis[0]);
        while (dst.rx_pop(handles[c].dst_rx_qs[0])) ++delivered;
      }
      rig.kernel.step();
    }

    // Jitter: per connection, max - min of its destination's latency
    // histogram restricted to its own path length is zero by construction;
    // we report the max over NIs receiving a single channel.
    double max_jitter = 0.0;
    std::map<topo::NodeId, int> rx_count;
    for (const auto& h : handles) {
      ++rx_count[h.conn.request.dst_nis[0]];
      ++rx_count[h.conn.request.src_ni]; // response channel terminates here
    }
    for (const auto& h : handles) {
      const topo::NodeId d = h.conn.request.dst_nis[0];
      if (rx_count[d] != 1) continue;
      const auto& lat = rig.net->ni(d).stats().latency;
      if (lat.count() > 0) max_jitter = std::max(max_jitter, lat.max() - lat.min());
    }

    t.add_row({std::to_string(handles.size()), pct(rig.alloc->schedule().utilization()),
               std::to_string(delivered), std::to_string(rig.net->total_router_drops()),
               std::to_string(rig.net->total_ni_drops()), fmt(max_jitter, 0) + " cycles"});
  }
  t.print(std::cout);
  std::cout << "Routers have no arbitration and no link-level flow control; the schedule\n"
               "guarantees that flits \"never collide and never have to wait for each\n"
               "other\" (paper &III) — confirmed by zero drops and zero jitter at every\n"
               "load the allocator admits.\n";
  return 0;
}
