#pragma once
// DNN-accelerator workload front end: compile a tiled layer schedule into
// daelite traffic.
//
// The accelerator is a rectangular grid of compute tiles placed on the
// mesh, fed by one or more DRAM-port NIs. Each layer runs in three
// logical flows, all expressed as ordinary daelite connections:
//
//  * weights — every tile needs the full (tiled) weight set, so each DRAM
//    port multicasts its share of the weight words to ALL tiles (the
//    paper's multicast tree: the source link is used once regardless of
//    the tile count);
//  * ifmaps — per-tile input feature-map slices, unicast from a DRAM port
//    chosen by interleaving (tile + layer) across the ports, so the DRAM
//    bandwidth is load-balanced and the sources ROTATE from layer to
//    layer;
//  * ofmaps — per-tile output slices, unicast from the tile back to its
//    interleaved DRAM port.
//
// All flows are posted (no response channel; cf. "there is no
// corresponding multi-destination read"). Because the weight-broadcast
// specs are identical in every layer, a use-case switch keeps them
// streaming, while the rotating ifmap/ofmap connections are torn down and
// set up each layer — exactly the fast-reconfiguration traffic the paper
// argues daelite wins on.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "alloc/usecase.hpp"
#include "topology/generators.hpp"

namespace daelite::workload {

/// One layer's transfer volumes, in 32-bit words.
struct LayerSpec {
  std::string name;
  std::uint64_t weight_words = 0; ///< total weights, broadcast to every tile
  std::uint64_t ifmap_words = 0;  ///< input feature-map words PER TILE
  std::uint64_t ofmap_words = 0;  ///< output feature-map words PER TILE
};

/// Placement and slot budget of the accelerator, plus the layer sequence.
/// DRAM-port coordinates are supplied separately (the scenario's `dram`
/// directive) so the same ports also feed the energy accounting.
struct DnnSchedule {
  int grid_x = 0; ///< origin of the tile grid (NI coordinates)
  int grid_y = 0;
  int grid_w = 1;
  int grid_h = 1;
  std::uint32_t weight_slots = 2; ///< slots/wheel of each weight broadcast
  std::uint32_t ifmap_slots = 1;  ///< slots/wheel of each per-tile ifmap feed
  std::uint32_t ofmap_slots = 1;  ///< slots/wheel of each per-tile ofmap drain
  std::vector<LayerSpec> layers;
};

/// One connection of a compiled layer: the allocator-level spec plus the
/// number of request words this phase must deliver to every destination.
struct CompiledConnection {
  alloc::ConnectionSpec spec;
  std::uint64_t words = 0;
};

struct CompiledLayer {
  std::string name;
  std::vector<CompiledConnection> traffic;

  /// The layer as a use case (specs in traffic order) — the unit the
  /// allocator and the use-case switch consume.
  alloc::UseCase use_case() const {
    alloc::UseCase uc;
    uc.name = name;
    for (const CompiledConnection& c : traffic) uc.connections.push_back(c.spec);
    return uc;
  }
};

struct CompiledWorkload {
  std::vector<topo::NodeId> tiles;    ///< row-major over the grid
  std::vector<topo::NodeId> dram_nis; ///< in declaration order
  std::vector<CompiledLayer> layers;
};

/// Compile a schedule against a mesh. `dram` are DRAM-port NI coordinates.
/// Fails (with a message in `error`) when the grid leaves the mesh, a DRAM
/// port sits inside the grid, or the schedule has no layers/ports.
std::optional<CompiledWorkload> compile(const DnnSchedule& sched, const topo::Mesh& mesh,
                                        const std::vector<std::pair<int, int>>& dram,
                                        std::string* error = nullptr);

} // namespace daelite::workload
