#include "workload/dnn.hpp"

#include <algorithm>

namespace daelite::workload {

namespace {

bool set_error(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return false;
}

} // namespace

std::optional<CompiledWorkload> compile(const DnnSchedule& sched, const topo::Mesh& mesh,
                                        const std::vector<std::pair<int, int>>& dram,
                                        std::string* error) {
  if (sched.layers.empty()) {
    set_error(error, "schedule has no layers");
    return std::nullopt;
  }
  if (dram.empty()) {
    set_error(error, "schedule has no DRAM ports");
    return std::nullopt;
  }
  if (sched.grid_w < 1 || sched.grid_h < 1) {
    set_error(error, "tile grid is empty");
    return std::nullopt;
  }
  if (sched.grid_x < 0 || sched.grid_y < 0 || sched.grid_x + sched.grid_w > mesh.width ||
      sched.grid_y + sched.grid_h > mesh.height) {
    set_error(error, "tile grid leaves the mesh");
    return std::nullopt;
  }

  CompiledWorkload out;
  for (int y = sched.grid_y; y < sched.grid_y + sched.grid_h; ++y)
    for (int x = sched.grid_x; x < sched.grid_x + sched.grid_w; ++x)
      out.tiles.push_back(mesh.ni(x, y));

  for (const auto& [x, y] : dram) {
    if (x < 0 || y < 0 || x >= mesh.width || y >= mesh.height) {
      set_error(error, "DRAM port " + std::to_string(x) + "," + std::to_string(y) +
                           " outside the mesh");
      return std::nullopt;
    }
    const topo::NodeId ni = mesh.ni(x, y);
    if (std::find(out.tiles.begin(), out.tiles.end(), ni) != out.tiles.end()) {
      set_error(error, "DRAM port " + std::to_string(x) + "," + std::to_string(y) +
                           " sits inside the tile grid");
      return std::nullopt;
    }
    if (std::find(out.dram_nis.begin(), out.dram_nis.end(), ni) != out.dram_nis.end()) {
      set_error(error, "duplicate DRAM port " + std::to_string(x) + "," + std::to_string(y));
      return std::nullopt;
    }
    out.dram_nis.push_back(ni);
  }

  const std::size_t ports = out.dram_nis.size();
  const std::size_t tiles = out.tiles.size();
  for (std::size_t l = 0; l < sched.layers.size(); ++l) {
    const LayerSpec& layer = sched.layers[l];
    CompiledLayer cl;
    cl.name = layer.name;

    // Weight broadcast: each port multicasts its ceil-share of the weight
    // words to every tile. The spec is layer-invariant, so use-case
    // switches keep these connections streaming.
    for (std::size_t p = 0; p < ports; ++p) {
      CompiledConnection c;
      c.spec.name = "w" + std::to_string(p);
      c.spec.src_ni = out.dram_nis[p];
      c.spec.dst_nis = out.tiles;
      c.spec.request_slots = sched.weight_slots;
      c.spec.response_slots = 0;
      c.words = (layer.weight_words + ports - 1) / ports;
      cl.traffic.push_back(std::move(c));
    }

    // Per-tile feature-map transfers, interleaved over the DRAM ports with
    // a per-layer rotation: the source/destination port of tile t in layer
    // l is (t + l) % P, so each switch really tears down and sets up the
    // ifmap/ofmap connections (when P > 1) while balancing port bandwidth.
    for (std::size_t t = 0; t < tiles; ++t) {
      const topo::NodeId port_ni = out.dram_nis[(t + l) % ports];
      if (layer.ifmap_words > 0) {
        CompiledConnection c;
        c.spec.name = "i" + std::to_string(t);
        c.spec.src_ni = port_ni;
        c.spec.dst_nis = {out.tiles[t]};
        c.spec.request_slots = sched.ifmap_slots;
        c.spec.response_slots = 0;
        c.words = layer.ifmap_words;
        cl.traffic.push_back(std::move(c));
      }
      if (layer.ofmap_words > 0) {
        CompiledConnection c;
        c.spec.name = "o" + std::to_string(t);
        c.spec.src_ni = out.tiles[t];
        c.spec.dst_nis = {port_ni};
        c.spec.request_slots = sched.ofmap_slots;
        c.spec.response_slots = 0;
        c.words = layer.ofmap_words;
        cl.traffic.push_back(std::move(c));
      }
    }
    out.layers.push_back(std::move(cl));
  }
  return out;
}

} // namespace daelite::workload
