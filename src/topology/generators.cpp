#include "topology/generators.hpp"

#include <cassert>
#include <string>

namespace daelite::topo {

std::vector<NodeId> Mesh::all_nis() const {
  std::vector<NodeId> out;
  for (const auto& per_router : nis)
    for (NodeId id : per_router) out.push_back(id);
  return out;
}

Mesh make_mesh(int width, int height, int nis_per_router, bool wrap) {
  assert(width >= 1 && height >= 1 && nis_per_router >= 0);
  Mesh m;
  m.width = width;
  m.height = height;
  m.nis_per_router = nis_per_router;
  m.routers.resize(static_cast<std::size_t>(width) * static_cast<std::size_t>(height));
  m.nis.resize(m.routers.size());

  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const std::size_t idx = static_cast<std::size_t>(y) * static_cast<std::size_t>(width) + static_cast<std::size_t>(x);
      m.routers[idx] = m.topo.add_router("R" + std::to_string(x) + std::to_string(y), x, y);
    }
  }
  // Router-router links. East and south neighbours (plus wraparound for a
  // torus); connect_bidir creates both directions.
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const NodeId r = m.router(x, y);
      if (x + 1 < width) {
        m.topo.connect_bidir(r, m.router(x + 1, y));
      } else if (wrap && width > 2) {
        m.topo.connect_bidir(r, m.router(0, y));
      }
      if (y + 1 < height) {
        m.topo.connect_bidir(r, m.router(x, y + 1));
      } else if (wrap && height > 2) {
        m.topo.connect_bidir(r, m.router(x, 0));
      }
    }
  }
  // NIs last so that router-router ports have stable low indices.
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const std::size_t idx = static_cast<std::size_t>(y) * static_cast<std::size_t>(width) + static_cast<std::size_t>(x);
      for (int i = 0; i < nis_per_router; ++i) {
        const NodeId ni = m.topo.add_ni("NI" + std::to_string(x) + std::to_string(y) +
                                        (nis_per_router > 1 ? "." + std::to_string(i) : ""));
        m.topo.connect_bidir(ni, m.routers[idx]);
        m.nis[idx].push_back(ni);
      }
    }
  }
  return m;
}

Mesh make_ring(int n, int nis_per_router) {
  assert(n >= 2);
  Mesh m;
  m.width = n;
  m.height = 1;
  m.nis_per_router = nis_per_router;
  m.routers.resize(static_cast<std::size_t>(n));
  m.nis.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) m.routers[static_cast<std::size_t>(i)] = m.topo.add_router("R" + std::to_string(i), i, 0);
  for (int i = 0; i < n; ++i) {
    const int j = (i + 1) % n;
    if (n == 2 && i == 1) break; // avoid a duplicate pair of links
    m.topo.connect_bidir(m.routers[static_cast<std::size_t>(i)], m.routers[static_cast<std::size_t>(j)]);
  }
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < nis_per_router; ++k) {
      const NodeId ni = m.topo.add_ni("NI" + std::to_string(i) +
                                      (nis_per_router > 1 ? "." + std::to_string(k) : ""));
      m.topo.connect_bidir(ni, m.routers[static_cast<std::size_t>(i)]);
      m.nis[static_cast<std::size_t>(i)].push_back(ni);
    }
  }
  return m;
}

} // namespace daelite::topo
