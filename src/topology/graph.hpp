#pragma once
// Network topology as a directed multigraph of routers and NIs.
//
// Ports are implicit: the i-th entry of a node's out_links / in_links *is*
// output / input port i. This mirrors the hardware, where the slot table of
// a router addresses ports by index (the paper's 7-bit configuration word
// encodes a pair of input and output port IDs).

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace daelite::topo {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
using PortId = std::uint16_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr LinkId kInvalidLink = std::numeric_limits<LinkId>::max();

enum class NodeKind : std::uint8_t { kRouter, kNi };

struct Node {
  NodeKind kind = NodeKind::kRouter;
  std::string name;
  std::vector<LinkId> out_links; ///< out_links[p] = link leaving output port p
  std::vector<LinkId> in_links;  ///< in_links[p]  = link entering input port p
  int x = -1; ///< mesh coordinate (routers only; -1 when not applicable)
  int y = -1;
};

struct Link {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  PortId src_port = 0; ///< output port index at src
  PortId dst_port = 0; ///< input port index at dst
};

/// Static network structure. Built once before simulation; the hardware
/// models and the allocation toolflow both read it.
class Topology {
 public:
  NodeId add_router(std::string name, int x = -1, int y = -1);
  NodeId add_ni(std::string name);

  /// Add a unidirectional link a -> b. Returns its id; ports are assigned
  /// in creation order.
  LinkId connect(NodeId a, NodeId b);

  /// Add links a -> b and b -> a. Returns {ab, ba}.
  std::pair<LinkId, LinkId> connect_bidir(NodeId a, NodeId b);

  const Node& node(NodeId id) const { return nodes_[id]; }
  const Link& link(LinkId id) const { return links_[id]; }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  std::size_t router_count() const { return router_count_; }
  std::size_t ni_count() const { return ni_count_; }

  bool is_router(NodeId id) const { return nodes_[id].kind == NodeKind::kRouter; }
  bool is_ni(NodeId id) const { return nodes_[id].kind == NodeKind::kNi; }

  /// Number of input/output ports of a node (they may differ).
  std::size_t in_degree(NodeId id) const { return nodes_[id].in_links.size(); }
  std::size_t out_degree(NodeId id) const { return nodes_[id].out_links.size(); }

  /// First link a -> b, or kInvalidLink.
  LinkId find_link(NodeId a, NodeId b) const;

  /// The reverse link of `l` (dst -> src), or kInvalidLink if none exists.
  LinkId reverse_link(LinkId l) const { return find_link(links_[l].dst, links_[l].src); }

  /// Maximum in/out degree over all routers — the "arity" that sizes the
  /// configuration word's port fields.
  std::size_t max_router_arity() const;

  /// All node ids of the given kind, in id order.
  std::vector<NodeId> nodes_of_kind(NodeKind kind) const;

 private:
  NodeId add_node(NodeKind kind, std::string name, int x, int y);

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::size_t router_count_ = 0;
  std::size_t ni_count_ = 0;
};

} // namespace daelite::topo
