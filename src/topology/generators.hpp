#pragma once
// Standard topology generators: 2D mesh (the paper's experimental setup),
// torus, ring and a fully custom escape hatch. Generators return the
// Topology plus lookup tables so callers can address nodes structurally.

#include <vector>

#include "topology/graph.hpp"

namespace daelite::topo {

/// A W x H mesh of routers, each with `nis_per_router` NIs attached.
/// Router ports follow creation order; use the lookup tables, not port
/// numbers, to address nodes.
struct Mesh {
  Topology topo;
  int width = 0;
  int height = 0;
  int nis_per_router = 1;
  std::vector<NodeId> routers;           ///< routers[y*width + x]
  std::vector<std::vector<NodeId>> nis;  ///< nis[y*width + x][i]

  NodeId router(int x, int y) const { return routers[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) + static_cast<std::size_t>(x)]; }
  NodeId ni(int x, int y, int i = 0) const { return nis[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) + static_cast<std::size_t>(x)][static_cast<std::size_t>(i)]; }

  /// All NIs in row-major, then per-router order.
  std::vector<NodeId> all_nis() const;
};

/// Build a W x H mesh (bidirectional links). wrap=true builds a torus.
Mesh make_mesh(int width, int height, int nis_per_router = 1, bool wrap = false);

/// A ring of n routers, one NI each, bidirectional neighbour links.
Mesh make_ring(int n, int nis_per_router = 1);

} // namespace daelite::topo
