#include "topology/graph.hpp"

#include <cassert>
#include <utility>

namespace daelite::topo {

NodeId Topology::add_node(NodeKind kind, std::string name, int x, int y) {
  Node n;
  n.kind = kind;
  n.name = std::move(name);
  n.x = x;
  n.y = y;
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Topology::add_router(std::string name, int x, int y) {
  ++router_count_;
  return add_node(NodeKind::kRouter, std::move(name), x, y);
}

NodeId Topology::add_ni(std::string name) {
  ++ni_count_;
  return add_node(NodeKind::kNi, std::move(name), -1, -1);
}

LinkId Topology::connect(NodeId a, NodeId b) {
  assert(a < nodes_.size() && b < nodes_.size() && a != b);
  Link l;
  l.src = a;
  l.dst = b;
  l.src_port = static_cast<PortId>(nodes_[a].out_links.size());
  l.dst_port = static_cast<PortId>(nodes_[b].in_links.size());
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(l);
  nodes_[a].out_links.push_back(id);
  nodes_[b].in_links.push_back(id);
  return id;
}

std::pair<LinkId, LinkId> Topology::connect_bidir(NodeId a, NodeId b) {
  const LinkId ab = connect(a, b);
  const LinkId ba = connect(b, a);
  return {ab, ba};
}

LinkId Topology::find_link(NodeId a, NodeId b) const {
  for (LinkId l : nodes_[a].out_links)
    if (links_[l].dst == b) return l;
  return kInvalidLink;
}

std::size_t Topology::max_router_arity() const {
  std::size_t arity = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!is_router(id)) continue;
    arity = std::max(arity, std::max(in_degree(id), out_degree(id)));
  }
  return arity;
}

std::vector<NodeId> Topology::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id)
    if (nodes_[id].kind == kind) out.push_back(id);
  return out;
}

} // namespace daelite::topo
