#include "topology/path.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

namespace daelite::topo {

std::vector<NodeId> Path::nodes(const Topology& t) const {
  std::vector<NodeId> out;
  if (links.empty()) return out;
  out.reserve(links.size() + 1);
  out.push_back(t.link(links.front()).src);
  for (LinkId l : links) out.push_back(t.link(l).dst);
  return out;
}

bool Path::is_connected(const Topology& t) const {
  for (std::size_t i = 0; i + 1 < links.size(); ++i)
    if (t.link(links[i]).dst != t.link(links[i + 1]).src) return false;
  return true;
}

Path PathFinder::shortest(NodeId from, NodeId to) const {
  // BFS == Dijkstra with unit costs; reuse the weighted search.
  std::vector<double> unit(topo_->link_count(), 1.0);
  return shortest_weighted(from, to, unit);
}

Path PathFinder::shortest_weighted(NodeId from, NodeId to, std::span<const double> link_cost) const {
  assert(link_cost.size() == topo_->link_count());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = topo_->node_count();
  std::vector<double> dist(n, kInf);
  std::vector<LinkId> via(n, kInvalidLink);

  using Entry = std::pair<double, NodeId>; // (dist, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[from] = 0.0;
  pq.emplace(0.0, from);

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue; // stale entry
    if (u == to) break;
    for (LinkId l : topo_->node(u).out_links) {
      const double c = link_cost[l];
      if (std::isinf(c)) continue;
      if (is_excluded(l)) continue;
      const NodeId v = topo_->link(l).dst;
      if (dist[u] + c < dist[v]) {
        dist[v] = dist[u] + c;
        via[v] = l;
        pq.emplace(dist[v], v);
      }
    }
  }

  Path p;
  if (from == to || std::isinf(dist[to])) return p;
  for (NodeId at = to; at != from;) {
    const LinkId l = via[at];
    p.links.push_back(l);
    at = topo_->link(l).src;
  }
  std::reverse(p.links.begin(), p.links.end());
  return p;
}

void PathFinder::exclude_link(LinkId l) {
  if (excluded_.size() != topo_->link_count()) excluded_.resize(topo_->link_count(), false);
  if (l < excluded_.size()) excluded_[l] = true;
}

std::vector<Path> PathFinder::k_shortest(NodeId from, NodeId to, std::size_t k) const {
  std::vector<Path> result;
  if (k == 0) return result;

  std::vector<double> cost(topo_->link_count(), 1.0);
  Path first = shortest_weighted(from, to, cost);
  if (first.empty()) return result;
  result.push_back(first);

  auto path_len = [](const Path& p) { return p.links.size(); };
  // Candidate set ordered by length then lexicographically for determinism.
  auto cmp = [&](const Path& a, const Path& b) {
    if (path_len(a) != path_len(b)) return path_len(a) < path_len(b);
    return a.links < b.links;
  };
  std::set<Path, decltype(cmp)> candidates(cmp);

  while (result.size() < k) {
    const Path& prev = result.back();
    const std::vector<NodeId> prev_nodes = prev.nodes(*topo_);

    for (std::size_t i = 0; i < prev.links.size(); ++i) {
      const NodeId spur_node = prev_nodes[i];
      // Root path: prev.links[0..i).
      std::vector<double> c(topo_->link_count(), 1.0);
      constexpr double kInf = std::numeric_limits<double>::infinity();

      // Remove links that would recreate an already-found path with the
      // same root.
      for (const Path& p : result) {
        if (p.links.size() > i &&
            std::equal(p.links.begin(), p.links.begin() + static_cast<std::ptrdiff_t>(i), prev.links.begin())) {
          c[p.links[i]] = kInf;
        }
      }
      // Remove root-path nodes (except the spur node) to keep paths loopless.
      for (std::size_t j = 0; j < i; ++j) {
        const NodeId banned = prev_nodes[j];
        for (LinkId l : topo_->node(banned).out_links) c[l] = kInf;
        for (LinkId l : topo_->node(banned).in_links) c[l] = kInf;
      }

      Path spur = shortest_weighted(spur_node, to, c);
      if (spur.empty() && spur_node != to) continue;

      Path total;
      total.links.assign(prev.links.begin(), prev.links.begin() + static_cast<std::ptrdiff_t>(i));
      total.links.insert(total.links.end(), spur.links.begin(), spur.links.end());
      if (total.links.empty()) continue;
      if (std::find(result.begin(), result.end(), total) == result.end()) candidates.insert(std::move(total));
    }

    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

} // namespace daelite::topo
