#pragma once
// Paths and graph search over a Topology.
//
// A Path is the static route of a (unidirectional) channel: an ordered list
// of link ids from the source node to the destination node. The allocation
// toolflow decorates paths with TDM slots; the configuration subsystem
// turns them into set-up packets.

#include <cstddef>
#include <span>
#include <vector>

#include "topology/graph.hpp"

namespace daelite::topo {

struct Path {
  std::vector<LinkId> links;

  std::size_t hop_count() const { return links.size(); }
  bool empty() const { return links.empty(); }

  NodeId source(const Topology& t) const { return links.empty() ? kInvalidNode : t.link(links.front()).src; }
  NodeId dest(const Topology& t) const { return links.empty() ? kInvalidNode : t.link(links.back()).dst; }

  /// Node sequence source..dest (hop_count()+1 entries).
  std::vector<NodeId> nodes(const Topology& t) const;

  /// True iff consecutive links share a node (dst of i == src of i+1).
  bool is_connected(const Topology& t) const;

  bool operator==(const Path&) const = default;
};

class PathFinder {
 public:
  explicit PathFinder(const Topology& topo) : topo_(&topo) {}

  /// Minimum-hop path via BFS. Empty path if unreachable or from == to.
  Path shortest(NodeId from, NodeId to) const;

  /// Dijkstra with a per-link cost vector (size link_count). Costs must be
  /// non-negative; an infinite cost removes the link.
  Path shortest_weighted(NodeId from, NodeId to, std::span<const double> link_cost) const;

  /// Yen's algorithm: up to k loopless shortest paths in nondecreasing hop
  /// order. Used by the multipath allocator ([29] in the paper).
  std::vector<Path> k_shortest(NodeId from, NodeId to, std::size_t k) const;

  /// Persistently remove a link from every search (the allocator's link
  /// quarantine). Enforced centrally in shortest_weighted — which shortest
  /// and k_shortest build on — so no caller-supplied cost vector can
  /// resurrect an excluded link.
  void exclude_link(LinkId l);
  void clear_exclusions() { excluded_.assign(excluded_.size(), false); }
  bool is_excluded(LinkId l) const { return l < excluded_.size() && excluded_[l]; }

 private:
  const Topology* topo_;
  std::vector<bool> excluded_; ///< empty until the first exclusion
};

} // namespace daelite::topo
