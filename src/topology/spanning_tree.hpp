#pragma once
// Minimum-depth spanning tree for the configuration broadcast network.
//
// The paper (§IV, "Configuration infrastructure"): the configuration links
// form a tree over a subset of the data links, "chosen in such a way as to
// minimize the distance from the host to any of the network nodes". A BFS
// tree from the host's attachment point achieves exactly that. The forward
// direction broadcasts; responses converge on the reverse edges.

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace daelite::topo {

struct ConfigTree {
  NodeId root = kInvalidNode;
  /// parent[n] — tree parent of node n (kInvalidNode for root/unreached).
  std::vector<NodeId> parent;
  /// Data link carrying config traffic parent[n] -> n (forward/broadcast).
  std::vector<LinkId> down_link;
  /// Data link n -> parent[n] (response path). kInvalidLink if the data
  /// topology has no reverse link (never the case for our generators).
  std::vector<LinkId> up_link;
  std::vector<std::vector<NodeId>> children;
  std::vector<std::uint32_t> depth; ///< hops from root; root = 0
  std::vector<NodeId> bfs_order;    ///< root first, then by depth

  bool spans_all() const {
    for (NodeId n = 0; n < parent.size(); ++n)
      if (n != root && parent[n] == kInvalidNode) return false;
    return true;
  }

  std::uint32_t max_depth() const;
};

/// Build the BFS (min-depth) config tree rooted at `root` over the
/// *undirected* data-link adjacency. Neighbours are visited in link-id
/// order so the result is deterministic.
ConfigTree build_config_tree(const Topology& topo, NodeId root);

} // namespace daelite::topo
