#include "topology/spanning_tree.hpp"

#include <algorithm>
#include <deque>

namespace daelite::topo {

std::uint32_t ConfigTree::max_depth() const {
  std::uint32_t d = 0;
  for (NodeId n = 0; n < parent.size(); ++n)
    if (n == root || parent[n] != kInvalidNode) d = std::max(d, depth[n]);
  return d;
}

ConfigTree build_config_tree(const Topology& topo, NodeId root) {
  const std::size_t n = topo.node_count();
  ConfigTree t;
  t.root = root;
  t.parent.assign(n, kInvalidNode);
  t.down_link.assign(n, kInvalidLink);
  t.up_link.assign(n, kInvalidLink);
  t.children.assign(n, {});
  t.depth.assign(n, 0);

  std::vector<bool> visited(n, false);
  std::deque<NodeId> queue;
  visited[root] = true;
  queue.push_back(root);
  t.bfs_order.push_back(root);

  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    // Outgoing data links give the forward (broadcast) direction u -> v.
    for (LinkId l : topo.node(u).out_links) {
      const NodeId v = topo.link(l).dst;
      if (visited[v]) continue;
      visited[v] = true;
      t.parent[v] = u;
      t.down_link[v] = l;
      t.up_link[v] = topo.find_link(v, u);
      t.depth[v] = t.depth[u] + 1;
      t.children[u].push_back(v);
      t.bfs_order.push_back(v);
      queue.push_back(v);
    }
  }
  return t;
}

} // namespace daelite::topo
