#pragma once
// Basic scalar types shared by the whole simulator.

#include <cstdint>
#include <limits>

namespace daelite::sim {

/// Simulation time in clock cycles. One cycle is one word time on a link.
using Cycle = std::uint64_t;

/// Sentinel for "no cycle" / "not yet happened".
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

} // namespace daelite::sim
