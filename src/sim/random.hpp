#pragma once
// Deterministic pseudo-random number generation for workloads and tests.
//
// We use xoshiro256** (public-domain algorithm by Blackman & Vigna):
// reproducible across platforms and standard-library versions, unlike
// std::mt19937 + std::uniform_int_distribution whose mapping is
// implementation-defined. All stochastic behaviour in the repository is
// seeded explicitly so every experiment is exactly repeatable.

#include <cstdint>

namespace daelite::sim {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound). bound == 0 returns 0. Uses Lemire's
  /// multiply-shift rejection-free-in-practice reduction with a
  /// correction loop for exactness.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) { return lo + below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t s_[4]{};
};

} // namespace daelite::sim
