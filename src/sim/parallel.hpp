#pragma once
// Batch-level parallelism: a fixed-size thread pool and an ordered
// parallel-for used to run many independent Kernel simulations at once.
//
// The simulation kernel itself stays single-threaded and deterministic;
// parallelism lives strictly above it — one kernel per job, no shared
// mutable state between jobs. Results are collected by job index, so a
// batch produces identical output whether it ran on 1 thread or 16
// (the determinism contract the CI metrics diff relies on).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace daelite::sim {

/// Fixed set of worker threads draining a FIFO task queue. Destruction
/// waits for already-submitted tasks to finish.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; the future reports completion or rethrows the task's
  /// exception.
  std::future<void> submit(std::function<void()> fn);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;       ///< wakes workers
  std::condition_variable idle_cv_;  ///< wakes wait_idle()
  std::deque<std::packaged_task<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Sensible default worker count for batch jobs (>= 1).
std::size_t default_job_count();

/// Run job(0..n-1) across up to `threads` workers and return the results in
/// job order. `threads <= 1` runs inline on the caller's thread — handy for
/// the `--jobs 1` determinism baseline. If any job throws, the first
/// exception (by job index) is rethrown after all workers have stopped.
template <typename R>
std::vector<R> parallel_map(std::size_t n, std::size_t threads,
                            const std::function<R(std::size_t)>& job) {
  std::vector<R> results(n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) results[i] = job(i);
    return results;
  }
  std::vector<std::exception_ptr> errors(n);
  {
    ThreadPool pool(threads < n ? threads : (n ? n : 1));
    for (std::size_t i = 0; i < n; ++i) {
      pool.submit([&, i] {
        try {
          results[i] = job(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  return results;
}

} // namespace daelite::sim
