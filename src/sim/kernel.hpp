#pragma once
// The simulation kernel: a registry of Components and the cycle loop.
//
// One Kernel models one synchronous clock domain (the paper's daelite
// prototype is fully synchronous; aelite's mesochronous links are out of
// scope, as in the paper's experiments).
//
// Two schedulers are provided:
//
//   kStride    — the default. Each component registers a tick cadence
//                (stride + phase offset); the kernel precomputes per-residue
//                activation lists over the least common multiple of all
//                strides and dispatches only the components due in the
//                current cycle. Components may additionally sleep until a
//                known cycle (or indefinitely, woken by an external event),
//                and externally mutated components (NI queue pushes/pops,
//                config enqueues) are committed at the end of the cycle of
//                the mutation via the touched list. run()/run_until()
//                fast-forward now_ across spans where no component is due.
//   kReference — the original per-cycle loop: every component ticks and
//                commits every cycle, cadences and sleeps are ignored.
//                Kept as the oracle for the byte-identity ctests.
//
// Both schedulers dispatch components in registration order within a cycle,
// so trace record order and interned trace ids are identical between them.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hpp"

namespace daelite::sim {

class Component;
class Tracer;

/// Which cycle loop a Kernel runs. See file comment.
enum class Scheduler { kStride, kReference };

/// A component's tick/commit cadence: due at cycles where
/// cycle % stride == phase. The default (stride 1) is "every cycle".
struct Cadence {
  std::uint32_t stride = 1;
  std::uint32_t phase = 0;
};

class Kernel {
 public:
  explicit Kernel(Scheduler scheduler = Scheduler::kStride)
      : scheduler_(scheduler) {}

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  Scheduler scheduler() const { return scheduler_; }

  /// Current cycle number. Cycle N covers the Nth tick/commit pair;
  /// now() increments after the commit phase.
  Cycle now() const { return now_; }

  /// Advance exactly one cycle: tick all due components, then commit.
  void step();

  /// Advance n cycles. Under the stride scheduler, spans where no
  /// component is due (and none has a pending external write) are
  /// fast-forwarded without per-cycle work; so are spans where every
  /// active component certifies its tick a no-op (Component::quiescent()),
  /// e.g. a fully drained network carrying only empty slots.
  void run(Cycle n);

  /// Advance until pred() is true (checked after each cycle boundary) or
  /// max_cycles elapse. Returns true iff the predicate fired within the
  /// budget; on timeout the predicate is NOT re-evaluated and the call
  /// returns false with now() == start + max_cycles.
  ///
  /// Contract under the stride scheduler: idle spans are fast-forwarded,
  /// so a predicate's value may only change at cycles where some component
  /// is dispatched or woken (this holds for any predicate over committed
  /// component state, and for time-dependent predicates such as
  /// ConfigModule::idle() whose flip cycle coincides with the component's
  /// own wake cycle). Predicates violating this may be observed late.
  bool run_until(const std::function<bool()>& pred, Cycle max_cycles);

  /// Number of live (not yet destroyed) components.
  std::size_t component_count() const { return live_count_; }

  /// Deactivate a component until wake(): it stops ticking and committing
  /// from the next cycle on. The caller asserts the component is quiescent
  /// (its registers hold values that re-committing would not change and
  /// its tick is a no-op while suspended). No-op under kReference.
  void suspend(Component& c) { sleep_component(c, kNoCycle); }

  /// Put a component to sleep until cycle wake_at (it still commits the
  /// current cycle). No-op under kReference or when wake_at is next cycle.
  void sleep(Component& c, Cycle wake_at) { sleep_component(c, wake_at); }

  /// Reactivate a suspended/sleeping component from the next dispatch
  /// point (the cycle of the call if invoked between steps, the next
  /// cycle if invoked mid-step). No-op when already active.
  void wake(Component& c);

  /// Attach a structured event tracer (sim/trace.hpp). The kernel does not
  /// own it; pass nullptr to detach. Components check this pointer on
  /// every trace() call, so attaching before or after construction both
  /// work — attach before for complete traces.
  void set_tracer(Tracer* t) { tracer_ = t; }
  Tracer* tracer() const { return tracer_; }

 private:
  friend class Component;

  /// Longest supported precomputed schedule. Components whose stride does
  /// not divide the (capped) period fall back to a per-cycle residue check.
  static constexpr Cycle kMaxPeriod = 4096;

  void add(Component* c);
  /// Deferred removal: tombstone the slot now, sweep between cycles —
  /// safe to call from inside tick()/commit() (components destroying
  /// other components, or themselves, mid-phase).
  void remove(Component* c);
  /// Register c for a commit at the end of the current cycle because its
  /// state was mutated outside its own tick (queue push/pop from a shell,
  /// the runner, or a host). No-op under kReference.
  void notify_external_write(Component* c);

  void sleep_component(Component& c, Cycle wake_at);
  void wake_due();
  void rebuild_schedule();
  void sweep_tombstones();
  bool due_now(const Component& c, Cycle cycle) const;
  bool cycle_is_idle(Cycle cycle) const;
  /// True when every active component certifies quiescence (see
  /// Component::quiescent()) — the network state is a fixed point and
  /// run()/run_until() may skip ahead to the next wake or budget end.
  bool all_quiescent() const;
  /// First cycle in [from, limit) where a scheduled or guarded component
  /// is due; limit if none (the due table is periodic, so scanning one
  /// period is exhaustive).
  Cycle next_due_cycle(Cycle from, Cycle limit) const;
  void step_reference();
  void step_stride();
  /// Shared by run()/run_until(): advance one dispatch point, either by
  /// executing the current cycle or by fast-forwarding to the next cycle
  /// (< end) where anything is due. Returns the kernel to a state where
  /// now() has advanced by at least one.
  void advance_or_skip(Cycle end);

  Scheduler scheduler_;
  std::vector<Component*> components_; ///< registration order; null = tombstone
  std::size_t live_count_ = 0;
  bool has_tombstones_ = false;

  // Precomputed dispatch schedule (stride scheduler only).
  bool schedule_dirty_ = true;
  Cycle period_ = 1;
  std::vector<std::vector<std::uint32_t>> due_; ///< per residue, ascending indices
  std::vector<std::uint32_t> guarded_;          ///< stride doesn't divide period_
  std::vector<std::uint32_t> guarded_due_;      ///< per-cycle scratch of due guarded
  std::vector<std::uint32_t> touched_;          ///< pending end-of-cycle commits
  std::size_t sleeping_count_ = 0;
  Cycle next_wake_ = kNoCycle;

  Cycle now_ = 0;
  Tracer* tracer_ = nullptr;
};

} // namespace daelite::sim
