#pragma once
// The simulation kernel: a registry of Components and the cycle loop.
//
// One Kernel models one synchronous clock domain (the paper's daelite
// prototype is fully synchronous; aelite's mesochronous links are out of
// scope, as in the paper's experiments).
//
// Two schedulers are provided:
//
//   kStride    — the default. Each component registers a tick cadence
//                (stride + phase offset); the kernel precomputes per-residue
//                activation lists over the least common multiple of all
//                strides and dispatches only the components due in the
//                current cycle. Components may additionally sleep until a
//                known cycle (or indefinitely, woken by an external event),
//                and externally mutated components (NI queue pushes/pops,
//                config enqueues) are committed at the end of the cycle of
//                the mutation via the touched list. run()/run_until()
//                fast-forward now_ across spans where no component is due.
//   kReference — the original per-cycle loop: every component ticks and
//                commits every cycle, cadences and sleeps are ignored.
//                Kept as the oracle for the byte-identity ctests.
//
// Both schedulers dispatch components in registration order within a cycle,
// so trace record order and interned trace ids are identical between them.
//
// Sharded execution (stride scheduler only): set_shards(N > 1) partitions
// the per-cycle bulk work across N threads inside this one Kernel run.
// Components explicitly assigned a shard (assign_shard()) tick and commit
// concurrently, one thread per shard; everything else — the "serial set" —
// runs on the driving thread, after the parallel ticks and after the
// parallel commits respectively. The contract a sharded component must
// satisfy is exactly the two-phase register discipline the component model
// already imposes:
//
//   * tick() reads only committed Reg state (its own and other
//     components'), writes only its own next-state/private members, and
//     calls no kernel service except trace();
//   * commit() is the default register latch (no override that reads or
//     writes another component).
//
// Routers and NIs satisfy this by construction; components with
// cross-component tick or commit behaviour (config agents mutating their
// host element, the fault injector corrupting committed link registers,
// the health monitor sampling them, shells pushing into NI queues) stay in
// the serial set, where the single-threaded dispatch order is preserved.
// Because parallel ticks still read only state committed at the previous
// edge, the result is cycle-for-cycle identical to the serial schedule;
// trace records emitted inside parallel phases are staged per shard and
// merged back in registration order, keeping traces and interned ids
// byte-identical to an unsharded run (the ctests diff them).
//
// The TDM schedule is what makes this partitioning profitable: routers and
// NIs act only at slot boundaries (stride words_per_slot), so dispatched
// cycles alternate between empty ones (fast-forwarded) and slot starts
// where the whole mesh is due at once — a wide, perfectly balanced
// parallel region with one slot of guaranteed lookahead on every
// cross-shard link (a flit committed into a boundary register this slot
// cannot be observed by the downstream shard before the next one).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/types.hpp"

namespace daelite::sim {

class Component;
class Tracer;
enum class TraceEvent : std::uint16_t;

/// Which cycle loop a Kernel runs. See file comment.
enum class Scheduler { kStride, kReference };

/// A component's tick/commit cadence: due at cycles where
/// cycle % stride == phase. The default (stride 1) is "every cycle".
struct Cadence {
  std::uint32_t stride = 1;
  std::uint32_t phase = 0;
};

class Kernel {
 public:
  /// Shard id of components that run in the serial set (the default).
  static constexpr std::uint32_t kNoShard = 0xFFFFFFFFu;

  explicit Kernel(Scheduler scheduler = Scheduler::kStride)
      : scheduler_(scheduler) {}
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  Scheduler scheduler() const { return scheduler_; }

  /// Number of shard workers (1 = fully serial execution, the default).
  /// Call between steps only. Values are clamped to [1, 64]. No-op under
  /// kReference (the oracle stays single-threaded by definition).
  void set_shards(std::uint32_t n);
  std::uint32_t shards() const { return shards_; }

  /// Assign a component to shard `shard` in [0, shards()), or back to the
  /// serial set with kNoShard. Only components obeying the sharded-tick
  /// contract (see file comment) may be assigned. Call between steps only.
  void assign_shard(Component& c, std::uint32_t shard);

  /// Current cycle number. Cycle N covers the Nth tick/commit pair;
  /// now() increments after the commit phase.
  Cycle now() const { return now_; }

  /// Advance exactly one cycle: tick all due components, then commit.
  void step();

  /// Advance n cycles. Under the stride scheduler, spans where no
  /// component is due (and none has a pending external write) are
  /// fast-forwarded without per-cycle work; so are spans where every
  /// active component certifies its tick a no-op (Component::quiescent()),
  /// e.g. a fully drained network carrying only empty slots.
  void run(Cycle n);

  /// Advance until pred() is true (checked after each cycle boundary) or
  /// max_cycles elapse. Returns true iff the predicate fired within the
  /// budget; on timeout the predicate is NOT re-evaluated and the call
  /// returns false with now() == start + max_cycles.
  ///
  /// Contract under the stride scheduler: idle spans are fast-forwarded,
  /// so a predicate's value may only change at cycles where some component
  /// is dispatched or woken (this holds for any predicate over committed
  /// component state, and for time-dependent predicates such as
  /// ConfigModule::idle() whose flip cycle coincides with the component's
  /// own wake cycle). Predicates violating this may be observed late.
  bool run_until(const std::function<bool()>& pred, Cycle max_cycles);

  /// Number of live (not yet destroyed) components.
  std::size_t component_count() const { return live_count_; }

  /// Deactivate a component until wake(): it stops ticking and committing
  /// from the next cycle on. The caller asserts the component is quiescent
  /// (its registers hold values that re-committing would not change and
  /// its tick is a no-op while suspended). No-op under kReference.
  void suspend(Component& c) { sleep_component(c, kNoCycle); }

  /// Put a component to sleep until cycle wake_at (it still commits the
  /// current cycle). No-op under kReference or when wake_at is next cycle.
  void sleep(Component& c, Cycle wake_at) { sleep_component(c, wake_at); }

  /// Reactivate a suspended/sleeping component from the next dispatch
  /// point (the cycle of the call if invoked between steps, the next
  /// cycle if invoked mid-step). No-op when already active.
  void wake(Component& c);

  /// Attach a structured event tracer (sim/trace.hpp). The kernel does not
  /// own it; pass nullptr to detach. Components check this pointer on
  /// every trace() call, so attaching before or after construction both
  /// work — attach before for complete traces.
  void set_tracer(Tracer* t) { tracer_ = t; }
  Tracer* tracer() const { return tracer_; }

  // --- Batched-dispatch engine services (hw::SlotEngine) ---------------------
  // A batched engine is one Component that ticks and commits a whole band
  // of suspended elements itself. These three hooks keep its dispatch
  // byte-identical to per-component dispatch: records it relays for an
  // element carry the element's name and merge at the element's
  // registration index, and the staged-path width threshold sees the
  // band's true element count rather than "one component".

  /// Record a trace as if `as` had emitted it from its own dispatch slot:
  /// staged under as's registration index inside a staged phase, appended
  /// directly otherwise. For engines that inline an element's tick and
  /// must relay the records the element would have emitted.
  void trace_as(const Component& as, TraceEvent event, std::uint64_t arg0 = 0,
                std::uint64_t arg1 = 0);

  /// Re-key staged records to component `c` for the rest of the current
  /// dispatch (no-op outside a staged phase). For engines that call into
  /// an element's own tick body, whose trace() calls would otherwise
  /// stage under the engine's index.
  void set_stage_key(const Component& c);

  /// Weight of `c` in the staged-path width threshold (default 1). A
  /// batched engine reports its band's element count so the pool
  /// engages exactly where per-component dispatch would have.
  void set_dispatch_weight(Component& c, std::uint32_t weight);

  /// One trace record emitted inside a staged dispatch phase, parked until
  /// the phase joins. `key` is the registration index of the *dispatched*
  /// component (an agent relaying into its host element stages under the
  /// agent's slot, exactly where the record lands serially); records with
  /// equal keys keep their emission order within one buffer. Public only
  /// for the kernel-internal thread-local dispatch context.
  struct StagedTrace {
    std::uint32_t key;
    const Component* emitter; ///< whose name the record carries
    TraceEvent event;
    std::uint64_t arg0;
    std::uint64_t arg1;
  };

 private:
  friend class Component;

  /// Longest supported precomputed schedule. Components whose stride does
  /// not divide the (capped) period fall back to a per-cycle residue check.
  static constexpr Cycle kMaxPeriod = 4096;

  void add(Component* c);
  /// Deferred removal: tombstone the slot now, sweep between cycles —
  /// safe to call from inside tick()/commit() (components destroying
  /// other components, or themselves, mid-phase).
  void remove(Component* c);
  /// Register c for a commit at the end of the current cycle because its
  /// state was mutated outside its own tick (queue push/pop from a shell,
  /// the runner, or a host). No-op under kReference.
  void notify_external_write(Component* c);

  /// Trace-record path shared by every Component::trace() call: appends
  /// directly to `t` outside parallel phases, stages into the calling
  /// shard's buffer inside them (merged back in registration order at the
  /// phase join). Interned-id caching lives here so staged records resolve
  /// their ids in merged order — identical to the serial interning order.
  void record_trace(const Component& c, Tracer& t, TraceEvent event, std::uint64_t arg0,
                    std::uint64_t arg1);

  void sleep_component(Component& c, Cycle wake_at);
  void wake_due();
  void rebuild_schedule();
  void sweep_tombstones();
  bool due_now(const Component& c, Cycle cycle) const;
  bool cycle_is_idle(Cycle cycle) const;
  /// True when every active component certifies quiescence (see
  /// Component::quiescent()) — the network state is a fixed point and
  /// run()/run_until() may skip ahead to the next wake or budget end.
  bool all_quiescent() const;
  /// First cycle in [from, limit) where a scheduled or guarded component
  /// is due; limit if none (the due table is periodic, so scanning one
  /// period is exhaustive).
  Cycle next_due_cycle(Cycle from, Cycle limit) const;
  void step_reference();
  void step_stride();
  /// The cycle body when the residue-`r` due lists carry shard-assigned
  /// work: shard lists run first (on the worker pool when `use_pool`,
  /// inline on the driver otherwise), then the serial set, with
  /// staged-trace merges at the joins. Shard-before-serial is the order
  /// the serial loop already implies — every element registers before
  /// its config agent, and the cross-component commits (injector,
  /// monitor) live in the serial set — so both variants are
  /// byte-identical to plain index-order dispatch.
  void step_stride_staged(std::size_t r, bool use_pool);
  /// Shared by run()/run_until(): advance one dispatch point, either by
  /// executing the current cycle or by fast-forwarding to the next cycle
  /// (< end) where anything is due. Returns the kernel to a state where
  /// now() has advanced by at least one.
  void advance_or_skip(Cycle end);

  // --- Sharded execution (see file comment) ----------------------------------
  /// Run one parallel round: every worker (and the driving thread, as
  /// shard 0) executes `phase` (0 = tick, 1 = commit) over its per-shard
  /// due list, then all join.
  void run_parallel_round(int phase);
  void run_shard_list(const std::vector<std::uint32_t>& list, int phase,
                      std::vector<StagedTrace>* stage);
  /// Merge per-shard staged records (each ascending by key) into the
  /// tracer in global registration order and clear the buffers.
  void flush_staged_traces();
  void start_workers();
  void stop_workers();
  void worker_loop(std::uint32_t shard);

  Scheduler scheduler_;
  std::vector<Component*> components_; ///< registration order; null = tombstone
  std::size_t live_count_ = 0;
  bool has_tombstones_ = false;

  // Precomputed dispatch schedule (stride scheduler only).
  bool schedule_dirty_ = true;
  Cycle period_ = 1;
  std::vector<std::vector<std::uint32_t>> due_; ///< per residue, ascending indices
  std::vector<std::uint32_t> guarded_;          ///< stride doesn't divide period_
  std::vector<std::uint32_t> guarded_due_;      ///< per-cycle scratch of due guarded
  std::vector<std::uint32_t> touched_;          ///< pending end-of-cycle commits
  std::size_t sleeping_count_ = 0;
  Cycle next_wake_ = kNoCycle;

  // Shard partition of the due table (built when shards_ > 1 or any
  // active component is shard-assigned — batched engines are assigned
  // even single-threaded, so their band dispatch lands before the serial
  // set): due_shard_[r * shards_ + s] holds the shard-s subset of
  // due_[r], due_serial_[r] the serial-set subset, both ascending.
  // due_shard_weight_[r * shards_ + s] is the summed dispatch weight of
  // that list (elements covered, not components listed).
  std::uint32_t shards_ = 1;
  bool has_partition_ = false;
  std::vector<std::vector<std::uint32_t>> due_shard_;
  std::vector<std::vector<std::uint32_t>> due_serial_;
  std::vector<std::size_t> due_shard_weight_;
  std::vector<std::vector<StagedTrace>> stage_;   ///< per shard + one serial buffer
  bool staging_ = false;      ///< inside a parallel phase with a live tracer
  bool in_parallel_ = false;  ///< workers running (guards kernel services)

  // Worker pool (lazily started by the first parallel cycle).
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;   ///< wakes workers on a new round
  std::condition_variable done_cv_;   ///< wakes the driver when a round ends
  std::uint64_t round_ = 0;           ///< generation counter of rounds
  int round_phase_ = 0;               ///< 0 = tick, 1 = commit
  std::size_t round_remaining_ = 0;
  const std::vector<std::uint32_t>* round_lists_ = nullptr; ///< [shards_] due lists
  bool pool_stop_ = false;

  Cycle now_ = 0;
  Tracer* tracer_ = nullptr;
};

} // namespace daelite::sim
