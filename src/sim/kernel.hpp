#pragma once
// The simulation kernel: a flat registry of Components and the cycle loop.
//
// One Kernel models one synchronous clock domain (the paper's daelite
// prototype is fully synchronous; aelite's mesochronous links are out of
// scope, as in the paper's experiments).

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/types.hpp"

namespace daelite::sim {

class Component;
class Tracer;

class Kernel {
 public:
  Kernel() = default;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Current cycle number. Cycle N covers the Nth tick/commit pair;
  /// now() increments after the commit phase.
  Cycle now() const { return now_; }

  /// Advance exactly one cycle: tick all components, then commit all.
  void step();

  /// Advance n cycles.
  void run(Cycle n);

  /// Advance until pred() is true (checked after each cycle) or max_cycles
  /// elapse. Returns true if the predicate fired.
  bool run_until(const std::function<bool()>& pred, Cycle max_cycles);

  std::size_t component_count() const { return components_.size(); }

  /// Attach a structured event tracer (sim/trace.hpp). The kernel does not
  /// own it; pass nullptr to detach. Components check this pointer on
  /// every trace() call, so attaching before or after construction both
  /// work — attach before for complete traces.
  void set_tracer(Tracer* t) { tracer_ = t; }
  Tracer* tracer() const { return tracer_; }

 private:
  friend class Component;
  void add(Component* c) { components_.push_back(c); }
  void remove(Component* c);

  std::vector<Component*> components_;
  Cycle now_ = 0;
  Tracer* tracer_ = nullptr;
};

} // namespace daelite::sim
