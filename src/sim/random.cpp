#include "sim/random.hpp"

namespace daelite::sim {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
} // namespace

void Xoshiro256::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Guard against the all-zero state which xoshiro cannot leave.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Classic modulo-rejection: reject the biased tail so the result is
  // exactly uniform. The loop almost never iterates for small bounds.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound) - 1;
  std::uint64_t v = next();
  while (v > limit) v = next();
  return v % bound;
}

double Xoshiro256::uniform() {
  // 53 random bits mapped to [0,1).
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

} // namespace daelite::sim
