#include "sim/stats.hpp"

#include <cmath>

namespace daelite::sim {

std::uint64_t Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return static_cast<std::uint64_t>(i);
  }
  return static_cast<std::uint64_t>(max());
}

} // namespace daelite::sim
