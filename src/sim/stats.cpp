#include "sim/stats.hpp"

#include <bit>
#include <cmath>

#include "sim/json.hpp"

namespace daelite::sim {

void Histogram::grow_for(std::uint64_t v) {
  if (v < buckets_.size() || v >= kMaxBuckets) return;
  const std::size_t doubled = std::max<std::size_t>(1, buckets_.size() * 2);
  const std::size_t covering = std::bit_ceil(static_cast<std::size_t>(v) + 1);
  buckets_.resize(std::min(kMaxBuckets, std::max(doubled, covering)), 0);
}

std::uint64_t Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // "At least q of the samples are <= v" needs at least one sample even at
  // q = 0 — an unclamped target of 0 would return bucket 0 regardless of
  // where the smallest sample actually lies.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return static_cast<std::uint64_t>(i);
  }
  return static_cast<std::uint64_t>(max());
}

JsonValue to_json(const Counter& c) {
  JsonValue v = JsonValue::object();
  v["value"] = c.value();
  return v;
}

JsonValue to_json(const ScalarStat& s) {
  JsonValue v = JsonValue::object();
  v["count"] = s.count();
  v["sum"] = s.sum();
  v["mean"] = s.mean();
  v["min"] = s.min();
  v["max"] = s.max();
  v["variance"] = s.variance();
  return v;
}

JsonValue to_json(const Gauge& g) {
  JsonValue v = JsonValue::object();
  v["last"] = g.last();
  v["samples"] = g.samples();
  v["mean"] = g.mean();
  v["min"] = g.min();
  v["max"] = g.max();
  return v;
}

JsonValue to_json(const Histogram& h) {
  JsonValue v = JsonValue::object();
  v["count"] = h.count();
  v["mean"] = h.mean();
  v["min"] = h.min();
  v["max"] = h.max();
  v["overflow"] = h.overflow();
  v["p50"] = h.quantile(0.50);
  v["p90"] = h.quantile(0.90);
  v["p99"] = h.quantile(0.99);
  return v;
}

} // namespace daelite::sim
