#include "sim/log.hpp"

#include <iostream>

namespace daelite::sim {

namespace {
LogLevel g_level = LogLevel::kWarn;
std::ostream* g_sink = &std::cerr;

const char* level_tag(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    default: return "     ";
  }
}
} // namespace

LogLevel Log::level() { return g_level; }
void Log::set_level(LogLevel lvl) { g_level = lvl; }
void Log::set_sink(std::ostream* sink) { g_sink = sink; }
std::ostream* Log::sink() { return g_sink; }

void Log::write(LogLevel lvl, std::string_view who, std::string_view msg) {
  if (g_sink == nullptr) return;
  (*g_sink) << '[' << level_tag(lvl) << "] " << who << ": " << msg << '\n';
}

} // namespace daelite::sim
