#include "sim/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace daelite::sim {

namespace {
// Level and sink are read on every logging call from whichever thread is
// dispatching components — shard workers inside one kernel and batch job
// threads both log through here — so they are atomics, and the actual
// stream insertion is serialized: most ostreams (ostringstream capture
// sinks in tests, file sinks) are not safe for concurrent insertion, and
// even for std::cerr the mutex keeps whole lines intact.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<std::ostream*> g_sink{&std::cerr};
std::mutex g_write_mu;

const char* level_tag(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    default: return "     ";
  }
}
} // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }
void Log::set_level(LogLevel lvl) { g_level.store(lvl, std::memory_order_relaxed); }
void Log::set_sink(std::ostream* sink) { g_sink.store(sink, std::memory_order_release); }
std::ostream* Log::sink() { return g_sink.load(std::memory_order_acquire); }

void Log::write(LogLevel lvl, std::string_view who, std::string_view msg) {
  std::lock_guard<std::mutex> lock(g_write_mu);
  std::ostream* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) return;
  (*sink) << '[' << level_tag(lvl) << "] " << who << ": " << msg << '\n';
}

} // namespace daelite::sim
