#include "sim/trace_sink.hpp"

#include <fstream>
#include <ostream>

#include "sim/json.hpp"

namespace daelite::sim {

namespace {

/// Display name of one record. Phase spans are named by their interned
/// label (arg0); connection spans carry the connection sequence number so
/// concurrent set-ups stay distinguishable in the viewer.
std::string record_name(const Tracer& t, const TraceRecord& r) {
  switch (r.event) {
    case TraceEvent::kPhaseBegin:
    case TraceEvent::kPhaseEnd: {
      const std::string& label = t.name(static_cast<Tracer::CompId>(r.arg0));
      return label.empty() ? std::string(trace_event_name(r.event)) : label;
    }
    case TraceEvent::kSetupBegin:
    case TraceEvent::kSetupEnd:
    case TraceEvent::kTeardownBegin:
    case TraceEvent::kTeardownEnd:
      return std::string(trace_event_name(r.event)) + " #" + std::to_string(r.arg0);
    default:
      return std::string(trace_event_name(r.event));
  }
}

} // namespace

JsonValue chrome_trace_json(const Tracer& t, const ChromeTraceOptions& options) {
  JsonValue events = JsonValue::array();

  // Metadata: name the process and one synthetic thread per component.
  {
    JsonValue m = JsonValue::object();
    m["name"] = "process_name";
    m["ph"] = "M";
    m["pid"] = 0;
    m["tid"] = 0;
    JsonValue args = JsonValue::object();
    args["name"] = options.process_name;
    m["args"] = std::move(args);
    events.push_back(std::move(m));
  }
  for (std::size_t id = 0; id < t.interned_count(); ++id) {
    JsonValue m = JsonValue::object();
    m["name"] = "thread_name";
    m["ph"] = "M";
    m["pid"] = 0;
    m["tid"] = static_cast<std::uint64_t>(id);
    JsonValue args = JsonValue::object();
    args["name"] = t.name(static_cast<Tracer::CompId>(id));
    m["args"] = std::move(args);
    events.push_back(std::move(m));
  }

  t.for_each([&](const TraceRecord& r) {
    JsonValue e = JsonValue::object();
    e["name"] = record_name(t, r);
    const char ph = trace_event_phase(r.event);
    e["ph"] = std::string(1, ph);
    e["ts"] = r.cycle;
    e["pid"] = 0;
    e["tid"] = static_cast<std::uint64_t>(r.comp);
    if (ph == 'i') e["s"] = "t"; // thread-scoped instant
    if (ph != 'E') {             // 'E' args would duplicate the 'B' ones
      JsonValue args = JsonValue::object();
      args["arg0"] = r.arg0;
      args["arg1"] = r.arg1;
      e["args"] = std::move(args);
    }
    events.push_back(std::move(e));
  });

  JsonValue doc = JsonValue::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ns";
  if (t.dropped() > 0) doc["droppedEvents"] = t.dropped();
  return doc;
}

void write_chrome_trace(std::ostream& os, const Tracer& t, const ChromeTraceOptions& options) {
  os << chrome_trace_json(t, options).dump() << "\n";
}

bool write_chrome_trace_file(const std::string& path, const Tracer& t,
                             const ChromeTraceOptions& options) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os, t, options);
  return os.good();
}

} // namespace daelite::sim
