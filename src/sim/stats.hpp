#pragma once
// Statistics primitives: counters, running scalar statistics and
// fixed-bucket histograms. Every hardware model exposes its observable
// behaviour (injected/delivered flits, latencies, occupancy) through these
// so that tests and benches read results uniformly.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace daelite::sim {

class JsonValue;

/// Monotonic event counter — the simplest observable. Exists (rather than a
/// bare uint64) so counters serialize uniformly with the other stats.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  void reset() { value_ = 0; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Accumulates count / sum / min / max of a scalar sample stream; derives
/// mean and population variance via Welford's online algorithm (the naive
/// sum-of-squares formula cancels catastrophically for large means and can
/// go negative; Welford's M2 is a sum of squared deviations and cannot).
class ScalarStat {
 public:
  void add(double v) {
    ++count_;
    sum_ += v;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  /// Fold another stream into this one (Chan et al. parallel combine).
  void merge(const ScalarStat& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(o.count_);
    const double delta = o.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += o.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  void reset() { *this = ScalarStat{}; }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const {
    if (count_ == 0) return 0.0;
    return std::max(0.0, m2_ / static_cast<double>(count_));
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0; ///< sum of squared deviations from the running mean
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A sampled instantaneous value (utilization, fragmentation, queue
/// depth): remembers the most recent sample and accumulates the
/// distribution of every sample seen via ScalarStat. Unlike a Counter it
/// can move both ways; unlike a bare ScalarStat the "current" reading
/// stays addressable for report gauges.
class Gauge {
 public:
  void set(double v) {
    last_ = v;
    stat_.add(v);
  }

  void reset() { *this = Gauge{}; }

  double last() const { return last_; }
  std::uint64_t samples() const { return stat_.count(); }
  double mean() const { return stat_.mean(); }
  double min() const { return stat_.min(); }
  double max() const { return stat_.max(); }
  const ScalarStat& stat() const { return stat_; }

 private:
  double last_ = 0.0;
  ScalarStat stat_;
};

/// Integer histogram with unit-width buckets plus an overflow bucket;
/// supports exact quantile queries over recorded samples. The bucket
/// array starts at the constructed capacity and grows geometrically (to
/// the next power of two covering the sample, at least doubling) up to
/// kMaxBuckets, so long-run latencies keep exact quantiles instead of
/// saturating p50/p90/p99 at max() once samples pass the initial
/// capacity. Only samples >= kMaxBuckets land in the overflow bucket.
class Histogram {
 public:
  /// Hard ceiling on bucket growth (8 MiB of counters) — samples at or
  /// beyond this are counted in overflow_ and treated as +inf by
  /// quantile().
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

  explicit Histogram(std::size_t capacity = 1024) : buckets_(capacity, 0) {}

  void add(std::uint64_t v) {
    scalar_.add(static_cast<double>(v));
    if (v >= buckets_.size()) grow_for(v);
    if (v < buckets_.size()) {
      ++buckets_[static_cast<std::size_t>(v)];
    } else {
      ++overflow_;
    }
  }

  void reset() {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    scalar_.reset();
  }

  /// Fold another histogram into this one, growing first so no exact
  /// sample degrades to overflow. Only counts already in o's overflow
  /// bucket stay overflow.
  void merge(const Histogram& o) {
    for (std::size_t i = o.buckets_.size(); i-- > buckets_.size();) {
      if (o.buckets_[i] != 0) {
        grow_for(static_cast<std::uint64_t>(i));
        break;
      }
    }
    for (std::size_t i = 0; i < o.buckets_.size(); ++i) {
      if (o.buckets_[i] == 0) continue;
      if (i < buckets_.size()) {
        buckets_[i] += o.buckets_[i];
      } else {
        overflow_ += o.buckets_[i];
      }
    }
    overflow_ += o.overflow_;
    scalar_.merge(o.scalar_);
  }

  std::uint64_t count() const { return scalar_.count(); }
  std::uint64_t overflow() const { return overflow_; }
  double mean() const { return scalar_.mean(); }
  double min() const { return scalar_.min(); }
  double max() const { return scalar_.max(); }
  std::uint64_t bucket(std::size_t i) const { return i < buckets_.size() ? buckets_[i] : 0; }

  /// Value v such that at least q (in [0,1]) of the samples are <= v.
  /// Samples that landed in the overflow bucket are treated as +inf, so a
  /// quantile that falls there returns max().
  std::uint64_t quantile(double q) const;

 private:
  /// Grow the bucket array to cover sample v (next power of two past v,
  /// at least doubling), capped at kMaxBuckets. No-op if v is already
  /// covered or past the cap.
  void grow_for(std::uint64_t v);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  ScalarStat scalar_;
};

// JSON serialization hooks (see sim/json.hpp) — every stats primitive maps
// to one object so batch runs and benches emit a uniform schema.
JsonValue to_json(const Counter& c);
JsonValue to_json(const ScalarStat& s);
/// last/mean/min/max/samples of the gauge's sample stream.
JsonValue to_json(const Gauge& g);
/// Summary form: count/mean/min/max/overflow plus p50/p90/p99 quantiles
/// (bucket contents are summarized, not dumped).
JsonValue to_json(const Histogram& h);

} // namespace daelite::sim
