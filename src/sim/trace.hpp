#pragma once
// Lightweight event tracing: components append (cycle, source, event,
// detail) records; tests and examples inspect or dump them. This replaces
// waveform dumping for a software model — the records are the observable
// micro-architectural events (flit injected, slot-table written, credit
// returned, ...).

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace daelite::sim {

struct TraceRecord {
  Cycle cycle = 0;
  std::string source; ///< component name
  std::string event;  ///< short event tag, e.g. "inject", "cfg.write"
  std::string detail; ///< free-form payload description
};

class Tracer {
 public:
  /// A disabled tracer drops records (the default for benches).
  explicit Tracer(bool enabled = true) : enabled_(enabled) {}

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(Cycle cycle, std::string source, std::string event, std::string detail = {});

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Count records whose event tag equals `event`.
  std::size_t count(std::string_view event) const;

  /// Write all records, one per line, to `os`.
  void dump(std::ostream& os) const;

 private:
  bool enabled_;
  std::vector<TraceRecord> records_;
};

} // namespace daelite::sim
