#pragma once
// Structured event tracing: components append fixed-size binary records
// (cycle, interned component id, event enum, two 64-bit args) to a bounded
// ring buffer. This replaces waveform dumping for a software model — the
// records are the observable micro-architectural events (flit injected,
// slot-table written, credit returned, set-up span, ...).
//
// Design constraints, in order:
//   * the disabled path must cost one predictable branch — benches run with
//     tracing off and must not pay for it;
//   * the enabled path is a handful of stores into a preallocated ring, no
//     allocation and no string formatting per event (names are interned
//     once per component);
//   * memory is bounded: the ring holds at most `capacity` records and
//     overwrites the oldest once full (`dropped()` counts the overwritten
//     ones), so a week-long run cannot exhaust memory;
//   * records carry enough structure for tools: sim::write_chrome_trace
//     (trace_sink.hpp) exports any tracer to a Chrome trace_event JSON.
//
// One Tracer belongs to one Kernel (one simulation job); it is not
// thread-safe and must not be shared across jobs.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace daelite::sim {

/// Every traceable micro-architectural event. Spans come in Begin/End
/// pairs; everything else is a point event.
enum class TraceEvent : std::uint16_t {
  kNone = 0,
  // Point events (args documented per emitter).
  kFlitInject,     ///< NI departure: arg0 = tx queue, arg1 = words sent
  kFlitDeliver,    ///< NI arrival: arg0 = rx queue, arg1 = latency (cycles)
  kFlitDrop,       ///< arrival in a slot with no mapping: arg0 = slot
  kFlitForward,    ///< router copy: arg0 = output port, arg1 = input port
  kRxOverflow,     ///< word lost to a full rx queue: arg0 = rx queue
  kCreditSend,     ///< arg0 = tx queue carrying them, arg1 = credits
  kCreditReceive,  ///< arg0 = rx queue they arrived on, arg1 = credits
  kTableWrite,     ///< config applied: arg0 = slot mask, arg1 = port word
  kCfgError,       ///< malformed / misaddressed config op
  kCollision,      ///< aelite: two inputs claimed one output, arg0 = output
  // Span events.
  kSetupBegin,     ///< connection set-up streaming: arg0 = connection seq
  kSetupEnd,
  kTeardownBegin,  ///< connection tear-down streaming: arg0 = connection seq
  kTeardownEnd,
  kCfgPacketBegin, ///< one configuration packet: arg0 = packet seq, arg1 = words
  kCfgPacketEnd,
  kPhaseBegin,     ///< run phase: arg0 = interned phase-name id
  kPhaseEnd,
  // Point events appended later (keep enum values stable for exports).
  kCfgTimeout,     ///< watchdog: response deadline passed, arg0 = attempt
  kCfgRetry,       ///< watchdog: request re-queued, arg0 = attempt
  kCfgAbort,       ///< watchdog: retries exhausted, request abandoned
  kFaultInject,    ///< injected fault: arg0 = FaultClass, arg1 = Kind
  // Recovery events appended later (keep enum values stable for exports).
  kLinkDead,       ///< health monitor verdict: arg0 = link id, arg1 = evidence
  kRecoveryBegin,  ///< connection re-route span: arg0 = event seq, arg1 = link id
  kRecoveryEnd,    ///< arg0 = event seq, arg1 = detection-to-restored cycles
  // Graceful-degradation events appended later (keep enum values stable).
  kPreemptBegin,   ///< best-effort victims torn down for a guaranteed
                   ///< connection: arg0 = beneficiary seq, arg1 = victims
  kCompactionPass, ///< background slot compaction: arg0 = moves, arg1 = digest
};

/// Short stable tag for an event ("inject", "setup", ...). Begin/End pairs
/// share one tag; tools distinguish them via trace_event_phase().
std::string_view trace_event_name(TraceEvent e);

/// 'B' (span begin), 'E' (span end) or 'i' (instant) — the Chrome
/// trace_event phase letter of the record.
char trace_event_phase(TraceEvent e);

/// One binary trace record: 32 bytes, POD, no ownership.
struct TraceRecord {
  Cycle cycle = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint32_t comp = 0; ///< interned component id (Tracer::name())
  TraceEvent event = TraceEvent::kNone;
};

class Tracer {
 public:
  using CompId = std::uint32_t;
  static constexpr std::size_t kDefaultCapacity = 1u << 20; ///< records (32 MiB)

  /// A disabled tracer drops records (the default for benches).
  explicit Tracer(bool enabled = true, std::size_t capacity = kDefaultCapacity)
      : enabled_(enabled), capacity_(capacity ? capacity : 1) {}

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  std::size_t capacity() const { return capacity_; }

  /// Intern a component (or label) name; stable id for the tracer's
  /// lifetime. Call once at set-up, not per event.
  CompId intern(std::string_view name);

  /// Name of an interned id (empty for unknown ids).
  const std::string& name(CompId id) const;
  std::size_t interned_count() const { return names_.size(); }

  /// Append one record. The disabled path is a single branch; the enabled
  /// path is a few stores into the ring (grows lazily up to capacity, then
  /// wraps, overwriting the oldest record).
  void record(Cycle cycle, CompId comp, TraceEvent event, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0) {
    if (!enabled_) return;
    if (ring_.size() < capacity_) {
      ring_.push_back(TraceRecord{cycle, arg0, arg1, comp, event});
      return;
    }
    ring_[head_] = TraceRecord{cycle, arg0, arg1, comp, event};
    if (++head_ == capacity_) head_ = 0;
    ++dropped_;
  }

  /// Records currently held (<= capacity()).
  std::size_t size() const { return ring_.size(); }
  /// Records overwritten after the ring filled up.
  std::uint64_t dropped() const { return dropped_; }

  /// Visit records oldest-first.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = head_; i < ring_.size(); ++i) f(ring_[i]);
    for (std::size_t i = 0; i < head_; ++i) f(ring_[i]);
  }

  /// Oldest-first copy (tests and small exports).
  std::vector<TraceRecord> snapshot() const;

  void clear();

  /// Count records of one event kind.
  std::size_t count(TraceEvent event) const;

  /// Back-compat: count records whose event tag equals `event` (Begin/End
  /// pairs share a tag, so count("setup") counts both ends of every span).
  std::size_t count(std::string_view event) const;

  /// Back-compat: write all records, one text line per record, to `os`.
  void dump(std::ostream& os) const;

 private:
  bool enabled_;
  std::size_t capacity_;
  std::size_t head_ = 0; ///< next overwrite position once the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<TraceRecord> ring_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, CompId> ids_;
};

} // namespace daelite::sim
