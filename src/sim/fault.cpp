#include "sim/fault.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

namespace daelite::sim {

std::string_view fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::kData: return "data";
    case FaultClass::kCfgFwd: return "cfg_fwd";
    case FaultClass::kCfgResp: return "cfg_resp";
    case FaultClass::kAelite: return "aelite";
  }
  return "?";
}

bool parse_fault_class(std::string_view token, FaultClass* out) {
  for (const FaultClass c : {FaultClass::kData, FaultClass::kCfgFwd, FaultClass::kCfgResp,
                             FaultClass::kAelite}) {
    if (token == fault_class_name(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

// --- FaultPlan ---------------------------------------------------------------

namespace {

bool fail(std::string* error, std::size_t line_no, const std::string& msg) {
  if (error != nullptr) *error = "fault plan line " + std::to_string(line_no) + ": " + msg;
  return false;
}

// Strict unsigned parse: the whole token, digits only. operator>> into an
// unsigned accepts "-5" by wrapping it through modular arithmetic — a
// negative word index silently became a directive that never fires.
bool parse_u64_token(std::string_view tok, std::uint64_t* v) {
  if (tok.empty()) return false;
  const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), *v);
  return ec == std::errc{} && p == tok.data() + tok.size();
}

} // namespace

bool FaultPlan::parse(std::istream& in, FaultPlan* out, std::string* error) {
  FaultPlan plan;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue; // blank / comment-only line

    const auto read_class = [&](FaultDirective* d) {
      std::string tok;
      if (!(ls >> tok))
        return fail(error, line_no, "expected a fault class (data|cfg_fwd|cfg_resp|aelite)");
      std::string_view cls_tok = tok;
      if (const auto at = cls_tok.find('@'); at != std::string_view::npos) {
        std::uint64_t idx = 0;
        if (!parse_u64_token(cls_tok.substr(at + 1), &idx))
          return fail(error, line_no, "expected a line index after '@' in '" + tok + "'");
        d->line_index = static_cast<std::int64_t>(idx);
        cls_tok = cls_tok.substr(0, at);
      }
      if (!parse_fault_class(cls_tok, &d->cls))
        return fail(error, line_no,
                    "expected a fault class (data|cfg_fwd|cfg_resp|aelite), got '" + tok + "'");
      return true;
    };
    const auto read_u64 = [&](std::uint64_t* v, const char* what) {
      std::string tok;
      if (!(ls >> tok)) return fail(error, line_no, std::string("expected ") + what);
      if (!parse_u64_token(tok, v))
        return fail(error, line_no, std::string("expected ") + what + ", got '" + tok + "'");
      return true;
    };

    if (word == "seed") {
      if (!read_u64(&plan.seed, "a seed value")) return false;
    } else if (word == "rate") {
      if (!(ls >> plan.rate) || plan.rate < 0.0 || plan.rate > 1.0)
        return fail(error, line_no, "expected a rate in [0,1]");
    } else if (word == "drop" || word == "flip") {
      FaultDirective d;
      d.kind = word == "drop" ? FaultDirective::Kind::kDrop : FaultDirective::Kind::kFlip;
      if (!read_class(&d)) return false;
      if (!read_u64(&d.nth, "a word index")) return false;
      if (d.kind == FaultDirective::Kind::kFlip) {
        std::uint64_t bit = 0;
        if (!read_u64(&bit, "a bit index")) return false;
        d.bit = static_cast<std::uint32_t>(bit);
      }
      plan.directives.push_back(d);
    } else if (word == "stuck") {
      FaultDirective d;
      d.kind = FaultDirective::Kind::kStuck;
      if (!read_class(&d)) return false;
      std::uint64_t bit = 0;
      if (!read_u64(&bit, "a bit index")) return false;
      d.bit = static_cast<std::uint32_t>(bit);
      std::string tok;
      if (ls >> tok) { // optional window
        if (!parse_u64_token(tok, &d.from))
          return fail(error, line_no, "expected a window start, got '" + tok + "'");
        if (!read_u64(&d.to, "a window end")) return false;
        if (d.to <= d.from)
          return fail(error, line_no, "empty window: end " + std::to_string(d.to) +
                                          " must exceed start " + std::to_string(d.from));
      }
      plan.directives.push_back(d);
    } else if (word == "kill") {
      FaultDirective d;
      d.kind = FaultDirective::Kind::kKill;
      if (!read_class(&d)) return false;
      if (!read_u64(&d.from, "a window start")) return false;
      if (!read_u64(&d.to, "a window end")) return false;
      if (d.to <= d.from)
        return fail(error, line_no, "empty window: end " + std::to_string(d.to) +
                                        " must exceed start " + std::to_string(d.from));
      plan.directives.push_back(d);
    } else {
      return fail(error, line_no, "unknown directive '" + word + "'");
    }
    std::string extra;
    if (ls >> extra) return fail(error, line_no, "trailing token '" + extra + "'");
  }
  *out = plan;
  return true;
}

bool FaultPlan::parse_text(const std::string& text, FaultPlan* out, std::string* error) {
  std::istringstream ss(text);
  return parse(ss, out, error);
}

bool FaultPlan::parse_file(const std::string& path, FaultPlan* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open fault plan '" + path + "'";
    return false;
  }
  return parse(in, out, error);
}

// --- FaultCounters -----------------------------------------------------------

void FaultCounters::add(const FaultCounters& o) {
  words_seen += o.words_seen;
  injected += o.injected;
  dropped += o.dropped;
  flipped += o.flipped;
  stuck += o.stuck;
  killed += o.killed;
}

// --- FaultInjector -----------------------------------------------------------

FaultInjector::FaultInjector(Kernel& k, std::string name, FaultPlan plan)
    : Component(k, std::move(name)), plan_(std::move(plan)), rng_(plan_.seed) {
  directive_done_.assign(plan_.directives.size(), false);
}

void FaultInjector::add_line(FaultClass cls, std::unique_ptr<FaultLine> line,
                             std::uint32_t word_stride, std::uint32_t word_phase) {
  Line l;
  l.line = std::move(line);
  l.cls = cls;
  l.stride = word_stride == 0 ? 1 : word_stride;
  l.phase = word_phase % l.stride;
  for (const Line& other : lines_)
    if (other.cls == cls) ++l.class_index;
  lines_.push_back(std::move(l));
}

bool FaultInjector::quiescent() const {
  for (const Line& l : lines_)
    if (l.line->present()) return false;
  return true;
}

void FaultInjector::inject(Line& l, FaultCounters& cc) {
  FaultLine& line = *l.line;
  const std::uint64_t word = cc.words_seen;
  const std::uint64_t line_word = l.words_seen;
  ++l.words_seen;
  ++cc.words_seen;
  ++total_.words_seen;

  const auto apply = [&](FaultDirective::Kind kind, std::uint32_t bit) {
    switch (kind) {
      case FaultDirective::Kind::kDrop:
        line.drop();
        ++cc.dropped;
        ++total_.dropped;
        break;
      case FaultDirective::Kind::kFlip:
        line.flip_bit(bit % line.bit_count());
        ++cc.flipped;
        ++total_.flipped;
        break;
      case FaultDirective::Kind::kStuck:
        line.force_bit(bit % line.bit_count());
        ++cc.stuck;
        ++total_.stuck;
        break;
      case FaultDirective::Kind::kKill:
        line.drop();
        ++cc.killed;
        ++total_.killed;
        break;
    }
    ++cc.injected;
    ++total_.injected;
    trace(TraceEvent::kFaultInject, static_cast<std::uint64_t>(l.cls),
          static_cast<std::uint64_t>(kind));
  };

  // Targeted directives first (kill wins over flip: once dropped, later
  // mutations of the invalid word are pointless but harmless — skip them).
  for (std::size_t i = 0; i < plan_.directives.size(); ++i) {
    const FaultDirective& d = plan_.directives[i];
    if (d.cls != l.cls) continue;
    if (d.line_index >= 0 && static_cast<std::uint64_t>(d.line_index) != l.class_index) continue;
    // With an `@` line restriction, nth counts that line's words only.
    const std::uint64_t nth_word = d.line_index >= 0 ? line_word : word;
    switch (d.kind) {
      case FaultDirective::Kind::kDrop:
      case FaultDirective::Kind::kFlip:
        if (!directive_done_[i] && d.nth == nth_word) {
          directive_done_[i] = true;
          apply(d.kind, d.bit);
        }
        break;
      case FaultDirective::Kind::kStuck:
      case FaultDirective::Kind::kKill:
        if (now() >= d.from && now() < d.to) apply(d.kind, d.bit);
        break;
    }
    if (!line.present()) return; // dropped — nothing left to corrupt
  }

  // Background rate: one Bernoulli draw per surviving word; on a hit, a
  // second draw picks drop vs flip and the flipped bit. (Words a directive
  // dropped returned above and are not drawn for — the stream stays
  // deterministic either way.)
  if (plan_.rate > 0.0 && rng_.chance(plan_.rate)) {
    const std::uint64_t u = rng_.next();
    if ((u & 1) != 0) {
      apply(FaultDirective::Kind::kDrop, 0);
    } else {
      apply(FaultDirective::Kind::kFlip, static_cast<std::uint32_t>(u >> 1));
    }
  }
}

void FaultInjector::commit() {
  Component::commit();
  const Cycle c = now();
  for (Line& l : lines_) {
    if (c % l.stride != l.phase) continue; // no fresh word can have landed
    if (!l.line->present()) continue;
    inject(l, per_class_[static_cast<std::size_t>(l.cls)]);
  }
}

} // namespace daelite::sim
