#pragma once
// Value-change-dump (VCD) waveform writer.
//
// The models are software, but their observable state is RTL-shaped, so
// dumping IEEE-1364 VCD lets standard waveform viewers (GTKWave etc.)
// display a simulation. Signals are registered as probe callbacks; a
// sample pass polls every probe and emits only changes.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace daelite::sim {

class VcdWriter {
 public:
  using Probe = std::function<std::uint64_t()>;

  /// `timescale` is the ns-per-cycle label (cosmetic; cycles are the unit).
  explicit VcdWriter(std::ostream& os, std::string top_module = "daelite");

  /// Register a signal. `width` in bits (1..64). Hierarchical names use
  /// '.' separators and are grouped into VCD scopes. Must be called
  /// before the first sample().
  void add_signal(const std::string& name, unsigned width, Probe probe);

  /// Poll all probes at time `t` (cycles) and emit changes. The first
  /// call writes the header and a full snapshot.
  void sample(Cycle t);

  std::size_t signal_count() const { return signals_.size(); }

 private:
  struct Signal {
    std::string name;
    unsigned width = 1;
    Probe probe;
    std::string id;
    std::uint64_t last = ~0ull;
    bool has_last = false;
  };

  void write_header();
  static std::string make_id(std::size_t index);
  void emit(const Signal& s, std::uint64_t value);

  std::ostream* os_;
  std::string top_;
  std::vector<Signal> signals_;
  bool header_written_ = false;
};

} // namespace daelite::sim
