#include "sim/parallel.hpp"

namespace daelite::sim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return; // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task(); // packaged_task captures exceptions into the future
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

std::size_t default_job_count() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc ? hc : 1;
}

} // namespace daelite::sim
