#include "sim/kernel.hpp"

#include <algorithm>
#include <numeric>

#include "sim/component.hpp"

namespace daelite::sim {

void Kernel::add(Component* c) {
  c->index_ = static_cast<std::uint32_t>(components_.size());
  components_.push_back(c);
  ++live_count_;
  schedule_dirty_ = true;
}

void Kernel::remove(Component* c) {
  const std::uint32_t i = c->index_;
  if (i >= components_.size() || components_[i] != c) return;
  components_[i] = nullptr; // tombstone; swept between cycles
  --live_count_;
  has_tombstones_ = true;
  if (!c->active_) --sleeping_count_;
  schedule_dirty_ = true;
}

void Kernel::notify_external_write(Component* c) {
  if (scheduler_ == Scheduler::kReference) return; // commits every cycle anyway
  if (c->touch_pending_) return;
  c->touch_pending_ = true;
  touched_.push_back(c->index_);
}

void Kernel::sleep_component(Component& c, Cycle wake_at) {
  if (scheduler_ == Scheduler::kReference) return;
  // Waking happens at the start of the next step, so a wake this cycle or
  // the next would never skip a dispatch: don't churn the schedule.
  if (wake_at != kNoCycle && wake_at <= now_ + 1) return;
  if (c.active_) {
    c.active_ = false;
    ++sleeping_count_;
    schedule_dirty_ = true;
  }
  c.wake_at_ = wake_at;
  next_wake_ = std::min(next_wake_, wake_at);
}

void Kernel::wake(Component& c) {
  if (scheduler_ == Scheduler::kReference) return;
  if (c.active_) return;
  c.active_ = true;
  c.wake_at_ = kNoCycle;
  --sleeping_count_;
  schedule_dirty_ = true;
  // next_wake_ may now be stale (too early); wake_due() tolerates that.
}

void Kernel::wake_due() {
  if (sleeping_count_ == 0) {
    next_wake_ = kNoCycle;
    return;
  }
  if (next_wake_ > now_) return;
  Cycle next = kNoCycle;
  for (Component* c : components_) {
    if (c == nullptr || c->active_) continue;
    if (c->wake_at_ <= now_) {
      c->active_ = true;
      c->wake_at_ = kNoCycle;
      --sleeping_count_;
      schedule_dirty_ = true;
    } else {
      next = std::min(next, c->wake_at_);
    }
  }
  next_wake_ = next;
}

void Kernel::rebuild_schedule() {
  period_ = 1;
  for (const Component* c : components_) {
    if (c == nullptr || !c->active_) continue;
    const Cycle l = std::lcm(period_, static_cast<Cycle>(c->cadence_.stride));
    if (l <= kMaxPeriod) period_ = l;
  }
  due_.assign(period_, {});
  guarded_.clear();
  for (std::uint32_t i = 0; i < components_.size(); ++i) {
    const Component* c = components_[i];
    if (c == nullptr || !c->active_) continue;
    const Cycle s = c->cadence_.stride;
    if (period_ % s == 0) {
      for (Cycle r = c->cadence_.phase % s; r < period_; r += s) due_[r].push_back(i);
    } else {
      guarded_.push_back(i); // stride overflowed the period cap: check per cycle
    }
  }
  schedule_dirty_ = false;
}

void Kernel::sweep_tombstones() {
  std::size_t w = 0;
  for (Component* c : components_) {
    if (c == nullptr) continue;
    c->index_ = static_cast<std::uint32_t>(w);
    components_[w++] = c;
  }
  components_.resize(w);
  has_tombstones_ = false;
  schedule_dirty_ = true;
}

bool Kernel::due_now(const Component& c, Cycle cycle) const {
  return c.active_ && cycle % c.cadence_.stride == c.cadence_.phase;
}

bool Kernel::cycle_is_idle(Cycle cycle) const {
  if (!touched_.empty()) return false; // pending end-of-cycle commit
  if (!due_[cycle % period_].empty()) return false;
  for (std::uint32_t i : guarded_) {
    const Component* c = components_[i];
    if (c != nullptr && due_now(*c, cycle)) return false;
  }
  return true;
}

Cycle Kernel::next_due_cycle(Cycle from, Cycle limit) const {
  Cycle best = limit;
  for (std::uint32_t i : guarded_) {
    const Component* c = components_[i];
    if (c == nullptr || !c->active_) continue;
    const Cycle s = c->cadence_.stride;
    const Cycle p = c->cadence_.phase % s;
    best = std::min(best, from + (p + s - from % s) % s);
  }
  const Cycle scan_end = std::min(best, from + period_); // table is periodic
  for (Cycle c = from; c < scan_end; ++c) {
    if (!due_[c % period_].empty()) return std::min(best, c);
  }
  return best;
}

void Kernel::step_reference() {
  // Index loops (not iterators): remove() tombstones in place, so the
  // vector never reallocates or shifts mid-phase.
  const std::size_t n = components_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Component* c = components_[i];
    if (c != nullptr) c->tick();
  }
  for (std::size_t i = 0; i < n; ++i) {
    Component* c = components_[i];
    if (c != nullptr) c->commit();
  }
  if (has_tombstones_) sweep_tombstones();
  ++now_;
}

void Kernel::step_stride() {
  wake_due();
  if (schedule_dirty_) rebuild_schedule();

  // Snapshot which guarded components are due: a component may sleep
  // during its own tick, and it must still commit this cycle.
  guarded_due_.clear();
  for (std::uint32_t i : guarded_) {
    const Component* c = components_[i];
    if (c != nullptr && due_now(*c, now_)) guarded_due_.push_back(i);
  }

  const std::vector<std::uint32_t>& due = due_[now_ % period_];
  for (std::uint32_t i : due) {
    Component* c = components_[i];
    if (c != nullptr) c->tick();
  }
  for (std::uint32_t i : guarded_due_) {
    Component* c = components_[i];
    if (c != nullptr) c->tick();
  }

  for (std::uint32_t i : due) {
    Component* c = components_[i];
    if (c != nullptr) {
      c->commit();
      c->touch_pending_ = false;
    }
  }
  for (std::uint32_t i : guarded_due_) {
    Component* c = components_[i];
    if (c != nullptr) {
      c->commit();
      c->touch_pending_ = false;
    }
  }
  // Externally mutated components commit at the end of the cycle of the
  // mutation, exactly as under the reference scheduler. Index loop: ticks
  // above may have appended (shells pushing into NI queues).
  for (std::size_t k = 0; k < touched_.size(); ++k) {
    Component* c = components_[touched_[k]];
    if (c != nullptr && c->touch_pending_) {
      c->commit();
      c->touch_pending_ = false;
    }
  }
  touched_.clear();

  if (has_tombstones_) sweep_tombstones();
  ++now_;
}

bool Kernel::all_quiescent() const {
  for (const Component* c : components_) {
    if (c == nullptr || !c->active_) continue;
    if (!c->quiescent()) return false;
  }
  return true;
}

void Kernel::advance_or_skip(Cycle end) {
  wake_due();
  if (schedule_dirty_) rebuild_schedule();
  const Cycle limit = std::min(end, next_wake_);
  if (limit > now_ + 1) {
    if (cycle_is_idle(now_)) {
      now_ = next_due_cycle(now_ + 1, limit);
      return;
    }
    // Components may be due, but if every active one certifies its tick a
    // no-op (see Component::quiescent()) the network state is a fixed
    // point: nothing can change before a wake or an external write, both
    // of which happen at or after `limit`.
    if (touched_.empty() && all_quiescent()) {
      now_ = limit;
      return;
    }
  }
  step_stride();
}

void Kernel::step() {
  if (scheduler_ == Scheduler::kReference) {
    step_reference();
  } else {
    step_stride();
  }
}

void Kernel::run(Cycle n) {
  const Cycle end = now_ + n;
  if (scheduler_ == Scheduler::kReference) {
    while (now_ < end) step_reference();
    return;
  }
  while (now_ < end) advance_or_skip(end);
}

bool Kernel::run_until(const std::function<bool()>& pred, Cycle max_cycles) {
  const Cycle end = now_ + max_cycles;
  if (scheduler_ == Scheduler::kReference) {
    while (now_ < end) {
      step_reference();
      if (pred()) return true;
    }
    return false;
  }
  while (now_ < end) {
    advance_or_skip(end);
    if (pred()) return true;
  }
  return false;
}

} // namespace daelite::sim
