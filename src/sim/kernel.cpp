#include "sim/kernel.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "sim/component.hpp"
#include "sim/trace.hpp"

namespace daelite::sim {

namespace {

/// Per-thread dispatch context for trace staging. While a dispatch loop is
/// running with staging enabled, `stage` points at the buffer records park
/// in and `key` is the registration index of the component currently being
/// dispatched (the merge key — an agent relaying a record through its host
/// element stages under the agent's slot, exactly where the record lands in
/// a serial run). Thread-local so every shard worker stages into its own
/// buffer with no synchronization on the hot path.
struct DispatchCtx {
  std::vector<Kernel::StagedTrace>* stage = nullptr;
  std::uint32_t key = 0;
};
thread_local DispatchCtx tls_dispatch;

} // namespace

Kernel::~Kernel() { stop_workers(); }

void Kernel::add(Component* c) {
  assert(!in_parallel_ && "components may not be constructed inside a parallel phase");
  c->index_ = static_cast<std::uint32_t>(components_.size());
  components_.push_back(c);
  ++live_count_;
  schedule_dirty_ = true;
}

void Kernel::remove(Component* c) {
  assert(!in_parallel_ && "components may not be destroyed inside a parallel phase");
  const std::uint32_t i = c->index_;
  if (i >= components_.size() || components_[i] != c) return;
  components_[i] = nullptr; // tombstone; swept between cycles
  --live_count_;
  has_tombstones_ = true;
  if (!c->active_) --sleeping_count_;
  schedule_dirty_ = true;
}

void Kernel::notify_external_write(Component* c) {
  if (scheduler_ == Scheduler::kReference) return; // commits every cycle anyway
  assert(!in_parallel_ && "external_write() is a serial-phase service");
  if (c->touch_pending_) return;
  c->touch_pending_ = true;
  touched_.push_back(c->index_);
}

void Kernel::set_shards(std::uint32_t n) {
  if (scheduler_ == Scheduler::kReference) return; // oracle stays serial
  n = std::clamp<std::uint32_t>(n, 1, 64);
  if (n == shards_) return;
  stop_workers();
  shards_ = n;
  stage_.assign(static_cast<std::size_t>(shards_) + 1, {}); // + the serial buffer
  schedule_dirty_ = true;
}

void Kernel::assign_shard(Component& c, std::uint32_t shard) {
  assert(!in_parallel_);
  if (c.shard_ == shard) return;
  c.shard_ = shard;
  schedule_dirty_ = true;
}

void Kernel::sleep_component(Component& c, Cycle wake_at) {
  if (scheduler_ == Scheduler::kReference) return;
  assert(!in_parallel_ && "sleep()/suspend() are serial-phase services");
  // Waking happens at the start of the next step, so a wake this cycle or
  // the next would never skip a dispatch: don't churn the schedule.
  if (wake_at != kNoCycle && wake_at <= now_ + 1) return;
  if (c.active_) {
    c.active_ = false;
    ++sleeping_count_;
    schedule_dirty_ = true;
  }
  c.wake_at_ = wake_at;
  next_wake_ = std::min(next_wake_, wake_at);
}

void Kernel::wake(Component& c) {
  if (scheduler_ == Scheduler::kReference) return;
  assert(!in_parallel_ && "wake() is a serial-phase service");
  if (c.active_) return;
  c.active_ = true;
  c.wake_at_ = kNoCycle;
  --sleeping_count_;
  schedule_dirty_ = true;
  // next_wake_ may now be stale (too early); wake_due() tolerates that.
}

void Kernel::wake_due() {
  if (sleeping_count_ == 0) {
    next_wake_ = kNoCycle;
    return;
  }
  if (next_wake_ > now_) return;
  Cycle next = kNoCycle;
  for (Component* c : components_) {
    if (c == nullptr || c->active_) continue;
    if (c->wake_at_ <= now_) {
      c->active_ = true;
      c->wake_at_ = kNoCycle;
      --sleeping_count_;
      schedule_dirty_ = true;
    } else {
      next = std::min(next, c->wake_at_);
    }
  }
  next_wake_ = next;
}

void Kernel::rebuild_schedule() {
  period_ = 1;
  for (const Component* c : components_) {
    if (c == nullptr || !c->active_) continue;
    const Cycle l = std::lcm(period_, static_cast<Cycle>(c->cadence_.stride));
    if (l <= kMaxPeriod) period_ = l;
  }
  due_.assign(period_, {});
  guarded_.clear();
  for (std::uint32_t i = 0; i < components_.size(); ++i) {
    const Component* c = components_[i];
    if (c == nullptr || !c->active_) continue;
    const Cycle s = c->cadence_.stride;
    if (period_ % s == 0) {
      for (Cycle r = c->cadence_.phase % s; r < period_; r += s) due_[r].push_back(i);
    } else {
      guarded_.push_back(i); // stride overflowed the period cap: check per cycle
    }
  }
  // Shard partition of the due table. Guarded components always dispatch
  // serially (their per-cycle residue check keeps them off the wide path);
  // a shard id beyond the current shard count folds in, so a partition
  // computed for more shards than configured still distributes evenly.
  // The partition also exists at shards_ == 1 when a component is
  // shard-assigned (a batched engine): its dispatch then runs inline
  // before the serial set, the order the staged path guarantees.
  bool any_assigned = shards_ > 1;
  for (const Component* c : components_) {
    if (any_assigned) break;
    any_assigned = c != nullptr && c->active_ && c->shard_ != kNoShard;
  }
  has_partition_ = any_assigned;
  if (has_partition_) {
    if (stage_.size() != static_cast<std::size_t>(shards_) + 1) {
      stage_.assign(static_cast<std::size_t>(shards_) + 1, {}); // + the serial buffer
    }
    due_shard_.assign(static_cast<std::size_t>(period_) * shards_, {});
    due_shard_weight_.assign(static_cast<std::size_t>(period_) * shards_, 0);
    due_serial_.assign(period_, {});
    for (Cycle r = 0; r < period_; ++r) {
      for (std::uint32_t i : due_[r]) {
        const std::uint32_t s = components_[i]->shard_;
        if (s == kNoShard) {
          due_serial_[r].push_back(i);
        } else {
          const std::size_t slot = static_cast<std::size_t>(r) * shards_ + s % shards_;
          due_shard_[slot].push_back(i);
          due_shard_weight_[slot] += components_[i]->weight_;
        }
      }
    }
  }
  schedule_dirty_ = false;
}

void Kernel::sweep_tombstones() {
  std::size_t w = 0;
  for (Component* c : components_) {
    if (c == nullptr) continue;
    c->index_ = static_cast<std::uint32_t>(w);
    components_[w++] = c;
  }
  components_.resize(w);
  has_tombstones_ = false;
  schedule_dirty_ = true;
}

bool Kernel::due_now(const Component& c, Cycle cycle) const {
  return c.active_ && cycle % c.cadence_.stride == c.cadence_.phase;
}

bool Kernel::cycle_is_idle(Cycle cycle) const {
  if (!touched_.empty()) return false; // pending end-of-cycle commit
  if (!due_[cycle % period_].empty()) return false;
  for (std::uint32_t i : guarded_) {
    const Component* c = components_[i];
    if (c != nullptr && due_now(*c, cycle)) return false;
  }
  return true;
}

Cycle Kernel::next_due_cycle(Cycle from, Cycle limit) const {
  Cycle best = limit;
  for (std::uint32_t i : guarded_) {
    const Component* c = components_[i];
    if (c == nullptr || !c->active_) continue;
    const Cycle s = c->cadence_.stride;
    const Cycle p = c->cadence_.phase % s;
    best = std::min(best, from + (p + s - from % s) % s);
  }
  const Cycle scan_end = std::min(best, from + period_); // table is periodic
  for (Cycle c = from; c < scan_end; ++c) {
    if (!due_[c % period_].empty()) return std::min(best, c);
  }
  return best;
}

void Kernel::record_trace(const Component& c, Tracer& t, TraceEvent event, std::uint64_t arg0,
                          std::uint64_t arg1) {
  if (tls_dispatch.stage != nullptr) {
    // Inside a staged dispatch loop (any phase of a sharded cycle): park
    // the record; flush_staged_traces() interns and appends it on the
    // driving thread once the phase joins. Contract: the emitter pointer
    // must stay valid to the end of the cycle (destroying a component that
    // traced earlier in the same sharded cycle is unsupported).
    tls_dispatch.stage->push_back({tls_dispatch.key, &c, event, arg0, arg1});
    return;
  }
  if (c.trace_owner_ != &t) { // interned id is per-tracer; revalidate on swap
    c.trace_id_ = t.intern(c.name_);
    c.trace_owner_ = &t;
  }
  t.record(now_, c.trace_id_, event, arg0, arg1);
}

void Kernel::trace_as(const Component& as, TraceEvent event, std::uint64_t arg0,
                      std::uint64_t arg1) {
  Tracer* t = tracer_;
  if (t == nullptr || !t->enabled()) return;
  if (tls_dispatch.stage != nullptr) {
    // Staged under the element's own registration index, not the key of
    // the engine currently dispatching: the record merges exactly where
    // the element's own trace() would have landed in a serial run.
    tls_dispatch.stage->push_back({as.index_, &as, event, arg0, arg1});
    return;
  }
  if (as.trace_owner_ != t) {
    as.trace_id_ = t->intern(as.name_);
    as.trace_owner_ = t;
  }
  t->record(now_, as.trace_id_, event, arg0, arg1);
}

void Kernel::set_stage_key(const Component& c) {
  if (tls_dispatch.stage != nullptr) tls_dispatch.key = c.index_;
}

void Kernel::set_dispatch_weight(Component& c, std::uint32_t weight) {
  const std::uint32_t w = std::max<std::uint32_t>(1, weight);
  if (c.weight_ == w) return;
  c.weight_ = w;
  schedule_dirty_ = true;
}

void Kernel::flush_staged_traces() {
  const std::size_t nb = stage_.size();
  bool any = false;
  for (const auto& b : stage_) any = any || !b.empty();
  if (!any) return;
  Tracer* t = tracer_;
  // k-way merge ascending by key. Every buffer is already ascending (each
  // dispatch list is ascending by registration index) and a key appears in
  // exactly one buffer (one component dispatches in exactly one list), so
  // the merged stream is the serial dispatch order — records AND first-use
  // interning land byte-identically to an unsharded run.
  std::vector<std::size_t> cur(nb, 0);
  for (;;) {
    std::size_t best = nb;
    std::uint32_t best_key = 0;
    for (std::size_t b = 0; b < nb; ++b) {
      if (cur[b] >= stage_[b].size()) continue;
      const std::uint32_t k = stage_[b][cur[b]].key;
      if (best == nb || k < best_key) {
        best = b;
        best_key = k;
      }
    }
    if (best == nb) break;
    const StagedTrace& s = stage_[best][cur[best]++];
    if (t != nullptr) {
      if (s.emitter->trace_owner_ != t) {
        s.emitter->trace_id_ = t->intern(s.emitter->name_);
        s.emitter->trace_owner_ = t;
      }
      t->record(now_, s.emitter->trace_id_, s.event, s.arg0, s.arg1);
    }
  }
  for (auto& b : stage_) b.clear();
}

void Kernel::run_shard_list(const std::vector<std::uint32_t>& list, int phase,
                            std::vector<StagedTrace>* stage) {
  tls_dispatch.stage = stage;
  if (phase == 0) {
    for (std::uint32_t i : list) {
      Component* c = components_[i];
      if (c != nullptr) {
        tls_dispatch.key = i;
        c->tick();
      }
    }
  } else {
    for (std::uint32_t i : list) {
      Component* c = components_[i];
      if (c != nullptr) {
        tls_dispatch.key = i;
        c->commit();
        c->touch_pending_ = false;
      }
    }
  }
  tls_dispatch.stage = nullptr;
}

void Kernel::start_workers() {
  if (workers_.size() + 1 == shards_) return;
  stop_workers();
  workers_.reserve(shards_ - 1);
  for (std::uint32_t s = 1; s < shards_; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

void Kernel::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_stop_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  pool_stop_ = false;
}

void Kernel::worker_loop(std::uint32_t shard) {
  std::uint64_t seen = 0;
  for (;;) {
    int phase;
    const std::vector<std::uint32_t>* list;
    {
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_cv_.wait(lk, [&] { return pool_stop_ || round_ != seen; });
      if (pool_stop_) return;
      seen = round_;
      phase = round_phase_;
      list = &round_lists_[shard];
    }
    run_shard_list(*list, phase, &stage_[shard]);
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      --round_remaining_;
    }
    done_cv_.notify_one();
  }
}

void Kernel::run_parallel_round(int phase) {
  in_parallel_ = true;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    round_phase_ = phase;
    round_remaining_ = shards_ - 1;
    ++round_; // publishes round_lists_/phase to the workers (mutex ordering)
  }
  pool_cv_.notify_all();
  run_shard_list(round_lists_[0], phase, &stage_[0]); // driver is shard 0
  {
    std::unique_lock<std::mutex> lk(pool_mu_);
    done_cv_.wait(lk, [&] { return round_remaining_ == 0; });
  }
  in_parallel_ = false;
}

void Kernel::step_reference() {
  // Index loops (not iterators): remove() tombstones in place, so the
  // vector never reallocates or shifts mid-phase.
  const std::size_t n = components_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Component* c = components_[i];
    if (c != nullptr) c->tick();
  }
  for (std::size_t i = 0; i < n; ++i) {
    Component* c = components_[i];
    if (c != nullptr) c->commit();
  }
  if (has_tombstones_) sweep_tombstones();
  ++now_;
}

void Kernel::step_stride() {
  wake_due();
  if (schedule_dirty_) rebuild_schedule();

  // Snapshot which guarded components are due: a component may sleep
  // during its own tick, and it must still commit this cycle.
  guarded_due_.clear();
  for (std::uint32_t i : guarded_) {
    const Component* c = components_[i];
    if (c != nullptr && due_now(*c, now_)) guarded_due_.push_back(i);
  }

  const std::size_t r = static_cast<std::size_t>(now_ % period_);

  // Any cycle with shard-assigned work due goes through the staged path
  // (shard lists before the serial set — required for batched engines,
  // byte-identical for plain sharded components). The worker pool engages
  // only when the wide TDM dispatch (the whole mesh due at a slot start)
  // offers enough weighted work per shard to amortize the round
  // handshake; narrow cycles run the shard lists inline on the driver.
  if (has_partition_) {
    std::size_t weighted = 0;
    for (std::uint32_t s = 0; s < shards_; ++s) {
      weighted += due_shard_weight_[r * shards_ + s];
    }
    if (weighted > 0) {
      step_stride_staged(r, shards_ > 1 && weighted >= static_cast<std::size_t>(shards_) * 2);
      return;
    }
  }

  const std::vector<std::uint32_t>& due = due_[r];
  for (std::uint32_t i : due) {
    Component* c = components_[i];
    if (c != nullptr) c->tick();
  }
  for (std::uint32_t i : guarded_due_) {
    Component* c = components_[i];
    if (c != nullptr) c->tick();
  }

  for (std::uint32_t i : due) {
    Component* c = components_[i];
    if (c != nullptr) {
      c->commit();
      c->touch_pending_ = false;
    }
  }
  for (std::uint32_t i : guarded_due_) {
    Component* c = components_[i];
    if (c != nullptr) {
      c->commit();
      c->touch_pending_ = false;
    }
  }
  // Externally mutated components commit at the end of the cycle of the
  // mutation, exactly as under the reference scheduler. Index loop: ticks
  // above may have appended (shells pushing into NI queues).
  for (std::size_t k = 0; k < touched_.size(); ++k) {
    Component* c = components_[touched_[k]];
    if (c != nullptr && c->touch_pending_) {
      c->commit();
      c->touch_pending_ = false;
    }
  }
  touched_.clear();

  if (has_tombstones_) sweep_tombstones();
  ++now_;
}

void Kernel::step_stride_staged(std::size_t r, bool use_pool) {
  // Tick phase. Parallel ticks are safe because sharded components read
  // only state committed at the previous edge (nothing writes committed
  // state during tick) and write only their own next-state; serial ticks
  // run after the join, preserving every host-element/agent ordering the
  // single-threaded loop has (a serial agent mutating its sharded host is
  // observed by the host only next cycle, exactly as in index order).
  // Without the pool the same shard lists run inline on the driver —
  // identical order and staging, no handshake.
  if (use_pool) {
    start_workers();
    round_lists_ = &due_shard_[r * shards_];
    run_parallel_round(0);
  } else {
    for (std::uint32_t s = 0; s < shards_; ++s) {
      run_shard_list(due_shard_[r * shards_ + s], 0, &stage_[s]);
    }
  }
  const std::vector<std::uint32_t>& serial = due_serial_[r];
  tls_dispatch.stage = &stage_[shards_];
  for (std::uint32_t i : serial) {
    Component* c = components_[i];
    if (c != nullptr) {
      tls_dispatch.key = i;
      c->tick();
    }
  }
  tls_dispatch.stage = nullptr;
  flush_staged_traces();
  // Guarded components tick after every scheduled one in the serial loop
  // too, so recording directly (post-merge) preserves the record order.
  for (std::uint32_t i : guarded_due_) {
    Component* c = components_[i];
    if (c != nullptr) c->tick();
  }

  // Commit phase. Parallel commits are the default register latch (the
  // sharded-component contract), touching only the component's own state;
  // overriding commits with cross-component behaviour — the fault injector
  // corrupting committed link registers, the health monitor sampling them —
  // live in the serial set and run after the join, so they observe every
  // latch exactly as they do when they commit last in index order.
  if (use_pool) {
    run_parallel_round(1);
  } else {
    for (std::uint32_t s = 0; s < shards_; ++s) {
      run_shard_list(due_shard_[r * shards_ + s], 1, &stage_[s]);
    }
  }
  flush_staged_traces(); // default latches never trace: normally a no-op
  for (std::uint32_t i : serial) {
    Component* c = components_[i];
    if (c != nullptr) {
      c->commit();
      c->touch_pending_ = false;
    }
  }
  for (std::uint32_t i : guarded_due_) {
    Component* c = components_[i];
    if (c != nullptr) {
      c->commit();
      c->touch_pending_ = false;
    }
  }
  for (std::size_t k = 0; k < touched_.size(); ++k) {
    Component* c = components_[touched_[k]];
    if (c != nullptr && c->touch_pending_) {
      c->commit();
      c->touch_pending_ = false;
    }
  }
  touched_.clear();

  if (has_tombstones_) sweep_tombstones();
  ++now_;
}

bool Kernel::all_quiescent() const {
  for (const Component* c : components_) {
    if (c == nullptr || !c->active_) continue;
    if (!c->quiescent()) return false;
  }
  return true;
}

void Kernel::advance_or_skip(Cycle end) {
  wake_due();
  if (schedule_dirty_) rebuild_schedule();
  const Cycle limit = std::min(end, next_wake_);
  if (limit > now_ + 1) {
    if (cycle_is_idle(now_)) {
      now_ = next_due_cycle(now_ + 1, limit);
      return;
    }
    // Components may be due, but if every active one certifies its tick a
    // no-op (see Component::quiescent()) the network state is a fixed
    // point: nothing can change before a wake or an external write, both
    // of which happen at or after `limit`.
    if (touched_.empty() && all_quiescent()) {
      now_ = limit;
      return;
    }
  }
  step_stride();
}

void Kernel::step() {
  if (scheduler_ == Scheduler::kReference) {
    step_reference();
  } else {
    step_stride();
  }
}

void Kernel::run(Cycle n) {
  const Cycle end = now_ + n;
  if (scheduler_ == Scheduler::kReference) {
    while (now_ < end) step_reference();
    return;
  }
  while (now_ < end) advance_or_skip(end);
}

bool Kernel::run_until(const std::function<bool()>& pred, Cycle max_cycles) {
  const Cycle end = now_ + max_cycles;
  if (scheduler_ == Scheduler::kReference) {
    while (now_ < end) {
      step_reference();
      if (pred()) return true;
    }
    return false;
  }
  while (now_ < end) {
    advance_or_skip(end);
    if (pred()) return true;
  }
  return false;
}

} // namespace daelite::sim
