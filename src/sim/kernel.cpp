#include "sim/kernel.hpp"

#include <algorithm>

#include "sim/component.hpp"

namespace daelite::sim {

void Kernel::remove(Component* c) {
  auto it = std::find(components_.begin(), components_.end(), c);
  if (it != components_.end()) components_.erase(it);
}

void Kernel::step() {
  for (Component* c : components_) c->tick();
  for (Component* c : components_) c->commit();
  ++now_;
}

void Kernel::run(Cycle n) {
  for (Cycle i = 0; i < n; ++i) step();
}

bool Kernel::run_until(const std::function<bool()>& pred, Cycle max_cycles) {
  for (Cycle i = 0; i < max_cycles; ++i) {
    step();
    if (pred()) return true;
  }
  return pred();
}

} // namespace daelite::sim
