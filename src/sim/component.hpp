#pragma once
// Two-phase synchronous component model.
//
// The modelled hardware (daelite / aelite) is globally synchronous: one
// clock, every register latches on the same edge. We model this with two
// phases per cycle:
//
//   tick()   — combinational evaluation: read only *committed* state (your
//              own and other components' registers via Reg<T>::get()),
//              compute next state via Reg<T>::set().
//   commit() — the clock edge: every register copies next -> current.
//
// Because tick() never observes uncommitted values, the evaluation order of
// components within a cycle is irrelevant; the simulation is deterministic
// and exactly matches RTL register-transfer semantics with a one-cycle
// delay through every Reg.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace daelite::sim {

/// Type-erased register interface so a Component can commit all of its
/// registers generically.
class RegBase {
 public:
  virtual void commit_reg() = 0;

 protected:
  ~RegBase() = default;
};

/// A flip-flop (bank): holds its value across cycles unless set().
/// get() returns the value committed at the previous clock edge.
template <typename T>
class Reg : public RegBase {
 public:
  Reg() = default;
  explicit Reg(const T& init) : cur_(init), nxt_(init) {}

  const T& get() const { return cur_; }
  void set(const T& v) { nxt_ = v; }
  void set(T&& v) { nxt_ = static_cast<T&&>(v); }

  /// Mutable access to the *next* value — convenient for container-typed
  /// registers (e.g. pushing into a queue register during tick()).
  T& next() { return nxt_; }
  const T& next() const { return nxt_; }

  /// Reset both current and next immediately (use only outside tick()).
  void force(const T& v) {
    cur_ = v;
    nxt_ = v;
  }

  void commit_reg() override { cur_ = nxt_; }

 private:
  T cur_{};
  T nxt_{};
};

/// Base class for every modelled hardware block. Registers itself with the
/// Kernel on construction and deregisters on destruction.
class Component {
 public:
  Component(Kernel& kernel, std::string name);
  virtual ~Component();

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Combinational phase. Read committed state only; write via Reg::set().
  virtual void tick() = 0;

  /// Clock edge. The default commits every register registered via own().
  /// Override only to add extra sequential behaviour, and call the base.
  virtual void commit();

  const std::string& name() const { return name_; }
  Kernel& kernel() const { return *kernel_; }

  /// Current simulation cycle (committed time; increments after commit).
  Cycle now() const;

 protected:
  /// Declare a member Reg as part of this component's sequential state.
  void own(RegBase& reg) { regs_.push_back(&reg); }

  /// Append a structured trace record under this component's name. With no
  /// tracer attached (or a disabled one) this is a branch or two and no
  /// stores — cheap enough to leave in every model's hot path.
  void trace(TraceEvent event, std::uint64_t arg0 = 0, std::uint64_t arg1 = 0) const {
    Tracer* t = kernel_->tracer();
    if (t == nullptr || !t->enabled()) return;
    if (trace_owner_ != t) { // interned id is per-tracer; revalidate on swap
      trace_id_ = t->intern(name_);
      trace_owner_ = t;
    }
    t->record(kernel_->now(), trace_id_, event, arg0, arg1);
  }

  /// True when trace() would record — guards event argument computation
  /// too expensive for the hot path.
  bool tracing() const {
    const Tracer* t = kernel_->tracer();
    return t != nullptr && t->enabled();
  }

 private:
  Kernel* kernel_;
  std::string name_;
  std::vector<RegBase*> regs_;
  mutable std::uint32_t trace_id_ = 0;          ///< interned lazily on first trace()
  mutable const Tracer* trace_owner_ = nullptr; ///< tracer trace_id_ belongs to
};

} // namespace daelite::sim
