#pragma once
// Two-phase synchronous component model.
//
// The modelled hardware (daelite / aelite) is globally synchronous: one
// clock, every register latches on the same edge. We model this with two
// phases per cycle:
//
//   tick()   — combinational evaluation: read only *committed* state (your
//              own and other components' registers via Reg<T>::get()),
//              compute next state via Reg<T>::set().
//   commit() — the clock edge: every register copies next -> current.
//
// Because tick() never observes uncommitted values, the evaluation order of
// components within a cycle is irrelevant; the simulation is deterministic
// and exactly matches RTL register-transfer semantics with a one-cycle
// delay through every Reg.

#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace daelite::sim {

class Kernel;

/// Type-erased register interface so a Component can commit all of its
/// registers generically.
class RegBase {
 public:
  virtual void commit_reg() = 0;

 protected:
  ~RegBase() = default;
};

/// A flip-flop (bank): holds its value across cycles unless set().
/// get() returns the value committed at the previous clock edge.
template <typename T>
class Reg : public RegBase {
 public:
  Reg() = default;
  explicit Reg(const T& init) : cur_(init), nxt_(init) {}

  const T& get() const { return cur_; }
  void set(const T& v) { nxt_ = v; }
  void set(T&& v) { nxt_ = static_cast<T&&>(v); }

  /// Mutable access to the *next* value — convenient for container-typed
  /// registers (e.g. pushing into a queue register during tick()).
  T& next() { return nxt_; }
  const T& next() const { return nxt_; }

  /// Reset both current and next immediately (use only outside tick()).
  void force(const T& v) {
    cur_ = v;
    nxt_ = v;
  }

  void commit_reg() override { cur_ = nxt_; }

 private:
  T cur_{};
  T nxt_{};
};

/// Base class for every modelled hardware block. Registers itself with the
/// Kernel on construction and deregisters on destruction.
class Component {
 public:
  Component(Kernel& kernel, std::string name);
  virtual ~Component();

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Combinational phase. Read committed state only; write via Reg::set().
  virtual void tick() = 0;

  /// Clock edge. The default commits every register registered via own().
  /// Override only to add extra sequential behaviour, and call the base.
  virtual void commit();

  const std::string& name() const { return name_; }
  Kernel& kernel() const { return *kernel_; }

  /// Current simulation cycle (committed time; increments after commit).
  Cycle now() const;

 protected:
  /// Declare a member Reg as part of this component's sequential state.
  void own(RegBase& reg) { regs_.push_back(&reg); }

 private:
  Kernel* kernel_;
  std::string name_;
  std::vector<RegBase*> regs_;
};

} // namespace daelite::sim
