#pragma once
// Two-phase synchronous component model.
//
// The modelled hardware (daelite / aelite) is globally synchronous: one
// clock, every register latches on the same edge. We model this with two
// phases per cycle:
//
//   tick()   — combinational evaluation: read only *committed* state (your
//              own and other components' registers via Reg<T>::get()),
//              compute next state via Reg<T>::set().
//   commit() — the clock edge: every register copies next -> current.
//
// Because tick() never observes uncommitted values, the evaluation order of
// components within a cycle is irrelevant; the simulation is deterministic
// and exactly matches RTL register-transfer semantics with a one-cycle
// delay through every Reg.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace daelite::sim {

/// Type-erased register interface so a Component can commit all of its
/// registers generically.
class RegBase {
 public:
  virtual void commit_reg() = 0;

 protected:
  ~RegBase() = default;
};

/// A flip-flop (bank): holds its value across cycles unless set().
/// get() returns the value committed at the previous clock edge.
template <typename T>
class Reg : public RegBase {
 public:
  Reg() = default;
  explicit Reg(const T& init) : cur_(init), nxt_(init) {}

  const T& get() const { return cur_; }
  void set(const T& v) { nxt_ = v; }
  void set(T&& v) { nxt_ = static_cast<T&&>(v); }

  /// Mutable access to the *next* value — convenient for container-typed
  /// registers (e.g. pushing into a queue register during tick()).
  T& next() { return nxt_; }
  const T& next() const { return nxt_; }

  /// Reset both current and next immediately (use only outside tick()).
  void force(const T& v) {
    cur_ = v;
    nxt_ = v;
  }

  void commit_reg() override { cur_ = nxt_; }

 private:
  T cur_{};
  T nxt_{};
};

/// Base class for every modelled hardware block. Registers itself with the
/// Kernel on construction and deregisters on destruction.
///
/// A component declares a tick Cadence at construction: hardware that only
/// acts on TDM slot boundaries (routers, NIs) registers stride
/// words_per_slot so the stride scheduler never dispatches it on the
/// intermediate cycles its tick() would early-return from. State mutated
/// from outside tick() (queue pushes/pops, config enqueues) must be
/// followed by external_write() so the mutation commits at the end of the
/// current cycle regardless of the component's cadence.
class Component {
 public:
  Component(Kernel& kernel, std::string name, Cadence cadence = {});
  virtual ~Component();

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Combinational phase. Read committed state only; write via Reg::set().
  virtual void tick() = 0;

  /// Clock edge. The default commits every register registered via own().
  /// Override only to add extra sequential behaviour, and call the base.
  virtual void commit();

  const std::string& name() const { return name_; }
  Kernel& kernel() const { return *kernel_; }
  const Cadence& cadence() const { return cadence_; }

  /// False while suspended/sleeping under the stride scheduler.
  bool active() const { return active_; }

  /// Quiescence hint for the stride scheduler's whole-network fast-forward.
  /// Return true only when BOTH hold:
  ///   (a) every register this component shares with consumers currently
  ///       holds its "nothing" value (invalid flit, empty queue, zero
  ///       counter), and
  ///   (b) given that every register it reads also holds "nothing", its
  ///       tick() changes no observable state: no counters, no trace
  ///       records, and every written register keeps a "nothing" value.
  /// When every active component is quiescent (and no external write is
  /// pending), Kernel::run()/run_until() may skip the span wholesale —
  /// by induction the network state cannot change until a wake or an
  /// external write. The default (false) opts out: components that
  /// generate stimulus or sample state every cycle must never be skipped.
  virtual bool quiescent() const { return false; }

  /// Current simulation cycle (committed time; increments after commit).
  Cycle now() const;

 protected:
  /// Call after mutating this component's registers from outside its own
  /// tick() (e.g. a queue push from the runner or a shell): schedules a
  /// commit at the end of the current cycle even if the component is not
  /// due, so the mutation lands on the same clock edge as it would under
  /// the per-cycle reference scheduler.
  void external_write() { kernel_->notify_external_write(this); }

  /// Leave the schedule from the next cycle until `wake_at` (the current
  /// cycle still commits). Only sleep when provably quiescent: all owned
  /// registers stable and tick() a no-op until the wake cycle.
  void sleep_until(Cycle wake_at) { kernel_->sleep(*this, wake_at); }

  /// Sleep until some external event calls Kernel::wake(*this).
  void sleep() { kernel_->suspend(*this); }

  /// Declare a member Reg as part of this component's sequential state.
  void own(RegBase& reg) { regs_.push_back(&reg); }

  /// Append a structured trace record under this component's name. With no
  /// tracer attached (or a disabled one) this is a branch or two and no
  /// stores — cheap enough to leave in every model's hot path. The enabled
  /// path goes through the kernel so records emitted inside a sharded
  /// parallel phase are staged per thread and merged back in registration
  /// order (Kernel::record_trace), keeping traces byte-identical across
  /// shard counts.
  void trace(TraceEvent event, std::uint64_t arg0 = 0, std::uint64_t arg1 = 0) const {
    Tracer* t = kernel_->tracer();
    if (t == nullptr || !t->enabled()) return;
    kernel_->record_trace(*this, *t, event, arg0, arg1);
  }

  /// True when trace() would record — guards event argument computation
  /// too expensive for the hot path.
  bool tracing() const {
    const Tracer* t = kernel_->tracer();
    return t != nullptr && t->enabled();
  }

  /// For batched-dispatch engines (hw::SlotEngine): latch a suspended
  /// element this engine drives, clearing its pending external-write mark
  /// so the kernel's touched pass does not commit it a second time —
  /// exactly the bookkeeping the kernel performs when the element commits
  /// from a due list.
  static void commit_on_behalf(Component& c) {
    c.commit();
    c.touch_pending_ = false;
  }

 private:
  friend class Kernel;

  Kernel* kernel_;
  std::string name_;
  std::vector<RegBase*> regs_;
  Cadence cadence_;
  std::uint32_t index_ = 0;    ///< slot in the kernel's registry
  std::uint32_t shard_ = Kernel::kNoShard; ///< serial set unless assigned
  std::uint32_t weight_ = 1;   ///< staged-path width contribution (elements covered)
  bool active_ = true;         ///< false while suspended/sleeping
  bool touch_pending_ = false; ///< external write awaiting end-of-cycle commit
  Cycle wake_at_ = kNoCycle;
  mutable std::uint32_t trace_id_ = 0;          ///< interned lazily on first trace()
  mutable const Tracer* trace_owner_ = nullptr; ///< tracer trace_id_ belongs to
};

} // namespace daelite::sim
