#include "sim/vcd.hpp"

#include <map>
#include <ostream>

namespace daelite::sim {

VcdWriter::VcdWriter(std::ostream& os, std::string top_module)
    : os_(&os), top_(std::move(top_module)) {}

void VcdWriter::add_signal(const std::string& name, unsigned width, Probe probe) {
  Signal s;
  s.name = name;
  s.width = width == 0 ? 1 : width;
  s.probe = std::move(probe);
  s.id = make_id(signals_.size());
  signals_.push_back(std::move(s));
}

std::string VcdWriter::make_id(std::size_t index) {
  // Printable identifier characters '!' .. '~'.
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

void VcdWriter::write_header() {
  (*os_) << "$date reproducibility build $end\n"
         << "$version daelite cycle model $end\n"
         << "$timescale 1ns $end\n"
         << "$scope module " << top_ << " $end\n";
  // Group by the first hierarchical component.
  std::map<std::string, std::vector<const Signal*>> groups;
  for (const Signal& s : signals_) {
    const auto dot = s.name.find('.');
    groups[dot == std::string::npos ? std::string("top") : s.name.substr(0, dot)].push_back(&s);
  }
  for (const auto& [scope, sigs] : groups) {
    (*os_) << "$scope module " << scope << " $end\n";
    for (const Signal* s : sigs) {
      const auto dot = s->name.find('.');
      const std::string leaf = dot == std::string::npos ? s->name : s->name.substr(dot + 1);
      (*os_) << "$var wire " << s->width << ' ' << s->id << ' ' << leaf << " $end\n";
    }
    (*os_) << "$upscope $end\n";
  }
  (*os_) << "$upscope $end\n$enddefinitions $end\n";
  header_written_ = true;
}

void VcdWriter::emit(const Signal& s, std::uint64_t value) {
  if (s.width == 1) {
    (*os_) << (value & 1) << s.id << '\n';
    return;
  }
  (*os_) << 'b';
  bool started = false;
  for (int bit = static_cast<int>(s.width) - 1; bit >= 0; --bit) {
    const bool v = (value >> bit) & 1;
    if (v) started = true;
    if (started || bit == 0) (*os_) << (v ? '1' : '0');
  }
  (*os_) << ' ' << s.id << '\n';
}

void VcdWriter::sample(Cycle t) {
  if (!header_written_) write_header();
  bool stamped = false;
  for (Signal& s : signals_) {
    const std::uint64_t v = s.probe();
    if (s.has_last && v == s.last) continue;
    if (!stamped) {
      (*os_) << '#' << t << '\n';
      stamped = true;
    }
    emit(s, v);
    s.last = v;
    s.has_last = true;
  }
}

} // namespace daelite::sim
