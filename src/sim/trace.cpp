#include "sim/trace.hpp"

#include <ostream>
#include <utility>

namespace daelite::sim {

void Tracer::record(Cycle cycle, std::string source, std::string event, std::string detail) {
  if (!enabled_) return;
  records_.push_back(TraceRecord{cycle, std::move(source), std::move(event), std::move(detail)});
}

std::size_t Tracer::count(std::string_view event) const {
  std::size_t n = 0;
  for (const auto& r : records_)
    if (r.event == event) ++n;
  return n;
}

void Tracer::dump(std::ostream& os) const {
  for (const auto& r : records_) {
    os << r.cycle << ' ' << r.source << ' ' << r.event;
    if (!r.detail.empty()) os << " : " << r.detail;
    os << '\n';
  }
}

} // namespace daelite::sim
