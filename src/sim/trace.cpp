#include "sim/trace.hpp"

#include <ostream>

namespace daelite::sim {

std::string_view trace_event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::kNone: return "none";
    case TraceEvent::kFlitInject: return "inject";
    case TraceEvent::kFlitDeliver: return "deliver";
    case TraceEvent::kFlitDrop: return "drop";
    case TraceEvent::kFlitForward: return "forward";
    case TraceEvent::kRxOverflow: return "rx.overflow";
    case TraceEvent::kCreditSend: return "credit.send";
    case TraceEvent::kCreditReceive: return "credit.recv";
    case TraceEvent::kTableWrite: return "cfg.write";
    case TraceEvent::kCfgError: return "cfg.error";
    case TraceEvent::kCollision: return "collision";
    case TraceEvent::kSetupBegin:
    case TraceEvent::kSetupEnd: return "setup";
    case TraceEvent::kTeardownBegin:
    case TraceEvent::kTeardownEnd: return "teardown";
    case TraceEvent::kCfgPacketBegin:
    case TraceEvent::kCfgPacketEnd: return "cfg.packet";
    case TraceEvent::kPhaseBegin:
    case TraceEvent::kPhaseEnd: return "phase";
    case TraceEvent::kCfgTimeout: return "cfg.timeout";
    case TraceEvent::kCfgRetry: return "cfg.retry";
    case TraceEvent::kCfgAbort: return "cfg.abort";
    case TraceEvent::kFaultInject: return "fault";
    case TraceEvent::kLinkDead: return "link.dead";
    case TraceEvent::kRecoveryBegin:
    case TraceEvent::kRecoveryEnd: return "recovery";
    case TraceEvent::kPreemptBegin: return "preempt";
    case TraceEvent::kCompactionPass: return "compaction";
  }
  return "?";
}

char trace_event_phase(TraceEvent e) {
  switch (e) {
    case TraceEvent::kSetupBegin:
    case TraceEvent::kTeardownBegin:
    case TraceEvent::kCfgPacketBegin:
    case TraceEvent::kPhaseBegin:
    case TraceEvent::kRecoveryBegin: return 'B';
    case TraceEvent::kSetupEnd:
    case TraceEvent::kTeardownEnd:
    case TraceEvent::kCfgPacketEnd:
    case TraceEvent::kPhaseEnd:
    case TraceEvent::kRecoveryEnd: return 'E';
    default: return 'i';
  }
}

Tracer::CompId Tracer::intern(std::string_view name) {
  const auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<CompId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

const std::string& Tracer::name(CompId id) const {
  static const std::string kUnknown;
  return id < names_.size() ? names_[id] : kUnknown;
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  for_each([&](const TraceRecord& r) { out.push_back(r); });
  return out;
}

void Tracer::clear() {
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

std::size_t Tracer::count(TraceEvent event) const {
  std::size_t n = 0;
  for (const TraceRecord& r : ring_)
    if (r.event == event) ++n;
  return n;
}

std::size_t Tracer::count(std::string_view event) const {
  std::size_t n = 0;
  for (const TraceRecord& r : ring_)
    if (trace_event_name(r.event) == event) ++n;
  return n;
}

void Tracer::dump(std::ostream& os) const {
  for_each([&](const TraceRecord& r) {
    os << r.cycle << ' ' << name(r.comp) << ' ' << trace_event_name(r.event);
    const char ph = trace_event_phase(r.event);
    if (ph != 'i') os << (ph == 'B' ? ".begin" : ".end");
    os << ' ' << r.arg0 << ' ' << r.arg1 << '\n';
  });
}

} // namespace daelite::sim
