#pragma once
// Trace exporters: turn a Tracer's binary ring into files tools understand.
//
// The only format currently supported is the Chrome trace_event JSON
// ("JSON Object Format": {"traceEvents": [...]}), which chrome://tracing
// and Perfetto open directly. Mapping:
//   * one process (pid 0) per tracer, one "thread" (tid) per interned
//     component, named via 'M' (metadata) events;
//   * span records (setup / teardown / cfg.packet / phase) become 'B'/'E'
//     duration events, so connection set-up shows as a timeline slice;
//   * everything else becomes a thread-scoped instant ('i') event;
//   * ts is the simulation cycle (displayTimeUnit "ns": 1 cycle renders as
//     1 ns; wall-clock time never enters the document, so exports are
//     byte-deterministic for a deterministic simulation).

#include <iosfwd>
#include <string>

#include "sim/trace.hpp"

namespace daelite::sim {

class JsonValue;

struct ChromeTraceOptions {
  std::string process_name = "daelite"; ///< shown as the pid row label
};

/// Build the Chrome trace document for `t` (oldest record first).
JsonValue chrome_trace_json(const Tracer& t, const ChromeTraceOptions& options = {});

/// Serialize chrome_trace_json() to `os` (compact, one trailing newline).
void write_chrome_trace(std::ostream& os, const Tracer& t,
                        const ChromeTraceOptions& options = {});

/// Convenience: write to `path`; returns false if the file cannot be
/// opened (the caller owns error reporting).
bool write_chrome_trace_file(const std::string& path, const Tracer& t,
                             const ChromeTraceOptions& options = {});

} // namespace daelite::sim
