#pragma once
// Minimal leveled logger for the simulator.
//
// The logger is intentionally tiny: a global level, a sink (std::ostream*),
// and printf-free streaming via std::ostringstream. Components log through
// free functions so that headers stay light.

#include <iosfwd>
#include <sstream>
#include <string>
#include <string_view>

namespace daelite::sim {

enum class LogLevel : int {
  kNone = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
  kTrace = 5,
};

/// Global log configuration. Thread-safe: level and sink are atomics and
/// write() serializes the stream insertion, because components may log
/// from shard worker threads (sim/kernel.hpp sharded execution) and from
/// concurrent batch jobs (sim/parallel.hpp). set_sink() still must not
/// destroy the old sink while other threads are logging — swap sinks only
/// when the kernels using the logger are quiescent (tests do this between
/// runs).
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);

  /// Redirect output (default: std::cerr). Pass nullptr to silence.
  static void set_sink(std::ostream* sink);
  static std::ostream* sink();

  static bool enabled(LogLevel lvl) { return static_cast<int>(lvl) <= static_cast<int>(level()) && sink() != nullptr; }

  /// Emit one line: "[LVL] who: message\n".
  static void write(LogLevel lvl, std::string_view who, std::string_view msg);
};

namespace detail {
template <typename... Args>
void log_fmt(LogLevel lvl, std::string_view who, Args&&... args) {
  if (!Log::enabled(lvl)) return;
  std::ostringstream os;
  (os << ... << args);
  Log::write(lvl, who, os.str());
}
} // namespace detail

template <typename... Args>
void log_error(std::string_view who, Args&&... args) {
  detail::log_fmt(LogLevel::kError, who, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(std::string_view who, Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, who, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(std::string_view who, Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, who, std::forward<Args>(args)...);
}
template <typename... Args>
void log_debug(std::string_view who, Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, who, std::forward<Args>(args)...);
}
template <typename... Args>
void log_trace(std::string_view who, Args&&... args) {
  detail::log_fmt(LogLevel::kTrace, who, std::forward<Args>(args)...);
}

} // namespace daelite::sim
