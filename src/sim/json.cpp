#include "sim/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace daelite::sim {

void JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  items_.push_back(std::move(v));
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, v] : members_)
    if (k == key) return v;
  members_.emplace_back(key, JsonValue{});
  return members_.back().second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c); // UTF-8 bytes pass through
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null"; // JSON has no inf/nan
  constexpr double kExact = 9007199254740992.0; // 2^53
  if (v == std::floor(v) && std::fabs(v) <= kExact) {
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof buf, static_cast<long long>(v));
    return std::string(buf, r.ptr);
  }
  char buf[64];
  const auto r = std::to_chars(buf, buf + sizeof buf, v); // shortest round-trip
  return std::string(buf, r.ptr);
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += json_number(num_); break;
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Kind::kArray:
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += ']';
      break;
    case Kind::kObject:
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        out += '"';
        out += json_escape(members_[i].first);
        out += pretty ? "\": " : "\":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out += '}';
      break;
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --- Parser ------------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) error = msg + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) == lit) {
      pos += lit.size();
      return true;
    }
    return false;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return fail("bad escape");
        char e = text[pos++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // Encode the code point as UTF-8 (surrogate pairs unsupported —
            // the writer only emits \u for control characters).
            if (cp < 0x80) {
              *out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              *out += static_cast<char>(0xC0 | (cp >> 6));
              *out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (cp >> 12));
              *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        *out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue* out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == 'n') return literal("null") ? (*out = JsonValue{}, true) : fail("bad literal");
    if (c == 't') return literal("true") ? (*out = JsonValue(true), true) : fail("bad literal");
    if (c == 'f') return literal("false") ? (*out = JsonValue(false), true) : fail("bad literal");
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = JsonValue(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      *out = JsonValue::array();
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        JsonValue item;
        if (!parse_value(&item)) return false;
        out->push_back(std::move(item));
        skip_ws();
        if (consume(']')) return true;
        if (!consume(',')) return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos;
      *out = JsonValue::object();
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        JsonValue val;
        if (!parse_value(&val)) return false;
        (*out)[key] = std::move(val);
        skip_ws();
        if (consume('}')) return true;
        if (!consume(',')) return fail("expected ',' or '}'");
      }
    }
    // Number.
    double v = 0.0;
    const auto r = std::from_chars(text.data() + pos, text.data() + text.size(), v);
    if (r.ec != std::errc{}) return fail("bad number");
    pos = static_cast<std::size_t>(r.ptr - text.data());
    *out = JsonValue(v);
    return true;
  }
};

} // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  JsonValue v;
  if (!p.parse_value(&v)) {
    if (error) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error) *error = "trailing garbage at offset " + std::to_string(p.pos);
    return std::nullopt;
  }
  return v;
}

} // namespace daelite::sim
