#pragma once
// Sequential-state containers with two-phase (read-committed /
// mutate-next) semantics, for state shared between components within a
// cycle — e.g. an NI channel queue that a shell pushes into while the NI
// drains it. All reads observe the value committed at the previous clock
// edge; all mutations take effect at the next edge, and concurrent
// mutations commute (pops take from the committed front, pushes append),
// so evaluation order never matters.

#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/component.hpp"

namespace daelite::sim {

/// A FIFO register: hardware queue with committed reads and deferred
/// pushes/pops.
template <typename T>
class FifoReg : public RegBase {
 public:
  /// Committed occupancy (as of the last clock edge).
  std::size_t size() const { return committed_.size(); }
  bool empty() const { return committed_.empty(); }

  /// Committed element at position i (0 = front).
  const T& at(std::size_t i) const { return committed_[i]; }

  /// Entries that can still be popped this cycle.
  std::size_t poppable() const { return committed_.size() - pops_; }

  /// Entries pushed this cycle but not yet committed.
  std::size_t pending_pushes() const { return pushes_.size(); }

  /// Occupancy after this cycle's mutations commit.
  std::size_t next_size() const { return committed_.size() - pops_ + pushes_.size(); }

  /// Pop the next committed element (takes effect at the clock edge, but
  /// the value is returned immediately). Requires poppable() > 0.
  T pop() {
    assert(pops_ < committed_.size());
    return committed_[pops_++];
  }

  /// Append an element at the clock edge.
  void push(T v) { pushes_.push_back(std::move(v)); }

  /// Immediate reset (outside the tick phase only).
  void clear() {
    committed_.clear();
    pushes_.clear();
    pops_ = 0;
  }

  void commit_reg() override {
    committed_.erase(committed_.begin(),
                     committed_.begin() + static_cast<std::ptrdiff_t>(pops_));
    for (auto& v : pushes_) committed_.push_back(std::move(v));
    pops_ = 0;
    pushes_.clear();
  }

 private:
  std::deque<T> committed_;
  std::vector<T> pushes_;
  std::size_t pops_ = 0;
};

/// An up/down counter register: reads return the committed value; add/sub
/// accumulate a delta applied at the clock edge. Multiple actors may
/// add/sub in the same cycle without ordering effects.
class CounterReg : public RegBase {
 public:
  std::uint64_t get() const { return value_; }

  void add(std::uint64_t n) { delta_ += static_cast<std::int64_t>(n); }
  void sub(std::uint64_t n) { delta_ -= static_cast<std::int64_t>(n); }

  /// Immediate overwrite (outside the tick phase only).
  void force(std::uint64_t v) {
    value_ = v;
    delta_ = 0;
  }

  void commit_reg() override {
    const auto next = static_cast<std::int64_t>(value_) + delta_;
    assert(next >= 0 && "counter underflow");
    value_ = static_cast<std::uint64_t>(next);
    delta_ = 0;
  }

 private:
  std::uint64_t value_ = 0;
  std::int64_t delta_ = 0;
};

} // namespace daelite::sim
