#include "sim/component.hpp"

#include <utility>

#include "sim/kernel.hpp"

namespace daelite::sim {

Component::Component(Kernel& kernel, std::string name, Cadence cadence)
    : kernel_(&kernel), name_(std::move(name)), cadence_(cadence) {
  if (cadence_.stride == 0) cadence_.stride = 1;
  cadence_.phase %= cadence_.stride;
  kernel_->add(this);
}

Component::~Component() { kernel_->remove(this); }

void Component::commit() {
  for (RegBase* r : regs_) r->commit_reg();
}

Cycle Component::now() const { return kernel_->now(); }

} // namespace daelite::sim
