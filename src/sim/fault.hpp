#pragma once
// Deterministic fault injection for link registers.
//
// A FaultInjector is a Component that corrupts the *committed* value of
// watched link registers at the very end of the clock edge: it is
// constructed after every network element, so its commit() runs last in
// the cycle (both schedulers dispatch in registration order), after the
// producing element has committed the fresh word. Corruption uses
// Reg<T>::force(), so current and next value agree afterwards — downstream
// consumers read the corrupted word exactly once, the producer's next tick
// overwrites it, and a later re-commit of the register is a no-op. Faults
// therefore add no link latency: a run whose plan injects nothing is
// byte-identical to a run without an injector.
//
// Determinism: the injector draws from its own seeded xoshiro stream, one
// decision per *fresh word observed* (a line is only evaluated on the
// cycles its producer can commit a new word — `word_stride`), in fixed
// line-attachment order. Both kernel schedulers present the same words at
// the same cycles, and each batch job owns its injector, so fault streams
// are reproducible across schedulers and --jobs counts.
//
// A FaultPlan describes what to inject: a background per-word fault
// `rate`, plus targeted directives — drop / bit-flip the nth word of a
// class, stuck-at-1 a bit during a cycle window, or kill a link class
// (drop everything) during a window. Plans parse from a small line-based
// grammar (see FaultPlan::parse) so they can ride in a --fault-plan file.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/component.hpp"
#include "sim/random.hpp"
#include "sim/types.hpp"

namespace daelite::sim {

/// Which physical link population a fault targets.
enum class FaultClass : std::uint8_t {
  kData = 0,    ///< daelite data links (flits)
  kCfgFwd = 1,  ///< configuration-tree forward (broadcast) links
  kCfgResp = 2, ///< configuration-tree response (convergence) links
  kAelite = 3,  ///< aelite data links
};
inline constexpr std::size_t kFaultClassCount = 4;

constexpr std::uint32_t fault_class_bit(FaultClass c) {
  return 1u << static_cast<std::uint32_t>(c);
}
inline constexpr std::uint32_t kAllFaultClasses = 0xF;

std::string_view fault_class_name(FaultClass c);
bool parse_fault_class(std::string_view token, FaultClass* out);

/// One targeted fault. Drop/flip fire once, on the nth word (0-based,
/// counted per class across all of the class's lines in attachment order);
/// stuck/kill act on every word of the class inside [from, to).
///
/// A class token may carry a line suffix, `<class>@<index>`, restricting
/// the directive to one watched line (0-based within the class, in
/// attachment order — for daelite data links the index IS the topology
/// LinkId). With a line restriction, drop/flip count `nth` over that
/// line's words only. `kill data@7 1000 2000` is the single-link failure
/// the recovery subsystem routes around.
struct FaultDirective {
  enum class Kind : std::uint8_t { kDrop, kFlip, kStuck, kKill };
  Kind kind = Kind::kDrop;
  FaultClass cls = FaultClass::kData;
  std::int64_t line_index = -1; ///< -1: every line of the class
  std::uint64_t nth = 0;  ///< drop/flip: which word of the class (or line)
  std::uint32_t bit = 0;  ///< flip/stuck: bit index (reduced mod line width)
  Cycle from = 0;         ///< stuck/kill: window start (inclusive)
  Cycle to = kNoCycle;    ///< stuck/kill: window end (exclusive)
};

/// A complete, self-contained fault description (the --fault-* CLI state).
///
/// Grammar (one entry per line, '#' starts a comment):
///   seed <N>
///   rate <R>                      # per-word fault probability, [0,1]
///   drop  <class> <nth>
///   flip  <class> <nth> <bit>
///   stuck <class> <bit> [<from> <to>]
///   kill  <class> <from> <to>
/// with <class> one of: data, cfg_fwd, cfg_resp, aelite, optionally
/// suffixed `@<line>` to target a single watched line of the class.
/// Malformed input — unknown directives or classes, non-numeric or
/// negative numbers, windows with to <= from, trailing tokens — is
/// rejected with a line + token diagnostic, never silently ignored.
struct FaultPlan {
  std::uint64_t seed = 1;
  double rate = 0.0;
  std::vector<FaultDirective> directives;

  bool enabled() const { return rate > 0.0 || !directives.empty(); }

  static bool parse(std::istream& in, FaultPlan* out, std::string* error);
  static bool parse_text(const std::string& text, FaultPlan* out, std::string* error);
  static bool parse_file(const std::string& path, FaultPlan* out, std::string* error);
};

/// One watched link register, type-erased. present() inspects the
/// committed value; the mutators rewrite it in place via Reg<T>::force().
class FaultLine {
 public:
  virtual ~FaultLine() = default;
  virtual bool present() const = 0;
  virtual void drop() = 0;
  virtual void flip_bit(std::uint32_t bit) = 0;
  virtual void force_bit(std::uint32_t bit) = 0; ///< stuck-at-1
  virtual std::uint32_t bit_count() const = 0;   ///< flippable payload bits
};

/// Adapter binding a Reg<T> to a word-format Policy:
///   static bool present(const T&);
///   static void flip(T&, std::uint32_t bit);
///   static void force_one(T&, std::uint32_t bit);
///   static constexpr std::uint32_t kBits;
/// drop() rewrites the register with a default-constructed ("invalid") T.
template <typename T, typename Policy>
class RegFaultLine final : public FaultLine {
 public:
  explicit RegFaultLine(Reg<T>& reg) : reg_(&reg) {}

  bool present() const override { return Policy::present(reg_->get()); }
  void drop() override { reg_->force(T{}); }
  void flip_bit(std::uint32_t bit) override {
    T v = reg_->get();
    Policy::flip(v, bit);
    reg_->force(v);
  }
  void force_bit(std::uint32_t bit) override {
    T v = reg_->get();
    Policy::force_one(v, bit);
    reg_->force(v);
  }
  std::uint32_t bit_count() const override { return Policy::kBits; }

 private:
  Reg<T>* reg_;
};

/// Everything the injector did, for the report `health` section.
struct FaultCounters {
  std::uint64_t words_seen = 0; ///< fresh words observed on watched lines
  std::uint64_t injected = 0;   ///< faults applied (sum of the four below)
  std::uint64_t dropped = 0;
  std::uint64_t flipped = 0;
  std::uint64_t stuck = 0;
  std::uint64_t killed = 0;

  void add(const FaultCounters& o);
};

class FaultInjector : public Component {
 public:
  /// Construct AFTER every component whose registers will be watched —
  /// registration order is commit order, and the injector must commit last.
  FaultInjector(Kernel& k, std::string name, FaultPlan plan);

  /// Watch one line. word_stride/word_phase describe the cycles at which
  /// the producer can commit a fresh word (cycle % stride == phase):
  /// stride 1 for per-cycle configuration links, words_per_slot for
  /// slot-aligned data links. Attachment order is part of the deterministic
  /// RNG stream — keep it fixed (topology order).
  void add_line(FaultClass cls, std::unique_ptr<FaultLine> line, std::uint32_t word_stride = 1,
                std::uint32_t word_phase = 0);

  template <typename Policy, typename T>
  void watch(FaultClass cls, Reg<T>& reg, std::uint32_t word_stride = 1,
             std::uint32_t word_phase = 0) {
    add_line(cls, std::make_unique<RegFaultLine<T, Policy>>(reg), word_stride, word_phase);
  }

  std::size_t line_count() const { return lines_.size(); }
  const FaultPlan& plan() const { return plan_; }

  const FaultCounters& counters() const { return total_; }
  const FaultCounters& counters(FaultClass c) const {
    return per_class_[static_cast<std::size_t>(c)];
  }

  /// Combinational phase: nothing to do — all injection happens after the
  /// clock edge, in commit().
  void tick() override {}

  /// Commit (no own()ed registers), then corrupt the freshly committed
  /// words per the plan.
  void commit() override;

  /// No watched line holds a word: with the whole network quiescent there
  /// is nothing to corrupt and no RNG draw to make, so the kernel's
  /// fixed-point fast-forward stays exact.
  bool quiescent() const override;

 private:
  struct Line {
    std::unique_ptr<FaultLine> line;
    FaultClass cls = FaultClass::kData;
    std::uint32_t stride = 1;
    std::uint32_t phase = 0;
    std::uint64_t class_index = 0; ///< position within the class (directive `@` target)
    std::uint64_t words_seen = 0;  ///< line-local word count (nth with `@`)
  };

  void inject(Line& l, FaultCounters& cc);

  FaultPlan plan_;
  Xoshiro256 rng_;
  std::vector<Line> lines_;
  std::vector<bool> directive_done_; ///< drop/flip directives already fired
  FaultCounters total_;
  std::array<FaultCounters, kFaultClassCount> per_class_;
};

} // namespace daelite::sim
