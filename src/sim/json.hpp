#pragma once
// Minimal JSON document model and writer for machine-readable metrics.
//
// Every experiment artifact (batch runs, bench tables, CI regression
// baselines) serializes through this layer so results can be diffed by
// tools instead of scraped from stdout. Two properties matter more than
// generality:
//   * deterministic output — objects preserve insertion order and numbers
//     format via shortest-round-trip std::to_chars, so the same run
//     produces byte-identical documents regardless of thread count;
//   * no external dependency — the container ships no JSON library.
// A small recursive-descent parser is included for round-trip tests and
// for tools that diff previously emitted metrics.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace daelite::sim {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double v) : kind_(Kind::kNumber), num_(v) {}
  JsonValue(int v) : kind_(Kind::kNumber), num_(v) {}
  JsonValue(unsigned v) : kind_(Kind::kNumber), num_(v) {}
  JsonValue(std::int64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  JsonValue(std::uint64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }

  /// Array element count / object member count.
  std::size_t size() const {
    return kind_ == Kind::kArray ? items_.size() : kind_ == Kind::kObject ? members_.size() : 0;
  }

  /// Append to an array (converts a null value into an array first).
  void push_back(JsonValue v);
  const JsonValue& at(std::size_t i) const { return items_[i]; }

  /// Object insert-or-lookup, preserving insertion order (converts a null
  /// value into an object first).
  JsonValue& operator[](const std::string& key);
  /// Lookup without insertion; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const { return members_; }

  /// Serialize. indent < 0 is compact single-line; indent >= 0 pretty-prints
  /// with that many spaces per level. Output is fully deterministic.
  std::string dump(int indent = -1) const;

  /// Parse a complete document; trailing non-whitespace is an error.
  static std::optional<JsonValue> parse(std::string_view text, std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escape a string for embedding in a JSON document (no surrounding quotes).
std::string json_escape(std::string_view s);

/// Deterministic number formatting: integral doubles in [-2^53, 2^53] print
/// without a decimal point, everything else via shortest-round-trip.
std::string json_number(double v);

} // namespace daelite::sim
