#pragma once
// Joint space-time allocation (UMARS-style, after Hansson et al.'s
// Æthereal allocator): instead of fixing a path first and then looking
// for slots on it, search the path and the injection-slot set together.
//
// Search state: (node, F) where F is the set of injection slots q that
// are still free on *every* link of the partial path. Extending the path
// by link l at depth d intersects F with the slots free on l (mapped
// back through the d-slot shift). A state is kept only if it is
// Pareto-maximal at its node: another state with a superset F and
// shorter-or-equal depth dominates it. The first state reaching the
// destination with |F| >= required slots wins (breadth-first order, so
// minimal hop count among feasible combinations).
//
// This finds allocations the fixed-path allocator misses: when every
// individual shortest path has too few aligned free slots, a slightly
// longer path — or the same length through different links — may carry
// the demand. The fixed-path allocator approximates this with k-shortest
// candidates; the joint search is exact up to the depth bound.

#include <cstdint>
#include <optional>

#include "alloc/allocator.hpp"
#include "alloc/route.hpp"

namespace daelite::alloc {

struct JointSearchStats {
  std::size_t states_expanded = 0;
  std::size_t states_pruned = 0;
};

/// Find a unicast route for `spec` by joint path/slot search against the
/// allocator's current schedule, and commit it through the allocator's
/// raw interface. `max_depth` bounds the detour length (default: 4x the
/// shortest path). Returns the committed route or nullopt.
std::optional<RouteTree> allocate_joint(SlotAllocator& alloc, const ChannelSpec& spec,
                                        std::size_t max_depth = 0,
                                        JointSearchStats* stats = nullptr);

} // namespace daelite::alloc
