#include "alloc/switching.hpp"

#include <algorithm>

namespace daelite::alloc {

bool specs_equal(const ConnectionSpec& a, const ConnectionSpec& b) {
  return a.name == b.name && a.src_ni == b.src_ni && a.dst_nis == b.dst_nis &&
         a.request_slots == b.request_slots && a.response_slots == b.response_slots;
}

SwitchPlan plan_use_case_switch(const UseCaseAllocation& from, const UseCase& to) {
  SwitchPlan plan;
  std::vector<bool> matched_to(to.connections.size(), false);

  for (const AllocatedConnection& conn : from.connections) {
    bool kept = false;
    for (std::size_t i = 0; i < to.connections.size(); ++i) {
      if (!matched_to[i] && specs_equal(conn.spec, to.connections[i])) {
        matched_to[i] = true;
        plan.keep.push_back(conn);
        kept = true;
        break;
      }
    }
    if (!kept) plan.tear_down.push_back(conn);
  }
  for (std::size_t i = 0; i < to.connections.size(); ++i)
    if (!matched_to[i]) plan.set_up.push_back(to.connections[i]);
  return plan;
}

std::optional<UseCaseAllocation> execute_use_case_switch(SlotAllocator& alloc,
                                                         const UseCaseAllocation& from,
                                                         const UseCase& to, SwitchPlan* plan_out,
                                                         std::string* failed) {
  SwitchPlan plan = plan_use_case_switch(from, to);

  // Release the connections leaving the use-case.
  for (const AllocatedConnection& conn : plan.tear_down) {
    alloc.release(conn.request);
    if (conn.has_response) alloc.release(conn.response);
  }

  // Allocate the new ones.
  UseCase additions;
  additions.name = to.name;
  additions.connections = plan.set_up;
  auto added = allocate_use_case(alloc, additions, failed);

  if (!added) {
    // Transactional roll-back: restore the torn-down reservations exactly.
    for (const AllocatedConnection& conn : plan.tear_down) {
      const bool ok = alloc.restore(conn.request) &&
                      (!conn.has_response || alloc.restore(conn.response));
      (void)ok; // cannot fail: we just released these exact slots
    }
    return std::nullopt;
  }

  UseCaseAllocation result;
  result.connections = plan.keep;
  for (auto& c : added->connections) result.connections.push_back(std::move(c));
  result.schedule_utilization = alloc.schedule().utilization();
  if (plan_out) *plan_out = std::move(plan);
  return result;
}

} // namespace daelite::alloc
