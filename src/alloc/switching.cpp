#include "alloc/switching.hpp"

#include <algorithm>

namespace daelite::alloc {

bool specs_equal(const ConnectionSpec& a, const ConnectionSpec& b) {
  return a.name == b.name && a.src_ni == b.src_ni && a.dst_nis == b.dst_nis &&
         a.request_slots == b.request_slots && a.response_slots == b.response_slots;
}

SwitchPlan plan_use_case_switch(const UseCaseAllocation& from, const UseCase& to) {
  SwitchPlan plan;
  std::vector<bool> matched_to(to.connections.size(), false);

  for (const AllocatedConnection& conn : from.connections) {
    bool kept = false;
    for (std::size_t i = 0; i < to.connections.size(); ++i) {
      if (!matched_to[i] && specs_equal(conn.spec, to.connections[i])) {
        matched_to[i] = true;
        plan.keep.push_back(conn);
        kept = true;
        break;
      }
    }
    if (!kept) plan.tear_down.push_back(conn);
  }
  for (std::size_t i = 0; i < to.connections.size(); ++i)
    if (!matched_to[i]) plan.set_up.push_back(to.connections[i]);
  return plan;
}

std::optional<UseCaseAllocation> execute_use_case_switch(SlotAllocator& alloc,
                                                         const UseCaseAllocation& from,
                                                         const UseCase& to, SwitchPlan* plan_out,
                                                         std::string* failed) {
  SwitchPlan plan = plan_use_case_switch(from, to);

  // Release the connections leaving the use-case.
  for (const AllocatedConnection& conn : plan.tear_down) {
    alloc.release(conn.request);
    if (conn.has_response) alloc.release(conn.response);
  }

  // Allocate the new ones.
  UseCase additions;
  additions.name = to.name;
  additions.connections = plan.set_up;
  auto added = allocate_use_case(alloc, additions, failed);

  if (!added) {
    // Transactional roll-back. Order matters: allocate_use_case has rolled
    // its partially-committed additions back before returning, so the
    // torn-down reservations' slots are free again *unless an external
    // actor claimed them in the meantime* (raw reservations, a concurrent
    // mirror, or a caller whose `from` no longer matches the allocator).
    // Restore each connection's request+response as a unit: a connection
    // whose response cannot be restored must not keep its request
    // committed — traffic would flow one way with no credit path and no
    // owner left to release the request's slots.
    std::string rollback_failed;
    for (const AllocatedConnection& conn : plan.tear_down) {
      if (!alloc.restore(conn.request)) {
        if (rollback_failed.empty()) rollback_failed = conn.spec.name;
        continue;
      }
      if (conn.has_response && !alloc.restore(conn.response)) {
        alloc.release(conn.request);
        if (rollback_failed.empty()) rollback_failed = conn.spec.name;
      }
    }
    if (!rollback_failed.empty() && failed) {
      // Surface the incomplete roll-back instead of silently reporting
      // "allocator restored to the pre-switch state".
      *failed += " (rollback incomplete: " + rollback_failed + ")";
    }
    return std::nullopt;
  }

  UseCaseAllocation result;
  result.connections = plan.keep;
  for (auto& c : added->connections) result.connections.push_back(std::move(c));
  result.schedule_utilization = alloc.schedule().utilization();
  if (plan_out) *plan_out = std::move(plan);
  return result;
}

} // namespace daelite::alloc
