#include "alloc/churn.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>

namespace daelite::alloc {

std::uint64_t worst_case_latency_cycles(const RouteTree& route, const tdm::TdmParams& params) {
  if (route.inject_slots.empty()) return 0;
  // Longest circular gap between consecutive owned injection slots: a word
  // that becomes ready just after an owned slot starts waits that many
  // slots for the next one.
  const auto& q = route.inject_slots; // sorted ascending
  std::uint32_t max_gap = q.front() + params.num_slots - q.back();
  for (std::size_t i = 0; i + 1 < q.size(); ++i) max_gap = std::max(max_gap, q[i + 1] - q[i]);
  std::uint32_t max_depth = 0;
  for (const RouteEdge& e : route.edges) max_depth = std::max(max_depth, e.depth);
  // With n links to the deepest destination its NI is pipeline element n,
  // acting n*shift slots (= n*hop_cycles cycles) after injection.
  const std::uint64_t pipeline =
      route.edges.empty() ? 0 : std::uint64_t(max_depth + 1) * params.hop_cycles;
  return std::uint64_t(max_gap) * params.words_per_slot + pipeline;
}

ChurnService::ChurnService(SlotAllocator& alloc, AdmissionControl admission)
    : alloc_(&alloc), admission_(admission) {}

const AllocatedConnection* ChurnService::connection(std::uint64_t id) const {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

bool ChurnService::admit_route(const RouteTree& route) const {
  if (admission_.max_path_hops != 0) {
    std::uint32_t max_depth = 0;
    for (const RouteEdge& e : route.edges) max_depth = std::max(max_depth, e.depth);
    const std::uint32_t hops = route.edges.empty() ? 0 : max_depth + 1;
    if (hops > admission_.max_path_hops) return false;
  }
  if (admission_.max_latency_cycles != 0 &&
      worst_case_latency_cycles(route, alloc_->params()) > admission_.max_latency_cycles)
    return false;
  return true;
}

bool ChurnService::reject_was_fragmentation(const ChannelSpec& spec) {
  // Capacity vs alignment: if some candidate path has >= slots_required
  // free slots on *every* link yet the allocation failed, the slots exist
  // but no injection slot lines them up — fragmentation, not exhaustion.
  // (For multicast the trunk to the first destination is checked; branch
  // links add further constraints, so this is a lower bound on the
  // fragmentation count.)
  for (const topo::Path& p : alloc_->candidate_paths(spec.src_ni, spec.dst_nis.front())) {
    if (p.links.empty()) continue;
    std::uint32_t min_free = std::numeric_limits<std::uint32_t>::max();
    for (topo::LinkId l : p.links) min_free = std::min(min_free, alloc_->link_free_slots(l));
    if (min_free >= spec.slots_required) return true;
  }
  return false;
}

ChurnService::Result ChurnService::allocate_connection(const ConnectionSpec& spec,
                                                       AllocatedConnection* out) {
  last_no_route_was_frag_ = false;
  const bool multicast = spec.dst_nis.size() > 1;
  const std::uint32_t resp_slots = multicast ? 0 : spec.response_slots;

  if (admission_.max_request_slots != 0 && (spec.request_slots > admission_.max_request_slots ||
                                            resp_slots > admission_.max_request_slots))
    return {ChurnStatus::kRejectedAdmission, 0};
  if (alloc_->utilization() > admission_.max_utilization)
    return {ChurnStatus::kRejectedAdmission, 0};

  ChannelSpec req;
  req.src_ni = spec.src_ni;
  req.dst_nis = spec.dst_nis;
  req.slots_required = spec.request_slots;
  auto r = alloc_->allocate(req);
  if (!r) {
    last_no_route_was_frag_ = reject_was_fragmentation(req);
    return {ChurnStatus::kRejectedNoRoute, 0};
  }
  if (!admit_route(*r)) {
    alloc_->release(*r);
    return {ChurnStatus::kRejectedAdmission, 0};
  }
  out->spec = spec;
  out->request = std::move(*r);
  out->has_response = false;

  if (resp_slots > 0) {
    ChannelSpec resp;
    resp.src_ni = spec.dst_nis.front();
    resp.dst_nis = {spec.src_ni};
    resp.slots_required = resp_slots;
    auto rr = alloc_->allocate(resp);
    if (!rr) {
      // Classified *before* releasing the request: the response failed in
      // the state that actually rejected it.
      last_no_route_was_frag_ = reject_was_fragmentation(resp);
      alloc_->release(out->request);
      return {ChurnStatus::kRejectedNoRoute, 0};
    }
    if (!admit_route(*rr)) {
      alloc_->release(*rr);
      alloc_->release(out->request);
      return {ChurnStatus::kRejectedAdmission, 0};
    }
    out->response = std::move(*rr);
    out->has_response = true;
  }
  return {ChurnStatus::kAdmitted, 0};
}

ChurnService::Result ChurnService::set_up(const ConnectionSpec& spec) {
  metrics_.setups.inc();
  AllocatedConnection conn;
  Result r = allocate_connection(spec, &conn);
  switch (r.status) {
    case ChurnStatus::kAdmitted: {
      metrics_.admitted.inc();
      metrics_.admitted_hops.add(conn.request.edges.size());
      const std::uint64_t id = next_id_++;
      conn.id = static_cast<tdm::ConnectionId>(id);
      r.connection = id;
      live_index_[id] = live_order_.size();
      live_order_.push_back(id);
      conns_.emplace(id, std::move(conn));
      break;
    }
    case ChurnStatus::kRejectedAdmission:
      metrics_.rejected_admission.inc();
      break;
    default:
      metrics_.rejected_no_route.inc();
      if (last_no_route_was_frag_) metrics_.rejected_fragmentation.inc();
      break;
  }
  return r;
}

ChurnStatus ChurnService::tear_down(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return ChurnStatus::kUnknownConnection;
  metrics_.teardowns.inc();
  alloc_->release(it->second.request);
  if (it->second.has_response) alloc_->release(it->second.response);
  unlink_live(id);
  conns_.erase(it);
  return ChurnStatus::kAdmitted;
}

ChurnService::Result ChurnService::modify(std::uint64_t id, std::uint32_t request_slots,
                                          std::uint32_t response_slots) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return {ChurnStatus::kUnknownConnection, 0};
  metrics_.modifies.inc();

  // Transactional: release the old reservations, allocate the new
  // bandwidth under admission control, restore exactly on failure.
  const AllocatedConnection old = it->second;
  alloc_->release(old.request);
  if (old.has_response) alloc_->release(old.response);

  ConnectionSpec spec = old.spec;
  spec.request_slots = request_slots;
  spec.response_slots = response_slots;

  AllocatedConnection fresh;
  Result r = allocate_connection(spec, &fresh);
  if (r.status == ChurnStatus::kAdmitted) {
    fresh.id = old.id;
    it->second = std::move(fresh);
    r.connection = id;
    return r;
  }
  // Roll back: the failed allocation released its own partial state, so
  // the old routes' slots are free again and restore cannot fail unless an
  // external actor raced us. Request and response restore as a unit (the
  // same order-safety rule the use-case switch roll-back follows).
  bool restored = alloc_->restore(old.request);
  if (restored && old.has_response && !alloc_->restore(old.response)) {
    alloc_->release(old.request);
    restored = false;
  }
  if (restored) {
    metrics_.modify_failed_restored.inc();
  } else {
    // The connection is gone; dropping it from the live set keeps the
    // bookkeeping truthful instead of leaving a dangling id.
    metrics_.rollback_failures.inc();
    unlink_live(id);
    conns_.erase(it);
  }
  return r;
}

void ChurnService::unlink_live(std::uint64_t id) {
  const std::size_t idx = live_index_.at(id);
  const std::uint64_t last = live_order_.back();
  live_order_[idx] = last;
  live_index_[last] = idx;
  live_order_.pop_back();
  live_index_.erase(id);
}

double ChurnService::sample_fragmentation(const std::vector<topo::Path>& probes) {
  double acc = 0.0;
  std::size_t sampled = 0;
  for (const topo::Path& p : probes) {
    if (p.links.empty()) continue;
    std::uint32_t min_free = std::numeric_limits<std::uint32_t>::max();
    for (topo::LinkId l : p.links) min_free = std::min(min_free, alloc_->link_free_slots(l));
    if (min_free == 0) continue; // no capacity left: exhaustion, not fragmentation
    const RouteTree shape = RouteTree::from_path(alloc_->topology(), p, {});
    const std::size_t aligned = alloc_->free_inject_slots(shape).size();
    acc += 1.0 - double(std::min<std::size_t>(aligned, min_free)) / double(min_free);
    ++sampled;
  }
  const double frag = sampled ? acc / double(sampled) : 0.0;
  metrics_.fragmentation.set(frag);
  metrics_.utilization.set(alloc_->utilization());
  return frag;
}

// --- Open-loop workload ------------------------------------------------------

ChurnWorkload::ChurnWorkload(std::vector<topo::NodeId> endpoints, ChurnWorkloadOptions options)
    : endpoints_(std::move(endpoints)), opt_(options), rng_(options.seed) {
  assert(endpoints_.size() >= 2 && "churn workload needs at least two NIs");
  assert(opt_.arrival_rate > 0.0 && opt_.mean_hold_cycles > 0.0);
  assert(opt_.min_slots >= 1 && opt_.min_slots <= opt_.max_slots);
  next_arrival_ = -std::log(1.0 - rng_.uniform()) / opt_.arrival_rate;
}

ConnectionSpec ChurnWorkload::draw_spec() {
  ConnectionSpec s;
  s.name = "r" + std::to_string(seq_++);
  s.src_ni = endpoints_[rng_.below(endpoints_.size())];
  std::uint32_t fanout = 1;
  if (opt_.max_fanout >= 2 && endpoints_.size() >= 3 && rng_.chance(opt_.multicast_fraction)) {
    const auto cap = std::min<std::uint64_t>(opt_.max_fanout, endpoints_.size() - 1);
    fanout = static_cast<std::uint32_t>(rng_.range(2, cap));
  }
  while (s.dst_nis.size() < fanout) {
    const topo::NodeId d = endpoints_[rng_.below(endpoints_.size())];
    if (d == s.src_ni) continue;
    if (std::find(s.dst_nis.begin(), s.dst_nis.end(), d) != s.dst_nis.end()) continue;
    s.dst_nis.push_back(d);
  }
  s.request_slots = static_cast<std::uint32_t>(rng_.range(opt_.min_slots, opt_.max_slots));
  s.response_slots = fanout > 1 ? 0 : opt_.response_slots;
  return s;
}

ChurnWorkload::Op ChurnWorkload::next(const ChurnService& service) {
  // Expired connections tear down before the next arrival. Entries whose
  // connection already died (a failed modify whose roll-back failed) are
  // skipped — the heap holds the workload's view, the service's is truth.
  while (!expiry_.empty() && expiry_.front().first <= next_arrival_) {
    std::pop_heap(expiry_.begin(), expiry_.end(), std::greater<>{});
    const auto [t, id] = expiry_.back();
    expiry_.pop_back();
    if (service.connection(id) == nullptr) continue;
    now_ = t;
    Op op;
    op.kind = Op::Kind::kTearDown;
    op.time = t;
    op.connection = id;
    return op;
  }

  now_ = next_arrival_;
  next_arrival_ = now_ - std::log(1.0 - rng_.uniform()) / opt_.arrival_rate;

  Op op;
  op.time = now_;
  if (service.live_connections() > 0 && rng_.chance(opt_.modify_fraction)) {
    op.kind = Op::Kind::kModify;
    op.connection = service.live_id_at(rng_.below(service.live_connections()));
    op.request_slots = static_cast<std::uint32_t>(rng_.range(opt_.min_slots, opt_.max_slots));
    op.response_slots = opt_.response_slots;
    return op;
  }
  op.kind = Op::Kind::kSetUp;
  op.spec = draw_spec();
  pending_hold_ = -std::log(1.0 - rng_.uniform()) * opt_.mean_hold_cycles;
  return op;
}

void ChurnWorkload::on_setup_result(const ChurnService::Result& r) {
  if (pending_hold_ && r.status == ChurnStatus::kAdmitted) {
    expiry_.emplace_back(now_ + *pending_hold_, r.connection);
    std::push_heap(expiry_.begin(), expiry_.end(), std::greater<>{});
  }
  pending_hold_.reset();
}

// --- Replay harness ----------------------------------------------------------

namespace {

/// FNV-1a over the 8 bytes of v, little-endian.
void fnv_mix(std::uint64_t& digest, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    digest ^= (v >> (8 * i)) & 0xff;
    digest *= 1099511628211ull;
  }
}

void fnv_mix_route(std::uint64_t& digest, const RouteTree& r) {
  fnv_mix(digest, r.channel);
  for (tdm::Slot s : r.inject_slots) fnv_mix(digest, s);
}

} // namespace

ChurnReport run_churn(SlotAllocator& alloc, const ChurnRunOptions& options) {
  using Clock = std::chrono::steady_clock;

  ChurnReport report;
  ChurnService service(alloc, options.admission);
  const auto endpoints = alloc.topology().nodes_of_kind(topo::NodeKind::kNi);
  ChurnWorkload workload(endpoints, options.workload);

  // Probe paths for the fragmentation gauge: deterministic, drawn from a
  // stream independent of the request workload's so changing the sample
  // count never perturbs the decisions.
  std::vector<topo::Path> probes;
  if (endpoints.size() >= 2 && options.probe_paths > 0) {
    sim::Xoshiro256 prng(options.workload.seed ^ 0x66726167676175ull); // "fraggau"
    const topo::PathFinder finder(alloc.topology());
    while (probes.size() < options.probe_paths) {
      const topo::NodeId a = endpoints[prng.below(endpoints.size())];
      const topo::NodeId b = endpoints[prng.below(endpoints.size())];
      if (a == b) continue;
      topo::Path p = finder.shortest(a, b);
      if (!p.links.empty()) probes.push_back(std::move(p));
    }
  }

  const std::uint64_t sample_every = std::max<std::uint64_t>(
      1, options.requests / std::max<std::size_t>(1, options.fragmentation_samples));

  std::uint64_t digest = 14695981039346656037ull;
  const auto wall_start = Clock::now();

  for (std::uint64_t i = 0; i < options.requests; ++i) {
    const ChurnWorkload::Op op = workload.next(service);
    const auto t0 = options.measure_latency ? Clock::now() : Clock::time_point{};

    ChurnService::Result r;
    switch (op.kind) {
      case ChurnWorkload::Op::Kind::kSetUp:
        r = service.set_up(op.spec);
        workload.on_setup_result(r);
        break;
      case ChurnWorkload::Op::Kind::kTearDown:
        r.status = service.tear_down(op.connection);
        r.connection = op.connection;
        break;
      case ChurnWorkload::Op::Kind::kModify:
        r = service.modify(op.connection, op.request_slots, op.response_slots);
        break;
    }

    if (options.measure_latency) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0);
      report.request_latency_ns.add(static_cast<std::uint64_t>(ns.count()));
    }

    fnv_mix(digest, static_cast<std::uint64_t>(op.kind));
    fnv_mix(digest, static_cast<std::uint64_t>(r.status));
    if (r.status == ChurnStatus::kAdmitted && op.kind != ChurnWorkload::Op::Kind::kTearDown) {
      const AllocatedConnection* c = service.connection(r.connection);
      assert(c != nullptr);
      fnv_mix_route(digest, c->request);
      if (c->has_response) fnv_mix_route(digest, c->response);
      if (op.kind == ChurnWorkload::Op::Kind::kSetUp && options.on_admit) options.on_admit(*c);
    }

    if (i % sample_every == 0 || i + 1 == options.requests) {
      const double frag = service.sample_fragmentation(probes);
      report.frag_timeline.push_back({i, alloc.utilization(), frag});
    }
  }

  report.wall_seconds = std::chrono::duration<double>(Clock::now() - wall_start).count();
  report.metrics = service.metrics();
  report.decision_digest = digest;
  report.final_utilization = alloc.utilization();
  report.final_live = service.live_connections();
  report.channel_id_watermark = alloc.channel_id_watermark();
  return report;
}

} // namespace daelite::alloc
