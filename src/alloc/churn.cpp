#include "alloc/churn.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>

namespace daelite::alloc {

namespace {

/// FNV-1a over the 8 bytes of v, little-endian.
void fnv_mix(std::uint64_t& digest, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    digest ^= (v >> (8 * i)) & 0xff;
    digest *= 1099511628211ull;
  }
}

void fnv_mix_route(std::uint64_t& digest, const RouteTree& r) {
  fnv_mix(digest, r.channel);
  for (tdm::Slot s : r.inject_slots) fnv_mix(digest, s);
}

} // namespace

std::uint64_t worst_case_latency_cycles(const RouteTree& route, const tdm::TdmParams& params) {
  if (route.inject_slots.empty()) return 0;
  // Longest circular gap between consecutive owned injection slots: a word
  // that becomes ready just after an owned slot starts waits that many
  // slots for the next one.
  const auto& q = route.inject_slots; // sorted ascending
  std::uint32_t max_gap = q.front() + params.num_slots - q.back();
  for (std::size_t i = 0; i + 1 < q.size(); ++i) max_gap = std::max(max_gap, q[i + 1] - q[i]);
  std::uint32_t max_depth = 0;
  for (const RouteEdge& e : route.edges) max_depth = std::max(max_depth, e.depth);
  // With n links to the deepest destination its NI is pipeline element n,
  // acting n*shift slots (= n*hop_cycles cycles) after injection.
  const std::uint64_t pipeline =
      route.edges.empty() ? 0 : std::uint64_t(max_depth + 1) * params.hop_cycles;
  return std::uint64_t(max_gap) * params.words_per_slot + pipeline;
}

ChurnService::ChurnService(SlotAllocator& alloc, AdmissionControl admission)
    : alloc_(&alloc), admission_(admission) {}

const AllocatedConnection* ChurnService::connection(std::uint64_t id) const {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

bool ChurnService::admit_route(const RouteTree& route) const {
  if (admission_.max_path_hops != 0) {
    std::uint32_t max_depth = 0;
    for (const RouteEdge& e : route.edges) max_depth = std::max(max_depth, e.depth);
    const std::uint32_t hops = route.edges.empty() ? 0 : max_depth + 1;
    if (hops > admission_.max_path_hops) return false;
  }
  if (admission_.max_latency_cycles != 0 &&
      worst_case_latency_cycles(route, alloc_->params()) > admission_.max_latency_cycles)
    return false;
  return true;
}

bool ChurnService::reject_was_fragmentation(const ChannelSpec& spec) {
  // Capacity vs alignment: if some candidate path has >= slots_required
  // free slots on *every* link yet the allocation failed, the slots exist
  // but no injection slot lines them up — fragmentation, not exhaustion.
  // (For multicast the trunk to the first destination is checked; branch
  // links add further constraints, so this is a lower bound on the
  // fragmentation count.)
  for (const topo::Path& p : alloc_->candidate_paths(spec.src_ni, spec.dst_nis.front())) {
    if (p.links.empty()) continue;
    std::uint32_t min_free = std::numeric_limits<std::uint32_t>::max();
    for (topo::LinkId l : p.links) min_free = std::min(min_free, alloc_->link_free_slots(l));
    if (min_free >= spec.slots_required) return true;
  }
  return false;
}

ChurnService::Result ChurnService::allocate_connection(const ConnectionSpec& spec,
                                                       AllocatedConnection* out,
                                                       bool new_connection) {
  last_no_route_was_frag_ = false;
  const bool multicast = spec.dst_nis.size() > 1;
  const std::uint32_t resp_slots = multicast ? 0 : spec.response_slots;

  if (admission_.max_request_slots != 0 && (spec.request_slots > admission_.max_request_slots ||
                                            resp_slots > admission_.max_request_slots))
    return {ChurnStatus::kRejectedAdmission, 0};
  if (alloc_->utilization() > admission_.max_utilization)
    return {ChurnStatus::kRejectedAdmission, 0};
  if (new_connection) {
    // Per-class quota: modify/compact re-admissions skip it — the class
    // population does not grow there.
    const auto& q = admission_.quota[static_cast<std::size_t>(spec.service_class)];
    if (q.max_live != 0 && live_of_class(spec.service_class) >= q.max_live)
      return {ChurnStatus::kRejectedAdmission, 0};
    if (alloc_->utilization() > q.max_utilization) return {ChurnStatus::kRejectedAdmission, 0};
  }

  ChannelSpec req;
  req.src_ni = spec.src_ni;
  req.dst_nis = spec.dst_nis;
  req.slots_required = spec.request_slots;
  req.service_class = spec.service_class;
  auto r = alloc_->allocate(req);
  if (!r) {
    last_no_route_was_frag_ = reject_was_fragmentation(req);
    return {ChurnStatus::kRejectedNoRoute, 0};
  }
  if (!admit_route(*r)) {
    alloc_->release(*r);
    return {ChurnStatus::kRejectedAdmission, 0};
  }
  out->spec = spec;
  out->request = std::move(*r);
  out->has_response = false;

  if (resp_slots > 0) {
    ChannelSpec resp;
    resp.src_ni = spec.dst_nis.front();
    resp.dst_nis = {spec.src_ni};
    resp.slots_required = resp_slots;
    resp.service_class = spec.service_class;
    auto rr = alloc_->allocate(resp);
    if (!rr) {
      // Classified *before* releasing the request: the response failed in
      // the state that actually rejected it.
      last_no_route_was_frag_ = reject_was_fragmentation(resp);
      alloc_->release(out->request);
      return {ChurnStatus::kRejectedNoRoute, 0};
    }
    if (!admit_route(*rr)) {
      alloc_->release(*rr);
      alloc_->release(out->request);
      return {ChurnStatus::kRejectedAdmission, 0};
    }
    out->response = std::move(*rr);
    out->has_response = true;
  }
  return {ChurnStatus::kAdmitted, 0};
}

ChurnService::Result ChurnService::preempt_and_retry(const ConnectionSpec& spec,
                                                     AllocatedConnection* out) {
  Result r{ChurnStatus::kRejectedNoRoute, 0};
  const bool multicast = spec.dst_nis.size() > 1;
  if (multicast) return r; // plan_preemption is unicast-only
  const auto preemptable = [&](tdm::ChannelId ch) {
    const auto it = channel_owner_.find(ch);
    if (it == channel_owner_.end()) return false;
    return conns_.at(it->second).spec.service_class == ServiceClass::kBestEffort;
  };
  // Two rounds: the request channel may need one pass, then the response
  // channel another (each retry re-diagnoses which one still fails).
  for (int round = 0; round < 2; ++round) {
    ChannelSpec req{spec.src_ni, spec.dst_nis, spec.request_slots, spec.service_class};
    auto plan = alloc_->plan_preemption(req, preemptable);
    if ((!plan || plan->victims.empty()) && spec.response_slots > 0) {
      ChannelSpec resp{spec.dst_nis.front(),
                       {spec.src_ni},
                       spec.response_slots,
                       spec.service_class};
      plan = alloc_->plan_preemption(resp, preemptable);
    }
    if (!plan || plan->victims.empty()) break; // preemption cannot help

    // Victim channels -> owning connections, ascending and unique (two
    // channels of one connection may both be condemned).
    std::vector<std::uint64_t> victims;
    for (tdm::ChannelId ch : plan->victims) {
      const std::uint64_t id = channel_owner_.at(ch);
      const auto it = std::lower_bound(victims.begin(), victims.end(), id);
      if (it == victims.end() || *it != id) victims.insert(it, id);
    }
    for (std::uint64_t id : victims) preempt_connection(id);

    r = allocate_connection(spec, out);
    if (r.status != ChurnStatus::kRejectedNoRoute) break;
  }
  return r;
}

void ChurnService::preempt_connection(std::uint64_t id) {
  const auto it = conns_.find(id);
  assert(it != conns_.end());
  metrics_.preemptions.inc();
  channel_owner_.erase(it->second.request.channel);
  alloc_->release(it->second.request);
  if (it->second.has_response) {
    channel_owner_.erase(it->second.response.channel);
    alloc_->release(it->second.response);
  }
  const std::size_t idx = static_cast<std::size_t>(it->second.spec.service_class);
  assert(live_by_class_[idx] > 0);
  --live_by_class_[idx];
  last_preempted_.push_back(id);
  unlink_live(id);
  conns_.erase(it);
}

ChurnService::Result ChurnService::set_up(const ConnectionSpec& spec) {
  last_preempted_.clear();
  metrics_.setups.inc();
  AllocatedConnection conn;
  Result r = allocate_connection(spec, &conn);
  if (r.status == ChurnStatus::kRejectedNoRoute && admission_.preempt_best_effort &&
      spec.service_class == ServiceClass::kGuaranteed) {
    r = preempt_and_retry(spec, &conn);
  }
  switch (r.status) {
    case ChurnStatus::kAdmitted: {
      metrics_.admitted.inc();
      metrics_.admitted_hops.add(conn.request.edges.size());
      const std::uint64_t id = next_id_++;
      conn.id = static_cast<tdm::ConnectionId>(id);
      r.connection = id;
      live_index_[id] = live_order_.size();
      live_order_.push_back(id);
      channel_owner_[conn.request.channel] = id;
      if (conn.has_response) channel_owner_[conn.response.channel] = id;
      ++live_by_class_[static_cast<std::size_t>(spec.service_class)];
      conns_.emplace(id, std::move(conn));
      break;
    }
    case ChurnStatus::kRejectedAdmission:
      metrics_.rejected_admission.inc();
      break;
    default:
      metrics_.rejected_no_route.inc();
      if (last_no_route_was_frag_) metrics_.rejected_fragmentation.inc();
      break;
  }
  return r;
}

ChurnStatus ChurnService::tear_down(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return ChurnStatus::kUnknownConnection;
  metrics_.teardowns.inc();
  channel_owner_.erase(it->second.request.channel);
  alloc_->release(it->second.request);
  if (it->second.has_response) {
    channel_owner_.erase(it->second.response.channel);
    alloc_->release(it->second.response);
  }
  const std::size_t idx = static_cast<std::size_t>(it->second.spec.service_class);
  assert(live_by_class_[idx] > 0);
  --live_by_class_[idx];
  unlink_live(id);
  conns_.erase(it);
  return ChurnStatus::kAdmitted;
}

ChurnService::Result ChurnService::modify(std::uint64_t id, std::uint32_t request_slots,
                                          std::uint32_t response_slots) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return {ChurnStatus::kUnknownConnection, 0};
  metrics_.modifies.inc();

  // Transactional: release the old reservations, allocate the new
  // bandwidth under admission control, restore exactly on failure.
  const AllocatedConnection old = it->second;
  channel_owner_.erase(old.request.channel);
  alloc_->release(old.request);
  if (old.has_response) {
    channel_owner_.erase(old.response.channel);
    alloc_->release(old.response);
  }

  ConnectionSpec spec = old.spec;
  spec.request_slots = request_slots;
  spec.response_slots = response_slots;

  AllocatedConnection fresh;
  Result r = allocate_connection(spec, &fresh, /*new_connection=*/false);
  if (r.status == ChurnStatus::kAdmitted) {
    fresh.id = old.id;
    channel_owner_[fresh.request.channel] = id;
    if (fresh.has_response) channel_owner_[fresh.response.channel] = id;
    it->second = std::move(fresh);
    r.connection = id;
    return r;
  }
  // Roll back: the failed allocation released its own partial state, so
  // the old routes' slots are free again and restore cannot fail unless an
  // external actor raced us. Request and response restore as a unit (the
  // same order-safety rule the use-case switch roll-back follows).
  bool restored = alloc_->restore(old.request);
  if (restored && old.has_response && !alloc_->restore(old.response)) {
    alloc_->release(old.request);
    restored = false;
  }
  if (restored) {
    metrics_.modify_failed_restored.inc();
    channel_owner_[old.request.channel] = id;
    if (old.has_response) channel_owner_[old.response.channel] = id;
  } else {
    // The connection is gone; dropping it from the live set keeps the
    // bookkeeping truthful instead of leaving a dangling id.
    metrics_.rollback_failures.inc();
    const std::size_t idx = static_cast<std::size_t>(old.spec.service_class);
    if (live_by_class_[idx] > 0) --live_by_class_[idx];
    unlink_live(id);
    conns_.erase(it);
  }
  return r;
}

void ChurnService::unlink_live(std::uint64_t id) {
  const std::size_t idx = live_index_.at(id);
  const std::uint64_t last = live_order_.back();
  live_order_[idx] = last;
  live_index_[last] = idx;
  live_order_.pop_back();
  live_index_.erase(id);
}

double ChurnService::sample_fragmentation(const std::vector<topo::Path>& probes) {
  double acc = 0.0;
  std::size_t sampled = 0;
  for (const topo::Path& p : probes) {
    if (p.links.empty()) continue;
    std::uint32_t min_free = std::numeric_limits<std::uint32_t>::max();
    for (topo::LinkId l : p.links) min_free = std::min(min_free, alloc_->link_free_slots(l));
    if (min_free == 0) continue; // no capacity left: exhaustion, not fragmentation
    const RouteTree shape = RouteTree::from_path(alloc_->topology(), p, {});
    const std::size_t aligned = alloc_->free_inject_slots(shape).size();
    acc += 1.0 - double(std::min<std::size_t>(aligned, min_free)) / double(min_free);
    ++sampled;
  }
  const double frag = sampled ? acc / double(sampled) : 0.0;
  metrics_.fragmentation.set(frag);
  metrics_.utilization.set(alloc_->utilization());
  return frag;
}

namespace {

/// Packing score of an allocated connection: (highest inject slot over
/// both channels, total route depth). Compaction accepts a move only when
/// this strictly decreases — re-packing toward low slot offsets frees
/// contiguous high-slot capacity for future alignment.
std::pair<std::uint32_t, std::size_t> packing_score(const AllocatedConnection& c) {
  std::uint32_t high = c.request.inject_slots.empty() ? 0 : c.request.inject_slots.back();
  std::size_t depth = c.request.edges.size();
  if (c.has_response) {
    if (!c.response.inject_slots.empty())
      high = std::max<std::uint32_t>(high, c.response.inject_slots.back());
    depth += c.response.edges.size();
  }
  return {high, depth};
}

} // namespace

ChurnService::CompactionResult ChurnService::compact(std::size_t max_moves) {
  CompactionResult res;
  // Deterministic walk order regardless of swap-remove history.
  std::vector<std::uint64_t> ids = live_order_;
  std::sort(ids.begin(), ids.end());
  const SlotPolicy saved = alloc_->options().slot_policy;
  alloc_->set_slot_policy(SlotPolicy::kFirstFit);
  for (std::uint64_t id : ids) {
    if (res.moved >= max_moves) break;
    const auto it = conns_.find(id);
    assert(it != conns_.end());
    if (it->second.spec.service_class == ServiceClass::kGuaranteed) continue; // never mid-stream
    ++res.examined;
    const AllocatedConnection old = it->second;

    // Close-before-open at the allocator level: free the old reservations,
    // re-allocate first-fit, keep only a strict improvement.
    channel_owner_.erase(old.request.channel);
    alloc_->release(old.request);
    if (old.has_response) {
      channel_owner_.erase(old.response.channel);
      alloc_->release(old.response);
    }
    AllocatedConnection fresh;
    const Result r = allocate_connection(old.spec, &fresh, /*new_connection=*/false);
    if (r.status == ChurnStatus::kAdmitted && packing_score(fresh) < packing_score(old)) {
      fresh.id = old.id;
      channel_owner_[fresh.request.channel] = id;
      if (fresh.has_response) channel_owner_[fresh.response.channel] = id;
      // Audit trail: who moved, from which slots to which slots.
      fnv_mix(res.digest, id);
      fnv_mix_route(res.digest, old.request);
      fnv_mix_route(res.digest, fresh.request);
      if (old.has_response) fnv_mix_route(res.digest, old.response);
      if (fresh.has_response) fnv_mix_route(res.digest, fresh.response);
      it->second = std::move(fresh);
      ++res.moved;
      continue;
    }
    if (r.status == ChurnStatus::kAdmitted) {
      alloc_->release(fresh.request);
      if (fresh.has_response) alloc_->release(fresh.response);
    }
    // Its own slots are free again, so the restore cannot fail.
    bool restored = alloc_->restore(old.request);
    if (restored && old.has_response && !alloc_->restore(old.response)) {
      alloc_->release(old.request);
      restored = false;
    }
    if (restored) {
      channel_owner_[old.request.channel] = id;
      if (old.has_response) channel_owner_[old.response.channel] = id;
    } else {
      metrics_.rollback_failures.inc();
      const std::size_t idx = static_cast<std::size_t>(old.spec.service_class);
      if (live_by_class_[idx] > 0) --live_by_class_[idx];
      unlink_live(id);
      conns_.erase(it);
    }
  }
  alloc_->set_slot_policy(saved);
  return res;
}

// --- Open-loop workload ------------------------------------------------------

ChurnWorkload::ChurnWorkload(std::vector<topo::NodeId> endpoints, ChurnWorkloadOptions options)
    : endpoints_(std::move(endpoints)), opt_(options), rng_(options.seed) {
  assert(endpoints_.size() >= 2 && "churn workload needs at least two NIs");
  assert(opt_.arrival_rate > 0.0 && opt_.mean_hold_cycles > 0.0);
  assert(opt_.min_slots >= 1 && opt_.min_slots <= opt_.max_slots);
  next_arrival_ = -std::log(1.0 - rng_.uniform()) / opt_.arrival_rate;
}

ConnectionSpec ChurnWorkload::draw_spec() {
  ConnectionSpec s;
  s.name = "r" + std::to_string(seq_++);
  s.src_ni = endpoints_[rng_.below(endpoints_.size())];
  std::uint32_t fanout = 1;
  if (opt_.max_fanout >= 2 && endpoints_.size() >= 3 && rng_.chance(opt_.multicast_fraction)) {
    const auto cap = std::min<std::uint64_t>(opt_.max_fanout, endpoints_.size() - 1);
    fanout = static_cast<std::uint32_t>(rng_.range(2, cap));
  }
  while (s.dst_nis.size() < fanout) {
    const topo::NodeId d = endpoints_[rng_.below(endpoints_.size())];
    if (d == s.src_ni) continue;
    if (std::find(s.dst_nis.begin(), s.dst_nis.end(), d) != s.dst_nis.end()) continue;
    s.dst_nis.push_back(d);
  }
  s.request_slots = static_cast<std::uint32_t>(rng_.range(opt_.min_slots, opt_.max_slots));
  s.response_slots = fanout > 1 ? 0 : opt_.response_slots;
  // Service-class draw only when a mix is configured: an all-standard
  // workload must consume the exact RNG stream of pre-class builds so
  // legacy decision digests survive.
  if (opt_.guaranteed_fraction > 0.0 || opt_.best_effort_fraction > 0.0) {
    const double u = rng_.uniform();
    if (u < opt_.guaranteed_fraction) {
      s.service_class = ServiceClass::kGuaranteed;
    } else if (u < opt_.guaranteed_fraction + opt_.best_effort_fraction) {
      s.service_class = ServiceClass::kBestEffort;
    }
  }
  return s;
}

ChurnWorkload::Op ChurnWorkload::next(const ChurnService& service) {
  // Expired connections tear down before the next arrival. Entries whose
  // connection already died (a failed modify whose roll-back failed) are
  // skipped — the heap holds the workload's view, the service's is truth.
  while (!expiry_.empty() && expiry_.front().first <= next_arrival_) {
    std::pop_heap(expiry_.begin(), expiry_.end(), std::greater<>{});
    const auto [t, id] = expiry_.back();
    expiry_.pop_back();
    if (service.connection(id) == nullptr) continue;
    now_ = t;
    Op op;
    op.kind = Op::Kind::kTearDown;
    op.time = t;
    op.connection = id;
    return op;
  }

  now_ = next_arrival_;
  next_arrival_ = now_ - std::log(1.0 - rng_.uniform()) / opt_.arrival_rate;

  Op op;
  op.time = now_;
  if (service.live_connections() > 0 && rng_.chance(opt_.modify_fraction)) {
    op.kind = Op::Kind::kModify;
    op.connection = service.live_id_at(rng_.below(service.live_connections()));
    op.request_slots = static_cast<std::uint32_t>(rng_.range(opt_.min_slots, opt_.max_slots));
    op.response_slots = opt_.response_slots;
    return op;
  }
  op.kind = Op::Kind::kSetUp;
  op.spec = draw_spec();
  pending_hold_ = -std::log(1.0 - rng_.uniform()) * opt_.mean_hold_cycles;
  return op;
}

void ChurnWorkload::on_setup_result(const ChurnService::Result& r) {
  if (pending_hold_ && r.status == ChurnStatus::kAdmitted)
    schedule_expiry(now_ + *pending_hold_, r.connection);
  pending_hold_.reset();
}

void ChurnWorkload::schedule_expiry(double at, std::uint64_t connection) {
  expiry_.emplace_back(at, connection);
  std::push_heap(expiry_.begin(), expiry_.end(), std::greater<>{});
}

// --- Replay harness ----------------------------------------------------------

ChurnReport run_churn(SlotAllocator& alloc, const ChurnRunOptions& options) {
  using Clock = std::chrono::steady_clock;

  ChurnReport report;
  ChurnService service(alloc, options.admission);
  const auto endpoints = alloc.topology().nodes_of_kind(topo::NodeKind::kNi);
  ChurnWorkload workload(endpoints, options.workload);

  // Probe paths for the fragmentation gauge: deterministic, drawn from a
  // stream independent of the request workload's so changing the sample
  // count never perturbs the decisions.
  std::vector<topo::Path> probes;
  if (endpoints.size() >= 2 && options.probe_paths > 0) {
    sim::Xoshiro256 prng(options.workload.seed ^ 0x66726167676175ull); // "fraggau"
    const topo::PathFinder finder(alloc.topology());
    while (probes.size() < options.probe_paths) {
      const topo::NodeId a = endpoints[prng.below(endpoints.size())];
      const topo::NodeId b = endpoints[prng.below(endpoints.size())];
      if (a == b) continue;
      topo::Path p = finder.shortest(a, b);
      if (!p.links.empty()) probes.push_back(std::move(p));
    }
  }

  const std::uint64_t sample_every = std::max<std::uint64_t>(
      1, options.requests / std::max<std::size_t>(1, options.fragmentation_samples));

  std::uint64_t digest = 14695981039346656037ull;

  report.qos_enabled = options.overload.enabled || options.compaction.every > 0 ||
                       !options.quarantine_events.empty() ||
                       options.admission.preempt_best_effort ||
                       options.workload.guaranteed_fraction > 0.0 ||
                       options.workload.best_effort_fraction > 0.0;

  const auto cls = [](const ConnectionSpec& s) {
    return static_cast<std::size_t>(s.service_class);
  };

  // Overload-control retry queue: min-heap on (ready, seq), jitter and
  // re-admission holds drawn from a stream independent of the workload's.
  struct Pending {
    double ready = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t attempts = 1; ///< tries already made
    ConnectionSpec spec;
  };
  const auto pending_after = [](const Pending& a, const Pending& b) {
    return a.ready > b.ready || (a.ready == b.ready && a.seq > b.seq);
  };
  std::vector<Pending> pending;
  std::uint64_t pending_seq = 0;
  sim::Xoshiro256 retry_rng(options.workload.seed ^ 0x6f6c7265747279ull); // "olretry"

  const auto note_admitted = [&](const ConnectionSpec& spec, const ChurnService::Result& rr) {
    ClassStats& cs = report.per_class[cls(spec)];
    ++cs.admitted;
    const AllocatedConnection* c = service.connection(rr.connection);
    cs.latency_cycles.add(worst_case_latency_cycles(c->request, alloc.params()));
  };
  const auto note_preemptions = [&]() {
    if (service.last_preempted().empty()) return;
    fnv_mix(digest, 0x505245454d5054ull); // "PREEMPT"
    for (std::uint64_t id : service.last_preempted()) fnv_mix(digest, id);
    report.preempted_connections += service.last_preempted().size();
    report.per_class[static_cast<std::size_t>(ServiceClass::kBestEffort)].preempted +=
        service.last_preempted().size();
  };
  const auto shed = [&](const ConnectionSpec& spec) {
    ++report.shed_total;
    ++report.per_class[cls(spec)].shed;
  };
  /// Queue a retry after `attempts` failed tries, the latest at time `at`.
  const auto enqueue_retry = [&](ConnectionSpec spec, std::uint32_t attempts, double at) {
    if (attempts >= options.overload.max_attempts) {
      shed(spec);
      return;
    }
    const double scale = double(1ull << std::min<std::uint32_t>(attempts - 1, 20));
    const double delay = options.overload.backoff_cycles * scale *
                         (1.0 + options.overload.jitter * retry_rng.uniform());
    Pending p{at + delay, pending_seq++, attempts, std::move(spec)};
    if (pending.size() >= options.overload.pending_capacity) {
      // Class-aware shedding: the least important waiter (then the one
      // furthest from service) goes first — evict it only if the arrival
      // strictly outranks it, else drop the arrival.
      const auto demote_key = [](const Pending& q) {
        return std::make_tuple(static_cast<std::uint8_t>(q.spec.service_class), q.ready, q.seq);
      };
      std::size_t worst = 0;
      for (std::size_t k = 1; k < pending.size(); ++k)
        if (demote_key(pending[k]) > demote_key(pending[worst])) worst = k;
      if (static_cast<std::uint8_t>(p.spec.service_class) <
          static_cast<std::uint8_t>(pending[worst].spec.service_class)) {
        shed(pending[worst].spec);
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(worst));
        std::make_heap(pending.begin(), pending.end(), pending_after);
      } else {
        shed(p.spec);
        return;
      }
    }
    pending.push_back(std::move(p));
    std::push_heap(pending.begin(), pending.end(), pending_after);
  };
  const auto run_compaction = [&]() {
    const ChurnService::CompactionResult cr = service.compact(options.compaction.max_moves);
    ++report.compaction_passes;
    report.compaction_moves += cr.moved;
    fnv_mix(report.compaction_digest, cr.digest);
    fnv_mix(digest, 0x434f4d50414354ull); // "COMPACT"
    fnv_mix(digest, cr.moved);
    fnv_mix(digest, cr.digest);
  };

  const auto wall_start = Clock::now();

  for (std::uint64_t i = 0; i < options.requests; ++i) {
    for (const QuarantineEvent& qe : options.quarantine_events) {
      if (qe.at_request != i) continue;
      if (qe.clear) {
        alloc.clear_quarantine();
      } else {
        alloc.quarantine_link(qe.link);
      }
      fnv_mix(digest, 0x5155415241ull); // "QUARA"
      fnv_mix(digest, qe.clear ? ~0ull : std::uint64_t(qe.link));
      if (options.compaction.after_quarantine &&
          (options.compaction.every > 0 || options.compaction.max_moves > 0))
        run_compaction();
    }

    const ChurnWorkload::Op op = workload.next(service);

    // Pending retries whose backoff expired fire before this operation.
    while (options.overload.enabled && !pending.empty() && pending.front().ready <= op.time) {
      std::pop_heap(pending.begin(), pending.end(), pending_after);
      Pending p = std::move(pending.back());
      pending.pop_back();
      ++report.retry_attempts;
      ++report.per_class[cls(p.spec)].retries;
      const ChurnService::Result rr = service.set_up(p.spec);
      fnv_mix(digest, 0x5245545259ull); // "RETRY"
      fnv_mix(digest, static_cast<std::uint64_t>(rr.status));
      if (rr.status == ChurnStatus::kAdmitted) {
        const AllocatedConnection* c = service.connection(rr.connection);
        fnv_mix_route(digest, c->request);
        if (c->has_response) fnv_mix_route(digest, c->response);
        note_admitted(p.spec, rr);
        const double hold =
            -std::log(1.0 - retry_rng.uniform()) * options.workload.mean_hold_cycles;
        workload.schedule_expiry(p.ready + hold, rr.connection);
        if (options.on_admit) options.on_admit(*c);
      } else {
        enqueue_retry(std::move(p.spec), p.attempts + 1, p.ready);
      }
      note_preemptions();
    }

    const auto t0 = options.measure_latency ? Clock::now() : Clock::time_point{};

    ChurnService::Result r;
    switch (op.kind) {
      case ChurnWorkload::Op::Kind::kSetUp:
        ++report.per_class[cls(op.spec)].setups;
        r = service.set_up(op.spec);
        workload.on_setup_result(r);
        break;
      case ChurnWorkload::Op::Kind::kTearDown:
        r.status = service.tear_down(op.connection);
        r.connection = op.connection;
        break;
      case ChurnWorkload::Op::Kind::kModify:
        r = service.modify(op.connection, op.request_slots, op.response_slots);
        break;
    }

    if (options.measure_latency) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0);
      report.request_latency_ns.add(static_cast<std::uint64_t>(ns.count()));
    }

    fnv_mix(digest, static_cast<std::uint64_t>(op.kind));
    fnv_mix(digest, static_cast<std::uint64_t>(r.status));
    if (r.status == ChurnStatus::kAdmitted && op.kind != ChurnWorkload::Op::Kind::kTearDown) {
      const AllocatedConnection* c = service.connection(r.connection);
      assert(c != nullptr);
      fnv_mix_route(digest, c->request);
      if (c->has_response) fnv_mix_route(digest, c->response);
      if (op.kind == ChurnWorkload::Op::Kind::kSetUp && options.on_admit) options.on_admit(*c);
    }

    if (op.kind == ChurnWorkload::Op::Kind::kSetUp) {
      switch (r.status) {
        case ChurnStatus::kAdmitted:
          note_admitted(op.spec, r);
          break;
        case ChurnStatus::kRejectedAdmission:
          ++report.per_class[cls(op.spec)].rejected_admission;
          if (options.overload.enabled) enqueue_retry(op.spec, 1, op.time);
          break;
        case ChurnStatus::kRejectedNoRoute:
          ++report.per_class[cls(op.spec)].rejected_no_route;
          if (options.overload.enabled) enqueue_retry(op.spec, 1, op.time);
          break;
        default:
          break;
      }
      note_preemptions();
    }

    if (options.compaction.every > 0 && (i + 1) % options.compaction.every == 0)
      run_compaction();

    if (i % sample_every == 0 || i + 1 == options.requests) {
      const double frag = service.sample_fragmentation(probes);
      report.frag_timeline.push_back({i, alloc.utilization(), frag});
    }
  }

  report.wall_seconds = std::chrono::duration<double>(Clock::now() - wall_start).count();
  report.metrics = service.metrics();
  report.decision_digest = digest;
  report.final_utilization = alloc.utilization();
  report.final_live = service.live_connections();
  report.channel_id_watermark = alloc.channel_id_watermark();
  return report;
}

} // namespace daelite::alloc
