#include "alloc/dimension.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace daelite::alloc {

std::uint32_t slots_for_bandwidth(double mbps, std::uint32_t num_slots, const NocClocking& clk) {
  if (mbps <= 0.0) return 1;
  const double share = mbps / clk.link_mbytes_per_s();
  const auto slots =
      static_cast<std::uint32_t>(std::ceil(share * static_cast<double>(num_slots) - 1e-9));
  return std::max(1u, slots);
}

namespace {

/// Worst-case wait (in cycles) for the next owned slot: the largest gap
/// between consecutive owned slots, minus one cycle.
std::uint64_t worst_scheduling_wait(const std::vector<tdm::Slot>& owned,
                                    const tdm::TdmParams& p) {
  if (owned.empty()) return 0;
  std::vector<tdm::Slot> slots = owned;
  std::sort(slots.begin(), slots.end());
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const tdm::Slot cur = slots[i];
    const tdm::Slot prev = slots[(i + slots.size() - 1) % slots.size()];
    const std::uint64_t gap_slots = (cur + p.num_slots - prev - 1) % p.num_slots + 1;
    worst = std::max(worst, gap_slots * p.words_per_slot - 1);
  }
  return worst;
}

/// Worst-case single-word latency of an allocated channel: wait for the
/// furthest owned slot, then traverse (2 cycles/hop), then the word may
/// be the last of its flit (+W-1 cycles).
double worst_latency_ns(const RouteTree& route, const tdm::TdmParams& p,
                        const NocClocking& clk) {
  std::size_t max_links = 0;
  for (const RouteEdge& e : route.edges) max_links = std::max<std::size_t>(max_links, e.depth + 1);
  const double cycles = static_cast<double>(worst_scheduling_wait(route.inject_slots, p)) +
                        static_cast<double>(max_links) * p.hop_cycles +
                        static_cast<double>(p.words_per_slot - 1);
  return cycles * clk.ns_per_cycle();
}

} // namespace

std::optional<DimensionResult> dimension_network(const topo::Topology& topo,
                                                 const std::vector<PhysicalConnectionSpec>& specs,
                                                 const NocClocking& clk,
                                                 const std::vector<std::uint32_t>& candidates,
                                                 std::string* why) {
  std::ostringstream reasons;
  for (std::uint32_t s : candidates) {
    const tdm::TdmParams params = tdm::daelite_params(s);

    UseCase uc;
    uc.name = "dimensioned";
    std::vector<DimensionedConnection> dims;
    for (const PhysicalConnectionSpec& ps : specs) {
      DimensionedConnection d;
      d.spec = ps;
      d.request_slots = slots_for_bandwidth(ps.bandwidth_mbytes_per_s, s, clk);
      d.response_slots = ps.dst_nis.size() > 1
                             ? 0
                             : slots_for_bandwidth(ps.response_bandwidth_mbytes_per_s, s, clk);
      uc.connections.push_back({ps.name, ps.src_ni, ps.dst_nis, d.request_slots,
                                d.response_slots, ps.service_class});
      dims.push_back(std::move(d));
    }

    SlotAllocator alloc(topo, params);
    std::string failed;
    auto allocation = allocate_use_case(alloc, uc, &failed);
    if (!allocation) {
      reasons << "S=" << s << ": no schedule (" << failed << "); ";
      continue;
    }

    // Latency verification against the actual slot assignments.
    bool latency_ok = true;
    for (std::size_t i = 0; i < dims.size(); ++i) {
      const RouteTree& r = allocation->connections[i].request;
      dims[i].worst_latency_ns = worst_latency_ns(r, params, clk);
      dims[i].achieved_mbytes_per_s = static_cast<double>(dims[i].request_slots) /
                                      static_cast<double>(s) * clk.link_mbytes_per_s();
      if (dims[i].worst_latency_ns > dims[i].spec.max_latency_ns + 1e-9) {
        reasons << "S=" << s << ": " << dims[i].spec.name << " worst latency "
                << dims[i].worst_latency_ns << "ns > bound " << dims[i].spec.max_latency_ns
                << "ns; ";
        latency_ok = false;
        break;
      }
    }
    if (!latency_ok) {
      release_use_case(alloc, *allocation);
      continue;
    }

    DimensionResult out;
    out.params = params;
    out.allocation = std::move(*allocation);
    out.connections = std::move(dims);
    out.schedule_utilization = alloc.schedule().utilization();
    return out;
  }
  if (why) *why = reasons.str();
  return std::nullopt;
}

} // namespace daelite::alloc
