#pragma once
// Use-case switching (paper §I: applications "run concurrently in
// different combinations denoted as use-cases"; the NoC should "provide
// fast (re)configuration to adapt to dynamic use case switches";
// cf. [25] mapping/configuration for multi-use-case NoCs and [12]
// configuration trade-offs).
//
// A switch from use-case A to use-case B keeps the connections common to
// both (matched by name and identical spec — they keep streaming through
// the switch), tears down the rest of A, and sets up B's new connections.
// plan/execute split so callers can inspect or cost a switch before
// committing; execution is transactional (on failure the allocator is
// rolled back to exactly the pre-switch state).

#include <optional>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/usecase.hpp"

namespace daelite::alloc {

bool specs_equal(const ConnectionSpec& a, const ConnectionSpec& b);

struct SwitchPlan {
  std::vector<AllocatedConnection> keep;      ///< carried over untouched
  std::vector<AllocatedConnection> tear_down; ///< released by the switch
  std::vector<ConnectionSpec> set_up;         ///< newly allocated

  std::size_t churn() const { return tear_down.size() + set_up.size(); }
};

/// Compute what a switch from `from` to `to` must do. Pure planning; no
/// allocator state is touched.
SwitchPlan plan_use_case_switch(const UseCaseAllocation& from, const UseCase& to);

/// Execute a switch: release tear-downs, allocate set-ups, return the new
/// allocation (kept connections keep their routes and channel ids). On
/// failure returns nullopt with the allocator restored to the pre-switch
/// state (including re-allocating the torn-down connections' original
/// reservations) and `failed` naming the offending connection. The
/// roll-back restores only after the partially-committed additions are
/// fully released (allocate_use_case's contract); if a torn-down
/// connection still cannot be restored — an external actor claimed its
/// slots mid-switch — no half-connection is left behind (a request whose
/// response restore fails is released again) and `failed` gains a
/// "(rollback incomplete: <name>)" suffix instead of the failure being
/// swallowed.
std::optional<UseCaseAllocation> execute_use_case_switch(SlotAllocator& alloc,
                                                         const UseCaseAllocation& from,
                                                         const UseCase& to,
                                                         SwitchPlan* plan_out = nullptr,
                                                         std::string* failed = nullptr);

} // namespace daelite::alloc
