#pragma once
// Use-case level allocation.
//
// A *use case* (paper §I) is a set of concurrently running applications,
// i.e. a set of connections with bandwidth requirements. Connections are
// bidirectional (paper §IV): a request channel src -> dst(s) and, for
// unicast connections, a response channel dst -> src. Credits for each
// direction ride on the opposite direction's slots, so a unicast
// connection always allocates both channels. Multicast connections have no
// response channel ("There is no corresponding multi-destination read")
// and cannot use the default flow control.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/route.hpp"
#include "tdm/ids.hpp"

namespace daelite::alloc {

struct ConnectionSpec {
  std::string name;
  topo::NodeId src_ni = topo::kInvalidNode;
  std::vector<topo::NodeId> dst_nis;   ///< >1 destinations = multicast
  std::uint32_t request_slots = 1;     ///< slots/wheel for src -> dst data
  std::uint32_t response_slots = 1;    ///< slots/wheel for dst -> src data (unicast only)
  /// QoS class: degradation order under overload, faults and compaction
  /// (alloc/allocator.hpp). kStandard keeps legacy behaviour.
  ServiceClass service_class = ServiceClass::kStandard;
};

struct AllocatedConnection {
  tdm::ConnectionId id = tdm::kNoConnection;
  ConnectionSpec spec;
  RouteTree request;
  RouteTree response;       ///< valid iff has_response
  bool has_response = false;

  bool is_multicast() const { return spec.dst_nis.size() > 1; }
};

struct UseCase {
  std::string name;
  std::vector<ConnectionSpec> connections;
};

struct UseCaseAllocation {
  std::vector<AllocatedConnection> connections;
  double schedule_utilization = 0.0;
};

/// Allocate every connection of the use case (all-or-nothing).
/// On failure, the allocator is restored and the name of the first
/// unallocatable connection is returned in `failed`.
std::optional<UseCaseAllocation> allocate_use_case(SlotAllocator& alloc, const UseCase& uc,
                                                   std::string* failed = nullptr);

/// Release every channel of an allocation.
void release_use_case(SlotAllocator& alloc, const UseCaseAllocation& a);

} // namespace daelite::alloc
