#include "alloc/route.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <sstream>

namespace daelite::alloc {

RouteTree RouteTree::from_path(const topo::Topology& t, const topo::Path& p,
                               std::vector<tdm::Slot> inject_slots, tdm::ChannelId ch) {
  assert(p.is_connected(t));
  RouteTree r;
  r.channel = ch;
  r.src_ni = p.source(t);
  r.dst_nis = {p.dest(t)};
  r.inject_slots = std::move(inject_slots);
  std::sort(r.inject_slots.begin(), r.inject_slots.end());
  for (std::size_t i = 0; i < p.links.size(); ++i)
    r.edges.push_back(RouteEdge{p.links[i], static_cast<std::uint32_t>(i)});
  return r;
}

std::optional<std::uint32_t> RouteTree::depth_of(const topo::Topology& t, topo::NodeId node) const {
  if (node == src_ni) return 0u;
  for (const RouteEdge& e : edges)
    if (t.link(e.link).dst == node) return e.depth + 1;
  return std::nullopt;
}

std::optional<std::uint32_t> RouteTree::dst_link_count(const topo::Topology& t,
                                                       topo::NodeId dst) const {
  // The destination NI is reached by exactly one tree edge; its depth + 1
  // is the number of links on the path to it.
  return depth_of(t, dst);
}

tdm::Slot RouteTree::rx_slot(const topo::Topology& t, const tdm::TdmParams& p, topo::NodeId dst,
                             tdm::Slot q) const {
  const auto n = dst_link_count(t, dst);
  assert(n.has_value());
  return p.slot_at_link(q, *n);
}

std::optional<RouteEdge> RouteTree::edge_into(const topo::Topology& t, topo::NodeId node) const {
  for (const RouteEdge& e : edges)
    if (t.link(e.link).dst == node) return e;
  return std::nullopt;
}

std::vector<RouteEdge> RouteTree::edges_from(const topo::Topology& t, topo::NodeId node) const {
  std::vector<RouteEdge> out;
  for (const RouteEdge& e : edges)
    if (t.link(e.link).src == node) out.push_back(e);
  return out;
}

std::string validate_route_tree(const topo::Topology& t, const RouteTree& r) {
  std::ostringstream err;
  if (r.src_ni == topo::kInvalidNode || !t.is_ni(r.src_ni)) return "source is not an NI";
  if (r.dst_nis.empty()) return "no destinations";
  if (r.edges.empty()) return "no edges";

  // Each node other than the source must be entered by at most one edge,
  // at a depth consistent with its parent.
  std::map<topo::NodeId, std::uint32_t> reach_depth; // node -> depth (links from src)
  reach_depth[r.src_ni] = 0;

  auto edges = r.edges;
  std::sort(edges.begin(), edges.end(), [](const RouteEdge& a, const RouteEdge& b) {
    return a.depth < b.depth || (a.depth == b.depth && a.link < b.link);
  });

  std::set<topo::LinkId> seen_links;
  for (const RouteEdge& e : edges) {
    if (!seen_links.insert(e.link).second) {
      err << "duplicate link " << e.link;
      return err.str();
    }
    const topo::Link& l = t.link(e.link);
    auto it = reach_depth.find(l.src);
    if (it == reach_depth.end()) {
      err << "edge from unreached node " << t.node(l.src).name;
      return err.str();
    }
    if (it->second != e.depth) {
      err << "edge depth " << e.depth << " inconsistent with node depth " << it->second << " at "
          << t.node(l.src).name;
      return err.str();
    }
    if (reach_depth.count(l.dst) != 0) {
      err << "node " << t.node(l.dst).name << " reached twice (not a tree)";
      return err.str();
    }
    // Branching is only possible at routers: an NI cannot forward.
    if (t.is_ni(l.src) && l.src != r.src_ni) {
      err << "edge leaves non-source NI " << t.node(l.src).name;
      return err.str();
    }
    reach_depth[l.dst] = e.depth + 1;
  }

  for (topo::NodeId dst : r.dst_nis) {
    if (!t.is_ni(dst)) {
      err << "destination " << t.node(dst).name << " is not an NI";
      return err.str();
    }
    if (reach_depth.count(dst) == 0) {
      err << "destination " << t.node(dst).name << " not reached";
      return err.str();
    }
  }
  // Every leaf of the tree must be a destination NI (no dangling branches).
  for (const auto& [node, depth] : reach_depth) {
    (void)depth;
    if (node == r.src_ni) continue;
    const bool has_out = !r.edges_from(t, node).empty();
    const bool is_dst = std::find(r.dst_nis.begin(), r.dst_nis.end(), node) != r.dst_nis.end();
    if (!has_out && !is_dst) {
      err << "dangling tree leaf " << t.node(node).name;
      return err.str();
    }
    if (is_dst && has_out) {
      err << "destination " << t.node(node).name << " is interior to the tree";
      return err.str();
    }
  }
  return {};
}

namespace {

/// Reconstruct the unique tree path (sequence of edges) from the source to
/// `dst` by walking edge_into() backwards.
std::vector<RouteEdge> tree_path_to(const topo::Topology& t, const RouteTree& r,
                                    topo::NodeId dst) {
  std::vector<RouteEdge> rev;
  topo::NodeId at = dst;
  while (at != r.src_ni) {
    auto e = r.edge_into(t, at);
    assert(e.has_value() && "destination not on tree");
    rev.push_back(*e);
    at = t.link(e->link).src;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

} // namespace

std::vector<CfgSegment> make_cfg_segments(const topo::Topology& t, const tdm::TdmParams& p,
                                          const RouteTree& r, std::uint8_t tx_queue,
                                          const std::vector<std::uint8_t>& rx_queues) {
  assert(rx_queues.size() == r.dst_nis.size());
  std::vector<CfgSegment> segments;
  std::set<topo::LinkId> configured; // tree links already covered by a segment

  for (std::size_t d = 0; d < r.dst_nis.size(); ++d) {
    const topo::NodeId dst = r.dst_nis[d];
    const std::vector<RouteEdge> path = tree_path_to(t, r, dst);
    assert(!path.empty());

    // Find the deepest already-configured prefix. New elements start after
    // the last configured link; the branch router (driver of the first new
    // link) is included so its table gains the new output port.
    std::size_t first_new = 0;
    while (first_new < path.size() && configured.count(path[first_new].link) != 0) ++first_new;
    if (first_new == path.size()) continue; // fully shared path (duplicate dst)

    CfgSegment seg;
    const std::uint32_t n_links = static_cast<std::uint32_t>(path.size());
    // Slots at the segment head (the destination NI, element position n_links).
    for (tdm::Slot q : r.inject_slots) seg.slots_at_head.push_back(p.slot_at_link(q, n_links));

    // Destination NI entry.
    CfgElement dst_el;
    dst_el.node = dst;
    dst_el.is_ni = true;
    dst_el.in_port = rx_queues[d];
    seg.elements.push_back(dst_el);

    // Routers from the last hop back to (and including) the driver of the
    // first new link.
    for (std::size_t i = path.size(); i-- > first_new + 1;) {
      // Router between path[i-1] and path[i]: it receives link path[i-1]
      // and drives link path[i].
      const topo::Link& in_l = t.link(path[i - 1].link);
      const topo::Link& out_l = t.link(path[i].link);
      assert(in_l.dst == out_l.src);
      CfgElement el;
      el.node = out_l.src;
      el.in_port = static_cast<std::uint8_t>(in_l.dst_port);
      el.out_port = static_cast<std::uint8_t>(out_l.src_port);
      seg.elements.push_back(el);
    }

    if (first_new == 0) {
      // Full segment: ends at the source NI.
      CfgElement src_el;
      src_el.node = r.src_ni;
      src_el.is_ni = true;
      src_el.is_source_ni = true;
      src_el.out_port = tx_queue;
      seg.elements.push_back(src_el);
    } else {
      // Partial segment: ends at the branch router, re-stating its
      // existing input port with the new output port.
      const topo::Link& in_l = t.link(path[first_new - 1].link);
      const topo::Link& out_l = t.link(path[first_new].link);
      assert(in_l.dst == out_l.src);
      CfgElement el;
      el.node = out_l.src;
      el.in_port = static_cast<std::uint8_t>(in_l.dst_port);
      el.out_port = static_cast<std::uint8_t>(out_l.src_port);
      seg.elements.push_back(el);
    }

    for (std::size_t i = first_new; i < path.size(); ++i) configured.insert(path[i].link);
    segments.push_back(std::move(seg));
  }
  // Return branch segments first and the trunk (which arms the source NI)
  // last, so that by the time the source may inject, every branch router is
  // already configured — the segment-level analogue of the paper's
  // destination-first element ordering.
  std::reverse(segments.begin(), segments.end());
  return segments;
}

} // namespace daelite::alloc
