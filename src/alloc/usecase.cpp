#include "alloc/usecase.hpp"

namespace daelite::alloc {

std::optional<UseCaseAllocation> allocate_use_case(SlotAllocator& alloc, const UseCase& uc,
                                                   std::string* failed) {
  UseCaseAllocation result;
  tdm::ConnectionId next_id = 0;

  auto roll_back = [&] { release_use_case(alloc, result); };

  for (const ConnectionSpec& spec : uc.connections) {
    AllocatedConnection conn;
    conn.id = next_id++;
    conn.spec = spec;

    ChannelSpec req;
    req.src_ni = spec.src_ni;
    req.dst_nis = spec.dst_nis;
    req.slots_required = spec.request_slots;
    auto r = alloc.allocate(req);
    if (!r) {
      if (failed) *failed = spec.name;
      roll_back();
      return std::nullopt;
    }
    conn.request = std::move(*r);

    // response_slots == 0 means "no response channel" — a zero-slot
    // allocation must not be attempted (the allocator rejects it).
    if (spec.dst_nis.size() == 1 && spec.response_slots > 0) {
      ChannelSpec resp;
      resp.src_ni = spec.dst_nis[0];
      resp.dst_nis = {spec.src_ni};
      resp.slots_required = spec.response_slots;
      auto rr = alloc.allocate(resp);
      if (!rr) {
        alloc.release(conn.request);
        if (failed) *failed = spec.name;
        roll_back();
        return std::nullopt;
      }
      conn.response = std::move(*rr);
      conn.has_response = true;
    }
    result.connections.push_back(std::move(conn));
  }
  result.schedule_utilization = alloc.schedule().utilization();
  return result;
}

void release_use_case(SlotAllocator& alloc, const UseCaseAllocation& a) {
  for (const AllocatedConnection& c : a.connections) {
    alloc.release(c.request);
    if (c.has_response) alloc.release(c.response);
  }
}

} // namespace daelite::alloc
