#include "alloc/allocator.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>

namespace daelite::alloc {

SlotAllocator::SlotAllocator(const topo::Topology& topo, tdm::TdmParams params,
                             AllocatorOptions options)
    : topo_(&topo),
      params_(params),
      options_(options),
      schedule_(topo.link_count(), params),
      finder_(topo) {
  assert(params_.valid());
}

std::vector<tdm::Slot> SlotAllocator::free_inject_slots(const RouteTree& shape) const {
  std::vector<tdm::Slot> out;
  for (tdm::Slot q = 0; q < params_.num_slots; ++q) {
    bool ok = true;
    for (const RouteEdge& e : shape.edges) {
      if (!schedule_.is_free(e.link, params_.slot_at_link(q, e.depth))) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(q);
  }
  return out;
}

std::vector<tdm::Slot> SlotAllocator::choose_slots(const std::vector<tdm::Slot>& avail,
                                                   std::uint32_t want) const {
  std::vector<tdm::Slot> picked;
  if (avail.size() < want) return picked;
  if (options_.slot_policy == SlotPolicy::kFirstFit || want == 0) {
    picked.assign(avail.begin(), avail.begin() + want);
    return picked;
  }
  // kSpread: pick every (avail.size()/want)-th available slot, which keeps
  // the worst-case scheduling latency (wait for the next owned slot) low.
  const double stride = static_cast<double>(avail.size()) / static_cast<double>(want);
  double pos = 0.0;
  for (std::uint32_t i = 0; i < want; ++i) {
    picked.push_back(avail[static_cast<std::size_t>(pos)]);
    pos += stride;
  }
  return picked;
}

void SlotAllocator::commit(const RouteTree& route) {
  for (tdm::Slot q : route.inject_slots) {
    for (const RouteEdge& e : route.edges) {
      const bool ok = schedule_.reserve(e.link, params_.slot_at_link(q, e.depth), route.channel);
      assert(ok && "commit of an infeasible route");
      (void)ok;
    }
  }
}

bool SlotAllocator::valid_spec(const ChannelSpec& spec) const {
  // A zero-bandwidth channel must not "succeed": committing an empty route
  // burns a ChannelId and bumps live_channels_ for a channel release()
  // can never decrement (release_channel frees 0 slots).
  if (spec.slots_required == 0) return false;
  if (spec.dst_nis.empty()) return false;
  if (spec.src_ni >= topo_->node_count() || !topo_->is_ni(spec.src_ni)) return false;
  for (std::size_t i = 0; i < spec.dst_nis.size(); ++i) {
    const topo::NodeId dst = spec.dst_nis[i];
    if (dst >= topo_->node_count() || !topo_->is_ni(dst)) return false;
    if (dst == spec.src_ni) return false;
    for (std::size_t j = i + 1; j < spec.dst_nis.size(); ++j)
      if (spec.dst_nis[j] == dst) return false;
  }
  return true;
}

std::optional<RouteTree> SlotAllocator::allocate_on_path(const topo::Path& path,
                                                         std::uint32_t slots_required) {
  if (path.empty() || slots_required == 0) return std::nullopt;
  // The path finder never proposes quarantined links, but caller-chosen
  // paths (tests, the multipath allocator's precomputed candidates) must
  // hit the same wall.
  for (topo::LinkId l : path.links)
    if (is_quarantined(l)) return std::nullopt;
  RouteTree shape = RouteTree::from_path(*topo_, path, {}, tdm::kNoChannel);
  const auto avail = free_inject_slots(shape);
  auto slots = choose_slots(avail, slots_required);
  if (slots.size() < slots_required) return std::nullopt;
  shape.inject_slots = std::move(slots);
  std::sort(shape.inject_slots.begin(), shape.inject_slots.end());
  shape.channel = next_channel_id();
  commit(shape);
  ++live_channels_;
  return shape;
}

bool SlotAllocator::restore(const RouteTree& route) {
  std::vector<std::pair<topo::LinkId, tdm::Slot>> taken;
  for (tdm::Slot q : route.inject_slots) {
    for (const RouteEdge& e : route.edges) {
      const tdm::Slot s = params_.slot_at_link(q, e.depth);
      if (!schedule_.reserve(e.link, s, route.channel)) {
        for (const auto& [l, slot] : taken) schedule_.release(l, slot);
        return false;
      }
      taken.emplace_back(e.link, s);
    }
  }
  ++live_channels_;
  if (route.channel != tdm::kNoChannel && route.channel >= next_channel_)
    next_channel_ = route.channel + 1;
  return true;
}

void SlotAllocator::release(const RouteTree& route) {
  const std::size_t freed = schedule_.release_channel(route.channel);
  if (freed > 0 && live_channels_ > 0) --live_channels_;
}

void SlotAllocator::quarantine_link(topo::LinkId link) {
  if (quarantined_.size() != topo_->link_count()) quarantined_.resize(topo_->link_count(), false);
  if (link < quarantined_.size()) quarantined_[link] = true;
  finder_.exclude_link(link);
}

void SlotAllocator::clear_quarantine() {
  quarantined_.assign(quarantined_.size(), false);
  finder_.clear_exclusions();
}

std::vector<topo::LinkId> SlotAllocator::quarantined_links() const {
  std::vector<topo::LinkId> out;
  for (topo::LinkId l = 0; l < quarantined_.size(); ++l)
    if (quarantined_[l]) out.push_back(l);
  return out;
}

std::optional<RouteTree> SlotAllocator::allocate(const ChannelSpec& spec) {
#ifndef NDEBUG
  const tdm::ChannelId pre_next = next_channel_;
  const std::size_t pre_live = live_channels_;
#endif
  std::optional<RouteTree> r;
  if (valid_spec(spec)) {
    r = spec.dst_nis.size() == 1 ? allocate_unicast(spec) : allocate_multicast(spec);
  }
#ifndef NDEBUG
  // The no-leak invariant release() depends on: a failed allocation burns
  // no ChannelId and bumps no live-channel count; a successful one claims
  // exactly one of each.
  if (!r) {
    assert(next_channel_ == pre_next && live_channels_ == pre_live &&
           "failed allocation leaked a ChannelId or live-channel count");
  } else {
    assert(next_channel_ == pre_next + 1 && live_channels_ == pre_live + 1 &&
           r->channel == pre_next && "allocation must claim exactly one fresh ChannelId");
  }
#endif
  return r;
}

std::optional<RouteTree> SlotAllocator::allocate_unicast(const ChannelSpec& spec) {
  const auto paths = finder_.k_shortest(spec.src_ni, spec.dst_nis[0], options_.path_candidates);
  for (const topo::Path& p : paths) {
    if (auto r = allocate_on_path(p, spec.slots_required)) return r;
  }
  return std::nullopt;
}

std::optional<RouteTree> SlotAllocator::grow_tree(const topo::Path& trunk,
                                                  const ChannelSpec& spec) const {
  RouteTree tree = RouteTree::from_path(*topo_, trunk, {}, tdm::kNoChannel);
  tree.dst_nis = {trunk.dest(*topo_)};

  // Depth of every node currently on the tree.
  std::map<topo::NodeId, std::uint32_t> depth;
  depth[tree.src_ni] = 0;
  for (const RouteEdge& e : tree.edges) depth[topo_->link(e.link).dst] = e.depth + 1;

  for (std::size_t i = 1; i < spec.dst_nis.size(); ++i) {
    const topo::NodeId dst = spec.dst_nis[i];
    if (depth.count(dst) != 0) return std::nullopt; // dst interior to tree: not allowed

    // Branch from the tree router that yields the shortest attachment.
    // Branch paths may not pass *through* other tree nodes (that would
    // break the tree property), so links into tree nodes are forbidden.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> base_cost(topo_->link_count(), 1.0);
    for (const auto& [node, d] : depth) {
      (void)d;
      for (topo::LinkId l : topo_->node(node).in_links) base_cost[l] = kInf;
      if (topo_->is_ni(node)) // NIs cannot forward: no branch may leave one
        for (topo::LinkId l : topo_->node(node).out_links) base_cost[l] = kInf;
    }

    topo::Path best;
    std::uint32_t best_depth = 0;
    double best_cost = kInf;
    for (const auto& [node, d] : depth) {
      if (!topo_->is_router(node)) continue;
      const topo::Path p = finder_.shortest_weighted(node, dst, base_cost);
      if (p.empty()) continue;
      const double cost = static_cast<double>(p.links.size());
      if (cost < best_cost) {
        best_cost = cost;
        best = p;
        best_depth = d;
      }
    }
    if (best.empty()) return std::nullopt;

    for (std::size_t j = 0; j < best.links.size(); ++j) {
      tree.edges.push_back(RouteEdge{best.links[j], best_depth + static_cast<std::uint32_t>(j)});
      depth[topo_->link(best.links[j]).dst] = best_depth + static_cast<std::uint32_t>(j) + 1;
    }
    tree.dst_nis.push_back(dst);
  }

  std::sort(tree.edges.begin(), tree.edges.end(), [](const RouteEdge& a, const RouteEdge& b) {
    return a.depth < b.depth || (a.depth == b.depth && a.link < b.link);
  });
  return tree;
}

std::optional<RouteTree> SlotAllocator::allocate_multicast(const ChannelSpec& spec) {
  const auto trunks = finder_.k_shortest(spec.src_ni, spec.dst_nis[0], options_.path_candidates);
  for (const topo::Path& trunk : trunks) {
    auto tree = grow_tree(trunk, spec);
    if (!tree) continue;
    const auto avail = free_inject_slots(*tree);
    auto slots = choose_slots(avail, spec.slots_required);
    if (slots.size() < spec.slots_required) continue;
    tree->inject_slots = std::move(slots);
    std::sort(tree->inject_slots.begin(), tree->inject_slots.end());
    tree->channel = next_channel_id();
    // Keep destination order as specified (grow_tree appends in order).
    commit(*tree);
    ++live_channels_;
    return tree;
  }
  return std::nullopt;
}

} // namespace daelite::alloc
