#include "alloc/allocator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <functional>
#include <limits>
#include <map>

namespace daelite::alloc {

namespace {

/// Rotate an S-bit slot mask right by d positions: bit q of the result is
/// bit (q + d) mod S of the input. Used to express "link at depth k is
/// free in slot slot_at_link(q, k)" as a plain AND over rotated masks.
std::uint64_t rotate_slots_right(std::uint64_t mask, std::uint32_t d, std::uint32_t num_slots,
                                 std::uint64_t wheel_mask) {
  d %= num_slots;
  if (d == 0) return mask; // << (num_slots - 0) would be UB for 64-slot wheels
  return ((mask >> d) | (mask << (num_slots - d))) & wheel_mask;
}

} // namespace

std::string_view service_class_name(ServiceClass c) {
  switch (c) {
    case ServiceClass::kGuaranteed: return "guaranteed";
    case ServiceClass::kStandard: return "standard";
    case ServiceClass::kBestEffort: return "best_effort";
  }
  return "?";
}

std::vector<tdm::Slot> spread_pick(const std::vector<tdm::Slot>& avail, std::uint32_t want) {
  std::vector<tdm::Slot> picked;
  if (avail.size() < want) return picked;
  picked.reserve(want);
  // Integer arithmetic: position i maps to index (i * N) / want, which is
  // strictly increasing for want <= N (consecutive indices differ by at
  // least floor(N / want) >= 1). No accumulated floating-point error can
  // repeat or overrun an index.
  const std::size_t n = avail.size();
  for (std::uint32_t i = 0; i < want; ++i) {
    const std::size_t idx = (static_cast<std::size_t>(i) * n) / want;
#ifndef NDEBUG
    if (i > 0) {
      const std::size_t prev = (static_cast<std::size_t>(i - 1) * n) / want;
      assert(idx > prev && "spread_pick indices must be strictly increasing");
    }
    assert(idx < n);
#endif
    picked.push_back(avail[idx]);
  }
  return picked;
}

SlotAllocator::SlotAllocator(const topo::Topology& topo, tdm::TdmParams params,
                             AllocatorOptions options)
    : topo_(&topo),
      params_(params),
      options_(options),
      schedule_(topo.link_count(), params),
      finder_(topo) {
  assert(params_.valid());
  wheel_mask_ = params_.num_slots == 64 ? ~0ull : ((1ull << params_.num_slots) - 1);
  free_mask_.assign(topo.link_count(), wheel_mask_);
}

void SlotAllocator::note_reserved(topo::LinkId link, tdm::Slot slot) {
  const std::uint64_t bit = 1ull << slot;
  assert((free_mask_[link] & bit) != 0 && "summary out of sync: slot already reserved");
  free_mask_[link] &= ~bit;
  ++reserved_pairs_;
}

void SlotAllocator::note_released(topo::LinkId link, tdm::Slot slot) {
  const std::uint64_t bit = 1ull << slot;
  assert((free_mask_[link] & bit) == 0 && "summary out of sync: slot already free");
  free_mask_[link] |= bit;
  assert(reserved_pairs_ > 0);
  --reserved_pairs_;
}

std::uint32_t SlotAllocator::link_free_slots(topo::LinkId link) const {
  assert(link < free_mask_.size());
  return static_cast<std::uint32_t>(std::popcount(free_mask_[link]));
}

double SlotAllocator::utilization() const {
  const std::size_t total = free_mask_.size() * params_.num_slots;
  if (total == 0) return 0.0;
  return static_cast<double>(reserved_pairs_) / static_cast<double>(total);
}

bool SlotAllocator::reserve_raw(topo::LinkId link, tdm::Slot slot, tdm::ChannelId ch) {
  const bool was_free = schedule_.is_free(link, slot);
  if (!schedule_.reserve(link, slot, ch)) return false;
  if (was_free) note_reserved(link, slot); // idempotent re-reserve: no change
  return true;
}

std::vector<tdm::Slot> SlotAllocator::free_inject_slots(const RouteTree& shape) const {
  if (options_.incremental) {
    // AND of the per-link masks, each rotated so its depth-k slot lines up
    // with the injection slot: |edges| word operations instead of a
    // num_slots x |edges| schedule scan.
    std::uint64_t m = wheel_mask_;
    const std::uint32_t shift = params_.slot_shift_per_hop();
    for (const RouteEdge& e : shape.edges) {
      m &= rotate_slots_right(free_mask_[e.link], e.depth * shift, params_.num_slots, wheel_mask_);
      if (m == 0) break;
    }
    std::vector<tdm::Slot> out;
    out.reserve(static_cast<std::size_t>(std::popcount(m)));
    while (m != 0) {
      const auto q = static_cast<tdm::Slot>(std::countr_zero(m));
      out.push_back(q);
      m &= m - 1;
    }
#ifndef NDEBUG
    // The mask summary must agree with the schedule scan exactly.
    std::vector<tdm::Slot> check;
    for (tdm::Slot q = 0; q < params_.num_slots; ++q) {
      bool ok = true;
      for (const RouteEdge& e : shape.edges) {
        if (!schedule_.is_free(e.link, params_.slot_at_link(q, e.depth))) {
          ok = false;
          break;
        }
      }
      if (ok) check.push_back(q);
    }
    assert(out == check && "free-slot mask summary diverged from the schedule");
#endif
    return out;
  }
  std::vector<tdm::Slot> out;
  for (tdm::Slot q = 0; q < params_.num_slots; ++q) {
    bool ok = true;
    for (const RouteEdge& e : shape.edges) {
      if (!schedule_.is_free(e.link, params_.slot_at_link(q, e.depth))) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(q);
  }
  return out;
}

std::vector<tdm::Slot> SlotAllocator::choose_slots(const std::vector<tdm::Slot>& avail,
                                                   std::uint32_t want) const {
  if (avail.size() < want) return {};
  if (options_.slot_policy == SlotPolicy::kFirstFit || want == 0) {
    return {avail.begin(), avail.begin() + want};
  }
  // kSpread keeps the worst-case scheduling latency (wait for the next
  // owned slot) low by picking evenly spaced available slots.
  return spread_pick(avail, want);
}

void SlotAllocator::commit(const RouteTree& route) {
  for (tdm::Slot q : route.inject_slots) {
    for (const RouteEdge& e : route.edges) {
      const tdm::Slot s = params_.slot_at_link(q, e.depth);
      const bool ok = schedule_.reserve(e.link, s, route.channel);
      assert(ok && "commit of an infeasible route");
      (void)ok;
      note_reserved(e.link, s);
    }
  }
}

bool SlotAllocator::valid_spec(const ChannelSpec& spec) const {
  // A zero-bandwidth channel must not "succeed": committing an empty route
  // burns a ChannelId and bumps live_channels_ for a channel release()
  // can never decrement (release frees 0 slots).
  if (spec.slots_required == 0) return false;
  if (spec.dst_nis.empty()) return false;
  if (spec.src_ni >= topo_->node_count() || !topo_->is_ni(spec.src_ni)) return false;
  for (std::size_t i = 0; i < spec.dst_nis.size(); ++i) {
    const topo::NodeId dst = spec.dst_nis[i];
    if (dst >= topo_->node_count() || !topo_->is_ni(dst)) return false;
    if (dst == spec.src_ni) return false;
    for (std::size_t j = i + 1; j < spec.dst_nis.size(); ++j)
      if (spec.dst_nis[j] == dst) return false;
  }
  return true;
}

tdm::ChannelId SlotAllocator::next_channel_id() {
  if (!free_ids_.empty()) {
    std::pop_heap(free_ids_.begin(), free_ids_.end(), std::greater<>{});
    const tdm::ChannelId id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }
  return next_channel_++;
}

void SlotAllocator::recycle_channel_id(tdm::ChannelId ch) {
  if (ch == tdm::kNoChannel) return;
#ifndef NDEBUG
  assert(std::find(free_ids_.begin(), free_ids_.end(), ch) == free_ids_.end() &&
         "double-recycled ChannelId");
#endif
  free_ids_.push_back(ch);
  std::push_heap(free_ids_.begin(), free_ids_.end(), std::greater<>{});
}

void SlotAllocator::unrecycle_channel_id(tdm::ChannelId ch) {
  const auto it = std::find(free_ids_.begin(), free_ids_.end(), ch);
  if (it == free_ids_.end()) return;
  free_ids_.erase(it);
  std::make_heap(free_ids_.begin(), free_ids_.end(), std::greater<>{});
}

std::optional<RouteTree> SlotAllocator::allocate_on_path(const topo::Path& path,
                                                         std::uint32_t slots_required) {
  if (path.empty() || slots_required == 0) return std::nullopt;
  // The path finder never proposes quarantined links, but caller-chosen
  // paths (tests, the multipath allocator's precomputed candidates) must
  // hit the same wall.
  for (topo::LinkId l : path.links)
    if (is_quarantined(l)) return std::nullopt;
  if (options_.incremental) {
    // Capacity prune: a link with fewer free slots than requested caps the
    // feasible injection set below the request, whatever the alignment —
    // skip the per-slot search entirely. Decision-identical: the full
    // search would return < slots_required available slots.
    for (topo::LinkId l : path.links)
      if (link_free_slots(l) < slots_required) return std::nullopt;
  }
  RouteTree shape = RouteTree::from_path(*topo_, path, {}, tdm::kNoChannel);
  const auto avail = free_inject_slots(shape);
  auto slots = choose_slots(avail, slots_required);
  if (slots.size() < slots_required) return std::nullopt;
  shape.inject_slots = std::move(slots);
  std::sort(shape.inject_slots.begin(), shape.inject_slots.end());
  shape.channel = next_channel_id();
  commit(shape);
  ++live_channels_;
  return shape;
}

bool SlotAllocator::restore(const RouteTree& route) {
  std::vector<std::pair<topo::LinkId, tdm::Slot>> taken;
  for (tdm::Slot q : route.inject_slots) {
    for (const RouteEdge& e : route.edges) {
      const tdm::Slot s = params_.slot_at_link(q, e.depth);
      if (!schedule_.reserve(e.link, s, route.channel)) {
        for (const auto& [l, slot] : taken) {
          schedule_.release(l, slot);
          note_released(l, slot);
        }
        return false;
      }
      note_reserved(e.link, s);
      taken.emplace_back(e.link, s);
    }
  }
  ++live_channels_;
  // Re-claim the id: it must not be handed out again while the restored
  // route holds reservations — neither from the recycling free-list (the
  // release that preceded this restore put it there) nor from the fresh-id
  // watermark (mirroring into a fresh allocator, as the recovery runner
  // does, restores ids the allocator never issued).
  if (route.channel != tdm::kNoChannel) {
    unrecycle_channel_id(route.channel);
    if (route.channel >= next_channel_) next_channel_ = route.channel + 1;
  }
  return true;
}

void SlotAllocator::release(const RouteTree& route) {
  if (route.channel == tdm::kNoChannel) return;
  // Targeted release: the route names every (link, slot) pair its channel
  // owns, so freeing is O(|route|) instead of a full-schedule scan — the
  // difference between O(1) and O(links x slots) tear-downs under churn.
  std::size_t freed = 0;
  for (tdm::Slot q : route.inject_slots) {
    for (const RouteEdge& e : route.edges) {
      const tdm::Slot s = params_.slot_at_link(q, e.depth);
      if (schedule_.owner(e.link, s) != route.channel) continue; // already released
      schedule_.release(e.link, s);
      note_released(e.link, s);
      ++freed;
    }
  }
  if (freed > 0 && live_channels_ > 0) {
    assert(schedule_.reservations_of(route.channel) == 0 &&
           "release left reservations the route did not name");
    --live_channels_;
    // The id is free for reuse only when this release actually tore the
    // channel down (a double release must not double-recycle: the next
    // owner of the id would alias the first).
    recycle_channel_id(route.channel);
  }
}

std::optional<SlotAllocator::PreemptionPlan> SlotAllocator::plan_preemption(
    const ChannelSpec& spec, const std::function<bool(tdm::ChannelId)>& preemptable) {
  if (!valid_spec(spec) || spec.dst_nis.size() != 1 || !preemptable) return std::nullopt;

  std::optional<PreemptionPlan> best;
  const auto& paths = candidate_paths(spec.src_ni, spec.dst_nis[0]);
  for (std::size_t pi = 0; pi < paths.size(); ++pi) {
    const topo::Path& p = paths[pi];
    if (p.empty()) continue;
    const RouteTree shape = RouteTree::from_path(*topo_, p, {}, tdm::kNoChannel);

    // Feasible injection slots under "free OR preemptable" occupancy, each
    // with the channels that would have to go.
    struct SlotChoice {
      tdm::Slot q = 0;
      std::vector<tdm::ChannelId> victims; ///< sorted, unique
    };
    std::vector<SlotChoice> feasible;
    for (tdm::Slot q = 0; q < params_.num_slots; ++q) {
      SlotChoice c;
      c.q = q;
      bool ok = true;
      for (const RouteEdge& e : shape.edges) {
        const tdm::Slot s = params_.slot_at_link(q, e.depth);
        const tdm::ChannelId owner = schedule_.owner(e.link, s);
        if (owner == tdm::kNoChannel) continue;
        if (!preemptable(owner)) {
          ok = false;
          break;
        }
        const auto it = std::lower_bound(c.victims.begin(), c.victims.end(), owner);
        if (it == c.victims.end() || *it != owner) c.victims.insert(it, owner);
      }
      if (ok) feasible.push_back(std::move(c));
    }
    if (feasible.size() < spec.slots_required) continue;

    // Greedy min-victims cover: repeatedly take the unchosen slot adding the
    // fewest channels not already condemned (ties: lowest slot).
    std::vector<tdm::ChannelId> condemned;
    std::vector<bool> chosen(feasible.size(), false);
    const auto new_victims = [&](const SlotChoice& c) {
      std::size_t n = 0;
      for (tdm::ChannelId v : c.victims)
        if (!std::binary_search(condemned.begin(), condemned.end(), v)) ++n;
      return n;
    };
    for (std::uint32_t picked = 0; picked < spec.slots_required; ++picked) {
      std::size_t best_i = feasible.size();
      std::size_t best_add = std::numeric_limits<std::size_t>::max();
      for (std::size_t i = 0; i < feasible.size(); ++i) {
        if (chosen[i]) continue;
        const std::size_t add = new_victims(feasible[i]);
        if (add < best_add) {
          best_add = add;
          best_i = i;
        }
      }
      chosen[best_i] = true;
      for (tdm::ChannelId v : feasible[best_i].victims) {
        const auto it = std::lower_bound(condemned.begin(), condemned.end(), v);
        if (it == condemned.end() || *it != v) condemned.insert(it, v);
      }
    }

    if (!best || condemned.size() < best->victims.size()) {
      best.emplace();
      best->path = p;
      best->path_index = pi;
      best->victims = std::move(condemned);
      if (best->victims.empty()) break; // cannot beat a free path
    }
  }
  return best;
}

void SlotAllocator::quarantine_link(topo::LinkId link) {
  if (quarantined_.size() != topo_->link_count()) quarantined_.resize(topo_->link_count(), false);
  if (link < quarantined_.size()) quarantined_[link] = true;
  finder_.exclude_link(link);
  path_cache_.clear(); // memoized paths may cross the newly excluded link
}

void SlotAllocator::clear_quarantine() {
  quarantined_.assign(quarantined_.size(), false);
  finder_.clear_exclusions();
  path_cache_.clear(); // shorter paths may be legal again
}

std::vector<topo::LinkId> SlotAllocator::quarantined_links() const {
  std::vector<topo::LinkId> out;
  for (topo::LinkId l = 0; l < quarantined_.size(); ++l)
    if (quarantined_[l]) out.push_back(l);
  return out;
}

const std::vector<topo::Path>& SlotAllocator::candidate_paths(topo::NodeId src,
                                                              topo::NodeId dst) {
  if (!options_.incremental) {
    scratch_paths_ = finder_.k_shortest(src, dst, options_.path_candidates);
    return scratch_paths_;
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  const auto it = path_cache_.find(key);
  if (it != path_cache_.end()) return it->second;
  return path_cache_.emplace(key, finder_.k_shortest(src, dst, options_.path_candidates))
      .first->second;
}

std::optional<RouteTree> SlotAllocator::allocate(const ChannelSpec& spec) {
#ifndef NDEBUG
  const tdm::ChannelId pre_next = next_channel_;
  const std::size_t pre_live = live_channels_;
  const std::size_t pre_free = free_ids_.size();
#endif
  std::optional<RouteTree> r;
  if (valid_spec(spec)) {
    r = spec.dst_nis.size() == 1 ? allocate_unicast(spec) : allocate_multicast(spec);
  }
#ifndef NDEBUG
  // The no-leak invariant release() depends on: a failed allocation burns
  // no ChannelId (fresh or recycled) and bumps no live-channel count; a
  // successful one claims exactly one — either the next fresh id or the
  // smallest recycled one.
  if (!r) {
    assert(next_channel_ == pre_next && live_channels_ == pre_live &&
           free_ids_.size() == pre_free &&
           "failed allocation leaked a ChannelId or live-channel count");
  } else {
    assert(live_channels_ == pre_live + 1 && "allocation must claim exactly one live channel");
    const bool fresh = r->channel == pre_next && next_channel_ == pre_next + 1 &&
                       free_ids_.size() == pre_free;
    const bool recycled = r->channel < pre_next && next_channel_ == pre_next &&
                          free_ids_.size() == pre_free - 1;
    assert((fresh || recycled) && "allocation must claim exactly one fresh or recycled id");
  }
#endif
  return r;
}

std::optional<RouteTree> SlotAllocator::allocate_unicast(const ChannelSpec& spec) {
  const auto& paths = candidate_paths(spec.src_ni, spec.dst_nis[0]);
  for (const topo::Path& p : paths) {
    if (auto r = allocate_on_path(p, spec.slots_required)) return r;
  }
  return std::nullopt;
}

std::optional<RouteTree> SlotAllocator::grow_tree(const topo::Path& trunk,
                                                  const ChannelSpec& spec) const {
  RouteTree tree = RouteTree::from_path(*topo_, trunk, {}, tdm::kNoChannel);
  tree.dst_nis = {trunk.dest(*topo_)};

  // Depth of every node currently on the tree.
  std::map<topo::NodeId, std::uint32_t> depth;
  depth[tree.src_ni] = 0;
  for (const RouteEdge& e : tree.edges) depth[topo_->link(e.link).dst] = e.depth + 1;

  for (std::size_t i = 1; i < spec.dst_nis.size(); ++i) {
    const topo::NodeId dst = spec.dst_nis[i];
    if (depth.count(dst) != 0) return std::nullopt; // dst interior to tree: not allowed

    // Branch from the tree router that yields the shortest attachment.
    // Branch paths may not pass *through* other tree nodes (that would
    // break the tree property), so links into tree nodes are forbidden.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> base_cost(topo_->link_count(), 1.0);
    for (const auto& [node, d] : depth) {
      (void)d;
      for (topo::LinkId l : topo_->node(node).in_links) base_cost[l] = kInf;
      if (topo_->is_ni(node)) // NIs cannot forward: no branch may leave one
        for (topo::LinkId l : topo_->node(node).out_links) base_cost[l] = kInf;
    }

    topo::Path best;
    std::uint32_t best_depth = 0;
    double best_cost = kInf;
    for (const auto& [node, d] : depth) {
      if (!topo_->is_router(node)) continue;
      const topo::Path p = finder_.shortest_weighted(node, dst, base_cost);
      if (p.empty()) continue;
      const double cost = static_cast<double>(p.links.size());
      if (cost < best_cost) {
        best_cost = cost;
        best = p;
        best_depth = d;
      }
    }
    if (best.empty()) return std::nullopt;

    for (std::size_t j = 0; j < best.links.size(); ++j) {
      tree.edges.push_back(RouteEdge{best.links[j], best_depth + static_cast<std::uint32_t>(j)});
      depth[topo_->link(best.links[j]).dst] = best_depth + static_cast<std::uint32_t>(j) + 1;
    }
    tree.dst_nis.push_back(dst);
  }

  std::sort(tree.edges.begin(), tree.edges.end(), [](const RouteEdge& a, const RouteEdge& b) {
    return a.depth < b.depth || (a.depth == b.depth && a.link < b.link);
  });
  return tree;
}

std::optional<RouteTree> SlotAllocator::allocate_multicast(const ChannelSpec& spec) {
  const auto& trunks = candidate_paths(spec.src_ni, spec.dst_nis[0]);
  for (const topo::Path& trunk : trunks) {
    auto tree = grow_tree(trunk, spec);
    if (!tree) continue;
    const auto avail = free_inject_slots(*tree);
    auto slots = choose_slots(avail, spec.slots_required);
    if (slots.size() < spec.slots_required) continue;
    tree->inject_slots = std::move(slots);
    std::sort(tree->inject_slots.begin(), tree->inject_slots.end());
    tree->channel = next_channel_id();
    // Keep destination order as specified (grow_tree appends in order).
    commit(*tree);
    ++live_channels_;
    return tree;
  }
  return std::nullopt;
}

} // namespace daelite::alloc
