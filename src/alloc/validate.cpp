#include "alloc/validate.hpp"

#include <map>
#include <sstream>

namespace daelite::alloc {

std::string validate_allocation(const topo::Topology& t, const tdm::TdmParams& p,
                                const tdm::Schedule& schedule,
                                std::span<const RouteTree> routes) {
  std::ostringstream err;

  // (link, slot) -> channel claimed by some route.
  std::map<std::pair<topo::LinkId, tdm::Slot>, tdm::ChannelId> claims;

  for (const RouteTree& r : routes) {
    const std::string tree_err = validate_route_tree(t, r);
    if (!tree_err.empty()) {
      err << "channel " << r.channel << ": " << tree_err;
      return err.str();
    }
    for (tdm::Slot q : r.inject_slots) {
      for (const RouteEdge& e : r.edges) {
        const tdm::Slot s = p.slot_at_link(q, e.depth);
        const auto key = std::make_pair(e.link, s);
        auto [it, inserted] = claims.emplace(key, r.channel);
        if (!inserted && it->second != r.channel) {
          err << "link " << e.link << " slot " << s << " claimed by channels " << it->second
              << " and " << r.channel;
          return err.str();
        }
        if (schedule.owner(e.link, s) != r.channel) {
          err << "schedule owner of link " << e.link << " slot " << s << " is "
              << schedule.owner(e.link, s) << ", expected channel " << r.channel;
          return err.str();
        }
      }
    }
  }

  // No unexplained reservations.
  for (topo::LinkId l = 0; l < schedule.link_count(); ++l) {
    for (tdm::Slot s = 0; s < p.num_slots; ++s) {
      if (schedule.is_free(l, s)) continue;
      if (claims.count({l, s}) == 0) {
        err << "schedule reserves link " << l << " slot " << s << " for channel "
            << schedule.owner(l, s) << " but no live route explains it";
        return err.str();
      }
    }
  }
  return {};
}

} // namespace daelite::alloc
