#pragma once
// Cross-checks between routes and the global schedule. Used heavily by the
// property tests: after any sequence of allocations and releases, the
// schedule must be exactly the union of the live routes' reservations, and
// no two live routes may claim the same (link, slot).

#include <span>
#include <string>

#include "alloc/route.hpp"
#include "tdm/params.hpp"
#include "tdm/schedule.hpp"
#include "topology/graph.hpp"

namespace daelite::alloc {

/// Verify that `routes` (the live channels) and `schedule` agree:
///  * every route is structurally valid (validate_route_tree);
///  * every (link, slot) a route uses is owned by its channel;
///  * the schedule holds no reservation not explained by a route;
///  * no two routes overlap.
/// Returns an empty string when consistent, else a diagnostic.
std::string validate_allocation(const topo::Topology& t, const tdm::TdmParams& p,
                                const tdm::Schedule& schedule,
                                std::span<const RouteTree> routes);

} // namespace daelite::alloc
