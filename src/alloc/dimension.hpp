#pragma once
// Network dimensioning — the front half of the Æthereal toolflow the
// paper reuses ("for network dimensioning and hardware instantiation we
// use the standard Æthereal tools", §I).
//
// Applications specify connections physically: payload bandwidth in
// MB/s and an optional worst-case latency bound in ns. Given the NoC's
// clock frequency and word width, the dimensioning tool converts the
// demands into TDM slots, searches the smallest slot-table size S that
// admits the whole use case, and verifies every latency bound against
// the worst-case analytic latency of the actual allocation (scheduling
// wait at the source + 2 cycles per hop + serialization).

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/usecase.hpp"
#include "tdm/params.hpp"
#include "topology/graph.hpp"

namespace daelite::alloc {

struct PhysicalConnectionSpec {
  std::string name;
  topo::NodeId src_ni = topo::kInvalidNode;
  std::vector<topo::NodeId> dst_nis;
  double bandwidth_mbytes_per_s = 1.0;   ///< payload demand, request direction
  double response_bandwidth_mbytes_per_s = 0.0; ///< 0 = minimal (1 slot)
  double max_latency_ns = std::numeric_limits<double>::infinity();
  /// Traffic shape (scenario `stream` lines). Dimensioning ignores these;
  /// the runner paces the source instead of saturating it. period == 0:
  /// saturated (the default). period > 0: an open-loop source offering
  /// `burst` words every `period` cycles; bursty_seed != 0 additionally
  /// gates the periods through a seeded geometric on/off process.
  std::uint32_t stream_period = 0;
  std::uint32_t stream_burst = 1;
  std::uint64_t bursty_seed = 0;
  /// QoS class (scenario `class` token). Dimensioning passes it through to
  /// the allocated ConnectionSpec; the recovery runner preempts and
  /// compacts by it.
  ServiceClass service_class = ServiceClass::kStandard;
};

struct NocClocking {
  double freq_mhz = 500.0;
  std::uint32_t word_bytes = 4;

  /// Raw link payload bandwidth in MB/s (one word per cycle).
  double link_mbytes_per_s() const { return freq_mhz * word_bytes; }
  double ns_per_cycle() const { return 1000.0 / freq_mhz; }
};

/// Slots needed for `mbps` of payload on a wheel of S slots (daelite
/// slots are all payload). At least 1.
std::uint32_t slots_for_bandwidth(double mbps, std::uint32_t num_slots, const NocClocking& clk);

struct DimensionedConnection {
  PhysicalConnectionSpec spec;
  std::uint32_t request_slots = 0;
  std::uint32_t response_slots = 0;
  double achieved_mbytes_per_s = 0.0;
  double worst_latency_ns = 0.0; ///< analytic worst case for one word
};

struct DimensionResult {
  tdm::TdmParams params;
  UseCaseAllocation allocation;
  std::vector<DimensionedConnection> connections;
  double schedule_utilization = 0.0;
};

/// Try wheel sizes in `candidates` (ascending) until the whole use case
/// fits with every latency bound met. Returns nullopt (and `why`) if none
/// works.
std::optional<DimensionResult> dimension_network(
    const topo::Topology& topo, const std::vector<PhysicalConnectionSpec>& specs,
    const NocClocking& clk, const std::vector<std::uint32_t>& candidates = {8, 16, 32, 64},
    std::string* why = nullptr);

} // namespace daelite::alloc
