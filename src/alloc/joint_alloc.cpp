#include "alloc/joint_alloc.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <vector>

#include "topology/path.hpp"

namespace daelite::alloc {

namespace {

/// Bitmask of slots free on `link` (bit s set = slot s free).
std::uint64_t free_mask(const tdm::Schedule& sched, topo::LinkId link, std::uint32_t s) {
  std::uint64_t m = 0;
  for (tdm::Slot slot = 0; slot < s; ++slot)
    if (sched.is_free(link, slot)) m |= (1ull << slot);
  return m;
}

/// Rotate an S-bit mask right by k: result bit q = input bit (q+k) mod S.
std::uint64_t ror_s(std::uint64_t m, std::uint32_t k, std::uint32_t s) {
  k %= s;
  const std::uint64_t all = (s >= 64) ? ~0ull : ((1ull << s) - 1);
  m &= all;
  if (k == 0) return m;
  return ((m >> k) | (m << (s - k))) & all;
}

struct State {
  topo::NodeId node = topo::kInvalidNode;
  std::uint64_t mask = 0;
  std::int32_t parent = -1;  ///< index into the state arena
  topo::LinkId via = topo::kInvalidLink;
  std::array<std::uint64_t, 2> visited{}; ///< nodes on the partial path (<= 128 nodes)
};

bool test_visited(const std::array<std::uint64_t, 2>& v, topo::NodeId n) {
  return (v[n >> 6] >> (n & 63)) & 1;
}
void set_visited(std::array<std::uint64_t, 2>& v, topo::NodeId n) {
  v[n >> 6] |= 1ull << (n & 63);
}

} // namespace

std::optional<RouteTree> allocate_joint(SlotAllocator& alloc, const ChannelSpec& spec,
                                        std::size_t max_depth, JointSearchStats* stats) {
  assert(spec.dst_nis.size() == 1 && "joint search handles unicast channels");
  const topo::Topology& t = alloc.topology();
  const tdm::TdmParams& p = alloc.params();
  const std::uint32_t s = p.num_slots;
  const std::uint32_t shift = p.slot_shift_per_hop();
  const tdm::Schedule& sched = alloc.schedule();
  const topo::NodeId src = spec.src_ni;
  const topo::NodeId dst = spec.dst_nis[0];

  if (max_depth == 0) {
    const auto shortest = topo::PathFinder(t).shortest(src, dst);
    if (shortest.empty()) return std::nullopt;
    max_depth = 4 * shortest.hop_count();
  }

  // Precompute per-link free masks once.
  std::vector<std::uint64_t> link_free(t.link_count());
  for (topo::LinkId l = 0; l < t.link_count(); ++l) link_free[l] = free_mask(sched, l, s);

  const std::uint64_t all = (s >= 64) ? ~0ull : ((1ull << s) - 1);
  assert(t.node_count() <= 128 && "joint search supports up to 128 nodes");
  std::vector<State> arena;
  State root{src, all, -1, topo::kInvalidLink, {}};
  set_visited(root.visited, src);
  arena.push_back(root);

  // Pareto fronts: per (node, depth mod S), the (mask, visited) pairs
  // already accepted. A state dominates another only when all three hold:
  //  * superset slot mask (can carry at least the same slots),
  //  * subset visited set (can take at least the same completions), and
  //  * equal depth modulo S — crucial, because the rotation applied to
  //    future links depends on the path length, so masks at different
  //    depths (mod S) are incomparable.
  struct Accepted {
    std::uint64_t mask;
    std::array<std::uint64_t, 2> visited;
  };
  std::vector<std::vector<std::vector<Accepted>>> accepted(
      t.node_count(), std::vector<std::vector<Accepted>>(s));
  accepted[src][0].push_back({all, arena[0].visited});

  std::vector<std::size_t> frontier{0};
  for (std::size_t depth = 0; depth < max_depth && !frontier.empty(); ++depth) {
    std::vector<std::size_t> next;
    for (const std::size_t si : frontier) {
      const State st = arena[si]; // copy: arena may reallocate
      if (stats) ++stats->states_expanded;
      for (topo::LinkId l : t.node(st.node).out_links) {
        const topo::NodeId v = t.link(l).dst;
        if (t.is_ni(v) && v != dst) continue; // NIs are not transit nodes
        if (test_visited(st.visited, v)) continue; // keep paths loopless
        const std::uint64_t m =
            st.mask & ror_s(link_free[l], static_cast<std::uint32_t>(depth) * shift, s);
        if (static_cast<std::uint32_t>(std::popcount(m)) < spec.slots_required) {
          if (stats) ++stats->states_pruned;
          continue;
        }
        if (v == dst) {
          // Reconstruct the path and commit through the allocator.
          std::vector<topo::LinkId> links{l};
          for (std::int32_t at = static_cast<std::int32_t>(si); at >= 0 && arena[at].parent >= 0;
               at = arena[at].parent)
            links.push_back(arena[at].via);
          std::reverse(links.begin(), links.end());
          topo::Path path;
          path.links = std::move(links);
          return alloc.allocate_on_path(path, spec.slots_required);
        }
        // Dominance check at v.
        State ns{v, m, static_cast<std::int32_t>(si), l, st.visited};
        set_visited(ns.visited, v);
        const std::uint32_t phase = static_cast<std::uint32_t>((depth + 1) % s);
        bool dominated = false;
        for (const Accepted& a : accepted[v][phase]) {
          const bool mask_superset = (m & a.mask) == m;
          const bool visited_subset = (a.visited[0] & ~ns.visited[0]) == 0 &&
                                      (a.visited[1] & ~ns.visited[1]) == 0;
          if (mask_superset && visited_subset) {
            dominated = true;
            break;
          }
        }
        if (dominated) {
          if (stats) ++stats->states_pruned;
          continue;
        }
        accepted[v][phase].push_back({m, ns.visited});
        arena.push_back(ns);
        next.push_back(arena.size() - 1);
        if (arena.size() > 500000) return std::nullopt; // state-explosion guard
      }
    }
    frontier = std::move(next);
  }
  return std::nullopt;
}

} // namespace daelite::alloc
