#pragma once
// Channel routes: the allocator's output and the configuration subsystem's
// input.
//
// Timing convention (derived from the paper's Fig. 6 example and the
// 2-cycle hop): a channel injected by its source NI in slot q behaves as a
// pipeline in which each network element acts `shift` slots after its
// predecessor (shift = hop_cycles / words_per_slot, 1 for daelite's 2-word
// slots):
//
//   element          position p   acting slot
//   source NI        0            q
//   router R_1       1            q + shift
//   ...              ...          ...
//   router R_m       m            q + m*shift
//   destination NI   m+1          q + (m+1)*shift
//
// "Acting" means writing the element's output register (for the dst NI:
// accepting into the channel queue). The slot-table entry that forwards the
// channel at router R_p is indexed by R_p's acting slot, and the schedule
// reservation for the p-th link of the path uses the driving element's
// acting slot — so a (link, slot) reservation is literally one slot-table
// entry. This reproduces the paper's example exactly: path NI10-R10-R11-
// NI11, destination slots {4,7} -> R11 {3,6} -> R10 {2,5} -> NI10 {1,4}.

#include <cstdint>
#include <optional>
#include <vector>

#include "tdm/ids.hpp"
#include "tdm/params.hpp"
#include "topology/graph.hpp"
#include "topology/path.hpp"

namespace daelite::alloc {

/// One link of a route tree together with its distance (in links) from the
/// source NI. For a unicast route, depths are 0..m along the path.
struct RouteEdge {
  topo::LinkId link = topo::kInvalidLink;
  std::uint32_t depth = 0;

  bool operator==(const RouteEdge&) const = default;
};

/// A (possibly multicast) channel route: a tree of links rooted at the
/// source NI, plus the TDM slots the source injects in.
struct RouteTree {
  tdm::ChannelId channel = tdm::kNoChannel;
  topo::NodeId src_ni = topo::kInvalidNode;
  std::vector<topo::NodeId> dst_nis;
  std::vector<RouteEdge> edges;          ///< unique links, sorted by (depth, link)
  std::vector<tdm::Slot> inject_slots;   ///< q values, sorted ascending

  bool is_unicast() const { return dst_nis.size() == 1; }
  std::size_t slot_count() const { return inject_slots.size(); }

  /// Build a unicast route from a path.
  static RouteTree from_path(const topo::Topology& t, const topo::Path& p,
                             std::vector<tdm::Slot> inject_slots,
                             tdm::ChannelId ch = tdm::kNoChannel);

  /// Depth (links from source) at which `node` is reached, if on the tree.
  std::optional<std::uint32_t> depth_of(const topo::Topology& t, topo::NodeId node) const;

  /// Number of links from the source NI to destination `dst`.
  std::optional<std::uint32_t> dst_link_count(const topo::Topology& t, topo::NodeId dst) const;

  /// Slot in which the destination NI accepts a flit injected in slot q.
  /// With n links to the destination, the dst NI is element n of the
  /// pipeline, so its acting slot is slot_at_link(q, n).
  tdm::Slot rx_slot(const topo::Topology& t, const tdm::TdmParams& p, topo::NodeId dst,
                    tdm::Slot q) const;

  /// The unique edge entering `node`, if any.
  std::optional<RouteEdge> edge_into(const topo::Topology& t, topo::NodeId node) const;

  /// Outgoing tree edges of `node`.
  std::vector<RouteEdge> edges_from(const topo::Topology& t, topo::NodeId node) const;
};

/// Structural validation of a route tree: edges form a tree rooted at
/// src_ni with consistent depths, branches only at routers, every
/// destination reached, no destination interior to the tree.
/// Returns an empty string when valid, else a diagnostic.
std::string validate_route_tree(const topo::Topology& t, const RouteTree& r);

// --- Configuration segments -------------------------------------------------
//
// The daelite configuration network programs a route as one or more *path
// segments* (paper §IV: "It is not mandatory that a packet contains a
// complete source-to-destination NI path, independent path segments can be
// initialized as well. This is used to set up broadcast or multicast
// trees"). Each segment lists elements destination-first; the accompanying
// slot mask gives the slots at the first listed element and every element
// rotates the mask by `shift` positions per (ID, ports) pair processed.

struct CfgElement {
  topo::NodeId node = topo::kInvalidNode;
  /// Router: input port. Source NI: unused. Destination NI: rx queue index.
  std::uint8_t in_port = 0;
  /// Router: output port. Source NI: tx queue index. Dest NI: unused.
  std::uint8_t out_port = 0;
  bool is_ni = false;
  bool is_source_ni = false; ///< only for the source NI of the channel
};

struct CfgSegment {
  /// Elements in packet order (destination of the segment first).
  std::vector<CfgElement> elements;
  /// Slots at the *first listed element* (mask reference point).
  std::vector<tdm::Slot> slots_at_head;
};

/// Decompose a route tree into configuration segments. The first segment
/// covers the full path to dst_nis[0] (source NI last, so downstream
/// elements initialize first); each further destination contributes a
/// partial segment ending (upstream-most) at its branch router, which is
/// re-programmed with its existing input port and the new output port.
/// `tx_queue` / `rx_queue(dst)` give the NI-local queue indices encoded in
/// the NI configuration words.
std::vector<CfgSegment> make_cfg_segments(const topo::Topology& t, const tdm::TdmParams& p,
                                          const RouteTree& r, std::uint8_t tx_queue,
                                          const std::vector<std::uint8_t>& rx_queues);

} // namespace daelite::alloc
