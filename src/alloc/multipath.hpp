#pragma once
// Multipath slot allocation.
//
// Paper §V: "daelite allows routing one connection over multiple paths at
// no additional cost. In [29] it was shown that multipath routing can
// provide bandwidth gains of 24% on average." Because daelite routing is
// purely time-triggered, splitting a channel's slots over several paths
// needs no extra hardware — each path is just more slot-table entries.
//
// This allocator implements the [29] idea: satisfy a bandwidth request by
// taking slots from several (loopless, k-shortest) paths when no single
// path has enough free slots.

#include <optional>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/route.hpp"

namespace daelite::alloc {

struct MultipathRoute {
  /// One RouteTree per used path. All share src/dst; each has its own
  /// ChannelId (its own slot-table entries), as in daelite hardware.
  std::vector<RouteTree> parts;

  std::uint32_t total_slots() const {
    std::uint32_t n = 0;
    for (const auto& p : parts) n += static_cast<std::uint32_t>(p.inject_slots.size());
    return n;
  }
};

class MultipathAllocator {
 public:
  explicit MultipathAllocator(SlotAllocator& base, std::size_t max_paths = 4)
      : base_(&base), max_paths_(max_paths) {}

  /// Allocate `spec.slots_required` slots over up to max_paths paths.
  /// All-or-nothing: on failure nothing stays reserved.
  std::optional<MultipathRoute> allocate(const ChannelSpec& spec);

  void release(const MultipathRoute& route);

 private:
  SlotAllocator* base_;
  std::size_t max_paths_;
};

} // namespace daelite::alloc
