#pragma once
// Online allocation service under churn — the paper's fast-connection-
// set-up claim turned into a long-running server (ROADMAP: "millions of
// connections"). Instead of the offline front end that dimensions one
// use-case and stops, a ChurnService fields an open-loop stream of
// set-up / tear-down / modify requests against a live SlotAllocator:
//
//  * admission control bounds what a request may ask for (slots, path
//    length, worst-case latency, schedule utilization) before and after
//    the route search;
//  * the allocator's incremental mode (AllocatorOptions::incremental)
//    reuses prior Dijkstra state and per-link free-slot bitmasks so the
//    per-request cost no longer grows with schedule occupancy;
//  * fragmentation gauges sample how much per-link capacity has become
//    unusable because no injection slot lines up across a whole path —
//    the signal a compaction pass would act on.
//
// The search formulation follows Even & Fais, "Algorithms for NoC Design
// with Guaranteed QoS" (PAPERS.md): incremental path/slot search over a
// live reservation state rather than a from-scratch recomputation.
//
// Determinism contract: everything here is seeded and single-threaded.
// run_churn() produces a byte-stable report (decision digest included)
// for a given (options, allocator mode) pair, and the digest is identical
// between incremental and from-scratch allocators — the oracle CI pins.

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/usecase.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace daelite::alloc {

/// Bounds a set-up or modify request must satisfy to be admitted. All
/// limits default to "unbounded".
struct AdmissionControl {
  std::uint32_t max_request_slots = 0;  ///< per-channel bandwidth cap (0 = none)
  std::uint32_t max_path_hops = 0;      ///< longest admissible route, in links (0 = none)
  std::uint64_t max_latency_cycles = 0; ///< worst-case scheduling+path latency (0 = none)
  double max_utilization = 1.0;         ///< refuse set-ups once the schedule is this full

  /// Per-service-class quota layered under the global bounds (multi-tenant
  /// quotas): indexed by ServiceClass value. The defaults keep every class
  /// unbounded, i.e. behaviour and digests identical to pre-class builds.
  struct ClassQuota {
    std::uint64_t max_live = 0;   ///< live connections of this class (0 = unbounded)
    double max_utilization = 1.0; ///< refuse this class's set-ups above this occupancy
  };
  std::array<ClassQuota, kServiceClassCount> quota{};

  /// Allow a guaranteed set-up that found no route to tear down best-effort
  /// connections along a candidate path (SlotAllocator::plan_preemption,
  /// min-victims). Off by default: preemption changes decisions, so it must
  /// be an explicit policy choice.
  bool preempt_best_effort = false;
};

enum class ChurnStatus : std::uint8_t {
  kAdmitted = 0,
  kRejectedAdmission = 1, ///< violated an AdmissionControl bound
  kRejectedNoRoute = 2,   ///< no path/slot combination fit
  kUnknownConnection = 3, ///< tear_down/modify of an id not live
};

/// Worst-case cycles from "word ready at the source NI" to "word accepted
/// at the deepest destination": longest wait for the next owned injection
/// slot plus the pipeline depth. The admission controller's latency bound
/// checks this against AdmissionControl::max_latency_cycles.
std::uint64_t worst_case_latency_cycles(const RouteTree& route, const tdm::TdmParams& params);

struct ChurnMetrics {
  sim::Counter setups;             ///< set-up requests fielded
  sim::Counter admitted;           ///< ... of which were admitted
  sim::Counter rejected_admission; ///< ... refused by admission control
  sim::Counter rejected_no_route;  ///< ... refused for lack of path/slots
  sim::Counter rejected_fragmentation; ///< set-up no-route rejects where capacity existed but misaligned
  sim::Counter teardowns;
  sim::Counter modifies;
  sim::Counter modify_failed_restored; ///< failed modifies whose old route was restored
  sim::Counter rollback_failures;      ///< restores that failed (must stay 0)
  sim::Counter preemptions;            ///< best-effort connections torn down for guaranteed set-ups
  sim::Gauge utilization;              ///< sampled schedule occupancy
  sim::Gauge fragmentation;            ///< sampled misalignment gauge (see sample_fragmentation)
  sim::Histogram admitted_hops{64};    ///< request-route depth of admitted connections
};

/// Per-service-class slice of a churn run (ChurnReport::per_class, indexed
/// by ServiceClass value). `setups` counts first attempts only; retries of
/// the overload queue are counted separately, and `admitted` counts both.
struct ClassStats {
  std::uint64_t setups = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_admission = 0;
  std::uint64_t rejected_no_route = 0;
  std::uint64_t shed = 0;     ///< dropped by overload control (queue full / retries spent)
  std::uint64_t retries = 0;  ///< re-attempts the overload queue replayed
  std::uint64_t preempted = 0; ///< live connections torn down for guaranteed traffic
  sim::Histogram latency_cycles{64}; ///< worst-case latency of admitted request routes
};

/// A long-running connection-request service over one live allocator.
/// Connections are bidirectional like the use-case layer's (request
/// channel plus, for unicast specs with response_slots > 0, a response
/// channel); multicast requests carry no response.
class ChurnService {
 public:
  struct Result {
    ChurnStatus status = ChurnStatus::kRejectedNoRoute;
    std::uint64_t connection = 0; ///< service-level id, valid iff admitted
  };

  explicit ChurnService(SlotAllocator& alloc, AdmissionControl admission = {});

  /// Set up a connection. On kAdmitted the returned id names the live
  /// connection for tear_down/modify.
  Result set_up(const ConnectionSpec& spec);

  /// Tear a live connection down, releasing both channels (their
  /// ChannelIds return to the allocator's recycling free-list).
  ChurnStatus tear_down(std::uint64_t connection);

  /// Change a live connection's bandwidth. Transactional: the old
  /// reservations are released, the new request is allocated under the
  /// same admission rules, and on any failure the old reservations are
  /// restored exactly (same ChannelIds — the restore path the switching
  /// roll-back uses).
  Result modify(std::uint64_t connection, std::uint32_t request_slots,
                std::uint32_t response_slots);

  const AllocatedConnection* connection(std::uint64_t id) const;
  std::size_t live_connections() const { return live_order_.size(); }
  /// The i-th live connection id, in a deterministic (insertion /
  /// swap-remove) order — the workload generator picks tear-down and
  /// modify victims through this.
  std::uint64_t live_id_at(std::size_t i) const { return live_order_[i]; }

  const ChurnMetrics& metrics() const { return metrics_; }
  SlotAllocator& allocator() { return *alloc_; }

  /// Live connections of one service class (quota bookkeeping).
  std::uint64_t live_of_class(ServiceClass c) const {
    return live_by_class_[static_cast<std::size_t>(c)];
  }

  /// Service ids the most recent set_up() preempted (ascending; victims are
  /// best-effort by construction). Cleared on every set_up — the replay
  /// harness folds them into the decision digest.
  const std::vector<std::uint64_t>& last_preempted() const { return last_preempted_; }

  /// One background compaction pass: walk live non-guaranteed connections
  /// in id order and re-allocate each under kFirstFit (close-before-open at
  /// the allocator level), keeping a move only when it strictly lowers the
  /// (highest inject slot, route depth) packing score; otherwise the old
  /// reservations are restored exactly (same ChannelIds). Guaranteed
  /// channels are never touched mid-stream. Deterministic; the digest over
  /// every accepted move is the audit trail CI compares across modes.
  struct CompactionResult {
    std::size_t examined = 0;
    std::size_t moved = 0;
    std::uint64_t digest = 14695981039346656037ull; ///< FNV-1a over the moves
  };
  CompactionResult compact(std::size_t max_moves);

  /// Sample the fragmentation gauge over probe paths: for each path with
  /// min-free capacity > 0, the fraction of that capacity no injection
  /// slot can actually use (1 - aligned/min_free), averaged. 0 = every
  /// free slot is usable somewhere; 1 = capacity exists but none aligns.
  /// Also feeds the utilization gauge.
  double sample_fragmentation(const std::vector<topo::Path>& probes);

 private:
  /// Allocate request (+response) under admission control; used by set_up,
  /// modify and compact. Does not touch connection bookkeeping.
  /// `new_connection = false` (modify / compact re-admission) skips the
  /// per-class quota checks — the class population does not grow.
  Result allocate_connection(const ConnectionSpec& spec, AllocatedConnection* out,
                             bool new_connection = true);
  /// Guaranteed set-up fallback: plan a min-victims preemption for the
  /// failing channel, tear the victims down, retry. Bounded rounds.
  Result preempt_and_retry(const ConnectionSpec& spec, AllocatedConnection* out);
  /// Tear a victim connection down on behalf of a guaranteed set-up.
  void preempt_connection(std::uint64_t id);
  bool admit_route(const RouteTree& route) const;
  /// After a no-route reject: did any candidate path have enough free
  /// slots on every link (capacity) without enough aligned injection
  /// slots? That is fragmentation, not exhaustion.
  bool reject_was_fragmentation(const ChannelSpec& spec);
  void unlink_live(std::uint64_t id);

  /// Whether the most recent kRejectedNoRoute from allocate_connection was
  /// diagnosed as fragmentation (classified before any partial release).
  bool last_no_route_was_frag_ = false;

  SlotAllocator* alloc_;
  AdmissionControl admission_;
  ChurnMetrics metrics_;
  std::uint64_t next_id_ = 0;
  std::unordered_map<std::uint64_t, AllocatedConnection> conns_;
  std::unordered_map<std::uint64_t, std::size_t> live_index_; ///< id -> slot in live_order_
  std::vector<std::uint64_t> live_order_;
  /// ChannelId -> owning service id, for preemption victim lookup.
  std::unordered_map<tdm::ChannelId, std::uint64_t> channel_owner_;
  std::array<std::uint64_t, kServiceClassCount> live_by_class_{};
  std::vector<std::uint64_t> last_preempted_;
};

// --- Open-loop workload ------------------------------------------------------

/// Parameters of the open-loop request stream: Poisson set-up arrivals,
/// exponential connection lifetimes (tear-downs fire when their simulated
/// expiry passes, independent of the service's responses — open loop),
/// and a fraction of arrivals that modify a live connection instead.
struct ChurnWorkloadOptions {
  std::uint64_t seed = 1;
  double arrival_rate = 0.001;      ///< set-ups per simulated cycle
  double mean_hold_cycles = 200000; ///< mean connection lifetime
  double modify_fraction = 0.10;    ///< arrivals that modify instead of set up
  double multicast_fraction = 0.10; ///< set-ups with >1 destination
  std::uint32_t max_fanout = 3;     ///< destinations of a multicast set-up
  std::uint32_t min_slots = 1;
  std::uint32_t max_slots = 4;
  std::uint32_t response_slots = 1; ///< 0 = unidirectional connections
  /// Service-class mix of generated set-ups; the remainder after the two
  /// fractions is standard. Both zero (the default) skips the class draw
  /// entirely, keeping the RNG stream — and every legacy digest — intact.
  double guaranteed_fraction = 0.0;
  double best_effort_fraction = 0.0;
};

/// Deterministic request generator. Draws sources/destinations uniformly
/// from `endpoints` (the mesh's NIs), keeps a simulated clock, and owns
/// the expiry queue of live connections it created.
class ChurnWorkload {
 public:
  struct Op {
    enum class Kind : std::uint8_t { kSetUp, kTearDown, kModify } kind = Kind::kSetUp;
    double time = 0.0;              ///< simulated cycle of the event
    ConnectionSpec spec;            ///< kSetUp: what to allocate
    std::uint64_t connection = 0;   ///< kTearDown/kModify: the victim
    std::uint32_t request_slots = 0, response_slots = 0; ///< kModify: new bandwidth
  };

  ChurnWorkload(std::vector<topo::NodeId> endpoints, ChurnWorkloadOptions options);

  /// The next operation in simulated-time order. Tear-downs of expired
  /// connections fire before the next arrival; modify victims are drawn
  /// from the service's live set.
  Op next(const ChurnService& service);

  /// Tell the workload the service's verdict on its last set-up so it can
  /// schedule the connection's expiry.
  void on_setup_result(const ChurnService::Result& r);

  /// Schedule an expiry for a connection admitted outside the normal
  /// set-up flow (the overload queue's retried set-ups). `at` is absolute
  /// simulated time.
  void schedule_expiry(double at, std::uint64_t connection);

  double now() const { return now_; }

 private:
  ConnectionSpec draw_spec();

  std::vector<topo::NodeId> endpoints_;
  ChurnWorkloadOptions opt_;
  sim::Xoshiro256 rng_;
  std::uint64_t seq_ = 0; ///< names generated specs r0, r1, ...
  double now_ = 0.0;
  double next_arrival_ = 0.0;
  /// Min-heap of (expiry time, connection id) for open-loop tear-downs.
  std::vector<std::pair<double, std::uint64_t>> expiry_;
  std::optional<double> pending_hold_; ///< lifetime drawn for the in-flight set-up
};

// --- Replay harness ----------------------------------------------------------

/// Overload control for rejected set-ups: a bounded pending queue replays
/// them with exponential backoff and deterministic seeded jitter; when the
/// queue is full, shedding is class-aware — a more important arrival
/// evicts the least important waiter, so open-loop overload degrades
/// best-effort first.
struct OverloadControl {
  bool enabled = false;
  std::size_t pending_capacity = 64; ///< retry-queue bound
  std::uint32_t max_attempts = 3;    ///< total tries including the first
  double backoff_cycles = 2000.0;    ///< first retry delay; doubles per attempt
  double jitter = 0.5;               ///< uniform extra fraction of the delay
};

/// Mid-run quarantine schedule: flip links in and out of quarantine before
/// the given request index. Exercises the incremental path-cache
/// invalidation on both add and clear under the decision digest, and
/// creates the fragmentation churn a compaction pass cleans up.
struct QuarantineEvent {
  std::uint64_t at_request = 0;
  topo::LinkId link = 0;
  bool clear = false; ///< true: clear the whole quarantine set (link ignored)
};

/// Background slot compaction: a ChurnService::compact pass every `every`
/// requests (0 = never) and after every quarantine event when
/// `after_quarantine`.
struct CompactionOptions {
  std::uint64_t every = 0;
  std::size_t max_moves = 256;
  bool after_quarantine = true;
};

struct ChurnRunOptions {
  std::uint64_t requests = 100000; ///< total operations to field
  ChurnWorkloadOptions workload;
  AdmissionControl admission;
  OverloadControl overload;
  CompactionOptions compaction;
  std::vector<QuarantineEvent> quarantine_events;
  std::size_t fragmentation_samples = 64; ///< gauge samples over the run
  std::size_t probe_paths = 32;           ///< probe paths per gauge sample
  /// Called with every admitted connection (bench hooks: set-up cost
  /// models). Not part of the deterministic report.
  std::function<void(const AllocatedConnection&)> on_admit;
  /// Record per-request wall-clock service latency (bench only — the
  /// histogram is excluded from the deterministic digest).
  bool measure_latency = false;
};

struct FragSample {
  std::uint64_t at_request = 0;
  double utilization = 0.0;
  double fragmentation = 0.0;
};

struct ChurnReport {
  ChurnMetrics metrics;
  /// FNV-1a over every (op kind, status, channel ids, inject slots) —
  /// byte-stable across runs, identical between incremental and
  /// from-scratch allocators.
  std::uint64_t decision_digest = 0;
  double final_utilization = 0.0;
  std::size_t final_live = 0;
  tdm::ChannelId channel_id_watermark = 0;
  std::vector<FragSample> frag_timeline;
  /// True when any QoS feature shaped the run (class mix, quotas,
  /// preemption, overload control, compaction, quarantine events) — the
  /// tools gate the per-class report sections on this so legacy outputs
  /// stay byte-identical.
  bool qos_enabled = false;
  std::array<ClassStats, kServiceClassCount> per_class{}; ///< indexed by ServiceClass
  std::uint64_t shed_total = 0;      ///< set-ups dropped by overload control
  std::uint64_t retry_attempts = 0;  ///< replays the overload queue performed
  std::uint64_t preempted_connections = 0;
  std::uint64_t compaction_passes = 0;
  std::uint64_t compaction_moves = 0;
  /// FNV-1a over every accepted compaction move — the digest-checked
  /// decision trail (also folded into decision_digest).
  std::uint64_t compaction_digest = 0;
  /// Wall-clock nanoseconds per request, only if measure_latency.
  sim::Histogram request_latency_ns{1024};
  double wall_seconds = 0.0; ///< wall time of the whole drive loop
};

/// Drive `service`'s allocator with `options.requests` operations from a
/// fresh ChurnWorkload and collect the report. Single-threaded and fully
/// deterministic apart from the (optional) wall-clock histogram.
ChurnReport run_churn(SlotAllocator& alloc, const ChurnRunOptions& options);

} // namespace daelite::alloc
