#pragma once
// Contention-free slot allocation — the "network dimensioning" half of the
// Æthereal toolflow the paper leverages ("we leverage on existing tools for
// network dimensioning, analysis and instantiation", §I; the schedule "is
// typically computed at design time", §IV).
//
// A channel asking for B slots per TDM wheel needs a path (or multicast
// tree) plus a set of injection slots q such that every tree link at depth
// k is free in slot slot_at_link(q, k). The allocator searches candidate
// paths (k-shortest) and picks injection slots by policy.
//
// Two usage modes share this class:
//  * offline dimensioning (the historical front end): each request runs a
//    fresh k-shortest search plus a per-slot scan of the schedule;
//  * the online churn service (alloc/churn.hpp): `incremental = true`
//    reuses prior search state — k-shortest results are memoized per
//    (src, dst) pair until the quarantine set changes, and the injection
//    slot scan is replaced by rotate-and-AND over per-link free-slot
//    bitmasks maintained on every reserve/release. Both modes make
//    byte-identical admit/reject decisions and pick identical routes; the
//    incremental mode only removes redundant work (tests/test_churn.cpp
//    pins the equivalence on replayed request logs).

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "alloc/route.hpp"
#include "tdm/params.hpp"
#include "tdm/schedule.hpp"
#include "topology/graph.hpp"
#include "topology/path.hpp"

namespace daelite::alloc {

/// QoS service class of a channel / connection — the degradation order
/// every robustness path honors: guaranteed-throughput traffic keeps its
/// reservations at the expense of best-effort traffic (preemption,
/// admission quotas, overload shedding), standard traffic sits between.
/// The numeric values are stable: they enter decision digests and reports.
enum class ServiceClass : std::uint8_t {
  kGuaranteed = 0, ///< never shed, never preempted; may preempt best-effort
  kStandard = 1,   ///< default; shed under overload after best-effort
  kBestEffort = 2, ///< first to shed, only class eligible for preemption
};
inline constexpr std::size_t kServiceClassCount = 3;
std::string_view service_class_name(ServiceClass c);

struct ChannelSpec {
  topo::NodeId src_ni = topo::kInvalidNode;
  std::vector<topo::NodeId> dst_nis;
  std::uint32_t slots_required = 1; ///< bandwidth, in slots per wheel
  ServiceClass service_class = ServiceClass::kStandard;
};

enum class SlotPolicy {
  kFirstFit, ///< lowest free injection slots
  kSpread,   ///< spread slots evenly around the wheel (lower scheduling latency)
};

struct AllocatorOptions {
  std::size_t path_candidates = 8; ///< k for the k-shortest path search
  SlotPolicy slot_policy = SlotPolicy::kSpread;
  /// Reuse search state across requests: memoized k-shortest paths and
  /// bitmask-based injection-slot search. Decision-identical to the
  /// from-scratch mode; only the per-request cost changes.
  bool incremental = false;
};

/// kSpread slot picking: `want` entries of `avail` (sorted ascending) at
/// evenly spread positions, in integer arithmetic. Exposed as a free
/// function so the churn property tests can drive it with arbitrary
/// (avail, want) pairs. For want <= avail.size() the picked positions
/// (i * avail.size()) / want are strictly increasing — the historical
/// accumulated-double implementation (`pos += stride`) could repeat or
/// overrun an index once rounding error built up.
std::vector<tdm::Slot> spread_pick(const std::vector<tdm::Slot>& avail, std::uint32_t want);

class SlotAllocator {
 public:
  SlotAllocator(const topo::Topology& topo, tdm::TdmParams params,
                AllocatorOptions options = {});

  const tdm::Schedule& schedule() const { return schedule_; }
  const tdm::TdmParams& params() const { return params_; }
  const topo::Topology& topology() const { return *topo_; }
  const AllocatorOptions& options() const { return options_; }

  /// Switch the slot-picking policy mid-life. The compaction pass re-packs
  /// live connections under kFirstFit regardless of the service's steady-
  /// state policy, then restores the original.
  void set_slot_policy(SlotPolicy p) { options_.slot_policy = p; }

  /// Allocate a channel (unicast or multicast). Returns the route with a
  /// fresh (possibly recycled) ChannelId, or nullopt if the spec is
  /// invalid (see valid_spec) or no path/slot combination fits.
  std::optional<RouteTree> allocate(const ChannelSpec& spec);

  /// Allocate along a caller-chosen path (slots only). Used by tests and
  /// by the multipath allocator. Rejects empty paths and zero-slot
  /// requests (a zero-bandwidth channel would leak ChannelIds and
  /// live-channel accounting).
  std::optional<RouteTree> allocate_on_path(const topo::Path& path, std::uint32_t slots_required);

  /// A spec is allocatable only if it asks for at least one slot, names a
  /// valid source NI and at least one destination NI, and its destination
  /// list contains no duplicates and not the source.
  bool valid_spec(const ChannelSpec& spec) const;

  /// Free every reservation of the route's channel and recycle its
  /// ChannelId (a later allocate() may hand the id out again). Releasing
  /// an already-released route is a no-op.
  void release(const RouteTree& route);

  /// Reserve one raw (link, slot) pair for an externally-managed channel.
  /// Used by tests and ablation studies to shape residual capacity. Raw
  /// channel ids never enter the recycling free-list; callers should keep
  /// them far from the allocator's own id range (which stays dense near
  /// the peak live-channel count).
  bool reserve_raw(topo::LinkId link, tdm::Slot slot, tdm::ChannelId ch);

  /// Re-reserve a previously released route exactly as it was (same
  /// channel id, same slots). Returns false and rolls back if any of its
  /// (link, slot) pairs has been taken in the meantime. Used by the
  /// use-case switching flow to restore state after a failed switch, and
  /// by the recovery runner to mirror the dimensioned allocation into a
  /// live allocator. A successful restore re-claims the route's ChannelId:
  /// it is removed from the recycling free-list if it was waiting there,
  /// and the fresh-id watermark advances past it — a later allocate() must
  /// never hand out an id that would alias a restored route's reservations.
  bool restore(const RouteTree& route);

  // --- Preemptive healing ------------------------------------------------------

  /// What tearing down a set of channels would buy a (guaranteed) request
  /// that allocate() rejected: a candidate path plus the minimal set of
  /// preemptable channels whose release makes >= slots_required injection
  /// slots feasible on it. The caller releases the victims' routes (it
  /// owns the ChannelId -> route mapping) and re-runs allocate().
  struct PreemptionPlan {
    topo::Path path;              ///< candidate path the plan frees up
    std::size_t path_index = 0;   ///< its index among candidate_paths()
    std::vector<tdm::ChannelId> victims; ///< channels to release, ascending
  };

  /// Min-victims scoring pass over the candidate paths of a unicast spec:
  /// per path, every injection slot whose (link, slot) pairs are each free
  /// or owned by a channel `preemptable` approves is feasible; slots are
  /// chosen greedily to add the fewest new victims; the path with the
  /// smallest victim set wins (ties: lower path index). Returns nullopt
  /// for multicast specs or when no path can be freed even with every
  /// preemptable channel gone. Deterministic and read-only on the
  /// schedule; identical between incremental and from-scratch modes.
  std::optional<PreemptionPlan> plan_preemption(
      const ChannelSpec& spec, const std::function<bool(tdm::ChannelId)>& preemptable);

  // --- Link quarantine ---------------------------------------------------------

  /// Exclude a link from every future allocation (health-monitor verdict:
  /// the link drops or corrupts words). Existing reservations that cross
  /// the link are untouched — tearing the affected connections down and
  /// re-allocating them around the quarantine is the recovery runner's
  /// job. Idempotent. Invalidates the incremental path cache.
  void quarantine_link(topo::LinkId link);
  void clear_quarantine();
  bool is_quarantined(topo::LinkId link) const {
    return link < quarantined_.size() && quarantined_[link];
  }
  /// Quarantined link ids, ascending (the report's `recovery.quarantined`).
  std::vector<topo::LinkId> quarantined_links() const;

  /// Injection slots currently available for the given route tree shape.
  std::vector<tdm::Slot> free_inject_slots(const RouteTree& shape) const;

  /// k-shortest candidate paths src -> dst under the current quarantine.
  /// Incremental mode memoizes the answer until the quarantine changes;
  /// from-scratch mode recomputes (identical result either way). Also used
  /// by the churn service to diagnose fragmentation-caused rejections.
  const std::vector<topo::Path>& candidate_paths(topo::NodeId src, topo::NodeId dst);

  std::size_t allocated_channels() const { return live_channels_; }

  // --- Incremental-search summaries -------------------------------------------

  /// Free slots on a link right now, from the maintained per-link bitmask
  /// summary (O(1), exact mirror of the schedule).
  std::uint32_t link_free_slots(topo::LinkId link) const;

  /// Fraction of all (link, slot) pairs reserved — O(1) from the running
  /// counter (Schedule::utilization() is the O(links x slots) oracle; the
  /// two always agree).
  double utilization() const;

  // --- ChannelId recycling introspection (tests, fragmentation reports) --------

  /// Ids currently waiting for reuse.
  std::size_t free_id_count() const { return free_ids_.size(); }
  /// Lowest id never handed out: the high-water mark of id consumption.
  /// With recycling this tracks the peak live-channel count, not the total
  /// number of allocations.
  tdm::ChannelId channel_id_watermark() const { return next_channel_; }

 private:
  tdm::ChannelId next_channel_id();
  void recycle_channel_id(tdm::ChannelId ch);
  /// Drop `ch` from the free-list if present (restore() re-claims ids).
  void unrecycle_channel_id(tdm::ChannelId ch);

  /// Pick `want` slots from `avail` (sorted) per the slot policy.
  std::vector<tdm::Slot> choose_slots(const std::vector<tdm::Slot>& avail, std::uint32_t want) const;

  /// Reserve all (link, slot) pairs of the route. Asserts availability.
  void commit(const RouteTree& route);

  // Bitmask / counter bookkeeping around every schedule mutation.
  void note_reserved(topo::LinkId link, tdm::Slot slot);
  void note_released(topo::LinkId link, tdm::Slot slot);

  std::optional<RouteTree> allocate_unicast(const ChannelSpec& spec);
  std::optional<RouteTree> allocate_multicast(const ChannelSpec& spec);

  /// Grow a multicast tree over the given trunk path, attaching remaining
  /// destinations by shortest non-tree branches. Returns nullopt if some
  /// destination cannot be attached.
  std::optional<RouteTree> grow_tree(const topo::Path& trunk, const ChannelSpec& spec) const;

  const topo::Topology* topo_;
  tdm::TdmParams params_;
  AllocatorOptions options_;
  tdm::Schedule schedule_;
  topo::PathFinder finder_;
  tdm::ChannelId next_channel_ = 0;
  std::size_t live_channels_ = 0;
  std::vector<bool> quarantined_; ///< empty until the first quarantine

  // Per-link free-slot bitmasks (bit s set = slot s free) plus the global
  // reservation counter. Maintained on every reserve/release so the
  // incremental mode can answer free_inject_slots with |edges| word ops
  // and utilization() in O(1).
  std::vector<std::uint64_t> free_mask_;
  std::uint64_t wheel_mask_ = 0;
  std::size_t reserved_pairs_ = 0;

  /// Released ChannelIds awaiting reuse, kept as a min-heap so the lowest
  /// id is recycled first (deterministic, keeps the id space dense).
  std::vector<tdm::ChannelId> free_ids_;

  /// Memoized k-shortest results, keyed by (src << 32) | dst. Cleared
  /// whenever the quarantine set changes (the only input besides the
  /// static topology). Only consulted in incremental mode.
  std::unordered_map<std::uint64_t, std::vector<topo::Path>> path_cache_;
  std::vector<topo::Path> scratch_paths_; ///< from-scratch mode's return slot
};

} // namespace daelite::alloc
