#pragma once
// Contention-free slot allocation — the "network dimensioning" half of the
// Æthereal toolflow the paper leverages ("we leverage on existing tools for
// network dimensioning, analysis and instantiation", §I; the schedule "is
// typically computed at design time", §IV).
//
// A channel asking for B slots per TDM wheel needs a path (or multicast
// tree) plus a set of injection slots q such that every tree link at depth
// k is free in slot slot_at_link(q, k). The allocator searches candidate
// paths (k-shortest) and picks injection slots by policy.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "alloc/route.hpp"
#include "tdm/params.hpp"
#include "tdm/schedule.hpp"
#include "topology/graph.hpp"
#include "topology/path.hpp"

namespace daelite::alloc {

struct ChannelSpec {
  topo::NodeId src_ni = topo::kInvalidNode;
  std::vector<topo::NodeId> dst_nis;
  std::uint32_t slots_required = 1; ///< bandwidth, in slots per wheel
};

enum class SlotPolicy {
  kFirstFit, ///< lowest free injection slots
  kSpread,   ///< spread slots evenly around the wheel (lower scheduling latency)
};

struct AllocatorOptions {
  std::size_t path_candidates = 8; ///< k for the k-shortest path search
  SlotPolicy slot_policy = SlotPolicy::kSpread;
};

class SlotAllocator {
 public:
  SlotAllocator(const topo::Topology& topo, tdm::TdmParams params,
                AllocatorOptions options = {});

  const tdm::Schedule& schedule() const { return schedule_; }
  const tdm::TdmParams& params() const { return params_; }
  const topo::Topology& topology() const { return *topo_; }

  /// Allocate a channel (unicast or multicast). Returns the route with a
  /// fresh ChannelId, or nullopt if the spec is invalid (see valid_spec)
  /// or no path/slot combination fits.
  std::optional<RouteTree> allocate(const ChannelSpec& spec);

  /// Allocate along a caller-chosen path (slots only). Used by tests and
  /// by the multipath allocator. Rejects empty paths and zero-slot
  /// requests (a zero-bandwidth channel would leak ChannelIds and
  /// live-channel accounting).
  std::optional<RouteTree> allocate_on_path(const topo::Path& path, std::uint32_t slots_required);

  /// A spec is allocatable only if it asks for at least one slot, names a
  /// valid source NI and at least one destination NI, and its destination
  /// list contains no duplicates and not the source.
  bool valid_spec(const ChannelSpec& spec) const;

  /// Free every reservation of the route's channel.
  void release(const RouteTree& route);

  /// Reserve one raw (link, slot) pair for an externally-managed channel.
  /// Used by tests and ablation studies to shape residual capacity.
  bool reserve_raw(topo::LinkId link, tdm::Slot slot, tdm::ChannelId ch) {
    return schedule_.reserve(link, slot, ch);
  }

  /// Re-reserve a previously released route exactly as it was (same
  /// channel id, same slots). Returns false and rolls back if any of its
  /// (link, slot) pairs has been taken in the meantime. Used by the
  /// use-case switching flow to restore state after a failed switch, and
  /// by the recovery runner to mirror the dimensioned allocation into a
  /// live allocator — so it also advances the fresh-ChannelId watermark
  /// past the restored channel (a later allocate() must never hand out an
  /// id that would alias a restored route's reservations).
  bool restore(const RouteTree& route);

  // --- Link quarantine ---------------------------------------------------------

  /// Exclude a link from every future allocation (health-monitor verdict:
  /// the link drops or corrupts words). Existing reservations that cross
  /// the link are untouched — tearing the affected connections down and
  /// re-allocating them around the quarantine is the recovery runner's
  /// job. Idempotent.
  void quarantine_link(topo::LinkId link);
  void clear_quarantine();
  bool is_quarantined(topo::LinkId link) const {
    return link < quarantined_.size() && quarantined_[link];
  }
  /// Quarantined link ids, ascending (the report's `recovery.quarantined`).
  std::vector<topo::LinkId> quarantined_links() const;

  /// Injection slots currently available for the given route tree shape.
  std::vector<tdm::Slot> free_inject_slots(const RouteTree& shape) const;

  std::size_t allocated_channels() const { return live_channels_; }

 private:
  tdm::ChannelId next_channel_id() { return next_channel_++; }

  /// Pick `want` slots from `avail` (sorted) per the slot policy.
  std::vector<tdm::Slot> choose_slots(const std::vector<tdm::Slot>& avail, std::uint32_t want) const;

  /// Reserve all (link, slot) pairs of the route. Asserts availability.
  void commit(const RouteTree& route);

  std::optional<RouteTree> allocate_unicast(const ChannelSpec& spec);
  std::optional<RouteTree> allocate_multicast(const ChannelSpec& spec);

  /// Grow a multicast tree over the given trunk path, attaching remaining
  /// destinations by shortest non-tree branches. Returns nullopt if some
  /// destination cannot be attached.
  std::optional<RouteTree> grow_tree(const topo::Path& trunk, const ChannelSpec& spec) const;

  const topo::Topology* topo_;
  tdm::TdmParams params_;
  AllocatorOptions options_;
  tdm::Schedule schedule_;
  topo::PathFinder finder_;
  tdm::ChannelId next_channel_ = 0;
  std::size_t live_channels_ = 0;
  std::vector<bool> quarantined_; ///< empty until the first quarantine
};

} // namespace daelite::alloc
