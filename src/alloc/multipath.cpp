#include "alloc/multipath.hpp"

#include <algorithm>
#include <cassert>

#include "topology/path.hpp"

namespace daelite::alloc {

std::optional<MultipathRoute> MultipathAllocator::allocate(const ChannelSpec& spec) {
  assert(spec.dst_nis.size() == 1 && "multipath applies to unicast channels");
  // Mirror the base allocator's spec validation: a zero-slot request would
  // otherwise fall through the single-path attempt and "succeed" with an
  // empty part list.
  if (!base_->valid_spec(spec)) return std::nullopt;

  // Prefer a single path when one fits — multipath is the fallback that
  // combines residual capacity, never a replacement that fragments it.
  if (auto single = base_->allocate(spec)) {
    MultipathRoute route;
    route.parts.push_back(std::move(*single));
    return route;
  }

  topo::PathFinder finder(base_->topology());
  const auto paths = finder.k_shortest(spec.src_ni, spec.dst_nis[0], max_paths_);

  MultipathRoute route;
  std::uint32_t remaining = spec.slots_required;
  for (const topo::Path& p : paths) {
    if (remaining == 0) break;
    // Take as many slots from this path as are available (up to remaining).
    RouteTree shape = RouteTree::from_path(base_->topology(), p, {});
    const auto avail = base_->free_inject_slots(shape);
    const auto take = static_cast<std::uint32_t>(
        std::min<std::size_t>(avail.size(), remaining));
    if (take == 0) continue;
    auto part = base_->allocate_on_path(p, take);
    // The local finder above knows nothing of the base allocator's link
    // quarantine, so a candidate path can be rejected wholesale here.
    if (!part) continue;
    remaining -= take;
    route.parts.push_back(std::move(*part));
  }

  if (remaining > 0) {
    release(route);
    return std::nullopt;
  }
  return route;
}

void MultipathAllocator::release(const MultipathRoute& route) {
  for (const RouteTree& part : route.parts) base_->release(part);
}

} // namespace daelite::alloc
