#pragma once
// Per-link fault localization — the detection half of the self-healing
// subsystem. The destination NIs' integrity sideband (daelite/flit.hpp)
// tells a connection *that* words were corrupted or lost; the HealthMonitor
// tells the recovery runner *where*, so the allocator can quarantine the
// guilty link and route the repaired connection around it.
//
// Mechanism: every data link has a producer-side occupancy counter that
// increments during tick(), before the fault injector's commit() corrupts
// the freshly committed word (Router::forwarded_on, Ni link_busy_slots).
// The monitor is constructed AFTER the injector, so its commit() runs last
// in the cycle and observes exactly what downstream consumers will read.
// Per slot it counts valid flits on each link register and verifies each
// word's parity against the sideband. At epoch boundaries (grid-aligned so
// verdict cycles are identical under both kernel schedulers) it compares:
//
//   missing = (produced delta) - (observed delta)   -> drop / kill faults
//   parity  = words whose sideband parity mismatches -> flip / stuck faults
//
// Evidence accumulates per link; crossing suspect_threshold marks the link
// suspect, dead_threshold kills it (one kLinkDead trace record, one entry
// in take_dead_events() for the runner). Evidence totals are cumulative,
// so the verdict cycle is independent of how many epoch evaluations a
// quiescent fast-forward coalesced.

#include <cstdint>
#include <string>
#include <vector>

#include "daelite/flit.hpp"
#include "sim/component.hpp"
#include "tdm/params.hpp"
#include "topology/graph.hpp"

namespace daelite::hw {
class DaeliteNetwork;
}

namespace daelite::soc {

/// Verdict for one watched link.
enum class LinkState : std::uint8_t { kOk = 0, kSuspect, kDead };

std::string_view link_state_name(LinkState s);

/// One dead-link verdict, handed to the recovery runner.
struct DeadLinkEvent {
  topo::LinkId link = 0;
  sim::Cycle cycle = 0;        ///< epoch boundary the verdict fired at
  std::uint64_t evidence = 0;  ///< cumulative missing + parity words
};

/// Cumulative per-link observations (the report's `recovery.links`).
struct LinkHealth {
  std::uint64_t produced = 0;      ///< flits the producer drove onto the link
  std::uint64_t observed = 0;      ///< valid flits seen post-injection
  std::uint64_t missing = 0;       ///< produced - observed, summed per epoch
  std::uint64_t parity_errors = 0; ///< words failing the sideband parity check
  LinkState state = LinkState::kOk;
  std::uint64_t evidence() const { return missing + parity_errors; }
};

class HealthMonitor : public sim::Component {
 public:
  struct Options {
    /// Evidence evaluation period in cycles; 0 derives one TDM wheel.
    /// Rounded up to a whole number of slots (evaluation happens at slot
    /// starts) and snapped to an absolute grid so both schedulers evaluate
    /// at the same cycles.
    std::uint32_t epoch_cycles = 0;
    std::uint64_t suspect_threshold = 1; ///< cumulative evidence -> suspect
    std::uint64_t dead_threshold = 3;    ///< cumulative evidence -> dead
  };

  /// Construct AFTER the fault injector (registration order is commit
  /// order under both schedulers): the monitor must observe the corrupted
  /// committed values. Watches every data link of `net` in topology order,
  /// so LinkHealth indices are topology LinkIds.
  HealthMonitor(sim::Kernel& k, std::string name, hw::DaeliteNetwork& net,
                Options options);
  HealthMonitor(sim::Kernel& k, std::string name, hw::DaeliteNetwork& net);

  void tick() override {}
  void commit() override;

  /// True only when no watched register holds a flit and every link's
  /// evidence was already evaluated: the next epoch evaluation would be a
  /// pure no-op, so the kernel's quiescence fast-forward stays exact.
  bool quiescent() const override;

  const Options& options() const { return options_; }
  std::size_t link_count() const { return links_.size(); }
  const LinkHealth& link(topo::LinkId l) const { return links_[l].health; }

  /// Dead verdicts since the last call, in verdict order (epoch boundary,
  /// then ascending LinkId). The recovery runner polls this every cycle.
  std::vector<DeadLinkEvent> take_dead_events();

  /// Links currently suspect or dead that lie on the given link set —
  /// used to localize an end-to-end integrity alarm to a route.
  std::vector<topo::LinkId> suspects_among(const std::vector<topo::LinkId>& route_links) const;

  std::uint64_t total_missing() const;
  std::uint64_t total_parity_errors() const;

 private:
  struct WatchedLink {
    const sim::Reg<hw::Flit>* reg = nullptr;     ///< the link's output register
    const std::uint64_t* produced = nullptr;     ///< producer's occupancy counter
    LinkHealth health;
    std::uint64_t produced_at_eval = 0;          ///< snapshots at the last epoch
    std::uint64_t observed_at_eval = 0;
    std::uint64_t parity_at_eval = 0;
  };

  void evaluate_epoch();

  tdm::TdmParams params_;
  Options options_;
  std::uint32_t epoch_cycles_ = 0; ///< resolved (nonzero, slot-aligned)
  sim::Cycle next_eval_ = 0;
  std::vector<WatchedLink> links_;
  std::vector<DeadLinkEvent> dead_events_;
};

} // namespace daelite::soc
