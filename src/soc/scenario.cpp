#include "soc/scenario.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

namespace daelite::soc {

namespace {

bool parse_coord(const std::string& tok, std::pair<int, int>* out) {
  const auto comma = tok.find(',');
  if (comma == std::string::npos) return false;
  try {
    out->first = std::stoi(tok.substr(0, comma));
    out->second = std::stoi(tok.substr(comma + 1));
  } catch (...) {
    return false;
  }
  return out->first >= 0 && out->second >= 0;
}

// Strict numeric parsing for the newer directives (stream/dram/energy/
// dnn/layer) — the tools/cli_parse.hpp policy: the ENTIRE token must be
// the number, so "16x" or "1e3junk" is a diagnostic instead of a silently
// different experiment.
template <typename T>
bool parse_strict_int(const std::string& tok, T* out) {
  if (tok.empty()) return false;
  T v{};
  const char* const last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(tok.data(), last, v, 10);
  if (ec != std::errc{} || ptr != last) return false;
  *out = v;
  return true;
}

bool parse_strict_double(const std::string& tok, double* out) {
  if (tok.empty()) return false;
  double v = 0.0;
  const char* const last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(tok.data(), last, v, std::chars_format::fixed);
  if (ec != std::errc{} || ptr != last) return false;
  *out = v;
  return true;
}

/// Strict "x,y" with non-negative whole-token components.
bool parse_strict_coord(const std::string& tok, std::pair<int, int>* out) {
  const auto comma = tok.find(',');
  if (comma == std::string::npos) return false;
  return parse_strict_int(tok.substr(0, comma), &out->first) &&
         parse_strict_int(tok.substr(comma + 1), &out->second) && out->first >= 0 &&
         out->second >= 0;
}

/// Strict "WxH" with positive whole-token components.
bool parse_strict_extent(const std::string& tok, int* w, int* h) {
  const auto x = tok.find('x');
  if (x == std::string::npos) return false;
  return parse_strict_int(tok.substr(0, x), w) && parse_strict_int(tok.substr(x + 1), h) &&
         *w >= 1 && *h >= 1;
}

/// Strict service-class token ("guaranteed" / "standard" / "best_effort").
bool parse_service_class(const std::string& tok, alloc::ServiceClass* out) {
  if (tok == "guaranteed") *out = alloc::ServiceClass::kGuaranteed;
  else if (tok == "standard") *out = alloc::ServiceClass::kStandard;
  else if (tok == "best_effort") *out = alloc::ServiceClass::kBestEffort;
  else return false;
  return true;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) {
    if (t[0] == '#') break;
    toks.push_back(t);
  }
  return toks;
}

} // namespace

std::optional<Scenario> parse_scenario(std::istream& in, std::string* error) {
  Scenario sc;
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    if (error) *error = "line " + std::to_string(lineno) + ": " + msg;
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& cmd = toks[0];

    if (cmd == "mesh") {
      if (toks.size() < 3) return fail("mesh needs <width> <height>");
      sc.kind = (toks.size() > 3 && toks[3] == "torus") ? Scenario::TopologyKind::kTorus
                                                        : Scenario::TopologyKind::kMesh;
      try {
        sc.width = std::stoi(toks[1]);
        sc.height = std::stoi(toks[2]);
      } catch (...) {
        return fail("bad mesh dimensions");
      }
      if (sc.width < 1 || sc.height < 1) return fail("mesh dimensions must be positive");
    } else if (cmd == "ring") {
      if (toks.size() < 2) return fail("ring needs <routers>");
      sc.kind = Scenario::TopologyKind::kRing;
      try {
        sc.width = std::stoi(toks[1]);
      } catch (...) {
        return fail("bad ring size");
      }
      sc.height = 1;
      if (sc.width < 2) return fail("ring needs at least 2 routers");
    } else if (cmd == "slots") {
      if (toks.size() < 2) return fail("slots needs <S>");
      try {
        sc.slots = static_cast<std::uint32_t>(std::stoul(toks[1]));
      } catch (...) {
        return fail("bad slot count");
      }
    } else if (cmd == "clock") {
      if (toks.size() < 2) return fail("clock needs <MHz>");
      try {
        sc.clock_mhz = std::stod(toks[1]);
      } catch (...) {
        return fail("bad clock");
      }
    } else if (cmd == "host") {
      if (toks.size() < 2 || !parse_coord(toks[1], &sc.host)) return fail("host needs <x,y>");
    } else if (cmd == "run") {
      if (toks.size() < 2) return fail("run needs <cycles>");
      try {
        sc.run_cycles = std::stoull(toks[1]);
      } catch (...) {
        return fail("bad run length");
      }
    } else if (cmd == "connection") {
      if (toks.size() < 5) return fail("connection needs <name> <src> <dst> <MB/s>");
      Scenario::RawConnection c;
      c.name = toks[1];
      std::pair<int, int> dst;
      if (!parse_coord(toks[2], &c.src) || !parse_coord(toks[3], &dst))
        return fail("bad coordinates in connection");
      c.dsts.push_back(dst);
      try {
        c.bandwidth = std::stod(toks[4]);
      } catch (...) {
        return fail("bad bandwidth");
      }
      std::size_t i = 5;
      while (i < toks.size()) {
        if (i + 1 >= toks.size()) return fail(toks[i] + " needs a value");
        try {
          if (toks[i] == "latency") {
            c.max_latency_ns = std::stod(toks[i + 1]);
          } else if (toks[i] == "resp") {
            c.response_bandwidth = std::stod(toks[i + 1]);
          } else if (toks[i] == "class") {
            if (!parse_service_class(toks[i + 1], &c.service_class))
              return fail("unknown service class '" + toks[i + 1] +
                          "' (want guaranteed|standard|best_effort)");
          } else {
            return fail("unknown connection option '" + toks[i] + "'");
          }
        } catch (...) {
          return fail("bad value for " + toks[i]);
        }
        i += 2;
      }
      sc.raw.push_back(std::move(c));
    } else if (cmd == "multicast") {
      // multicast <name> <src> <dst>... bw <MB/s>
      if (toks.size() < 6) return fail("multicast needs <name> <src> <dst>... bw <MB/s>");
      Scenario::RawConnection c;
      c.name = toks[1];
      if (!parse_coord(toks[2], &c.src)) return fail("bad multicast source");
      std::size_t i = 3;
      for (; i < toks.size() && toks[i] != "bw"; ++i) {
        std::pair<int, int> d;
        if (!parse_coord(toks[i], &d)) return fail("bad multicast destination '" + toks[i] + "'");
        c.dsts.push_back(d);
      }
      if (c.dsts.size() < 2) return fail("multicast needs at least 2 destinations");
      if (i + 1 >= toks.size()) return fail("multicast needs bw <MB/s>");
      try {
        c.bandwidth = std::stod(toks[i + 1]);
      } catch (...) {
        return fail("bad multicast bandwidth");
      }
      sc.raw.push_back(std::move(c));
    } else if (cmd == "stream") {
      // stream <name> <src> <dst> <MB/s> period <cycles> burst <words>
      //        [bursty <seed>] [resp <MB/s>]
      if (toks.size() < 5) return fail("stream needs <name> <src> <dst> <MB/s>");
      Scenario::RawConnection c;
      c.name = toks[1];
      std::pair<int, int> dst;
      if (!parse_strict_coord(toks[2], &c.src) || !parse_strict_coord(toks[3], &dst))
        return fail("bad coordinates in stream");
      c.dsts.push_back(dst);
      if (!parse_strict_double(toks[4], &c.bandwidth) || c.bandwidth <= 0.0)
        return fail("bad stream bandwidth '" + toks[4] + "'");
      bool saw_period = false;
      bool saw_burst = false;
      std::size_t i = 5;
      while (i < toks.size()) {
        if (i + 1 >= toks.size()) return fail(toks[i] + " needs a value");
        const std::string& val = toks[i + 1];
        if (toks[i] == "period") {
          if (!parse_strict_int(val, &c.stream_period) || c.stream_period == 0)
            return fail("bad stream period '" + val + "'");
          saw_period = true;
        } else if (toks[i] == "burst") {
          if (!parse_strict_int(val, &c.stream_burst) || c.stream_burst == 0)
            return fail("bad stream burst '" + val + "'");
          saw_burst = true;
        } else if (toks[i] == "bursty") {
          if (!parse_strict_int(val, &c.bursty_seed) || c.bursty_seed == 0)
            return fail("bad bursty seed '" + val + "' (must be a non-zero integer)");
        } else if (toks[i] == "resp") {
          if (!parse_strict_double(val, &c.response_bandwidth) || c.response_bandwidth < 0.0)
            return fail("bad stream resp bandwidth '" + val + "'");
        } else if (toks[i] == "class") {
          if (!parse_service_class(val, &c.service_class))
            return fail("unknown service class '" + val +
                        "' (want guaranteed|standard|best_effort)");
        } else {
          return fail("unknown stream option '" + toks[i] + "'");
        }
        i += 2;
      }
      if (!saw_period || !saw_burst)
        return fail("stream needs period <cycles> and burst <words>");
      sc.raw.push_back(std::move(c));
    } else if (cmd == "dram") {
      if (toks.size() < 2) return fail("dram needs at least one <x,y>");
      for (std::size_t i = 1; i < toks.size(); ++i) {
        std::pair<int, int> p;
        if (!parse_strict_coord(toks[i], &p)) return fail("bad dram port '" + toks[i] + "'");
        sc.dram.push_back(p);
      }
    } else if (cmd == "energy") {
      sc.energy.enabled = true;
      std::size_t i = 1;
      while (i < toks.size()) {
        if (i + 1 >= toks.size()) return fail(toks[i] + " needs a value");
        double* slot = nullptr;
        if (toks[i] == "hop") slot = &sc.energy.hop_energy_pj;
        else if (toks[i] == "dram") slot = &sc.energy.dram_access_energy_pj;
        else if (toks[i] == "config") slot = &sc.energy.config_energy_pj;
        else return fail("unknown energy option '" + toks[i] + "'");
        if (!parse_strict_double(toks[i + 1], slot) || *slot < 0.0)
          return fail("bad energy value '" + toks[i + 1] + "'");
        i += 2;
      }
    } else if (cmd == "dnn") {
      // dnn grid <x,y> <WxH> [weights <slots>] [ifmap <slots>] [ofmap <slots>]
      if (sc.dnn) return fail("duplicate dnn directive");
      if (toks.size() < 4 || toks[1] != "grid") return fail("dnn needs grid <x,y> <WxH>");
      workload::DnnSchedule d;
      std::pair<int, int> origin;
      if (!parse_strict_coord(toks[2], &origin)) return fail("bad dnn grid origin '" + toks[2] + "'");
      d.grid_x = origin.first;
      d.grid_y = origin.second;
      if (!parse_strict_extent(toks[3], &d.grid_w, &d.grid_h))
        return fail("bad dnn grid extent '" + toks[3] + "' (want WxH)");
      std::size_t i = 4;
      while (i < toks.size()) {
        if (i + 1 >= toks.size()) return fail(toks[i] + " needs a value");
        std::uint32_t* slot = nullptr;
        if (toks[i] == "weights") slot = &d.weight_slots;
        else if (toks[i] == "ifmap") slot = &d.ifmap_slots;
        else if (toks[i] == "ofmap") slot = &d.ofmap_slots;
        else return fail("unknown dnn option '" + toks[i] + "'");
        if (!parse_strict_int(toks[i + 1], slot) || *slot == 0)
          return fail("bad dnn slot count '" + toks[i + 1] + "'");
        i += 2;
      }
      sc.dnn = std::move(d);
    } else if (cmd == "layer") {
      // layer <name> weights <words> ifmap <words> ofmap <words>
      if (!sc.dnn) return fail("layer before dnn directive");
      if (toks.size() != 8 || toks[2] != "weights" || toks[4] != "ifmap" || toks[6] != "ofmap")
        return fail("layer needs <name> weights <words> ifmap <words> ofmap <words>");
      workload::LayerSpec l;
      l.name = toks[1];
      if (!parse_strict_int(toks[3], &l.weight_words) || l.weight_words == 0)
        return fail("bad layer weight words '" + toks[3] + "'");
      if (!parse_strict_int(toks[5], &l.ifmap_words))
        return fail("bad layer ifmap words '" + toks[5] + "'");
      if (!parse_strict_int(toks[7], &l.ofmap_words))
        return fail("bad layer ofmap words '" + toks[7] + "'");
      sc.dnn->layers.push_back(std::move(l));
    } else {
      return fail("unknown directive '" + cmd + "'");
    }
  }
  if (sc.dnn) {
    if (!sc.raw.empty()) {
      if (error) *error = "dnn scenario cannot also declare connection/multicast/stream lines";
      return std::nullopt;
    }
    if (sc.dnn->layers.empty()) {
      if (error) *error = "dnn scenario declares no layers";
      return std::nullopt;
    }
    if (sc.dram.empty()) {
      if (error) *error = "dnn scenario needs at least one dram port";
      return std::nullopt;
    }
  } else if (sc.raw.empty()) {
    if (error) *error = "scenario declares no connections";
    return std::nullopt;
  }
  return sc;
}

std::optional<Scenario> parse_scenario_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  return parse_scenario(in, error);
}

topo::Mesh Scenario::build() {
  topo::Mesh mesh;
  switch (kind) {
    case TopologyKind::kMesh:
      mesh = topo::make_mesh(width, height);
      break;
    case TopologyKind::kTorus:
      mesh = topo::make_mesh(width, height, 1, /*wrap=*/true);
      break;
    case TopologyKind::kRing:
      mesh = topo::make_ring(width);
      break;
  }
  connections.clear();
  for (const RawConnection& c : raw) {
    alloc::PhysicalConnectionSpec p;
    p.name = c.name;
    p.src_ni = mesh.ni(c.src.first, c.src.second);
    for (const auto& d : c.dsts) p.dst_nis.push_back(mesh.ni(d.first, d.second));
    p.bandwidth_mbytes_per_s = c.bandwidth;
    p.response_bandwidth_mbytes_per_s = c.response_bandwidth;
    p.max_latency_ns = c.max_latency_ns;
    p.stream_period = c.stream_period;
    p.stream_burst = c.stream_burst;
    p.bursty_seed = c.bursty_seed;
    p.service_class = c.service_class;
    connections.push_back(std::move(p));
  }
  return mesh;
}

} // namespace daelite::soc
