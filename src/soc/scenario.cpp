#include "soc/scenario.hpp"

#include <fstream>
#include <sstream>

namespace daelite::soc {

namespace {

bool parse_coord(const std::string& tok, std::pair<int, int>* out) {
  const auto comma = tok.find(',');
  if (comma == std::string::npos) return false;
  try {
    out->first = std::stoi(tok.substr(0, comma));
    out->second = std::stoi(tok.substr(comma + 1));
  } catch (...) {
    return false;
  }
  return out->first >= 0 && out->second >= 0;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) {
    if (t[0] == '#') break;
    toks.push_back(t);
  }
  return toks;
}

} // namespace

std::optional<Scenario> parse_scenario(std::istream& in, std::string* error) {
  Scenario sc;
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    if (error) *error = "line " + std::to_string(lineno) + ": " + msg;
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& cmd = toks[0];

    if (cmd == "mesh") {
      if (toks.size() < 3) return fail("mesh needs <width> <height>");
      sc.kind = (toks.size() > 3 && toks[3] == "torus") ? Scenario::TopologyKind::kTorus
                                                        : Scenario::TopologyKind::kMesh;
      try {
        sc.width = std::stoi(toks[1]);
        sc.height = std::stoi(toks[2]);
      } catch (...) {
        return fail("bad mesh dimensions");
      }
      if (sc.width < 1 || sc.height < 1) return fail("mesh dimensions must be positive");
    } else if (cmd == "ring") {
      if (toks.size() < 2) return fail("ring needs <routers>");
      sc.kind = Scenario::TopologyKind::kRing;
      try {
        sc.width = std::stoi(toks[1]);
      } catch (...) {
        return fail("bad ring size");
      }
      sc.height = 1;
      if (sc.width < 2) return fail("ring needs at least 2 routers");
    } else if (cmd == "slots") {
      if (toks.size() < 2) return fail("slots needs <S>");
      try {
        sc.slots = static_cast<std::uint32_t>(std::stoul(toks[1]));
      } catch (...) {
        return fail("bad slot count");
      }
    } else if (cmd == "clock") {
      if (toks.size() < 2) return fail("clock needs <MHz>");
      try {
        sc.clock_mhz = std::stod(toks[1]);
      } catch (...) {
        return fail("bad clock");
      }
    } else if (cmd == "host") {
      if (toks.size() < 2 || !parse_coord(toks[1], &sc.host)) return fail("host needs <x,y>");
    } else if (cmd == "run") {
      if (toks.size() < 2) return fail("run needs <cycles>");
      try {
        sc.run_cycles = std::stoull(toks[1]);
      } catch (...) {
        return fail("bad run length");
      }
    } else if (cmd == "connection") {
      if (toks.size() < 5) return fail("connection needs <name> <src> <dst> <MB/s>");
      Scenario::RawConnection c;
      c.name = toks[1];
      std::pair<int, int> dst;
      if (!parse_coord(toks[2], &c.src) || !parse_coord(toks[3], &dst))
        return fail("bad coordinates in connection");
      c.dsts.push_back(dst);
      try {
        c.bandwidth = std::stod(toks[4]);
      } catch (...) {
        return fail("bad bandwidth");
      }
      std::size_t i = 5;
      while (i < toks.size()) {
        if (i + 1 >= toks.size()) return fail(toks[i] + " needs a value");
        try {
          if (toks[i] == "latency") {
            c.max_latency_ns = std::stod(toks[i + 1]);
          } else if (toks[i] == "resp") {
            c.response_bandwidth = std::stod(toks[i + 1]);
          } else {
            return fail("unknown connection option '" + toks[i] + "'");
          }
        } catch (...) {
          return fail("bad value for " + toks[i]);
        }
        i += 2;
      }
      sc.raw.push_back(std::move(c));
    } else if (cmd == "multicast") {
      // multicast <name> <src> <dst>... bw <MB/s>
      if (toks.size() < 6) return fail("multicast needs <name> <src> <dst>... bw <MB/s>");
      Scenario::RawConnection c;
      c.name = toks[1];
      if (!parse_coord(toks[2], &c.src)) return fail("bad multicast source");
      std::size_t i = 3;
      for (; i < toks.size() && toks[i] != "bw"; ++i) {
        std::pair<int, int> d;
        if (!parse_coord(toks[i], &d)) return fail("bad multicast destination '" + toks[i] + "'");
        c.dsts.push_back(d);
      }
      if (c.dsts.size() < 2) return fail("multicast needs at least 2 destinations");
      if (i + 1 >= toks.size()) return fail("multicast needs bw <MB/s>");
      try {
        c.bandwidth = std::stod(toks[i + 1]);
      } catch (...) {
        return fail("bad multicast bandwidth");
      }
      sc.raw.push_back(std::move(c));
    } else {
      return fail("unknown directive '" + cmd + "'");
    }
  }
  if (sc.raw.empty()) {
    if (error) *error = "scenario declares no connections";
    return std::nullopt;
  }
  return sc;
}

std::optional<Scenario> parse_scenario_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  return parse_scenario(in, error);
}

topo::Mesh Scenario::build() {
  topo::Mesh mesh;
  switch (kind) {
    case TopologyKind::kMesh:
      mesh = topo::make_mesh(width, height);
      break;
    case TopologyKind::kTorus:
      mesh = topo::make_mesh(width, height, 1, /*wrap=*/true);
      break;
    case TopologyKind::kRing:
      mesh = topo::make_ring(width);
      break;
  }
  connections.clear();
  for (const RawConnection& c : raw) {
    alloc::PhysicalConnectionSpec p;
    p.name = c.name;
    p.src_ni = mesh.ni(c.src.first, c.src.second);
    for (const auto& d : c.dsts) p.dst_nis.push_back(mesh.ni(d.first, d.second));
    p.bandwidth_mbytes_per_s = c.bandwidth;
    p.response_bandwidth_mbytes_per_s = c.response_bandwidth;
    p.max_latency_ns = c.max_latency_ns;
    connections.push_back(std::move(p));
  }
  return mesh;
}

} // namespace daelite::soc
