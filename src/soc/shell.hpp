#pragma once
// Network shells (paper §IV / [16]): serialize DTL transactions into
// network messages and back. Templated on the NI type so the same shells
// drive both the daelite and the aelite NIs (their queue-facing APIs are
// identical: tx_push / rx_pop).
//
// InitiatorShell — IP side. Accepts transactions, streams their words into
// the NI tx queue as space allows, reassembles responses, and hands
// completed Response objects (with latency accounting) back to the IP.
//
// TargetShell — memory side. Reassembles request messages from the NI rx
// queue, applies them to a Memory, and streams the response message into
// its NI tx queue.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "sim/component.hpp"
#include "sim/stats.hpp"
#include "soc/dtl.hpp"
#include "soc/memory.hpp"

namespace daelite::soc {

template <typename NiT>
class InitiatorShell : public sim::Component {
 public:
  /// posted = true: fire-and-forget writes, no responses expected (the
  /// multicast mode of the paper — there is no multi-destination read and
  /// the response channel does not exist).
  InitiatorShell(sim::Kernel& k, std::string name, NiT& ni, std::size_t tx_q, std::size_t rx_q,
                 bool posted = false)
      : sim::Component(k, std::move(name)), ni_(&ni), tx_q_(tx_q), rx_q_(rx_q), posted_(posted) {}

  /// Queue a transaction for transmission. By default the software queue
  /// is unbounded (the IP models its own admission policy); an admission
  /// limit turns the shell into a backpressuring port (ready() goes false
  /// when the limit is reached, and buses refuse the submission instead of
  /// letting the queue grow). Reads on a posted (multicast) shell are
  /// rejected and counted.
  void submit(const Transaction& t) {
    if (posted_ && !t.is_write) {
      ++rejected_reads_;
      return;
    }
    pending_.push_back(t);
    pending_issue_cycle_.push_back(now());
  }

  /// Cap the pending (not yet streamed) transaction queue. 0 = unbounded.
  void set_admission_limit(std::size_t limit) { admission_limit_ = limit; }
  bool ready() const { return admission_limit_ == 0 || pending_.size() < admission_limit_; }

  std::uint64_t rejected_reads() const { return rejected_reads_; }

  /// Completed responses, in order.
  std::optional<Response> take_response() {
    if (done_.empty()) return std::nullopt;
    Response r = std::move(done_.front());
    done_.pop_front();
    return r;
  }

  std::size_t outstanding() const { return inflight_.size() + pending_.size(); }
  std::uint64_t completed() const { return completed_; }
  const sim::Histogram& latency() const { return latency_; } ///< submit -> response, cycles

  void tick() override {
    // Stream the front transaction's words into the NI.
    while (!pending_.empty()) {
      const Transaction& t = pending_.front();
      const auto words = serialize_request(t);
      while (send_index_ < words.size() && ni_->tx_push(tx_q_, words[send_index_])) ++send_index_;
      if (send_index_ < words.size()) break; // NI queue full: resume next cycle
      inflight_.push_back({t, pending_issue_cycle_.front()});
      pending_.pop_front();
      pending_issue_cycle_.pop_front();
      send_index_ = 0;
    }

    // Reassemble responses (a posted shell has no response channel).
    if (posted_) return;
    while (auto w = ni_->rx_pop(rx_q_)) {
      if (resp_words_left_ == 0) {
        resp_.is_write = header_is_write(*w);
        resp_.addr = header_addr(*w);
        resp_.rdata.clear();
        resp_words_left_ = resp_.is_write ? 0 : header_len(*w);
      } else {
        resp_.rdata.push_back(*w);
        --resp_words_left_;
      }
      if (resp_words_left_ == 0) {
        if (!inflight_.empty()) {
          latency_.add(now() - inflight_.front().second);
          inflight_.pop_front();
        }
        done_.push_back(resp_);
        ++completed_;
      }
    }
  }

 private:
  NiT* ni_;
  std::size_t tx_q_;
  std::size_t rx_q_;
  bool posted_ = false;
  std::uint64_t rejected_reads_ = 0;
  std::size_t admission_limit_ = 0; ///< 0: unbounded



  std::deque<Transaction> pending_;
  std::deque<sim::Cycle> pending_issue_cycle_;
  std::size_t send_index_ = 0;
  std::deque<std::pair<Transaction, sim::Cycle>> inflight_;

  Response resp_;
  std::uint32_t resp_words_left_ = 0;
  std::deque<Response> done_;
  std::uint64_t completed_ = 0;
  sim::Histogram latency_{1 << 14};
};

template <typename NiT>
class TargetShell : public sim::Component {
 public:
  /// posted = true: apply writes but never respond (multicast leaf).
  TargetShell(sim::Kernel& k, std::string name, NiT& ni, std::size_t rx_q, std::size_t tx_q,
              Memory& mem, bool posted = false)
      : sim::Component(k, std::move(name)), ni_(&ni), rx_q_(rx_q), tx_q_(tx_q), mem_(&mem),
        posted_(posted) {}

  std::uint64_t requests_served() const { return served_; }

  void tick() override {
    // Parse incoming request words.
    while (auto w = ni_->rx_pop(rx_q_)) {
      if (req_words_left_ == 0) {
        req_.is_write = header_is_write(*w);
        req_.addr = header_addr(*w);
        req_.burst_len = header_len(*w);
        req_.wdata.clear();
        req_words_left_ = req_.is_write ? req_.burst_len : 0;
      } else {
        req_.wdata.push_back(*w);
        --req_words_left_;
      }
      if (req_words_left_ == 0) serve(req_);
    }

    // Stream queued response words out.
    while (!out_words_.empty() && ni_->tx_push(tx_q_, out_words_.front())) out_words_.pop_front();
  }

 private:
  void serve(const Transaction& t) {
    ++served_;
    if (!posted_) out_words_.push_back(encode_header(t.is_write, t.is_write ? 0 : t.burst_len, t.addr));
    if (t.is_write) {
      for (std::uint32_t i = 0; i < t.wdata.size(); ++i) mem_->shell_write(t.addr + i, t.wdata[i]);
    } else if (!posted_) {
      for (std::uint32_t i = 0; i < t.burst_len; ++i)
        out_words_.push_back(mem_->shell_read(t.addr + i));
    }
  }

  NiT* ni_;
  std::size_t rx_q_;
  std::size_t tx_q_;
  Memory* mem_;

  bool posted_ = false;
  Transaction req_;
  std::uint32_t req_words_left_ = 0;
  std::deque<std::uint32_t> out_words_;
  std::uint64_t served_ = 0;
};

} // namespace daelite::soc
