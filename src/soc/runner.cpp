#include "soc/runner.hpp"

#include <algorithm>

#include "alloc/dimension.hpp"
#include "daelite/network.hpp"
#include "sim/random.hpp"
#include "sim/trace.hpp"

namespace daelite::soc {

namespace {

std::string topology_name(const Scenario& sc) {
  switch (sc.kind) {
    case Scenario::TopologyKind::kMesh:
      return "mesh " + std::to_string(sc.width) + "x" + std::to_string(sc.height);
    case Scenario::TopologyKind::kTorus:
      return "torus " + std::to_string(sc.width) + "x" + std::to_string(sc.height);
    case Scenario::TopologyKind::kRing:
      return "ring " + std::to_string(sc.width);
  }
  return "?";
}

} // namespace

analysis::NetworkReport run_scenario(const RunSpec& spec) {
  analysis::NetworkReport report;
  Scenario sc = spec.scenario;
  if (spec.slots_override) sc.slots = *spec.slots_override;
  if (spec.run_cycles_override) sc.run_cycles = *spec.run_cycles_override;

  report.label = spec.label.empty() ? topology_name(sc) : spec.label;
  report.topology = topology_name(sc);
  report.clock_mhz = sc.clock_mhz;
  report.seed = spec.seed;
  report.run_cycles = sc.run_cycles;

  // Scenario coordinates come from user-written files; reject anything
  // outside the grid before build() indexes with them.
  const int grid_h = sc.kind == Scenario::TopologyKind::kRing ? 1 : sc.height;
  const auto in_grid = [&](const std::pair<int, int>& c) {
    return c.first >= 0 && c.first < sc.width && c.second >= 0 && c.second < grid_h;
  };
  const auto coord_error = [&](const std::string& what, const std::pair<int, int>& c) {
    report.error = what + ": coordinate " + std::to_string(c.first) + "," +
                   std::to_string(c.second) + " outside " + topology_name(sc);
  };
  if (!in_grid(sc.host)) {
    coord_error("host", sc.host);
    return report;
  }
  for (const Scenario::RawConnection& c : sc.raw) {
    if (!in_grid(c.src)) {
      coord_error("connection '" + c.name + "'", c.src);
      return report;
    }
    for (const auto& d : c.dsts) {
      if (!in_grid(d)) {
        coord_error("connection '" + c.name + "'", d);
        return report;
      }
    }
  }

  topo::Mesh mesh = sc.build();

  // A nonzero seed permutes the order connections reach the allocator
  // (Fisher–Yates over the spec list) — slot assignment is greedy and
  // order-dependent, so this is a real design-space axis.
  if (spec.seed != 0 && sc.connections.size() > 1) {
    sim::Xoshiro256 rng(spec.seed);
    for (std::size_t i = sc.connections.size() - 1; i > 0; --i)
      std::swap(sc.connections[i], sc.connections[rng.below(i + 1)]);
  }

  const alloc::NocClocking clk{sc.clock_mhz, 4};
  const std::vector<std::uint32_t> candidates =
      sc.slots ? std::vector<std::uint32_t>{*sc.slots} : std::vector<std::uint32_t>{8, 16, 32};
  std::string error;
  auto dim = alloc::dimension_network(mesh.topo, sc.connections, clk, candidates, &error);
  if (!dim) {
    report.error = "dimensioning failed: " + error;
    return report;
  }
  report.slots = dim->params.num_slots;
  report.schedule_utilization = dim->schedule_utilization;

  sim::Kernel kernel(spec.scheduler);
  kernel.set_tracer(spec.tracer);
  hw::DaeliteNetwork::Options opt;
  opt.tdm = dim->params;
  opt.cfg_root = mesh.ni(sc.host.first, sc.host.second);
  hw::DaeliteNetwork net(kernel, mesh.topo, opt);
  if (spec.on_network) spec.on_network(kernel, net);

  // The injector is constructed after every network element so it commits
  // last each cycle (it corrupts freshly committed link values). Absent a
  // plan nothing is constructed and the run is byte-identical to a
  // pre-fault-injection build.
  std::optional<sim::FaultInjector> injector;
  if (spec.fault_plan.enabled()) {
    injector.emplace(kernel, "fault", spec.fault_plan);
    net.attach_fault_lines(*injector);
  }

  // Phase spans: the runner's own coarse timeline on top of the per-element
  // event stream (the config module emits the per-connection set-up spans).
  sim::Tracer* tr = (spec.tracer != nullptr && spec.tracer->enabled()) ? spec.tracer : nullptr;
  const std::uint32_t scen_id = tr ? tr->intern("scenario") : 0;
  const auto phase_mark = [&](sim::TraceEvent e, std::string_view label) {
    if (tr) tr->record(kernel.now(), scen_id, e, tr->intern(label));
  };

  phase_mark(sim::TraceEvent::kPhaseBegin, "configure");
  std::vector<hw::ConnectionHandle> handles;
  for (const auto& c : dim->allocation.connections) handles.push_back(net.open_connection(c));
  if (injector) {
    // One verification read per connection: under faults the response path
    // (and the module's watchdog) is part of what set-up time measures.
    for (const hw::ConnectionHandle& h : handles) {
      net.config_module().enqueue_packet(
          hw::encode_read_flags(net.cfg_ids().at(h.conn.request.src_ni), h.src_tx_q),
          /*is_path=*/false, /*expects_response=*/true);
    }
  }
  report.cfg_cycles = net.run_config();
  if (report.cfg_cycles == sim::kNoCycle) {
    // The stream never converged (possible only with the watchdog off).
    // Keep going — partial configuration is itself the observable — but
    // flag it so ok == false and the health section says why.
    report.health.config_ok = false;
    report.cfg_cycles = kernel.now();
  }
  phase_mark(sim::TraceEvent::kPhaseEnd, "configure");
  phase_mark(sim::TraceEvent::kPhaseBegin, "traffic");

  // Saturated traffic: sources push as fast as the NI accepts, sinks drain
  // every cycle; delivered words per destination measure achieved bandwidth.
  std::vector<std::vector<std::uint64_t>> delivered(handles.size());
  for (std::size_t i = 0; i < handles.size(); ++i)
    delivered[i].assign(handles[i].conn.request.dst_nis.size(), 0);
  for (sim::Cycle c = 0; c < sc.run_cycles; ++c) {
    for (std::size_t i = 0; i < handles.size(); ++i) {
      hw::Ni& src = net.ni(handles[i].conn.request.src_ni);
      while (src.tx_push(handles[i].src_tx_q, 1)) {
      }
      for (std::size_t d = 0; d < delivered[i].size(); ++d) {
        hw::Ni& dst = net.ni(handles[i].conn.request.dst_nis[d]);
        while (dst.rx_pop(handles[i].dst_rx_qs[d])) ++delivered[i][d];
      }
    }
    kernel.step();
  }
  phase_mark(sim::TraceEvent::kPhaseEnd, "traffic");

  bool all_met = true;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    std::uint64_t min_words = delivered[i].empty() ? 0 : delivered[i][0];
    for (auto w : delivered[i]) min_words = std::min(min_words, w);
    const double mbps = static_cast<double>(min_words) / static_cast<double>(sc.run_cycles) *
                        clk.link_mbytes_per_s();
    analysis::ConnectionOutcome out;
    out.name = dim->connections[i].spec.name;
    out.request_slots = dim->connections[i].request_slots;
    out.response_slots = dim->connections[i].response_slots;
    out.contract_mbps = dim->connections[i].spec.bandwidth_mbytes_per_s;
    out.measured_mbps = mbps;
    out.worst_latency_ns = dim->connections[i].worst_latency_ns;
    out.met = mbps + 1.0 >= out.contract_mbps;
    all_met = all_met && out.met;
    // End-to-end latency over every destination queue of the connection.
    for (std::size_t d = 0; d < handles[i].dst_rx_qs.size(); ++d) {
      const hw::Ni& dst = net.ni(handles[i].conn.request.dst_nis[d]);
      out.latency.merge(dst.rx_latency(handles[i].dst_rx_qs[d]));
    }
    report.connections.push_back(std::move(out));
  }

  alloc::SlotAllocator reporter(mesh.topo, dim->params);
  for (const auto& c : dim->allocation.connections) {
    reporter.restore(c.request);
    if (c.has_response) reporter.restore(c.response);
  }
  report.schedule = analysis::summarize_schedule(mesh.topo, reporter.schedule());
  report.links = analysis::link_usage(mesh.topo, reporter.schedule());
  report.links.erase(std::find_if(report.links.begin(), report.links.end(),
                                  [](const analysis::LinkUsage& u) { return u.reserved == 0; }),
                     report.links.end());

  // Measured per-link occupancy: slots in which a valid flit actually
  // crossed the link, from the upstream element's per-output counter.
  const std::uint64_t slots_elapsed = sc.run_cycles / dim->params.words_per_slot;
  for (analysis::LinkUsage& u : report.links) {
    const topo::Link& link = mesh.topo.link(u.link);
    u.busy_slots = mesh.topo.is_router(link.src)
                       ? net.router(link.src).forwarded_on(link.src_port)
                       : net.ni(link.src).stats().link_busy_slots;
    u.slots_elapsed = slots_elapsed;
  }

  report.router_drops = net.total_router_drops();
  report.ni_drops = net.total_ni_drops();
  report.rx_overflow = net.total_rx_overflow();

  report.health.enabled = injector.has_value();
  report.health.protocol_errors = net.total_protocol_errors();
  report.health.cfg_errors = net.total_cfg_errors();
  report.health.timeouts = net.config_module().timeouts();
  report.health.retries = net.config_module().retries();
  report.health.aborted = net.config_module().aborted();
  if (injector) {
    const sim::FaultCounters& fc = injector->counters();
    report.health.faults_injected = fc.injected;
    report.health.words_dropped = fc.dropped;
    report.health.words_flipped = fc.flipped;
    report.health.words_stuck = fc.stuck;
    report.health.words_killed = fc.killed;
  }
  for (topo::NodeId n = 0; n < mesh.topo.node_count(); ++n) {
    if (!mesh.topo.is_ni(n)) continue;
    const hw::Ni& ni = net.ni(n);
    for (std::size_t q = 0; q < net.options().ni_channels; ++q) {
      report.health.words_sent += ni.tx_stats(q).words_sent;
      report.health.words_delivered += ni.rx_stats(q).words_received;
    }
  }

  report.ok = all_met && report.router_drops == 0 && report.ni_drops == 0 &&
              report.rx_overflow == 0 && report.health.config_ok &&
              report.health.aborted == 0;
  return report;
}

} // namespace daelite::soc
