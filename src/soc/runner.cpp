#include "soc/runner.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "alloc/dimension.hpp"
#include "alloc/switching.hpp"
#include "daelite/network.hpp"
#include "sim/random.hpp"
#include "sim/trace.hpp"
#include "soc/health.hpp"
#include "workload/dnn.hpp"

namespace daelite::soc {

namespace {

/// Runner-side state machine of one connection's self-healing.
struct ConnRecovery {
  enum class Phase {
    kHealthy,        ///< delivering (or not yet touched by a fault)
    kReconfiguring,  ///< tear-down + set-up stream in flight
    kWaiting,        ///< reconfigured; waiting for delivery to every dst
    kDead,           ///< repair failed — connection abandoned, queues freed
  };
  Phase phase = Phase::kHealthy;
  std::size_t event = 0;       ///< index into report.recovery.events
  sim::Cycle detected = 0;
  std::uint64_t abort_base = 0; ///< config-module abort count at repair start
  std::vector<std::uint64_t> delivered_baseline;
  /// Integrity accounting that survives queue re-binding: totals saved
  /// from closed incarnations plus per-destination baselines of the
  /// current queue binding (a reused queue id keeps its old counters).
  std::uint64_t saved_corrupt = 0;
  std::uint64_t saved_lost = 0;
  std::vector<std::uint64_t> base_corrupt;
  std::vector<std::uint64_t> base_lost;
  std::uint64_t alarm_base = 0; ///< integrity total already acted upon
};

std::string topology_name(const Scenario& sc) {
  switch (sc.kind) {
    case Scenario::TopologyKind::kMesh:
      return "mesh " + std::to_string(sc.width) + "x" + std::to_string(sc.height);
    case Scenario::TopologyKind::kTorus:
      return "torus " + std::to_string(sc.width) + "x" + std::to_string(sc.height);
    case Scenario::TopologyKind::kRing:
      return "ring " + std::to_string(sc.width);
  }
  return "?";
}

/// Price the run from the hardware counters: word-link-crossings (the
/// upstream element's per-output counter — NI link counter for the first
/// hop, router forwarded_on for the rest), words through the declared
/// DRAM-port NIs, and configuration words streamed. No-op unless the
/// scenario enabled a model, keeping older reports byte-identical.
void accumulate_energy(analysis::NetworkReport& report, const Scenario& sc,
                       const topo::Mesh& mesh, hw::DaeliteNetwork& net) {
  if (!sc.energy.enabled) return;
  report.energy.enabled = true;
  report.energy.model = sc.energy;
  for (topo::LinkId l = 0; l < mesh.topo.link_count(); ++l) {
    const topo::Link& link = mesh.topo.link(l);
    report.energy.link_flit_hops += mesh.topo.is_router(link.src)
                                        ? net.router(link.src).forwarded_on(link.src_port)
                                        : net.ni(link.src).stats().link_busy_slots;
  }
  for (const auto& d : sc.dram) {
    const hw::Ni& ni = net.ni(mesh.ni(d.first, d.second));
    for (std::size_t q = 0; q < net.options().ni_channels; ++q) {
      report.energy.dram_words += ni.tx_stats(q).words_sent;
      report.energy.dram_words += ni.rx_stats(q).words_received;
    }
  }
  report.energy.config_words = net.config_module().words_sent();
}

/// Execute a compiled DNN schedule: open layer 0, then per layer a
/// use-case switch through the broadcast tree (layer-invariant weight
/// broadcasts are kept streaming; rotating ifmap/ofmap connections are
/// torn down and set up) followed by a bounded streaming phase that
/// drives the layer's word volumes to completion.
void run_dnn_scenario(const RunSpec& spec, Scenario& sc, topo::Mesh& mesh,
                      analysis::NetworkReport& report) {
  if (spec.fault_plan.enabled() || spec.recovery.enabled) {
    report.error = "dnn scenarios do not support fault injection or recovery";
    return;
  }
  std::string why;
  auto wl = workload::compile(*sc.dnn, mesh, sc.dram, &why);
  if (!wl) {
    report.error = "dnn compile failed: " + why;
    return;
  }

  // Like the connection shuffle of plain scenarios: a nonzero seed permutes
  // the order each layer's connections reach the allocator. use_case() is
  // derived from traffic order, so the shuffle moves slot assignment but
  // never desynchronizes the volume bookkeeping.
  if (spec.seed != 0) {
    sim::Xoshiro256 rng(spec.seed);
    for (workload::CompiledLayer& layer : wl->layers)
      for (std::size_t i = layer.traffic.size() - 1; i > 0; --i)
        std::swap(layer.traffic[i], layer.traffic[rng.below(i + 1)]);
  }

  // Wheel-size probe: the whole layer SEQUENCE must fit — layer 0 plus
  // every switch, since kept connections pin their slots across switches —
  // so the probe replays the chain on a scratch allocator.
  const std::vector<std::uint32_t> candidates =
      sc.slots ? std::vector<std::uint32_t>{*sc.slots} : std::vector<std::uint32_t>{8, 16, 32};
  std::optional<tdm::TdmParams> params;
  for (std::uint32_t s : candidates) {
    const tdm::TdmParams p = tdm::daelite_params(s);
    alloc::SlotAllocator probe(mesh.topo, p);
    auto cur = alloc::allocate_use_case(probe, wl->layers[0].use_case(), &why);
    bool fits = cur.has_value();
    for (std::size_t l = 1; fits && l < wl->layers.size(); ++l) {
      auto next =
          alloc::execute_use_case_switch(probe, *cur, wl->layers[l].use_case(), nullptr, &why);
      if (next)
        cur = std::move(*next);
      else
        fits = false;
    }
    if (fits) {
      params = p;
      break;
    }
  }
  if (!params) {
    report.error = "dnn dimensioning failed: " + why;
    return;
  }
  report.slots = params->num_slots;

  // Per-NI queue demand peaks within one layer (tear-down frees its queues
  // before set-up allocates): size the NI channel count to the worst layer.
  std::size_t channels = 0;
  {
    std::map<topo::NodeId, std::size_t> tx, rx;
    for (const workload::CompiledLayer& layer : wl->layers) {
      tx.clear();
      rx.clear();
      for (const workload::CompiledConnection& c : layer.traffic) {
        ++tx[c.spec.src_ni];
        for (topo::NodeId d : c.spec.dst_nis) ++rx[d];
      }
      for (const auto& [n, k] : tx) channels = std::max(channels, k);
      for (const auto& [n, k] : rx) channels = std::max(channels, k);
    }
  }

  sim::Kernel kernel(spec.scheduler);
  kernel.set_tracer(spec.tracer);
  hw::DaeliteNetwork::Options opt;
  opt.tdm = *params;
  opt.cfg_root = mesh.ni(sc.host.first, sc.host.second);
  opt.ni_channels = std::max(opt.ni_channels, channels);
  if (spec.watchdog_retries) opt.cfg_max_retries = *spec.watchdog_retries;
  opt.cfg_timeout_mult = spec.watchdog_timeout_mult;
  hw::DaeliteNetwork net(kernel, mesh.topo, opt);
  if (spec.shards > 1) net.assign_shards(spec.shards);
  if (spec.soa) net.enable_soa();
  if (spec.on_network) spec.on_network(kernel, net);

  sim::Tracer* tr = (spec.tracer != nullptr && spec.tracer->enabled()) ? spec.tracer : nullptr;
  const std::uint32_t scen_id = tr ? tr->intern("scenario") : 0;
  const auto phase_mark = [&](sim::TraceEvent e, std::string_view label) {
    if (tr) tr->record(kernel.now(), scen_id, e, tr->intern(label));
  };

  alloc::SlotAllocator allocator(mesh.topo, *params);
  auto cur = alloc::allocate_use_case(allocator, wl->layers[0].use_case(), &why);
  if (!cur) { // the probe admitted this chain; never dereference blind anyway
    report.error = "dnn allocation diverged from the probe: " + why;
    return;
  }

  std::map<std::string, hw::ConnectionHandle> open;
  const auto run_switch = [&](sim::Cycle* cycles) {
    sim::Cycle c = net.run_config();
    if (c == sim::kNoCycle) {
      report.health.config_ok = false;
      c = kernel.now();
    }
    *cycles = c;
  };

  report.workload.enabled = true;
  report.workload.tiles = static_cast<std::uint32_t>(wl->tiles.size());
  report.workload.dram_ports = static_cast<std::uint32_t>(wl->dram_nis.size());
  report.workload.connections_per_layer =
      static_cast<std::uint32_t>(wl->layers[0].traffic.size());

  // One streaming phase: drive every connection's word budget, draining
  // the sinks each cycle, until every volume arrived at every destination
  // or the per-layer budget (the scenario's `run` cycles) expires.
  const auto stream_layer = [&](const workload::CompiledLayer& layer,
                                analysis::WorkloadLayerOutcome* out) {
    const sim::Cycle start = kernel.now();
    std::vector<std::uint64_t> pushed(layer.traffic.size(), 0);
    std::vector<std::vector<std::uint64_t>> got(layer.traffic.size());
    for (std::size_t i = 0; i < layer.traffic.size(); ++i)
      got[i].assign(layer.traffic[i].spec.dst_nis.size(), 0);
    const auto done = [&] {
      for (std::size_t i = 0; i < layer.traffic.size(); ++i)
        for (std::uint64_t words : got[i])
          if (words < layer.traffic[i].words) return false;
      return true;
    };
    while (!done() && kernel.now() - start < sc.run_cycles) {
      for (std::size_t i = 0; i < layer.traffic.size(); ++i) {
        const workload::CompiledConnection& c = layer.traffic[i];
        const hw::ConnectionHandle& h = open.at(c.spec.name);
        hw::Ni& src = net.ni(c.spec.src_ni);
        while (pushed[i] < c.words &&
               src.tx_push(h.src_tx_q, static_cast<std::uint32_t>(pushed[i] + 1)))
          ++pushed[i];
        for (std::size_t d = 0; d < h.dst_rx_qs.size(); ++d) {
          hw::Ni& dst = net.ni(c.spec.dst_nis[d]);
          while (dst.rx_pop(h.dst_rx_qs[d])) ++got[i][d];
        }
      }
      kernel.step();
    }
    out->stream_cycles = kernel.now() - start;
    out->completed = done();
    for (const auto& per_dst : got)
      for (std::uint64_t words : per_dst) out->words_delivered += words;
  };

  phase_mark(sim::TraceEvent::kPhaseBegin, "configure");
  for (const alloc::AllocatedConnection& c : cur->connections)
    open.emplace(c.spec.name, net.open_connection(c));
  {
    analysis::WorkloadLayerOutcome out;
    out.name = wl->layers[0].name;
    out.set_up = cur->connections.size();
    run_switch(&out.switch_cycles);
    report.cfg_cycles = out.switch_cycles;
    phase_mark(sim::TraceEvent::kPhaseEnd, "configure");
    phase_mark(sim::TraceEvent::kPhaseBegin, "traffic");
    stream_layer(wl->layers[0], &out);
    report.workload.layers.push_back(std::move(out));
  }

  for (std::size_t l = 1; l < wl->layers.size(); ++l) {
    analysis::WorkloadLayerOutcome out;
    out.name = wl->layers[l].name;
    alloc::SwitchPlan plan;
    auto next =
        alloc::execute_use_case_switch(allocator, *cur, wl->layers[l].use_case(), &plan, &why);
    if (!next) {
      report.error = "use-case switch into '" + wl->layers[l].name + "' failed: " + why;
      return;
    }
    cur = std::move(*next);
    out.kept = plan.keep.size();
    out.torn_down = plan.tear_down.size();
    out.set_up = plan.set_up.size();
    // Tear down first so the freed NI queues are available for the new
    // connections (a re-routed "i3" reuses its name with a new source).
    for (const alloc::AllocatedConnection& t : plan.tear_down) {
      net.close_connection(open.at(t.spec.name));
      open.erase(t.spec.name);
    }
    for (const alloc::AllocatedConnection& c : cur->connections)
      if (open.find(c.spec.name) == open.end()) open.emplace(c.spec.name, net.open_connection(c));
    run_switch(&out.switch_cycles);
    stream_layer(wl->layers[l], &out);
    report.workload.layers.push_back(std::move(out));
  }
  phase_mark(sim::TraceEvent::kPhaseEnd, "traffic");

  report.workload.total_cycles = kernel.now();
  report.schedule_utilization = cur->schedule_utilization;
  report.schedule = analysis::summarize_schedule(mesh.topo, allocator.schedule());
  report.links = analysis::link_usage(mesh.topo, allocator.schedule());
  report.links.erase(std::find_if(report.links.begin(), report.links.end(),
                                  [](const analysis::LinkUsage& u) { return u.reserved == 0; }),
                     report.links.end());
  const std::uint64_t slots_elapsed = kernel.now() / params->words_per_slot;
  for (analysis::LinkUsage& u : report.links) {
    const topo::Link& link = mesh.topo.link(u.link);
    u.busy_slots = mesh.topo.is_router(link.src)
                       ? net.router(link.src).forwarded_on(link.src_port)
                       : net.ni(link.src).stats().link_busy_slots;
    u.slots_elapsed = slots_elapsed;
  }

  report.router_drops = net.total_router_drops();
  report.ni_drops = net.total_ni_drops();
  report.rx_overflow = net.total_rx_overflow();
  report.health.protocol_errors = net.total_protocol_errors();
  report.health.cfg_errors = net.total_cfg_errors();
  report.health.timeouts = net.config_module().timeouts();
  report.health.retries = net.config_module().retries();
  report.health.aborted = net.config_module().aborted();
  for (topo::NodeId n = 0; n < mesh.topo.node_count(); ++n) {
    if (!mesh.topo.is_ni(n)) continue;
    const hw::Ni& ni = net.ni(n);
    for (std::size_t q = 0; q < net.options().ni_channels; ++q) {
      report.health.words_sent += ni.tx_stats(q).words_sent;
      report.health.words_delivered += ni.rx_stats(q).words_received;
    }
  }
  report.health.corrupt_words = net.total_corrupt_words();
  report.health.lost_words = net.total_lost_words();

  accumulate_energy(report, sc, mesh, net);

  bool all_done = true;
  for (const analysis::WorkloadLayerOutcome& lo : report.workload.layers)
    all_done = all_done && lo.completed;
  report.ok = all_done && report.router_drops == 0 && report.ni_drops == 0 &&
              report.rx_overflow == 0 && report.health.config_ok && report.health.aborted == 0;
}

} // namespace

analysis::NetworkReport run_scenario(const RunSpec& spec) {
  analysis::NetworkReport report;
  Scenario sc = spec.scenario;
  if (spec.slots_override) sc.slots = *spec.slots_override;
  if (spec.run_cycles_override) sc.run_cycles = *spec.run_cycles_override;

  report.label = spec.label.empty() ? topology_name(sc) : spec.label;
  report.topology = topology_name(sc);
  report.clock_mhz = sc.clock_mhz;
  report.seed = spec.seed;
  report.run_cycles = sc.run_cycles;

  // Scenario coordinates come from user-written files; reject anything
  // outside the grid before build() indexes with them.
  const int grid_h = sc.kind == Scenario::TopologyKind::kRing ? 1 : sc.height;
  const auto in_grid = [&](const std::pair<int, int>& c) {
    return c.first >= 0 && c.first < sc.width && c.second >= 0 && c.second < grid_h;
  };
  const auto coord_error = [&](const std::string& what, const std::pair<int, int>& c) {
    report.error = what + ": coordinate " + std::to_string(c.first) + "," +
                   std::to_string(c.second) + " outside " + topology_name(sc);
  };
  if (!in_grid(sc.host)) {
    coord_error("host", sc.host);
    return report;
  }
  for (const Scenario::RawConnection& c : sc.raw) {
    if (!in_grid(c.src)) {
      coord_error("connection '" + c.name + "'", c.src);
      return report;
    }
    for (const auto& d : c.dsts) {
      if (!in_grid(d)) {
        coord_error("connection '" + c.name + "'", d);
        return report;
      }
    }
  }
  for (const auto& d : sc.dram) {
    if (!in_grid(d)) {
      coord_error("dram port", d);
      return report;
    }
  }

  topo::Mesh mesh = sc.build();

  if (sc.dnn) {
    run_dnn_scenario(spec, sc, mesh, report);
    return report;
  }

  // A nonzero seed permutes the order connections reach the allocator
  // (Fisher–Yates over the spec list) — slot assignment is greedy and
  // order-dependent, so this is a real design-space axis.
  if (spec.seed != 0 && sc.connections.size() > 1) {
    sim::Xoshiro256 rng(spec.seed);
    for (std::size_t i = sc.connections.size() - 1; i > 0; --i)
      std::swap(sc.connections[i], sc.connections[rng.below(i + 1)]);
  }

  const alloc::NocClocking clk{sc.clock_mhz, 4};
  const std::vector<std::uint32_t> candidates =
      sc.slots ? std::vector<std::uint32_t>{*sc.slots} : std::vector<std::uint32_t>{8, 16, 32};
  std::string error;
  auto dim = alloc::dimension_network(mesh.topo, sc.connections, clk, candidates, &error);
  if (!dim) {
    report.error = "dimensioning failed: " + error;
    return report;
  }
  report.slots = dim->params.num_slots;
  report.schedule_utilization = dim->schedule_utilization;

  // The `service` section exists only for QoS-aware runs: a declared
  // non-default class, or recovery running with preemption/compaction.
  // Everything else stays byte-identical to pre-service builds.
  bool any_class = false;
  for (const alloc::DimensionedConnection& d : dim->connections)
    any_class = any_class || d.spec.service_class != alloc::ServiceClass::kStandard;
  report.service.enabled =
      any_class || (spec.recovery.enabled && (spec.recovery.preempt_best_effort ||
                                              spec.recovery.compact_after_recovery));
  for (const alloc::DimensionedConnection& d : dim->connections)
    ++report.service.per_class[static_cast<std::size_t>(d.spec.service_class)].connections;

  sim::Kernel kernel(spec.scheduler);
  kernel.set_tracer(spec.tracer);
  hw::DaeliteNetwork::Options opt;
  opt.tdm = dim->params;
  opt.cfg_root = mesh.ni(sc.host.first, sc.host.second);
  if (spec.watchdog_retries) opt.cfg_max_retries = *spec.watchdog_retries;
  opt.cfg_timeout_mult = spec.watchdog_timeout_mult;
  hw::DaeliteNetwork net(kernel, mesh.topo, opt);
  if (spec.shards > 1) net.assign_shards(spec.shards);
  // SoA after sharding (the engine bands follow the shard bands), before
  // the on_network hook, injector and monitor — those must register after
  // the engines so their serial commits still run last in the cycle.
  if (spec.soa) net.enable_soa();
  if (spec.on_network) spec.on_network(kernel, net);

  // The injector is constructed after every network element so it commits
  // last each cycle (it corrupts freshly committed link values). Absent a
  // plan nothing is constructed and the run is byte-identical to a
  // pre-fault-injection build.
  std::optional<sim::FaultInjector> injector;
  if (spec.fault_plan.enabled()) {
    injector.emplace(kernel, "fault", spec.fault_plan);
    net.attach_fault_lines(*injector);
  }

  // The health monitor is constructed after the injector so its commit()
  // runs last and observes the corrupted values downstream consumers will
  // read. Without recovery nothing is constructed and the run is
  // byte-identical to a build without the subsystem.
  std::optional<HealthMonitor> monitor;
  if (spec.recovery.enabled) {
    HealthMonitor::Options mo;
    mo.epoch_cycles = spec.recovery.epoch_cycles;
    mo.suspect_threshold = spec.recovery.suspect_threshold;
    mo.dead_threshold = spec.recovery.dead_threshold;
    monitor.emplace(kernel, "health", net, mo);
  }

  // Phase spans: the runner's own coarse timeline on top of the per-element
  // event stream (the config module emits the per-connection set-up spans).
  sim::Tracer* tr = (spec.tracer != nullptr && spec.tracer->enabled()) ? spec.tracer : nullptr;
  const std::uint32_t scen_id = tr ? tr->intern("scenario") : 0;
  const auto phase_mark = [&](sim::TraceEvent e, std::string_view label) {
    if (tr) tr->record(kernel.now(), scen_id, e, tr->intern(label));
  };

  phase_mark(sim::TraceEvent::kPhaseBegin, "configure");
  std::vector<hw::ConnectionHandle> handles;
  for (const auto& c : dim->allocation.connections) handles.push_back(net.open_connection(c));
  if (injector) {
    // One verification read per connection: under faults the response path
    // (and the module's watchdog) is part of what set-up time measures.
    for (const hw::ConnectionHandle& h : handles) {
      net.config_module().enqueue_packet(
          hw::encode_read_flags(net.cfg_ids().at(h.conn.request.src_ni), h.src_tx_q),
          /*is_path=*/false, /*expects_response=*/true);
    }
  }
  report.cfg_cycles = net.run_config();
  if (report.cfg_cycles == sim::kNoCycle) {
    // The stream never converged (possible only with the watchdog off).
    // Keep going — partial configuration is itself the observable — but
    // flag it so ok == false and the health section says why.
    report.health.config_ok = false;
    report.cfg_cycles = kernel.now();
  }
  phase_mark(sim::TraceEvent::kPhaseEnd, "configure");
  phase_mark(sim::TraceEvent::kPhaseBegin, "traffic");

  // Live allocator mirror for recovery: the dimensioned allocation
  // restored route by route, so mid-run re-allocation sees the real
  // residual capacity and hands out ChannelIds that alias nothing.
  std::optional<alloc::SlotAllocator> live;
  if (spec.recovery.enabled) {
    live.emplace(mesh.topo, dim->params);
    for (const auto& c : dim->allocation.connections) {
      live->restore(c.request);
      if (c.has_response) live->restore(c.response);
    }
  }

  // Open-loop pacing for `stream` connections: offer `burst` words every
  // `period` cycles (optionally gated through a seeded on/off process like
  // BurstyWriter) instead of saturating the source. period == 0 keeps the
  // saturated loop, so legacy scenarios stay byte-identical.
  struct Pacer {
    std::uint32_t period = 0;
    std::uint32_t burst = 1;
    bool bursty = false;
    bool on = true;
    sim::Xoshiro256 rng;
    std::uint64_t owed = 0;    ///< offered but not yet accepted by the NI
    std::uint64_t offered = 0; ///< total words the source wanted to send
  };
  std::vector<Pacer> pacers(handles.size());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const alloc::PhysicalConnectionSpec& ps = dim->connections[i].spec;
    pacers[i].period = ps.stream_period;
    pacers[i].burst = ps.stream_burst;
    if (ps.bursty_seed != 0) {
      pacers[i].bursty = true;
      pacers[i].on = false;
      pacers[i].rng.reseed(ps.bursty_seed);
    }
  }

  // Saturated traffic: sources push as fast as the NI accepts, sinks drain
  // every cycle; delivered words per destination measure achieved bandwidth.
  std::vector<std::vector<std::uint64_t>> delivered(handles.size());
  std::vector<ConnRecovery> rec(handles.size());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const std::size_t dsts = handles[i].conn.request.dst_nis.size();
    delivered[i].assign(dsts, 0);
    rec[i].base_corrupt.assign(dsts, 0);
    rec[i].base_lost.assign(dsts, 0);
  }

  // Cumulative end-to-end integrity verdicts of one connection's
  // destinations, robust to queue re-binding across repairs.
  const auto integrity_total = [&](std::size_t i) {
    std::uint64_t total = rec[i].saved_corrupt + rec[i].saved_lost;
    if (rec[i].phase == ConnRecovery::Phase::kDead) return total; // queues freed
    for (std::size_t d = 0; d < delivered[i].size(); ++d) {
      const auto& rs =
          net.ni(handles[i].conn.request.dst_nis[d]).rx_stats(handles[i].dst_rx_qs[d]);
      total += rs.corrupt_words - rec[i].base_corrupt[d];
      total += rs.lost_words - rec[i].base_lost[d];
    }
    return total;
  };
  const auto route_links = [&](std::size_t i) {
    std::vector<topo::LinkId> links;
    for (const alloc::RouteEdge& e : handles[i].conn.request.edges) links.push_back(e.link);
    if (handles[i].conn.has_response)
      for (const alloc::RouteEdge& e : handles[i].conn.response.edges) links.push_back(e.link);
    return links;
  };
  const std::uint32_t rec_id = tr ? tr->intern("recovery") : 0;

  // Drain and account a dying incarnation, then close it at the hardware
  // level: stale words must not fake a "restored" verdict, and the freed
  // queues' integrity counters survive into the per-connection totals.
  // Allocator bookkeeping (release) is the caller's job.
  const auto retire_incarnation = [&](std::size_t j) {
    ConnRecovery& stj = rec[j];
    for (std::size_t d = 0; d < delivered[j].size(); ++d) {
      hw::Ni& dst = net.ni(handles[j].conn.request.dst_nis[d]);
      while (dst.rx_pop(handles[j].dst_rx_qs[d])) ++delivered[j][d];
      const auto& rs = dst.rx_stats(handles[j].dst_rx_qs[d]);
      stj.saved_corrupt += rs.corrupt_words - stj.base_corrupt[d];
      stj.saved_lost += rs.lost_words - stj.base_lost[d];
    }
    net.close_connection(handles[j]);
  };

  // A recovery wave ran: run one compaction pass once the config stream is
  // idle again (only with compact_after_recovery).
  bool compact_pending = false;

  // Tear the connection down and re-set it up around the quarantine while
  // traffic keeps flowing: the set-up stream rides the broadcast tree, so
  // repair cost scales with path length, not slot count (the paper's
  // fast-set-up argument replayed as fast *recovery*).
  const auto start_recovery = [&](std::size_t i, topo::LinkId link, const char* trigger,
                                  sim::Cycle detect_cycle) {
    ConnRecovery& st = rec[i];
    if (spec.recovery.compact_after_recovery) compact_pending = true;
    analysis::RecoveryEvent ev;
    ev.connection = dim->connections[i].spec.name;
    ev.link = link;
    ev.trigger = trigger;
    ev.detected_cycle = detect_cycle;
    ev.hops_before = static_cast<std::uint32_t>(handles[i].conn.request.edges.size());

    retire_incarnation(i);
    live->release(handles[i].conn.request);
    if (handles[i].conn.has_response) live->release(handles[i].conn.response);

    const alloc::ConnectionSpec& cs = handles[i].conn.spec;
    const bool want_resp = handles[i].conn.has_response;
    const auto try_allocate = [&](std::optional<alloc::RouteTree>* req,
                                  std::optional<alloc::RouteTree>* resp) {
      *req = live->allocate({cs.src_ni, cs.dst_nis, cs.request_slots, cs.service_class});
      if (*req && want_resp) {
        *resp = live->allocate({cs.dst_nis[0], {cs.src_ni}, cs.response_slots, cs.service_class});
        if (!*resp) {
          live->release(**req);
          req->reset();
        }
      }
    };
    std::optional<alloc::RouteTree> new_req;
    std::optional<alloc::RouteTree> new_resp;
    try_allocate(&new_req, &new_resp);

    // Preemptive healing: a guaranteed connection squeezed out by the
    // quarantine may tear down best-effort traffic along a min-victims
    // candidate path instead of going dead.
    if (!new_req && spec.recovery.preempt_best_effort && cs.dst_nis.size() == 1 &&
        cs.service_class == alloc::ServiceClass::kGuaranteed) {
      std::unordered_map<tdm::ChannelId, std::size_t> owner;
      for (std::size_t j = 0; j < handles.size(); ++j) {
        if (j == i || rec[j].phase != ConnRecovery::Phase::kHealthy) continue;
        if (handles[j].conn.spec.service_class != alloc::ServiceClass::kBestEffort) continue;
        owner.emplace(handles[j].conn.request.channel, j);
        if (handles[j].conn.has_response) owner.emplace(handles[j].conn.response.channel, j);
      }
      const auto preemptable = [&](tdm::ChannelId ch) { return owner.count(ch) != 0; };
      // Two rounds: the request channel's plan may leave the response
      // channel still blocked.
      for (int round = 0; round < 2 && !new_req; ++round) {
        auto plan = live->plan_preemption(
            {cs.src_ni, cs.dst_nis, cs.request_slots, cs.service_class}, preemptable);
        if ((!plan || plan->victims.empty()) && want_resp)
          plan = live->plan_preemption(
              {cs.dst_nis[0], {cs.src_ni}, cs.response_slots, cs.service_class}, preemptable);
        if (!plan || plan->victims.empty()) break;
        std::vector<std::size_t> victims;
        for (tdm::ChannelId ch : plan->victims) victims.push_back(owner.at(ch));
        std::sort(victims.begin(), victims.end());
        victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
        for (std::size_t j : victims) {
          retire_incarnation(j);
          live->release(handles[j].conn.request);
          if (handles[j].conn.has_response) live->release(handles[j].conn.response);
          owner.erase(handles[j].conn.request.channel);
          if (handles[j].conn.has_response) owner.erase(handles[j].conn.response.channel);
          rec[j].phase = ConnRecovery::Phase::kDead;
          ++report.service.per_class[static_cast<std::size_t>(alloc::ServiceClass::kBestEffort)]
                .preempted;
        }
        ++report.service.preemption_events;
        if (tr)
          tr->record(kernel.now(), rec_id, sim::TraceEvent::kPreemptBegin,
                     report.recovery.events.size(), victims.size());
        try_allocate(&new_req, &new_resp);
      }
    }

    st.event = report.recovery.events.size();
    st.detected = detect_cycle;
    st.alarm_base = st.saved_corrupt + st.saved_lost;
    if (!new_req) {
      // No route around the quarantine: the connection stays down.
      st.phase = ConnRecovery::Phase::kDead;
      report.recovery.events.push_back(std::move(ev));
      return;
    }
    alloc::AllocatedConnection nc;
    nc.id = handles[i].conn.id;
    nc.spec = cs;
    nc.request = std::move(*new_req);
    nc.has_response = want_resp;
    if (want_resp) nc.response = std::move(*new_resp);
    ev.hops_after = static_cast<std::uint32_t>(nc.request.edges.size());
    handles[i] = net.open_connection(nc);
    for (std::size_t d = 0; d < delivered[i].size(); ++d) {
      const auto& rs =
          net.ni(handles[i].conn.request.dst_nis[d]).rx_stats(handles[i].dst_rx_qs[d]);
      rec[i].base_corrupt[d] = rs.corrupt_words;
      rec[i].base_lost[d] = rs.lost_words;
    }
    st.phase = ConnRecovery::Phase::kReconfiguring;
    st.abort_base = net.config_module().aborted();
    if (tr) tr->record(kernel.now(), rec_id, sim::TraceEvent::kRecoveryBegin, st.event, link);
    report.recovery.events.push_back(std::move(ev));
  };

  // Slot compaction after a recovery wave: re-pack live standard and
  // best-effort connections under kFirstFit, keeping a move only when it
  // strictly lowers the (highest inject slot, route edges) packing score.
  // Close-before-open at both the allocator and the hardware level — an
  // accepted move rides the same reconfigure/wait machinery as a repair
  // (trigger "compaction"); guaranteed channels are never touched.
  const auto packing_score = [](const alloc::RouteTree& req, const alloc::RouteTree* resp) {
    std::uint32_t hi = 0;
    std::size_t edges = req.edges.size();
    for (tdm::Slot s : req.inject_slots) hi = std::max<std::uint32_t>(hi, s);
    if (resp) {
      for (tdm::Slot s : resp->inject_slots) hi = std::max<std::uint32_t>(hi, s);
      edges += resp->edges.size();
    }
    return std::make_pair(hi, edges);
  };
  const auto fnv = [](std::uint64_t& h, std::uint64_t x) { h = (h ^ x) * 1099511628211ull; };
  const auto compaction_pass = [&]() {
    const alloc::SlotPolicy saved_policy = live->options().slot_policy;
    live->set_slot_policy(alloc::SlotPolicy::kFirstFit);
    std::uint64_t moves = 0;
    std::uint64_t pass_digest = 14695981039346656037ull;
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (rec[i].phase != ConnRecovery::Phase::kHealthy) continue;
      const alloc::ConnectionSpec& cs = handles[i].conn.spec;
      if (cs.service_class == alloc::ServiceClass::kGuaranteed) continue;
      const alloc::RouteTree old_req = handles[i].conn.request;
      const bool want_resp = handles[i].conn.has_response;
      const alloc::RouteTree old_resp = handles[i].conn.response;
      // Allocator-only trial first, so rejected moves never touch the
      // hardware (close + identical reopen would cost config-stream time).
      live->release(old_req);
      if (want_resp) live->release(old_resp);
      auto new_req = live->allocate({cs.src_ni, cs.dst_nis, cs.request_slots, cs.service_class});
      std::optional<alloc::RouteTree> new_resp;
      if (new_req && want_resp) {
        new_resp = live->allocate({cs.dst_nis[0], {cs.src_ni}, cs.response_slots, cs.service_class});
        if (!new_resp) {
          live->release(*new_req);
          new_req.reset();
        }
      }
      const bool better = new_req && packing_score(*new_req, new_resp ? &*new_resp : nullptr) <
                                         packing_score(old_req, want_resp ? &old_resp : nullptr);
      if (!better) {
        if (new_resp) live->release(*new_resp);
        if (new_req) live->release(*new_req);
        // The old slots were just freed, so restore cannot fail.
        live->restore(old_req);
        if (want_resp) live->restore(old_resp);
        continue;
      }
      retire_incarnation(i);
      alloc::AllocatedConnection nc;
      nc.id = handles[i].conn.id;
      nc.spec = cs;
      nc.request = std::move(*new_req);
      nc.has_response = want_resp;
      if (want_resp) nc.response = std::move(*new_resp);
      analysis::RecoveryEvent ev;
      ev.connection = dim->connections[i].spec.name;
      ev.trigger = "compaction";
      ev.detected_cycle = kernel.now();
      ev.hops_before = static_cast<std::uint32_t>(old_req.edges.size());
      ev.hops_after = static_cast<std::uint32_t>(nc.request.edges.size());
      ConnRecovery& st = rec[i];
      st.event = report.recovery.events.size();
      st.detected = kernel.now();
      st.abort_base = net.config_module().aborted();
      handles[i] = net.open_connection(nc);
      for (std::size_t d = 0; d < delivered[i].size(); ++d) {
        const auto& rs =
            net.ni(handles[i].conn.request.dst_nis[d]).rx_stats(handles[i].dst_rx_qs[d]);
        st.base_corrupt[d] = rs.corrupt_words;
        st.base_lost[d] = rs.lost_words;
      }
      st.phase = ConnRecovery::Phase::kReconfiguring;
      report.recovery.events.push_back(std::move(ev));
      ++moves;
      fnv(pass_digest, i);
      for (tdm::Slot s : old_req.inject_slots) fnv(pass_digest, s);
      for (tdm::Slot s : handles[i].conn.request.inject_slots) fnv(pass_digest, s);
    }
    live->set_slot_policy(saved_policy);
    ++report.service.compaction_passes;
    report.service.compaction_moves += moves;
    fnv(report.service.compaction_digest, pass_digest);
    if (tr)
      tr->record(kernel.now(), rec_id, sim::TraceEvent::kCompactionPass, moves, pass_digest);
  };

  // Post-step recovery poll: collect verdicts, quarantine, repair, and
  // advance in-flight repairs. Pure bookkeeping on committed kernel state,
  // so it is identical under both schedulers and any --jobs count.
  const auto poll_recovery = [&]() {
    for (const DeadLinkEvent& de : monitor->take_dead_events()) {
      report.recovery.dead_links.push_back({de.link, de.cycle, de.evidence});
      live->quarantine_link(de.link);
      for (std::size_t i = 0; i < handles.size(); ++i) {
        if (rec[i].phase != ConnRecovery::Phase::kHealthy) continue;
        const auto links = route_links(i);
        if (std::find(links.begin(), links.end(), de.link) != links.end())
          start_recovery(i, de.link, "link_dead", de.cycle);
      }
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
      ConnRecovery& st = rec[i];
      switch (st.phase) {
        case ConnRecovery::Phase::kHealthy: {
          // End-to-end integrity alarm: repair even without a dead-link
          // verdict, provided the monitor can pin a suspect on the route.
          if (integrity_total(i) - st.alarm_base < spec.recovery.integrity_threshold) break;
          const auto suspects = monitor->suspects_among(route_links(i));
          if (suspects.empty()) break; // not localizable (yet)
          for (topo::LinkId l : suspects)
            if (!live->is_quarantined(l)) live->quarantine_link(l);
          start_recovery(i, suspects.front(), "integrity", kernel.now());
          break;
        }
        case ConnRecovery::Phase::kReconfiguring: {
          analysis::RecoveryEvent& ev = report.recovery.events[st.event];
          if (net.config_module().aborted() > st.abort_base ||
              kernel.now() - st.detected > spec.recovery.reconfig_timeout) {
            st.phase = ConnRecovery::Phase::kDead; // watchdog gave up on the stream
          } else if (net.config_idle()) {
            ev.reconfigured_cycle = kernel.now();
            st.delivered_baseline = delivered[i];
            st.phase = ConnRecovery::Phase::kWaiting;
          }
          break;
        }
        case ConnRecovery::Phase::kWaiting: {
          bool all = true;
          for (std::size_t d = 0; d < delivered[i].size(); ++d)
            all = all && delivered[i][d] > st.delivered_baseline[d];
          if (!all) break;
          analysis::RecoveryEvent& ev = report.recovery.events[st.event];
          ev.restored = true;
          ev.restored_cycle = kernel.now();
          st.alarm_base = integrity_total(i); // words lost mid-repair are acted upon
          if (tr)
            tr->record(kernel.now(), rec_id, sim::TraceEvent::kRecoveryEnd, st.event,
                       ev.restored_cycle - ev.detected_cycle);
          st.phase = ConnRecovery::Phase::kHealthy;
          break;
        }
        case ConnRecovery::Phase::kDead:
          break;
      }
    }
  };

  for (sim::Cycle c = 0; c < sc.run_cycles; ++c) {
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (rec[i].phase == ConnRecovery::Phase::kDead) continue; // queues freed
      hw::Ni& src = net.ni(handles[i].conn.request.src_ni);
      Pacer& p = pacers[i];
      if (p.period == 0) {
        while (src.tx_push(handles[i].src_tx_q, 1)) {
        }
      } else {
        if (c % p.period == 0) {
          if (p.bursty) {
            if (p.on) {
              if (p.rng.chance(0.10)) p.on = false; // BurstyWriter's p_stop
            } else if (p.rng.chance(0.05)) {
              p.on = true; // BurstyWriter's p_start
            }
          }
          if (p.on) {
            p.owed += p.burst;
            p.offered += p.burst;
          }
        }
        while (p.owed > 0 && src.tx_push(handles[i].src_tx_q, 1)) --p.owed;
      }
      for (std::size_t d = 0; d < delivered[i].size(); ++d) {
        hw::Ni& dst = net.ni(handles[i].conn.request.dst_nis[d]);
        while (dst.rx_pop(handles[i].dst_rx_qs[d])) ++delivered[i][d];
      }
    }
    kernel.step();
    if (monitor) {
      poll_recovery();
      if (compact_pending) {
        // Wait for every in-flight repair to settle and the config stream
        // to drain, so the pass sees a stable allocator and an idle tree.
        bool busy = !net.config_idle();
        for (const ConnRecovery& st : rec)
          busy = busy || st.phase == ConnRecovery::Phase::kReconfiguring ||
                 st.phase == ConnRecovery::Phase::kWaiting;
        if (!busy) {
          compact_pending = false;
          compaction_pass();
        }
      }
    }
  }
  phase_mark(sim::TraceEvent::kPhaseEnd, "traffic");

  bool all_met = true;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    std::uint64_t min_words = delivered[i].empty() ? 0 : delivered[i][0];
    for (auto w : delivered[i]) min_words = std::min(min_words, w);
    const double mbps = static_cast<double>(min_words) / static_cast<double>(sc.run_cycles) *
                        clk.link_mbytes_per_s();
    analysis::ConnectionOutcome out;
    out.name = dim->connections[i].spec.name;
    out.request_slots = dim->connections[i].request_slots;
    out.response_slots = dim->connections[i].response_slots;
    if (report.service.enabled) {
      const alloc::ServiceClass sc_class = dim->connections[i].spec.service_class;
      out.service_class = std::string(alloc::service_class_name(sc_class));
      if (spec.recovery.enabled && rec[i].phase == ConnRecovery::Phase::kDead)
        ++report.service.per_class[static_cast<std::size_t>(sc_class)].dead;
    }
    out.contract_mbps = dim->connections[i].spec.bandwidth_mbytes_per_s;
    out.measured_mbps = mbps;
    out.worst_latency_ns = dim->connections[i].worst_latency_ns;
    if (pacers[i].period == 0) {
      out.met = mbps + 1.0 >= out.contract_mbps;
    } else {
      // Open-loop source: met when everything offered arrived at every
      // destination, up to the in-flight slack of the NI queues plus one
      // burst still propagating when the run ends.
      out.met = min_words + 64 + pacers[i].burst >= pacers[i].offered;
    }
    all_met = all_met && out.met;
    // Per-connection integrity verdicts; integrity_total() accounts for
    // queue re-binding across repairs (a plain sum would double-count
    // reused queue ids).
    if (spec.recovery.enabled) {
      std::uint64_t corrupt = rec[i].saved_corrupt;
      std::uint64_t lost = rec[i].saved_lost;
      if (rec[i].phase != ConnRecovery::Phase::kDead) {
        for (std::size_t d = 0; d < delivered[i].size(); ++d) {
          const auto& rs =
              net.ni(handles[i].conn.request.dst_nis[d]).rx_stats(handles[i].dst_rx_qs[d]);
          corrupt += rs.corrupt_words - rec[i].base_corrupt[d];
          lost += rs.lost_words - rec[i].base_lost[d];
        }
      }
      out.corrupt_words = corrupt;
      out.lost_words = lost;
    } else {
      for (std::size_t d = 0; d < delivered[i].size(); ++d) {
        const auto& rs =
            net.ni(handles[i].conn.request.dst_nis[d]).rx_stats(handles[i].dst_rx_qs[d]);
        out.corrupt_words += rs.corrupt_words;
        out.lost_words += rs.lost_words;
      }
    }
    // End-to-end latency over every destination queue of the connection.
    for (std::size_t d = 0; d < handles[i].dst_rx_qs.size(); ++d) {
      const hw::Ni& dst = net.ni(handles[i].conn.request.dst_nis[d]);
      out.latency.merge(dst.rx_latency(handles[i].dst_rx_qs[d]));
    }
    report.connections.push_back(std::move(out));
  }

  // The live allocator already tracks post-recovery routes; without
  // recovery, rebuild the dimensioned allocation (identical content — the
  // same restore() sequence).
  alloc::SlotAllocator reporter(mesh.topo, dim->params);
  if (!live) {
    for (const auto& c : dim->allocation.connections) {
      reporter.restore(c.request);
      if (c.has_response) reporter.restore(c.response);
    }
  }
  const tdm::Schedule& final_schedule = live ? live->schedule() : reporter.schedule();
  report.schedule = analysis::summarize_schedule(mesh.topo, final_schedule);
  report.links = analysis::link_usage(mesh.topo, final_schedule);
  report.links.erase(std::find_if(report.links.begin(), report.links.end(),
                                  [](const analysis::LinkUsage& u) { return u.reserved == 0; }),
                     report.links.end());

  // Measured per-link occupancy: slots in which a valid flit actually
  // crossed the link, from the upstream element's per-output counter.
  const std::uint64_t slots_elapsed = sc.run_cycles / dim->params.words_per_slot;
  for (analysis::LinkUsage& u : report.links) {
    const topo::Link& link = mesh.topo.link(u.link);
    u.busy_slots = mesh.topo.is_router(link.src)
                       ? net.router(link.src).forwarded_on(link.src_port)
                       : net.ni(link.src).stats().link_busy_slots;
    u.slots_elapsed = slots_elapsed;
  }

  report.router_drops = net.total_router_drops();
  report.ni_drops = net.total_ni_drops();
  report.rx_overflow = net.total_rx_overflow();

  report.health.enabled = injector.has_value();
  report.health.protocol_errors = net.total_protocol_errors();
  report.health.cfg_errors = net.total_cfg_errors();
  report.health.timeouts = net.config_module().timeouts();
  report.health.retries = net.config_module().retries();
  report.health.aborted = net.config_module().aborted();
  if (injector) {
    const sim::FaultCounters& fc = injector->counters();
    report.health.faults_injected = fc.injected;
    report.health.words_dropped = fc.dropped;
    report.health.words_flipped = fc.flipped;
    report.health.words_stuck = fc.stuck;
    report.health.words_killed = fc.killed;
  }
  for (topo::NodeId n = 0; n < mesh.topo.node_count(); ++n) {
    if (!mesh.topo.is_ni(n)) continue;
    const hw::Ni& ni = net.ni(n);
    for (std::size_t q = 0; q < net.options().ni_channels; ++q) {
      report.health.words_sent += ni.tx_stats(q).words_sent;
      report.health.words_delivered += ni.rx_stats(q).words_received;
    }
  }
  report.health.corrupt_words = net.total_corrupt_words();
  report.health.lost_words = net.total_lost_words();

  accumulate_energy(report, sc, mesh, net);

  report.recovery.enabled = spec.recovery.enabled;
  if (monitor) {
    report.recovery.missing_flits = monitor->total_missing();
    report.recovery.parity_errors = monitor->total_parity_errors();
    for (topo::LinkId l : live->quarantined_links()) report.recovery.quarantined.push_back(l);
  }
  if (report.service.enabled && spec.recovery.enabled) {
    std::unordered_map<std::string, std::size_t> class_of;
    for (const alloc::DimensionedConnection& d : dim->connections)
      class_of.emplace(d.spec.name, static_cast<std::size_t>(d.spec.service_class));
    for (const analysis::RecoveryEvent& e : report.recovery.events)
      if (e.restored) ++report.service.per_class[class_of.at(e.connection)].recovered;
  }

  report.ok = all_met && report.router_drops == 0 && report.ni_drops == 0 &&
              report.rx_overflow == 0 && report.health.config_ok &&
              report.health.aborted == 0;
  return report;
}

} // namespace daelite::soc
