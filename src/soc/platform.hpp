#pragma once
// Platform assembly — the paper's Fig. 3: IPs on lightweight local buses,
// network shells serializing their transactions into messages, a daelite
// network in the middle, and a host IP owning the configuration module.
//
// The Platform owns the network, the allocator, the memories, the buses
// and the shells; callers add IP components on top and wire them to the
// buses / ports this class hands out.

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "alloc/allocator.hpp"
#include "daelite/network.hpp"
#include "soc/bus.hpp"
#include "soc/memory.hpp"
#include "soc/shell.hpp"

namespace daelite::soc {

class Platform {
 public:
  struct Options {
    hw::DaeliteNetwork::Options net;
    alloc::AllocatorOptions alloc;
  };

  Platform(sim::Kernel& k, const topo::Topology& topo, Options options);

  hw::DaeliteNetwork& network() { return *net_; }
  alloc::SlotAllocator& allocator() { return *alloc_; }
  sim::Kernel& kernel() { return *kernel_; }

  /// Declare a memory target behind the given NI.
  Memory& add_memory(topo::NodeId ni);
  Memory& memory(topo::NodeId ni) { return *memories_.at(ni); }

  /// The local bus in front of the given (IP-side) NI; created on demand.
  LocalBus& bus(topo::NodeId ni);

  struct PortHandle {
    InitiatorPort* port = nullptr;       ///< submit/drain transactions here
    hw::ConnectionHandle handle;         ///< network-level connection state
  };

  /// Allocate and open a memory-mapped connection from the IP at `src_ni`
  /// to the memory at `dst_ni`, create the shells, and map
  /// [addr_base, addr_base+addr_size) on the source bus. Configuration
  /// packets are enqueued; call configure() to run them to completion.
  /// Returns nullopt — with the allocator untouched — when the connection
  /// does not fit the schedule or no memory was declared at `dst_ni`
  /// (this used to be an assert, i.e. undefined behaviour in NDEBUG
  /// builds when an over-subscribed schedule rejected the allocation).
  std::optional<PortHandle> connect(topo::NodeId src_ni, topo::NodeId dst_ni,
                                    std::uint32_t request_slots, std::uint32_t response_slots,
                                    std::uint32_t addr_base, std::uint32_t addr_size);

  /// Multicast connection: posted writes from the IP at `src_ni` land in
  /// the memories behind every `dst_ni` simultaneously (paper §IV: "All
  /// multicast destination shells will receive the same stream of
  /// messages and will translate them into the same write commands").
  /// There is no response channel and reads are rejected by the shell.
  /// Returns nullopt when the multicast tree does not fit the schedule or
  /// a destination has no memory (same hardening as connect()).
  std::optional<PortHandle> connect_multicast(topo::NodeId src_ni,
                                              const std::vector<topo::NodeId>& dst_nis,
                                              std::uint32_t request_slots,
                                              std::uint32_t addr_base, std::uint32_t addr_size);

  /// Run the kernel until the configuration network is idle.
  sim::Cycle configure() { return net_->run_config(); }

  std::uint64_t total_network_drops() const {
    return net_->total_router_drops() + net_->total_ni_drops();
  }

 private:
  sim::Kernel* kernel_;
  const topo::Topology* topo_;
  std::unique_ptr<hw::DaeliteNetwork> net_;
  std::unique_ptr<alloc::SlotAllocator> alloc_;

  std::map<topo::NodeId, std::unique_ptr<Memory>> memories_;
  std::map<topo::NodeId, std::unique_ptr<LocalBus>> buses_;

  using HwInitiatorShell = InitiatorShell<hw::Ni>;
  using HwTargetShell = TargetShell<hw::Ni>;
  std::vector<std::unique_ptr<HwInitiatorShell>> initiator_shells_;
  std::vector<std::unique_ptr<HwTargetShell>> target_shells_;
  std::vector<std::unique_ptr<ShellPort<HwInitiatorShell>>> ports_;
};

} // namespace daelite::soc
