#include "soc/traffic.hpp"

#include <utility>

namespace daelite::soc {

CbrWriter::CbrWriter(sim::Kernel& k, std::string name, LocalBus& bus, Params params)
    : sim::Component(k, std::move(name)), bus_(&bus), params_(params) {}

void CbrWriter::tick() {
  if ((now() + params_.period - params_.phase % params_.period) % params_.period != 0) return;
  Transaction t;
  t.is_write = true;
  t.addr = params_.base_addr + addr_off_;
  for (std::uint32_t i = 0; i < params_.burst; ++i) t.wdata.push_back(value_++);
  t.burst_len = params_.burst;
  if (bus_->submit(t)) ++submitted_;
  addr_off_ = (addr_off_ + params_.burst) % params_.addr_range;
}

BurstyWriter::BurstyWriter(sim::Kernel& k, std::string name, LocalBus& bus, Params params)
    : sim::Component(k, std::move(name)), bus_(&bus), params_(params), rng_(params.seed) {}

void BurstyWriter::tick() {
  if (on_) {
    if (rng_.chance(params_.p_stop)) on_ = false;
  } else {
    if (rng_.chance(params_.p_start)) on_ = true;
  }
  if (cooldown_ > 0) {
    --cooldown_;
    return;
  }
  if (!on_) return;
  Transaction t;
  t.is_write = true;
  t.addr = params_.base_addr + addr_off_;
  for (std::uint32_t i = 0; i < params_.burst; ++i) t.wdata.push_back(value_++);
  t.burst_len = params_.burst;
  if (bus_->submit(t)) ++submitted_;
  addr_off_ = (addr_off_ + params_.burst) % params_.addr_range;
  cooldown_ = params_.min_gap;
}

ReaderIp::ReaderIp(sim::Kernel& k, std::string name, InitiatorPort& port, Params params)
    : sim::Component(k, std::move(name)), port_(&port), params_(params) {}

void ReaderIp::tick() {
  while (auto r = port_->take_response()) {
    ++returned_;
    words_read_ += r->rdata.size();
  }
  if (now() % params_.period != 0) return;
  if (issued_ - returned_ >= params_.max_outstanding) return;
  Transaction t;
  t.is_write = false;
  t.addr = params_.base_addr + addr_off_;
  t.burst_len = params_.burst;
  port_->submit(t);
  ++issued_;
  addr_off_ = (addr_off_ + params_.burst) % params_.addr_range;
}

TraceIp::TraceIp(sim::Kernel& k, std::string name, LocalBus& bus,
                 std::vector<std::pair<sim::Cycle, Transaction>> trace)
    : sim::Component(k, std::move(name)), bus_(&bus), trace_(std::move(trace)) {}

void TraceIp::tick() {
  while (index_ < trace_.size() && trace_[index_].first <= now()) {
    const Transaction& t = trace_[index_].second;
    if (bus_->submit(t)) {
      ++submitted_;
      ++index_;
      continue;
    }
    if (!bus_->would_route(t.addr)) {
      // No range will ever accept this address: a decode error, not
      // backpressure. Skip it so the rest of the trace still replays.
      ++dropped_;
      ++index_;
      continue;
    }
    // Transient backpressure: stop here and retry the same transaction
    // next tick, keeping the trace order intact.
    ++deferred_;
    break;
  }
}

} // namespace daelite::soc
