#include "soc/health.hpp"

#include <cassert>

#include "daelite/network.hpp"
#include "sim/trace.hpp"

namespace daelite::soc {

std::string_view link_state_name(LinkState s) {
  switch (s) {
    case LinkState::kOk: return "ok";
    case LinkState::kSuspect: return "suspect";
    case LinkState::kDead: return "dead";
  }
  return "?";
}

HealthMonitor::HealthMonitor(sim::Kernel& k, std::string name, hw::DaeliteNetwork& net)
    : HealthMonitor(k, std::move(name), net, Options()) {}

HealthMonitor::HealthMonitor(sim::Kernel& k, std::string name, hw::DaeliteNetwork& net,
                             Options options)
    : sim::Component(k, std::move(name),
                     sim::Cadence{net.options().tdm.words_per_slot, 0}),
      params_(net.options().tdm),
      options_(options) {
  assert(options_.suspect_threshold <= options_.dead_threshold);
  epoch_cycles_ = options_.epoch_cycles != 0 ? options_.epoch_cycles : params_.wheel_cycles();
  // Evaluation happens at slot starts; round the epoch up to whole slots.
  const std::uint32_t w = params_.words_per_slot;
  epoch_cycles_ = (epoch_cycles_ + w - 1) / w * w;
  next_eval_ = (now() / epoch_cycles_ + 1) * epoch_cycles_;

  const topo::Topology& topo = net.topology();
  links_.resize(topo.link_count());
  for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
    const topo::Link& link = topo.link(l);
    WatchedLink& wl = links_[l];
    if (topo.is_router(link.src)) {
      const hw::Router& r = net.router(link.src);
      wl.reg = &r.output_reg(link.src_port);
      wl.produced = &r.forwarded_on(link.src_port);
    } else {
      const hw::Ni& ni = net.ni(link.src);
      wl.reg = &ni.output_reg();
      wl.produced = &ni.stats().link_busy_slots;
    }
  }
}

void HealthMonitor::commit() {
  sim::Component::commit();
  const sim::Cycle c = now();
  if (!params_.is_slot_start(c)) return; // fresh flits land at slot starts only

  for (WatchedLink& wl : links_) {
    const hw::Flit& f = wl.reg->get();
    if (!f.valid) continue;
    ++wl.health.observed;
    for (std::size_t i = 0; i < f.num_words; ++i) {
      if (!f.data_valid[i]) continue;
      if (!hw::integrity_parity_ok(f.data[i], f.integrity[i])) ++wl.health.parity_errors;
    }
  }

  // Grid-aligned epoch boundaries: the loop coalesces epochs skipped by a
  // quiescent fast-forward (quiescent() guarantees they carried no
  // evidence, so verdict cycles are schedule-independent).
  while (c >= next_eval_) {
    evaluate_epoch();
    next_eval_ += epoch_cycles_;
  }
}

void HealthMonitor::evaluate_epoch() {
  for (topo::LinkId l = 0; l < links_.size(); ++l) {
    WatchedLink& wl = links_[l];
    const std::uint64_t produced = *wl.produced;
    wl.health.produced = produced;
    // The producer counted during tick(), before injection; we counted
    // after. The difference is exactly the flits the injector destroyed.
    const std::uint64_t produced_delta = produced - wl.produced_at_eval;
    const std::uint64_t observed_delta = wl.health.observed - wl.observed_at_eval;
    assert(observed_delta <= produced_delta && "observed a flit nobody produced");
    wl.health.missing += produced_delta - observed_delta;
    wl.produced_at_eval = produced;
    wl.observed_at_eval = wl.health.observed;
    wl.parity_at_eval = wl.health.parity_errors;

    if (wl.health.state == LinkState::kDead) continue;
    const std::uint64_t evidence = wl.health.evidence();
    if (evidence >= options_.dead_threshold) {
      wl.health.state = LinkState::kDead;
      dead_events_.push_back(DeadLinkEvent{l, now(), evidence});
      trace(sim::TraceEvent::kLinkDead, l, evidence);
    } else if (evidence >= options_.suspect_threshold) {
      wl.health.state = LinkState::kSuspect;
    }
  }
}

bool HealthMonitor::quiescent() const {
  for (const WatchedLink& wl : links_) {
    if (wl.reg->get().valid) return false;
    // Un-evaluated evidence: the next epoch boundary would change state.
    if (*wl.produced != wl.produced_at_eval) return false;
    if (wl.health.observed != wl.observed_at_eval) return false;
    if (wl.health.parity_errors != wl.parity_at_eval) return false;
  }
  return true;
}

std::vector<DeadLinkEvent> HealthMonitor::take_dead_events() {
  std::vector<DeadLinkEvent> out;
  out.swap(dead_events_);
  return out;
}

std::vector<topo::LinkId> HealthMonitor::suspects_among(
    const std::vector<topo::LinkId>& route_links) const {
  std::vector<topo::LinkId> out;
  for (topo::LinkId l : route_links)
    if (l < links_.size() && links_[l].health.state != LinkState::kOk) out.push_back(l);
  return out;
}

std::uint64_t HealthMonitor::total_missing() const {
  std::uint64_t n = 0;
  for (const WatchedLink& wl : links_) n += wl.health.missing;
  return n;
}

std::uint64_t HealthMonitor::total_parity_errors() const {
  std::uint64_t n = 0;
  for (const WatchedLink& wl : links_) n += wl.health.parity_errors;
  return n;
}

} // namespace daelite::soc
