#pragma once
// Scenario description files — the text front end of the toolflow.
//
// A scenario names a topology, the TDM parameters, the clock, a set of
// connections with physical bandwidth demands, and a run length; the CLI
// driver (tools/daelite_sim.cpp) executes it end to end: dimensioning (if
// no explicit wheel size fits), hardware configuration through the
// broadcast tree, saturated or CBR traffic, and a report.
//
// Grammar (one directive per line; '#' starts a comment):
//   mesh <width> <height> [torus]
//   ring <routers>
//   slots <S>                      # omit to let the tool search 8/16/32
//   clock <MHz>
//   host <x,y>                     # NI of the configuration host
//   connection <name> <src x,y> <dst x,y> <MB/s> [latency <ns>] [resp <MB/s>]
//   multicast  <name> <src x,y> <dst x,y> <dst x,y>... bw <MB/s>
//   run <cycles>
//
// Coordinates are NI grid positions.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "alloc/dimension.hpp"
#include "topology/generators.hpp"

namespace daelite::soc {

struct Scenario {
  enum class TopologyKind { kMesh, kTorus, kRing };
  TopologyKind kind = TopologyKind::kMesh;
  int width = 2;
  int height = 2;
  std::optional<std::uint32_t> slots; ///< empty: dimensioning searches
  double clock_mhz = 500.0;
  std::pair<int, int> host{0, 0};
  std::vector<alloc::PhysicalConnectionSpec> connections; ///< filled after build()
  sim::Cycle run_cycles = 10000;

  // Raw (coordinate) form, resolved against the topology by build().
  struct RawConnection {
    std::string name;
    std::pair<int, int> src;
    std::vector<std::pair<int, int>> dsts;
    double bandwidth = 100.0;
    double response_bandwidth = 0.0;
    double max_latency_ns = std::numeric_limits<double>::infinity();
  };
  std::vector<RawConnection> raw;

  /// Instantiate the topology and resolve coordinates into NI node ids
  /// (fills `connections`).
  topo::Mesh build();
};

/// Parse a scenario; returns nullopt with a "line N: message" diagnostic
/// in `error` on malformed input.
std::optional<Scenario> parse_scenario(std::istream& in, std::string* error = nullptr);
std::optional<Scenario> parse_scenario_file(const std::string& path, std::string* error = nullptr);

} // namespace daelite::soc
