#pragma once
// Scenario description files — the text front end of the toolflow.
//
// A scenario names a topology, the TDM parameters, the clock, a set of
// connections with physical bandwidth demands, and a run length; the CLI
// driver (tools/daelite_sim.cpp) executes it end to end: dimensioning (if
// no explicit wheel size fits), hardware configuration through the
// broadcast tree, saturated or CBR traffic, and a report.
//
// Grammar (one directive per line; '#' starts a comment):
//   mesh <width> <height> [torus]
//   ring <routers>
//   slots <S>                      # omit to let the tool search 8/16/32
//   clock <MHz>
//   host <x,y>                     # NI of the configuration host
//   connection <name> <src x,y> <dst x,y> <MB/s> [latency <ns>] [resp <MB/s>]
//              [class guaranteed|standard|best_effort]
//   multicast  <name> <src x,y> <dst x,y> <dst x,y>... bw <MB/s>
//   stream <name> <src x,y> <dst x,y> <MB/s> period <cycles> burst <words>
//          [bursty <seed>] [resp <MB/s>] [class guaranteed|standard|best_effort]
//   dram <x,y> [<x,y>...]          # DRAM-port NIs (energy accounting, dnn)
//   energy [hop <pJ>] [dram <pJ>] [config <pJ>]   # enable the energy model
//   dnn grid <x,y> <WxH> [weights <slots>] [ifmap <slots>] [ofmap <slots>]
//   layer <name> weights <words> ifmap <words> ofmap <words>
//   run <cycles>                   # dnn: per-layer streaming budget
//
// Coordinates are NI grid positions. A `dnn` scenario (tile grid + layer
// lines, fed from the `dram` ports) generates its own traffic and cannot
// also declare connection/multicast/stream lines. The dnn/stream/energy/
// dram directives parse strictly (std::from_chars, whole token — the
// tools/cli_parse.hpp policy): trailing junk is a diagnostic, not a
// silently different experiment.

#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "alloc/dimension.hpp"
#include "analysis/energy.hpp"
#include "topology/generators.hpp"
#include "workload/dnn.hpp"

namespace daelite::soc {

struct Scenario {
  enum class TopologyKind { kMesh, kTorus, kRing };
  TopologyKind kind = TopologyKind::kMesh;
  int width = 2;
  int height = 2;
  std::optional<std::uint32_t> slots; ///< empty: dimensioning searches
  double clock_mhz = 500.0;
  std::pair<int, int> host{0, 0};
  std::vector<alloc::PhysicalConnectionSpec> connections; ///< filled after build()
  sim::Cycle run_cycles = 10000;

  /// DRAM-port NIs (`dram` directive): the nodes whose word traffic is
  /// priced as DRAM accesses by the energy model, and the feed points of a
  /// `dnn` schedule.
  std::vector<std::pair<int, int>> dram;
  /// Energy model (`energy` directive); disabled unless declared, so
  /// reports without it are byte-identical to older builds.
  analysis::EnergyModel energy;
  /// DNN workload (`dnn` + `layer` directives). When set, the runner
  /// compiles the schedule into per-layer traffic instead of driving the
  /// declared connections.
  std::optional<workload::DnnSchedule> dnn;

  // Raw (coordinate) form, resolved against the topology by build().
  struct RawConnection {
    std::string name;
    std::pair<int, int> src;
    std::vector<std::pair<int, int>> dsts;
    double bandwidth = 100.0;
    double response_bandwidth = 0.0;
    double max_latency_ns = std::numeric_limits<double>::infinity();
    // Traffic shape (`stream` lines); see PhysicalConnectionSpec.
    std::uint32_t stream_period = 0;
    std::uint32_t stream_burst = 1;
    std::uint64_t bursty_seed = 0;
    alloc::ServiceClass service_class = alloc::ServiceClass::kStandard;
  };
  std::vector<RawConnection> raw;

  /// Instantiate the topology and resolve coordinates into NI node ids
  /// (fills `connections`).
  topo::Mesh build();
};

/// Parse a scenario; returns nullopt with a "line N: message" diagnostic
/// in `error` on malformed input.
std::optional<Scenario> parse_scenario(std::istream& in, std::string* error = nullptr);
std::optional<Scenario> parse_scenario_file(const std::string& path, std::string* error = nullptr);

} // namespace daelite::soc
