#include "soc/platform.hpp"

#include <string>

#include "alloc/usecase.hpp"

namespace daelite::soc {

Platform::Platform(sim::Kernel& k, const topo::Topology& topo, Options options)
    : kernel_(&k), topo_(&topo) {
  net_ = std::make_unique<hw::DaeliteNetwork>(k, topo, options.net);
  alloc_ = std::make_unique<alloc::SlotAllocator>(topo, options.net.tdm, options.alloc);
}

Memory& Platform::add_memory(topo::NodeId ni) {
  auto [it, inserted] = memories_.emplace(ni, std::make_unique<Memory>());
  (void)inserted;
  return *it->second;
}

LocalBus& Platform::bus(topo::NodeId ni) {
  auto it = buses_.find(ni);
  if (it == buses_.end()) it = buses_.emplace(ni, std::make_unique<LocalBus>()).first;
  return *it->second;
}

std::optional<Platform::PortHandle> Platform::connect(topo::NodeId src_ni, topo::NodeId dst_ni,
                                                      std::uint32_t request_slots,
                                                      std::uint32_t response_slots,
                                                      std::uint32_t addr_base,
                                                      std::uint32_t addr_size) {
  if (memories_.count(dst_ni) == 0) return std::nullopt; // add_memory(dst) first

  alloc::UseCase uc;
  uc.connections.push_back({"mmio", src_ni, {dst_ni}, request_slots, response_slots});
  auto allocation = alloc::allocate_use_case(*alloc_, uc);
  // The schedule may simply be full: report it instead of dereferencing an
  // empty optional (which an assert only caught in debug builds).
  if (!allocation) return std::nullopt;

  const alloc::AllocatedConnection& conn = allocation->connections[0];
  hw::ConnectionHandle h = net_->open_connection(conn);

  const std::string tag =
      topo_->node(src_ni).name + "->" + topo_->node(dst_ni).name;
  auto ini = std::make_unique<HwInitiatorShell>(*kernel_, "shell.i." + tag, net_->ni(src_ni),
                                                h.src_tx_q, h.src_rx_q);
  auto tgt = std::make_unique<HwTargetShell>(*kernel_, "shell.t." + tag, net_->ni(dst_ni),
                                             h.dst_rx_qs[0], h.dst_tx_q, *memories_.at(dst_ni));
  auto port = std::make_unique<ShellPort<HwInitiatorShell>>(*ini);

  bus(src_ni).map(addr_base, addr_size, *port);

  PortHandle out;
  out.port = port.get();
  out.handle = std::move(h);

  initiator_shells_.push_back(std::move(ini));
  target_shells_.push_back(std::move(tgt));
  ports_.push_back(std::move(port));
  return out;
}

std::optional<Platform::PortHandle> Platform::connect_multicast(
    topo::NodeId src_ni, const std::vector<topo::NodeId>& dst_nis, std::uint32_t request_slots,
    std::uint32_t addr_base, std::uint32_t addr_size) {
  if (dst_nis.empty()) return std::nullopt;
  for (topo::NodeId d : dst_nis)
    if (memories_.count(d) == 0) return std::nullopt; // add_memory(dst) first

  alloc::UseCase uc;
  uc.connections.push_back({"mcast", src_ni, dst_nis, request_slots, /*response=*/0});
  auto allocation = alloc::allocate_use_case(*alloc_, uc);
  // Multicast trees over-subscribe easily (every branch reserves the same
  // slots); the failure must surface in NDEBUG builds too.
  if (!allocation) return std::nullopt;

  const alloc::AllocatedConnection& conn = allocation->connections[0];
  hw::ConnectionHandle h = net_->open_connection(conn);

  const std::string tag = topo_->node(src_ni).name + "->mcast";
  auto ini = std::make_unique<HwInitiatorShell>(*kernel_, "shell.i." + tag, net_->ni(src_ni),
                                                h.src_tx_q, /*rx_q=*/0, /*posted=*/true);
  for (std::size_t i = 0; i < dst_nis.size(); ++i) {
    target_shells_.push_back(std::make_unique<HwTargetShell>(
        *kernel_, "shell.t." + tag + "." + topo_->node(dst_nis[i]).name, net_->ni(dst_nis[i]),
        h.dst_rx_qs[i], /*tx_q=*/0, *memories_.at(dst_nis[i]), /*posted=*/true));
  }
  auto port = std::make_unique<ShellPort<HwInitiatorShell>>(*ini);
  bus(src_ni).map(addr_base, addr_size, *port);

  PortHandle out;
  out.port = port.get();
  out.handle = std::move(h);
  initiator_shells_.push_back(std::move(ini));
  ports_.push_back(std::move(port));
  return out;
}

} // namespace daelite::soc
