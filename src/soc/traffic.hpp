#pragma once
// Traffic-generator IPs. Each submits DTL transactions through a local
// bus (or directly through an InitiatorPort) and drains/verifies the
// responses. All randomness is seeded explicitly.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/component.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "soc/bus.hpp"
#include "soc/dtl.hpp"

namespace daelite::soc {

/// Constant-bit-rate writer: a burst write every `period` cycles. The
/// payload is a deterministic counter stream so targets can be verified.
class CbrWriter : public sim::Component {
 public:
  struct Params {
    std::uint32_t period = 32;     ///< cycles between bursts
    std::uint32_t burst = 4;       ///< words per burst (<= kMaxBurst)
    std::uint32_t base_addr = 0;
    std::uint32_t addr_range = 1024; ///< wraps within [base, base+range)
    std::uint32_t phase = 0;       ///< cycle offset of the first burst
  };

  CbrWriter(sim::Kernel& k, std::string name, LocalBus& bus, Params params);

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t completed() const { return completed_; }
  std::uint32_t next_value() const { return value_; }

  void tick() override;

 private:
  LocalBus* bus_;
  Params params_;
  std::uint32_t addr_off_ = 0;
  std::uint32_t value_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
};

/// On/off (bursty) writer: geometric on and off period lengths.
class BurstyWriter : public sim::Component {
 public:
  struct Params {
    double p_start = 0.05;  ///< off -> on probability per cycle
    double p_stop = 0.10;   ///< on -> off probability per cycle
    std::uint32_t burst = 4;
    std::uint32_t base_addr = 0;
    std::uint32_t addr_range = 1024;
    std::uint32_t min_gap = 4; ///< cycles between submissions while on
    std::uint64_t seed = 1;
  };

  BurstyWriter(sim::Kernel& k, std::string name, LocalBus& bus, Params params);

  std::uint64_t submitted() const { return submitted_; }

  void tick() override;

 private:
  LocalBus* bus_;
  Params params_;
  sim::Xoshiro256 rng_;
  bool on_ = false;
  std::uint32_t cooldown_ = 0;
  std::uint32_t addr_off_ = 0;
  std::uint32_t value_ = 0x1000;
  std::uint64_t submitted_ = 0;
};

/// Issues burst reads and verifies the returned data against a caller-
/// provided expectation function (defaults to accept-anything).
class ReaderIp : public sim::Component {
 public:
  struct Params {
    std::uint32_t period = 64;
    std::uint32_t burst = 4;
    std::uint32_t base_addr = 0;
    std::uint32_t addr_range = 1024;
    std::uint32_t max_outstanding = 4;
  };

  ReaderIp(sim::Kernel& k, std::string name, InitiatorPort& port, Params params);

  std::uint64_t issued() const { return issued_; }
  std::uint64_t returned() const { return returned_; }
  std::uint64_t words_read() const { return words_read_; }

  void tick() override;

 private:
  InitiatorPort* port_;
  Params params_;
  std::uint32_t addr_off_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t returned_ = 0;
  std::uint64_t words_read_ = 0;
};

/// Replays an explicit (cycle, transaction) trace. A transaction refused
/// by the bus under backpressure (the target port was not ready) is
/// retried on subsequent ticks, preserving trace order; only transactions
/// no bus range can ever route are dropped (and counted).
class TraceIp : public sim::Component {
 public:
  TraceIp(sim::Kernel& k, std::string name, LocalBus& bus,
          std::vector<std::pair<sim::Cycle, Transaction>> trace);

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t dropped() const { return dropped_; }   ///< unroutable, skipped for good
  std::uint64_t deferred() const { return deferred_; } ///< backpressure retries scheduled
  bool done() const { return index_ >= trace_.size(); }

  void tick() override;

 private:
  LocalBus* bus_;
  std::vector<std::pair<sim::Cycle, Transaction>> trace_;
  std::size_t index_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t deferred_ = 0;
};

} // namespace daelite::soc
