#pragma once
// Word-addressed sparse memory target.

#include <cstdint>
#include <unordered_map>

namespace daelite::soc {

class Memory {
 public:
  std::uint32_t read(std::uint32_t addr) const {
    auto it = words_.find(addr);
    return it == words_.end() ? 0u : it->second;
  }
  void write(std::uint32_t addr, std::uint32_t value) { words_[addr] = value; }

  std::size_t footprint() const { return words_.size(); }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

  /// Accessors used by the target shell (with accounting).
  std::uint32_t shell_read(std::uint32_t addr) {
    ++reads_;
    return read(addr);
  }
  void shell_write(std::uint32_t addr, std::uint32_t value) {
    ++writes_;
    write(addr, value);
  }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> words_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

} // namespace daelite::soc
