#pragma once
// A minimal DTL-style memory-mapped transaction model.
//
// The paper's platform (Fig. 3) attaches IPs to lightweight local buses
// that "(de)multiplex transactions to and from different network
// connections"; network shells then serialize the transactions into
// network messages [16]. We model the subset needed for that role:
// posted/non-posted writes and burst reads, serialized into 32-bit words.
//
// Message formats (one word per line):
//   request : header [31]=is_write [27:24]=len [23:0]=addr
//             + len data words when is_write
//   response: header [31]=is_write(echo) [27:24]=len [23:0]=addr
//             + len data words when a read response
// A write is acknowledged with a header-only response (non-posted), which
// also exercises the reverse channel the way real DTL targets do.

#include <cstdint>
#include <vector>

namespace daelite::soc {

inline constexpr std::uint32_t kMaxBurst = 15;

struct Transaction {
  bool is_write = false;
  std::uint32_t addr = 0;       ///< 24-bit address space
  std::vector<std::uint32_t> wdata; ///< write payload (size = burst length)
  std::uint32_t burst_len = 0;  ///< read: words requested; write: wdata.size()
};

struct Response {
  bool is_write = false;
  std::uint32_t addr = 0;
  std::vector<std::uint32_t> rdata; ///< read data (empty for write acks)
};

constexpr std::uint32_t encode_header(bool is_write, std::uint32_t len, std::uint32_t addr) {
  return (is_write ? 0x80000000u : 0u) | ((len & 0xFu) << 24) | (addr & 0x00FFFFFFu);
}
constexpr bool header_is_write(std::uint32_t h) { return (h & 0x80000000u) != 0; }
constexpr std::uint32_t header_len(std::uint32_t h) { return (h >> 24) & 0xFu; }
constexpr std::uint32_t header_addr(std::uint32_t h) { return h & 0x00FFFFFFu; }

/// Serialize a request into words (header + write payload).
std::vector<std::uint32_t> serialize_request(const Transaction& t);

/// Words a request/response occupies on the network.
constexpr std::size_t request_words(const Transaction& t) {
  return 1 + (t.is_write ? t.wdata.size() : 0);
}
constexpr std::size_t response_words(const Transaction& t) {
  return 1 + (t.is_write ? 0 : t.burst_len);
}

} // namespace daelite::soc
