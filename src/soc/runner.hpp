#pragma once
// End-to-end scenario execution as a library call.
//
// Everything tools/daelite_sim.cpp used to do inline — dimension,
// instantiate, configure through the broadcast tree, drive saturated
// traffic, measure — factored out so the batch runner (tools/
// daelite_batch.cpp) can execute many RunSpecs concurrently, one Kernel
// per job. A RunSpec is a Scenario plus the sweep axes a batch varies:
// slot-table size, allocation-order seed, and run length.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "analysis/network_report.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "soc/scenario.hpp"

namespace daelite::hw {
class DaeliteNetwork;
}

namespace daelite::sim {
class Tracer;
}

namespace daelite::soc {

/// Self-healing configuration for run_scenario. When enabled, the runner
/// attaches a HealthMonitor (src/soc/health.hpp) behind the fault
/// injector, quarantines links the monitor declares dead, and repairs the
/// affected connections mid-run: drain, tear down, re-allocate around the
/// quarantine, re-set up through the broadcast tree while traffic keeps
/// flowing, and time detection-to-restored in cycles. Results land in the
/// report's `recovery` section; disabled runs are byte-identical to a
/// build without recovery support.
struct RecoveryOptions {
  bool enabled = false;
  /// HealthMonitor epoch in cycles (0: one TDM wheel) and verdict
  /// thresholds on cumulative per-link evidence (missing flits + on-wire
  /// parity errors).
  std::uint32_t epoch_cycles = 0;
  std::uint64_t suspect_threshold = 1;
  std::uint64_t dead_threshold = 3;
  /// A connection whose destinations accumulate this many corrupt + lost
  /// words is repaired even without a dead-link verdict, provided the
  /// monitor can localize a suspect link on its route to quarantine.
  std::uint64_t integrity_threshold = 64;
  /// Give up on a repair whose tear-down/set-up stream has not drained
  /// after this many cycles (or when the config watchdog aborts it).
  sim::Cycle reconfig_timeout = 100000;
  /// Preemptive healing: when re-allocation around a quarantine finds no
  /// capacity for a guaranteed connection, tear down best-effort
  /// connections along a min-victims candidate path
  /// (SlotAllocator::plan_preemption) and retry, instead of declaring the
  /// guaranteed connection dead. Victims are counted per class in the
  /// report's `service` section and traced as kPreemptBegin.
  bool preempt_best_effort = false;
  /// Slot compaction after every recovery wave: re-pack live non-guaranteed
  /// connections onto lower injection slots (ChurnService::compact
  /// semantics, allocator-level only — slot tables in flight are not
  /// rewritten), traced as kCompactionPass with the move digest.
  bool compact_after_recovery = false;
};

struct RunSpec {
  std::string label;  ///< job name carried into the report ("" -> scenario summary)
  Scenario scenario;
  std::optional<std::uint32_t> slots_override;   ///< pin the wheel size
  std::optional<sim::Cycle> run_cycles_override; ///< shorten/lengthen the run
  /// seed != 0 shuffles the order connections are presented to the
  /// allocator (deterministically) — slot assignment is order-dependent,
  /// so seeds explore the allocation design space. seed == 0 keeps file
  /// order.
  std::uint64_t seed = 0;
  /// Cycle-loop implementation for the job's kernel. The stride scheduler
  /// and the per-cycle reference produce byte-identical reports and traces
  /// (a ctest diffs them); kReference exists as the oracle for that check.
  sim::Scheduler scheduler = sim::Scheduler::kStride;
  /// Shard count for single-run parallelism (stride scheduler only):
  /// > 1 partitions the mesh's routers and NIs into contiguous node bands
  /// that tick/commit concurrently inside this one kernel
  /// (DaeliteNetwork::assign_shards). Reports and traces are byte-identical
  /// for every value — the shard count is deliberately NOT recorded in the
  /// report, so CI can diff --shards 1 against --shards N outputs.
  std::uint32_t shards = 1;
  /// Batched SoA slot dispatch (DaeliteNetwork::enable_soa, stride
  /// scheduler only — silently ignored under kReference). Like `shards`,
  /// byte-identical output and deliberately NOT recorded in the report, so
  /// CI can diff --soa runs against component-path outputs.
  bool soa = false;
  /// Invoked once the network exists, before configuration — attach VCD
  /// probes or extra instrumentation here. Objects the hook creates must
  /// outlive the run_scenario() call.
  std::function<void(sim::Kernel&, hw::DaeliteNetwork&)> on_network;
  /// Non-null: attach this tracer to the job's kernel. Every hardware
  /// element records into it and the runner adds configure/traffic phase
  /// spans; export with sim::write_chrome_trace(). Must outlive the call.
  sim::Tracer* tracer = nullptr;
  /// Enabled: the runner builds a per-job FaultInjector over every data and
  /// configuration link, appends one verification read per connection (so
  /// the response path and watchdog are exercised), and fills the report's
  /// `health` section. Each job owns its injector, so fault streams are
  /// reproducible across --jobs counts.
  sim::FaultPlan fault_plan;
  /// Self-healing: see RecoveryOptions.
  RecoveryOptions recovery;
  /// ConfigModule watchdog overrides (daelite/network.hpp Options): the
  /// retry budget for a timed-out request, and a scale on the
  /// depth-derived response timeout. Defaults keep the network's own
  /// derivation, so existing runs are untouched.
  std::optional<std::uint32_t> watchdog_retries;
  double watchdog_timeout_mult = 1.0;
};

/// Execute one spec to completion. Never throws on scenario-level problems:
/// dimensioning or build failures come back as a report with `ok == false`
/// and the diagnostic in `error`.
analysis::NetworkReport run_scenario(const RunSpec& spec);

} // namespace daelite::soc
