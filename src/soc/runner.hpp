#pragma once
// End-to-end scenario execution as a library call.
//
// Everything tools/daelite_sim.cpp used to do inline — dimension,
// instantiate, configure through the broadcast tree, drive saturated
// traffic, measure — factored out so the batch runner (tools/
// daelite_batch.cpp) can execute many RunSpecs concurrently, one Kernel
// per job. A RunSpec is a Scenario plus the sweep axes a batch varies:
// slot-table size, allocation-order seed, and run length.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "analysis/network_report.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "soc/scenario.hpp"

namespace daelite::hw {
class DaeliteNetwork;
}

namespace daelite::sim {
class Tracer;
}

namespace daelite::soc {

struct RunSpec {
  std::string label;  ///< job name carried into the report ("" -> scenario summary)
  Scenario scenario;
  std::optional<std::uint32_t> slots_override;   ///< pin the wheel size
  std::optional<sim::Cycle> run_cycles_override; ///< shorten/lengthen the run
  /// seed != 0 shuffles the order connections are presented to the
  /// allocator (deterministically) — slot assignment is order-dependent,
  /// so seeds explore the allocation design space. seed == 0 keeps file
  /// order.
  std::uint64_t seed = 0;
  /// Cycle-loop implementation for the job's kernel. The stride scheduler
  /// and the per-cycle reference produce byte-identical reports and traces
  /// (a ctest diffs them); kReference exists as the oracle for that check.
  sim::Scheduler scheduler = sim::Scheduler::kStride;
  /// Invoked once the network exists, before configuration — attach VCD
  /// probes or extra instrumentation here. Objects the hook creates must
  /// outlive the run_scenario() call.
  std::function<void(sim::Kernel&, hw::DaeliteNetwork&)> on_network;
  /// Non-null: attach this tracer to the job's kernel. Every hardware
  /// element records into it and the runner adds configure/traffic phase
  /// spans; export with sim::write_chrome_trace(). Must outlive the call.
  sim::Tracer* tracer = nullptr;
  /// Enabled: the runner builds a per-job FaultInjector over every data and
  /// configuration link, appends one verification read per connection (so
  /// the response path and watchdog are exercised), and fills the report's
  /// `health` section. Each job owns its injector, so fault streams are
  /// reproducible across --jobs counts.
  sim::FaultPlan fault_plan;
};

/// Execute one spec to completion. Never throws on scenario-level problems:
/// dimensioning or build failures come back as a report with `ok == false`
/// and the diagnostic in `error`.
analysis::NetworkReport run_scenario(const RunSpec& spec);

} // namespace daelite::soc
