#include "soc/dtl.hpp"

#include <cassert>

namespace daelite::soc {

std::vector<std::uint32_t> serialize_request(const Transaction& t) {
  assert(t.burst_len <= kMaxBurst);
  std::vector<std::uint32_t> words;
  const std::uint32_t len = t.is_write ? static_cast<std::uint32_t>(t.wdata.size()) : t.burst_len;
  assert(len <= kMaxBurst);
  words.push_back(encode_header(t.is_write, len, t.addr));
  if (t.is_write) words.insert(words.end(), t.wdata.begin(), t.wdata.end());
  return words;
}

} // namespace daelite::soc
